// Impact analysis: "how much code could be affected if I change this
// macro?" (the paper's introduction) and software change impact analysis
// across versions (the paper's §6.3).
//
//	go run ./examples/impact
package main

import (
	"fmt"
	"log"

	"frappe"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
	"frappe/internal/temporal"
)

func main() {
	// --- macro impact on a single snapshot ---
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, diags, err := frappe.Index(w.Build, w.ExtractOptions())
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) > 0 {
		log.Fatalf("extraction diagnostics: %v", diags[0])
	}

	for _, macro := range []string{"NULL", "KERN_INFO", "BUG_ON"} {
		id, err := eng.MustLookupOne(macro, model.NodeMacro)
		if err != nil {
			log.Fatal(err)
		}
		impact := eng.MacroImpact(id)
		fmt.Printf("changing macro %-10s affects %4d functions/files\n", macro, len(impact))
	}

	// Header impact: who includes types.h, transitively?
	hdr, err := eng.MustLookupOne("types.h", model.NodeFile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("changing include/linux/types.h rebuilds %d files\n\n", len(eng.IncludeImpact(hdr)))

	// --- cross-version change impact (§6.3) ---
	v1 := kernelgen.Generate(kernelgen.Tiny())
	r1, err := v1.Extract()
	if err != nil {
		log.Fatal(err)
	}
	v2 := kernelgen.Generate(kernelgen.Tiny())
	v2.FS["drivers/scsi/sr.c"] = v2.FS["drivers/scsi/sr.c"] +
		"\nint sr_revalidate(int dev)\n{\n\treturn sr_media_change(dev) + 1;\n}\n"
	r2, err := v2.Extract()
	if err != nil {
		log.Fatal(err)
	}

	s := temporal.New()
	s.AddVersion("v5.0", r1.Graph)
	d := s.AddVersion("v5.1", r2.Graph)
	fmt.Printf("v5.0 -> v5.1 delta: +%d/-%d nodes, +%d/-%d edge triples\n",
		len(d.AddedNodes), len(d.RemovedNodes), len(d.AddedEdges), len(d.RemovedEdges))

	changed, err := s.ChangedFunctions(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("changed functions:")
	for _, k := range changed {
		fmt.Printf("  %s\n", temporal.Describe(k))
	}

	impact, err := s.ImpactOfChange(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("impacted (changed + transitive callers): %d functions\n", len(impact))

	st := s.Stats()
	fmt.Printf("storage: full copies %d bytes; delta chain %d bytes\n",
		st.TotalFull, st.FullBytes[0]+st.DeltaBytes[1])
}
