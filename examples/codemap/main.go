// Code map: render the paper's cartographic visualisation (§2) of the
// synthetic kernel as SVG, overlaying the backward slice of
// pci_read_bases — "an immediate general impression of the location,
// locality, structure, and quantity of results".
//
//	go run ./examples/codemap [out.svg]
package main

import (
	"fmt"
	"log"
	"os"

	"frappe"
	"frappe/internal/codemap"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
	"frappe/internal/traversal"
)

func main() {
	out := "codemap.svg"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}

	w := kernelgen.Generate(kernelgen.Default())
	eng, diags, err := frappe.Index(w.Build, w.ExtractOptions())
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) > 0 {
		log.Fatalf("extraction diagnostics: %v", diags[0])
	}

	seed, err := eng.MustLookupOne("pci_read_bases", model.NodeFunction)
	if err != nil {
		log.Fatal(err)
	}
	slice := traversal.TransitiveClosure(eng.Source(), seed, traversal.Options{
		Direction: traversal.Out,
		Types:     traversal.Types(model.EdgeCalls),
	})
	slice = append(slice, seed)

	// A path overlay: how execution reaches write_cmd from the top.
	var paths []traversal.Path
	if to, err := eng.MustLookupOne("write_cmd", model.NodeFunction); err == nil {
		if from, err := eng.MustLookupOne("sr_media_change", model.NodeFunction); err == nil {
			if p, ok := eng.CallPath(from, to); ok {
				paths = append(paths, p)
			}
		}
	}

	m := codemap.Build(eng.Source())
	svg := m.SVG(codemap.RenderOptions{
		Width:     1280,
		Height:    900,
		Title:     "Synthetic kernel — backward slice of pci_read_bases",
		Highlight: slice,
		Paths:     paths,
	})
	if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes): %d regions highlighted\n", out, len(svg), len(slice))
}
