// Quickstart: the paper's Figure 2 worked example, end to end.
//
// It builds the three-file program (foo.h, foo.c, main.c) in memory,
// models the paper's build commands (gcc foo.c -c -o foo.o; gcc main.c
// foo.o -o prog), extracts the dependency graph, and asks it questions —
// including the go-to-definition hop from the bar(argc) call site to
// bar's definition in foo.c.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"frappe"
	"frappe/internal/cpp"
)

func main() {
	fs := cpp.MapFS{
		"foo.h":  "int bar(int);\n",
		"foo.c":  "#include \"foo.h\"\nint bar(int input) {\n\treturn input;\n}\n",
		"main.c": "#include \"foo.h\"\nint main(int argc, char **argv) {\n\treturn bar(argc);\n}\n",
	}
	build := frappe.Build{
		Units: []frappe.CompileUnit{
			{Source: "foo.c", Object: "foo.o"},
			{Source: "main.c", Object: "main.o"},
		},
		Modules: []frappe.Module{
			{Name: "prog", Objects: []string{"main.o", "foo.o"}},
		},
	}

	eng, diags, err := frappe.Index(build, frappe.ExtractOptions{FS: fs})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		log.Printf("diagnostic: %v", d)
	}

	m := eng.Stats()
	fmt.Printf("Figure 2 graph: %d nodes, %d edges\n\n", m.Nodes, m.Edges)

	ctx := context.Background()

	// Who calls whom?
	res, err := eng.Query(ctx, `
MATCH (caller:function) -[r:calls]-> (callee:function)
RETURN caller.short_name, callee.short_name, r.use_start_line`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("calls edges:")
	fmt.Print(res.Format(eng.Source()))

	// The paper's argv example: its type edge carries QUALIFIERS "**".
	res, err = eng.Query(ctx, `
MATCH (p:parameter{short_name: 'argv'}) -[t:isa_type]-> ty
RETURN p.name, ty.short_name, t.qualifiers`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nargv's type use:")
	fmt.Print(res.Format(eng.Source()))

	// Go to definition of `bar` from the call in main.c line 3, column 9.
	sym, ok, err := eng.GoToDefinition(ctx, "bar", "main.c", 3, 9)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("definition of bar not found")
	}
	fmt.Printf("\ngo-to-definition bar@main.c:3:9 -> %s\n", frappe.FormatSymbol(sym))

	// Find references back.
	refs, err := eng.FindReferences(ctx, sym.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("references to bar:")
	for _, r := range refs {
		fmt.Printf("  %-8s %s:%d:%d (from %s)\n", r.Kind, r.File, r.Line, r.Col, r.From.ShortName)
	}

	// The module's reach: everything prog is built from (Figure 3's
	// pattern at miniature scale).
	res, err = eng.Query(ctx, `
START m=node:node_auto_index('short_name: prog')
MATCH m -[:compiled_from|linked_from*]-> f
RETURN distinct f.name ORDER BY f.name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfiles reachable from module prog:")
	fmt.Print(res.Format(eng.Source()))
}
