// Debugging walkthrough: the paper's §4.3 use case on the synthetic
// kernel.
//
// The scenario from the paper: the value stored in field `cmd` of
// struct packet_command is known to be valid at the start of
// sr_media_change and invalid on entering get_sectorsize (which
// sr_media_change calls at line 236). Which writes to `cmd` can be
// responsible? Figure 5's Cypher query bounds the candidate writes to
// those reachable from calls that happen before line 236.
//
//	go run ./examples/debugging
package main

import (
	"context"
	"fmt"
	"log"

	"frappe"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
)

func main() {
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, diags, err := frappe.Index(w.Build, w.ExtractOptions())
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) > 0 {
		log.Fatalf("extraction diagnostics: %v", diags[0])
	}
	ctx := context.Background()

	// Naive approach: find-references on the field — too many candidates.
	cmd := mustOne(eng, "cmd", model.NodeField)
	refs, err := eng.FindReferences(ctx, cmd)
	if err != nil {
		log.Fatal(err)
	}
	writes := 0
	for _, r := range refs {
		if r.Kind == model.EdgeWritesMember {
			writes++
		}
	}
	fmt.Printf("find-references on packet_command.cmd: %d references, %d writes — all would need manual inspection\n\n", len(refs), writes)

	// The paper's Figure 5: bound the writes by control flow before the
	// known-bad call at line 236.
	res, err := eng.Query(ctx, `
START from=node:node_auto_index('short_name: sr_media_change'),
      to=node:node_auto_index('short_name: get_sectorsize'),
      b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 5 — writes reachable before the bad call:")
	fmt.Print(res.Format(eng.Source()))

	// Jump to the culprit's definition and show the offending write site.
	if res.Count() > 0 {
		writer := eng.Symbol(res.Rows[0][0].Node)
		fmt.Printf("\nculprit: %s\n", frappe.FormatSymbol(writer))
		wrefs, err := eng.FindReferences(ctx, cmd)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range wrefs {
			if r.Kind == model.EdgeWritesMember && r.From.ID == writer.ID {
				fmt.Printf("write site: %s:%d:%d\n", r.File, r.Line, r.Col)
			}
		}
	}

	// Cross-referencing (§4.2): go to definition from the call site.
	sym, ok, err := eng.GoToDefinition(ctx, "get_sectorsize", "drivers/scsi/sr.c", 236, 9)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("\ngo-to-definition get_sectorsize@sr.c:236 -> %s\n", frappe.FormatSymbol(sym))
	}

	// And the call path that would reach the writer at runtime.
	from := mustOne(eng, "sr_media_change", model.NodeFunction)
	to := mustOne(eng, "write_cmd", model.NodeFunction)
	if p, ok := eng.CallPath(from, to); ok {
		fmt.Println("\nshortest call path sr_media_change -> write_cmd:")
		for _, n := range p.Nodes() {
			fmt.Printf("  %s\n", eng.Symbol(n).ShortName)
		}
	}
}

func mustOne(eng *frappe.Engine, name string, typ model.NodeType) frappe.NodeID {
	id, err := eng.MustLookupOne(name, typ)
	if err != nil {
		log.Fatal(err)
	}
	return id
}
