package store

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/model"
)

// allDataFiles are the checksummed store files (meta checks itself).
var allDataFiles = []string{NodeFile, RelFile, PropFile, StringFile, KeyFile, IndexFile}

// flipByte XORs one bit in the middle of the named store file.
func flipByte(t *testing.T, dir, name string) {
	t.Helper()
	path := filepath.Join(dir, name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatalf("%s is empty; cannot corrupt", name)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func writeStore(t *testing.T, g *graph.Graph) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	if err := Write(dir, g); err != nil {
		t.Fatal(err)
	}
	return dir
}

// readEverything touches every node, edge, property, string and index
// term, returning the first panic (corruption) as an error.
func readEverything(db *DB) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	for id := graph.NodeID(0); id < graph.NodeID(db.NodeCount()); id++ {
		db.NodeProps(id)
		db.Out(id)
		db.In(id)
	}
	for id := graph.EdgeID(0); id < graph.EdgeID(db.EdgeCount()); id++ {
		db.EdgeEnds(id)
		db.EdgeProps(id)
	}
	_, err = db.Lookup("short_name: f*")
	return err
}

// TestCorruptionDetectedPerFile proves the acceptance criterion: a
// flipped bit in ANY store file yields a typed ErrCorrupt (or
// ErrTruncated / ErrBadMagic), never a silent wrong answer.
func TestCorruptionDetectedPerFile(t *testing.T) {
	for _, name := range allDataFiles {
		t.Run(name, func(t *testing.T) {
			dir := writeStore(t, buildSampleGraph())
			flipByte(t, dir, name)
			db, err := Open(dir)
			if err == nil {
				defer db.Close()
				err = readEverything(db)
			}
			if err == nil {
				t.Fatalf("corruption in %s went undetected", name)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) {
				t.Fatalf("corruption in %s produced untyped error: %v", name, err)
			}
		})
	}
}

func TestCorruptMetaRejectedAtOpen(t *testing.T) {
	dir := writeStore(t, buildSampleGraph())
	flipByte(t, dir, MetaFile)
	if _, err := Open(dir); err == nil || !(errors.Is(err, ErrCorrupt) || errors.Is(err, ErrBadMagic) || errors.Is(err, ErrBadVersion)) {
		t.Fatalf("corrupt meta: Open err = %v", err)
	}
}

// TestCorruptionDetectedWithSmallPages checks the slow verification
// path where the cache page size differs from the checksum chunk size.
func TestCorruptionDetectedWithSmallPages(t *testing.T) {
	dir := writeStore(t, buildSampleGraph())
	flipByte(t, dir, NodeFile)
	db, err := OpenOptions(dir, Options{PageSize: 256, CachePages: 4})
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			return
		}
		t.Fatal(err)
	}
	defer db.Close()
	if err := readEverything(db); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestTruncatedFileRejectedAtOpen(t *testing.T) {
	dir := writeStore(t, buildSampleGraph())
	path := filepath.Join(dir, NodeFile)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-1); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestMissingSidecarRejectedAtOpen(t *testing.T) {
	dir := writeStore(t, buildSampleGraph())
	if err := os.Remove(filepath.Join(dir, RelFile+ChecksumSuffix)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for missing sidecar, got %v", err)
	}
}

// TestLegacyV1StoreStillOpens: a v1 store (no sidecars, 24-byte meta)
// must remain readable, just without verification.
func TestLegacyV1StoreStillOpens(t *testing.T) {
	g := buildSampleGraph()
	dir := writeStore(t, g)
	for _, name := range allDataFiles {
		if err := os.Remove(filepath.Join(dir, name+ChecksumSuffix)); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		t.Fatal(err)
	}
	meta = meta[:metaSizeV1]
	meta[4] = legacyFormatVer // little-endian version field
	if err := os.WriteFile(filepath.Join(dir, MetaFile), meta, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("legacy open: %v", err)
	}
	defer db.Close()
	assertSourcesEqual(t, g, db)
}

// --- fault injection ---

// wrapFile returns a WrapReader that wraps only the named store file.
func wrapFile(name string, cfg FaultConfig) func(string, io.ReaderAt) io.ReaderAt {
	return func(path string, r io.ReaderAt) io.ReaderAt {
		if filepath.Base(path) == name {
			return NewFaultReader(r, cfg)
		}
		return r
	}
}

func TestFaultInjectionBitFlip(t *testing.T) {
	for _, name := range []string{NodeFile, RelFile, PropFile, StringFile, IndexFile} {
		t.Run(name, func(t *testing.T) {
			dir := writeStore(t, buildSampleGraph())
			db, err := OpenOptions(dir, Options{
				WrapReader: wrapFile(name, FaultConfig{Seed: 42, BitFlipEvery: 1}),
			})
			if err == nil {
				defer db.Close()
				err = readEverything(db)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flipped bits on %s reads: want ErrCorrupt, got %v", name, err)
			}
		})
	}
}

func TestFaultInjectionTransientError(t *testing.T) {
	dir := writeStore(t, buildSampleGraph())
	db, err := OpenOptions(dir, Options{
		WrapReader: wrapFile(NodeFile, FaultConfig{Seed: 1, ErrEvery: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	err = readEverything(db)
	if !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("want ErrInjectedIO, got %v", err)
	}
	// A transient I/O failure is not corruption.
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("transient I/O error misclassified as corruption: %v", err)
	}
}

func TestFaultInjectionShortRead(t *testing.T) {
	dir := writeStore(t, buildSampleGraph())
	db, err := OpenOptions(dir, Options{
		WrapReader: wrapFile(NodeFile, FaultConfig{Seed: 1, ShortReadEvery: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := readEverything(db); err == nil {
		t.Fatal("short reads went undetected")
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	dir := writeStore(t, buildSampleGraph())
	run := func() string {
		db, err := OpenOptions(dir, Options{
			WrapReader: wrapFile(NodeFile, FaultConfig{Seed: 99, BitFlipEvery: 3}),
		})
		if err != nil {
			return "open: " + err.Error()
		}
		defer db.Close()
		if err := readEverything(db); err != nil {
			return err.Error()
		}
		return "ok"
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different outcome:\n  %s\n  %s", a, b)
	}
}

// --- verify (fsck) ---

func TestVerifyCleanStore(t *testing.T) {
	dir := writeStore(t, buildSampleGraph())
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean store reported problems: %v", rep.Problems)
	}
	if rep.Nodes != 4 || len(rep.Files) != 7 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestVerifyDetectsSeededCorruption(t *testing.T) {
	files := append([]string{MetaFile}, allDataFiles...)
	for _, name := range files {
		t.Run(name, func(t *testing.T) {
			dir := writeStore(t, buildSampleGraph())
			flipByte(t, dir, name)
			rep, err := Verify(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rep.OK() {
				t.Fatalf("verify missed corruption in %s", name)
			}
			found := false
			for _, p := range rep.Problems {
				if strings.Contains(p.Error(), name) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no problem names %s: %v", name, rep.Problems)
			}
		})
	}
}

func TestVerifyDetectsTamperedSidecar(t *testing.T) {
	dir := writeStore(t, buildSampleGraph())
	flipByte(t, dir, NodeFile+ChecksumSuffix)
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("verify missed a tampered sidecar")
	}
}

// TestConcurrentStress hammers one DB from many goroutines with mixed
// reads, lookups, stats and cache drops over a larger random graph; run
// under -race it validates all locking on the serving path.
func TestConcurrentStress(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.New()
	const n = 500
	types := []model.NodeType{model.NodeFunction, model.NodeGlobal, model.NodeStruct, model.NodeFile}
	for i := 0; i < n; i++ {
		g.AddNode(types[rng.Intn(len(types))], graph.P(
			model.PropShortName, names[rng.Intn(len(names))],
			model.PropValue, rng.Intn(1000),
		))
	}
	for i := 0; i < 4*n; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), model.EdgeCalls,
			graph.P(model.PropUseStartLine, rng.Intn(5000)))
	}
	db := writeAndOpen(t, g)

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				switch rng.Intn(10) {
				case 0:
					if _, err := db.Lookup("short_name: " + names[rng.Intn(len(names))]); err != nil {
						t.Error(err)
						return
					}
				case 1:
					db.DropCaches()
				case 2:
					db.Stats()
				case 3:
					id := graph.EdgeID(rng.Intn(int(db.EdgeCount())))
					db.EdgeEnds(id)
					db.EdgeProps(id)
				default:
					id := graph.NodeID(rng.Intn(int(db.NodeCount())))
					db.NodeProps(id)
					db.Out(id)
					db.In(id)
					db.NodeProp(id, model.PropShortName)
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
