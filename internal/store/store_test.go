package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/model"
)

// buildSampleGraph constructs a small graph exercising every value kind,
// multiple edge types, parallel edges and shared strings.
func buildSampleGraph() *graph.Graph {
	g := graph.New()
	file := g.AddNode(model.NodeFile, graph.P(
		model.PropShortName, "foo.c",
		model.PropName, "src/foo.c",
	))
	foo := g.AddNode(model.NodeFunction, graph.P(
		model.PropShortName, "foo",
		model.PropName, "foo",
		model.PropLongName, "foo(int)",
		model.PropVariadic, true,
	))
	bar := g.AddNode(model.NodeFunction, graph.P(
		model.PropShortName, "bar",
		model.PropName, "bar",
	))
	glob := g.AddNode(model.NodeGlobal, graph.P(
		model.PropShortName, "counter",
		model.PropValue, 42,
	))
	g.AddEdge(file, foo, model.EdgeFileContains, nil)
	g.AddEdge(file, bar, model.EdgeFileContains, nil)
	g.AddEdge(file, glob, model.EdgeFileContains, nil)
	g.AddEdge(foo, bar, model.EdgeCalls, graph.P(
		model.PropUseFileID, 1,
		model.PropUseStartLine, 10,
		model.PropUseStartCol, 4,
	))
	g.AddEdge(foo, bar, model.EdgeCalls, graph.P(model.PropUseStartLine, 20))
	g.AddEdge(bar, glob, model.EdgeWrites, graph.P(model.PropUseStartLine, 30))
	g.AddEdge(foo, glob, model.EdgeReads, nil)
	return g
}

func writeAndOpen(t *testing.T, g *graph.Graph) *DB {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	if err := Write(dir, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// assertSourcesEqual compares every observable of two graph.Sources.
func assertSourcesEqual(t *testing.T, want, got graph.Source) {
	t.Helper()
	if want.NodeCount() != got.NodeCount() || want.EdgeCount() != got.EdgeCount() {
		t.Fatalf("counts: want (%d,%d), got (%d,%d)",
			want.NodeCount(), want.EdgeCount(), got.NodeCount(), got.EdgeCount())
	}
	for id := graph.NodeID(0); id < graph.NodeID(want.NodeCount()); id++ {
		if want.NodeType(id) != got.NodeType(id) {
			t.Fatalf("node %d type: want %s, got %s", id, want.NodeType(id), got.NodeType(id))
		}
		wp := want.NodeProps(id).Sorted()
		gp := got.NodeProps(id).Sorted()
		if !propsEqual(wp, gp) {
			t.Fatalf("node %d props: want %v, got %v", id, wp, gp)
		}
		if !reflect.DeepEqual(asInts(want.Out(id)), asInts(got.Out(id))) {
			t.Fatalf("node %d out: want %v, got %v", id, want.Out(id), got.Out(id))
		}
		if !reflect.DeepEqual(asInts(want.In(id)), asInts(got.In(id))) {
			t.Fatalf("node %d in: want %v, got %v", id, want.In(id), got.In(id))
		}
	}
	for id := graph.EdgeID(0); id < graph.EdgeID(want.EdgeCount()); id++ {
		wf, wt, wy := want.EdgeEnds(id)
		gf, gt, gy := got.EdgeEnds(id)
		if wf != gf || wt != gt || wy != gy {
			t.Fatalf("edge %d: want (%d,%d,%s), got (%d,%d,%s)", id, wf, wt, wy, gf, gt, gy)
		}
		if !propsEqual(want.EdgeProps(id).Sorted(), got.EdgeProps(id).Sorted()) {
			t.Fatalf("edge %d props: want %v, got %v", id, want.EdgeProps(id), got.EdgeProps(id))
		}
	}
}

func propsEqual(a, b graph.Props) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Key comparison is case-insensitive: the store canonicalises keys
		// to upper case.
		av, bv := a[i], b[i]
		if !av.Val.Equal(bv.Val) {
			return false
		}
		if got, want := av.Key, bv.Key; got != want {
			la, lb := len(got), len(want)
			if la != lb {
				return false
			}
			for j := 0; j < la; j++ {
				ca, cb := got[j]|0x20, want[j]|0x20
				if ca != cb {
					return false
				}
			}
		}
	}
	return true
}

func asInts(ids []graph.EdgeID) []int64 {
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	return out
}

func TestRoundTripSmall(t *testing.T) {
	g := buildSampleGraph()
	db := writeAndOpen(t, g)
	assertSourcesEqual(t, g, db)
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.New()
	types := []model.NodeType{model.NodeFunction, model.NodeGlobal, model.NodeStruct, model.NodeField, model.NodeFile}
	etypes := []model.EdgeType{model.EdgeCalls, model.EdgeReads, model.EdgeWrites, model.EdgeContains, model.EdgeIsaType}
	const n = 300
	for i := 0; i < n; i++ {
		var ps graph.Props
		if rng.Intn(4) > 0 {
			ps = graph.P(model.PropShortName, names[rng.Intn(len(names))])
		}
		if rng.Intn(3) == 0 {
			ps = append(ps, graph.Prop{Key: model.PropValue, Val: graph.Int(rng.Int63n(1000))})
		}
		g.AddNode(types[rng.Intn(len(types))], ps)
	}
	for i := 0; i < 5*n; i++ {
		var ps graph.Props
		if rng.Intn(2) == 0 {
			ps = graph.P(model.PropUseStartLine, rng.Intn(5000), model.PropUseFileID, rng.Intn(40))
		}
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), etypes[rng.Intn(len(etypes))], ps)
	}
	db := writeAndOpen(t, g)
	assertSourcesEqual(t, g, db)
}

var names = []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}

func TestLookupMatchesMemoryIndex(t *testing.T) {
	g := buildSampleGraph()
	db := writeAndOpen(t, g)
	queries := []string{
		"short_name: foo",
		"short_name: f*",
		"short_name: foo OR short_name: bar",
		"TYPE: function AND NOT short_name: bar",
		"name: src/foo.c",
		"short_name: nothing_matches",
		"(TYPE: function TYPE: global) AND short_name: c*",
	}
	for _, q := range queries {
		want, err := g.Lookup(q)
		if err != nil {
			t.Fatalf("mem %q: %v", q, err)
		}
		got, err := db.Lookup(q)
		if err != nil {
			t.Fatalf("disk %q: %v", q, err)
		}
		if !reflect.DeepEqual(nodeInts(want), nodeInts(got)) {
			t.Fatalf("Lookup(%q): mem %v, disk %v", q, want, got)
		}
	}
}

func nodeInts(ids []graph.NodeID) []int64 {
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	return out
}

func TestLookupParseError(t *testing.T) {
	db := writeAndOpen(t, buildSampleGraph())
	if _, err := db.Lookup("((broken"); err == nil {
		t.Fatal("want parse error")
	}
}

func TestDropCachesColdWarm(t *testing.T) {
	g := buildSampleGraph()
	db := writeAndOpen(t, g)
	// Warm up.
	for id := graph.NodeID(0); id < graph.NodeID(g.NodeCount()); id++ {
		db.NodeProps(id)
		db.Out(id)
	}
	before := db.Stats()["nodes"]
	// Warm reads should be pure hits.
	db.NodeProps(0)
	after := db.Stats()["nodes"]
	if after.Misses != before.Misses {
		t.Fatalf("warm read caused misses: %+v -> %+v", before, after)
	}
	db.DropCaches()
	db.NodeProps(0)
	cold := db.Stats()["nodes"]
	if cold.Misses == after.Misses {
		t.Fatal("cold read after DropCaches did not miss")
	}
	// Results identical either way.
	assertSourcesEqual(t, g, db)
}

func TestCacheEviction(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10000; i++ {
		g.AddNode(model.NodeFunction, graph.P(model.PropShortName, "f"))
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := Write(dir, g); err != nil {
		t.Fatal(err)
	}
	// Tiny cache: 2 pages of 256 bytes over 10000*32B of node records.
	db, err := OpenOptions(dir, Options{PageSize: 256, CachePages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for id := graph.NodeID(0); id < 10000; id++ {
		if db.NodeType(id) != model.NodeFunction {
			t.Fatalf("node %d wrong type", id)
		}
	}
	st := db.Stats()["nodes"]
	if st.Evictions == 0 {
		t.Fatalf("expected evictions with tiny cache, got %+v", st)
	}
}

func TestSizes(t *testing.T) {
	g := buildSampleGraph()
	dir := filepath.Join(t.TempDir(), "db")
	if err := Write(dir, g); err != nil {
		t.Fatal(err)
	}
	b, err := Sizes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Nodes != g.NodeCount()*nodeRecordSize {
		t.Fatalf("node store size = %d, want %d", b.Nodes, g.NodeCount()*nodeRecordSize)
	}
	if b.Relationships != g.EdgeCount()*relRecordSize {
		t.Fatalf("rel store size = %d, want %d", b.Relationships, g.EdgeCount()*relRecordSize)
	}
	if b.Indexes == 0 || b.Properties == 0 {
		t.Fatalf("breakdown has zero category: %+v", b)
	}
	if b.Total <= b.Nodes+b.Relationships {
		t.Fatalf("total %d not cumulative: %+v", b.Total, b)
	}
	if MB(1<<20) != 1.0 {
		t.Fatal("MB conversion wrong")
	}
}

func TestStringDeduplication(t *testing.T) {
	g := graph.New()
	for i := 0; i < 1000; i++ {
		g.AddNode(model.NodeFunction, graph.P(model.PropShortName, "same_name_every_time"))
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := Write(dir, g); err != nil {
		t.Fatal(err)
	}
	b, err := Sizes(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 copies of a 20-byte string must not appear 1000 times.
	maxProps := int64(1000*propRecordSize) + 1024
	if b.Properties > maxProps {
		t.Fatalf("string store not deduplicated: properties = %d bytes", b.Properties)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open on empty dir should fail")
	}
}

// TestConcurrentReads hammers one DB from many goroutines; run with
// -race to validate the page cache locking.
func TestConcurrentReads(t *testing.T) {
	g := buildSampleGraph()
	db := writeAndOpen(t, g)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				id := graph.NodeID(rng.Intn(int(db.NodeCount())))
				db.NodeProps(id)
				db.Out(id)
				db.In(id)
				if i%50 == 0 {
					if _, err := db.Lookup("short_name: foo"); err != nil {
						t.Error(err)
						return
					}
				}
				if i%97 == 0 {
					db.DropCaches()
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestShardedCacheStress drives warm reads, cache drops, and stats
// sampling from many goroutines against single-shard (the old
// single-mutex pager, reproduced exactly), lightly sharded, and
// default-sharded page caches. Run with -race: this is the locking
// acceptance test for the striped cache.
func TestShardedCacheStress(t *testing.T) {
	g := buildSampleGraph()
	dir := filepath.Join(t.TempDir(), "db")
	if err := Write(dir, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	for _, shards := range []int{1, 4, 16} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			// A tiny page budget forces eviction traffic through every shard.
			db, err := OpenOptions(dir, Options{CacheShards: shards, CachePages: 8})
			if err != nil {
				t.Fatalf("OpenOptions: %v", err)
			}
			defer db.Close()

			var readers, aux sync.WaitGroup
			done := make(chan struct{})
			for w := 0; w < 8; w++ {
				readers.Add(1)
				go func(seed int64) {
					defer readers.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 400; i++ {
						id := graph.NodeID(rng.Intn(int(db.NodeCount())))
						db.NodeProps(id)
						for _, e := range db.Out(id) {
							db.EdgeProps(e)
						}
						db.In(id)
					}
				}(int64(w))
			}
			// One goroutine drops every cache repeatedly mid-read.
			aux.Add(1)
			go func() {
				defer aux.Done()
				for {
					select {
					case <-done:
						return
					default:
						db.DropCaches()
					}
				}
			}()
			// One goroutine samples stats; the atomic counters only ever
			// grow, so a shrinking total means a torn or lost read.
			aux.Add(1)
			go func() {
				defer aux.Done()
				last := int64(0)
				for {
					select {
					case <-done:
						return
					default:
					}
					total := int64(0)
					for _, st := range db.Stats() {
						if st.Hits < 0 || st.Misses < 0 || st.Evictions < 0 {
							t.Error("negative cache counter")
							return
						}
						total += st.Hits + st.Misses
					}
					if total < last {
						t.Errorf("cache traffic went backwards: %d -> %d", last, total)
						return
					}
					last = total
				}
			}()

			// Run the dropper and sampler for as long as the readers do.
			readers.Wait()
			close(done)
			aux.Wait()

			var total CacheStats
			for _, st := range db.Stats() {
				total.Hits += st.Hits
				total.Misses += st.Misses
			}
			if total.Hits+total.Misses == 0 {
				t.Fatal("stress run recorded no cache traffic")
			}
		})
	}
}
