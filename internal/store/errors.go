package store

import (
	"errors"
	"fmt"
)

// Typed error taxonomy for the store. Callers select on these with
// errors.Is; the concrete error values carry file/offset detail.
var (
	// ErrCorrupt marks data whose checksum (or structure) does not match
	// what the writer recorded: bit rot, torn writes, or tampering.
	ErrCorrupt = errors.New("store: corrupt data")

	// ErrTruncated marks a store file shorter than its metadata claims.
	ErrTruncated = errors.New("store: truncated file")

	// ErrBadMagic marks a file that is not a Frappé store file at all.
	ErrBadMagic = errors.New("store: bad magic")

	// ErrBadVersion marks a store written by an incompatible format
	// version.
	ErrBadVersion = errors.New("store: unsupported format version")
)

// CorruptionError reports a checksum or structural failure pinned to one
// store file. It unwraps to ErrCorrupt (or ErrTruncated for size
// mismatches) so callers can select on the class while logs keep the
// location.
type CorruptionError struct {
	File   string // store file name (e.g. "neostore.nodestore.db")
	Chunk  int64  // checksum chunk index, -1 when not chunk-scoped
	Detail string
	Class  error // ErrCorrupt or ErrTruncated
}

func (e *CorruptionError) Error() string {
	if e.Chunk >= 0 {
		return fmt.Sprintf("store: %s chunk %d: %s", e.File, e.Chunk, e.Detail)
	}
	return fmt.Sprintf("store: %s: %s", e.File, e.Detail)
}

func (e *CorruptionError) Unwrap() error {
	if e.Class != nil {
		return e.Class
	}
	return ErrCorrupt
}

func corruptf(file string, chunk int64, format string, args ...any) *CorruptionError {
	return &CorruptionError{File: file, Chunk: chunk, Detail: fmt.Sprintf(format, args...), Class: ErrCorrupt}
}

func truncatedf(file string, format string, args ...any) *CorruptionError {
	return &CorruptionError{File: file, Chunk: -1, Detail: fmt.Sprintf(format, args...), Class: ErrTruncated}
}
