package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/model"
)

// bigNodeGraph builds a graph whose node file spans several cache pages
// (nodeRecordSize is 32, so 256 node records fill one default page).
func bigNodeGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(model.NodeFunction, graph.P(model.PropShortName, fmt.Sprintf("fn_%04d", i)))
	}
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(i-1), graph.NodeID(i), model.EdgeCalls, nil)
	}
	return g
}

// readNodeErr reads one node's properties, converting the store's
// corruption panic into an error.
func readNodeErr(db *DB, id graph.NodeID) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	db.NodeProps(id)
	return nil
}

// TestQuarantineIsolatesCorruptPage proves degraded-mode serving at the
// store layer: one corrupt page poisons only the reads that touch it,
// the store reports itself degraded, and Heal recovers once (and only
// once) the bytes are repaired.
func TestQuarantineIsolatesCorruptPage(t *testing.T) {
	const n = 600 // 600 nodes * 32 B = 3 pages of node records
	dir := writeStore(t, bigNodeGraph(n))

	// Corrupt one byte inside page 1 of the node file.
	path := filepath.Join(dir, NodeFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corruptOff := DefaultPageSize + 100
	orig := raw[corruptOff]
	raw[corruptOff] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Pages 0 and 2 serve fine before, during and after the corruption
	// is discovered.
	goodIDs := []graph.NodeID{0, 255, 512, n - 1}
	badID := graph.NodeID(300) // offset 9600, inside page 1
	for _, id := range goodIDs {
		if err := readNodeErr(db, id); err != nil {
			t.Fatalf("node %d (healthy page): %v", id, err)
		}
	}
	if db.Degraded() {
		t.Fatal("store degraded before touching the corrupt page")
	}

	// First touch of the bad page: typed corruption error + quarantine.
	if err := readNodeErr(db, badID); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("node %d on corrupt page: want ErrCorrupt, got %v", badID, err)
	}
	if !db.Degraded() {
		t.Fatal("store not degraded after corruption surfaced")
	}
	if q := db.QuarantinedPages(); len(q["nodes"]) != 1 || q["nodes"][0] != 1 {
		t.Fatalf("QuarantinedPages = %v, want nodes:[1]", q)
	}
	if got := db.Stats()["nodes"].Quarantined; got != 1 {
		t.Fatalf("Stats quarantined = %d, want 1", got)
	}

	// Repeat read fails fast with the same class; healthy pages still serve.
	if err := readNodeErr(db, badID); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("quarantined reread: want ErrCorrupt, got %v", err)
	}
	for _, id := range goodIDs {
		if err := readNodeErr(db, id); err != nil {
			t.Fatalf("node %d while degraded: %v", id, err)
		}
	}

	// Heal without fixing the bytes: the page stays quarantined.
	if healed, remaining := db.Heal(); healed != 0 || remaining != 1 {
		t.Fatalf("Heal on still-corrupt page = (%d, %d), want (0, 1)", healed, remaining)
	}
	if !db.Degraded() {
		t.Fatal("failed heal cleared degraded state")
	}

	// Repair the byte on disk; now Heal recovers the page.
	raw[corruptOff] = orig
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if healed, remaining := db.Heal(); healed != 1 || remaining != 0 {
		t.Fatalf("Heal after repair = (%d, %d), want (1, 0)", healed, remaining)
	}
	if db.Degraded() {
		t.Fatal("store still degraded after successful heal")
	}
	if err := readNodeErr(db, badID); err != nil {
		t.Fatalf("node %d after heal: %v", badID, err)
	}
}

// TestTransientErrorsAreNotQuarantined: injected I/O failures must not
// quarantine pages — only corruption-class (disk state) errors do.
func TestTransientErrorsAreNotQuarantined(t *testing.T) {
	dir := writeStore(t, buildSampleGraph())
	db, err := OpenOptions(dir, Options{
		WrapReader: wrapFile(NodeFile, FaultConfig{Seed: 1, ErrEvery: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := readNodeErr(db, 0); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("want ErrInjectedIO, got %v", err)
	}
	if db.Degraded() {
		t.Fatal("transient I/O error quarantined a page")
	}
	if got := db.Stats()["nodes"].Quarantined; got != 0 {
		t.Fatalf("quarantined = %d, want 0", got)
	}
}
