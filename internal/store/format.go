// Package store persists a Frappé graph to record-oriented store files
// and serves reads back through an LRU page cache, mirroring the design
// points of Neo4j's store that the paper's evaluation depends on:
//
//   - fixed-size node and relationship records, with adjacency encoded as
//     linked relationship chains threaded through the relationship store;
//   - a separate property store (fixed records) backed by a deduplicated
//     string store and a key/type name table;
//   - an index file holding the auto-index, searched on disk via binary
//     search over sorted (key, value) terms;
//   - a page cache whose contents distinguish the paper's cold runs
//     (caches dropped) from warm runs (caches populated).
//
// A store directory contains:
//
//	neostore.meta.db           counts + magic
//	neostore.nodestore.db      32-byte node records
//	neostore.relationshipstore.db  48-byte relationship records
//	neostore.propertystore.db  16-byte property records
//	neostore.stringstore.db    raw deduplicated string bytes
//	neostore.keystore.db       property-key / node-type / edge-type names
//	neostore.index.db          sorted auto-index terms + posting lists
//
// The DB type implements graph.Source, so the Cypher engine and the
// traversal API run unchanged against disk-backed data.
package store

// File names within a store directory.
const (
	MetaFile   = "neostore.meta.db"
	NodeFile   = "neostore.nodestore.db"
	RelFile    = "neostore.relationshipstore.db"
	PropFile   = "neostore.propertystore.db"
	StringFile = "neostore.stringstore.db"
	KeyFile    = "neostore.keystore.db"
	IndexFile  = "neostore.index.db"
)

// Record sizes. Node and relationship records are fixed-size so that a
// record address is a multiplication, as in Neo4j's store files.
const (
	nodeRecordSize = 32 // typ u16, pad u16, propCount u32, propOff u64, firstOut u64, firstIn u64
	relRecordSize  = 48 // from u64, to u64, typ u16, pad u16, propCount u32, propOff u64, nextOut u64, nextIn u64
	propRecordSize = 16 // keyID u16, kind u8, pad u8, aux u32, payload u64
)

// Chain terminator: stored pointers are id+1 so that 0 means "none".
const nilRef = 0

// Magic numbers and format versions. Version 2 added per-chunk CRC32-C
// checksum sidecars for every data file plus a self-checksum in the meta
// file; version 1 stores (no checksums) are still readable.
const (
	metaMagic       = 0x46524150 // "FRAP"
	indexMagic      = 0x46524958 // "FRIX"
	formatVer       = 2
	legacyFormatVer = 1

	metaSizeV1 = 24 // magic u32, ver u32, nodeCount u64, edgeCount u64
	metaSizeV2 = 28 // v1 fields + crc32c of them
)

// Property value kind tags in property records.
const (
	propKindInt    = 1
	propKindString = 2
	propKindBool   = 3
)
