package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strings"

	"frappe/internal/atomicfile"
	"frappe/internal/graph"
	"frappe/internal/model"
)

// Write persists g into dir, creating it if needed. Existing store files
// in dir are replaced in one crash-consistent commit: a crash at any
// instant leaves dir either fully the old store or fully the new one
// (see internal/atomicfile). The resulting store is opened with Open.
func Write(dir string, g *graph.Graph) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c, err := atomicfile.NewCommit(dir)
	if err != nil {
		return err
	}
	defer c.Abort()
	if err := StageTo(c, g); err != nil {
		return err
	}
	return c.Publish()
}

// StageTo writes g's store files (plus checksum sidecars) into an open
// commit without publishing, so callers can bundle the store with other
// artifacts — delta session state, the update journal — into one atomic
// unit (see delta.PersistUpdate).
func StageTo(c *atomicfile.Commit, g *graph.Graph) error {
	return StageSub(c, "", g)
}

// StageSub is StageTo with the store files placed under sub (a
// slash-relative subdirectory of the commit's directory; "" means the
// directory itself). One commit can stage several self-contained stores
// this way — the sharded layout writes every shard plus its sidecars as
// a single atomic unit, so a crash never leaves shards at mixed epochs.
func StageSub(c *atomicfile.Commit, sub string, g *graph.Graph) error {
	join := func(name string) string {
		if sub == "" {
			return name
		}
		return sub + "/" + name
	}
	w := &writer{g: g, path: func(name string) string { return c.Path(join(name)) }}
	if err := w.run(); err != nil {
		return err
	}
	c.Add(join(MetaFile))
	for _, name := range []string{NodeFile, RelFile, PropFile, StringFile, KeyFile, IndexFile} {
		c.Add(join(name))
		c.Add(join(name) + ChecksumSuffix)
	}
	return nil
}

type writer struct {
	g *graph.Graph
	// path resolves a store file name to the path it is written at (a
	// commit's staging area).
	path func(name string) string

	keyIDs   map[string]uint16 // canonical key -> id
	keys     []string
	nodeTyps map[model.NodeType]uint16
	nodeTypL []string
	edgeTyps map[model.EdgeType]uint16
	edgeTypL []string

	strOffs map[string]int64
	strNext int64
	strW    *bufio.Writer

	propW    *bufio.Writer
	propNext int64
}

func (w *writer) run() (err error) {
	w.keyIDs = make(map[string]uint16)
	w.nodeTyps = make(map[model.NodeType]uint16)
	w.edgeTyps = make(map[model.EdgeType]uint16)
	w.strOffs = make(map[string]int64)

	strF, err := os.Create(w.path(StringFile))
	if err != nil {
		return err
	}
	defer strF.Close()
	w.strW = bufio.NewWriter(strF)

	propF, err := os.Create(w.path(PropFile))
	if err != nil {
		return err
	}
	defer propF.Close()
	w.propW = bufio.NewWriter(propF)

	if err := w.writeNodes(); err != nil {
		return err
	}
	if err := w.writeRels(); err != nil {
		return err
	}
	if err := w.propW.Flush(); err != nil {
		return err
	}
	if err := w.strW.Flush(); err != nil {
		return err
	}
	if err := w.writeKeys(); err != nil {
		return err
	}
	if err := w.writeIndex(); err != nil {
		return err
	}
	if err := w.writeMeta(); err != nil {
		return err
	}
	// Checksum sidecars last, once every data file is final. The meta
	// file carries its own CRC instead of a sidecar.
	for _, name := range []string{NodeFile, RelFile, PropFile, StringFile, KeyFile, IndexFile} {
		if err := writeChecksums(w.path(name)); err != nil {
			return err
		}
	}
	return nil
}

func (w *writer) keyID(key string) uint16 {
	canon := strings.ToUpper(key)
	if id, ok := w.keyIDs[canon]; ok {
		return id
	}
	id := uint16(len(w.keys))
	w.keyIDs[canon] = id
	w.keys = append(w.keys, canon)
	return id
}

func (w *writer) nodeTypeID(t model.NodeType) uint16 {
	if id, ok := w.nodeTyps[t]; ok {
		return id
	}
	id := uint16(len(w.nodeTypL))
	w.nodeTyps[t] = id
	w.nodeTypL = append(w.nodeTypL, string(t))
	return id
}

func (w *writer) edgeTypeID(t model.EdgeType) uint16 {
	if id, ok := w.edgeTyps[t]; ok {
		return id
	}
	id := uint16(len(w.edgeTypL))
	w.edgeTyps[t] = id
	w.edgeTypL = append(w.edgeTypL, string(t))
	return id
}

func (w *writer) internString(s string) (int64, error) {
	if off, ok := w.strOffs[s]; ok {
		return off, nil
	}
	off := w.strNext
	n, err := w.strW.WriteString(s)
	if err != nil {
		return 0, err
	}
	w.strNext += int64(n)
	w.strOffs[s] = off
	return off, nil
}

// writeProps appends one property record per prop and returns the byte
// offset of the first record.
func (w *writer) writeProps(ps graph.Props) (off int64, count uint32, err error) {
	off = w.propNext
	var rec [propRecordSize]byte
	for _, p := range ps {
		binary.LittleEndian.PutUint16(rec[0:2], w.keyID(p.Key))
		rec[3] = 0
		var aux uint32
		var payload uint64
		switch p.Val.Kind() {
		case graph.KindInt:
			rec[2] = propKindInt
			payload = uint64(p.Val.AsInt())
		case graph.KindBool:
			rec[2] = propKindBool
			payload = uint64(p.Val.AsInt())
		case graph.KindString:
			rec[2] = propKindString
			s := p.Val.AsString()
			so, err := w.internString(s)
			if err != nil {
				return 0, 0, err
			}
			aux = uint32(len(s))
			payload = uint64(so)
		default:
			continue // nil properties are not stored
		}
		binary.LittleEndian.PutUint32(rec[4:8], aux)
		binary.LittleEndian.PutUint64(rec[8:16], payload)
		if _, err := w.propW.Write(rec[:]); err != nil {
			return 0, 0, err
		}
		w.propNext += propRecordSize
		count++
	}
	return off, count, nil
}

func (w *writer) writeNodes() error {
	f, err := os.Create(w.path(NodeFile))
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	var rec [nodeRecordSize]byte
	n := w.g.NodeCount()
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		off, cnt, err := w.writeProps(w.g.NodeProps(id))
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint16(rec[0:2], w.nodeTypeID(w.g.NodeType(id)))
		binary.LittleEndian.PutUint16(rec[2:4], 0)
		binary.LittleEndian.PutUint32(rec[4:8], cnt)
		binary.LittleEndian.PutUint64(rec[8:16], uint64(off))
		binary.LittleEndian.PutUint64(rec[16:24], chainHead(w.g.Out(id)))
		binary.LittleEndian.PutUint64(rec[24:32], chainHead(w.g.In(id)))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func chainHead(edges []graph.EdgeID) uint64 {
	if len(edges) == 0 {
		return nilRef
	}
	return uint64(edges[0]) + 1
}

func (w *writer) writeRels() error {
	// Adjacency is stored as linked chains threaded through relationship
	// records (as in Neo4j): nextOut[e] is the edge after e in Out(from(e)).
	e := w.g.EdgeCount()
	nextOut := make([]uint64, e)
	nextIn := make([]uint64, e)
	n := w.g.NodeCount()
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		out := w.g.Out(id)
		for i := 0; i+1 < len(out); i++ {
			nextOut[out[i]] = uint64(out[i+1]) + 1
		}
		in := w.g.In(id)
		for i := 0; i+1 < len(in); i++ {
			nextIn[in[i]] = uint64(in[i+1]) + 1
		}
	}

	f, err := os.Create(w.path(RelFile))
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	var rec [relRecordSize]byte
	for id := graph.EdgeID(0); id < graph.EdgeID(e); id++ {
		from, to, typ := w.g.EdgeEnds(id)
		off, cnt, err := w.writeProps(w.g.EdgeProps(id))
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(rec[0:8], uint64(from))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(to))
		binary.LittleEndian.PutUint16(rec[16:18], w.edgeTypeID(typ))
		binary.LittleEndian.PutUint16(rec[18:20], 0)
		binary.LittleEndian.PutUint32(rec[20:24], cnt)
		binary.LittleEndian.PutUint64(rec[24:32], uint64(off))
		binary.LittleEndian.PutUint64(rec[32:40], nextOut[id])
		binary.LittleEndian.PutUint64(rec[40:48], nextIn[id])
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeStringTable(bw *bufio.Writer, items []string) error {
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(items)))
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	var u16 [2]byte
	for _, s := range items {
		if len(s) > 0xFFFF {
			return fmt.Errorf("store: name too long (%d bytes)", len(s))
		}
		binary.LittleEndian.PutUint16(u16[:], uint16(len(s)))
		if _, err := bw.Write(u16[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	return nil
}

func (w *writer) writeKeys() error {
	f, err := os.Create(w.path(KeyFile))
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	for _, tbl := range [][]string{w.keys, w.nodeTypL, w.edgeTypL} {
		if err := writeStringTable(bw, tbl); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (w *writer) writeIndex() error {
	type entry struct {
		key, value string
		ids        []graph.NodeID
	}
	var entries []entry
	w.g.Index().Entries(func(key, value string, ids []graph.NodeID) {
		entries = append(entries, entry{key, value, ids})
	})
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		return entries[i].value < entries[j].value
	})

	// Compute offsets: header = magic(4) + count(4), then count*8 offsets.
	headerSize := int64(8 + 8*len(entries))
	offs := make([]int64, len(entries))
	next := headerSize
	for i, e := range entries {
		offs[i] = next
		next += 2 + int64(len(e.key)) + 2 + int64(len(e.value)) + 4 + 8*int64(len(e.ids))
	}

	f, err := os.Create(w.path(IndexFile))
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	var u32 [4]byte
	var u16 [2]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], indexMagic)
	bw.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(entries)))
	bw.Write(u32[:])
	for _, o := range offs {
		binary.LittleEndian.PutUint64(u64[:], uint64(o))
		bw.Write(u64[:])
	}
	for _, e := range entries {
		binary.LittleEndian.PutUint16(u16[:], uint16(len(e.key)))
		bw.Write(u16[:])
		bw.WriteString(e.key)
		binary.LittleEndian.PutUint16(u16[:], uint16(len(e.value)))
		bw.Write(u16[:])
		bw.WriteString(e.value)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(e.ids)))
		bw.Write(u32[:])
		for _, id := range e.ids {
			binary.LittleEndian.PutUint64(u64[:], uint64(id))
			bw.Write(u64[:])
		}
	}
	return bw.Flush()
}

func (w *writer) writeMeta() error {
	f, err := os.Create(w.path(MetaFile))
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [metaSizeV2]byte
	binary.LittleEndian.PutUint32(buf[0:4], metaMagic)
	binary.LittleEndian.PutUint32(buf[4:8], formatVer)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(w.g.NodeCount()))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(w.g.EdgeCount()))
	binary.LittleEndian.PutUint32(buf[24:28], crc32.Checksum(buf[:metaSizeV1], castagnoli))
	_, err = f.Write(buf[:])
	return err
}
