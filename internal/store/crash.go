package store

import "frappe/internal/atomicfile"

// Deterministic crash-point injection over the store's persist paths,
// re-exported from internal/atomicfile so torture tests can drive it
// through the store API (in the spirit of FaultReader for reads). Every
// fsync/rename/append boundary inside a commit is a numbered crash
// point; a CrashPoints plan with KillAt = n makes the n-th point return
// a CrashError and marks the plan dead, so all later atomic-file
// operations in the doomed "process" keep failing until the plan is
// cleared — the in-process analogue of SIGKILL.
type CrashPoints = atomicfile.CrashPlan

// CrashError is the injected failure raised at a crash point.
type CrashError = atomicfile.CrashError

// SetCrashPoints installs a crash plan for subsequent store/delta
// persists. A plan with KillAt = 0 only traces (records the points it
// passes), which is how tests enumerate the kill schedule.
func SetCrashPoints(p *CrashPoints) { atomicfile.SetCrashPlan(p) }

// ClearCrashPoints removes the active plan, ending the simulated crash.
func ClearCrashPoints() { atomicfile.ClearCrashPlan() }

// VerifyFiles re-checks the named store files (checksum sidecars, or the
// meta self-checksum for MetaFile) and returns one error per file that
// fails. Unknown names — sidecars, non-store artifacts that rode along
// in the same commit — are skipped. Startup recovery calls this after a
// roll-forward so an interrupted update cannot seed the page caches from
// files whose replayed bytes are bad.
func VerifyFiles(dir string, names []string) []error {
	var errs []error
	for _, name := range names {
		switch name {
		case NodeFile, RelFile, PropFile, StringFile, KeyFile, IndexFile:
			if fc := verifyDataFile(dir, name, true); !fc.OK {
				errs = append(errs, fc.Err)
			}
		case MetaFile:
			if err := verifyMetaFile(dir); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errs
}
