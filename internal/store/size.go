package store

import (
	"os"
	"path/filepath"
)

// SizeBreakdown reports the on-disk footprint of a store directory in the
// categories of Table 4 of the paper: Properties (property records +
// string store + token tables), Nodes, Relationships, Indexes, Total.
// All values are bytes.
type SizeBreakdown struct {
	Properties    int64
	Nodes         int64
	Relationships int64
	Indexes       int64
	Total         int64
}

// MB converts bytes to mebibytes for paper-style reporting.
func MB(bytes int64) float64 { return float64(bytes) / (1 << 20) }

// Sizes stats the store files in dir and returns the Table 4 breakdown.
func Sizes(dir string) (SizeBreakdown, error) {
	var b SizeBreakdown
	sz := func(name string) (int64, error) {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		return st.Size(), nil
	}
	var err error
	var n int64
	if n, err = sz(PropFile); err != nil {
		return b, err
	}
	b.Properties += n
	if n, err = sz(StringFile); err != nil {
		return b, err
	}
	b.Properties += n
	if n, err = sz(KeyFile); err != nil {
		return b, err
	}
	b.Properties += n
	if b.Nodes, err = sz(NodeFile); err != nil {
		return b, err
	}
	if b.Relationships, err = sz(RelFile); err != nil {
		return b, err
	}
	if b.Indexes, err = sz(IndexFile); err != nil {
		return b, err
	}
	meta, err := sz(MetaFile)
	if err != nil {
		return b, err
	}
	b.Total = b.Properties + b.Nodes + b.Relationships + b.Indexes + meta
	return b, nil
}
