package store

// Degraded-mode introspection. A DB whose pagers have quarantined pages
// still serves every read that avoids those pages; callers use Degraded
// to surface the condition (readiness probes, stats) and Heal to retry
// after the underlying files were repaired.

// Degraded reports whether any store file currently has quarantined
// pages.
func (db *DB) Degraded() bool {
	for _, p := range db.pagers() {
		if p.quarCount.Load() > 0 {
			return true
		}
	}
	return false
}

// QuarantinedPages lists quarantined page numbers per store file, using
// the same file keys as Stats. Files with no quarantined pages are
// omitted; an empty map means the store is healthy.
func (db *DB) QuarantinedPages() map[string][]int64 {
	out := map[string][]int64{}
	for key, p := range db.pagers() {
		if pages := p.QuarantinedPages(); len(pages) > 0 {
			out[key] = pages
		}
	}
	return out
}

// Heal retries every quarantined page across all store files, returning
// how many pages recovered and how many remain quarantined. Pages only
// heal if the on-disk bytes changed (repair, restore); Heal itself never
// writes.
func (db *DB) Heal() (healed, remaining int) {
	for _, p := range db.pagers() {
		h, r := p.Heal()
		healed += h
		remaining += r
	}
	return healed, remaining
}

// pagers returns the per-file pagers under their Stats keys.
func (db *DB) pagers() map[string]*pager {
	return map[string]*pager{
		"nodes":         db.nodes,
		"relationships": db.rels,
		"properties":    db.props,
		"strings":       db.strs,
		"index":         db.index,
	}
}
