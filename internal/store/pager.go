package store

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// DefaultPageSize is the page cache's page size. 8 KiB matches Neo4j's
// page cache unit.
const DefaultPageSize = 8192

// DefaultCachePages bounds the per-file page cache; generous enough to
// hold a warm working set for the benchmark-scale graph while still small
// enough that DropCaches has meaning.
const DefaultCachePages = 8192

// CacheStats counts page cache traffic.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// pager serves random reads over one store file through an LRU page
// cache. All store reads funnel through pagers, so dropping them models a
// cold start.
type pager struct {
	mu       sync.Mutex
	f        *os.File
	size     int64
	pageSize int
	maxPages int
	pages    map[int64]*pageEntry
	lruHead  *pageEntry // most recent
	lruTail  *pageEntry // least recent
	stats    CacheStats
}

type pageEntry struct {
	no         int64
	buf        []byte
	prev, next *pageEntry
}

func openPager(path string, pageSize, maxPages int) (*pager, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &pager{
		f:        f,
		size:     st.Size(),
		pageSize: pageSize,
		maxPages: maxPages,
		pages:    make(map[int64]*pageEntry),
	}, nil
}

func (p *pager) Close() error { return p.f.Close() }

// Len returns the file size in bytes.
func (p *pager) Len() int64 { return p.size }

// ReadAt fills buf from the file at off, going through the page cache.
// Reads past EOF return an error.
func (p *pager) ReadAt(buf []byte, off int64) error {
	if off < 0 || off+int64(len(buf)) > p.size {
		return fmt.Errorf("store: read [%d,%d) out of bounds (file size %d)", off, off+int64(len(buf)), p.size)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for n := 0; n < len(buf); {
		pageNo := (off + int64(n)) / int64(p.pageSize)
		pg, err := p.pageLocked(pageNo)
		if err != nil {
			return err
		}
		inPage := int((off + int64(n)) % int64(p.pageSize))
		c := copy(buf[n:], pg.buf[inPage:])
		n += c
	}
	return nil
}

func (p *pager) pageLocked(no int64) (*pageEntry, error) {
	if pg, ok := p.pages[no]; ok {
		p.stats.Hits++
		p.touchLocked(pg)
		return pg, nil
	}
	p.stats.Misses++
	buf := make([]byte, p.pageSize)
	n, err := p.f.ReadAt(buf, no*int64(p.pageSize))
	if err != nil && err != io.EOF {
		return nil, err
	}
	buf = buf[:p.pageSize]
	_ = n
	pg := &pageEntry{no: no, buf: buf}
	p.pages[no] = pg
	p.pushFrontLocked(pg)
	if len(p.pages) > p.maxPages {
		p.evictLocked()
	}
	return pg, nil
}

func (p *pager) touchLocked(pg *pageEntry) {
	if p.lruHead == pg {
		return
	}
	p.unlinkLocked(pg)
	p.pushFrontLocked(pg)
}

func (p *pager) pushFrontLocked(pg *pageEntry) {
	pg.prev = nil
	pg.next = p.lruHead
	if p.lruHead != nil {
		p.lruHead.prev = pg
	}
	p.lruHead = pg
	if p.lruTail == nil {
		p.lruTail = pg
	}
}

func (p *pager) unlinkLocked(pg *pageEntry) {
	if pg.prev != nil {
		pg.prev.next = pg.next
	} else {
		p.lruHead = pg.next
	}
	if pg.next != nil {
		pg.next.prev = pg.prev
	} else {
		p.lruTail = pg.prev
	}
	pg.prev, pg.next = nil, nil
}

func (p *pager) evictLocked() {
	victim := p.lruTail
	if victim == nil {
		return
	}
	p.unlinkLocked(victim)
	delete(p.pages, victim.no)
	p.stats.Evictions++
}

// Drop empties the cache (a "cold" start).
func (p *pager) Drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pages = make(map[int64]*pageEntry)
	p.lruHead, p.lruTail = nil, nil
}

// Stats returns a snapshot of the cache counters.
func (p *pager) Stats() CacheStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
