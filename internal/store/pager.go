package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// DefaultPageSize is the page cache's page size. 8 KiB matches Neo4j's
// page cache unit.
const DefaultPageSize = 8192

// DefaultCachePages bounds the per-file page cache; generous enough to
// hold a warm working set for the benchmark-scale graph while still small
// enough that DropCaches has meaning.
const DefaultCachePages = 8192

// CacheStats counts page cache traffic.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// ChecksumFailures counts cache misses whose page failed CRC
	// verification.
	ChecksumFailures int64
}

// pager serves random reads over one store file through an LRU page
// cache. All store reads funnel through pagers, so dropping them models a
// cold start. When a checksum sidecar is loaded, every cache miss is
// verified against it before the page enters the cache — a flipped bit on
// disk surfaces as ErrCorrupt, never as silently wrong records.
type pager struct {
	mu       sync.Mutex
	f        *os.File
	r        io.ReaderAt // f, possibly wrapped by a fault injector
	name     string      // base file name, for error messages
	size     int64
	pageSize int
	maxPages int
	crc      *crcTable // nil for legacy (v1) stores
	pages    map[int64]*pageEntry
	lruHead  *pageEntry // most recent
	lruTail  *pageEntry // least recent
	stats    CacheStats
}

type pageEntry struct {
	no         int64
	buf        []byte
	prev, next *pageEntry
}

// openPager opens path for cached reads. wantCRC requires a checksum
// sidecar (v2 stores); wrap, when non-nil, interposes on the underlying
// reads (fault injection).
func openPager(path string, pageSize, maxPages int, wantCRC bool, wrap func(path string, r io.ReaderAt) io.ReaderAt) (*pager, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	name := filepath.Base(path)
	var crc *crcTable
	if crc, err = loadChecksums(path); err != nil {
		if !os.IsNotExist(err) {
			f.Close()
			return nil, err
		}
		if wantCRC {
			f.Close()
			return nil, corruptf(name, -1, "missing checksum sidecar %s", name+ChecksumSuffix)
		}
		crc = nil
	}
	if crc != nil && crc.fileSize != st.Size() {
		f.Close()
		return nil, truncatedf(name, "file is %d bytes, checksums cover %d", st.Size(), crc.fileSize)
	}
	var r io.ReaderAt = f
	if wrap != nil {
		if w := wrap(path, f); w != nil {
			r = w
		}
	}
	return &pager{
		f:        f,
		r:        r,
		name:     name,
		size:     st.Size(),
		pageSize: pageSize,
		maxPages: maxPages,
		crc:      crc,
		pages:    make(map[int64]*pageEntry),
	}, nil
}

func (p *pager) Close() error { return p.f.Close() }

// Len returns the file size in bytes.
func (p *pager) Len() int64 { return p.size }

// ReadAt fills buf from the file at off, going through the page cache.
// Reads past EOF return an error.
func (p *pager) ReadAt(buf []byte, off int64) error {
	if off < 0 || off+int64(len(buf)) > p.size {
		return truncatedf(p.name, "read [%d,%d) out of bounds (file size %d)", off, off+int64(len(buf)), p.size)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for n := 0; n < len(buf); {
		pageNo := (off + int64(n)) / int64(p.pageSize)
		pg, err := p.pageLocked(pageNo)
		if err != nil {
			return err
		}
		inPage := int((off + int64(n)) % int64(p.pageSize))
		c := copy(buf[n:], pg.buf[inPage:])
		n += c
	}
	return nil
}

func (p *pager) pageLocked(no int64) (*pageEntry, error) {
	if pg, ok := p.pages[no]; ok {
		p.stats.Hits++
		p.touchLocked(pg)
		return pg, nil
	}
	p.stats.Misses++
	buf := make([]byte, p.pageSize)
	n, err := p.r.ReadAt(buf, no*int64(p.pageSize))
	if err != nil && err != io.EOF {
		return nil, &CorruptionError{File: p.name, Chunk: -1,
			Detail: fmt.Sprintf("read of page %d failed: %v", no, err),
			Class:  err}
	}
	buf = buf[:p.pageSize]
	_ = n
	if err := p.verifyPageLocked(no, buf); err != nil {
		p.stats.ChecksumFailures++
		return nil, err
	}
	pg := &pageEntry{no: no, buf: buf}
	p.pages[no] = pg
	p.pushFrontLocked(pg)
	if len(p.pages) > p.maxPages {
		p.evictLocked()
	}
	return pg, nil
}

// verifyPageLocked checks the freshly loaded page against the checksum
// sidecar. In the common case (pageSize == chunkSize, aligned) the CRC
// runs over the bytes already in hand; otherwise the covering chunks are
// re-read from the file so the verification granularity stays the chunk
// size the writer used.
func (p *pager) verifyPageLocked(no int64, buf []byte) error {
	if p.crc == nil {
		return nil
	}
	pageOff := no * int64(p.pageSize)
	valid := p.size - pageOff
	if valid <= 0 {
		return nil
	}
	if valid > int64(p.pageSize) {
		valid = int64(p.pageSize)
	}
	if p.pageSize == p.crc.chunkSize {
		return p.crc.verifyChunk(p.name, no, buf[:valid])
	}
	// Page and chunk granularities differ: verify every chunk the page
	// overlaps, reading full chunks from the underlying file.
	first := pageOff / int64(p.crc.chunkSize)
	last := (pageOff + valid - 1) / int64(p.crc.chunkSize)
	chunk := make([]byte, p.crc.chunkSize)
	for i := first; i <= last; i++ {
		n := p.crc.chunkLen(i)
		cn, err := p.r.ReadAt(chunk[:n], i*int64(p.crc.chunkSize))
		if err != nil && !(err == io.EOF && cn == n) {
			return &CorruptionError{File: p.name, Chunk: i,
				Detail: "verification read failed: " + err.Error(), Class: err}
		}
		if err := p.crc.verifyChunk(p.name, i, chunk[:n]); err != nil {
			return err
		}
	}
	return nil
}

func (p *pager) touchLocked(pg *pageEntry) {
	if p.lruHead == pg {
		return
	}
	p.unlinkLocked(pg)
	p.pushFrontLocked(pg)
}

func (p *pager) pushFrontLocked(pg *pageEntry) {
	pg.prev = nil
	pg.next = p.lruHead
	if p.lruHead != nil {
		p.lruHead.prev = pg
	}
	p.lruHead = pg
	if p.lruTail == nil {
		p.lruTail = pg
	}
}

func (p *pager) unlinkLocked(pg *pageEntry) {
	if pg.prev != nil {
		pg.prev.next = pg.next
	} else {
		p.lruHead = pg.next
	}
	if pg.next != nil {
		pg.next.prev = pg.prev
	} else {
		p.lruTail = pg.prev
	}
	pg.prev, pg.next = nil, nil
}

func (p *pager) evictLocked() {
	victim := p.lruTail
	if victim == nil {
		return
	}
	p.unlinkLocked(victim)
	delete(p.pages, victim.no)
	p.stats.Evictions++
}

// Drop empties the cache (a "cold" start).
func (p *pager) Drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pages = make(map[int64]*pageEntry)
	p.lruHead, p.lruTail = nil, nil
}

// Stats returns a snapshot of the cache counters.
func (p *pager) Stats() CacheStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
