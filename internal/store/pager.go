package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the page cache's page size. 8 KiB matches Neo4j's
// page cache unit.
const DefaultPageSize = 8192

// DefaultCachePages bounds the per-file page cache; generous enough to
// hold a warm working set for the benchmark-scale graph while still small
// enough that DropCaches has meaning.
const DefaultCachePages = 8192

// DefaultCacheShards is the number of lock stripes per pager. Sixteen
// shards keep lock hold times short under concurrent query traffic
// without measurable overhead for single-threaded readers; the count
// must be (and is rounded up to) a power of two so consecutive pages
// spread round-robin across stripes by masking.
const DefaultCacheShards = 16

// CacheStats counts page cache traffic.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// ChecksumFailures counts cache misses whose page failed CRC
	// verification.
	ChecksumFailures int64
	// Quarantined is the number of pages currently quarantined after a
	// corruption-class read failure (a gauge, not a counter; Heal can
	// bring it back down).
	Quarantined int64
}

// cacheCounters is the pager's live, atomically updated form of
// CacheStats. Each counter is read and written with atomic operations,
// so a Stats snapshot taken during concurrent traffic never sees a torn
// (half-written) counter value; the counters are sampled independently,
// so Hits+Misses may lag a read that is in flight at snapshot time.
type cacheCounters struct {
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	checksum  atomic.Int64
}

func (c *cacheCounters) snapshot() CacheStats {
	return CacheStats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Evictions:        c.evictions.Load(),
		ChecksumFailures: c.checksum.Load(),
	}
}

// Stats returns a snapshot of the cache counters plus the current
// quarantine size. Safe to call concurrently with reads; each counter is
// loaded atomically.
func (p *pager) Stats() CacheStats {
	s := p.stats.snapshot()
	s.Quarantined = p.quarCount.Load()
	return s
}

// pager serves random reads over one store file through a lock-striped
// LRU page cache. All store reads funnel through pagers, so dropping
// them models a cold start. When a checksum sidecar is loaded, every
// cache miss is verified against it before the page enters the cache — a
// flipped bit on disk surfaces as ErrCorrupt, never as silently wrong
// records.
//
// Concurrency model: the cache is split into power-of-two shards, each
// owning a disjoint set of page numbers (pageNo & shardMask) with its
// own mutex, page map and LRU list. A read takes exactly one shard lock
// per page touched and never holds two shard locks at once, so there is
// no lock ordering to get wrong and readers of different shards never
// contend. Page buffers are immutable once loaded (eviction merely drops
// the reference), which lets the byte copy into the caller's buffer
// happen outside the shard lock.
type pager struct {
	f        *os.File
	r        io.ReaderAt // f, possibly wrapped by a fault injector
	name     string      // base file name, for error messages
	size     int64
	pageSize int
	crc      *crcTable // nil for legacy (v1) stores

	shards    []pagerShard
	shardMask int64
	stats     cacheCounters

	// Quarantine: pages whose load failed with a corruption-class error.
	// Later reads of a quarantined page fail fast (before any shard lock
	// or disk I/O) with the recorded error, so one bad page degrades only
	// the queries that touch it. quarCount mirrors len(quar) atomically so
	// the common no-quarantine read path costs one atomic load.
	quarMu    sync.Mutex
	quar      map[int64]*CorruptionError
	quarCount atomic.Int64
}

// pagerShard is one lock stripe: a page map plus an LRU list, evicting
// independently once the shard exceeds its share of the page budget.
type pagerShard struct {
	mu       sync.Mutex
	maxPages int
	pages    map[int64]*pageEntry
	lruHead  *pageEntry // most recent
	lruTail  *pageEntry // least recent
}

type pageEntry struct {
	no         int64
	buf        []byte
	prev, next *pageEntry
}

// shardCount normalises a configured shard count: non-positive means the
// default, anything else is rounded up to a power of two (the shard
// picker masks rather than divides).
func shardCount(n int) int {
	if n <= 0 {
		n = DefaultCacheShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// openPager opens path for cached reads. wantCRC requires a checksum
// sidecar (v2 stores); wrap, when non-nil, interposes on the underlying
// reads (fault injection).
func openPager(path string, pageSize, maxPages, shards int, wantCRC bool, wrap func(path string, r io.ReaderAt) io.ReaderAt) (*pager, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	name := filepath.Base(path)
	var crc *crcTable
	if crc, err = loadChecksums(path); err != nil {
		if !os.IsNotExist(err) {
			f.Close()
			return nil, err
		}
		if wantCRC {
			f.Close()
			return nil, corruptf(name, -1, "missing checksum sidecar %s", name+ChecksumSuffix)
		}
		crc = nil
	}
	if crc != nil && crc.fileSize != st.Size() {
		f.Close()
		return nil, truncatedf(name, "file is %d bytes, checksums cover %d", st.Size(), crc.fileSize)
	}
	var r io.ReaderAt = f
	if wrap != nil {
		if w := wrap(path, f); w != nil {
			r = w
		}
	}
	ns := shardCount(shards)
	perShard := (maxPages + ns - 1) / ns
	if perShard < 1 {
		perShard = 1
	}
	p := &pager{
		f:         f,
		r:         r,
		name:      name,
		size:      st.Size(),
		pageSize:  pageSize,
		crc:       crc,
		shards:    make([]pagerShard, ns),
		shardMask: int64(ns - 1),
	}
	for i := range p.shards {
		p.shards[i].maxPages = perShard
		p.shards[i].pages = make(map[int64]*pageEntry)
	}
	return p, nil
}

func (p *pager) Close() error { return p.f.Close() }

// Len returns the file size in bytes.
func (p *pager) Len() int64 { return p.size }

func (p *pager) shardFor(pageNo int64) *pagerShard {
	return &p.shards[pageNo&p.shardMask]
}

// ReadAt fills buf from the file at off, going through the page cache.
// Reads past EOF return an error.
func (p *pager) ReadAt(buf []byte, off int64) error {
	if off < 0 || off+int64(len(buf)) > p.size {
		return truncatedf(p.name, "read [%d,%d) out of bounds (file size %d)", off, off+int64(len(buf)), p.size)
	}
	for n := 0; n < len(buf); {
		pageNo := (off + int64(n)) / int64(p.pageSize)
		pg, err := p.page(pageNo)
		if err != nil {
			return err
		}
		inPage := int((off + int64(n)) % int64(p.pageSize))
		// pg.buf is immutable after load; copy outside the shard lock.
		c := copy(buf[n:], pg.buf[inPage:])
		n += c
	}
	return nil
}

// page returns the entry for a page number, faulting it in (with CRC
// verification) on miss. Only the page's shard is locked; a slow disk
// read stalls at most 1/len(shards) of the cache. A page already
// quarantined fails fast before any lock or I/O; a load failing with a
// corruption-class error quarantines the page for later reads.
func (p *pager) page(no int64) (*pageEntry, error) {
	if p.quarCount.Load() > 0 {
		if qerr := p.quarantinedErr(no); qerr != nil {
			return nil, qerr
		}
	}
	sh := p.shardFor(no)
	sh.mu.Lock()
	if pg, ok := sh.pages[no]; ok {
		sh.touchLocked(pg)
		sh.mu.Unlock()
		p.stats.hits.Add(1)
		return pg, nil
	}
	pg, err := p.loadPageLocked(sh, no)
	sh.mu.Unlock()
	if err != nil {
		p.maybeQuarantine(no, err)
		return nil, err
	}
	p.stats.misses.Add(1)
	return pg, nil
}

// quarantinedErr returns the recorded corruption error for a quarantined
// page, nil otherwise.
func (p *pager) quarantinedErr(no int64) error {
	p.quarMu.Lock()
	ce := p.quar[no]
	p.quarMu.Unlock()
	if ce == nil {
		return nil
	}
	return ce
}

// maybeQuarantine records a failed page load, but only for
// corruption-class failures (ErrCorrupt, ErrTruncated): those are disk
// state, so retrying cannot help until the bytes change. Transient I/O
// errors (including injected faults) are NOT quarantined — the next read
// retries them. Called without any shard lock held.
func (p *pager) maybeQuarantine(no int64, err error) {
	if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
		return
	}
	ce, ok := err.(*CorruptionError)
	if !ok {
		ce = &CorruptionError{File: p.name, Chunk: -1, Detail: err.Error(), Class: ErrCorrupt}
	}
	p.quarMu.Lock()
	if p.quar == nil {
		p.quar = make(map[int64]*CorruptionError)
	}
	if _, dup := p.quar[no]; !dup {
		p.quar[no] = ce
		p.quarCount.Store(int64(len(p.quar)))
	}
	p.quarMu.Unlock()
}

// QuarantinedPages returns the quarantined page numbers, sorted.
func (p *pager) QuarantinedPages() []int64 {
	p.quarMu.Lock()
	out := make([]int64, 0, len(p.quar))
	for no := range p.quar {
		out = append(out, no)
	}
	p.quarMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Heal retries every quarantined page. A page that now loads and
// verifies cleanly (e.g. the file was repaired or restored from backup)
// leaves quarantine and enters the cache; one that still fails stays
// quarantined with the fresh error. Returns how many pages were healed
// and how many remain quarantined.
func (p *pager) Heal() (healed, remaining int) {
	for _, no := range p.QuarantinedPages() {
		p.quarMu.Lock()
		delete(p.quar, no)
		p.quarCount.Store(int64(len(p.quar)))
		p.quarMu.Unlock()
		if _, err := p.page(no); err != nil {
			// page() re-quarantined it (or it failed transiently, in
			// which case the next read retries anyway).
			remaining++
		} else {
			healed++
		}
	}
	return healed, remaining
}

// loadPageLocked reads page no from disk into sh, which must be locked
// and must not already hold the page.
func (p *pager) loadPageLocked(sh *pagerShard, no int64) (*pageEntry, error) {
	buf := make([]byte, p.pageSize)
	_, err := p.r.ReadAt(buf, no*int64(p.pageSize))
	if err != nil && err != io.EOF {
		return nil, &CorruptionError{File: p.name, Chunk: -1,
			Detail: fmt.Sprintf("read of page %d failed: %v", no, err),
			Class:  err}
	}
	if err := p.verifyPage(no, buf); err != nil {
		p.stats.checksum.Add(1)
		return nil, err
	}
	pg := &pageEntry{no: no, buf: buf}
	sh.pages[no] = pg
	sh.pushFrontLocked(pg)
	if len(sh.pages) > sh.maxPages {
		sh.evictLocked()
		p.stats.evictions.Add(1)
	}
	return pg, nil
}

// verifyPage checks the freshly loaded page against the checksum
// sidecar. In the common case (pageSize == chunkSize, aligned) the CRC
// runs over the bytes already in hand; otherwise the covering chunks are
// re-read from the file so the verification granularity stays the chunk
// size the writer used. The crc table is immutable after open, so this
// is safe from any shard.
func (p *pager) verifyPage(no int64, buf []byte) error {
	if p.crc == nil {
		return nil
	}
	pageOff := no * int64(p.pageSize)
	valid := p.size - pageOff
	if valid <= 0 {
		return nil
	}
	if valid > int64(p.pageSize) {
		valid = int64(p.pageSize)
	}
	if p.pageSize == p.crc.chunkSize {
		return p.crc.verifyChunk(p.name, no, buf[:valid])
	}
	// Page and chunk granularities differ: verify every chunk the page
	// overlaps, reading full chunks from the underlying file.
	first := pageOff / int64(p.crc.chunkSize)
	last := (pageOff + valid - 1) / int64(p.crc.chunkSize)
	chunk := make([]byte, p.crc.chunkSize)
	for i := first; i <= last; i++ {
		n := p.crc.chunkLen(i)
		cn, err := p.r.ReadAt(chunk[:n], i*int64(p.crc.chunkSize))
		if err != nil && !(err == io.EOF && cn == n) {
			return &CorruptionError{File: p.name, Chunk: i,
				Detail: "verification read failed: " + err.Error(), Class: err}
		}
		if err := p.crc.verifyChunk(p.name, i, chunk[:n]); err != nil {
			return err
		}
	}
	return nil
}

func (sh *pagerShard) touchLocked(pg *pageEntry) {
	if sh.lruHead == pg {
		return
	}
	sh.unlinkLocked(pg)
	sh.pushFrontLocked(pg)
}

func (sh *pagerShard) pushFrontLocked(pg *pageEntry) {
	pg.prev = nil
	pg.next = sh.lruHead
	if sh.lruHead != nil {
		sh.lruHead.prev = pg
	}
	sh.lruHead = pg
	if sh.lruTail == nil {
		sh.lruTail = pg
	}
}

func (sh *pagerShard) unlinkLocked(pg *pageEntry) {
	if pg.prev != nil {
		pg.prev.next = pg.next
	} else {
		sh.lruHead = pg.next
	}
	if pg.next != nil {
		pg.next.prev = pg.prev
	} else {
		sh.lruTail = pg.prev
	}
	pg.prev, pg.next = nil, nil
}

func (sh *pagerShard) evictLocked() {
	victim := sh.lruTail
	if victim == nil {
		return
	}
	sh.unlinkLocked(victim)
	delete(sh.pages, victim.no)
}

// Drop empties the cache (a "cold" start). Shards are emptied one at a
// time; reads racing a Drop may still hit pages in not-yet-dropped
// shards, which is harmless — the cache is read-through and pages are
// immutable.
func (p *pager) Drop() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.pages = make(map[int64]*pageEntry)
		sh.lruHead, sh.lruTail = nil, nil
		sh.mu.Unlock()
	}
}
