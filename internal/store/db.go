package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"frappe/internal/graph"
	"frappe/internal/model"
)

// DB is a read-only view over a store directory. It implements
// graph.Source, with every node, relationship, property, string and index
// access going through per-file page caches. DropCaches resets them to
// model the paper's cold-cache runs.
type DB struct {
	dir                  string
	nodeCount, edgeCount int64

	nodes *pager
	rels  *pager
	props *pager
	strs  *pager
	index *pager

	formatVersion uint32 // on-disk format version (legacy v1 has no checksums)

	// Token tables (tiny; loaded eagerly, as Neo4j loads token stores).
	keys       []string
	keyByLower map[string]uint16
	nodeTypes  []model.NodeType
	edgeTypes  []model.EdgeType

	indexEntries int // term count in the index file
}

// Options tune the page cache.
type Options struct {
	PageSize   int // bytes per page; default DefaultPageSize
	CachePages int // pages cached per store file; default DefaultCachePages

	// CacheShards sets the number of lock stripes per store file's page
	// cache (default DefaultCacheShards; rounded up to a power of two).
	// One shard reproduces the old single-mutex pager, useful as a
	// contention baseline in benchmarks.
	CacheShards int

	// WrapReader, when non-nil, interposes on the raw reads of each
	// store file — the fault-injection hook. It receives the file path
	// and the real reader and returns the reader the page cache should
	// use (return r unchanged, or nil, for no wrapping).
	WrapReader func(path string, r io.ReaderAt) io.ReaderAt
}

// Open opens the store in dir for reading.
func Open(dir string) (*DB, error) { return OpenOptions(dir, Options{}) }

// OpenOptions opens the store with explicit page-cache settings.
func OpenOptions(dir string, opt Options) (*DB, error) {
	if opt.PageSize <= 0 {
		opt.PageSize = DefaultPageSize
	}
	if opt.CachePages <= 0 {
		opt.CachePages = DefaultCachePages
	}
	db := &DB{dir: dir}
	ok := false
	defer func() {
		if !ok {
			db.Close()
		}
	}()

	meta, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		return nil, err
	}
	if len(meta) < metaSizeV1 || binary.LittleEndian.Uint32(meta[0:4]) != metaMagic {
		return nil, fmt.Errorf("store: %s is not a frappe store: %w", dir, ErrBadMagic)
	}
	switch v := binary.LittleEndian.Uint32(meta[4:8]); v {
	case legacyFormatVer:
		db.formatVersion = v
	case formatVer:
		db.formatVersion = v
		if len(meta) < metaSizeV2 {
			return nil, truncatedf(MetaFile, "meta file is %d bytes, want %d", len(meta), metaSizeV2)
		}
		want := binary.LittleEndian.Uint32(meta[24:28])
		if got := crc32.Checksum(meta[:metaSizeV1], castagnoli); got != want {
			return nil, corruptf(MetaFile, -1, "meta checksum mismatch: computed %08x, recorded %08x", got, want)
		}
	default:
		return nil, fmt.Errorf("store: format version %d: %w", v, ErrBadVersion)
	}
	db.nodeCount = int64(binary.LittleEndian.Uint64(meta[8:16]))
	db.edgeCount = int64(binary.LittleEndian.Uint64(meta[16:24]))

	wantCRC := db.formatVersion >= formatVer
	for _, p := range []struct {
		name string
		dst  **pager
	}{
		{NodeFile, &db.nodes},
		{RelFile, &db.rels},
		{PropFile, &db.props},
		{StringFile, &db.strs},
		{IndexFile, &db.index},
	} {
		pg, err := openPager(filepath.Join(dir, p.name), opt.PageSize, opt.CachePages, opt.CacheShards, wantCRC, opt.WrapReader)
		if err != nil {
			return nil, err
		}
		*p.dst = pg
	}

	if db.nodes.Len() < db.nodeCount*nodeRecordSize {
		return nil, truncatedf(NodeFile, "file holds %d bytes, %d nodes need %d",
			db.nodes.Len(), db.nodeCount, db.nodeCount*nodeRecordSize)
	}
	if db.rels.Len() < db.edgeCount*relRecordSize {
		return nil, truncatedf(RelFile, "file holds %d bytes, %d relationships need %d",
			db.rels.Len(), db.edgeCount, db.edgeCount*relRecordSize)
	}

	if err := db.loadKeys(); err != nil {
		return nil, err
	}
	if err := db.loadIndexHeader(); err != nil {
		return nil, err
	}
	ok = true
	return db, nil
}

func (db *DB) loadKeys() error {
	path := filepath.Join(db.dir, KeyFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// The key table is loaded eagerly rather than paged, so it is
	// verified whole against its sidecar here.
	if db.formatVersion >= formatVer {
		if err := verifyFileBytes(path, raw); err != nil {
			return err
		}
	}
	br := bytes.NewReader(raw)
	read := func() ([]string, error) {
		var u32 [4]byte
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(u32[:])
		out := make([]string, n)
		var u16 [2]byte
		for i := range out {
			if _, err := io.ReadFull(br, u16[:]); err != nil {
				return nil, err
			}
			b := make([]byte, binary.LittleEndian.Uint16(u16[:]))
			if _, err := io.ReadFull(br, b); err != nil {
				return nil, err
			}
			out[i] = string(b)
		}
		return out, nil
	}
	if db.keys, err = read(); err != nil {
		return corruptf(KeyFile, -1, "bad key table: %v", err)
	}
	nts, err := read()
	if err != nil {
		return corruptf(KeyFile, -1, "bad node-type table: %v", err)
	}
	ets, err := read()
	if err != nil {
		return corruptf(KeyFile, -1, "bad edge-type table: %v", err)
	}
	db.nodeTypes = make([]model.NodeType, len(nts))
	for i, s := range nts {
		db.nodeTypes[i] = model.NodeType(s)
	}
	db.edgeTypes = make([]model.EdgeType, len(ets))
	for i, s := range ets {
		db.edgeTypes[i] = model.EdgeType(s)
	}
	db.keyByLower = make(map[string]uint16, len(db.keys))
	for i, k := range db.keys {
		db.keyByLower[strings.ToLower(k)] = uint16(i)
	}
	return nil
}

func (db *DB) loadIndexHeader() error {
	var hdr [8]byte
	if err := db.index.ReadAt(hdr[:], 0); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != indexMagic {
		return &CorruptionError{File: IndexFile, Chunk: -1, Detail: "bad index magic", Class: ErrBadMagic}
	}
	db.indexEntries = int(binary.LittleEndian.Uint32(hdr[4:8]))
	return nil
}

// Close releases all file handles.
func (db *DB) Close() error {
	var first error
	for _, p := range []*pager{db.nodes, db.rels, db.props, db.strs, db.index} {
		if p == nil {
			continue
		}
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DropCaches empties every page cache: the next reads hit the files, as
// in the paper's cold runs.
func (db *DB) DropCaches() {
	for _, p := range []*pager{db.nodes, db.rels, db.props, db.strs, db.index} {
		p.Drop()
	}
}

// Stats reports page-cache counters per store file. Safe to call while
// other goroutines read through the caches: every counter is sampled
// with an atomic load, so no value is ever torn. Counters are sampled
// independently, so a read in flight at snapshot time may appear in
// Misses before its eventual Hit shows up — sums converge once traffic
// quiesces.
func (db *DB) Stats() map[string]CacheStats {
	return map[string]CacheStats{
		"nodes":         db.nodes.Stats(),
		"relationships": db.rels.Stats(),
		"properties":    db.props.Stats(),
		"strings":       db.strs.Stats(),
		"index":         db.index.Stats(),
	}
}

// PageSize reports the page-cache page size in bytes — resource
// attribution (trace spans) converts page faults into byte counts
// with it.
func (db *DB) PageSize() int {
	if db == nil || db.nodes == nil {
		return DefaultPageSize
	}
	return db.nodes.pageSize
}

// --- graph.Source implementation ---

// NodeCount implements graph.Source.
func (db *DB) NodeCount() int64 { return db.nodeCount }

// EdgeCount implements graph.Source.
func (db *DB) EdgeCount() int64 { return db.edgeCount }

type nodeRec struct {
	typ       uint16
	propCount uint32
	propOff   int64
	firstOut  uint64
	firstIn   uint64
}

func (db *DB) readNode(id graph.NodeID) nodeRec {
	var buf [nodeRecordSize]byte
	if err := db.nodes.ReadAt(buf[:], int64(id)*nodeRecordSize); err != nil {
		panic(fmt.Errorf("store: node %d: %w", id, err))
	}
	return nodeRec{
		typ:       binary.LittleEndian.Uint16(buf[0:2]),
		propCount: binary.LittleEndian.Uint32(buf[4:8]),
		propOff:   int64(binary.LittleEndian.Uint64(buf[8:16])),
		firstOut:  binary.LittleEndian.Uint64(buf[16:24]),
		firstIn:   binary.LittleEndian.Uint64(buf[24:32]),
	}
}

type relRec struct {
	from, to  graph.NodeID
	typ       uint16
	propCount uint32
	propOff   int64
	nextOut   uint64
	nextIn    uint64
}

func (db *DB) readRel(id graph.EdgeID) relRec {
	var buf [relRecordSize]byte
	if err := db.rels.ReadAt(buf[:], int64(id)*relRecordSize); err != nil {
		panic(fmt.Errorf("store: relationship %d: %w", id, err))
	}
	return relRec{
		from:      graph.NodeID(binary.LittleEndian.Uint64(buf[0:8])),
		to:        graph.NodeID(binary.LittleEndian.Uint64(buf[8:16])),
		typ:       binary.LittleEndian.Uint16(buf[16:18]),
		propCount: binary.LittleEndian.Uint32(buf[20:24]),
		propOff:   int64(binary.LittleEndian.Uint64(buf[24:32])),
		nextOut:   binary.LittleEndian.Uint64(buf[32:40]),
		nextIn:    binary.LittleEndian.Uint64(buf[40:48]),
	}
}

func (db *DB) readString(off int64, n int) string {
	b := make([]byte, n)
	if err := db.strs.ReadAt(b, off); err != nil {
		panic(fmt.Errorf("store: string at %d: %w", off, err))
	}
	return string(b)
}

func (db *DB) readPropValue(rec []byte) (key string, v graph.Value) {
	keyID := binary.LittleEndian.Uint16(rec[0:2])
	kind := rec[2]
	aux := binary.LittleEndian.Uint32(rec[4:8])
	payload := binary.LittleEndian.Uint64(rec[8:16])
	key = db.keys[keyID]
	switch kind {
	case propKindInt:
		v = graph.Int(int64(payload))
	case propKindBool:
		v = graph.Bool(payload != 0)
	case propKindString:
		v = graph.Str(db.readString(int64(payload), int(aux)))
	}
	return key, v
}

// findProp scans a property chain for the key (case-insensitive).
func (db *DB) findProp(off int64, count uint32, key string) (graph.Value, bool) {
	keyID, ok := db.keyByLower[strings.ToLower(key)]
	if !ok {
		return graph.Value{}, false
	}
	var buf [propRecordSize]byte
	for i := uint32(0); i < count; i++ {
		if err := db.props.ReadAt(buf[:], off+int64(i)*propRecordSize); err != nil {
			panic(fmt.Errorf("store: property at %d: %w", off, err))
		}
		if binary.LittleEndian.Uint16(buf[0:2]) == keyID {
			_, v := db.readPropValue(buf[:])
			return v, true
		}
	}
	return graph.Value{}, false
}

func (db *DB) allProps(off int64, count uint32) graph.Props {
	if count == 0 {
		return nil
	}
	ps := make(graph.Props, 0, count)
	var buf [propRecordSize]byte
	for i := uint32(0); i < count; i++ {
		if err := db.props.ReadAt(buf[:], off+int64(i)*propRecordSize); err != nil {
			panic(fmt.Errorf("store: property at %d: %w", off, err))
		}
		k, v := db.readPropValue(buf[:])
		ps = append(ps, graph.Prop{Key: k, Val: v})
	}
	return ps
}

// NodeType implements graph.Source.
func (db *DB) NodeType(id graph.NodeID) model.NodeType {
	return db.nodeTypes[db.readNode(id).typ]
}

// NodeHasLabel implements graph.Source.
func (db *DB) NodeHasLabel(id graph.NodeID, label string) bool {
	return graph.HasLabel(db.NodeType(id), label)
}

// NodeProp implements graph.Source.
func (db *DB) NodeProp(id graph.NodeID, key string) (graph.Value, bool) {
	rec := db.readNode(id)
	if strings.EqualFold(key, model.PropType) {
		return graph.Str(string(db.nodeTypes[rec.typ])), true
	}
	return db.findProp(rec.propOff, rec.propCount, key)
}

// NodeProps implements graph.Source.
func (db *DB) NodeProps(id graph.NodeID) graph.Props {
	rec := db.readNode(id)
	return db.allProps(rec.propOff, rec.propCount)
}

// EdgeEnds implements graph.Source.
func (db *DB) EdgeEnds(id graph.EdgeID) (graph.NodeID, graph.NodeID, model.EdgeType) {
	r := db.readRel(id)
	return r.from, r.to, db.edgeTypes[r.typ]
}

// EdgeProp implements graph.Source.
func (db *DB) EdgeProp(id graph.EdgeID, key string) (graph.Value, bool) {
	r := db.readRel(id)
	if strings.EqualFold(key, model.PropType) {
		return graph.Str(string(db.edgeTypes[r.typ])), true
	}
	return db.findProp(r.propOff, r.propCount, key)
}

// EdgeProps implements graph.Source.
func (db *DB) EdgeProps(id graph.EdgeID) graph.Props {
	r := db.readRel(id)
	return db.allProps(r.propOff, r.propCount)
}

// Out implements graph.Source by walking the outgoing relationship chain.
func (db *DB) Out(id graph.NodeID) []graph.EdgeID {
	var out []graph.EdgeID
	ref := db.readNode(id).firstOut
	for ref != nilRef {
		e := graph.EdgeID(ref - 1)
		out = append(out, e)
		ref = db.readRel(e).nextOut
	}
	return out
}

// In implements graph.Source by walking the incoming relationship chain.
func (db *DB) In(id graph.NodeID) []graph.EdgeID {
	var in []graph.EdgeID
	ref := db.readNode(id).firstIn
	for ref != nilRef {
		e := graph.EdgeID(ref - 1)
		in = append(in, e)
		ref = db.readRel(e).nextIn
	}
	return in
}

// Lookup implements graph.Source by evaluating q against the on-disk
// index (binary search for exact terms, key-range scan for wildcards).
func (db *DB) Lookup(q string) ([]graph.NodeID, error) {
	parsed, err := graph.ParseIndexQuery(q)
	if err != nil {
		return nil, err
	}
	return graph.EvalIndexQuery(parsed, (*diskIndex)(db)), nil
}

// diskIndex adapts DB's index file to graph.IndexTermSource.
type diskIndex DB

func (di *diskIndex) db() *DB { return (*DB)(di) }

func (di *diskIndex) entryOffset(i int) int64 {
	var u64 [8]byte
	if err := di.db().index.ReadAt(u64[:], 8+int64(i)*8); err != nil {
		panic(fmt.Errorf("store: index offset %d: %w", i, err))
	}
	return int64(binary.LittleEndian.Uint64(u64[:]))
}

// entryHeader reads the (key, value) of entry i plus the location of its
// posting list.
func (di *diskIndex) entryHeader(i int) (key, value string, idCount int, idsOff int64) {
	db := di.db()
	off := di.entryOffset(i)
	var u16 [2]byte
	if err := db.index.ReadAt(u16[:], off); err != nil {
		panic(err)
	}
	kl := int(binary.LittleEndian.Uint16(u16[:]))
	kb := make([]byte, kl)
	if err := db.index.ReadAt(kb, off+2); err != nil {
		panic(err)
	}
	off += 2 + int64(kl)
	if err := db.index.ReadAt(u16[:], off); err != nil {
		panic(err)
	}
	vl := int(binary.LittleEndian.Uint16(u16[:]))
	vb := make([]byte, vl)
	if err := db.index.ReadAt(vb, off+2); err != nil {
		panic(err)
	}
	off += 2 + int64(vl)
	var u32 [4]byte
	if err := db.index.ReadAt(u32[:], off); err != nil {
		panic(err)
	}
	return string(kb), string(vb), int(binary.LittleEndian.Uint32(u32[:])), off + 4
}

func (di *diskIndex) postings(idCount int, idsOff int64) []graph.NodeID {
	db := di.db()
	ids := make([]graph.NodeID, idCount)
	buf := make([]byte, 8*idCount)
	if err := db.index.ReadAt(buf, idsOff); err != nil {
		panic(err)
	}
	for i := range ids {
		ids[i] = graph.NodeID(binary.LittleEndian.Uint64(buf[i*8 : i*8+8]))
	}
	return ids
}

// lowerBound returns the first entry index whose (key, value) is >= the
// target, comparing keys first.
func (di *diskIndex) lowerBound(key, value string) int {
	lo, hi := 0, di.db().indexEntries
	for lo < hi {
		mid := (lo + hi) / 2
		k, v, _, _ := di.entryHeader(mid)
		if k < key || (k == key && v < value) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Exact implements graph.IndexTermSource.
func (di *diskIndex) Exact(key, value string) []graph.NodeID {
	key = strings.ToLower(key)
	i := di.lowerBound(key, value)
	if i >= di.db().indexEntries {
		return nil
	}
	k, v, n, off := di.entryHeader(i)
	if k != key || v != value {
		return nil
	}
	return di.postings(n, off)
}

// ScanKey implements graph.IndexTermSource.
func (di *diskIndex) ScanKey(key string, fn func(value string, ids []graph.NodeID)) {
	key = strings.ToLower(key)
	for i := di.lowerBound(key, ""); i < di.db().indexEntries; i++ {
		k, v, n, off := di.entryHeader(i)
		if k != key {
			return
		}
		fn(v, di.postings(n, off))
	}
}
