package store

import (
	"errors"
	"io"
	"math/rand"
	"sync"
)

// ErrInjectedIO is the transient error produced by a FaultReader; tests
// select on it to distinguish injected I/O failures from real ones.
var ErrInjectedIO = errors.New("store: injected I/O error")

// FaultConfig programs a FaultReader. Faults fire on a deterministic
// read-counter schedule (every Nth ReadAt call) with the bit/byte
// positions drawn from a seeded PRNG, so a failing test reproduces
// exactly.
type FaultConfig struct {
	Seed int64
	// BitFlipEvery flips one random bit of the returned data on every
	// Nth read (0 disables).
	BitFlipEvery int
	// ShortReadEvery truncates every Nth read to half its length,
	// returning io.ErrUnexpectedEOF (0 disables).
	ShortReadEvery int
	// ErrEvery fails every Nth read with ErrInjectedIO before touching
	// the underlying reader (0 disables).
	ErrEvery int
}

// FaultReader wraps an io.ReaderAt and injects read faults per a
// FaultConfig. Install it under a DB with Options.WrapReader to prove
// that corruption and I/O failure surface as typed errors rather than
// silently wrong query results.
type FaultReader struct {
	r   io.ReaderAt
	cfg FaultConfig

	mu       sync.Mutex
	rng      *rand.Rand
	reads    int64
	injected int64
}

// NewFaultReader wraps r with the given fault schedule.
func NewFaultReader(r io.ReaderAt, cfg FaultConfig) *FaultReader {
	return &FaultReader{r: r, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Injected reports how many faults have fired so far.
func (f *FaultReader) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// ReadAt implements io.ReaderAt with fault injection.
func (f *FaultReader) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	f.reads++
	reads := f.reads
	fireErr := f.cfg.ErrEvery > 0 && reads%int64(f.cfg.ErrEvery) == 0
	fireShort := f.cfg.ShortReadEvery > 0 && reads%int64(f.cfg.ShortReadEvery) == 0
	fireFlip := f.cfg.BitFlipEvery > 0 && reads%int64(f.cfg.BitFlipEvery) == 0
	var flipByte int
	var flipBit uint
	if fireFlip && len(p) > 0 {
		flipByte = f.rng.Intn(len(p))
		flipBit = uint(f.rng.Intn(8))
	}
	if fireErr || fireShort || fireFlip {
		f.injected++
	}
	f.mu.Unlock()

	if fireErr {
		return 0, ErrInjectedIO
	}
	n, err := f.r.ReadAt(p, off)
	if fireShort && n > 1 && (err == nil || err == io.EOF) {
		return n / 2, io.ErrUnexpectedEOF
	}
	if fireFlip && n > 0 {
		// Clamp the drawn position to the bytes actually read so flips
		// land even when the file is smaller than the read buffer.
		p[flipByte%n] ^= 1 << flipBit
	}
	return n, err
}
