package store

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Checksum sidecars. Every data file in a v2 store has a companion
// "<name>.crc" recording a CRC32-C per fixed-size chunk of the data
// file, so the pager can verify a page as it faults in without changing
// the record offset math of the data files themselves.
//
// Sidecar layout (little-endian):
//
//	magic     u32  "FRCC"
//	chunkSize u32  bytes covered by each checksum
//	fileSize  u64  size of the data file when written
//	count     u32  number of checksums = ceil(fileSize/chunkSize)
//	sums      count * u32
const (
	crcMagic = 0x46524343 // "FRCC"

	// ChecksumSuffix is appended to a data file name to form its
	// checksum sidecar name.
	ChecksumSuffix = ".crc"

	// crcChunkSize is the span of one checksum. It matches
	// DefaultPageSize so the common page fault verifies with zero extra
	// I/O.
	crcChunkSize = DefaultPageSize
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcTable is a loaded checksum sidecar.
type crcTable struct {
	chunkSize int
	fileSize  int64
	sums      []uint32
}

func (t *crcTable) chunks() int64 { return int64(len(t.sums)) }

// chunkLen returns the number of data bytes chunk i covers (the last
// chunk is usually partial).
func (t *crcTable) chunkLen(i int64) int {
	off := i * int64(t.chunkSize)
	n := t.fileSize - off
	if n > int64(t.chunkSize) {
		n = int64(t.chunkSize)
	}
	if n < 0 {
		n = 0
	}
	return int(n)
}

// verifyChunk checks data (the full contents of chunk i) against the
// recorded sum.
func (t *crcTable) verifyChunk(file string, i int64, data []byte) error {
	if i < 0 || i >= t.chunks() {
		return corruptf(file, i, "chunk out of range (have %d)", t.chunks())
	}
	if got := crc32.Checksum(data, castagnoli); got != t.sums[i] {
		return corruptf(file, i, "checksum mismatch: computed %08x, recorded %08x", got, t.sums[i])
	}
	return nil
}

// checksumPath returns the sidecar path for a data file path.
func checksumPath(dataPath string) string { return dataPath + ChecksumSuffix }

// loadChecksums reads and validates the sidecar for dataPath. A missing
// sidecar returns os.ErrNotExist (the caller decides whether that is
// fatal: it is for v2 stores, tolerated for legacy v1).
func loadChecksums(dataPath string) (*crcTable, error) {
	name := filepath.Base(dataPath)
	raw, err := os.ReadFile(checksumPath(dataPath))
	if err != nil {
		return nil, err
	}
	if len(raw) < 20 {
		return nil, truncatedf(name+ChecksumSuffix, "sidecar too short (%d bytes)", len(raw))
	}
	if binary.LittleEndian.Uint32(raw[0:4]) != crcMagic {
		return nil, &CorruptionError{File: name + ChecksumSuffix, Chunk: -1, Detail: "bad sidecar magic", Class: ErrBadMagic}
	}
	t := &crcTable{
		chunkSize: int(binary.LittleEndian.Uint32(raw[4:8])),
		fileSize:  int64(binary.LittleEndian.Uint64(raw[8:16])),
	}
	count := int(binary.LittleEndian.Uint32(raw[16:20]))
	if t.chunkSize <= 0 {
		return nil, corruptf(name+ChecksumSuffix, -1, "bad chunk size %d", t.chunkSize)
	}
	want := int((t.fileSize + int64(t.chunkSize) - 1) / int64(t.chunkSize))
	if count != want {
		return nil, corruptf(name+ChecksumSuffix, -1, "checksum count %d does not cover %d bytes (want %d)", count, t.fileSize, want)
	}
	if len(raw) != 20+4*count {
		return nil, truncatedf(name+ChecksumSuffix, "sidecar is %d bytes, want %d", len(raw), 20+4*count)
	}
	t.sums = make([]uint32, count)
	for i := range t.sums {
		t.sums[i] = binary.LittleEndian.Uint32(raw[20+4*i : 24+4*i])
	}
	return t, nil
}

// writeChecksums computes the sidecar for dataPath by streaming the
// data file, and writes it next to the file.
func writeChecksums(dataPath string) error {
	f, err := os.Open(dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	var sums []uint32
	buf := make([]byte, crcChunkSize)
	for off := int64(0); off < size; off += crcChunkSize {
		n := size - off
		if n > crcChunkSize {
			n = crcChunkSize
		}
		if _, err := io.ReadFull(f, buf[:n]); err != nil {
			return err
		}
		sums = append(sums, crc32.Checksum(buf[:n], castagnoli))
	}
	out := make([]byte, 20+4*len(sums))
	binary.LittleEndian.PutUint32(out[0:4], crcMagic)
	binary.LittleEndian.PutUint32(out[4:8], crcChunkSize)
	binary.LittleEndian.PutUint64(out[8:16], uint64(size))
	binary.LittleEndian.PutUint32(out[16:20], uint32(len(sums)))
	for i, s := range sums {
		binary.LittleEndian.PutUint32(out[20+4*i:24+4*i], s)
	}
	return os.WriteFile(checksumPath(dataPath), out, 0o644)
}

// verifyFileBytes checks fully loaded file contents against the file's
// sidecar; used for the eagerly loaded key table.
func verifyFileBytes(dataPath string, data []byte) error {
	name := filepath.Base(dataPath)
	t, err := loadChecksums(dataPath)
	if err != nil {
		return err
	}
	if int64(len(data)) != t.fileSize {
		return truncatedf(name, "file is %d bytes, checksums cover %d", len(data), t.fileSize)
	}
	for i := int64(0); i < t.chunks(); i++ {
		off := i * int64(t.chunkSize)
		if err := t.verifyChunk(name, i, data[off:off+int64(t.chunkLen(i))]); err != nil {
			return err
		}
	}
	return nil
}
