package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// FileCheck is the verification result for one store file.
type FileCheck struct {
	Name   string
	Bytes  int64
	Chunks int   // checksum chunks verified
	OK     bool  // all checks for this file passed
	Err    error // first failure, nil when OK
}

// VerifyReport is the outcome of fscking a store directory.
type VerifyReport struct {
	Dir           string
	FormatVersion uint32
	Nodes, Edges  int64
	Files         []FileCheck
	Problems      []error
}

// OK reports whether the store passed every check.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

func (r *VerifyReport) addFile(fc FileCheck) {
	r.Files = append(r.Files, fc)
	if !fc.OK {
		r.Problems = append(r.Problems, fmt.Errorf("%s: %w", fc.Name, fc.Err))
	}
}

// Verify fscks the store in dir: meta magic/version/self-checksum, every
// data file's checksum sidecar (all chunks re-hashed), size consistency
// with the recorded node/relationship counts, record-level structural
// sanity (property offsets and chain references in bounds), and the
// index header. It reads every byte of the store exactly once per file
// and never mutates anything. A non-nil error means verification could
// not even start (e.g. the directory does not exist); corruption is
// reported through the report's Problems instead.
func Verify(dir string) (*VerifyReport, error) {
	r := &VerifyReport{Dir: dir}

	meta, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		return nil, err
	}
	mc := FileCheck{Name: MetaFile, Bytes: int64(len(meta)), OK: true}
	switch {
	case len(meta) < metaSizeV1 || binary.LittleEndian.Uint32(meta[0:4]) != metaMagic:
		mc.OK, mc.Err = false, &CorruptionError{File: MetaFile, Chunk: -1, Detail: "bad magic", Class: ErrBadMagic}
	default:
		r.FormatVersion = binary.LittleEndian.Uint32(meta[4:8])
		r.Nodes = int64(binary.LittleEndian.Uint64(meta[8:16]))
		r.Edges = int64(binary.LittleEndian.Uint64(meta[16:24]))
		switch r.FormatVersion {
		case legacyFormatVer:
			// v1: no self-checksum to verify.
		case formatVer:
			if len(meta) < metaSizeV2 {
				mc.OK, mc.Err = false, truncatedf(MetaFile, "meta file is %d bytes, want %d", len(meta), metaSizeV2)
			} else if got, want := crc32.Checksum(meta[:metaSizeV1], castagnoli), binary.LittleEndian.Uint32(meta[24:28]); got != want {
				mc.OK, mc.Err = false, corruptf(MetaFile, -1, "meta checksum mismatch: computed %08x, recorded %08x", got, want)
			}
		default:
			mc.OK, mc.Err = false, fmt.Errorf("format version %d: %w", r.FormatVersion, ErrBadVersion)
		}
	}
	r.addFile(mc)

	wantCRC := r.FormatVersion >= formatVer
	sizes := map[string]int64{}
	for _, name := range []string{NodeFile, RelFile, PropFile, StringFile, KeyFile, IndexFile} {
		fc := verifyDataFile(dir, name, wantCRC)
		sizes[name] = fc.Bytes
		r.addFile(fc)
	}

	// Size consistency with the recorded counts.
	if want := r.Nodes * nodeRecordSize; sizes[NodeFile] != want && mc.OK {
		r.Problems = append(r.Problems, truncatedf(NodeFile, "file holds %d bytes, %d nodes need %d", sizes[NodeFile], r.Nodes, want))
	}
	if want := r.Edges * relRecordSize; sizes[RelFile] != want && mc.OK {
		r.Problems = append(r.Problems, truncatedf(RelFile, "file holds %d bytes, %d relationships need %d", sizes[RelFile], r.Edges, want))
	}

	// Structural pass: only meaningful when the bytes themselves check
	// out, otherwise it would duplicate every checksum problem.
	if r.OK() {
		r.structuralPass(dir, sizes)
	}
	return r, nil
}

// verifyMetaFile checks the meta file's magic, version and (for v2)
// self-checksum.
func verifyMetaFile(dir string) error {
	meta, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		return err
	}
	if len(meta) < metaSizeV1 || binary.LittleEndian.Uint32(meta[0:4]) != metaMagic {
		return &CorruptionError{File: MetaFile, Chunk: -1, Detail: "bad magic", Class: ErrBadMagic}
	}
	switch v := binary.LittleEndian.Uint32(meta[4:8]); v {
	case legacyFormatVer:
		return nil
	case formatVer:
		if len(meta) < metaSizeV2 {
			return truncatedf(MetaFile, "meta file is %d bytes, want %d", len(meta), metaSizeV2)
		}
		if got, want := crc32.Checksum(meta[:metaSizeV1], castagnoli), binary.LittleEndian.Uint32(meta[24:28]); got != want {
			return corruptf(MetaFile, -1, "meta checksum mismatch: computed %08x, recorded %08x", got, want)
		}
		return nil
	default:
		return fmt.Errorf("format version %d: %w", binary.LittleEndian.Uint32(meta[4:8]), ErrBadVersion)
	}
}

// verifyDataFile re-hashes every chunk of one data file against its
// sidecar.
func verifyDataFile(dir, name string, wantCRC bool) FileCheck {
	fc := FileCheck{Name: name, OK: true}
	path := filepath.Join(dir, name)
	st, err := os.Stat(path)
	if err != nil {
		fc.OK, fc.Err = false, err
		return fc
	}
	fc.Bytes = st.Size()
	crc, err := loadChecksums(path)
	if err != nil {
		if os.IsNotExist(err) {
			if wantCRC {
				fc.OK, fc.Err = false, corruptf(name, -1, "missing checksum sidecar %s", name+ChecksumSuffix)
			}
			return fc
		}
		fc.OK, fc.Err = false, err
		return fc
	}
	if crc.fileSize != st.Size() {
		fc.OK, fc.Err = false, truncatedf(name, "file is %d bytes, checksums cover %d", st.Size(), crc.fileSize)
		return fc
	}
	f, err := os.Open(path)
	if err != nil {
		fc.OK, fc.Err = false, err
		return fc
	}
	defer f.Close()
	buf := make([]byte, crc.chunkSize)
	for i := int64(0); i < crc.chunks(); i++ {
		n := crc.chunkLen(i)
		if _, err := f.ReadAt(buf[:n], i*int64(crc.chunkSize)); err != nil && n > 0 {
			fc.OK, fc.Err = false, err
			return fc
		}
		if err := crc.verifyChunk(name, i, buf[:n]); err != nil {
			fc.OK, fc.Err = false, err
			return fc
		}
		fc.Chunks++
	}
	return fc
}

// structuralPass opens the verified store and walks every record,
// checking that offsets and chain references stay in bounds.
func (r *VerifyReport) structuralPass(dir string, sizes map[string]int64) {
	db, err := OpenOptions(dir, Options{})
	if err != nil {
		r.Problems = append(r.Problems, err)
		return
	}
	defer db.Close()

	propBytes := sizes[PropFile]
	strBytes := sizes[StringFile]
	bad := func(format string, args ...any) {
		r.Problems = append(r.Problems, corruptf("structure", -1, format, args...))
	}

	var buf [nodeRecordSize]byte
	for id := int64(0); id < r.Nodes; id++ {
		if err := db.nodes.ReadAt(buf[:], id*nodeRecordSize); err != nil {
			bad("node %d unreadable: %v", id, err)
			return
		}
		typ := binary.LittleEndian.Uint16(buf[0:2])
		cnt := int64(binary.LittleEndian.Uint32(buf[4:8]))
		off := int64(binary.LittleEndian.Uint64(buf[8:16]))
		if int(typ) >= len(db.nodeTypes) {
			bad("node %d: type id %d out of range (%d types)", id, typ, len(db.nodeTypes))
		}
		if cnt > 0 && off+cnt*propRecordSize > propBytes {
			bad("node %d: property chain [%d,%d) exceeds property store (%d bytes)", id, off, off+cnt*propRecordSize, propBytes)
		}
		for _, ref := range []uint64{binary.LittleEndian.Uint64(buf[16:24]), binary.LittleEndian.Uint64(buf[24:32])} {
			if ref != nilRef && int64(ref-1) >= r.Edges {
				bad("node %d: relationship chain head %d out of range (%d edges)", id, ref-1, r.Edges)
			}
		}
	}

	var rbuf [relRecordSize]byte
	for id := int64(0); id < r.Edges; id++ {
		if err := db.rels.ReadAt(rbuf[:], id*relRecordSize); err != nil {
			bad("relationship %d unreadable: %v", id, err)
			return
		}
		from := int64(binary.LittleEndian.Uint64(rbuf[0:8]))
		to := int64(binary.LittleEndian.Uint64(rbuf[8:16]))
		typ := binary.LittleEndian.Uint16(rbuf[16:18])
		cnt := int64(binary.LittleEndian.Uint32(rbuf[20:24]))
		off := int64(binary.LittleEndian.Uint64(rbuf[24:32]))
		if from >= r.Nodes || to >= r.Nodes {
			bad("relationship %d: endpoints (%d,%d) out of range (%d nodes)", id, from, to, r.Nodes)
		}
		if int(typ) >= len(db.edgeTypes) {
			bad("relationship %d: type id %d out of range (%d types)", id, typ, len(db.edgeTypes))
		}
		if cnt > 0 && off+cnt*propRecordSize > propBytes {
			bad("relationship %d: property chain [%d,%d) exceeds property store (%d bytes)", id, off, off+cnt*propRecordSize, propBytes)
		}
		for _, ref := range []uint64{binary.LittleEndian.Uint64(rbuf[32:40]), binary.LittleEndian.Uint64(rbuf[40:48])} {
			if ref != nilRef && int64(ref-1) >= r.Edges {
				bad("relationship %d: chain pointer %d out of range (%d edges)", id, ref-1, r.Edges)
			}
		}
		if len(r.Problems) > 100 {
			bad("too many structural problems; stopping")
			return
		}
	}

	// Property records: string payloads must lie within the string store.
	var pbuf [propRecordSize]byte
	for off := int64(0); off+propRecordSize <= propBytes; off += propRecordSize {
		if err := db.props.ReadAt(pbuf[:], off); err != nil {
			bad("property at %d unreadable: %v", off, err)
			return
		}
		if keyID := binary.LittleEndian.Uint16(pbuf[0:2]); int(keyID) >= len(db.keys) {
			bad("property at %d: key id %d out of range (%d keys)", off, keyID, len(db.keys))
		}
		if pbuf[2] == propKindString {
			slen := int64(binary.LittleEndian.Uint32(pbuf[4:8]))
			soff := int64(binary.LittleEndian.Uint64(pbuf[8:16]))
			if soff+slen > strBytes {
				bad("property at %d: string [%d,%d) exceeds string store (%d bytes)", off, soff, soff+slen, strBytes)
			}
		}
		if len(r.Problems) > 100 {
			bad("too many structural problems; stopping")
			return
		}
	}
}
