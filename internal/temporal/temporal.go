// Package temporal addresses the paper's §6.3 challenge: storing and
// querying the dependency graphs of an evolving codebase without
// duplicating the (mostly unchanged) graph for every version, and
// supporting cross-version queries — software change impact analysis.
//
// The design follows the LLAMA line of work the paper cites: entities
// get stable identities across versions (type + qualified name +
// defining file), version 0 stores the full canonical graph, and every
// subsequent version stores a delta (nodes/edges added and removed).
// Any version can be materialised back into a queryable graph.Graph, and
// diffs between versions drive impact analysis: the functions whose
// dependencies changed, plus everything that transitively calls them.
package temporal

import (
	"fmt"
	"sort"
	"strings"

	"frappe/internal/graph"
	"frappe/internal/model"
	"frappe/internal/traversal"
)

// EntityKey is a node's stable cross-version identity.
type EntityKey string

// tripleKey identifies an edge structurally (endpoints + type); parallel
// edges of one triple are tracked by count.
type tripleKey struct {
	from EntityKey
	typ  model.EdgeType
	to   EntityKey
}

// nodeRec is the canonical stored form of a node.
type nodeRec struct {
	typ   model.NodeType
	props graph.Props
}

// snapshot is one version's full canonical graph (kept internally; the
// delta representation is derived and is what StorageStats accounts).
type snapshot struct {
	label string
	nodes map[EntityKey]nodeRec
	edges map[tripleKey]int
}

// Delta is the difference between two versions.
type Delta struct {
	AddedNodes   []EntityKey
	RemovedNodes []EntityKey
	AddedEdges   []EdgeChange
	RemovedEdges []EdgeChange
}

// EdgeChange is one structural edge change (with multiplicity).
type EdgeChange struct {
	From  EntityKey
	Type  model.EdgeType
	To    EntityKey
	Count int
}

// Empty reports whether the delta contains no changes.
func (d *Delta) Empty() bool {
	return len(d.AddedNodes) == 0 && len(d.RemovedNodes) == 0 &&
		len(d.AddedEdges) == 0 && len(d.RemovedEdges) == 0
}

// Store holds the version history.
type Store struct {
	snaps  []*snapshot
	deltas []*Delta // deltas[i] transforms version i-1 into i; deltas[0] is vs empty
	cache  map[int]*graph.Graph
}

// New returns an empty version store.
func New() *Store {
	return &Store{cache: map[int]*graph.Graph{}}
}

// KeyOf computes a node's stable identity: TYPE | qualified name |
// defining file. Reference positions deliberately do not participate, so
// pure line-shift edits do not churn identities.
func KeyOf(s graph.Source, id graph.NodeID) EntityKey {
	name := ""
	if v, ok := s.NodeProp(id, model.PropName); ok {
		name = v.AsString()
	} else if v, ok := s.NodeProp(id, model.PropShortName); ok {
		name = v.AsString()
	}
	file := ""
	for _, eid := range s.In(id) {
		from, _, t := s.EdgeEnds(eid)
		if t == model.EdgeFileContains || t == model.EdgeDirContains {
			if v, ok := s.NodeProp(from, model.PropName); ok {
				file = v.AsString()
			}
			break
		}
	}
	return EntityKey(string(s.NodeType(id)) + "\x00" + name + "\x00" + file)
}

// Describe renders an EntityKey for humans.
func Describe(k EntityKey) string {
	parts := strings.SplitN(string(k), "\x00", 3)
	for len(parts) < 3 {
		parts = append(parts, "")
	}
	if parts[2] == "" {
		return fmt.Sprintf("%s %s", parts[0], parts[1])
	}
	return fmt.Sprintf("%s %s (%s)", parts[0], parts[1], parts[2])
}

// canonicalise converts a graph into its canonical snapshot form.
// Colliding keys (rare: e.g. two anonymous entities) get an ordinal
// suffix, keeping snapshots lossless in counts.
func canonicalise(label string, src graph.Source) (*snapshot, map[graph.NodeID]EntityKey) {
	snap := &snapshot{label: label, nodes: map[EntityKey]nodeRec{}, edges: map[tripleKey]int{}}
	keys := make(map[graph.NodeID]EntityKey, src.NodeCount())
	used := map[EntityKey]int{}
	n := src.NodeCount()
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		k := KeyOf(src, id)
		if c := used[k]; c > 0 {
			k = EntityKey(fmt.Sprintf("%s\x00#%d", k, c))
		}
		used[KeyOf(src, id)]++
		keys[id] = k
		snap.nodes[k] = nodeRec{typ: src.NodeType(id), props: src.NodeProps(id)}
	}
	e := src.EdgeCount()
	for eid := graph.EdgeID(0); eid < graph.EdgeID(e); eid++ {
		from, to, t := src.EdgeEnds(eid)
		snap.edges[tripleKey{from: keys[from], typ: t, to: keys[to]}]++
	}
	return snap, keys
}

// AddVersion appends a version and returns its delta against the
// previous version (against the empty graph for the first).
func (s *Store) AddVersion(label string, src graph.Source) *Delta {
	snap, _ := canonicalise(label, src)
	var prev *snapshot
	if len(s.snaps) > 0 {
		prev = s.snaps[len(s.snaps)-1]
	} else {
		prev = &snapshot{nodes: map[EntityKey]nodeRec{}, edges: map[tripleKey]int{}}
	}
	d := diffSnapshots(prev, snap)
	s.snaps = append(s.snaps, snap)
	s.deltas = append(s.deltas, d)
	return d
}

// Versions lists version labels in order.
func (s *Store) Versions() []string {
	out := make([]string, len(s.snaps))
	for i, sn := range s.snaps {
		out[i] = sn.label
	}
	return out
}

// Len returns the number of stored versions.
func (s *Store) Len() int { return len(s.snaps) }

func diffSnapshots(a, b *snapshot) *Delta {
	d := &Delta{}
	for k := range b.nodes {
		if _, ok := a.nodes[k]; !ok {
			d.AddedNodes = append(d.AddedNodes, k)
		}
	}
	for k := range a.nodes {
		if _, ok := b.nodes[k]; !ok {
			d.RemovedNodes = append(d.RemovedNodes, k)
		}
	}
	for t, nb := range b.edges {
		na := a.edges[t]
		if nb > na {
			d.AddedEdges = append(d.AddedEdges, EdgeChange{From: t.from, Type: t.typ, To: t.to, Count: nb - na})
		}
	}
	for t, na := range a.edges {
		nb := b.edges[t]
		if na > nb {
			d.RemovedEdges = append(d.RemovedEdges, EdgeChange{From: t.from, Type: t.typ, To: t.to, Count: na - nb})
		}
	}
	sort.Slice(d.AddedNodes, func(i, j int) bool { return d.AddedNodes[i] < d.AddedNodes[j] })
	sort.Slice(d.RemovedNodes, func(i, j int) bool { return d.RemovedNodes[i] < d.RemovedNodes[j] })
	sortEdgeChanges(d.AddedEdges)
	sortEdgeChanges(d.RemovedEdges)
	return d
}

func sortEdgeChanges(cs []EdgeChange) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.To < b.To
	})
}

// Diff computes the delta from version a to version b (either order).
func (s *Store) Diff(a, b int) (*Delta, error) {
	if a < 0 || b < 0 || a >= len(s.snaps) || b >= len(s.snaps) {
		return nil, fmt.Errorf("temporal: version out of range (have %d)", len(s.snaps))
	}
	return diffSnapshots(s.snaps[a], s.snaps[b]), nil
}

// Graph materialises version i as a queryable in-memory graph. Results
// are cached per version.
func (s *Store) Graph(i int) (*graph.Graph, error) {
	if i < 0 || i >= len(s.snaps) {
		return nil, fmt.Errorf("temporal: version %d out of range", i)
	}
	if g, ok := s.cache[i]; ok {
		return g, nil
	}
	snap := s.snaps[i]
	g := graph.New()
	keys := make([]EntityKey, 0, len(snap.nodes))
	for k := range snap.nodes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(x, y int) bool { return keys[x] < keys[y] })
	idOf := make(map[EntityKey]graph.NodeID, len(keys))
	for _, k := range keys {
		rec := snap.nodes[k]
		idOf[k] = g.AddNode(rec.typ, rec.props.Clone())
	}
	triples := make([]tripleKey, 0, len(snap.edges))
	for t := range snap.edges {
		triples = append(triples, t)
	}
	sort.Slice(triples, func(x, y int) bool {
		a, b := triples[x], triples[y]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.typ != b.typ {
			return a.typ < b.typ
		}
		return a.to < b.to
	})
	for _, t := range triples {
		for c := 0; c < snap.edges[t]; c++ {
			g.AddEdge(idOf[t.from], idOf[t.to], t.typ, nil)
		}
	}
	s.cache[i] = g
	return g, nil
}

// ChangedFunctions lists the functions whose own structure changed
// between two versions: added/removed function nodes, and functions
// whose outgoing dependency edges changed.
func (s *Store) ChangedFunctions(a, b int) ([]EntityKey, error) {
	d, err := s.Diff(a, b)
	if err != nil {
		return nil, err
	}
	set := map[EntityKey]bool{}
	isFunc := func(k EntityKey) bool { return strings.HasPrefix(string(k), string(model.NodeFunction)+"\x00") }
	for _, k := range d.AddedNodes {
		if isFunc(k) {
			set[k] = true
		}
	}
	for _, k := range d.RemovedNodes {
		if isFunc(k) {
			set[k] = true
		}
	}
	for _, c := range d.AddedEdges {
		if isFunc(c.From) {
			set[c.From] = true
		}
	}
	for _, c := range d.RemovedEdges {
		if isFunc(c.From) {
			set[c.From] = true
		}
	}
	out := make([]EntityKey, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ImpactOfChange performs software change impact analysis (the paper's
// §6.3 motivation): every function in version b that is, or transitively
// calls, a function changed between versions a and b.
func (s *Store) ImpactOfChange(a, b int) ([]EntityKey, error) {
	changed, err := s.ChangedFunctions(a, b)
	if err != nil {
		return nil, err
	}
	g, err := s.Graph(b)
	if err != nil {
		return nil, err
	}
	_, keys := canonicalise("", g)
	byKey := make(map[EntityKey]graph.NodeID, len(keys))
	for id, k := range keys {
		byKey[k] = id
	}
	seen := map[EntityKey]bool{}
	var out []EntityKey
	add := func(k EntityKey) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, ck := range changed {
		add(ck)
		id, ok := byKey[ck]
		if !ok {
			continue // removed in b: no callers there
		}
		for _, up := range traversal.TransitiveClosure(g, id, traversal.Options{
			Direction: traversal.In,
			Types:     traversal.Types(model.EdgeCalls),
		}) {
			add(keys[up])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// StorageStats quantifies §6.3's storage argument: bytes to store every
// version in full versus the delta chain (full first version + deltas).
type StorageStats struct {
	FullBytes  []int64 // per-version canonical size
	DeltaBytes []int64 // per-version delta size
	TotalFull  int64
	TotalDelta int64
}

// Stats computes storage accounting over the stored history.
func (s *Store) Stats() StorageStats {
	var st StorageStats
	for i, snap := range s.snaps {
		full := snapshotBytes(snap)
		delta := deltaBytes(s.deltas[i])
		st.FullBytes = append(st.FullBytes, full)
		st.DeltaBytes = append(st.DeltaBytes, delta)
		st.TotalFull += full
		st.TotalDelta += delta
	}
	return st
}

func snapshotBytes(sn *snapshot) int64 {
	var b int64
	for k, rec := range sn.nodes {
		b += int64(len(k)) + 2
		for _, p := range rec.props {
			b += int64(len(p.Key)) + 9
			if p.Val.Kind() == graph.KindString {
				b += int64(len(p.Val.AsString()))
			}
		}
	}
	for t := range sn.edges {
		b += int64(len(t.from)+len(t.to)+len(t.typ)) + 4
	}
	return b
}

func deltaBytes(d *Delta) int64 {
	var b int64
	for _, k := range d.AddedNodes {
		b += int64(len(k)) + 2
	}
	for _, k := range d.RemovedNodes {
		b += int64(len(k)) + 2
	}
	for _, c := range append(append([]EdgeChange(nil), d.AddedEdges...), d.RemovedEdges...) {
		b += int64(len(c.From)+len(c.To)+len(c.Type)) + 4
	}
	return b
}
