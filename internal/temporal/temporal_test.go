package temporal

import (
	"strings"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
)

// evolve produces version 2 of the tiny kernel: a new helper function in
// sr.c called from sr_media_change's late path, and one removed call.
func generateVersions(t *testing.T) (*graph.Graph, *graph.Graph) {
	t.Helper()
	w1 := kernelgen.Generate(kernelgen.Tiny())
	r1, err := w1.Extract()
	if err != nil {
		t.Fatal(err)
	}

	w2 := kernelgen.Generate(kernelgen.Tiny())
	src := w2.FS["drivers/scsi/sr.c"]
	// Add a new function and call it from sr_late_check.
	src = strings.Replace(src,
		"static int sr_late_check(int dev)\n{",
		"static int sr_flush_cache(int dev)\n{\n\treturn dev * 2;\n}\n\nstatic int sr_late_check(int dev)\n{\n\tdev += sr_flush_cache(dev);", 1)
	w2.FS["drivers/scsi/sr.c"] = src
	r2, err := w2.Extract()
	if err != nil {
		t.Fatal(err)
	}
	return r1.Graph, r2.Graph
}

func TestIdenticalVersionsEmptyDelta(t *testing.T) {
	g, _ := generateVersions(t)
	s := New()
	s.AddVersion("v1", g)
	d := s.AddVersion("v1-again", g)
	if !d.Empty() {
		t.Fatalf("identical versions produced a delta: +%d/-%d nodes, +%d/-%d edges",
			len(d.AddedNodes), len(d.RemovedNodes), len(d.AddedEdges), len(d.RemovedEdges))
	}
}

func TestDeltaCapturesChange(t *testing.T) {
	g1, g2 := generateVersions(t)
	s := New()
	s.AddVersion("v1", g1)
	d := s.AddVersion("v2", g2)
	if d.Empty() {
		t.Fatal("change produced empty delta")
	}
	foundNew := false
	for _, k := range d.AddedNodes {
		if strings.Contains(string(k), "sr_flush_cache") {
			foundNew = true
		}
	}
	if !foundNew {
		t.Fatalf("added nodes missing sr_flush_cache: %v", d.AddedNodes)
	}
	foundCall := false
	for _, c := range d.AddedEdges {
		if c.Type == model.EdgeCalls && strings.Contains(string(c.To), "sr_flush_cache") {
			foundCall = true
		}
	}
	if !foundCall {
		t.Fatal("added edges missing the new call")
	}
	// The delta must be far smaller than the full graph.
	st := s.Stats()
	if st.DeltaBytes[1]*10 > st.FullBytes[1] {
		t.Fatalf("delta %d bytes vs full %d bytes — no sharing win", st.DeltaBytes[1], st.FullBytes[1])
	}
	if st.TotalDelta >= st.TotalFull {
		t.Fatal("delta chain larger than full copies")
	}
}

func TestMaterialiseVersions(t *testing.T) {
	g1, g2 := generateVersions(t)
	s := New()
	s.AddVersion("v1", g1)
	s.AddVersion("v2", g2)

	m1, err := s.Graph(0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Graph(1)
	if err != nil {
		t.Fatal(err)
	}
	if m1.NodeCount() != g1.NodeCount() || m1.EdgeCount() != g1.EdgeCount() {
		t.Fatalf("v1 materialisation: %d/%d vs %d/%d",
			m1.NodeCount(), m1.EdgeCount(), g1.NodeCount(), g1.EdgeCount())
	}
	if m2.NodeCount() != g2.NodeCount() {
		t.Fatalf("v2 nodes: %d vs %d", m2.NodeCount(), g2.NodeCount())
	}
	// The new function exists only in v2.
	if ids, _ := m1.Lookup("short_name: sr_flush_cache"); len(ids) != 0 {
		t.Fatal("sr_flush_cache leaked into v1")
	}
	if ids, _ := m2.Lookup("short_name: sr_flush_cache"); len(ids) != 1 {
		t.Fatal("sr_flush_cache missing from v2")
	}
	// Caching returns the same graph.
	again, _ := s.Graph(1)
	if again != m2 {
		t.Fatal("materialisation not cached")
	}
}

func TestChangedFunctionsAndImpact(t *testing.T) {
	g1, g2 := generateVersions(t)
	s := New()
	s.AddVersion("v1", g1)
	s.AddVersion("v2", g2)

	changed, err := s.ChangedFunctions(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := strings.Builder{}
	for _, k := range changed {
		names.WriteString(Describe(k))
		names.WriteString("; ")
	}
	if !strings.Contains(names.String(), "sr_flush_cache") || !strings.Contains(names.String(), "sr_late_check") {
		t.Fatalf("changed = %s", names.String())
	}

	impact, err := s.ImpactOfChange(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Builder{}
	for _, k := range impact {
		joined.WriteString(Describe(k))
		joined.WriteString("; ")
	}
	// sr_media_change calls sr_late_check, so it is impacted.
	if !strings.Contains(joined.String(), "sr_media_change") {
		t.Fatalf("impact misses sr_media_change: %s", joined.String())
	}
	if len(impact) <= len(changed) {
		t.Fatalf("impact (%d) should exceed changed (%d)", len(impact), len(changed))
	}
}

func TestDiffSymmetric(t *testing.T) {
	g1, g2 := generateVersions(t)
	s := New()
	s.AddVersion("v1", g1)
	s.AddVersion("v2", g2)
	fwd, err := s.Diff(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := s.Diff(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fwd.AddedNodes) != len(rev.RemovedNodes) || len(fwd.AddedEdges) != len(rev.RemovedEdges) {
		t.Fatal("diff not symmetric")
	}
}

func TestVersionErrors(t *testing.T) {
	s := New()
	if _, err := s.Diff(0, 1); err == nil {
		t.Fatal("diff on empty store should fail")
	}
	if _, err := s.Graph(0); err == nil {
		t.Fatal("graph on empty store should fail")
	}
	if len(s.Versions()) != 0 || s.Len() != 0 {
		t.Fatal("empty store not empty")
	}
}

func TestDescribe(t *testing.T) {
	k := EntityKey("function\x00sr_media_change\x00drivers/scsi/sr.c")
	if got := Describe(k); got != "function sr_media_change (drivers/scsi/sr.c)" {
		t.Fatalf("Describe = %q", got)
	}
	if got := Describe(EntityKey("primitive\x00int\x00")); got != "primitive int" {
		t.Fatalf("Describe = %q", got)
	}
}
