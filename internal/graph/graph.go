package graph

import (
	"fmt"

	"frappe/internal/model"
)

// NodeID identifies a node. IDs are dense: a graph with N nodes uses IDs
// 0..N-1, so a full scan is a counting loop (as in Neo4j's store files).
type NodeID int64

// EdgeID identifies an edge; also dense, 0..E-1.
type EdgeID int64

// InvalidID marks "no node"/"no edge".
const InvalidID = -1

// Source is the read interface shared by the in-memory Graph and the
// on-disk store reader. The Cypher executor and the traversal API are
// written against Source, mirroring how the paper runs the same queries
// against Neo4j's page-cached store (cold/warm) and its embedded API.
type Source interface {
	// NodeCount and EdgeCount report dense ID ranges.
	NodeCount() int64
	EdgeCount() int64

	// NodeType returns the concrete type of the node.
	NodeType(NodeID) model.NodeType
	// NodeHasLabel reports whether the node carries the label, which may
	// be its concrete type name or a grouped label (symbol, container...).
	NodeHasLabel(NodeID, string) bool
	// NodeProp fetches a node property by (case-insensitive) key.
	NodeProp(NodeID, string) (Value, bool)
	// NodeProps returns all properties of a node.
	NodeProps(NodeID) Props

	// EdgeEnds returns an edge's endpoints and type.
	EdgeEnds(EdgeID) (from, to NodeID, t model.EdgeType)
	// EdgeProp fetches an edge property by (case-insensitive) key.
	EdgeProp(EdgeID, string) (Value, bool)
	// EdgeProps returns all properties of an edge.
	EdgeProps(EdgeID) Props

	// Out and In return the IDs of outgoing/incoming edges of a node.
	// Callers must not mutate the returned slice.
	Out(NodeID) []EdgeID
	In(NodeID) []EdgeID

	// Lookup evaluates a node_auto_index query (see ParseIndexQuery for
	// the syntax) and returns matching node IDs in ascending order.
	Lookup(query string) ([]NodeID, error)
}

// node is the internal node record.
type node struct {
	typ   model.NodeType
	props Props
}

// edge is the internal edge record.
type edge struct {
	from, to NodeID
	typ      model.EdgeType
	props    Props
}

// Graph is the mutable in-memory property graph built by the extractor
// and the workload generator. It implements Source.
type Graph struct {
	nodes []node
	edges []edge
	out   [][]EdgeID
	in    [][]EdgeID
	index *Index
}

// New returns an empty graph with its auto-index attached.
func New() *Graph {
	g := &Graph{}
	g.index = newIndex()
	return g
}

// AddNode appends a node of the given type with the given properties and
// returns its ID. The TYPE property is implied by typ and must not be set
// explicitly. Indexed properties (SHORT_NAME, NAME, LONG_NAME, TYPE) are
// added to the auto-index.
func (g *Graph) AddNode(typ model.NodeType, props Props) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, node{typ: typ, props: props})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.index.addNode(id, typ, props)
	return id
}

// AddEdge appends a directed edge and returns its ID. Both endpoints must
// already exist.
func (g *Graph) AddEdge(from, to NodeID, typ model.EdgeType, props Props) EdgeID {
	if from < 0 || int(from) >= len(g.nodes) || to < 0 || int(to) >= len(g.nodes) {
		panic(fmt.Sprintf("graph.AddEdge: endpoint out of range (%d -> %d, %d nodes)", from, to, len(g.nodes)))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, edge{from: from, to: to, typ: typ, props: props})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id
}

// SetNodeProp sets (or replaces) one property on an existing node and
// keeps the auto-index in sync for indexed keys.
func (g *Graph) SetNodeProp(id NodeID, key string, v Value) {
	n := &g.nodes[id]
	old, had := n.props.Get(key)
	n.props = n.props.Set(key, v)
	g.index.updateNode(id, key, old, had, v)
}

// NodeCount implements Source.
func (g *Graph) NodeCount() int64 { return int64(len(g.nodes)) }

// EdgeCount implements Source.
func (g *Graph) EdgeCount() int64 { return int64(len(g.edges)) }

// NodeType implements Source.
func (g *Graph) NodeType(id NodeID) model.NodeType { return g.nodes[id].typ }

// NodeHasLabel implements Source: true for the concrete type name and for
// any grouped label applying to that type.
func (g *Graph) NodeHasLabel(id NodeID, label string) bool {
	return HasLabel(g.nodes[id].typ, label)
}

// HasLabel reports whether a node of the given concrete type carries the
// label (its own type name, or a grouped label from model.LabelsFor).
func HasLabel(typ model.NodeType, label string) bool {
	if string(typ) == label {
		return true
	}
	for _, l := range model.LabelsFor(typ) {
		if l == label {
			return true
		}
	}
	return false
}

// NodeProp implements Source. The pseudo-property TYPE resolves to the
// node's concrete type.
func (g *Graph) NodeProp(id NodeID, key string) (Value, bool) {
	if eqFold(key, model.PropType) {
		return Str(string(g.nodes[id].typ)), true
	}
	return g.nodes[id].props.Get(key)
}

// NodeProps implements Source.
func (g *Graph) NodeProps(id NodeID) Props { return g.nodes[id].props }

// EdgeEnds implements Source.
func (g *Graph) EdgeEnds(id EdgeID) (NodeID, NodeID, model.EdgeType) {
	e := &g.edges[id]
	return e.from, e.to, e.typ
}

// EdgeProp implements Source.
func (g *Graph) EdgeProp(id EdgeID, key string) (Value, bool) {
	if eqFold(key, model.PropType) {
		return Str(string(g.edges[id].typ)), true
	}
	return g.edges[id].props.Get(key)
}

// EdgeProps implements Source.
func (g *Graph) EdgeProps(id EdgeID) Props { return g.edges[id].props }

// Out implements Source.
func (g *Graph) Out(id NodeID) []EdgeID { return g.out[id] }

// In implements Source.
func (g *Graph) In(id NodeID) []EdgeID { return g.in[id] }

// Lookup implements Source by evaluating q against the auto-index.
func (g *Graph) Lookup(q string) ([]NodeID, error) { return g.index.Lookup(q) }

// Index exposes the graph's auto-index (used by the store writer).
func (g *Graph) Index() *Index { return g.index }

// Degree returns in+out degree, the quantity plotted in Figure 7.
func Degree(s Source, id NodeID) int { return len(s.Out(id)) + len(s.In(id)) }

// FindNode returns the first node whose property key equals the string
// value, or InvalidID. It scans; use Lookup for indexed access.
func FindNode(s Source, key, value string) NodeID {
	n := s.NodeCount()
	for id := NodeID(0); id < NodeID(n); id++ {
		if v, ok := s.NodeProp(id, key); ok && v.Kind() == KindString && v.AsString() == value {
			return id
		}
	}
	return InvalidID
}

func eqFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if ca == cb {
			continue
		}
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
