package graph

import "frappe/internal/model"

// This file implements the "references as nodes" alternative model the
// paper weighs in §6.2 as a workaround for Neo4j's lack of hyper-edges:
//
//	foo -[:calls]-> bar
//
// becomes
//
//	foo -[:calls]-> <callsite> -[:calls]-> bar
//	file -[:contains]-> <callsite>
//
// so the file a reference occurs in is a first-class edge rather than the
// USE_FILE_ID property. ConvertRefsToNodes builds that model from the
// standard one; the ablation bench A2 compares per-file reference lookup
// on both.

// RefSiteType is the node type given to materialised reference sites.
const RefSiteType model.NodeType = "ref_site"

// ConvertRefsToNodes returns a new graph in which every reference edge
// (per model.ReferenceEdges, except isa_type which is a pure type use) is
// replaced by a reference-site node with two half-edges of the original
// type, and a contains edge from the file recorded in USE_FILE_ID. The
// fileByID map resolves USE_FILE_ID property values to file node IDs of
// the source graph; IDs of the source graph are preserved for all
// original nodes (reference sites are appended after them).
func ConvertRefsToNodes(s Source, fileByID map[int64]NodeID) *Graph {
	g := New()
	n := s.NodeCount()
	for id := NodeID(0); id < NodeID(n); id++ {
		g.AddNode(s.NodeType(id), s.NodeProps(id).Clone())
	}
	e := s.EdgeCount()
	for id := EdgeID(0); id < EdgeID(e); id++ {
		from, to, t := s.EdgeEnds(id)
		props := s.EdgeProps(id)
		if !model.ReferenceEdges[t] || t == model.EdgeIsaType {
			g.AddEdge(from, to, t, props.Clone())
			continue
		}
		site := g.AddNode(RefSiteType, props.Clone())
		g.AddEdge(from, site, t, nil)
		g.AddEdge(site, to, t, nil)
		if fid, ok := props.Get(model.PropUseFileID); ok {
			if fnode, ok := fileByID[fid.AsInt()]; ok {
				g.AddEdge(fnode, site, model.EdgeContains, nil)
			}
		}
	}
	return g
}
