package graph

import (
	"sort"

	"frappe/internal/model"
)

// Metrics summarises a graph as in Table 3 of the paper: node count, edge
// count, and density expressed as the node:edge ratio (the paper reports
// "1:8" for just over half a million nodes and close to four million
// edges).
type Metrics struct {
	Nodes   int64
	Edges   int64
	Density float64 // edges per node
}

// ComputeMetrics derives Table 3's metrics from any Source.
func ComputeMetrics(s Source) Metrics {
	m := Metrics{Nodes: s.NodeCount(), Edges: s.EdgeCount()}
	if m.Nodes > 0 {
		m.Density = float64(m.Edges) / float64(m.Nodes)
	}
	return m
}

// DegreePoint is one point of Figure 7: how many nodes have a given
// (in+out) degree.
type DegreePoint struct {
	Degree int
	Count  int64
}

// DegreeDistribution computes Figure 7's series: for each occurring
// degree, the number of nodes with that degree, ascending by degree.
func DegreeDistribution(s Source) []DegreePoint {
	counts := make(map[int]int64)
	n := s.NodeCount()
	for id := NodeID(0); id < NodeID(n); id++ {
		counts[Degree(s, id)]++
	}
	degrees := make([]int, 0, len(counts))
	for d := range counts {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	out := make([]DegreePoint, len(degrees))
	for i, d := range degrees {
		out[i] = DegreePoint{Degree: d, Count: counts[d]}
	}
	return out
}

// HighDegreeNode names one of the hub nodes the paper calls out under
// Figure 7 (primitives like int, constants like NULL).
type HighDegreeNode struct {
	ID     NodeID
	Type   model.NodeType
	Name   string
	Degree int
}

// TopDegreeNodes returns the k highest-degree nodes, descending.
func TopDegreeNodes(s Source, k int) []HighDegreeNode {
	n := s.NodeCount()
	all := make([]HighDegreeNode, 0, k+1)
	for id := NodeID(0); id < NodeID(n); id++ {
		d := Degree(s, id)
		if len(all) == k && d <= all[len(all)-1].Degree {
			continue
		}
		name := ""
		if v, ok := s.NodeProp(id, model.PropShortName); ok {
			name = v.AsString()
		}
		all = append(all, HighDegreeNode{ID: id, Type: s.NodeType(id), Name: name, Degree: d})
		sort.Slice(all, func(i, j int) bool { return all[i].Degree > all[j].Degree })
		if len(all) > k {
			all = all[:k]
		}
	}
	return all
}

// CountByNodeType tallies nodes per concrete type.
func CountByNodeType(s Source) map[model.NodeType]int64 {
	out := make(map[model.NodeType]int64)
	n := s.NodeCount()
	for id := NodeID(0); id < NodeID(n); id++ {
		out[s.NodeType(id)]++
	}
	return out
}

// CountByEdgeType tallies edges per type.
func CountByEdgeType(s Source) map[model.EdgeType]int64 {
	out := make(map[model.EdgeType]int64)
	n := s.EdgeCount()
	for id := EdgeID(0); id < EdgeID(n); id++ {
		_, _, t := s.EdgeEnds(id)
		out[t]++
	}
	return out
}
