package graph

import (
	"testing"
	"testing/quick"

	"frappe/internal/model"
)

func TestAddNodeAndEdge(t *testing.T) {
	g := New()
	f := g.AddNode(model.NodeFunction, P(model.PropShortName, "main", model.PropName, "main"))
	b := g.AddNode(model.NodeFunction, P(model.PropShortName, "bar"))
	e := g.AddEdge(f, b, model.EdgeCalls, P(model.PropUseStartLine, 3))

	if g.NodeCount() != 2 || g.EdgeCount() != 1 {
		t.Fatalf("counts = %d nodes, %d edges; want 2, 1", g.NodeCount(), g.EdgeCount())
	}
	from, to, typ := g.EdgeEnds(e)
	if from != f || to != b || typ != model.EdgeCalls {
		t.Fatalf("EdgeEnds = (%d, %d, %s)", from, to, typ)
	}
	if got := g.Out(f); len(got) != 1 || got[0] != e {
		t.Fatalf("Out(main) = %v", got)
	}
	if got := g.In(b); len(got) != 1 || got[0] != e {
		t.Fatalf("In(bar) = %v", got)
	}
	if got := g.Out(b); len(got) != 0 {
		t.Fatalf("Out(bar) = %v, want empty", got)
	}
	if v, ok := g.EdgeProp(e, "use_start_line"); !ok || v.AsInt() != 3 {
		t.Fatalf("EdgeProp(use_start_line) = %v, %v", v, ok)
	}
}

func TestNodePropTypePseudoProperty(t *testing.T) {
	g := New()
	id := g.AddNode(model.NodeStruct, P(model.PropShortName, "packet_command"))
	v, ok := g.NodeProp(id, "TYPE")
	if !ok || v.AsString() != "struct" {
		t.Fatalf("TYPE = %v, %v", v, ok)
	}
	if v, ok = g.NodeProp(id, "type"); !ok || v.AsString() != "struct" {
		t.Fatalf("case-insensitive TYPE = %v, %v", v, ok)
	}
}

func TestLabels(t *testing.T) {
	cases := []struct {
		typ   model.NodeType
		label string
		want  bool
	}{
		{model.NodeFunction, "function", true},
		{model.NodeFunction, "symbol", true},
		{model.NodeFunction, "container", true},
		{model.NodeFunction, "type", false},
		{model.NodeStruct, "type", true},
		{model.NodeStruct, "container", true},
		{model.NodeStruct, "symbol", false},
		{model.NodePrimitive, "type", true},
		{model.NodeField, "symbol", true},
		{model.NodeField, "value", true},
		{model.NodeFunctionDecl, "decl", true},
		{model.NodeMacro, "symbol", true},
		{model.NodeModule, "container", true},
	}
	for _, c := range cases {
		if got := HasLabel(c.typ, c.label); got != c.want {
			t.Errorf("HasLabel(%s, %s) = %v, want %v", c.typ, c.label, got, c.want)
		}
	}
}

func TestSetNodePropReindexes(t *testing.T) {
	g := New()
	id := g.AddNode(model.NodeGlobal, P(model.PropShortName, "old_name"))
	g.SetNodeProp(id, model.PropShortName, Str("new_name"))

	got, err := g.Lookup("short_name: old_name")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("stale index entry: %v", got)
	}
	got, err = g.Lookup("short_name: new_name")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != id {
		t.Fatalf("Lookup(new_name) = %v, want [%d]", got, id)
	}
}

func TestFindNode(t *testing.T) {
	g := New()
	g.AddNode(model.NodeFunction, P(model.PropShortName, "a"))
	want := g.AddNode(model.NodeFunction, P(model.PropShortName, "b"))
	if got := FindNode(g, "SHORT_NAME", "b"); got != want {
		t.Fatalf("FindNode = %d, want %d", got, want)
	}
	if got := FindNode(g, "SHORT_NAME", "zzz"); got != InvalidID {
		t.Fatalf("FindNode(zzz) = %d, want InvalidID", got)
	}
}

func TestValueCompare(t *testing.T) {
	if c, ok := Int(3).Compare(Int(5)); !ok || c != -1 {
		t.Fatalf("3 vs 5 = %d, %v", c, ok)
	}
	if c, ok := Str("b").Compare(Str("a")); !ok || c != 1 {
		t.Fatalf("b vs a = %d, %v", c, ok)
	}
	if _, ok := Int(3).Compare(Str("3")); ok {
		t.Fatal("int vs string should be incomparable")
	}
	if c, ok := Bool(true).Compare(Int(1)); !ok || c != 0 {
		t.Fatalf("true vs 1 = %d, %v", c, ok)
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(7).Equal(Int(7)) || Int(7).Equal(Int(8)) {
		t.Fatal("int equality broken")
	}
	if !Str("x").Equal(Str("x")) || Str("x").Equal(Str("y")) {
		t.Fatal("string equality broken")
	}
	if Int(1).Equal(Bool(true)) {
		t.Fatal("int should not equal bool")
	}
	if !Nil().Equal(Nil()) {
		t.Fatal("nil should equal nil")
	}
}

func TestPropsSetGetClone(t *testing.T) {
	ps := P("A", 1, "B", "two")
	if ps.GetInt("a") != 1 || ps.GetString("b") != "two" {
		t.Fatalf("get failed: %v", ps)
	}
	c := ps.Clone()
	c = c.Set("A", Int(9))
	if ps.GetInt("A") != 1 {
		t.Fatal("Clone aliases original")
	}
	if c.GetInt("A") != 9 {
		t.Fatal("Set on clone failed")
	}
	c = c.Set("NEW", Str("v"))
	if c.GetString("new") != "v" {
		t.Fatal("Set append failed")
	}
}

func TestMetrics(t *testing.T) {
	g := New()
	a := g.AddNode(model.NodeFunction, nil)
	b := g.AddNode(model.NodeFunction, nil)
	g.AddEdge(a, b, model.EdgeCalls, nil)
	g.AddEdge(a, b, model.EdgeCalls, nil)
	m := ComputeMetrics(g)
	if m.Nodes != 2 || m.Edges != 2 || m.Density != 1.0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestDegreeDistribution(t *testing.T) {
	g := New()
	hub := g.AddNode(model.NodePrimitive, P(model.PropShortName, "int"))
	for i := 0; i < 5; i++ {
		n := g.AddNode(model.NodeGlobal, nil)
		g.AddEdge(n, hub, model.EdgeIsaType, nil)
	}
	dist := DegreeDistribution(g)
	// 5 nodes of degree 1, 1 node of degree 5.
	if len(dist) != 2 || dist[0] != (DegreePoint{1, 5}) || dist[1] != (DegreePoint{5, 1}) {
		t.Fatalf("dist = %v", dist)
	}
	top := TopDegreeNodes(g, 1)
	if len(top) != 1 || top[0].ID != hub || top[0].Name != "int" || top[0].Degree != 5 {
		t.Fatalf("top = %+v", top)
	}
}

func TestCountByType(t *testing.T) {
	g := New()
	a := g.AddNode(model.NodeFunction, nil)
	b := g.AddNode(model.NodeFunction, nil)
	c := g.AddNode(model.NodeGlobal, nil)
	g.AddEdge(a, b, model.EdgeCalls, nil)
	g.AddEdge(a, c, model.EdgeWrites, nil)
	g.AddEdge(b, c, model.EdgeReads, nil)
	nt := CountByNodeType(g)
	if nt[model.NodeFunction] != 2 || nt[model.NodeGlobal] != 1 {
		t.Fatalf("node counts = %v", nt)
	}
	et := CountByEdgeType(g)
	if et[model.EdgeCalls] != 1 || et[model.EdgeWrites] != 1 || et[model.EdgeReads] != 1 {
		t.Fatalf("edge counts = %v", et)
	}
}

func TestConvertRefsToNodes(t *testing.T) {
	g := New()
	file := g.AddNode(model.NodeFile, P(model.PropShortName, "a.c"))
	foo := g.AddNode(model.NodeFunction, P(model.PropShortName, "foo"))
	bar := g.AddNode(model.NodeFunction, P(model.PropShortName, "bar"))
	g.AddEdge(file, foo, model.EdgeFileContains, nil)
	g.AddEdge(file, bar, model.EdgeFileContains, nil)
	g.AddEdge(foo, bar, model.EdgeCalls, P(model.PropUseFileID, 7))

	conv := ConvertRefsToNodes(g, map[int64]NodeID{7: file})
	// 3 original nodes + 1 ref site.
	if conv.NodeCount() != 4 {
		t.Fatalf("node count = %d", conv.NodeCount())
	}
	// 2 file_contains + 2 half calls + 1 contains.
	if conv.EdgeCount() != 5 {
		t.Fatalf("edge count = %d", conv.EdgeCount())
	}
	// foo -calls-> site -calls-> bar must hold.
	var site NodeID = InvalidID
	for _, e := range conv.Out(foo) {
		_, to, typ := conv.EdgeEnds(e)
		if typ == model.EdgeCalls {
			site = to
		}
	}
	if site == InvalidID || conv.NodeType(site) != RefSiteType {
		t.Fatalf("no ref site from foo (site=%d)", site)
	}
	foundBar, foundFile := false, false
	for _, e := range conv.Out(site) {
		if _, to, typ := conv.EdgeEnds(e); typ == model.EdgeCalls && to == bar {
			foundBar = true
		}
	}
	for _, e := range conv.In(site) {
		if from, _, typ := conv.EdgeEnds(e); typ == model.EdgeContains && from == file {
			foundFile = true
		}
	}
	if !foundBar || !foundFile {
		t.Fatalf("site edges wrong: bar=%v file=%v", foundBar, foundFile)
	}
}

// Property: wildcard match must agree with a simple recursive oracle.
func TestWildcardMatchQuick(t *testing.T) {
	var oracle func(p, v string) bool
	oracle = func(p, v string) bool {
		if p == "" {
			return v == ""
		}
		switch p[0] {
		case '*':
			for i := 0; i <= len(v); i++ {
				if oracle(p[1:], v[i:]) {
					return true
				}
			}
			return false
		case '?':
			return v != "" && oracle(p[1:], v[1:])
		default:
			return v != "" && v[0] == p[0] && oracle(p[1:], v[1:])
		}
	}
	alphabet := []byte("ab*?")
	gen := func(n int, seed int64) string {
		s := make([]byte, n)
		x := uint64(seed)
		for i := range s {
			x = x*6364136223846793005 + 1442695040888963407
			s[i] = alphabet[(x>>33)%uint64(len(alphabet))]
		}
		return string(s)
	}
	for seed := int64(0); seed < 400; seed++ {
		p := gen(int(seed%6), seed*2+1)
		v := gen(int(seed%7), seed*3+5)
		// values should not contain wildcards
		vb := []byte(v)
		for i := range vb {
			if vb[i] == '*' || vb[i] == '?' {
				vb[i] = 'a'
			}
		}
		v = string(vb)
		if got, want := WildcardMatch(p, v), oracle(p, v); got != want {
			t.Fatalf("WildcardMatch(%q, %q) = %v, want %v", p, v, got, want)
		}
	}
}

func TestWildcardMatchBasics(t *testing.T) {
	cases := []struct {
		p, v string
		want bool
	}{
		{"pci_*", "pci_read_bases", true},
		{"pci_*", "pcie", false},
		{"*", "", true},
		{"", "", true},
		{"?", "", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"*_t", "size_t", true},
		{"*bar*", "foobarbaz", true},
	}
	for _, c := range cases {
		if got := WildcardMatch(c.p, c.v); got != c.want {
			t.Errorf("WildcardMatch(%q, %q) = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

// Property: union and intersect of sorted sets behave like set ops.
func TestSetOpsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	norm := func(xs []uint8) []NodeID {
		seen := make(map[NodeID]bool)
		var out []NodeID
		for _, x := range xs {
			seen[NodeID(x%32)] = true
		}
		for i := NodeID(0); i < 32; i++ {
			if seen[i] {
				out = append(out, i)
			}
		}
		return out
	}
	err := quick.Check(func(as, bs []uint8) bool {
		a, b := norm(as), norm(bs)
		inA := make(map[NodeID]bool)
		inB := make(map[NodeID]bool)
		for _, x := range a {
			inA[x] = true
		}
		for _, x := range b {
			inB[x] = true
		}
		for _, x := range intersectIDs(a, b) {
			if !inA[x] || !inB[x] {
				return false
			}
		}
		u := unionIDs(a, b)
		if len(u) != len(inA)+len(inB)-len(intersectIDs(a, b)) {
			return false
		}
		for i := 1; i < len(u); i++ {
			if u[i-1] >= u[i] {
				return false
			}
		}
		for _, x := range subtractIDs(a, b) {
			if !inA[x] || inB[x] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
