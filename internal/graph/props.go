package graph

import (
	"sort"
	"strings"
)

// Prop is a single key/value property. Keys follow the paper's Table 2
// (upper-case, e.g. SHORT_NAME) but all lookups are case-insensitive to
// match Cypher's forgiving treatment in the paper's figures, which mix
// SHORT_NAME and short_name freely.
type Prop struct {
	Key string
	Val Value
}

// Props is an ordered set of properties. The ordering is insertion order;
// Get is linear, which is the right trade-off for the graph model's small
// property sets (≤ a dozen keys per element).
type Props []Prop

// P builds a Props list from alternating key, value pairs. Values may be
// int, int64, string, bool or Value. It panics on an odd-length or
// non-string-keyed argument list; it is meant for literal construction.
func P(kv ...any) Props {
	if len(kv)%2 != 0 {
		panic("graph.P: odd number of arguments")
	}
	ps := make(Props, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			panic("graph.P: key must be a string")
		}
		ps = append(ps, Prop{Key: k, Val: ValueOf(kv[i+1])})
	}
	return ps
}

// Get returns the value for key (case-insensitive) and whether it exists.
func (ps Props) Get(key string) (Value, bool) {
	for _, p := range ps {
		if strings.EqualFold(p.Key, key) {
			return p.Val, true
		}
	}
	return Value{}, false
}

// GetString returns the string payload for key, or "" if absent or not a
// string.
func (ps Props) GetString(key string) string {
	v, ok := ps.Get(key)
	if !ok || v.Kind() != KindString {
		return ""
	}
	return v.AsString()
}

// GetInt returns the integer payload for key, or 0 if absent.
func (ps Props) GetInt(key string) int64 {
	v, ok := ps.Get(key)
	if !ok {
		return 0
	}
	return v.AsInt()
}

// Set replaces the value for key (case-insensitive), appending if absent,
// and returns the possibly-grown slice.
func (ps Props) Set(key string, v Value) Props {
	for i, p := range ps {
		if strings.EqualFold(p.Key, key) {
			ps[i].Val = v
			return ps
		}
	}
	return append(ps, Prop{Key: key, Val: v})
}

// Clone returns an independent copy.
func (ps Props) Clone() Props {
	out := make(Props, len(ps))
	copy(out, ps)
	return out
}

// Sorted returns a copy sorted by key, for deterministic serialisation.
func (ps Props) Sorted() Props {
	out := ps.Clone()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
