package graph

import (
	"fmt"
	"sort"
	"strings"

	"frappe/internal/model"
)

// IndexedKeys are the node properties maintained in the auto-index, the
// same set Frappé's Neo4j deployment configured for node_auto_index.
var IndexedKeys = []string{model.PropType, model.PropShortName, model.PropName, model.PropLongName}

func isIndexedKey(key string) bool {
	for _, k := range IndexedKeys {
		if eqFold(key, k) {
			return true
		}
	}
	return false
}

// Index is an inverted index from (property key, exact value) to sorted
// node IDs. It backs the Lucene-flavoured node_auto_index query syntax
// used by the paper's START clauses, e.g.
//
//	short_name: wakeup.elf
//	(TYPE: struct OR TYPE: union) AND NAME: foo
//	short_name: pci_*
//
// Bare adjacency of clauses means OR (Lucene's default operator); AND
// binds tighter than OR; NOT is supported as a prefix; '*' and '?' act as
// wildcards anywhere in a value; values with spaces can be quoted with
// single or double quotes.
type Index struct {
	byKey map[string]map[string][]NodeID // lower(key) -> value -> sorted ids
}

func newIndex() *Index {
	return &Index{byKey: make(map[string]map[string][]NodeID)}
}

func (ix *Index) addNode(id NodeID, typ model.NodeType, props Props) {
	ix.put(model.PropType, string(typ), id)
	for _, p := range props {
		if isIndexedKey(p.Key) && p.Val.Kind() == KindString {
			ix.put(p.Key, p.Val.AsString(), id)
		}
	}
}

func (ix *Index) updateNode(id NodeID, key string, old Value, had bool, now Value) {
	if !isIndexedKey(key) {
		return
	}
	if had && old.Kind() == KindString {
		ix.remove(key, old.AsString(), id)
	}
	if now.Kind() == KindString {
		ix.put(key, now.AsString(), id)
	}
}

func (ix *Index) put(key, value string, id NodeID) {
	k := strings.ToLower(key)
	m := ix.byKey[k]
	if m == nil {
		m = make(map[string][]NodeID)
		ix.byKey[k] = m
	}
	ids := m[value]
	if n := len(ids); n > 0 && ids[n-1] >= id {
		// Keep sorted on out-of-order insert (rare: SetNodeProp).
		pos := sort.Search(n, func(i int) bool { return ids[i] >= id })
		if pos < n && ids[pos] == id {
			return
		}
		ids = append(ids, 0)
		copy(ids[pos+1:], ids[pos:])
		ids[pos] = id
		m[value] = ids
		return
	}
	m[value] = append(ids, id)
}

func (ix *Index) remove(key, value string, id NodeID) {
	k := strings.ToLower(key)
	m := ix.byKey[k]
	if m == nil {
		return
	}
	ids := m[value]
	pos := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if pos < len(ids) && ids[pos] == id {
		m[value] = append(ids[:pos], ids[pos+1:]...)
	}
}

// Terms returns the number of distinct (key, value) terms; used for store
// sizing (Table 4's "Indexes" row).
func (ix *Index) Terms() int {
	n := 0
	for _, m := range ix.byKey {
		n += len(m)
	}
	return n
}

// Entries iterates all (key, value, ids) triples in a deterministic order.
func (ix *Index) Entries(fn func(key, value string, ids []NodeID)) {
	keys := make([]string, 0, len(ix.byKey))
	for k := range ix.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vals := make([]string, 0, len(ix.byKey[k]))
		for v := range ix.byKey[k] {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			fn(k, v, ix.byKey[k][v])
		}
	}
}

// Put inserts a single term directly; used when rebuilding an index from
// its serialised form.
func (ix *Index) Put(key, value string, id NodeID) { ix.put(key, value, id) }

// Lookup parses and evaluates an index query, returning sorted node IDs.
func (ix *Index) Lookup(query string) ([]NodeID, error) {
	q, err := ParseIndexQuery(query)
	if err != nil {
		return nil, err
	}
	return EvalIndexQuery(q, ix), nil
}

// IndexTermSource abstracts term lookup so that EvalIndexQuery runs both
// against the in-memory Index and against the on-disk index in the store
// package.
type IndexTermSource interface {
	// Exact returns a fresh sorted slice of node IDs for an exact term.
	Exact(key, value string) []NodeID
	// ScanKey visits every (value, ids) pair indexed under key.
	ScanKey(key string, fn func(value string, ids []NodeID))
}

// Exact implements IndexTermSource.
func (ix *Index) Exact(key, value string) []NodeID {
	m := ix.byKey[strings.ToLower(key)]
	if m == nil {
		return nil
	}
	ids := m[value]
	out := make([]NodeID, len(ids))
	copy(out, ids)
	return out
}

// ScanKey implements IndexTermSource.
func (ix *Index) ScanKey(key string, fn func(value string, ids []NodeID)) {
	for v, ids := range ix.byKey[strings.ToLower(key)] {
		fn(v, ids)
	}
}

// EvalIndexQuery evaluates a parsed index query over any term source.
func EvalIndexQuery(q IndexQuery, ts IndexTermSource) []NodeID {
	switch t := q.(type) {
	case *IndexTerm:
		return evalIndexTerm(t, ts)
	case *IndexBool:
		res := EvalIndexQuery(t.Clauses[0], ts)
		for _, c := range t.Clauses[1:] {
			if not, ok := c.(*IndexNot); ok && t.Op == IndexAnd {
				res = subtractIDs(res, EvalIndexQuery(not.Clause, ts))
				continue
			}
			r := EvalIndexQuery(c, ts)
			if t.Op == IndexAnd {
				res = intersectIDs(res, r)
			} else {
				res = unionIDs(res, r)
			}
		}
		return res
	case *IndexNot:
		// A bare NOT (not under an AND) has no universe to negate against;
		// it evaluates to the empty set, as in Lucene.
		return nil
	}
	return nil
}

func evalIndexTerm(t *IndexTerm, ts IndexTermSource) []NodeID {
	if !strings.ContainsAny(t.Value, "*?") {
		return ts.Exact(t.Key, t.Value)
	}
	var out []NodeID
	ts.ScanKey(t.Key, func(v string, ids []NodeID) {
		if WildcardMatch(t.Value, v) {
			out = unionIDs(out, ids)
		}
	})
	return out
}

// WildcardMatch reports whether value matches pattern, where '*' matches
// any run of characters and '?' any single character.
func WildcardMatch(pattern, value string) bool {
	// Iterative glob match with backtracking on the last '*'.
	pi, vi := 0, 0
	star, starV := -1, 0
	for vi < len(value) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == value[vi]):
			pi++
			vi++
		case pi < len(pattern) && pattern[pi] == '*':
			star = pi
			starV = vi
			pi++
		case star >= 0:
			pi = star + 1
			starV++
			vi = starV
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

func intersectIDs(a, b []NodeID) []NodeID {
	var out []NodeID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func unionIDs(a, b []NodeID) []NodeID {
	out := make([]NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func subtractIDs(a, b []NodeID) []NodeID {
	var out []NodeID
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// --- index query language ---

// IndexQuery is a parsed node_auto_index query.
type IndexQuery interface{ indexQuery() }

// IndexTerm is a single `key: value` clause.
type IndexTerm struct {
	Key   string
	Value string
}

// IndexBoolOp is AND or OR.
type IndexBoolOp int

// Boolean operators for index queries.
const (
	IndexOr IndexBoolOp = iota
	IndexAnd
)

// IndexBool combines clauses with one operator.
type IndexBool struct {
	Op      IndexBoolOp
	Clauses []IndexQuery
}

// IndexNot negates a clause (only useful under AND).
type IndexNot struct{ Clause IndexQuery }

func (*IndexTerm) indexQuery() {}
func (*IndexBool) indexQuery() {}
func (*IndexNot) indexQuery()  {}

type indexParser struct {
	s   string
	pos int
}

// ParseIndexQuery parses the Lucene-flavoured query syntax described on
// Index. The grammar:
//
//	query  := or
//	or     := and ((OR|ε) and)*        // adjacency means OR
//	and    := unary (AND unary)*
//	unary  := NOT unary | primary
//	primary:= '(' query ')' | key ':' value
func ParseIndexQuery(s string) (IndexQuery, error) {
	p := &indexParser{s: s}
	q, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("index query: unexpected %q at offset %d", p.s[p.pos:], p.pos)
	}
	return q, nil
}

func (p *indexParser) parseOr() (IndexQuery, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	clauses := []IndexQuery{first}
	for {
		save := p.pos
		if p.keyword("OR") {
			// explicit OR
		} else if p.peekClauseStart() {
			// implicit OR by adjacency
		} else {
			p.pos = save
			break
		}
		c, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		clauses = append(clauses, c)
	}
	if len(clauses) == 1 {
		return clauses[0], nil
	}
	return &IndexBool{Op: IndexOr, Clauses: clauses}, nil
}

func (p *indexParser) parseAnd() (IndexQuery, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	clauses := []IndexQuery{first}
	for p.keyword("AND") {
		c, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		clauses = append(clauses, c)
	}
	if len(clauses) == 1 {
		return clauses[0], nil
	}
	return &IndexBool{Op: IndexAnd, Clauses: clauses}, nil
}

func (p *indexParser) parseUnary() (IndexQuery, error) {
	if p.keyword("NOT") {
		c, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IndexNot{Clause: c}, nil
	}
	return p.parsePrimary()
}

func (p *indexParser) parsePrimary() (IndexQuery, error) {
	p.skipSpace()
	if p.pos < len(p.s) && p.s[p.pos] == '(' {
		p.pos++
		q, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.s) || p.s[p.pos] != ')' {
			return nil, fmt.Errorf("index query: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return q, nil
	}
	key := p.token(false)
	if key == "" {
		return nil, fmt.Errorf("index query: expected term at offset %d", p.pos)
	}
	p.skipSpace()
	if p.pos >= len(p.s) || p.s[p.pos] != ':' {
		return nil, fmt.Errorf("index query: expected ':' after key %q", key)
	}
	p.pos++
	p.skipSpace()
	val := p.token(true)
	if val == "" {
		return nil, fmt.Errorf("index query: expected value after %q:", key)
	}
	return &IndexTerm{Key: key, Value: val}, nil
}

func (p *indexParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n' || p.s[p.pos] == '\r') {
		p.pos++
	}
}

// keyword consumes an upper/lower-case keyword followed by a boundary.
func (p *indexParser) keyword(kw string) bool {
	save := p.pos
	p.skipSpace()
	if p.pos+len(kw) > len(p.s) || !eqFold(p.s[p.pos:p.pos+len(kw)], kw) {
		p.pos = save
		return false
	}
	end := p.pos + len(kw)
	if end < len(p.s) {
		c := p.s[end]
		if c != ' ' && c != '\t' && c != '\n' && c != '(' && c != ')' {
			p.pos = save
			return false
		}
	}
	p.pos = end
	return true
}

func (p *indexParser) peekClauseStart() bool {
	save := p.pos
	p.skipSpace()
	if p.pos >= len(p.s) || p.s[p.pos] == ')' {
		p.pos = save
		return false
	}
	// Do not treat a dangling AND/OR as a clause.
	if p.s[p.pos] == '(' {
		return true
	}
	c := p.s[p.pos]
	ok := c == '_' || c == '\'' || c == '"' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
	if !ok {
		p.pos = save
	}
	return ok
}

// token reads a bare or quoted token. Values (isValue) admit wildcard and
// punctuation characters that appear in symbol names and file names.
func (p *indexParser) token(isValue bool) string {
	p.skipSpace()
	if p.pos < len(p.s) && (p.s[p.pos] == '\'' || p.s[p.pos] == '"') {
		quote := p.s[p.pos]
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && p.s[p.pos] != quote {
			p.pos++
		}
		tok := p.s[start:p.pos]
		if p.pos < len(p.s) {
			p.pos++
		}
		return tok
	}
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		bare := c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
		if isValue {
			bare = bare || c == '*' || c == '?' || c == '.' || c == '/' || c == '-' || c == ':'
		}
		if !bare {
			break
		}
		p.pos++
	}
	return p.s[start:p.pos]
}
