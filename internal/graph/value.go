// Package graph implements Frappé's in-memory property graph: typed nodes
// and directed typed edges, both carrying key/value properties, plus the
// inverted "auto index" used by START clauses and graph-level statistics.
//
// The package also defines the Source interface through which the query
// engine (internal/query) and the traversal API (internal/traversal)
// access graph data, so that the on-disk store (internal/store) can be
// queried identically to the in-memory graph.
package graph

import (
	"fmt"
	"strconv"
)

// Kind discriminates the dynamic type of a property Value.
type Kind uint8

// Property value kinds.
const (
	KindNil Kind = iota
	KindInt
	KindString
	KindBool
)

// Value is a property value: nil, int64, string or bool. The zero Value is
// nil. Values are small immutable value types, safe to copy and compare.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Str returns a string Value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a boolean Value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Nil returns the nil Value (also the zero value of the type).
func Nil() Value { return Value{} }

// Kind reports the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is nil.
func (v Value) IsNil() bool { return v.kind == KindNil }

// AsInt returns the integer payload; it is 0 unless Kind is KindInt or
// KindBool.
func (v Value) AsInt() int64 { return v.i }

// AsString returns the string payload; it is "" unless Kind is KindString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload.
func (v Value) AsBool() bool { return v.kind != KindNil && v.i != 0 }

// Equal reports deep equality of two values. Ints never equal strings;
// bools equal bools only.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNil:
		return true
	case KindString:
		return v.s == o.s
	default:
		return v.i == o.i
	}
}

// Compare orders two values. It returns (-1|0|1, true) when the values are
// comparable (same kind, or both numeric), and (0, false) otherwise.
func (v Value) Compare(o Value) (int, bool) {
	switch {
	case v.kind == KindString && o.kind == KindString:
		switch {
		case v.s < o.s:
			return -1, true
		case v.s > o.s:
			return 1, true
		}
		return 0, true
	case (v.kind == KindInt || v.kind == KindBool) && (o.kind == KindInt || o.kind == KindBool):
		switch {
		case v.i < o.i:
			return -1, true
		case v.i > o.i:
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// String renders the value for display and index tokenisation.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "<nil>"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return v.s
	}
}

// GoString implements fmt.GoStringer for test diagnostics.
func (v Value) GoString() string {
	switch v.kind {
	case KindNil:
		return "graph.Nil()"
	case KindInt:
		return fmt.Sprintf("graph.Int(%d)", v.i)
	case KindBool:
		return fmt.Sprintf("graph.Bool(%v)", v.i != 0)
	default:
		return fmt.Sprintf("graph.Str(%q)", v.s)
	}
}

// ValueOf converts a Go value of a supported type (int, int64, string,
// bool, Value) to a Value. It panics on unsupported types; it is intended
// for literal construction in extractors, generators and tests.
func ValueOf(x any) Value {
	switch t := x.(type) {
	case Value:
		return t
	case int:
		return Int(int64(t))
	case int32:
		return Int(int64(t))
	case int64:
		return Int(t)
	case uint32:
		return Int(int64(t))
	case string:
		return Str(t)
	case bool:
		return Bool(t)
	case nil:
		return Nil()
	}
	panic(fmt.Sprintf("graph.ValueOf: unsupported type %T", x))
}
