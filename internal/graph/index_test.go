package graph

import (
	"reflect"
	"testing"

	"frappe/internal/model"
)

func buildIndexedGraph(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	g := New()
	ids := make(map[string]NodeID)
	add := func(name string, typ model.NodeType) {
		ids[name+"/"+string(typ)] = g.AddNode(typ, P(
			model.PropShortName, name,
			model.PropName, name,
			model.PropLongName, "kernel::"+name,
		))
	}
	add("foo", model.NodeStruct)
	add("foo", model.NodeUnion)
	add("foo", model.NodeFunction)
	add("bar", model.NodeFunction)
	add("wakeup.elf", model.NodeModule)
	add("pci_read_bases", model.NodeFunction)
	add("pci_write_config", model.NodeFunction)
	return g, ids
}

func TestLookupExact(t *testing.T) {
	g, ids := buildIndexedGraph(t)
	got, err := g.Lookup("short_name: wakeup.elf")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{ids["wakeup.elf/module"]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLookupWildcard(t *testing.T) {
	g, ids := buildIndexedGraph(t)
	got, err := g.Lookup("short_name: pci_*")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{ids["pci_read_bases/function"], ids["pci_write_config/function"]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLookupBooleanTable6(t *testing.T) {
	g, ids := buildIndexedGraph(t)
	// The Cypher 1.x style query from Table 6 of the paper: implicit OR
	// between TYPE terms, AND with the NAME term.
	got, err := g.Lookup("(TYPE: struct TYPE: union TYPE: enum_def) AND NAME: foo")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{ids["foo/struct"], ids["foo/union"]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLookupExplicitOr(t *testing.T) {
	g, ids := buildIndexedGraph(t)
	got, err := g.Lookup("short_name: bar OR short_name: wakeup.elf")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{ids["bar/function"], ids["wakeup.elf/module"]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLookupAndNot(t *testing.T) {
	g, ids := buildIndexedGraph(t)
	got, err := g.Lookup("name: foo AND NOT TYPE: function")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{ids["foo/struct"], ids["foo/union"]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLookupQuotedValue(t *testing.T) {
	g := New()
	id := g.AddNode(model.NodeFile, P(model.PropShortName, "my file.c"))
	got, err := g.Lookup(`short_name: "my file.c"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != id {
		t.Fatalf("got %v", got)
	}
}

func TestLookupErrors(t *testing.T) {
	g, _ := buildIndexedGraph(t)
	for _, q := range []string{"", "name foo", "(name: foo", "name:", ": foo", "name: foo ) x"} {
		if _, err := g.Lookup(q); err == nil {
			t.Errorf("Lookup(%q) succeeded, want error", q)
		}
	}
}

func TestLookupUnknownKeyAndValue(t *testing.T) {
	g, _ := buildIndexedGraph(t)
	got, err := g.Lookup("bogus_key: foo")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
	got, err = g.Lookup("short_name: does_not_exist")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestIndexTermsAndEntries(t *testing.T) {
	g, _ := buildIndexedGraph(t)
	ix := g.Index()
	if ix.Terms() == 0 {
		t.Fatal("no index terms")
	}
	seen := 0
	var lastKey, lastVal string
	ix.Entries(func(key, value string, ids []NodeID) {
		if key < lastKey || (key == lastKey && value <= lastVal) {
			t.Fatalf("entries out of order: (%s,%s) after (%s,%s)", key, value, lastKey, lastVal)
		}
		lastKey, lastVal = key, value
		if len(ids) == 0 {
			t.Fatalf("empty posting list for %s=%s", key, value)
		}
		seen++
	})
	if seen != ix.Terms() {
		t.Fatalf("Entries visited %d, Terms() = %d", seen, ix.Terms())
	}
}

func TestParseIndexQueryShapes(t *testing.T) {
	q, err := ParseIndexQuery("a: x AND b: y OR c: z")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := q.(*IndexBool)
	if !ok || or.Op != IndexOr || len(or.Clauses) != 2 {
		t.Fatalf("top = %#v", q)
	}
	and, ok := or.Clauses[0].(*IndexBool)
	if !ok || and.Op != IndexAnd || len(and.Clauses) != 2 {
		t.Fatalf("left = %#v", or.Clauses[0])
	}
}
