package codemap

import (
	"math"
	"strings"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
	"frappe/internal/traversal"
)

func tinyMapAndGraph(t *testing.T) (*Map, *graph.Graph) {
	t.Helper()
	w := kernelgen.Generate(kernelgen.Tiny())
	res, err := w.Extract()
	if err != nil {
		t.Fatal(err)
	}
	return Build(res.Graph), res.Graph
}

func TestBuildHierarchy(t *testing.T) {
	m, g := tinyMapAndGraph(t)
	if len(m.Root.Children) == 0 {
		t.Fatal("empty root")
	}
	// Every function of the graph that lives in a file must have a region.
	found := 0
	for id := graph.NodeID(0); id < graph.NodeID(g.NodeCount()); id++ {
		if g.NodeType(id) == model.NodeFunction {
			if _, ok := m.Region(id); ok {
				found++
			}
		}
	}
	if found < 10 {
		t.Fatalf("functions on map = %d", found)
	}
	// Weights: every inner region's size is the sum of its children.
	var check func(r *Region)
	check = func(r *Region) {
		if len(r.Children) == 0 {
			if r.Size <= 0 {
				t.Fatalf("leaf %s has size %v", r.Name, r.Size)
			}
			return
		}
		sum := 0.0
		for _, c := range r.Children {
			sum += c.Size
			check(c)
		}
		if math.Abs(sum-r.Size) > 1e-6 {
			t.Fatalf("region %s size %v != children sum %v", r.Name, r.Size, sum)
		}
	}
	check(m.Root)
}

// TestLayoutInvariants: children stay inside parents (modulo the border
// inset), siblings don't overlap, and areas are proportional to sizes.
func TestLayoutInvariants(t *testing.T) {
	m, _ := tinyMapAndGraph(t)
	m.Layout(1024, 768)

	var walk func(r *Region)
	walk = func(r *Region) {
		const eps = 0.01
		for _, c := range r.Children {
			if c.W < 0 || c.H < 0 {
				t.Fatalf("negative rect for %s: %+v", c.Name, c)
			}
			if c.X < r.X-eps || c.Y < r.Y-eps ||
				c.X+c.W > r.X+r.W+eps || c.Y+c.H > r.Y+r.H+eps {
				t.Fatalf("child %s (%.1f,%.1f,%.1f,%.1f) escapes parent %s (%.1f,%.1f,%.1f,%.1f)",
					c.Name, c.X, c.Y, c.W, c.H, r.Name, r.X, r.Y, r.W, r.H)
			}
			walk(c)
		}
		// Pairwise overlap among siblings.
		for i := 0; i < len(r.Children); i++ {
			for j := i + 1; j < len(r.Children); j++ {
				a, b := r.Children[i], r.Children[j]
				if a.X+a.W-eps > b.X+eps && b.X+b.W-eps > a.X+eps &&
					a.Y+a.H-eps > b.Y+eps && b.Y+b.H-eps > a.Y+eps {
					// Tolerate degenerate zero-area rects.
					if a.W*a.H > 1 && b.W*b.H > 1 {
						t.Fatalf("siblings %s and %s overlap: %+v vs %+v",
							a.Name, b.Name, [4]float64{a.X, a.Y, a.W, a.H}, [4]float64{b.X, b.Y, b.W, b.H})
					}
				}
			}
		}
	}
	walk(m.Root)
}

func TestLayoutAreaProportionality(t *testing.T) {
	m, _ := tinyMapAndGraph(t)
	m.Layout(1000, 1000)
	r := m.Root
	if len(r.Children) < 2 {
		t.Skip("need multiple top regions")
	}
	total := 0.0
	for _, c := range r.Children {
		total += c.W * c.H
	}
	for _, c := range r.Children {
		wantFrac := c.Size / r.Size
		gotFrac := (c.W * c.H) / total
		if math.Abs(wantFrac-gotFrac) > 0.02 {
			t.Fatalf("region %s: area fraction %.3f, want %.3f", c.Name, gotFrac, wantFrac)
		}
	}
}

func TestSVGRendering(t *testing.T) {
	m, g := tinyMapAndGraph(t)
	pci := graph.FindNode(g, model.PropShortName, "pci_read_bases")
	closure := traversal.TransitiveClosure(g, pci, traversal.Options{
		Direction: traversal.Out, Types: traversal.Types(model.EdgeCalls),
	})
	svg := m.SVG(RenderOptions{
		Width: 800, Height: 600,
		Title:     "pci_read_bases backward slice",
		Highlight: closure,
	})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(svg, "#e94f37") {
		t.Fatal("no highlighted regions")
	}
	if !strings.Contains(svg, "drivers") {
		t.Fatal("directory labels missing")
	}
	if strings.Count(svg, "<rect") < 50 {
		t.Fatalf("suspiciously few rects: %d", strings.Count(svg, "<rect"))
	}
}

func TestSVGPathOverlay(t *testing.T) {
	m, g := tinyMapAndGraph(t)
	lookup := func(name string) graph.NodeID {
		ids, err := g.Lookup("TYPE: function AND short_name: " + name)
		if err != nil || len(ids) == 0 {
			t.Fatalf("lookup %s: %v %v", name, ids, err)
		}
		return ids[0]
	}
	from := lookup("sr_media_change")
	to := lookup("write_cmd")
	p, ok := traversal.ShortestPath(g, from, to, traversal.Options{
		Direction: traversal.Out, Types: traversal.Types(model.EdgeCalls),
	})
	if !ok {
		t.Fatal("no path")
	}
	svg := m.SVG(RenderOptions{Width: 640, Height: 480, Paths: []traversal.Path{p}})
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("path overlay missing")
	}
}

func TestEscapeXML(t *testing.T) {
	if got := escapeXML(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatalf("escapeXML = %q", got)
	}
}

func TestFocusZoom(t *testing.T) {
	m, g := tinyMapAndGraph(t)
	// Find the drivers directory node to zoom onto.
	var dirNode graph.NodeID = graph.InvalidID
	for id := graph.NodeID(0); id < graph.NodeID(g.NodeCount()); id++ {
		if g.NodeType(id) == model.NodeDirectory {
			if v, _ := g.NodeProp(id, model.PropName); v.AsString() == "drivers" {
				dirNode = id
			}
		}
	}
	if dirNode == graph.InvalidID {
		t.Fatal("drivers directory missing")
	}
	zoomed := m.SVG(RenderOptions{Width: 800, Height: 600, Focus: dirNode})
	// The focused region fills the viewport (checked before the next
	// render re-lays the map out).
	r, _ := m.Region(dirNode)
	if r.W != 800 || r.H != 600 {
		t.Fatalf("focus rect = %vx%v", r.W, r.H)
	}
	full := m.SVG(RenderOptions{Width: 800, Height: 600})
	if len(zoomed) >= len(full) {
		t.Fatalf("zoomed map (%d bytes) should draw fewer regions than full (%d)", len(zoomed), len(full))
	}
	if !strings.Contains(zoomed, "scsi") {
		t.Fatal("zoomed map should still show drivers/scsi")
	}
}
