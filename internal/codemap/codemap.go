// Package codemap implements Frappé's interface component: a zoomable 2D
// spatial visualisation of the codebase using the cartographic map
// metaphor of the paper (§2) — the continent/country/city hierarchy maps
// to directories/files/functions. Query results are overlaid on the map
// so "the location, locality, structure, and quantity of results" are
// visible at a glance.
//
// The layout is a squarified treemap (Bruls, Huizing, van Wijk) over the
// dir_contains/file_contains hierarchy, with each leaf sized by its
// graph degree (a busy function is a big city). Rendering targets SVG.
package codemap

import (
	"sort"

	"frappe/internal/graph"
	"frappe/internal/model"
)

// Region is one map region: a directory (continent), file (country) or
// code entity (city).
type Region struct {
	Node     graph.NodeID
	Kind     model.NodeType
	Name     string
	Size     float64 // layout weight (sum of children for inner regions)
	Children []*Region

	// Layout rectangle, valid after Layout.
	X, Y, W, H float64
}

// Map is a laid-out code map.
type Map struct {
	Root   *Region
	byNode map[graph.NodeID]*Region
}

// Build constructs the region hierarchy from a graph: directories via
// dir_contains, files via file_contains; only symbol/type entities large
// enough to label are kept as cities (functions, structs, globals,
// macros).
func Build(src graph.Source) *Map {
	m := &Map{byNode: map[graph.NodeID]*Region{}}

	regionFor := func(id graph.NodeID) *Region {
		if r, ok := m.byNode[id]; ok {
			return r
		}
		name := ""
		if v, ok := src.NodeProp(id, model.PropShortName); ok {
			name = v.AsString()
		}
		r := &Region{Node: id, Kind: src.NodeType(id), Name: name}
		m.byNode[id] = r
		return r
	}

	cityKinds := map[model.NodeType]bool{
		model.NodeFunction: true, model.NodeStruct: true,
		model.NodeUnion: true, model.NodeEnumDef: true,
		model.NodeGlobal: true, model.NodeMacro: true,
		model.NodeTypedef: true,
	}

	hasParent := map[graph.NodeID]bool{}
	n := src.EdgeCount()
	for eid := graph.EdgeID(0); eid < graph.EdgeID(n); eid++ {
		from, to, t := src.EdgeEnds(eid)
		switch t {
		case model.EdgeDirContains:
			p, c := regionFor(from), regionFor(to)
			p.Children = append(p.Children, c)
			hasParent[to] = true
		case model.EdgeFileContains:
			if !cityKinds[src.NodeType(to)] {
				continue
			}
			if _, dup := m.byNode[to]; dup {
				continue // a shared header symbol keeps its first home
			}
			p, c := regionFor(from), regionFor(to)
			p.Children = append(p.Children, c)
			hasParent[to] = true
		}
	}

	// Root: a synthetic region over all parentless directories.
	root := &Region{Node: graph.InvalidID, Kind: model.NodeDirectory, Name: "/"}
	var rootIDs []graph.NodeID
	for id, r := range m.byNode {
		if (r.Kind == model.NodeDirectory || r.Kind == model.NodeFile) && !hasParent[id] {
			rootIDs = append(rootIDs, id)
		}
	}
	sort.Slice(rootIDs, func(i, j int) bool { return rootIDs[i] < rootIDs[j] })
	for _, id := range rootIDs {
		root.Children = append(root.Children, m.byNode[id])
	}
	m.Root = root

	// Weights: leaves by degree, inner regions by children sum.
	var weigh func(r *Region) float64
	weigh = func(r *Region) float64 {
		if len(r.Children) == 0 {
			d := 1.0
			if r.Node != graph.InvalidID {
				d += float64(graph.Degree(src, r.Node))
			}
			r.Size = d
			return d
		}
		sort.Slice(r.Children, func(i, j int) bool { return r.Children[i].Node < r.Children[j].Node })
		total := 0.0
		for _, c := range r.Children {
			total += weigh(c)
		}
		r.Size = total
		return total
	}
	weigh(root)
	return m
}

// Region looks up the region of a node, if it appears on the map.
func (m *Map) Region(id graph.NodeID) (*Region, bool) {
	r, ok := m.byNode[id]
	return r, ok
}

// Layout assigns rectangles with a squarified treemap within (0,0,w,h).
func (m *Map) Layout(w, h float64) {
	m.Root.X, m.Root.Y, m.Root.W, m.Root.H = 0, 0, w, h
	layoutRegion(m.Root)
}

// inset shrinks child areas so region borders stay visible.
const inset = 1.0

func layoutRegion(r *Region) {
	if len(r.Children) == 0 {
		return
	}
	x, y, w, h := r.X+inset, r.Y+inset, r.W-2*inset, r.H-2*inset
	if w <= 0 || h <= 0 {
		for _, c := range r.Children {
			c.X, c.Y, c.W, c.H = r.X, r.Y, 0, 0
			layoutRegion(c)
		}
		return
	}
	// Sort descending by size (squarify requirement).
	kids := append([]*Region(nil), r.Children...)
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].Size > kids[j].Size })
	total := 0.0
	for _, c := range kids {
		total += c.Size
	}
	if total <= 0 {
		total = 1
	}
	scale := w * h / total
	squarify(kids, scale, x, y, w, h)
	for _, c := range r.Children {
		layoutRegion(c)
	}
}

// squarify lays out kids (descending by size) into (x,y,w,h); each
// child's area is child.Size*scale.
func squarify(kids []*Region, scale, x, y, w, h float64) {
	row := kids[:0:0]
	rowArea := 0.0
	for i := 0; i < len(kids); {
		c := kids[i]
		area := c.Size * scale
		newRow := append(row, c)
		short := min64(w, h)
		if len(row) == 0 || worst(newRow, rowArea+area, scale, short) <= worst(row, rowArea, scale, short) {
			row = newRow
			rowArea += area
			i++
			continue
		}
		x, y, w, h = placeRow(row, rowArea, x, y, w, h)
		row = kids[i:i:cap(kids)]
		rowArea = 0
	}
	if len(row) > 0 {
		placeRow(row, rowArea, x, y, w, h)
	}
}

// worst computes the worst aspect ratio of a row with total area laid
// along the short side of length short.
func worst(row []*Region, rowArea, scale, short float64) float64 {
	if len(row) == 0 || rowArea <= 0 {
		return 1e18
	}
	maxA, minA := 0.0, 1e18
	for _, c := range row {
		a := c.Size * scale
		if a > maxA {
			maxA = a
		}
		if a < minA {
			minA = a
		}
	}
	if minA <= 0 {
		minA = 1e-9
	}
	s2 := short * short
	r1 := s2 * maxA / (rowArea * rowArea)
	r2 := rowArea * rowArea / (s2 * minA)
	if r1 > r2 {
		return r1
	}
	return r2
}

// placeRow lays row along the short side and returns the remaining rect.
func placeRow(row []*Region, rowArea float64, x, y, w, h float64) (nx, ny, nw, nh float64) {
	if rowArea <= 0 || w <= 0 || h <= 0 {
		for _, c := range row {
			c.X, c.Y, c.W, c.H = x, y, 0, 0
		}
		return x, y, w, h
	}
	if w >= h {
		// Row is a vertical strip on the left.
		strip := rowArea / h
		cy := y
		for _, c := range row {
			height := h * (c.Size / sumSizes(row))
			c.X, c.Y, c.W, c.H = x, cy, strip, height
			cy += height
		}
		return x + strip, y, w - strip, h
	}
	// Row is a horizontal strip on top.
	strip := rowArea / w
	cx := x
	for _, c := range row {
		width := w * (c.Size / sumSizes(row))
		c.X, c.Y, c.W, c.H = cx, y, width, strip
		cx += width
	}
	return x, y + strip, w, h - strip
}

func sumSizes(row []*Region) float64 {
	t := 0.0
	for _, c := range row {
		t += c.Size
	}
	if t <= 0 {
		return 1
	}
	return t
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
