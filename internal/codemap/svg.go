package codemap

import (
	"fmt"
	"strings"

	"frappe/internal/graph"
	"frappe/internal/model"
	"frappe/internal/traversal"
)

// RenderOptions control SVG output.
type RenderOptions struct {
	Width, Height float64
	Title         string
	// Highlight marks query-result nodes on the map (the paper's result
	// overlay).
	Highlight []graph.NodeID
	// Paths draws polylines through region centres (e.g. a shortest call
	// path from an entry point).
	Paths []traversal.Path
	// MaxDepth limits drawn nesting (0 = everything).
	MaxDepth int
	// Focus zooms the map onto one region's subtree (the "zoomable"
	// behaviour of the paper's map): when set to a node on the map, only
	// that region is laid out, filling the whole viewport.
	Focus graph.NodeID
}

// Cartographic palette: directories get terrain-like hues by depth,
// files a lighter parchment, cities small darker marks.
var depthFills = []string{"#cfe3c2", "#dcd4b8", "#e8e3cd", "#f2efe0", "#faf8ee"}

// fillFor picks a fill colour.
func fillFor(kind model.NodeType, depth int) string {
	switch kind {
	case model.NodeDirectory:
		return depthFills[depth%len(depthFills)]
	case model.NodeFile:
		return "#f6f3e4"
	default:
		return "#b8c4d8"
	}
}

// SVG renders the laid-out map.
func (m *Map) SVG(opts RenderOptions) string {
	if opts.Width <= 0 {
		opts.Width = 1024
	}
	if opts.Height <= 0 {
		opts.Height = 768
	}
	root := m.Root
	if opts.Focus != 0 && opts.Focus != graph.InvalidID {
		if r, ok := m.Region(opts.Focus); ok {
			root = r
		}
	}
	root.X, root.Y, root.W, root.H = 0, 0, opts.Width, opts.Height
	layoutRegion(root)

	hl := map[graph.NodeID]bool{}
	for _, id := range opts.Highlight {
		hl[id] = true
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height)
	fmt.Fprintf(&sb, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="#a6c3dd"/>`+"\n", opts.Width, opts.Height)
	if opts.Title != "" {
		fmt.Fprintf(&sb, `<title>%s</title>`+"\n", escapeXML(opts.Title))
	}

	var draw func(r *Region, depth int)
	draw = func(r *Region, depth int) {
		if opts.MaxDepth > 0 && depth > opts.MaxDepth {
			return
		}
		if r.W <= 0.5 || r.H <= 0.5 {
			return
		}
		if r.Node != graph.InvalidID {
			fill := fillFor(r.Kind, depth)
			stroke := "#8a8a7a"
			sw := 0.5
			if hl[r.Node] {
				fill = "#e94f37"
				stroke = "#7a1f12"
				sw = 1.5
			}
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s" stroke-width="%.1f"><title>%s %s</title></rect>`+"\n",
				r.X, r.Y, r.W, r.H, fill, stroke, sw, r.Kind, escapeXML(r.Name))
			if r.W > 60 && r.H > 14 && (r.Kind == model.NodeDirectory || r.Kind == model.NodeFile) {
				fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" font-family="sans-serif" fill="#44443a">%s</text>`+"\n",
					r.X+3, r.Y+11, escapeXML(r.Name))
			}
		}
		for _, c := range r.Children {
			draw(c, depth+1)
		}
	}
	draw(root, 0)

	// Path overlays.
	for _, p := range opts.Paths {
		pts := make([]string, 0, p.Len()+1)
		for _, n := range p.Nodes() {
			if r, ok := m.byNode[n]; ok {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", r.X+r.W/2, r.Y+r.H/2))
			}
		}
		if len(pts) >= 2 {
			fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="#1d3557" stroke-width="2" stroke-dasharray="5,3" opacity="0.85"/>`+"\n",
				strings.Join(pts, " "))
		}
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
