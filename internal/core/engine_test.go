package core

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
)

var ctx = context.Background()

// tinyEngine indexes the tiny synthetic kernel once per test binary.
func tinyEngine(t *testing.T) *Engine {
	t.Helper()
	w := kernelgen.Generate(kernelgen.Tiny())
	e, errs, err := Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range errs {
		t.Fatalf("extract error: %v", x)
	}
	return e
}

func TestSearchByNameAndType(t *testing.T) {
	e := tinyEngine(t)
	syms, err := e.Search(ctx, SearchOptions{Pattern: "packet_command", Types: []model.NodeType{model.NodeStruct}})
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) != 1 || syms[0].Type != model.NodeStruct {
		t.Fatalf("search = %+v", syms)
	}
	if syms[0].File != "drivers/scsi/sr.h" {
		t.Fatalf("definition file = %q", syms[0].File)
	}
	if syms[0].Line == 0 {
		t.Fatal("definition line missing")
	}
}

func TestSearchWildcardAndLimit(t *testing.T) {
	e := tinyEngine(t)
	all, err := e.Search(ctx, SearchOptions{Pattern: "sr_*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Fatalf("wildcard hits = %d", len(all))
	}
	limited, err := e.Search(ctx, SearchOptions{Pattern: "sr_*", Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 1 {
		t.Fatalf("limit ignored: %d", len(limited))
	}
}

func TestSearchModuleConstraintFigure3(t *testing.T) {
	e := tinyEngine(t)
	inModule, err := e.Search(ctx, SearchOptions{
		Pattern: "id",
		Types:   []model.NodeType{model.NodeField},
		Module:  "wakeup.elf",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(inModule) != 2 { // wakeup_source.id + wakeup_event.id
		t.Fatalf("module-constrained = %d, want 2: %+v", len(inModule), inModule)
	}
	everywhere, err := e.Search(ctx, SearchOptions{Pattern: "id", Types: []model.NodeType{model.NodeField}})
	if err != nil {
		t.Fatal(err)
	}
	if len(everywhere) <= len(inModule) {
		t.Fatalf("constraint had no effect: %d vs %d", len(everywhere), len(inModule))
	}
}

func TestSearchDirConstraint(t *testing.T) {
	e := tinyEngine(t)
	syms, err := e.Search(ctx, SearchOptions{Pattern: "*", Dir: "drivers/scsi", Label: model.LabelSymbol})
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) == 0 {
		t.Fatal("no symbols under drivers/scsi")
	}
	for _, s := range syms {
		if !strings.HasPrefix(s.File, "drivers/scsi/") {
			t.Fatalf("leaked symbol %+v", s)
		}
	}
}

func TestGoToDefinition(t *testing.T) {
	e := tinyEngine(t)
	// Find the call to get_sectorsize at sr.c:236 and jump to its
	// definition.
	// Column: "\tret += get_sectorsize(dev);" — name starts at col 9.
	sym, ok, err := e.GoToDefinition(ctx, "get_sectorsize", "drivers/scsi/sr.c", 236, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("definition not found")
	}
	if sym.Type != model.NodeFunction || sym.ShortName != "get_sectorsize" {
		t.Fatalf("sym = %+v", sym)
	}
	if sym.File != "drivers/scsi/sr.c" {
		t.Fatalf("def file = %q", sym.File)
	}
	// A miss returns ok=false, not an error.
	_, ok, err = e.GoToDefinition(ctx, "get_sectorsize", "drivers/scsi/sr.c", 1, 1)
	if err != nil || ok {
		t.Fatalf("miss = %v, %v", ok, err)
	}
}

func TestGoToDefinitionResolvesDeclToDef(t *testing.T) {
	e := tinyEngine(t)
	// printk is declared in kernel.h and defined in kernel/printk.c; a
	// reference's NAME position should resolve to the definition. Find a
	// real reference position first.
	id, err := e.MustLookupOne("printk", model.NodeFunction)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := e.FindReferences(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("printk unreferenced?")
	}
	if refs[0].File == "" || refs[0].Line == 0 {
		t.Fatalf("reference location empty: %+v", refs[0])
	}
}

func TestFindReferences(t *testing.T) {
	e := tinyEngine(t)
	id, err := e.MustLookupOne("get_sectorsize", model.NodeFunction)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := e.FindReferences(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 {
		t.Fatalf("refs = %+v", refs)
	}
	r := refs[0]
	if r.Kind != model.EdgeCalls || r.From.ShortName != "sr_media_change" || r.Line != 236 {
		t.Fatalf("ref = %+v", r)
	}
}

func TestSlices(t *testing.T) {
	e := tinyEngine(t)
	pci, err := e.MustLookupOne("pci_read_bases", model.NodeFunction)
	if err != nil {
		t.Fatal(err)
	}
	back := e.BackwardSlice(pci, 0)
	if len(back) < 36 {
		t.Fatalf("backward slice = %d", len(back))
	}
	printk, err := e.MustLookupOne("printk", model.NodeFunction)
	if err != nil {
		t.Fatal(err)
	}
	fwd := e.ForwardSlice(printk, 0)
	if len(fwd) < 10 {
		t.Fatalf("forward slice of printk = %d", len(fwd))
	}
	// Depth-limited slice is a subset.
	lim := e.BackwardSlice(pci, 1)
	if len(lim) >= len(back) {
		t.Fatalf("depth limit had no effect: %d vs %d", len(lim), len(back))
	}
}

func TestMacroImpact(t *testing.T) {
	e := tinyEngine(t)
	null, err := e.MustLookupOne("NULL", model.NodeMacro)
	if err != nil {
		t.Fatal(err)
	}
	impact := e.MacroImpact(null)
	if len(impact) < 5 {
		t.Fatalf("NULL impact = %d", len(impact))
	}
}

func TestIncludeImpact(t *testing.T) {
	e := tinyEngine(t)
	ids, err := e.LookupNamed("types.h", model.NodeFile)
	if err != nil || len(ids) != 1 {
		t.Fatalf("types.h lookup: %v %v", ids, err)
	}
	impact := e.IncludeImpact(ids[0])
	if len(impact) < 4 {
		t.Fatalf("types.h include impact = %d", len(impact))
	}
}

func TestCallPath(t *testing.T) {
	e := tinyEngine(t)
	from, err := e.MustLookupOne("sr_media_change", model.NodeFunction)
	if err != nil {
		t.Fatal(err)
	}
	to, err := e.MustLookupOne("write_cmd", model.NodeFunction)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := e.CallPath(from, to)
	if !ok || p.Len() < 2 {
		t.Fatalf("path = %+v ok=%v", p, ok)
	}
	if p.Start != from || p.End() != to {
		t.Fatalf("path endpoints wrong")
	}
}

func TestSaveOpenParity(t *testing.T) {
	e := tinyEngine(t)
	dir := filepath.Join(t.TempDir(), "db")
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	disk, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	// Same stats.
	if e.Stats() != disk.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", e.Stats(), disk.Stats())
	}
	// Same search results.
	a, err := e.Search(ctx, SearchOptions{Pattern: "id", Types: []model.NodeType{model.NodeField}, Module: "wakeup.elf"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := disk.Search(ctx, SearchOptions{Pattern: "id", Types: []model.NodeType{model.NodeField}, Module: "wakeup.elf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("search parity: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].File != b[i].File {
			t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Cold run agrees too.
	disk.DropCaches()
	c, err := disk.Search(ctx, SearchOptions{Pattern: "id", Types: []model.NodeType{model.NodeField}, Module: "wakeup.elf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != len(a) {
		t.Fatalf("cold parity: %d vs %d", len(c), len(a))
	}
	// Save on a disk-backed engine is refused.
	if err := disk.Save(t.TempDir()); err == nil {
		t.Fatal("Save on disk-backed engine should fail")
	}
}

func TestQueryThroughEngine(t *testing.T) {
	e := tinyEngine(t)
	res, err := e.Query(ctx, `MATCH (n:module) RETURN n.short_name ORDER BY n.short_name`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() < 3 {
		t.Fatalf("modules = %d", res.Count())
	}
}

func TestSearchErrors(t *testing.T) {
	e := tinyEngine(t)
	if _, err := e.Search(ctx, SearchOptions{}); err == nil {
		t.Fatal("empty pattern should fail")
	}
	if _, err := e.Search(ctx, SearchOptions{Pattern: "x", Dir: "no/such/dir"}); err == nil {
		t.Fatal("unknown dir should fail")
	}
	if _, _, err := e.GoToDefinition(ctx, "x", "no/such/file.c", 1, 1); err == nil {
		t.Fatal("unknown file should fail")
	}
	if _, err := e.MustLookupOne("definitely_not_there", model.NodeFunction); err == nil {
		t.Fatal("missing symbol should fail")
	}
	if _, err := e.MustLookupOne("id", model.NodeField); err == nil {
		t.Fatal("ambiguous symbol should fail")
	}
}

func TestSymbolMaterialisation(t *testing.T) {
	e := tinyEngine(t)
	id, err := e.MustLookupOne("sr_media_change", model.NodeFunction)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Symbol(id)
	if s.LongName != "sr_media_change(int)" {
		t.Fatalf("LONG_NAME = %q", s.LongName)
	}
	out := FormatSymbol(s)
	if !strings.Contains(out, "sr_media_change(int)") || !strings.Contains(out, "drivers/scsi/sr.c:") {
		t.Fatalf("FormatSymbol = %q", out)
	}
}

func TestFileMapsAndIDs(t *testing.T) {
	e := tinyEngine(t)
	src := e.Source()
	var found bool
	n := src.NodeCount()
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		if src.NodeType(id) != model.NodeFile {
			continue
		}
		fid, ok := src.NodeProp(id, "FILE_ID")
		if !ok {
			t.Fatalf("file node %d missing FILE_ID", id)
		}
		got, ok := e.FileNodeByID(fid.AsInt())
		if !ok || got != id {
			t.Fatalf("FileNodeByID(%d) = %d, %v", fid.AsInt(), got, ok)
		}
		found = true
	}
	if !found {
		t.Fatal("no file nodes")
	}
}
