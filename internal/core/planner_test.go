package core

import (
	"strings"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/model"
	"frappe/internal/qcache"
)

// skewed builds a function→global contains graph with nFunc functions
// each containing every one of nGlob globals, so whichever side has the
// smaller label count is the cheaper anchor.
func skewed(nFunc, nGlob int) *graph.Graph {
	g := graph.New()
	globals := make([]graph.NodeID, nGlob)
	for i := range globals {
		globals[i] = g.AddNode(model.NodeGlobal, nil)
	}
	for i := 0; i < nFunc; i++ {
		f := g.AddNode(model.NodeFunction, nil)
		for _, v := range globals {
			g.AddEdge(f, v, model.EdgeContains, nil)
		}
	}
	return g
}

// TestSwapInvalidatesCompiledPlans is the regression test for the
// compiled-plan staleness bug: a snapshot swap regenerates the graph
// statistics, and the plan cache must stop serving plans whose cost
// decisions were made against the retired graph. The two graphs invert
// the label skew, so a correctly replanned query flips its anchor.
func TestSwapInvalidatesCompiledPlans(t *testing.T) {
	const text = `MATCH (f:function) -[:contains]-> (v:global) RETURN distinct f`

	e := FromGraph(skewed(200, 3))
	e.SetQueryCache(qcache.New(qcache.Config{}))

	gen1 := e.GraphStats().Generation
	explain1, err := e.ExplainQuery(text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain1, "anchor (v:global) at position 1") {
		t.Fatalf("skew A should anchor at the 3-node global side:\n%s", explain1)
	}
	// A repeat at the same generation is a compiled-plan cache hit.
	if _, err := e.ExplainQuery(text); err != nil {
		t.Fatal(err)
	}
	if st := e.QueryCacheStats(); st.CompiledHits != 1 {
		t.Fatalf("compiled hits = %d, want 1\n%+v", st.CompiledHits, st)
	}

	e.Swap(skewed(3, 200), 2, nil)

	gen2 := e.GraphStats().Generation
	if gen2 == gen1 {
		t.Fatalf("statistics generation did not advance across swap (%d)", gen2)
	}
	explain2, err := e.ExplainQuery(text)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(explain2, "anchor (v:global)") {
		t.Fatalf("stale plan served after swap — skew B anchors at the 3-node function side:\n%s", explain2)
	}
	if !strings.Contains(explain2, "stats generation") || explain1 == explain2 {
		t.Fatalf("plan not rebuilt against new statistics:\nbefore:\n%s\nafter:\n%s", explain1, explain2)
	}
	// And the rebuilt plan is itself cached at the new generation.
	if _, err := e.ExplainQuery(text); err != nil {
		t.Fatal(err)
	}
	if st := e.QueryCacheStats(); st.CompiledHits != 2 || st.CompiledMisses != 2 {
		t.Fatalf("compiled hits/misses = %d/%d, want 2/2\n%+v", st.CompiledHits, st.CompiledMisses, st)
	}
}

// TestPlannedQueryThroughEngine pins that the engine's cached query
// path executes through the planner: a Figure-6-class unbounded closure
// that would blow a naive step budget completes under it.
func TestPlannedQueryThroughEngine(t *testing.T) {
	// A 12-diamond chain has 2^12 enumerable paths but only 49 nodes.
	g := graph.New()
	cur := g.AddNode(model.NodeFunction, graph.P(model.PropShortName, "root"))
	for i := 0; i < 12; i++ {
		a := g.AddNode(model.NodeFunction, nil)
		b := g.AddNode(model.NodeFunction, nil)
		join := g.AddNode(model.NodeFunction, nil)
		g.AddEdge(cur, a, model.EdgeCalls, nil)
		g.AddEdge(cur, b, model.EdgeCalls, nil)
		g.AddEdge(a, join, model.EdgeCalls, nil)
		g.AddEdge(b, join, model.EdgeCalls, nil)
		cur = join
	}
	e := FromGraph(g)
	e.SetQueryCache(qcache.New(qcache.Config{}))
	e.QueryLimits.MaxSteps = 1000 // far under the 2^12 path count

	res, err := e.Query(ctx, `START n=node:node_auto_index('short_name: root') MATCH n -[:calls*]-> m RETURN count(distinct m)`)
	if err != nil {
		t.Fatalf("planned closure under tight budget: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Scalar.AsInt() != 36 {
		t.Fatalf("unexpected result: %+v", res.Rows)
	}
}
