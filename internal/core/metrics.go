package core

import (
	"frappe/internal/obs"
	"frappe/internal/store"
)

// Engine metrics. Swap/update events are rare (one per applied update),
// so these are instrumented directly; the page cache's per-file counters
// are already atomics inside the store and are sampled at scrape time by
// MetricsCollector instead of being double-counted on every page fault.
var (
	mSwaps = obs.Default.Counter("frappe_core_snapshot_swaps_total",
		"Snapshot swaps published by live updates.", nil)
	mEpochGauge = obs.Default.Gauge("frappe_core_epoch",
		"Update generation of the live snapshot.", nil)
	mUpdateDuration = obs.Default.Histogram("frappe_core_update_duration_ms",
		"Wall time of UpdateWith calls (plan through swap) in milliseconds.", nil, nil)
	mUpdatesApplied = obs.Default.Counter("frappe_core_updates_total",
		"UpdateWith outcomes by result.", obs.Labels{"result": "applied"})
	mUpdatesNoop = obs.Default.Counter("frappe_core_updates_total",
		"UpdateWith outcomes by result.", obs.Labels{"result": "noop"})
	mUpdatesFailed = obs.Default.Counter("frappe_core_updates_total",
		"UpdateWith outcomes by result.", obs.Labels{"result": "error"})
)

// CacheStats returns the page-cache counters of a disk-backed engine,
// keyed by store file ("nodes", "relationships", ...); nil when the
// engine is in-memory. The snapshot is torn-read-free per counter but
// not across files.
func (e *Engine) CacheStats() map[string]store.CacheStats {
	if s := e.Snapshot(); s.db != nil {
		return s.db.Stats()
	}
	return nil
}

// MetricsCollector returns a scrape-time sampler exposing this engine's
// page-cache counters as frappe_store_page_cache_* series labelled by
// store file. Pass it to Registry.Gather as an extra so each server
// scrapes its own engine rather than registering process-global state.
func (e *Engine) MetricsCollector() obs.Collector {
	return func(emit func(obs.Sample)) {
		for file, cs := range e.CacheStats() {
			ls := obs.Labels{"file": file}
			emit(obs.Sample{Name: "frappe_store_page_cache_hits_total",
				Help: "Page-cache hits by store file.", Kind: obs.KindCounter, Labels: ls, Value: float64(cs.Hits)})
			emit(obs.Sample{Name: "frappe_store_page_cache_misses_total",
				Help: "Page-cache misses (page faults) by store file.", Kind: obs.KindCounter, Labels: ls, Value: float64(cs.Misses)})
			emit(obs.Sample{Name: "frappe_store_page_cache_evictions_total",
				Help: "Page-cache evictions by store file.", Kind: obs.KindCounter, Labels: ls, Value: float64(cs.Evictions)})
			emit(obs.Sample{Name: "frappe_store_page_cache_checksum_failures_total",
				Help: "CRC failures detected on page faults by store file.", Kind: obs.KindCounter, Labels: ls, Value: float64(cs.ChecksumFailures)})
			emit(obs.Sample{Name: "frappe_store_quarantined_pages",
				Help: "Pages currently quarantined after corruption-class read failures, by store file.", Kind: obs.KindGauge, Labels: ls, Value: float64(cs.Quarantined)})
		}
	}
}
