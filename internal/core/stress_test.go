package core

import (
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"frappe/internal/extract"
	"frappe/internal/graph"
	"frappe/internal/kernelgen"
)

// TestDiskEngineConcurrentStress is the end-to-end locking acceptance
// test: a disk-backed engine serves warm reads from many goroutines
// through the sharded page cache while another goroutine drops caches
// and a writer performs an UpdateWith snapshot swap mid-flight. Every
// reader pins one snapshot per iteration and must see a coherent graph.
// Run with -race.
func TestDiskEngineConcurrentStress(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	mem, errs, err := Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range errs {
		t.Fatalf("extract error: %v", x)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := mem.Save(dir); err != nil {
		t.Fatal(err)
	}
	disk, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	// The replacement graph the swap installs: structurally different,
	// so a reader mixing snapshots would trip on the node count.
	cfg := kernelgen.Tiny()
	cfg.Subsystems++
	w2 := kernelgen.Generate(cfg)
	res2, err := extract.Run(w2.Build, w2.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var swapped atomic.Bool
	start := make(chan struct{})
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			<-start
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				snap := disk.Snapshot()
				src := snap.Source()
				n := src.NodeCount()
				if n == 0 {
					t.Error("snapshot with empty graph")
					return
				}
				id := graph.NodeID(rng.Intn(int(n)))
				src.NodeProps(id)
				for _, e := range src.Out(id) {
					src.EdgeProps(e)
				}
				src.In(id)
				// Symbols go through the snapshot's cached lookup path.
				disk.Symbol(id)
				if i%40 == 0 {
					disk.DropCaches()
				}
			}
		}(int64(r))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		ok, err := disk.UpdateWith(func(old graph.Source) (*graph.Graph, int64, *UpdateSummary, error) {
			return res2.Graph, disk.Epoch() + 1, &UpdateSummary{Epoch: disk.Epoch() + 1}, nil
		})
		if err != nil || !ok {
			t.Errorf("UpdateWith: swapped=%v err=%v", ok, err)
			return
		}
		swapped.Store(true)
	}()
	close(start)
	wg.Wait()

	if !swapped.Load() {
		t.Fatal("swap never happened")
	}
	if got, want := disk.Source().NodeCount(), res2.Graph.NodeCount(); got != want {
		t.Fatalf("post-swap node count %d, want %d", got, want)
	}
}
