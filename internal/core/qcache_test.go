package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/qcache"
	"frappe/internal/query"
)

const countQuery = `START n=node(*) RETURN count(*)`

func cachedEngine(t testing.TB) (*Engine, *graph.Graph, *graph.Graph) {
	t.Helper()
	eng, resA, resB := twoGraphs(t)
	eng.SetQueryCache(qcache.New(qcache.Config{}))
	return eng, resA.Graph, resB.Graph
}

// TestQueryCacheSwapInvalidation: a cached result must not survive an
// UpdateWith snapshot swap — the same query afterwards answers for the
// new graph.
func TestQueryCacheSwapInvalidation(t *testing.T) {
	eng, gA, gB := cachedEngine(t)
	defer eng.Close()

	countOf := func() string {
		res, err := eng.Query(ctx, countQuery)
		if err != nil {
			t.Fatal(err)
		}
		return res.Format(eng.Source())
	}
	before := countOf()
	if got := countOf(); got != before {
		t.Fatalf("repeat query disagrees: %q vs %q", got, before)
	}
	if st := eng.QueryCacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("warm-up stats: %+v", st)
	}

	swapped, err := eng.UpdateWith(func(old graph.Source) (*graph.Graph, int64, *UpdateSummary, error) {
		return gB, 1, &UpdateSummary{Epoch: 1}, nil
	})
	if err != nil || !swapped {
		t.Fatalf("UpdateWith: swapped=%v err=%v", swapped, err)
	}
	after := countOf()
	if after == before {
		t.Fatalf("post-swap query served pre-swap rows: %q", after)
	}
	if st := eng.QueryCacheStats(); st.Invalidations == 0 {
		t.Fatalf("swap did not invalidate the result cache: %+v", st)
	}

	// Epoch reuse: swapping back to graph A under the SAME epoch must
	// still flush — the epoch in the key alone would not catch this.
	eng.Swap(gA, 1, &UpdateSummary{Epoch: 1})
	if got := countOf(); got != before {
		t.Fatalf("same-epoch swap served stale rows: %q, want %q", got, before)
	}
}

// TestQueryCacheLimitsKey is the limits-poisoning regression: a success
// cached under loose limits must not mask the budget error the same
// query produces under tight limits.
func TestQueryCacheLimitsKey(t *testing.T) {
	eng, _, _ := cachedEngine(t)
	defer eng.Close()

	q := `START n=node(*) RETURN n`
	if _, err := eng.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	eng.QueryLimits = query.Limits{MaxRows: 1}
	if _, err := eng.Query(ctx, q); !errors.Is(err, query.ErrBudgetExceeded) {
		t.Fatalf("tight-limit rerun err = %v, want ErrBudgetExceeded (cached loose result must not apply)", err)
	}
	// And the error must not have displaced the loose entry.
	eng.QueryLimits = query.Limits{}
	res, out, err := eng.CachedQuery(ctx, eng.Snapshot(), q, false)
	if err != nil || !out.Hit {
		t.Fatalf("loose rerun: out=%+v err=%v", out, err)
	}
	if res.Count() <= 1 {
		t.Fatalf("loose rerun rows = %d", res.Count())
	}
}

// TestQueryCacheSingleflightStress: N concurrent identical queries on a
// cold cache execute exactly once. Run under -race in CI.
func TestQueryCacheSingleflightStress(t *testing.T) {
	eng, _, _ := cachedEngine(t)
	defer eng.Close()

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Query(ctx, countQuery); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := eng.QueryCacheStats()
	if st.Misses != 1 {
		t.Fatalf("%d concurrent identical queries executed %d times, want 1", n, st.Misses)
	}
	if st.Hits+st.Shared != n-1 {
		t.Fatalf("hits=%d shared=%d, want %d combined", st.Hits, st.Shared, n-1)
	}
}

// TestQueryCacheEquivalence: across the paper's Figure 3–6 query
// families, the bypassed execution, the caching execution, and the
// cached replay must produce byte-identical formatted tables.
func TestQueryCacheEquivalence(t *testing.T) {
	eng := tinyEngine(t)
	defer eng.Close()
	eng.SetQueryCache(qcache.New(qcache.Config{}))

	fid, ok := eng.FileIDOf("drivers/scsi/sr.c")
	if !ok {
		t.Fatal("sr.c has no FILE_ID")
	}
	cases := []struct {
		name, text string
	}{
		{"fig3-build-scope", `
START m=node:node_auto_index('short_name: wakeup.elf')
MATCH m -[:compiled_from|linked_from*]-> f
WITH distinct f
MATCH f -[:file_contains]-> (n:field{short_name: 'id'})
RETURN distinct n`},
		{"fig4-xref", fmt.Sprintf(`
START n=node:node_auto_index('short_name: get_sectorsize')
WHERE (n) <-[{NAME_FILE_ID: %d, NAME_START_LINE: 236, NAME_START_COL: 9}]- ()
RETURN n`, fid)},
		{"fig5-interplay", `
START from=node:node_auto_index('short_name: sr_media_change'),
      to=node:node_auto_index('short_name: get_sectorsize'),
      b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line`},
		{"fig6-comprehension", `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*..5]-> m
RETURN distinct m`},
		{"aggregate", countQuery},
	}
	snap := eng.Snapshot()
	src := snap.Source()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			direct, out, err := eng.CachedQuery(ctx, snap, tc.text, true)
			if err != nil {
				t.Fatal(err)
			}
			if out.Hit || out.Shared {
				t.Fatalf("bypass reported cache outcome %+v", out)
			}
			cold, out, err := eng.CachedQuery(ctx, snap, tc.text, false)
			if err != nil {
				t.Fatal(err)
			}
			if out.Hit {
				t.Fatal("first caching run reported a hit")
			}
			warm, out, err := eng.CachedQuery(ctx, snap, tc.text, false)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Hit {
				t.Fatal("second caching run missed")
			}
			want := direct.Format(src)
			if got := cold.Format(src); got != want {
				t.Fatalf("cold cached run differs from bypass:\n%s\nvs\n%s", got, want)
			}
			if got := warm.Format(src); got != want {
				t.Fatalf("warm cached run differs from bypass:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

// TestQueryCacheDisabled: an engine without a cache behaves exactly as
// before — Query works, stats are absent.
func TestQueryCacheDisabled(t *testing.T) {
	eng, _, _ := twoGraphs(t)
	defer eng.Close()
	if st := eng.QueryCacheStats(); st != nil {
		t.Fatalf("no-cache engine reports stats: %+v", st)
	}
	if _, err := eng.Query(ctx, countQuery); err != nil {
		t.Fatal(err)
	}
	if got := eng.QueryCacheHits(eng.Snapshot(), countQuery); got != 0 {
		t.Fatalf("no-cache EntryHits = %d", got)
	}
}
