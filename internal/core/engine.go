// Package core is Frappé itself: the engine tying together the
// extractor, the graph repository (in-memory or disk-backed with a page
// cache), the Cypher query processor and the embedded traversal API, and
// exposing the paper's §4 use cases as first-class operations — code
// search, cross-referencing (go-to-definition / find-references),
// debugging path queries, and code comprehension (program slices over
// the call graph, change impact, shortest paths).
//
// The engine serves a codebase that changes while it runs: the live
// graph is one immutable Snapshot behind an atomic pointer. Queries
// pin a snapshot for their whole execution; an incremental update
// builds the next snapshot off to the side and publishes it with a
// single pointer swap, so in-flight queries finish on the state they
// started with and never observe a half-applied update.
package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"frappe/internal/atomicfile"
	"frappe/internal/cpp"
	"frappe/internal/extract"
	"frappe/internal/graph"
	"frappe/internal/gstats"
	"frappe/internal/model"
	"frappe/internal/obs/trace"
	"frappe/internal/plan"
	"frappe/internal/qcache"
	"frappe/internal/query"
	"frappe/internal/store"
	"frappe/internal/traversal"
)

// UpdateSummary records the last applied incremental update, surfaced
// by /api/stats and /readyz.
type UpdateSummary struct {
	Epoch            int64   `json:"epoch"`
	Time             string  `json:"time,omitempty"`
	FilesAdded       int     `json:"filesAdded"`
	FilesModified    int     `json:"filesModified"`
	FilesRemoved     int     `json:"filesRemoved"`
	UnitsReextracted int     `json:"unitsReextracted"`
	NodesAdded       int     `json:"nodesAdded"`
	NodesRemoved     int     `json:"nodesRemoved"`
	EdgesAdded       int     `json:"edgesAdded"`
	EdgesRemoved     int     `json:"edgesRemoved"`
	WallMillis       float64 `json:"wallMillis"`
}

// Snapshot is one immutable published state of the graph: the source,
// its file maps, the epoch it represents, and a lazily computed metrics
// cache. All read operations live here so that a caller holding a
// snapshot sees exactly one graph state no matter how many calls it
// makes; Engine's methods are conveniences that pin the current
// snapshot per call.
type Snapshot struct {
	src graph.Source
	g   *graph.Graph // non-nil when in-memory
	db  *store.DB    // non-nil when disk-backed

	fileIDByPath map[string]int64
	fileNodeByID map[int64]graph.NodeID

	epoch int64
	last  *UpdateSummary

	stats *statsCache
	gs    *gstatsCache
}

// statsCache computes graph metrics at most once per snapshot.
type statsCache struct {
	once sync.Once
	m    graph.Metrics
}

// gstatsCache computes (or adopts preloaded) planner statistics at most
// once per snapshot. st may be pre-seeded from the store directory's
// gstats.json, in which case the once body keeps it.
type gstatsCache struct {
	once sync.Once
	st   *gstats.Stats
}

func newSnapshot(src graph.Source, g *graph.Graph, db *store.DB) *Snapshot {
	s := &Snapshot{src: src, g: g, db: db, stats: &statsCache{}, gs: &gstatsCache{}}
	s.buildFileMaps()
	return s
}

// Engine is an opened Frappé database. It wraps either a freshly
// extracted in-memory graph or a disk-backed store, published as an
// atomically swappable Snapshot.
type Engine struct {
	snap atomic.Pointer[Snapshot]

	// QueryLimits bounds every Query call (zero fields = unlimited).
	// Long-lived servers set row/step budgets so one runaway expansion
	// fails fast with query.ErrBudgetExceeded instead of eating memory.
	// Set at startup, before the engine serves concurrent traffic.
	QueryLimits query.Limits

	// qc, when non-nil, caches parsed plans and finished result tables
	// and coalesces concurrent identical queries (singleflight). Set via
	// SetQueryCache at startup, before the engine serves concurrent
	// traffic; every snapshot swap invalidates the result side.
	qc *qcache.Cache

	// updateMu serialises update application (plan → extract → persist →
	// swap); queries never take it.
	updateMu sync.Mutex

	// retired holds disk-backed stores replaced by a swap. They stay
	// open until Close because queries may still hold their snapshot.
	mu      sync.Mutex
	retired []*store.DB
}

func newEngine(s *Snapshot) *Engine {
	e := &Engine{}
	e.snap.Store(s)
	return e
}

// Options tune an engine beyond the defaults: extraction parallelism
// for engines built by indexing, and page-cache geometry for engines
// opened over a store directory.
type Options struct {
	// Jobs bounds frontend parallelism when the engine extracts (see
	// extract.Options.Jobs: 0/1 serial, n>1 workers, negative = one per
	// CPU). Non-zero values override extract.Options.Jobs.
	Jobs int
	// Store tunes the page cache (PageSize, CachePages, CacheShards) of
	// disk-backed engines.
	Store store.Options
}

// Index runs the extractor over a build and returns an in-memory engine.
func Index(build extract.Build, opts extract.Options) (*Engine, []error, error) {
	return IndexOptions(build, opts, Options{})
}

// IndexOptions is Index with engine options; opt.Jobs, when non-zero,
// sets the extraction fan-out.
func IndexOptions(build extract.Build, opts extract.Options, opt Options) (*Engine, []error, error) {
	if opt.Jobs != 0 {
		opts.Jobs = opt.Jobs
	}
	res, err := extract.Run(build, opts)
	if err != nil {
		return nil, nil, err
	}
	e := fromGraph(res.Graph)
	return e, res.Errors, nil
}

// FromGraph wraps an existing extracted graph.
func FromGraph(g *graph.Graph) *Engine { return fromGraph(g) }

func fromGraph(g *graph.Graph) *Engine {
	return newEngine(newSnapshot(g, g, nil))
}

// FromSource wraps an arbitrary graph.Source — notably a sharded
// composite — as an engine. Unlike newSnapshot's file-map scan, this
// one tolerates corruption panics on individual nodes, so a composite
// with a quarantined shard still opens and serves the healthy part;
// unreadable file nodes simply stay out of the path/FILE_ID maps.
func FromSource(src graph.Source) *Engine {
	return newEngine(newTolerantSnapshot(src))
}

// SwapSource publishes src as the live snapshot at the given epoch —
// the source-level analogue of Swap, used by the shard coordinator when
// an update replaces the entire shard set. The retired source's
// lifetime is the caller's problem (shard sets are closed by the
// coordinator once superseded).
func (e *Engine) SwapSource(src graph.Source, epoch int64, last *UpdateSummary) {
	next := newTolerantSnapshot(src)
	next.epoch = epoch
	next.last = last
	e.snap.Store(next)
	mSwaps.Inc()
	mEpochGauge.Set(epoch)
	if e.qc != nil {
		e.qc.Invalidate()
	}
}

// SeedGraphStats pre-seeds the live snapshot's planner statistics (e.g.
// from a persisted gstats.json), saving the full-graph collection pass.
// Call before the engine serves traffic; a no-op once stats have been
// computed.
func (e *Engine) SeedGraphStats(st *gstats.Stats) {
	if st != nil {
		e.Snapshot().gs.st = st
	}
}

func newTolerantSnapshot(src graph.Source) *Snapshot {
	s := &Snapshot{src: src, stats: &statsCache{}, gs: &gstatsCache{}}
	s.fileIDByPath = map[string]int64{}
	s.fileNodeByID = map[int64]graph.NodeID{}
	n := src.NodeCount()
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		s.scanFileNode(id)
	}
	return s
}

// scanFileNode indexes one node into the file maps, swallowing
// corruption-class panics so a degraded source's bad pages cost only
// their own entries.
func (e *Snapshot) scanFileNode(id graph.NodeID) {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && (errors.Is(err, store.ErrCorrupt) || errors.Is(err, store.ErrTruncated)) {
				return
			}
			panic(r)
		}
	}()
	if e.src.NodeType(id) != model.NodeFile {
		return
	}
	p, _ := e.src.NodeProp(id, model.PropName)
	fid, ok := e.src.NodeProp(id, "FILE_ID")
	if !ok {
		return
	}
	e.fileIDByPath[p.AsString()] = fid.AsInt()
	e.fileNodeByID[fid.AsInt()] = id
}

// Open opens a previously saved Frappé store directory. The store
// signals corruption by panicking with a wrapped error (graph.Source has
// no error returns); the file-map scan touches every node, so convert
// such panics into ordinary errors here rather than crashing the caller.
func Open(dir string) (*Engine, error) { return OpenOptions(dir, Options{}) }

// OpenOptions is Open with explicit page-cache settings (opt.Store).
// Before touching any store file it runs startup recovery: a commit left
// unfinished by a crashed process is rolled forward (post-update state)
// or discarded (pre-update state), and files a roll-forward renamed into
// place are re-verified against their checksums so page caches never
// warm up from bad bytes.
func OpenOptions(dir string, opt Options) (eng *Engine, err error) {
	rec, err := atomicfile.Recover(dir)
	if err != nil {
		return nil, fmt.Errorf("core: recovering %s: %w", dir, err)
	}
	if rec.Repaired() {
		log.Printf("core: startup recovery in %s: %s", dir, rec)
		if verrs := store.VerifyFiles(dir, rec.RenamedFiles); len(verrs) > 0 {
			return nil, fmt.Errorf("core: %s failed verification after roll-forward: %w", dir, verrs[0])
		}
	}
	db, err := store.OpenOptions(dir, opt.Store)
	if err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			db.Close()
			e, ok := r.(error)
			if !ok {
				panic(r)
			}
			eng, err = nil, fmt.Errorf("core: opening %s: %w", dir, e)
		}
	}()
	snap := newSnapshot(db, nil, db)
	// Planner statistics persisted alongside the store (gstats.json) are
	// adopted as-is, saving the full-graph collection pass on startup.
	// Absence or corruption is not an error: the first query that needs
	// them collects from the live graph instead.
	if st, ok, err := gstats.Load(dir); err == nil && ok {
		snap.gs.st = st
	}
	return newEngine(snap), nil
}

// Snapshot pins the engine's current state. Callers making several
// dependent reads (a server request, a report) should grab one snapshot
// and issue every read through it, so a concurrent update cannot change
// the graph out from under them mid-request.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// SetEpoch stamps the live snapshot with an epoch and last-update
// summary (used at startup, when an opened store carries update
// history). Call before the engine serves concurrent traffic.
func (e *Engine) SetEpoch(epoch int64, last *UpdateSummary) {
	old := e.snap.Load()
	next := &Snapshot{
		src:          old.src,
		g:            old.g,
		db:           old.db,
		fileIDByPath: old.fileIDByPath,
		fileNodeByID: old.fileNodeByID,
		epoch:        epoch,
		last:         last,
		stats:        old.stats,
		gs:           old.gs,
	}
	e.snap.Store(next)
	mEpochGauge.Set(epoch)
	if e.qc != nil {
		e.qc.Invalidate()
	}
}

// Swap publishes g as the live snapshot at the given epoch. In-flight
// queries holding the previous snapshot finish on it; new reads see g.
// The previous snapshot's disk store (if any) is retired, not closed —
// it may still back pinned snapshots until Close.
func (e *Engine) Swap(g *graph.Graph, epoch int64, last *UpdateSummary) {
	next := newSnapshot(g, g, nil)
	next.epoch = epoch
	next.last = last
	old := e.snap.Swap(next)
	mSwaps.Inc()
	mEpochGauge.Set(epoch)
	// Drop every cached result: entries are epoch-keyed, but wholesale
	// invalidation also protects against epoch reuse and caps the memory
	// held for a graph nobody can query any more.
	if e.qc != nil {
		e.qc.Invalidate()
	}
	if old != nil && old.db != nil {
		e.mu.Lock()
		e.retired = append(e.retired, old.db)
		e.mu.Unlock()
	}
}

// UpdateWith applies one update under the engine's update lock. fn
// receives the live graph and returns the replacement graph, its epoch,
// and a summary; fn must persist everything it needs (store files,
// session state, journal) before returning, so nothing unpersisted is
// ever published. A nil returned graph means no-op: nothing is swapped
// and the epoch does not advance. Reports whether a swap happened.
func (e *Engine) UpdateWith(fn func(old graph.Source) (*graph.Graph, int64, *UpdateSummary, error)) (bool, error) {
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	start := time.Now()
	g, epoch, last, err := fn(e.Snapshot().Source())
	mUpdateDuration.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if err != nil {
		mUpdatesFailed.Inc()
		return false, err
	}
	if g == nil {
		mUpdatesNoop.Inc()
		return false, nil
	}
	e.Swap(g, epoch, last)
	mUpdatesApplied.Inc()
	return true, nil
}

// Save persists an in-memory engine to dir (Neo4j-style store files).
func (e *Engine) Save(dir string) error {
	s := e.Snapshot()
	if s.g == nil {
		return fmt.Errorf("core: engine is disk-backed; nothing to save")
	}
	return store.Write(dir, s.g)
}

// Close releases resources for disk-backed engines, including stores
// retired by snapshot swaps.
func (e *Engine) Close() error {
	var first error
	e.mu.Lock()
	retired := e.retired
	e.retired = nil
	e.mu.Unlock()
	for _, db := range retired {
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s := e.Snapshot(); s.db != nil {
		if err := s.db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Source exposes the current snapshot's graph for traversal and query
// use. Prefer Snapshot when making multiple dependent reads.
func (e *Engine) Source() graph.Source { return e.Snapshot().Source() }

// Source exposes the snapshot's graph.
func (e *Snapshot) Source() graph.Source { return e.src }

// Graph returns the snapshot's in-memory graph (nil when disk-backed).
func (e *Snapshot) Graph() *graph.Graph { return e.g }

// Epoch reports which update generation this snapshot represents.
func (e *Snapshot) Epoch() int64 { return e.epoch }

// LastUpdate returns the summary of the update that produced this
// snapshot (nil for the initial state).
func (e *Snapshot) LastUpdate() *UpdateSummary { return e.last }

// Epoch reports the live snapshot's update generation.
func (e *Engine) Epoch() int64 { return e.Snapshot().Epoch() }

// LastUpdate reports the live snapshot's last-update summary (nil when
// no update has been applied or recorded).
func (e *Engine) LastUpdate() *UpdateSummary { return e.Snapshot().LastUpdate() }

// DropCaches empties the page caches of a disk-backed engine (cold-run
// benchmarking); it is a no-op for in-memory engines.
func (e *Engine) DropCaches() {
	if s := e.Snapshot(); s.db != nil {
		s.db.DropCaches()
	}
}

// Degraded reports whether the live snapshot's store has quarantined
// pages: corruption was detected at read time and the engine is serving
// every query that avoids the bad pages while failing the ones that need
// them. Always false for in-memory engines.
func (e *Engine) Degraded() bool {
	if s := e.Snapshot(); s.db != nil {
		return s.db.Degraded()
	}
	return false
}

// QuarantinedPages lists quarantined page numbers per store file (empty
// map when healthy or in-memory).
func (e *Engine) QuarantinedPages() map[string][]int64 {
	if s := e.Snapshot(); s.db != nil {
		return s.db.QuarantinedPages()
	}
	return map[string][]int64{}
}

// Heal retries every quarantined page of the live snapshot's store,
// returning (healed, remaining). Pages recover only if the on-disk bytes
// were repaired; the admin re-verify endpoint exposes this.
func (e *Engine) Heal() (healed, remaining int) {
	if s := e.Snapshot(); s.db != nil {
		return s.db.Heal()
	}
	return 0, 0
}

// buildFileMaps indexes file nodes by path and FILE_ID.
func (e *Snapshot) buildFileMaps() {
	e.fileIDByPath = map[string]int64{}
	e.fileNodeByID = map[int64]graph.NodeID{}
	n := e.src.NodeCount()
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		if e.src.NodeType(id) != model.NodeFile {
			continue
		}
		p, _ := e.src.NodeProp(id, model.PropName)
		fid, ok := e.src.NodeProp(id, "FILE_ID")
		if !ok {
			continue
		}
		e.fileIDByPath[p.AsString()] = fid.AsInt()
		e.fileNodeByID[fid.AsInt()] = id
	}
}

// FileNodeByID resolves a USE_FILE_ID/NAME_FILE_ID value to a file node.
func (e *Snapshot) FileNodeByID(fid int64) (graph.NodeID, bool) {
	n, ok := e.fileNodeByID[fid]
	return n, ok
}

// FileNodeByID resolves a file ID against the live snapshot.
func (e *Engine) FileNodeByID(fid int64) (graph.NodeID, bool) {
	return e.Snapshot().FileNodeByID(fid)
}

// FileIDOf returns the extraction FILE_ID recorded for a path, for
// building position-anchored queries like the paper's Figure 4.
func (e *Snapshot) FileIDOf(path string) (int64, bool) {
	v, ok := e.fileIDByPath[path]
	return v, ok
}

// FileIDOf resolves a path against the live snapshot.
func (e *Engine) FileIDOf(path string) (int64, bool) {
	return e.Snapshot().FileIDOf(path)
}

// GraphStats returns the planner statistics for this snapshot,
// computing them at most once. A snapshot opened from a store directory
// adopts the persisted gstats.json; otherwise the first caller pays one
// full-graph collection pass and everyone after reads the cached value.
// Returns nil when collection hit quarantined store pages — statistics
// are advisory cost inputs, and a degraded store must keep serving the
// queries that avoid its bad pages.
func (e *Snapshot) GraphStats() *gstats.Stats {
	e.gs.once.Do(func() {
		if e.gs.st == nil {
			e.gs.st = collectStatsSafe(e.src)
		}
	})
	return e.gs.st
}

// collectStatsSafe degrades corruption-class store panics during the
// statistics scan to nil instead of failing the query that triggered
// the lazy collection. Any other panic propagates.
func collectStatsSafe(src graph.Source) (st *gstats.Stats) {
	defer func() {
		if r := recover(); r != nil {
			err, ok := r.(error)
			if !ok || (!errors.Is(err, store.ErrCorrupt) && !errors.Is(err, store.ErrTruncated)) {
				panic(r)
			}
			st = nil
		}
	}()
	return gstats.Collect(src)
}

// GraphStats returns the live snapshot's planner statistics.
func (e *Engine) GraphStats() *gstats.Stats { return e.Snapshot().GraphStats() }

// Query parses, plans, and runs a Cypher query against the snapshot's
// graph. Planning consults the snapshot's statistics for anchor and
// expansion-order choices and applies the closure rewrite where legal;
// plan.Execute falls back to the interpreter for clause shapes the
// compiled runner does not handle, so every query accepted before
// planning existed still runs.
func (e *Snapshot) Query(ctx context.Context, text string, limits query.Limits) (*query.Result, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	p := plan.Compile(q, e.GraphStats())
	planSpan(trace.FromContext(ctx), t0, p, false)
	return p.Execute(ctx, e.src, limits)
}

// planSpan records one "plan.compile" span under sp: which rewrites the
// planner took, whether it fell back to the interpreter, and whether
// the compiled plan came from the generation-keyed cache.
func planSpan(sp *trace.Span, start time.Time, p *plan.Plan, cachedPlan bool) {
	if sp == nil {
		return
	}
	c := sp.ChildSince("plan.compile", start,
		trace.Bool("cachedPlan", cachedPlan),
		trace.Bool("fallback", p.Fallback),
		trace.Int("rewrites", int64(p.Rewrites)),
		trace.Int("generation", p.Generation),
	)
	c.End()
}

// PagerSpan starts page-cache attribution for the traced query in ctx
// against this snapshot's store: the returned func emits one
// "store.pager" span whose attributes are the counter deltas (pages
// faulted, cache hits, bytes, CRC failures) accumulated since the call.
// The counters are process-wide, so under concurrent queries the delta
// over-counts — the span carries approximate=true to say so. No-op (and
// free) for in-memory snapshots or untraced contexts.
func (s *Snapshot) PagerSpan(ctx context.Context) func() {
	sp := trace.FromContext(ctx)
	if sp == nil || s.db == nil {
		return func() {}
	}
	before := s.db.Stats()
	start := time.Now()
	return func() {
		after := s.db.Stats()
		var hits, misses, crc int64
		for name, a := range after {
			b := before[name]
			hits += a.Hits - b.Hits
			misses += a.Misses - b.Misses
			crc += a.ChecksumFailures - b.ChecksumFailures
		}
		c := sp.ChildSince("store.pager", start,
			trace.Int("pagesRead", misses),
			trace.Int("cacheHits", hits),
			trace.Int("bytesRead", misses*int64(s.db.PageSize())),
			trace.Int("checksumFailures", crc),
			trace.Bool("approximate", true),
		)
		c.End()
	}
}

// QueryProfile runs a query with per-operator PROFILE tracing. The
// profile is non-nil even when the query aborts mid-execution (budget,
// timeout), covering the operators completed so far, and carries the
// plan's EXPLAIN rendering.
func (e *Snapshot) QueryProfile(ctx context.Context, text string, limits query.Limits) (*query.Result, *query.Profile, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, nil, err
	}
	return plan.Compile(q, e.GraphStats()).ExecuteProfile(ctx, e.src, limits)
}

// QueryProfile runs a query with PROFILE tracing under the engine's
// QueryLimits.
func (e *Engine) QueryProfile(ctx context.Context, text string) (*query.Result, *query.Profile, error) {
	return e.Snapshot().QueryProfile(ctx, text, e.QueryLimits)
}

// SetQueryCache installs (or, with nil, removes) the engine's query
// cache. Call at startup, before the engine serves concurrent traffic —
// the field is read without synchronisation on the query hot path.
func (e *Engine) SetQueryCache(c *qcache.Cache) { e.qc = c }

// QueryCacheStats snapshots the query-cache counters, nil when no cache
// is installed (surfaced by /api/stats).
func (e *Engine) QueryCacheStats() *qcache.Stats {
	if e.qc == nil {
		return nil
	}
	st := e.qc.Stats()
	return &st
}

// QueryCacheHits reports how many times the given query text has been
// served warm against snapshot s under the engine's current limits.
func (e *Engine) QueryCacheHits(s *Snapshot, text string) int64 {
	if e.qc == nil {
		return 0
	}
	return e.qc.EntryHits(qcache.Key{Epoch: s.Epoch(), Text: text, Limits: e.QueryLimits})
}

// CachedQuery runs text against the pinned snapshot s through the
// engine's query cache: plan reuse, result reuse keyed by
// (epoch, text, limits), and singleflight coalescing of concurrent
// identical queries. With bypass (or no cache installed) it executes
// directly, exactly like Snapshot.Query. Cached results are shared
// between callers — treat them as read-only.
func (e *Engine) CachedQuery(ctx context.Context, s *Snapshot, text string, bypass bool) (res *query.Result, out qcache.Outcome, err error) {
	qc := e.qc
	if eng := trace.FromContext(ctx).Child("engine.query", trace.Int("epoch", s.Epoch())); eng != nil {
		ctx = trace.ContextWith(ctx, eng)
		pager := s.PagerSpan(ctx)
		defer func() {
			pager()
			eng.SetAttr(
				trace.Bool("bypass", bypass || qc == nil),
				trace.Bool("cacheHit", out.Hit),
				trace.Bool("shared", out.Shared))
			if err != nil {
				eng.SetError(err)
				markRetention(eng, err)
			}
			eng.End()
		}()
	}
	if qc == nil || bypass {
		res, err = s.Query(ctx, text, e.QueryLimits)
		return res, qcache.Outcome{}, err
	}
	k := qcache.Key{Epoch: s.Epoch(), Text: text, Limits: e.QueryLimits}
	res, out, err = qc.Do(ctx, k, func() (*query.Result, error) {
		p, perr := e.planFor(ctx, qc, s, text)
		if perr != nil {
			return nil, perr
		}
		return p.Execute(ctx, s.Source(), e.QueryLimits)
	})
	return res, out, err
}

// markRetention forces trace retention for the outcome classes tail
// sampling must never drop: degraded-store reads and budget aborts
// (plain errors already retain via SetError).
func markRetention(sp *trace.Span, err error) {
	switch {
	case errors.Is(err, store.ErrCorrupt) || errors.Is(err, store.ErrTruncated):
		sp.Retain("degraded")
	case errors.Is(err, query.ErrBudgetExceeded):
		sp.Retain("budget")
	}
}

// StreamQuery runs text against the pinned snapshot s as a streaming
// execution: rows arrive through the returned Stream's bounded channel
// (depth <= 0 means query.DefaultStreamDepth) instead of a materialized
// result. Parse and compile errors are returned synchronously so HTTP
// callers can still answer 400 before committing to a streaming
// response; execution errors surface through Stream.Wait.
//
// Cache interaction is deliberately asymmetric: a cached result is
// served by replaying its rows (Outcome.Hit true), but a streamed miss
// executes outside the cache and never inserts — rows leave the process
// as they are produced, and buffering the whole result to cache it
// would undo the bounded-memory point of streaming. Repeated hot
// queries should use CachedQuery; streaming is for results too large to
// hold.
func (e *Engine) StreamQuery(ctx context.Context, s *Snapshot, text string, depth int) (*query.Stream, qcache.Outcome, error) {
	qc := e.qc
	if qc != nil {
		k := qcache.Key{Epoch: s.Epoch(), Text: text, Limits: e.QueryLimits}
		if res, ok := qc.Get(k); ok {
			return query.ReplayStream(ctx, res, depth), qcache.Outcome{Hit: true}, nil
		}
	}
	p, err := e.planFor(ctx, qc, s, text)
	if err != nil {
		return nil, qcache.Outcome{}, err
	}
	return p.Stream(ctx, s.Source(), e.QueryLimits, depth), qcache.Outcome{}, nil
}

// planFor returns the compiled plan for text against snapshot s,
// serving it from the query cache's generation-keyed compiled-plan slot
// when the cache holds one built against s's current statistics. qc may
// be nil (no cache installed): the plan is then built from scratch.
func (e *Engine) planFor(ctx context.Context, qc *qcache.Cache, s *Snapshot, text string) (*plan.Plan, error) {
	st := s.GraphStats()
	t0 := time.Now()
	if qc == nil {
		q, err := query.Parse(text)
		if err != nil {
			return nil, err
		}
		p := plan.Compile(q, st)
		planSpan(trace.FromContext(ctx), t0, p, false)
		return p, nil
	}
	q, err := qc.Plan(text)
	if err != nil {
		return nil, err
	}
	var gen int64
	if st != nil {
		gen = st.Generation
	}
	built := false
	v, err := qc.CompiledPlan(text, gen, func() (any, error) {
		built = true
		return plan.Compile(q, st), nil
	})
	if err != nil {
		return nil, err
	}
	p := v.(*plan.Plan)
	planSpan(trace.FromContext(ctx), t0, p, !built)
	return p, nil
}

// ExplainQuery compiles text against the live snapshot's statistics and
// returns the plan's EXPLAIN rendering without executing anything.
func (e *Engine) ExplainQuery(text string) (string, error) {
	p, err := e.planFor(context.Background(), e.qc, e.Snapshot(), text)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Query parses and runs a Cypher query against the engine's live graph,
// under the engine's QueryLimits and through the query cache when one
// is installed.
func (e *Engine) Query(ctx context.Context, text string) (*query.Result, error) {
	res, _, err := e.CachedQuery(ctx, e.Snapshot(), text, false)
	return res, err
}

// Symbol is a materialised view of a graph node for API consumers.
type Symbol struct {
	ID        graph.NodeID
	Type      model.NodeType
	ShortName string
	Name      string
	LongName  string
	File      string // defining file path ("" if not recorded)
	Line      int
	Col       int
}

// Symbol materialises a node.
func (e *Snapshot) Symbol(id graph.NodeID) Symbol {
	s := Symbol{ID: id, Type: e.src.NodeType(id)}
	if v, ok := e.src.NodeProp(id, model.PropShortName); ok {
		s.ShortName = v.AsString()
	}
	if v, ok := e.src.NodeProp(id, model.PropName); ok {
		s.Name = v.AsString()
	}
	if v, ok := e.src.NodeProp(id, model.PropLongName); ok {
		s.LongName = v.AsString()
	}
	// Definition location: the incoming file_contains edge.
	for _, eid := range e.src.In(id) {
		from, _, t := e.src.EdgeEnds(eid)
		if t != model.EdgeFileContains {
			continue
		}
		if v, ok := e.src.NodeProp(from, model.PropName); ok {
			s.File = v.AsString()
		}
		if v, ok := e.src.EdgeProp(eid, model.PropNameStartLine); ok {
			s.Line = int(v.AsInt())
		}
		if v, ok := e.src.EdgeProp(eid, model.PropNameStartCol); ok {
			s.Col = int(v.AsInt())
		}
		break
	}
	return s
}

// Symbol materialises a node from the live snapshot.
func (e *Engine) Symbol(id graph.NodeID) Symbol { return e.Snapshot().Symbol(id) }

// Symbols materialises a node list.
func (e *Snapshot) Symbols(ids []graph.NodeID) []Symbol {
	out := make([]Symbol, len(ids))
	for i, id := range ids {
		out[i] = e.Symbol(id)
	}
	return out
}

// Symbols materialises a node list from the live snapshot.
func (e *Engine) Symbols(ids []graph.NodeID) []Symbol { return e.Snapshot().Symbols(ids) }

// --- §4.1 code search ---

// SearchOptions constrain a code search.
type SearchOptions struct {
	// Pattern matches SHORT_NAME; '*' and '?' wildcards allowed.
	Pattern string
	// Types restricts results to these node types (nil = any).
	Types []model.NodeType
	// Label restricts to a grouped label (symbol, type, container...).
	Label string
	// Module restricts results to entities reachable from the named
	// module via compiled_from/linked_from, as in the paper's Figure 3.
	Module string
	// Dir restricts results to entities under the directory path.
	Dir string
	// Limit caps the result count (0 = unlimited).
	Limit int
}

// Search implements the paper's code-search use case (§4.1).
func (e *Snapshot) Search(ctx context.Context, opts SearchOptions) ([]Symbol, error) {
	if opts.Pattern == "" {
		return nil, fmt.Errorf("core: empty search pattern")
	}
	ids, err := e.src.Lookup("short_name: \"" + opts.Pattern + "\"")
	if err != nil {
		return nil, err
	}

	var typeFilter map[model.NodeType]bool
	if len(opts.Types) > 0 {
		typeFilter = map[model.NodeType]bool{}
		for _, t := range opts.Types {
			typeFilter[t] = true
		}
	}

	var fileSet map[graph.NodeID]bool
	if opts.Module != "" {
		fileSet, err = e.moduleFiles(opts.Module)
		if err != nil {
			return nil, err
		}
	}
	if opts.Dir != "" {
		dirFiles, err := e.dirFiles(opts.Dir)
		if err != nil {
			return nil, err
		}
		if fileSet == nil {
			fileSet = dirFiles
		} else {
			for f := range fileSet {
				if !dirFiles[f] {
					delete(fileSet, f)
				}
			}
		}
	}

	var out []Symbol
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if typeFilter != nil && !typeFilter[e.src.NodeType(id)] {
			continue
		}
		if opts.Label != "" && !e.src.NodeHasLabel(id, opts.Label) {
			continue
		}
		if fileSet != nil && !e.containedInAny(id, fileSet) {
			continue
		}
		out = append(out, e.Symbol(id))
		if opts.Limit > 0 && len(out) >= opts.Limit {
			break
		}
	}
	return out, nil
}

// Search runs a code search against the live snapshot.
func (e *Engine) Search(ctx context.Context, opts SearchOptions) ([]Symbol, error) {
	return e.Snapshot().Search(ctx, opts)
}

// moduleFiles computes the transitive closure of compiled_from and
// linked_from edges from the named module (Figure 3's first MATCH).
func (e *Snapshot) moduleFiles(name string) (map[graph.NodeID]bool, error) {
	mods, err := e.src.Lookup("short_name: \"" + name + "\"")
	if err != nil {
		return nil, err
	}
	files := map[graph.NodeID]bool{}
	for _, m := range mods {
		if e.src.NodeType(m) != model.NodeModule {
			continue
		}
		reach := traversal.TransitiveClosure(e.src, m, traversal.Options{
			Direction: traversal.Out,
			Types:     traversal.Types(model.EdgeCompiledFrom, model.EdgeLinkedFrom, model.EdgeLinkedFromLib),
		})
		for _, f := range reach {
			if e.src.NodeType(f) == model.NodeFile {
				files[f] = true
			}
		}
	}
	return files, nil
}

// dirFiles collects files under a directory path via dir_contains.
func (e *Snapshot) dirFiles(dir string) (map[graph.NodeID]bool, error) {
	var dn graph.NodeID = graph.InvalidID
	n := e.src.NodeCount()
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		if e.src.NodeType(id) != model.NodeDirectory {
			continue
		}
		if v, ok := e.src.NodeProp(id, model.PropName); ok && v.AsString() == dir {
			dn = id
			break
		}
	}
	if dn == graph.InvalidID {
		return nil, fmt.Errorf("core: no directory %q", dir)
	}
	files := map[graph.NodeID]bool{}
	for _, f := range traversal.TransitiveClosure(e.src, dn, traversal.Options{
		Direction: traversal.Out,
		Types:     traversal.Types(model.EdgeDirContains),
	}) {
		if e.src.NodeType(f) == model.NodeFile {
			files[f] = true
		}
	}
	return files, nil
}

func (e *Snapshot) containedInAny(id graph.NodeID, files map[graph.NodeID]bool) bool {
	for _, eid := range e.src.In(id) {
		from, _, t := e.src.EdgeEnds(eid)
		if t == model.EdgeFileContains && files[from] {
			return true
		}
	}
	return false
}

// --- §4.2 cross referencing ---

// GoToDefinition resolves the symbol named name referenced at the given
// source position to its definition (the paper's Figure 4 query, plus
// declaration→definition resolution).
func (e *Snapshot) GoToDefinition(ctx context.Context, name, file string, line, col int) (Symbol, bool, error) {
	fid, ok := e.fileIDByPath[file]
	if !ok {
		return Symbol{}, false, fmt.Errorf("core: unknown file %q", file)
	}
	ids, err := e.src.Lookup("short_name: \"" + name + "\"")
	if err != nil {
		return Symbol{}, false, err
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return Symbol{}, false, err
		}
		for _, eid := range e.src.In(id) {
			if f, ok := e.src.EdgeProp(eid, model.PropNameFileID); !ok || f.AsInt() != fid {
				continue
			}
			if l, ok := e.src.EdgeProp(eid, model.PropNameStartLine); !ok || l.AsInt() != int64(line) {
				continue
			}
			if c, ok := e.src.EdgeProp(eid, model.PropNameStartCol); !ok || c.AsInt() != int64(col) {
				continue
			}
			return e.Symbol(e.resolveToDefinition(id)), true, nil
		}
	}
	return Symbol{}, false, nil
}

// GoToDefinition resolves against the live snapshot.
func (e *Engine) GoToDefinition(ctx context.Context, name, file string, line, col int) (Symbol, bool, error) {
	return e.Snapshot().GoToDefinition(ctx, name, file, line, col)
}

// resolveToDefinition follows declares/link_matches from a declaration.
func (e *Snapshot) resolveToDefinition(id graph.NodeID) graph.NodeID {
	if !model.IsDecl(e.src.NodeType(id)) {
		return id
	}
	for _, eid := range e.src.Out(id) {
		_, to, t := e.src.EdgeEnds(eid)
		if t == model.EdgeDeclares || t == model.EdgeLinkMatches {
			return to
		}
	}
	return id
}

// Reference is one use of a symbol.
type Reference struct {
	From Symbol
	Kind model.EdgeType
	File string
	Line int
	Col  int
}

// FindReferences lists every reference to the symbol (and to its
// declarations), the paper's find-references action.
func (e *Snapshot) FindReferences(ctx context.Context, id graph.NodeID) ([]Reference, error) {
	targets := []graph.NodeID{id}
	// Include declaration nodes that resolve to this definition.
	for _, eid := range e.src.In(id) {
		from, _, t := e.src.EdgeEnds(eid)
		if t == model.EdgeDeclares || t == model.EdgeLinkMatches {
			targets = append(targets, from)
		}
	}
	var out []Reference
	for _, target := range targets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, eid := range e.src.In(target) {
			from, _, t := e.src.EdgeEnds(eid)
			if !model.ReferenceEdges[t] || t == model.EdgeIsaType {
				continue
			}
			ref := Reference{From: e.Symbol(from), Kind: t}
			if v, ok := e.src.EdgeProp(eid, model.PropUseFileID); ok {
				if fn, ok := e.fileNodeByID[v.AsInt()]; ok {
					if p, ok := e.src.NodeProp(fn, model.PropName); ok {
						ref.File = p.AsString()
					}
				}
			}
			if v, ok := e.src.EdgeProp(eid, model.PropUseStartLine); ok {
				ref.Line = int(v.AsInt())
			}
			if v, ok := e.src.EdgeProp(eid, model.PropUseStartCol); ok {
				ref.Col = int(v.AsInt())
			}
			out = append(out, ref)
		}
	}
	return out, nil
}

// FindReferences lists references against the live snapshot.
func (e *Engine) FindReferences(ctx context.Context, id graph.NodeID) ([]Reference, error) {
	return e.Snapshot().FindReferences(ctx, id)
}

// --- §4.4 code comprehension ---

// BackwardSlice returns every function the seed function transitively
// calls (Figure 6: the code that can alter the seed's behaviour).
func (e *Snapshot) BackwardSlice(seed graph.NodeID, maxDepth int) []Symbol {
	syms, _ := e.BackwardSliceCtx(context.Background(), seed, maxDepth)
	return syms
}

// BackwardSliceCtx is BackwardSlice under a deadline: an expired context
// aborts the walk with the context's error instead of returning a
// silently truncated slice.
func (e *Snapshot) BackwardSliceCtx(ctx context.Context, seed graph.NodeID, maxDepth int) ([]Symbol, error) {
	ids, err := traversal.TransitiveClosureCtx(ctx, e.src, seed, traversal.Options{
		Direction: traversal.Out,
		Types:     traversal.Types(model.EdgeCalls),
		MaxDepth:  maxDepth,
	})
	if err != nil {
		return nil, err
	}
	return e.Symbols(ids), nil
}

// BackwardSlice slices against the live snapshot.
func (e *Engine) BackwardSlice(seed graph.NodeID, maxDepth int) []Symbol {
	return e.Snapshot().BackwardSlice(seed, maxDepth)
}

// ForwardSlice returns every function that transitively calls the seed
// (the code affected if the seed changes).
func (e *Snapshot) ForwardSlice(seed graph.NodeID, maxDepth int) []Symbol {
	syms, _ := e.ForwardSliceCtx(context.Background(), seed, maxDepth)
	return syms
}

// ForwardSliceCtx is ForwardSlice under a deadline; see BackwardSliceCtx.
func (e *Snapshot) ForwardSliceCtx(ctx context.Context, seed graph.NodeID, maxDepth int) ([]Symbol, error) {
	ids, err := traversal.TransitiveClosureCtx(ctx, e.src, seed, traversal.Options{
		Direction: traversal.In,
		Types:     traversal.Types(model.EdgeCalls),
		MaxDepth:  maxDepth,
	})
	if err != nil {
		return nil, err
	}
	return e.Symbols(ids), nil
}

// ForwardSlice slices against the live snapshot.
func (e *Engine) ForwardSlice(seed graph.NodeID, maxDepth int) []Symbol {
	return e.Snapshot().ForwardSlice(seed, maxDepth)
}

// MacroImpact answers "how much code could be affected if I change this
// macro?": the functions and files that expand or interrogate it, plus
// the transitive callers of those functions.
func (e *Snapshot) MacroImpact(macro graph.NodeID) []Symbol {
	direct := map[graph.NodeID]bool{}
	for _, eid := range e.src.In(macro) {
		from, _, t := e.src.EdgeEnds(eid)
		if t == model.EdgeExpandsMacro || t == model.EdgeInterrogatesMacro {
			direct[from] = true
		}
	}
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for d := range direct {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
		for _, up := range traversal.TransitiveClosure(e.src, d, traversal.Options{
			Direction: traversal.In,
			Types:     traversal.Types(model.EdgeCalls),
		}) {
			if !seen[up] {
				seen[up] = true
				out = append(out, up)
			}
		}
	}
	return e.Symbols(out)
}

// MacroImpact computes impact against the live snapshot.
func (e *Engine) MacroImpact(macro graph.NodeID) []Symbol {
	return e.Snapshot().MacroImpact(macro)
}

// IncludeImpact returns every file that transitively includes the given
// file — the rebuild set when a header changes.
func (e *Snapshot) IncludeImpact(file graph.NodeID) []Symbol {
	return e.Symbols(traversal.TransitiveClosure(e.src, file, traversal.Options{
		Direction: traversal.In,
		Types:     traversal.Types(model.EdgeIncludes),
	}))
}

// IncludeImpact computes impact against the live snapshot.
func (e *Engine) IncludeImpact(file graph.NodeID) []Symbol {
	return e.Snapshot().IncludeImpact(file)
}

// CallPath finds a shortest calls path between two functions — the
// "how might execution reach this code" exploration of §4.4.
func (e *Snapshot) CallPath(from, to graph.NodeID) (traversal.Path, bool) {
	return traversal.ShortestPath(e.src, from, to, traversal.Options{
		Direction: traversal.Out,
		Types:     traversal.Types(model.EdgeCalls),
	})
}

// CallPath finds a path against the live snapshot.
func (e *Engine) CallPath(from, to graph.NodeID) (traversal.Path, bool) {
	return e.Snapshot().CallPath(from, to)
}

// LookupNamed finds nodes by SHORT_NAME (optionally filtered by type),
// a convenience for examples and the CLI.
func (e *Snapshot) LookupNamed(name string, typ model.NodeType) ([]graph.NodeID, error) {
	q := "short_name: \"" + name + "\""
	if typ != "" {
		q = "TYPE: " + string(typ) + " AND " + q
	}
	return e.src.Lookup(q)
}

// LookupNamed looks up against the live snapshot.
func (e *Engine) LookupNamed(name string, typ model.NodeType) ([]graph.NodeID, error) {
	return e.Snapshot().LookupNamed(name, typ)
}

// MustLookupOne returns the unique node with the given name/type or an
// error naming the ambiguity.
func (e *Snapshot) MustLookupOne(name string, typ model.NodeType) (graph.NodeID, error) {
	ids, err := e.LookupNamed(name, typ)
	if err != nil {
		return graph.InvalidID, err
	}
	switch len(ids) {
	case 0:
		return graph.InvalidID, fmt.Errorf("core: no %s named %q", orAny(typ), name)
	case 1:
		return ids[0], nil
	}
	return graph.InvalidID, fmt.Errorf("core: %d nodes named %q", len(ids), name)
}

// MustLookupOne looks up against the live snapshot.
func (e *Engine) MustLookupOne(name string, typ model.NodeType) (graph.NodeID, error) {
	return e.Snapshot().MustLookupOne(name, typ)
}

func orAny(t model.NodeType) string {
	if t == "" {
		return "node"
	}
	return string(t)
}

// Stats bundles the graph metrics of the paper's Table 3, computed at
// most once per snapshot: the graph is immutable once published, so the
// first call caches and every later call (stats endpoints poll this) is
// a map-free read.
func (e *Snapshot) Stats() graph.Metrics {
	e.stats.once.Do(func() { e.stats.m = graph.ComputeMetrics(e.src) })
	return e.stats.m
}

// Stats returns the live snapshot's (cached) metrics.
func (e *Engine) Stats() graph.Metrics { return e.Snapshot().Stats() }

// FormatSymbol renders a symbol for terminal output.
func FormatSymbol(s Symbol) string {
	loc := ""
	if s.File != "" {
		loc = fmt.Sprintf("  %s:%d:%d", s.File, s.Line, s.Col)
	}
	name := s.ShortName
	if s.LongName != "" {
		name = s.LongName
	}
	return fmt.Sprintf("%-14s %s%s", s.Type, name, loc)
}

// FilePathOf resolves a FILE_ID to its path, "" when unknown.
func (e *Snapshot) FilePathOf(fid cpp.FileID) string {
	if n, ok := e.fileNodeByID[int64(fid)]; ok {
		if v, ok := e.src.NodeProp(n, model.PropName); ok {
			return v.AsString()
		}
	}
	return ""
}

// FilePathOf resolves against the live snapshot.
func (e *Engine) FilePathOf(fid cpp.FileID) string { return e.Snapshot().FilePathOf(fid) }

// DirOf trims a path to its directory for display grouping.
func DirOf(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[:i]
	}
	return ""
}
