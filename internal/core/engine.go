// Package core is Frappé itself: the engine tying together the
// extractor, the graph repository (in-memory or disk-backed with a page
// cache), the Cypher query processor and the embedded traversal API, and
// exposing the paper's §4 use cases as first-class operations — code
// search, cross-referencing (go-to-definition / find-references),
// debugging path queries, and code comprehension (program slices over
// the call graph, change impact, shortest paths).
package core

import (
	"context"
	"fmt"
	"strings"

	"frappe/internal/cpp"
	"frappe/internal/extract"
	"frappe/internal/graph"
	"frappe/internal/model"
	"frappe/internal/query"
	"frappe/internal/store"
	"frappe/internal/traversal"
)

// Engine is an opened Frappé database. It wraps either a freshly
// extracted in-memory graph or a disk-backed store.
type Engine struct {
	src graph.Source
	g   *graph.Graph // non-nil when in-memory
	db  *store.DB    // non-nil when disk-backed

	// QueryLimits bounds every Query call (zero fields = unlimited).
	// Long-lived servers set row/step budgets so one runaway expansion
	// fails fast with query.ErrBudgetExceeded instead of eating memory.
	QueryLimits query.Limits

	fileIDByPath map[string]int64
	fileNodeByID map[int64]graph.NodeID
}

// Index runs the extractor over a build and returns an in-memory engine.
func Index(build extract.Build, opts extract.Options) (*Engine, []error, error) {
	res, err := extract.Run(build, opts)
	if err != nil {
		return nil, nil, err
	}
	e := fromGraph(res.Graph)
	return e, res.Errors, nil
}

// FromGraph wraps an existing extracted graph.
func FromGraph(g *graph.Graph) *Engine { return fromGraph(g) }

func fromGraph(g *graph.Graph) *Engine {
	e := &Engine{src: g, g: g}
	e.buildFileMaps()
	return e
}

// Open opens a previously saved Frappé store directory. The store
// signals corruption by panicking with a wrapped error (graph.Source has
// no error returns); the file-map scan touches every node, so convert
// such panics into ordinary errors here rather than crashing the caller.
func Open(dir string) (eng *Engine, err error) {
	db, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			db.Close()
			e, ok := r.(error)
			if !ok {
				panic(r)
			}
			eng, err = nil, fmt.Errorf("core: opening %s: %w", dir, e)
		}
	}()
	e := &Engine{src: db, db: db}
	e.buildFileMaps()
	return e, nil
}

// Save persists an in-memory engine to dir (Neo4j-style store files).
func (e *Engine) Save(dir string) error {
	if e.g == nil {
		return fmt.Errorf("core: engine is disk-backed; nothing to save")
	}
	return store.Write(dir, e.g)
}

// Close releases resources for disk-backed engines.
func (e *Engine) Close() error {
	if e.db != nil {
		return e.db.Close()
	}
	return nil
}

// Source exposes the underlying graph for traversal and query use.
func (e *Engine) Source() graph.Source { return e.src }

// DropCaches empties the page caches of a disk-backed engine (cold-run
// benchmarking); it is a no-op for in-memory engines.
func (e *Engine) DropCaches() {
	if e.db != nil {
		e.db.DropCaches()
	}
}

// buildFileMaps indexes file nodes by path and FILE_ID.
func (e *Engine) buildFileMaps() {
	e.fileIDByPath = map[string]int64{}
	e.fileNodeByID = map[int64]graph.NodeID{}
	n := e.src.NodeCount()
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		if e.src.NodeType(id) != model.NodeFile {
			continue
		}
		p, _ := e.src.NodeProp(id, model.PropName)
		fid, ok := e.src.NodeProp(id, "FILE_ID")
		if !ok {
			continue
		}
		e.fileIDByPath[p.AsString()] = fid.AsInt()
		e.fileNodeByID[fid.AsInt()] = id
	}
}

// FileNodeByID resolves a USE_FILE_ID/NAME_FILE_ID value to a file node.
func (e *Engine) FileNodeByID(fid int64) (graph.NodeID, bool) {
	n, ok := e.fileNodeByID[fid]
	return n, ok
}

// FileIDOf returns the extraction FILE_ID recorded for a path, for
// building position-anchored queries like the paper's Figure 4.
func (e *Engine) FileIDOf(path string) (int64, bool) {
	v, ok := e.fileIDByPath[path]
	return v, ok
}

// Query parses and runs a Cypher query against the engine's graph,
// under the engine's QueryLimits.
func (e *Engine) Query(ctx context.Context, text string) (*query.Result, error) {
	return query.RunLimits(ctx, e.src, text, e.QueryLimits)
}

// Symbol is a materialised view of a graph node for API consumers.
type Symbol struct {
	ID        graph.NodeID
	Type      model.NodeType
	ShortName string
	Name      string
	LongName  string
	File      string // defining file path ("" if not recorded)
	Line      int
	Col       int
}

// Symbol materialises a node.
func (e *Engine) Symbol(id graph.NodeID) Symbol {
	s := Symbol{ID: id, Type: e.src.NodeType(id)}
	if v, ok := e.src.NodeProp(id, model.PropShortName); ok {
		s.ShortName = v.AsString()
	}
	if v, ok := e.src.NodeProp(id, model.PropName); ok {
		s.Name = v.AsString()
	}
	if v, ok := e.src.NodeProp(id, model.PropLongName); ok {
		s.LongName = v.AsString()
	}
	// Definition location: the incoming file_contains edge.
	for _, eid := range e.src.In(id) {
		from, _, t := e.src.EdgeEnds(eid)
		if t != model.EdgeFileContains {
			continue
		}
		if v, ok := e.src.NodeProp(from, model.PropName); ok {
			s.File = v.AsString()
		}
		if v, ok := e.src.EdgeProp(eid, model.PropNameStartLine); ok {
			s.Line = int(v.AsInt())
		}
		if v, ok := e.src.EdgeProp(eid, model.PropNameStartCol); ok {
			s.Col = int(v.AsInt())
		}
		break
	}
	return s
}

// Symbols materialises a node list.
func (e *Engine) Symbols(ids []graph.NodeID) []Symbol {
	out := make([]Symbol, len(ids))
	for i, id := range ids {
		out[i] = e.Symbol(id)
	}
	return out
}

// --- §4.1 code search ---

// SearchOptions constrain a code search.
type SearchOptions struct {
	// Pattern matches SHORT_NAME; '*' and '?' wildcards allowed.
	Pattern string
	// Types restricts results to these node types (nil = any).
	Types []model.NodeType
	// Label restricts to a grouped label (symbol, type, container...).
	Label string
	// Module restricts results to entities reachable from the named
	// module via compiled_from/linked_from, as in the paper's Figure 3.
	Module string
	// Dir restricts results to entities under the directory path.
	Dir string
	// Limit caps the result count (0 = unlimited).
	Limit int
}

// Search implements the paper's code-search use case (§4.1).
func (e *Engine) Search(ctx context.Context, opts SearchOptions) ([]Symbol, error) {
	if opts.Pattern == "" {
		return nil, fmt.Errorf("core: empty search pattern")
	}
	ids, err := e.src.Lookup("short_name: \"" + opts.Pattern + "\"")
	if err != nil {
		return nil, err
	}

	var typeFilter map[model.NodeType]bool
	if len(opts.Types) > 0 {
		typeFilter = map[model.NodeType]bool{}
		for _, t := range opts.Types {
			typeFilter[t] = true
		}
	}

	var fileSet map[graph.NodeID]bool
	if opts.Module != "" {
		fileSet, err = e.moduleFiles(opts.Module)
		if err != nil {
			return nil, err
		}
	}
	if opts.Dir != "" {
		dirFiles, err := e.dirFiles(opts.Dir)
		if err != nil {
			return nil, err
		}
		if fileSet == nil {
			fileSet = dirFiles
		} else {
			for f := range fileSet {
				if !dirFiles[f] {
					delete(fileSet, f)
				}
			}
		}
	}

	var out []Symbol
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if typeFilter != nil && !typeFilter[e.src.NodeType(id)] {
			continue
		}
		if opts.Label != "" && !e.src.NodeHasLabel(id, opts.Label) {
			continue
		}
		if fileSet != nil && !e.containedInAny(id, fileSet) {
			continue
		}
		out = append(out, e.Symbol(id))
		if opts.Limit > 0 && len(out) >= opts.Limit {
			break
		}
	}
	return out, nil
}

// moduleFiles computes the transitive closure of compiled_from and
// linked_from edges from the named module (Figure 3's first MATCH).
func (e *Engine) moduleFiles(name string) (map[graph.NodeID]bool, error) {
	mods, err := e.src.Lookup("short_name: \"" + name + "\"")
	if err != nil {
		return nil, err
	}
	files := map[graph.NodeID]bool{}
	for _, m := range mods {
		if e.src.NodeType(m) != model.NodeModule {
			continue
		}
		reach := traversal.TransitiveClosure(e.src, m, traversal.Options{
			Direction: traversal.Out,
			Types:     traversal.Types(model.EdgeCompiledFrom, model.EdgeLinkedFrom, model.EdgeLinkedFromLib),
		})
		for _, f := range reach {
			if e.src.NodeType(f) == model.NodeFile {
				files[f] = true
			}
		}
	}
	return files, nil
}

// dirFiles collects files under a directory path via dir_contains.
func (e *Engine) dirFiles(dir string) (map[graph.NodeID]bool, error) {
	var dn graph.NodeID = graph.InvalidID
	n := e.src.NodeCount()
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		if e.src.NodeType(id) != model.NodeDirectory {
			continue
		}
		if v, ok := e.src.NodeProp(id, model.PropName); ok && v.AsString() == dir {
			dn = id
			break
		}
	}
	if dn == graph.InvalidID {
		return nil, fmt.Errorf("core: no directory %q", dir)
	}
	files := map[graph.NodeID]bool{}
	for _, f := range traversal.TransitiveClosure(e.src, dn, traversal.Options{
		Direction: traversal.Out,
		Types:     traversal.Types(model.EdgeDirContains),
	}) {
		if e.src.NodeType(f) == model.NodeFile {
			files[f] = true
		}
	}
	return files, nil
}

func (e *Engine) containedInAny(id graph.NodeID, files map[graph.NodeID]bool) bool {
	for _, eid := range e.src.In(id) {
		from, _, t := e.src.EdgeEnds(eid)
		if t == model.EdgeFileContains && files[from] {
			return true
		}
	}
	return false
}

// --- §4.2 cross referencing ---

// GoToDefinition resolves the symbol named name referenced at the given
// source position to its definition (the paper's Figure 4 query, plus
// declaration→definition resolution).
func (e *Engine) GoToDefinition(ctx context.Context, name, file string, line, col int) (Symbol, bool, error) {
	fid, ok := e.fileIDByPath[file]
	if !ok {
		return Symbol{}, false, fmt.Errorf("core: unknown file %q", file)
	}
	ids, err := e.src.Lookup("short_name: \"" + name + "\"")
	if err != nil {
		return Symbol{}, false, err
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return Symbol{}, false, err
		}
		for _, eid := range e.src.In(id) {
			if f, ok := e.src.EdgeProp(eid, model.PropNameFileID); !ok || f.AsInt() != fid {
				continue
			}
			if l, ok := e.src.EdgeProp(eid, model.PropNameStartLine); !ok || l.AsInt() != int64(line) {
				continue
			}
			if c, ok := e.src.EdgeProp(eid, model.PropNameStartCol); !ok || c.AsInt() != int64(col) {
				continue
			}
			return e.Symbol(e.resolveToDefinition(id)), true, nil
		}
	}
	return Symbol{}, false, nil
}

// resolveToDefinition follows declares/link_matches from a declaration.
func (e *Engine) resolveToDefinition(id graph.NodeID) graph.NodeID {
	if !model.IsDecl(e.src.NodeType(id)) {
		return id
	}
	for _, eid := range e.src.Out(id) {
		_, to, t := e.src.EdgeEnds(eid)
		if t == model.EdgeDeclares || t == model.EdgeLinkMatches {
			return to
		}
	}
	return id
}

// Reference is one use of a symbol.
type Reference struct {
	From Symbol
	Kind model.EdgeType
	File string
	Line int
	Col  int
}

// FindReferences lists every reference to the symbol (and to its
// declarations), the paper's find-references action.
func (e *Engine) FindReferences(ctx context.Context, id graph.NodeID) ([]Reference, error) {
	targets := []graph.NodeID{id}
	// Include declaration nodes that resolve to this definition.
	for _, eid := range e.src.In(id) {
		from, _, t := e.src.EdgeEnds(eid)
		if t == model.EdgeDeclares || t == model.EdgeLinkMatches {
			targets = append(targets, from)
		}
	}
	var out []Reference
	for _, target := range targets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, eid := range e.src.In(target) {
			from, _, t := e.src.EdgeEnds(eid)
			if !model.ReferenceEdges[t] || t == model.EdgeIsaType {
				continue
			}
			ref := Reference{From: e.Symbol(from), Kind: t}
			if v, ok := e.src.EdgeProp(eid, model.PropUseFileID); ok {
				if fn, ok := e.fileNodeByID[v.AsInt()]; ok {
					if p, ok := e.src.NodeProp(fn, model.PropName); ok {
						ref.File = p.AsString()
					}
				}
			}
			if v, ok := e.src.EdgeProp(eid, model.PropUseStartLine); ok {
				ref.Line = int(v.AsInt())
			}
			if v, ok := e.src.EdgeProp(eid, model.PropUseStartCol); ok {
				ref.Col = int(v.AsInt())
			}
			out = append(out, ref)
		}
	}
	return out, nil
}

// --- §4.4 code comprehension ---

// BackwardSlice returns every function the seed function transitively
// calls (Figure 6: the code that can alter the seed's behaviour).
func (e *Engine) BackwardSlice(seed graph.NodeID, maxDepth int) []Symbol {
	return e.Symbols(traversal.TransitiveClosure(e.src, seed, traversal.Options{
		Direction: traversal.Out,
		Types:     traversal.Types(model.EdgeCalls),
		MaxDepth:  maxDepth,
	}))
}

// ForwardSlice returns every function that transitively calls the seed
// (the code affected if the seed changes).
func (e *Engine) ForwardSlice(seed graph.NodeID, maxDepth int) []Symbol {
	return e.Symbols(traversal.TransitiveClosure(e.src, seed, traversal.Options{
		Direction: traversal.In,
		Types:     traversal.Types(model.EdgeCalls),
		MaxDepth:  maxDepth,
	}))
}

// MacroImpact answers "how much code could be affected if I change this
// macro?": the functions and files that expand or interrogate it, plus
// the transitive callers of those functions.
func (e *Engine) MacroImpact(macro graph.NodeID) []Symbol {
	direct := map[graph.NodeID]bool{}
	for _, eid := range e.src.In(macro) {
		from, _, t := e.src.EdgeEnds(eid)
		if t == model.EdgeExpandsMacro || t == model.EdgeInterrogatesMacro {
			direct[from] = true
		}
	}
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for d := range direct {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
		for _, up := range traversal.TransitiveClosure(e.src, d, traversal.Options{
			Direction: traversal.In,
			Types:     traversal.Types(model.EdgeCalls),
		}) {
			if !seen[up] {
				seen[up] = true
				out = append(out, up)
			}
		}
	}
	return e.Symbols(out)
}

// IncludeImpact returns every file that transitively includes the given
// file — the rebuild set when a header changes.
func (e *Engine) IncludeImpact(file graph.NodeID) []Symbol {
	return e.Symbols(traversal.TransitiveClosure(e.src, file, traversal.Options{
		Direction: traversal.In,
		Types:     traversal.Types(model.EdgeIncludes),
	}))
}

// CallPath finds a shortest calls path between two functions — the
// "how might execution reach this code" exploration of §4.4.
func (e *Engine) CallPath(from, to graph.NodeID) (traversal.Path, bool) {
	return traversal.ShortestPath(e.src, from, to, traversal.Options{
		Direction: traversal.Out,
		Types:     traversal.Types(model.EdgeCalls),
	})
}

// LookupNamed finds nodes by SHORT_NAME (optionally filtered by type),
// a convenience for examples and the CLI.
func (e *Engine) LookupNamed(name string, typ model.NodeType) ([]graph.NodeID, error) {
	q := "short_name: \"" + name + "\""
	if typ != "" {
		q = "TYPE: " + string(typ) + " AND " + q
	}
	return e.src.Lookup(q)
}

// MustLookupOne returns the unique node with the given name/type or an
// error naming the ambiguity.
func (e *Engine) MustLookupOne(name string, typ model.NodeType) (graph.NodeID, error) {
	ids, err := e.LookupNamed(name, typ)
	if err != nil {
		return graph.InvalidID, err
	}
	switch len(ids) {
	case 0:
		return graph.InvalidID, fmt.Errorf("core: no %s named %q", orAny(typ), name)
	case 1:
		return ids[0], nil
	}
	return graph.InvalidID, fmt.Errorf("core: %d nodes named %q", len(ids), name)
}

func orAny(t model.NodeType) string {
	if t == "" {
		return "node"
	}
	return string(t)
}

// Stats bundles the graph metrics of the paper's Table 3.
func (e *Engine) Stats() graph.Metrics { return graph.ComputeMetrics(e.src) }

// FormatSymbol renders a symbol for terminal output.
func FormatSymbol(s Symbol) string {
	loc := ""
	if s.File != "" {
		loc = fmt.Sprintf("  %s:%d:%d", s.File, s.Line, s.Col)
	}
	name := s.ShortName
	if s.LongName != "" {
		name = s.LongName
	}
	return fmt.Sprintf("%-14s %s%s", s.Type, name, loc)
}

// FilePathOf resolves a FILE_ID to its path, "" when unknown.
func (e *Engine) FilePathOf(fid cpp.FileID) string {
	if n, ok := e.fileNodeByID[int64(fid)]; ok {
		if v, ok := e.src.NodeProp(n, model.PropName); ok {
			return v.AsString()
		}
	}
	return ""
}

// DirOf trims a path to its directory for display grouping.
func DirOf(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[:i]
	}
	return ""
}
