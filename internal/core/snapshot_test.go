package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"frappe/internal/extract"
	"frappe/internal/graph"
	"frappe/internal/kernelgen"
)

// twoGraphs extracts two structurally different graphs from generated
// kernels so swap tests can tell snapshots apart by node count.
func twoGraphs(t testing.TB) (*Engine, *extract.Result, *extract.Result) {
	t.Helper()
	a := kernelgen.Generate(kernelgen.Tiny())
	resA, err := extract.Run(a.Build, a.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernelgen.Tiny()
	cfg.Subsystems++
	b := kernelgen.Generate(cfg)
	resB, err := extract.Run(b.Build, b.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resA.Graph.NodeCount() == resB.Graph.NodeCount() {
		t.Fatal("fixture graphs are indistinguishable by node count")
	}
	return FromGraph(resA.Graph), resA, resB
}

// TestSnapshotSwapConsistency is the concurrent-safety acceptance
// criterion: readers pin a snapshot and must see exactly one graph —
// epoch, node count, and cached stats all agreeing — while a writer
// swaps back and forth between two graphs. Run under -race in CI.
func TestSnapshotSwapConsistency(t *testing.T) {
	eng, resA, resB := twoGraphs(t)
	defer eng.Close()

	countFor := map[int64]int64{}
	sumFor := map[int64]int{}
	// Even epochs serve graph A, odd serve graph B; the last-update
	// summary carries a node delta matched to the epoch's graph.
	countFor[0] = resA.Graph.NodeCount()
	countFor[1] = resB.Graph.NodeCount()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				snap := eng.Snapshot()
				epoch := snap.Epoch()
				want := countFor[epoch%2]
				if got := snap.Source().NodeCount(); got != want {
					select {
					case errs <- "snapshot mixes epochs: epoch/graph mismatch":
					default:
					}
					return
				}
				// Stats are cached per snapshot and must describe this
				// snapshot's graph, not whichever is currently live.
				if got := snap.Stats().Nodes; got != want {
					select {
					case errs <- "snapshot stats describe a different graph":
					default:
					}
					return
				}
				if last := snap.LastUpdate(); last != nil && int64(last.NodesAdded) != want {
					select {
					case errs <- "snapshot last-update summary from another epoch":
					default:
					}
					return
				}
				_ = sumFor
			}
		}()
	}
	for epoch := int64(1); epoch <= 200; epoch++ {
		g := resA.Graph
		if epoch%2 == 1 {
			g = resB.Graph
		}
		eng.Swap(g, epoch, &UpdateSummary{Epoch: epoch, NodesAdded: int(countFor[epoch%2])})
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if got := eng.Epoch(); got != 200 {
		t.Fatalf("final epoch %d, want 200", got)
	}
}

// TestUpdateWithNoOp: a fn returning a nil graph must not swap — same
// snapshot pointer, same epoch — while a returned graph swaps and bumps
// the epoch. Stats must be recomputed for the new snapshot.
func TestUpdateWithNoOp(t *testing.T) {
	eng, resA, resB := twoGraphs(t)
	defer eng.Close()
	before := eng.Snapshot()
	statsBefore := eng.Stats()
	if statsBefore.Nodes != resA.Graph.NodeCount() {
		t.Fatalf("baseline stats %d nodes, want %d", statsBefore.Nodes, resA.Graph.NodeCount())
	}

	swapped, err := eng.UpdateWith(func(old graph.Source) (*graph.Graph, int64, *UpdateSummary, error) {
		if old.NodeCount() != resA.Graph.NodeCount() {
			t.Errorf("fn saw stale graph")
		}
		return nil, 0, nil, nil
	})
	if err != nil || swapped {
		t.Fatalf("no-op UpdateWith: swapped=%v err=%v", swapped, err)
	}
	if eng.Snapshot() != before {
		t.Fatal("no-op update replaced the snapshot")
	}

	swapped, err = eng.UpdateWith(func(old graph.Source) (*graph.Graph, int64, *UpdateSummary, error) {
		return resB.Graph, 1, &UpdateSummary{Epoch: 1}, nil
	})
	if err != nil || !swapped {
		t.Fatalf("applied UpdateWith: swapped=%v err=%v", swapped, err)
	}
	if got := eng.Epoch(); got != 1 {
		t.Fatalf("epoch %d after swap, want 1", got)
	}
	if got := eng.Stats().Nodes; got != resB.Graph.NodeCount() {
		t.Fatalf("stats cache not invalidated on swap: %d nodes, want %d", got, resB.Graph.NodeCount())
	}
	// The pinned pre-swap snapshot still answers for the old graph.
	if got := before.Stats().Nodes; got != resA.Graph.NodeCount() {
		t.Fatalf("pinned snapshot stats changed after swap: %d", got)
	}
	if got := before.Epoch(); got != 0 {
		t.Fatalf("pinned snapshot epoch changed: %d", got)
	}
}

// TestStatsCachedPerSnapshot: repeated Stats on one snapshot returns
// the same computed metrics without drifting, and SetEpoch preserves
// the cache (it shares, not copies, the compute-once cell).
func TestStatsCachedPerSnapshot(t *testing.T) {
	eng, resA, _ := twoGraphs(t)
	defer eng.Close()
	snap := eng.Snapshot()
	a := snap.Stats()
	eng.SetEpoch(7, &UpdateSummary{Epoch: 7})
	b := eng.Snapshot().Stats()
	if a.Nodes != b.Nodes || a.Edges != b.Edges {
		t.Fatalf("SetEpoch changed stats: %+v vs %+v", a, b)
	}
	if a.Nodes != resA.Graph.NodeCount() {
		t.Fatalf("stats nodes %d, want %d", a.Nodes, resA.Graph.NodeCount())
	}
	if got := eng.Epoch(); got != 7 {
		t.Fatalf("SetEpoch: epoch %d, want 7", got)
	}
	if last := eng.LastUpdate(); last == nil || last.Epoch != 7 {
		t.Fatalf("SetEpoch: last update %+v", last)
	}
}
