package shard

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/model"
	"frappe/internal/store"
)

// buildGraph makes a deterministic pseudo-random graph shaped like an
// extraction: directories of files containing functions, with calls
// crossing subsystem boundaries (guaranteeing cut edges).
func buildGraph(seed int64, files, funcsPerFile, calls int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	var fns []graph.NodeID
	for f := 0; f < files; f++ {
		dir := fmt.Sprintf("sub%d/mod%d", f%3, f%5)
		file := g.AddNode(model.NodeFile, graph.Props{}.
			Set(model.PropName, graph.Str(fmt.Sprintf("%s/file%d.c", dir, f))).
			Set("FILE_ID", graph.Int(int64(f))))
		for k := 0; k < funcsPerFile; k++ {
			fn := g.AddNode(model.NodeFunction, graph.Props{}.
				Set(model.PropShortName, graph.Str(fmt.Sprintf("fn_%d_%d", f, k))).
				Set(model.PropName, graph.Str(fmt.Sprintf("fn_%d_%d()", f, k))))
			g.AddEdge(file, fn, model.EdgeFileContains, graph.Props{}.
				Set(model.PropNameStartLine, graph.Int(int64(10*k+1))))
			fns = append(fns, fn)
		}
	}
	for c := 0; c < calls; c++ {
		a := fns[rng.Intn(len(fns))]
		b := fns[rng.Intn(len(fns))]
		g.AddEdge(a, b, model.EdgeCalls, nil)
	}
	return g
}

func openRoundTrip(t *testing.T, g *graph.Graph, n int) *Set {
	t.Helper()
	dir := t.TempDir()
	p := Split(g, n)
	if err := Write(dir, p); err != nil {
		t.Fatalf("Write: %v", err)
	}
	s, err := Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestCompositeRoundTrip proves the composite source is byte-identical
// to the original graph: every node, edge, adjacency list, and index
// lookup.
func TestCompositeRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			g := buildGraph(42, 12, 4, 120)
			s := openRoundTrip(t, g, n)

			if s.NodeCount() != g.NodeCount() || s.EdgeCount() != g.EdgeCount() {
				t.Fatalf("counts: got (%d,%d) want (%d,%d)", s.NodeCount(), s.EdgeCount(), g.NodeCount(), g.EdgeCount())
			}
			for id := graph.NodeID(0); id < graph.NodeID(g.NodeCount()); id++ {
				if s.NodeType(id) != g.NodeType(id) {
					t.Fatalf("node %d type: got %s want %s", id, s.NodeType(id), g.NodeType(id))
				}
				want := g.NodeProps(id)
				got := s.NodeProps(id)
				if len(got) != len(want) {
					t.Fatalf("node %d props: got %d want %d", id, len(got), len(want))
				}
				for _, p := range want {
					gv, ok := s.NodeProp(id, p.Key)
					if !ok || gv.String() != p.Val.String() {
						t.Fatalf("node %d prop %s: got %v,%v want %v", id, p.Key, gv, ok, p.Val)
					}
				}
				if !equalEdges(s.Out(id), g.Out(id)) {
					t.Fatalf("node %d out: got %v want %v", id, s.Out(id), g.Out(id))
				}
				if !equalEdges(s.In(id), g.In(id)) {
					t.Fatalf("node %d in: got %v want %v", id, s.In(id), g.In(id))
				}
			}
			for id := graph.EdgeID(0); id < graph.EdgeID(g.EdgeCount()); id++ {
				gf, gt, gtyp := g.EdgeEnds(id)
				sf, st, styp := s.EdgeEnds(id)
				if gf != sf || gt != st || gtyp != styp {
					t.Fatalf("edge %d: got (%d,%d,%s) want (%d,%d,%s)", id, sf, st, styp, gf, gt, gtyp)
				}
				want := g.EdgeProps(id)
				for _, p := range want {
					gv, ok := s.EdgeProp(id, p.Key)
					if !ok || gv.String() != p.Val.String() {
						t.Fatalf("edge %d prop %s: got %v,%v want %v", id, p.Key, gv, ok, p.Val)
					}
				}
			}
			for _, q := range []string{
				"short_name: fn_0_0",
				"type: \"function\"",
				"type: \"file\"",
				"name: \"fn_3_1()\"",
			} {
				want, werr := g.Lookup(q)
				got, gerr := s.Lookup(q)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("Lookup(%q) err: got %v want %v", q, gerr, werr)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("Lookup(%q): got %v want %v", q, got, want)
				}
			}
		})
	}
}

func equalEdges(a, b []graph.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSplitDeterministic: same input, same shard count, same partition.
func TestSplitDeterministic(t *testing.T) {
	g := buildGraph(7, 8, 3, 60)
	a := Split(g, 4)
	b := Split(g, 4)
	for i := range a.NodeOwner {
		if a.NodeOwner[i] != b.NodeOwner[i] {
			t.Fatalf("node %d: owner %d vs %d", i, a.NodeOwner[i], b.NodeOwner[i])
		}
	}
}

// TestSubsystemCohesion: nodes of the same subsystem directory land on
// the same shard.
func TestSubsystemCohesion(t *testing.T) {
	g := buildGraph(7, 9, 2, 0)
	p := Split(g, 5)
	bySubsystem := map[string]uint16{}
	for id := graph.NodeID(0); id < graph.NodeID(g.NodeCount()); id++ {
		key, ok := subsystemKey(g, id)
		if !ok {
			continue
		}
		if o, seen := bySubsystem[key]; seen && o != p.NodeOwner[id] {
			t.Fatalf("subsystem %q split across shards %d and %d", key, o, p.NodeOwner[id])
		} else if !seen {
			bySubsystem[key] = p.NodeOwner[id]
		}
	}
	if len(bySubsystem) < 2 {
		t.Fatalf("fixture produced %d subsystems, want several", len(bySubsystem))
	}
}

// TestDegradedShard corrupts one shard's node store and checks that
// reads inside healthy shards keep answering while reads touching the
// corrupt shard fail with a corruption-class panic.
func TestDegradedShard(t *testing.T) {
	g := buildGraph(11, 12, 4, 80)
	dir := t.TempDir()
	p := Split(g, 3)
	if err := Write(dir, p); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Flip a byte mid-way through shard 0's node store.
	victim := filepath.Join(dir, ShardDir(0), store.NodeFile)
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Skip("shard 0 empty in this partition")
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("Open on a page-corrupt shard must succeed (degraded), got %v", err)
	}
	defer s.Close()

	healthy, corrupt := 0, 0
	for id := graph.NodeID(0); id < graph.NodeID(g.NodeCount()); id++ {
		id := id
		func() {
			defer func() {
				if r := recover(); r != nil {
					corrupt++
				}
			}()
			if s.NodeType(id) == g.NodeType(id) {
				healthy++
			}
		}()
	}
	if healthy == 0 {
		t.Fatal("no healthy reads on a 3-shard store with one corrupt shard")
	}
	if corrupt == 0 {
		t.Fatal("corrupt shard reads did not fail")
	}
	if !s.Degraded() {
		t.Fatal("Set.Degraded() = false with a corrupt shard")
	}
}
