// Package shard splits a Frappé graph into N self-contained store
// shards plus a cut-edge table, and serves the union back through a
// composite graph.Source that preserves global node/edge IDs exactly.
//
// Partitioning is by subsystem directory: every node is assigned to the
// shard owning its defining file's directory (first two path segments,
// the kernel's subsystem granularity), with a stable FNV-1a hash as the
// fallback for nodes with no file. Edges whose endpoints land in the
// same shard become that shard's internal edges; edges crossing shards
// go to the cut-edge table, stored as one more (tiny) store directory so
// the existing writer, checksums, and verify machinery cover it too.
//
// The invariant everything else builds on: local IDs within a shard are
// assigned in ascending global-ID order, so every local→global map is
// monotone. Lookup results, adjacency lists, and scan order over the
// composite are therefore byte-identical to the unsharded graph, which
// is what lets the coordinator prove scatter-gather answers equal the
// single-engine ones.
package shard

import (
	"hash/fnv"
	"strings"

	"frappe/internal/graph"
	"frappe/internal/model"
)

// CutOwner marks an edge owned by the cut-edge table rather than a
// shard (its endpoints live in different shards).
const CutOwner = 0xFFFF

// MaxShards bounds the shard count so owners fit a uint16 with room for
// the CutOwner sentinel.
const MaxShards = 1024

// Partition is the result of splitting one graph: per-shard subgraphs,
// the cut-edge graph, and the ownership tables that reconstruct global
// IDs.
type Partition struct {
	N      int
	Shards []*graph.Graph
	// Cut holds one node stub per cut-edge endpoint (ascending global
	// order, no properties — node data lives in the owning shard) and
	// every cross-shard edge with its full properties, in ascending
	// global edge order.
	Cut *graph.Graph
	// CutNodes maps cut-store local node IDs to global IDs (ascending).
	CutNodes []graph.NodeID
	// NodeOwner[g] is the shard owning global node g.
	NodeOwner []uint16
	// EdgeOwner[g] is the shard owning global edge g, or CutOwner.
	EdgeOwner []uint16
}

// Split partitions src into n shards. n is clamped to [1, MaxShards].
// Deterministic: the same source and n always produce the same
// partition.
func Split(src graph.Source, n int) *Partition {
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	nodes := src.NodeCount()
	edges := src.EdgeCount()
	p := &Partition{
		N:         n,
		Shards:    make([]*graph.Graph, n),
		Cut:       graph.New(),
		NodeOwner: make([]uint16, nodes),
		EdgeOwner: make([]uint16, edges),
	}
	for i := range p.Shards {
		p.Shards[i] = graph.New()
	}

	// Pass 1: assign nodes. A file node's key is its own directory;
	// other nodes inherit their defining file's directory through the
	// incoming file_contains edge; nodes with neither hash their name
	// (or ID) directly. Assignment happens in global order so each
	// shard's local IDs ascend with global IDs.
	local := make([]graph.NodeID, nodes) // global -> local within owner
	for id := graph.NodeID(0); id < graph.NodeID(nodes); id++ {
		o := uint16(ownerOf(src, id, n))
		p.NodeOwner[id] = o
		local[id] = p.Shards[o].AddNode(src.NodeType(id), src.NodeProps(id))
	}

	// Pass 2: place edges. Internal edges are added immediately (global
	// order in, ascending local order out); cut edges are collected
	// first because the cut store needs its endpoint stubs added in
	// ascending global-node order before any edge can reference them.
	var cutEdges []graph.EdgeID
	cutEndpoint := map[graph.NodeID]bool{}
	for id := graph.EdgeID(0); id < graph.EdgeID(edges); id++ {
		from, to, typ := src.EdgeEnds(id)
		if of, ot := p.NodeOwner[from], p.NodeOwner[to]; of == ot {
			p.EdgeOwner[id] = of
			p.Shards[of].AddEdge(local[from], local[to], typ, src.EdgeProps(id))
		} else {
			p.EdgeOwner[id] = CutOwner
			cutEdges = append(cutEdges, id)
			cutEndpoint[from] = true
			cutEndpoint[to] = true
		}
	}
	p.CutNodes = make([]graph.NodeID, 0, len(cutEndpoint))
	for id := graph.NodeID(0); id < graph.NodeID(nodes); id++ {
		if cutEndpoint[id] {
			p.CutNodes = append(p.CutNodes, id)
		}
	}
	cutLocal := make(map[graph.NodeID]graph.NodeID, len(p.CutNodes))
	for i, gid := range p.CutNodes {
		cutLocal[gid] = graph.NodeID(i)
		p.Cut.AddNode(src.NodeType(gid), nil)
	}
	for _, id := range cutEdges {
		from, to, typ := src.EdgeEnds(id)
		p.Cut.AddEdge(cutLocal[from], cutLocal[to], typ, src.EdgeProps(id))
	}
	return p
}

// ownerOf picks the shard for one node.
func ownerOf(src graph.Source, id graph.NodeID, n int) int {
	if key, ok := subsystemKey(src, id); ok {
		return hashMod(key, n)
	}
	// Stable hash fallback: name when present, otherwise the (stable)
	// global ID rendered as bytes.
	if v, ok := src.NodeProp(id, model.PropName); ok && v.Kind() == graph.KindString {
		return hashMod(v.AsString(), n)
	}
	var buf [8]byte
	u := uint64(id)
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	return hashMod(string(buf[:]), n)
}

// subsystemKey returns the subsystem-directory key for a node: the
// first two path segments of its file's directory (e.g. "drivers/net").
func subsystemKey(src graph.Source, id graph.NodeID) (string, bool) {
	if src.NodeType(id) == model.NodeFile {
		if v, ok := src.NodeProp(id, model.PropName); ok && v.Kind() == graph.KindString {
			return subsystemOf(v.AsString()), true
		}
		return "", false
	}
	// The defining file is the source of the incoming file_contains
	// edge (the same resolution Snapshot.Symbol uses).
	for _, eid := range src.In(id) {
		from, _, t := src.EdgeEnds(eid)
		if t != model.EdgeFileContains {
			continue
		}
		if v, ok := src.NodeProp(from, model.PropName); ok && v.Kind() == graph.KindString {
			return subsystemOf(v.AsString()), true
		}
	}
	return "", false
}

// subsystemOf maps a file path to its subsystem key: the directory part
// truncated to its first two segments ("drivers/net/e1000/x.c" →
// "drivers/net").
func subsystemOf(path string) string {
	dir := path
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		dir = dir[:i]
	} else {
		dir = ""
	}
	dir = strings.TrimPrefix(dir, "/")
	segs := strings.SplitN(dir, "/", 3)
	if len(segs) > 2 {
		return segs[0] + "/" + segs[1]
	}
	return dir
}

func hashMod(s string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(s))
	return int(h.Sum32() % uint32(n))
}
