package shard

import (
	"fmt"
	"sort"

	"frappe/internal/atomicfile"
	"frappe/internal/graph"
	"frappe/internal/model"
	"frappe/internal/store"
)

// Set is an opened sharded store: one store.DB per shard plus the cut
// store, served through a composite graph.Source that reconstructs the
// original global ID space exactly — node and edge IDs, adjacency
// order, and Lookup order are byte-identical to the unsharded graph.
//
// Degradation is per shard: a shard whose store cannot be opened (or
// whose adjacency chains are unreadable) is marked down, and reads
// touching its nodes panic with an error wrapping store.ErrCorrupt —
// the same idiom the store uses for quarantined pages — while reads
// confined to healthy shards keep answering.
type Set struct {
	Dir string

	dbs []*store.DB // per shard; nil when the shard failed to open
	cut *store.DB   // nil when the cut store failed to open

	nodeOwner []uint16
	nodeLocal []graph.NodeID
	edgeOwner []uint16
	edgeLocal []graph.EdgeID // local edge id, or cut ordinal for cut edges

	shardNodes [][]graph.NodeID // shard local node -> global (monotone)
	cutNodes   []graph.NodeID
	cutEnds    [][2]graph.NodeID
	cutTypes   []model.EdgeType // preloaded; nil when cut store is down
	cutEdges   []graph.EdgeID   // cut ordinal -> global edge id

	out, in [][]graph.EdgeID // merged global adjacency

	down    []bool // shard store unusable (open failure or count mismatch)
	adjDown []bool // shard adjacency chains unreadable
	cutDown bool
}

// Open opens the sharded store in dir, first running crash recovery on
// the root commit (which covers every shard subdirectory — commits are
// only ever made at the root). Individual shards failing to open do not
// fail the Set: they are marked down and served degraded.
func Open(dir string, opt store.Options) (*Set, error) {
	if _, err := atomicfile.Recover(dir); err != nil {
		return nil, fmt.Errorf("shard: recovering %s: %w", dir, err)
	}
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	sm, err := loadMap(dir)
	if err != nil {
		return nil, err
	}
	if sm.shards != m.Shards || len(sm.nodeOwner) != int(m.Nodes) || len(sm.edgeOwner) != int(m.Edges) {
		return nil, fmt.Errorf("shard: %s and %s disagree", ManifestFile, MapFile)
	}
	s := &Set{
		Dir:       dir,
		dbs:       make([]*store.DB, m.Shards),
		nodeOwner: sm.nodeOwner,
		edgeOwner: sm.edgeOwner,
		cutNodes:  sm.cutNodes,
		cutEnds:   sm.cutEnds,
		down:      make([]bool, m.Shards),
		adjDown:   make([]bool, m.Shards),
	}

	// Derive the per-shard local↔global tables from the ownership
	// arrays: locals were assigned in ascending global order, so simply
	// appending in global order reproduces them.
	s.shardNodes = make([][]graph.NodeID, m.Shards)
	s.nodeLocal = make([]graph.NodeID, len(sm.nodeOwner))
	for gid, o := range sm.nodeOwner {
		s.nodeLocal[gid] = graph.NodeID(len(s.shardNodes[o]))
		s.shardNodes[o] = append(s.shardNodes[o], graph.NodeID(gid))
	}
	shardEdges := make([][]graph.EdgeID, m.Shards)
	s.edgeLocal = make([]graph.EdgeID, len(sm.edgeOwner))
	for gid, o := range sm.edgeOwner {
		if o == CutOwner {
			s.edgeLocal[gid] = graph.EdgeID(len(s.cutEdges))
			s.cutEdges = append(s.cutEdges, graph.EdgeID(gid))
			continue
		}
		s.edgeLocal[gid] = graph.EdgeID(len(shardEdges[o]))
		shardEdges[o] = append(shardEdges[o], graph.EdgeID(gid))
	}
	if len(s.cutEdges) != len(sm.cutEnds) {
		s.Close()
		return nil, fmt.Errorf("shard: %s: %d cut edges in owner table, %d endpoint pairs", MapFile, len(s.cutEdges), len(sm.cutEnds))
	}

	for i := 0; i < m.Shards; i++ {
		db, err := store.OpenOptions(shardPath(dir, i), opt)
		if err != nil {
			s.down[i], s.adjDown[i] = true, true
			continue
		}
		if db.NodeCount() != int64(len(s.shardNodes[i])) || db.EdgeCount() != int64(len(shardEdges[i])) {
			db.Close()
			s.down[i], s.adjDown[i] = true, true
			continue
		}
		s.dbs[i] = db
	}
	if cut, err := store.OpenOptions(shardPath(dir, -1), opt); err != nil || cut.EdgeCount() != int64(len(s.cutEdges)) {
		if err == nil {
			cut.Close()
		}
		s.cutDown = true
	} else {
		s.cut = cut
		s.cutTypes = preloadCutTypes(cut)
		if s.cutTypes == nil {
			s.cutDown = true
		}
	}

	s.buildAdjacency(shardEdges)
	return s, nil
}

func shardPath(dir string, i int) string {
	if i < 0 {
		return dir + "/" + CutDir
	}
	return dir + "/" + ShardDir(i)
}

// preloadCutTypes reads every cut edge's type once at open so the hot
// EdgeEnds path never touches the cut store. Returns nil when the cut
// store's relationship records are unreadable.
func preloadCutTypes(cut *store.DB) (types []model.EdgeType) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(error); !ok {
				panic(r)
			}
			types = nil
		}
	}()
	n := cut.EdgeCount()
	types = make([]model.EdgeType, n)
	for id := graph.EdgeID(0); id < graph.EdgeID(n); id++ {
		_, _, types[id] = cut.EdgeEnds(id)
	}
	return types
}

// buildAdjacency precomputes the merged global out/in lists: each
// shard's internal chains (remapped to global IDs) merged with the cut
// edges from the sidecar. Both inputs ascend in global edge order, so a
// two-list merge per node reproduces the original insertion order. A
// shard whose chains are unreadable is marked adjDown; only its own
// nodes lose adjacency (internal edges connect same-shard nodes).
func (s *Set) buildAdjacency(shardEdges [][]graph.EdgeID) {
	n := len(s.nodeOwner)
	s.out = make([][]graph.EdgeID, n)
	s.in = make([][]graph.EdgeID, n)
	for i, db := range s.dbs {
		if db == nil {
			continue
		}
		if !s.scanShardAdjacency(i, db, shardEdges[i]) {
			s.adjDown[i] = true
		}
	}
	// Cut edges, ascending in global edge order: append-and-merge into
	// each endpoint's lists.
	for k, ends := range s.cutEnds {
		gid := s.cutEdges[k]
		s.out[ends[0]] = mergeInto(s.out[ends[0]], gid)
		s.in[ends[1]] = mergeInto(s.in[ends[1]], gid)
	}
}

// scanShardAdjacency walks one shard's relationship chains, reporting
// false when a corruption-class panic interrupts the scan.
func (s *Set) scanShardAdjacency(i int, db *store.DB, edges []graph.EdgeID) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isErr := r.(error); !isErr {
				panic(r)
			}
			ok = false
		}
	}()
	for j, gid := range s.shardNodes[i] {
		lj := graph.NodeID(j)
		if lo := db.Out(lj); len(lo) > 0 {
			go2 := make([]graph.EdgeID, len(lo))
			for k, le := range lo {
				go2[k] = edges[le]
			}
			s.out[gid] = go2
		}
		if li := db.In(lj); len(li) > 0 {
			gi := make([]graph.EdgeID, len(li))
			for k, le := range li {
				gi[k] = edges[le]
			}
			s.in[gid] = gi
		}
	}
	return true
}

// mergeInto inserts gid into list keeping ascending order. Cut edges
// arrive in ascending order themselves, so the insertion point is
// almost always the tail; the backward scan handles interleaving with
// shard-internal edges.
func mergeInto(list []graph.EdgeID, gid graph.EdgeID) []graph.EdgeID {
	i := len(list)
	for i > 0 && list[i-1] > gid {
		i--
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = gid
	return list
}

// corruptShard panics with the store's degraded-read idiom: an error
// wrapping store.ErrCorrupt, converted to a query abort by the
// executor's recover.
func corruptShard(what string, i int) {
	panic(fmt.Errorf("shard: %s %d unavailable: %w", what, i, store.ErrCorrupt))
}

func (s *Set) nodeDB(id graph.NodeID) (*store.DB, graph.NodeID) {
	o := s.nodeOwner[id]
	db := s.dbs[o]
	if db == nil {
		corruptShard("shard", int(o))
	}
	return db, s.nodeLocal[id]
}

// --- graph.Source ---

func (s *Set) NodeCount() int64 { return int64(len(s.nodeOwner)) }
func (s *Set) EdgeCount() int64 { return int64(len(s.edgeOwner)) }

func (s *Set) NodeType(id graph.NodeID) model.NodeType {
	db, l := s.nodeDB(id)
	return db.NodeType(l)
}

func (s *Set) NodeHasLabel(id graph.NodeID, label string) bool {
	db, l := s.nodeDB(id)
	return db.NodeHasLabel(l, label)
}

func (s *Set) NodeProp(id graph.NodeID, key string) (graph.Value, bool) {
	db, l := s.nodeDB(id)
	return db.NodeProp(l, key)
}

func (s *Set) NodeProps(id graph.NodeID) graph.Props {
	db, l := s.nodeDB(id)
	return db.NodeProps(l)
}

func (s *Set) EdgeEnds(id graph.EdgeID) (graph.NodeID, graph.NodeID, model.EdgeType) {
	o := s.edgeOwner[id]
	if o == CutOwner {
		k := s.edgeLocal[id]
		if s.cutTypes == nil {
			corruptShard("cut store", 0)
		}
		return s.cutEnds[k][0], s.cutEnds[k][1], s.cutTypes[k]
	}
	db := s.dbs[o]
	if db == nil {
		corruptShard("shard", int(o))
	}
	lf, lt, typ := db.EdgeEnds(s.edgeLocal[id])
	return s.shardNodes[o][lf], s.shardNodes[o][lt], typ
}

func (s *Set) EdgeProp(id graph.EdgeID, key string) (graph.Value, bool) {
	o := s.edgeOwner[id]
	if o == CutOwner {
		if s.cut == nil {
			corruptShard("cut store", 0)
		}
		return s.cut.EdgeProp(s.edgeLocal[id], key)
	}
	db := s.dbs[o]
	if db == nil {
		corruptShard("shard", int(o))
	}
	return db.EdgeProp(s.edgeLocal[id], key)
}

func (s *Set) EdgeProps(id graph.EdgeID) graph.Props {
	o := s.edgeOwner[id]
	if o == CutOwner {
		if s.cut == nil {
			corruptShard("cut store", 0)
		}
		return s.cut.EdgeProps(s.edgeLocal[id])
	}
	db := s.dbs[o]
	if db == nil {
		corruptShard("shard", int(o))
	}
	return db.EdgeProps(s.edgeLocal[id])
}

func (s *Set) Out(id graph.NodeID) []graph.EdgeID {
	if o := s.nodeOwner[id]; s.adjDown[o] {
		corruptShard("shard", int(o))
	}
	return s.out[id]
}

func (s *Set) In(id graph.NodeID) []graph.EdgeID {
	if o := s.nodeOwner[id]; s.adjDown[o] {
		corruptShard("shard", int(o))
	}
	return s.in[id]
}

// Lookup evaluates the index query against every shard and merges the
// (disjoint, locally ascending) result lists into one ascending global
// list — exactly the order the unsharded index returns. A down shard
// makes index coverage incomplete, so the read fails rather than
// silently dropping its rows.
func (s *Set) Lookup(q string) ([]graph.NodeID, error) {
	var out []graph.NodeID
	for i, db := range s.dbs {
		if db == nil {
			corruptShard("shard", i)
		}
		ids, err := db.Lookup(q)
		if err != nil {
			return nil, err
		}
		for _, l := range ids {
			out = append(out, s.shardNodes[i][l])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// --- management ---

// Shards reports the shard count.
func (s *Set) Shards() int { return len(s.dbs) }

// Owner reports which shard owns a global node ID.
func (s *Set) Owner(id graph.NodeID) int { return int(s.nodeOwner[id]) }

// Down lists the shards currently unusable (open failure or unreadable
// adjacency); -1 stands for the cut store.
func (s *Set) DownShards() []int {
	var out []int
	for i := range s.dbs {
		if s.down[i] || s.adjDown[i] {
			out = append(out, i)
		}
	}
	if s.cutDown {
		out = append(out, -1)
	}
	return out
}

// Degraded reports whether any shard is down or serving with
// quarantined pages.
func (s *Set) Degraded() bool {
	if s.cutDown || (s.cut != nil && s.cut.Degraded()) {
		return true
	}
	for i, db := range s.dbs {
		if s.down[i] || s.adjDown[i] {
			return true
		}
		if db != nil && db.Degraded() {
			return true
		}
	}
	return false
}

// QuarantinedPages aggregates per-shard quarantine lists, keyed by
// "shard-NNN/<file>" (and "cutstore/<file>").
func (s *Set) QuarantinedPages() map[string][]int64 {
	out := map[string][]int64{}
	add := func(prefix string, db *store.DB) {
		if db == nil {
			return
		}
		for f, pages := range db.QuarantinedPages() {
			out[prefix+"/"+f] = pages
		}
	}
	for i, db := range s.dbs {
		add(ShardDir(i), db)
	}
	add(CutDir, s.cut)
	return out
}

// Heal retries every quarantined page across all shards.
func (s *Set) Heal() (healed, remaining int) {
	for _, db := range s.dbs {
		if db == nil {
			continue
		}
		h, r := db.Heal()
		healed += h
		remaining += r
	}
	if s.cut != nil {
		h, r := s.cut.Heal()
		healed += h
		remaining += r
	}
	return healed, remaining
}

// DropCaches empties every shard's page caches.
func (s *Set) DropCaches() {
	for _, db := range s.dbs {
		if db != nil {
			db.DropCaches()
		}
	}
	if s.cut != nil {
		s.cut.DropCaches()
	}
}

// Close closes every shard store.
func (s *Set) Close() error {
	var first error
	for _, db := range s.dbs {
		if db == nil {
			continue
		}
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.cut != nil {
		if err := s.cut.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
