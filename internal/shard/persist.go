package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"frappe/internal/atomicfile"
	"frappe/internal/graph"
	"frappe/internal/store"
)

// Layout of a sharded store directory:
//
//	shards.json      manifest: shard count + totals (presence marks the
//	                 directory as sharded)
//	shardmap.bin     node/edge ownership tables, cut-edge endpoints, and
//	                 the cut-node ID list, CRC-protected
//	shard-NNN/       one self-contained store per shard
//	cutstore/        the cut-edge table, itself a store directory
//
// Everything is staged into ONE atomicfile commit at the root, so a
// crash can never leave shards at mixed epochs.
const (
	ManifestFile = "shards.json"
	MapFile      = "shardmap.bin"
	CutDir       = "cutstore"
)

const (
	mapMagic   = 0x4653484D // "FSHM"
	mapVersion = 1
)

// ShardDir names shard i's store subdirectory.
func ShardDir(i int) string { return fmt.Sprintf("shard-%03d", i) }

// Manifest is the JSON layout of shards.json.
type Manifest struct {
	Version  int   `json:"version"`
	Shards   int   `json:"shards"`
	Nodes    int64 `json:"nodes"`
	Edges    int64 `json:"edges"`
	CutEdges int64 `json:"cutEdges"`
}

// IsSharded reports whether dir holds a sharded store (shards.json
// present).
func IsSharded(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, ManifestFile))
	return err == nil
}

// LoadManifest reads dir's shards.json.
func LoadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("shard: %s: %w", ManifestFile, err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("shard: %s: unsupported version %d", ManifestFile, m.Version)
	}
	return &m, nil
}

// Stage writes the whole sharded layout — every shard store, the cut
// store, the ownership map, and the manifest — into an open commit
// without publishing it, so callers can bundle delta session state and
// a journal record into the same atomic unit.
func (p *Partition) Stage(c *atomicfile.Commit) error {
	for i, sg := range p.Shards {
		if err := store.StageSub(c, ShardDir(i), sg); err != nil {
			return err
		}
	}
	if err := store.StageSub(c, CutDir, p.Cut); err != nil {
		return err
	}
	src, _ := p.cutEnds()
	if err := c.WriteFile(MapFile, encodeMap(p, src)); err != nil {
		return err
	}
	m := Manifest{
		Version:  1,
		Shards:   p.N,
		Nodes:    int64(len(p.NodeOwner)),
		Edges:    int64(len(p.EdgeOwner)),
		CutEdges: p.Cut.EdgeCount(),
	}
	mb, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return c.WriteFile(ManifestFile, append(mb, '\n'))
}

// cutEnds returns the global (from, to) endpoint pairs of every cut
// edge in ascending global edge order, plus the count.
func (p *Partition) cutEnds() ([][2]graph.NodeID, int) {
	n := int(p.Cut.EdgeCount())
	out := make([][2]graph.NodeID, 0, n)
	for id := graph.EdgeID(0); id < graph.EdgeID(n); id++ {
		from, to, _ := p.Cut.EdgeEnds(id)
		out = append(out, [2]graph.NodeID{p.CutNodes[from], p.CutNodes[to]})
	}
	return out, n
}

// Write persists a partition into dir as one crash-consistent commit.
func Write(dir string, p *Partition) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c, err := atomicfile.NewCommit(dir)
	if err != nil {
		return err
	}
	defer c.Abort()
	if err := p.Stage(c); err != nil {
		return err
	}
	return c.Publish()
}

// shardMap is the decoded shardmap.bin: everything the composite needs
// that is not derivable from the shard stores themselves.
type shardMap struct {
	shards    int
	nodeOwner []uint16
	edgeOwner []uint16
	cutNodes  []graph.NodeID    // cut-store local node -> global, ascending
	cutEnds   [][2]graph.NodeID // per cut edge: global (from, to)
}

// encodeMap serialises the ownership tables. Layout (little-endian):
//
//	magic u32 | version u32 | shards u32 | nodes u64 | edges u64 |
//	cutNodes u64 | cutEdges u64 |
//	nodeOwner u16 × nodes | edgeOwner u16 × edges |
//	cutNode u64 × cutNodes | (from u64, to u64) × cutEdges |
//	crc32c u32  (over everything before it)
func encodeMap(p *Partition, cutEnds [][2]graph.NodeID) []byte {
	nodes, edges := len(p.NodeOwner), len(p.EdgeOwner)
	size := 4 + 4 + 4 + 8 + 8 + 8 + 8 + 2*nodes + 2*edges + 8*len(p.CutNodes) + 16*len(cutEnds) + 4
	buf := make([]byte, size)
	off := 0
	pu32 := func(v uint32) { binary.LittleEndian.PutUint32(buf[off:], v); off += 4 }
	pu64 := func(v uint64) { binary.LittleEndian.PutUint64(buf[off:], v); off += 8 }
	pu32(mapMagic)
	pu32(mapVersion)
	pu32(uint32(p.N))
	pu64(uint64(nodes))
	pu64(uint64(edges))
	pu64(uint64(len(p.CutNodes)))
	pu64(uint64(len(cutEnds)))
	for _, o := range p.NodeOwner {
		binary.LittleEndian.PutUint16(buf[off:], o)
		off += 2
	}
	for _, o := range p.EdgeOwner {
		binary.LittleEndian.PutUint16(buf[off:], o)
		off += 2
	}
	for _, id := range p.CutNodes {
		pu64(uint64(id))
	}
	for _, e := range cutEnds {
		pu64(uint64(e[0]))
		pu64(uint64(e[1]))
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.Checksum(buf[:off], crcTable))
	return buf
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// loadMap reads and checks dir's shardmap.bin.
func loadMap(dir string) (*shardMap, error) {
	buf, err := os.ReadFile(filepath.Join(dir, MapFile))
	if err != nil {
		return nil, err
	}
	if len(buf) < 48 {
		return nil, fmt.Errorf("shard: %s: truncated (%d bytes)", MapFile, len(buf))
	}
	if got, want := crc32.Checksum(buf[:len(buf)-4], crcTable), binary.LittleEndian.Uint32(buf[len(buf)-4:]); got != want {
		return nil, fmt.Errorf("shard: %s: checksum mismatch (computed %08x, recorded %08x)", MapFile, got, want)
	}
	off := 0
	gu32 := func() uint32 { v := binary.LittleEndian.Uint32(buf[off:]); off += 4; return v }
	gu64 := func() uint64 { v := binary.LittleEndian.Uint64(buf[off:]); off += 8; return v }
	if m := gu32(); m != mapMagic {
		return nil, fmt.Errorf("shard: %s: bad magic %08x", MapFile, m)
	}
	if v := gu32(); v != mapVersion {
		return nil, fmt.Errorf("shard: %s: unsupported version %d", MapFile, v)
	}
	sm := &shardMap{shards: int(gu32())}
	nodes, edges := int(gu64()), int(gu64())
	cutN, cutE := int(gu64()), int(gu64())
	want := off + 2*nodes + 2*edges + 8*cutN + 16*cutE + 4
	if len(buf) != want {
		return nil, fmt.Errorf("shard: %s: %d bytes, header implies %d", MapFile, len(buf), want)
	}
	sm.nodeOwner = make([]uint16, nodes)
	for i := range sm.nodeOwner {
		sm.nodeOwner[i] = binary.LittleEndian.Uint16(buf[off:])
		off += 2
	}
	sm.edgeOwner = make([]uint16, edges)
	for i := range sm.edgeOwner {
		sm.edgeOwner[i] = binary.LittleEndian.Uint16(buf[off:])
		off += 2
	}
	sm.cutNodes = make([]graph.NodeID, cutN)
	for i := range sm.cutNodes {
		sm.cutNodes[i] = graph.NodeID(gu64())
	}
	sm.cutEnds = make([][2]graph.NodeID, cutE)
	for i := range sm.cutEnds {
		sm.cutEnds[i][0] = graph.NodeID(gu64())
		sm.cutEnds[i][1] = graph.NodeID(gu64())
	}
	return sm, nil
}
