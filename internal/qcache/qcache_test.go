package qcache

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/query"
)

// fakeResult builds a result table whose EstimateSize scales with rows
// and payload length, so eviction tests can steer the byte budget.
func fakeResult(rows int, payload string) *query.Result {
	r := &query.Result{Columns: []string{"v"}}
	for i := 0; i < rows; i++ {
		r.Rows = append(r.Rows, []query.Val{query.ScalarVal(graph.Str(payload))})
	}
	return r
}

func key(epoch int64, text string) Key {
	return Key{Epoch: epoch, Text: text}
}

func TestPlanCacheParsesOnce(t *testing.T) {
	c := New(Config{})
	const text = "START n=node(*) RETURN n"
	q1, err := c.Plan(text)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.Plan(text)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("second Plan did not return the cached pointer")
	}
	st := c.Stats()
	if st.PlanMisses != 1 || st.PlanHits != 1 {
		t.Fatalf("plan hits/misses = %d/%d, want 1/1", st.PlanHits, st.PlanMisses)
	}
}

func TestPlanCacheDoesNotCacheErrors(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 2; i++ {
		if _, err := c.Plan("THIS IS NOT CYPHER"); err == nil {
			t.Fatal("expected parse error")
		}
	}
	st := c.Stats()
	if st.PlanMisses != 2 || st.PlanHits != 0 {
		t.Fatalf("error query cached: hits/misses = %d/%d", st.PlanHits, st.PlanMisses)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := New(Config{MaxPlans: 2})
	texts := []string{
		"START a=node(*) RETURN a",
		"START b=node(*) RETURN b",
		"START c=node(*) RETURN c",
	}
	for _, q := range texts {
		if _, err := c.Plan(q); err != nil {
			t.Fatal(err)
		}
	}
	// texts[0] was evicted; re-planning it must miss again.
	if _, err := c.Plan(texts[0]); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.PlanMisses != 4 {
		t.Fatalf("plan misses = %d, want 4 (LRU eviction of oldest)", st.PlanMisses)
	}
}

func TestDoHitAndMiss(t *testing.T) {
	c := New(Config{})
	k := key(1, "q")
	want := fakeResult(2, "x")
	execs := 0
	exec := func() (*query.Result, error) { execs++; return want, nil }

	res, out, err := c.Do(context.Background(), k, exec)
	if err != nil || res != want || out.Hit || out.Shared {
		t.Fatalf("first Do: res=%p out=%+v err=%v", res, out, err)
	}
	res, out, err = c.Do(context.Background(), k, exec)
	if err != nil || res != want || !out.Hit {
		t.Fatalf("second Do: out=%+v err=%v", out, err)
	}
	if execs != 1 {
		t.Fatalf("exec ran %d times, want 1", execs)
	}
	if hits := c.EntryHits(k); hits != 1 {
		t.Fatalf("EntryHits = %d, want 1", hits)
	}
}

// TestKeyIncludesLimits is the regression test for the limits-poisoning
// bug: a run under tight limits and a run under loose limits are
// different cache entries, in both directions.
func TestKeyIncludesLimits(t *testing.T) {
	c := New(Config{})
	loose := Key{Epoch: 1, Text: "q", Limits: query.Limits{MaxRows: 1000}}
	tight := Key{Epoch: 1, Text: "q", Limits: query.Limits{MaxRows: 1}}

	full := fakeResult(5, "row")
	if _, _, err := c.Do(context.Background(), loose, func() (*query.Result, error) { return full, nil }); err != nil {
		t.Fatal(err)
	}
	// The tight run must NOT see the loose run's cached success; it
	// executes and surfaces its own budget error.
	wantErr := errors.New("budget exceeded")
	_, out, err := c.Do(context.Background(), tight, func() (*query.Result, error) { return nil, wantErr })
	if out.Hit || !errors.Is(err, wantErr) {
		t.Fatalf("tight-limit run served from loose-limit cache: out=%+v err=%v", out, err)
	}
	// And the loose entry is still there, unpoisoned.
	res, out, err := c.Do(context.Background(), loose, func() (*query.Result, error) {
		t.Fatal("loose rerun should have hit")
		return nil, nil
	})
	if err != nil || !out.Hit || len(res.Rows) != 5 {
		t.Fatalf("loose rerun: out=%+v err=%v", out, err)
	}
}

func TestKeyIncludesEpoch(t *testing.T) {
	c := New(Config{})
	execs := 0
	exec := func() (*query.Result, error) { execs++; return fakeResult(1, "x"), nil }
	for _, epoch := range []int64{1, 2, 1} {
		if _, _, err := c.Do(context.Background(), key(epoch, "q"), exec); err != nil {
			t.Fatal(err)
		}
	}
	if execs != 2 {
		t.Fatalf("exec ran %d times, want 2 (epochs 1 and 2; second epoch-1 call hits)", execs)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(Config{})
	k := key(1, "q")
	boom := errors.New("boom")
	execs := 0
	for i := 0; i < 2; i++ {
		_, out, err := c.Do(context.Background(), k, func() (*query.Result, error) { execs++; return nil, boom })
		if !errors.Is(err, boom) || out.Hit {
			t.Fatalf("call %d: out=%+v err=%v", i, out, err)
		}
	}
	if execs != 2 {
		t.Fatalf("failed exec ran %d times, want 2 (errors must not be cached)", execs)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("error left %d cache entries", st.Entries)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	payload := strings.Repeat("x", 1024)
	one := EstimateSize(fakeResult(1, payload))
	c := New(Config{MaxBytes: 3 * one})
	for i := 0; i < 4; i++ {
		k := key(1, fmt.Sprintf("q%d", i))
		if _, _, err := c.Do(context.Background(), k, func() (*query.Result, error) {
			return fakeResult(1, payload), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the byte budget")
	}
	if st.Bytes > 3*one {
		t.Fatalf("cache holds %d bytes, budget %d", st.Bytes, 3*one)
	}
	// The oldest entry (q0) was evicted; the newest is still cached.
	if _, out, _ := c.Do(context.Background(), key(1, "q3"), func() (*query.Result, error) {
		return fakeResult(1, payload), nil
	}); !out.Hit {
		t.Fatal("newest entry evicted instead of oldest")
	}
	if _, out, _ := c.Do(context.Background(), key(1, "q0"), func() (*query.Result, error) {
		return fakeResult(1, payload), nil
	}); out.Hit {
		t.Fatal("oldest entry survived past the byte budget")
	}
}

func TestOversizedResultNotCached(t *testing.T) {
	c := New(Config{MaxBytes: 128})
	k := key(1, "q")
	big := fakeResult(100, strings.Repeat("x", 256))
	execs := 0
	for i := 0; i < 2; i++ {
		if _, _, err := c.Do(context.Background(), k, func() (*query.Result, error) { execs++; return big, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if execs != 2 {
		t.Fatalf("oversized result was cached (exec ran %d times)", execs)
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("oversized result retained: %+v", st)
	}
}

func TestEntryCountEviction(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	for i := 0; i < 3; i++ {
		k := key(1, fmt.Sprintf("q%d", i))
		if _, _, err := c.Do(context.Background(), k, func() (*query.Result, error) {
			return fakeResult(1, "x"), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 2/1", st.Entries, st.Evictions)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{})
	k := key(1, "q")
	execs := 0
	exec := func() (*query.Result, error) { execs++; return fakeResult(1, "x"), nil }
	if _, _, err := c.Do(context.Background(), k, exec); err != nil {
		t.Fatal(err)
	}
	c.Invalidate()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 || st.Invalidations != 1 {
		t.Fatalf("after Invalidate: %+v", st)
	}
	if _, out, err := c.Do(context.Background(), k, exec); err != nil || out.Hit {
		t.Fatalf("post-invalidate Do hit stale entry: out=%+v err=%v", out, err)
	}
	if execs != 2 {
		t.Fatalf("exec ran %d times, want 2", execs)
	}
}

// TestInvalidateDropsInFlightInsert: a leader that finishes after an
// invalidation (snapshot swap mid-query) must not publish its result
// into the fresh cache.
func TestInvalidateDropsInFlightInsert(t *testing.T) {
	c := New(Config{})
	k := key(1, "q")
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.Do(context.Background(), k, func() (*query.Result, error) {
			close(started)
			<-release
			return fakeResult(1, "stale"), nil
		})
	}()
	<-started
	c.Invalidate() // the swap happens while the leader is executing
	close(release)
	<-done
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("stale leader inserted into post-swap cache: %+v", st)
	}
}

// TestSingleflight: N concurrent identical queries execute once. Run
// under -race in CI.
func TestSingleflight(t *testing.T) {
	c := New(Config{})
	k := key(1, "q")
	const n = 32
	var execs atomic.Int64
	barrier := make(chan struct{})
	want := fakeResult(3, "row")

	var wg sync.WaitGroup
	var hits, shared, misses atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, out, err := c.Do(context.Background(), k, func() (*query.Result, error) {
				execs.Add(1)
				<-barrier // hold every follower in the flight window
				return want, nil
			})
			if err != nil || res != want {
				t.Errorf("res=%p err=%v", res, err)
			}
			switch {
			case out.Hit:
				hits.Add(1)
			case out.Shared:
				shared.Add(1)
			default:
				misses.Add(1)
			}
		}()
	}
	// Wait until the leader is inside exec, then let everyone pile up.
	for c.Stats().Misses == 0 {
	}
	close(barrier)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("exec ran %d times under %d concurrent callers, want 1", got, n)
	}
	if misses.Load() != 1 {
		t.Fatalf("misses = %d, want exactly 1 leader", misses.Load())
	}
	if hits.Load()+shared.Load() != n-1 {
		t.Fatalf("hits=%d shared=%d, want %d combined", hits.Load(), shared.Load(), n-1)
	}
}

func TestFollowerContextCancel(t *testing.T) {
	c := New(Config{})
	k := key(1, "q")
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, _ = c.Do(context.Background(), k, func() (*query.Result, error) {
			close(started)
			<-release
			return fakeResult(1, "x"), nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, k, func() (*query.Result, error) {
		t.Fatal("cancelled follower must not execute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower err = %v, want context.Canceled", err)
	}
	close(release)
	<-leaderDone
}

func TestLeaderPanicConvertedToError(t *testing.T) {
	c := New(Config{})
	k := key(1, "q")
	_, _, err := c.Do(context.Background(), k, func() (*query.Result, error) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	// The flight slot must be released: a retry executes normally.
	res, _, err := c.Do(context.Background(), k, func() (*query.Result, error) { return fakeResult(1, "x"), nil })
	if err != nil || res == nil {
		t.Fatalf("retry after panic: res=%v err=%v", res, err)
	}
}

// TestCompiledPlanGenerationKeyed pins the invalidation contract: a
// compiled plan is served only while the statistics generation it was
// built against is current, and a generation change forces a rebuild
// (the regression where a snapshot swap kept serving plans tuned to the
// retired graph's degree distribution).
func TestCompiledPlanGenerationKeyed(t *testing.T) {
	c := New(Config{})
	const text = `START n=node(0) RETURN n`
	if _, err := c.Plan(text); err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	build := func() (any, error) {
		return fmt.Sprintf("plan-%d", builds.Add(1)), nil
	}

	p1, err := c.CompiledPlan(text, 1, build)
	if err != nil || p1 != "plan-1" {
		t.Fatalf("first build: %v, %v", p1, err)
	}
	if p, _ := c.CompiledPlan(text, 1, build); p != "plan-1" {
		t.Fatalf("same generation rebuilt: got %v", p)
	}
	if p, _ := c.CompiledPlan(text, 2, build); p != "plan-2" {
		t.Fatalf("new generation must rebuild: got %v", p)
	}
	if p, _ := c.CompiledPlan(text, 2, build); p != "plan-2" {
		t.Fatalf("rebuilt plan not cached: got %v", p)
	}
	// Going back to a stale generation must also rebuild — the cache
	// keys on exact generation match, not monotonicity.
	if p, _ := c.CompiledPlan(text, 1, build); p != "plan-3" {
		t.Fatalf("stale generation served: got %v", p)
	}
	if got := c.Stats().CompiledHits; got != 2 {
		t.Fatalf("compiled hits = %d, want 2", got)
	}
}

func TestCompiledPlanBuildErrorNotCached(t *testing.T) {
	c := New(Config{})
	const text = `START n=node(0) RETURN n`
	if _, err := c.Plan(text); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := c.CompiledPlan(text, 1, func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	p, err := c.CompiledPlan(text, 1, func() (any, error) { return "ok", nil })
	if err != nil || p != "ok" {
		t.Fatalf("after error: %v, %v", p, err)
	}
}

func TestCompiledPlanUnparsedTextNotCached(t *testing.T) {
	c := New(Config{})
	var builds atomic.Int64
	build := func() (any, error) { return builds.Add(1), nil }
	// Text never seen by Plan: built every time, never cached.
	if p, _ := c.CompiledPlan("unseen", 1, build); p != int64(1) {
		t.Fatalf("got %v", p)
	}
	if p, _ := c.CompiledPlan("unseen", 1, build); p != int64(2) {
		t.Fatalf("uncached path should rebuild, got %v", p)
	}
}
