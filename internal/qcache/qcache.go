// Package qcache caches query-layer work across requests. The paper's
// evaluation (Tables 5–6) turns on the cold/warm distinction for
// repeated dependency queries; this package is what makes the warm path
// stop being bounded by executor work at all. It layers three
// mechanisms, cheapest first:
//
//  1. A plan cache: an LRU of parsed queries keyed by query text, so a
//     repeated query skips the lexer and parser entirely. Parsing is
//     independent of the snapshot and of resource limits, so one plan
//     serves every epoch and every Limits setting. Plans are read-only
//     during execution and safe to share between concurrent queries.
//  2. A result cache: an LRU of finished result tables keyed by
//     (snapshot epoch, canonical query text, resource limits), bounded
//     by an estimated byte budget. The limits belong in the key: a
//     query first run under a tight row budget must not poison the
//     cache for a later run with looser limits, and a cached success
//     must never mask the budget error a tighter rerun should produce.
//  3. Singleflight deduplication: N concurrent identical queries (the
//     burst shape agent workloads and dashboard reloads produce)
//     execute once; followers block on the leader's call and share its
//     result. Under the server's load-shed limiter this turns a
//     thundering herd into one executor slot.
//
// Cached *query.Result values are shared between callers and with the
// cache itself: treat them as immutable. Every consumer in this
// repository (formatting, JSON encoding, row counting) only reads.
//
// Invalidation is wholesale: the engine calls Invalidate on every
// snapshot swap. Keys carry the epoch as well, so even an epoch-reusing
// swap (or a racing insert from a query that started before the swap)
// can never serve rows from a retired graph — inserts are generation-
// checked and dropped if an invalidation happened mid-execution.
package qcache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"frappe/internal/graph"
	"frappe/internal/obs/trace"
	"frappe/internal/query"
)

// Defaults for Config zero values: a 64 MB result budget and entry
// counts sized for interactive traffic.
const (
	DefaultMaxBytes   = 64 << 20
	DefaultMaxEntries = 4096
	DefaultMaxPlans   = 1024
)

// Config sizes a cache. Zero fields take the defaults above.
type Config struct {
	// MaxBytes bounds the estimated memory held by cached results.
	MaxBytes int64
	// MaxEntries bounds the number of cached results.
	MaxEntries int
	// MaxPlans bounds the number of cached parsed queries.
	MaxPlans int
}

// Key identifies one cacheable execution: the graph state (epoch), the
// query text, and the resource limits it ran under. Limits are part of
// the identity — see the package comment.
type Key struct {
	Epoch  int64
	Text   string
	Limits query.Limits
}

// Outcome reports how a Do call was served.
type Outcome struct {
	// Hit: served from the result cache without executing.
	Hit bool
	// Shared: coalesced onto a concurrent identical execution.
	Shared bool
}

// Stats is a point-in-time snapshot of the cache's counters, surfaced
// by /api/stats alongside the /metrics exposition.
type Stats struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Shared         int64 `json:"shared"`
	Evictions      int64 `json:"evictions"`
	Invalidations  int64 `json:"invalidations"`
	Bytes          int64 `json:"bytes"`
	Entries        int64 `json:"entries"`
	PlanHits       int64 `json:"planHits"`
	PlanMisses     int64 `json:"planMisses"`
	CompiledHits   int64 `json:"compiledHits"`
	CompiledMisses int64 `json:"compiledMisses"`
}

// Cache is a snapshot-keyed query cache: plan LRU + byte-budgeted
// result LRU + singleflight. Safe for concurrent use.
type Cache struct {
	maxBytes   int64
	maxEntries int
	maxPlans   int

	mu      sync.Mutex
	results map[Key]*list.Element
	resList *list.List // front = most recent; values are *resultEntry
	bytes   int64
	gen     int64 // bumped by Invalidate; stale leaders skip their insert
	flight  map[Key]*call
	plans   map[string]*list.Element
	planLRU *list.List // values are *planEntry

	hits, misses, shared         atomic.Int64
	evictions, invalidations     atomic.Int64
	planHits, planMisses         atomic.Int64
	compiledHits, compiledMisses atomic.Int64
}

type resultEntry struct {
	key  Key
	res  *query.Result
	size int64
	hits int64
}

type planEntry struct {
	text string
	q    *query.Query
	// Compiled plan built against one statistics generation. Unlike the
	// parse, compilation reads graph statistics, so the cached value is
	// only valid while its generation matches: a snapshot swap rebuilds
	// statistics, and serving the old plan would keep anchor and
	// expansion-order choices tuned to a graph that no longer exists.
	// Stored opaquely so qcache does not import the planner.
	compiled    any
	compiledGen int64
}

// call is one in-flight leader execution followers can wait on.
type call struct {
	done chan struct{}
	res  *query.Result
	err  error
	gen  int64
}

// New builds a cache with the given sizing.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxPlans <= 0 {
		cfg.MaxPlans = DefaultMaxPlans
	}
	return &Cache{
		maxBytes:   cfg.MaxBytes,
		maxEntries: cfg.MaxEntries,
		maxPlans:   cfg.MaxPlans,
		results:    map[Key]*list.Element{},
		resList:    list.New(),
		flight:     map[Key]*call{},
		plans:      map[string]*list.Element{},
		planLRU:    list.New(),
	}
}

// Plan returns the parsed form of text, parsing at most once per cached
// text. Parse errors are returned but not cached (a failing query is
// already cheap to fail again, and error queries should not evict
// useful plans).
func (c *Cache) Plan(text string) (*query.Query, error) {
	c.mu.Lock()
	if e, ok := c.plans[text]; ok {
		c.planLRU.MoveToFront(e)
		q := e.Value.(*planEntry).q
		c.mu.Unlock()
		c.planHits.Add(1)
		mPlanHits.Inc()
		return q, nil
	}
	c.mu.Unlock()

	q, err := query.Parse(text)
	c.planMisses.Add(1)
	mPlanMisses.Inc()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, ok := c.plans[text]; !ok {
		c.plans[text] = c.planLRU.PushFront(&planEntry{text: text, q: q})
		if c.planLRU.Len() > c.maxPlans {
			back := c.planLRU.Back()
			c.planLRU.Remove(back)
			delete(c.plans, back.Value.(*planEntry).text)
		}
	}
	c.mu.Unlock()
	return q, nil
}

// CompiledPlan returns the compiled execution plan cached for text,
// rebuilding it when the cached copy was compiled against a different
// statistics generation than gen. This is the compiled analogue of
// Plan: parsing is snapshot-independent and cached forever, but a
// compiled plan bakes in cost decisions (anchor choice, expansion
// order) read from the graph statistics, so it is only served while the
// statistics that justified it are current. The value is opaque to the
// cache (the planner imports qcache's caller, not vice versa). A build
// error is returned and not cached. Texts never seen by Plan are built
// but not cached — the plan LRU is populated by parsing, which every
// caller does first.
func (c *Cache) CompiledPlan(text string, gen int64, build func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.plans[text]; ok {
		ent := e.Value.(*planEntry)
		if ent.compiled != nil && ent.compiledGen == gen {
			c.planLRU.MoveToFront(e)
			compiled := ent.compiled
			c.mu.Unlock()
			c.compiledHits.Add(1)
			mCompiledHits.Inc()
			return compiled, nil
		}
	}
	c.mu.Unlock()

	c.compiledMisses.Add(1)
	mCompiledMisses.Inc()
	compiled, err := build()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if e, ok := c.plans[text]; ok {
		ent := e.Value.(*planEntry)
		ent.compiled, ent.compiledGen = compiled, gen
	}
	c.mu.Unlock()
	return compiled, nil
}

// Do serves k from the result cache, or joins an in-flight identical
// execution, or runs exec as the leader and caches its success. The
// context only governs a follower's wait: a leader's exec is expected
// to honour its own context. A leader's error is handed to every
// waiting follower but never cached.
func (c *Cache) Do(ctx context.Context, k Key, exec func() (*query.Result, error)) (*query.Result, Outcome, error) {
	c.mu.Lock()
	if e, ok := c.results[k]; ok {
		ent := e.Value.(*resultEntry)
		c.resList.MoveToFront(e)
		ent.hits++
		c.mu.Unlock()
		c.hits.Add(1)
		mHits.Inc()
		return ent.res, Outcome{Hit: true}, nil
	}
	if cl, ok := c.flight[k]; ok {
		c.mu.Unlock()
		// The singleflight-follower wait is dead time from the caller's
		// point of view; give it its own span so a trace distinguishes
		// "my query was slow" from "I waited on someone else's".
		wait := trace.FromContext(ctx).Child("qcache.wait")
		select {
		case <-cl.done:
			wait.End()
			c.shared.Add(1)
			mShared.Inc()
			return cl.res, Outcome{Shared: true}, cl.err
		case <-ctx.Done():
			wait.SetError(ctx.Err())
			wait.End()
			return nil, Outcome{}, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{}), gen: c.gen}
	c.flight[k] = cl
	c.mu.Unlock()

	c.misses.Add(1)
	mMisses.Inc()
	c.lead(k, cl, exec)
	return cl.res, Outcome{}, cl.err
}

// Get serves k from the result cache without executing anything and
// without joining or starting a singleflight call. Streamed queries use
// it for their cache interaction: a hit replays the cached rows through
// the stream; a miss executes streaming-side and deliberately skips the
// insert (the rows have already left the process, and buffering them
// for the cache would undo the bounded-memory point of streaming).
// Only hits are counted — a streamed miss never enters the cache
// machinery, so counting it would skew the hit ratio of Do.
func (c *Cache) Get(k Key) (*query.Result, bool) {
	c.mu.Lock()
	e, ok := c.results[k]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	ent := e.Value.(*resultEntry)
	c.resList.MoveToFront(e)
	ent.hits++
	c.mu.Unlock()
	c.hits.Add(1)
	mHits.Inc()
	return ent.res, true
}

// lead runs one execution as the singleflight leader and publishes the
// outcome. A panic out of exec (the executor recovers its own, so this
// is belt and braces) is converted to an error so followers are never
// left waiting on a channel nobody will close.
func (c *Cache) lead(k Key, cl *call, exec func() (*query.Result, error)) {
	defer func() {
		if r := recover(); r != nil {
			cl.res, cl.err = nil, fmt.Errorf("qcache: execution panicked: %v", r)
		}
		c.mu.Lock()
		delete(c.flight, k)
		// Only cache successes, and only if no invalidation (snapshot
		// swap) happened while we were executing: a result computed
		// against a retired snapshot must not outlive it.
		if cl.err == nil && cl.res != nil && cl.gen == c.gen {
			c.insertLocked(k, cl.res)
		}
		c.mu.Unlock()
		close(cl.done)
	}()
	cl.res, cl.err = exec()
}

// insertLocked adds a result under the byte and entry budgets, evicting
// LRU entries to make room. Results larger than the whole budget are
// not cached at all.
func (c *Cache) insertLocked(k Key, res *query.Result) {
	if _, ok := c.results[k]; ok {
		return // a racing leader got here first
	}
	size := EstimateSize(res)
	if size > c.maxBytes {
		return
	}
	c.results[k] = c.resList.PushFront(&resultEntry{key: k, res: res, size: size})
	c.bytes += size
	for (c.bytes > c.maxBytes || len(c.results) > c.maxEntries) && c.resList.Len() > 1 {
		back := c.resList.Back()
		ent := back.Value.(*resultEntry)
		c.resList.Remove(back)
		delete(c.results, ent.key)
		c.bytes -= ent.size
		c.evictions.Add(1)
		mEvictions.Inc()
	}
	mBytes.Set(c.bytes)
	mEntries.Set(int64(len(c.results)))
}

// Invalidate drops every cached result (plans survive: parsing does not
// depend on the graph). The engine calls this on every snapshot swap,
// and the generation bump makes in-flight leaders drop their inserts.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.gen++
	c.results = map[Key]*list.Element{}
	c.resList.Init()
	c.bytes = 0
	c.mu.Unlock()
	c.invalidations.Add(1)
	mInvalidations.Inc()
	mBytes.Set(0)
	mEntries.Set(0)
}

// EntryHits reports how many times k has been served from the result
// cache since it was last inserted (0 when absent). PROFILE responses
// surface this so a user can see whether the query they are tracing is
// normally served warm.
func (c *Cache) EntryHits(k Key) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.results[k]; ok {
		return e.Value.(*resultEntry).hits
	}
	return 0
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	bytes, entries := c.bytes, int64(len(c.results))
	c.mu.Unlock()
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Shared:         c.shared.Load(),
		Evictions:      c.evictions.Load(),
		Invalidations:  c.invalidations.Load(),
		Bytes:          bytes,
		Entries:        entries,
		PlanHits:       c.planHits.Load(),
		PlanMisses:     c.planMisses.Load(),
		CompiledHits:   c.compiledHits.Load(),
		CompiledMisses: c.compiledMisses.Load(),
	}
}

// EstimateSize approximates the memory a result table retains: fixed
// per-row and per-value overhead plus the bytes of every string scalar,
// list element, and path step. It is deliberately a cheap walk, not an
// exact accounting — the budget only needs to be proportional.
func EstimateSize(r *query.Result) int64 {
	size := int64(64)
	for _, c := range r.Columns {
		size += int64(len(c)) + 16
	}
	for _, row := range r.Rows {
		size += 24
		for _, v := range row {
			size += valSize(v)
		}
	}
	return size
}

func valSize(v query.Val) int64 {
	size := int64(56) // sizeof(Val), roughly
	if v.Kind == query.ValScalar && v.Scalar.Kind() == graph.KindString {
		size += int64(len(v.Scalar.AsString()))
	}
	for _, x := range v.List {
		size += valSize(x)
	}
	size += int64(len(v.Path.Steps)) * 16
	return size
}
