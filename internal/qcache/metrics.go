package qcache

import "frappe/internal/obs"

// Query-cache metrics. These are process-wide (every Cache instance
// feeds the same families — in production there is one cache per
// engine); per-cache numbers come from Cache.Stats. Counters are bumped
// once per Do/Plan call, never inside a loop, so the instrumentation
// cost is invisible next to even a cache hit.
var (
	mHits = obs.Default.Counter("frappe_qcache_hits_total",
		"Queries served from the result cache without executing.", nil)
	mMisses = obs.Default.Counter("frappe_qcache_misses_total",
		"Queries that missed the result cache and executed.", nil)
	mShared = obs.Default.Counter("frappe_qcache_singleflight_shared_total",
		"Queries coalesced onto a concurrent identical execution.", nil)
	mEvictions = obs.Default.Counter("frappe_qcache_evictions_total",
		"Result-cache entries evicted by the byte or entry budget.", nil)
	mInvalidations = obs.Default.Counter("frappe_qcache_invalidations_total",
		"Wholesale result-cache invalidations (snapshot swaps).", nil)
	mBytes = obs.Default.Gauge("frappe_qcache_bytes",
		"Estimated bytes held by cached query results.", nil)
	mEntries = obs.Default.Gauge("frappe_qcache_entries",
		"Cached query results currently held.", nil)
	mPlanHits = obs.Default.Counter("frappe_qcache_plan_hits_total",
		"Queries whose parsed plan was served from the plan cache.", nil)
	mPlanMisses = obs.Default.Counter("frappe_qcache_plan_misses_total",
		"Queries that had to be lexed and parsed.", nil)
	mCompiledHits = obs.Default.Counter("frappe_qcache_compiled_hits_total",
		"Queries whose compiled plan was served from the plan cache at a current statistics generation.", nil)
	mCompiledMisses = obs.Default.Counter("frappe_qcache_compiled_misses_total",
		"Queries whose compiled plan was (re)built — first sight or stale statistics generation.", nil)
)
