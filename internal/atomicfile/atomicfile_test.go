package atomicfile

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func readOrDie(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(b)
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.json")
	if err := WriteFile(p, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(p, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readOrDie(t, p); got != "two" {
		t.Fatalf("got %q, want %q", got, "two")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestCommitPublishAndAbort(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "old.txt"), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Abort: nothing visible changes.
	c, err := NewCommit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("new.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Abort()
	if _, err := os.Stat(filepath.Join(dir, "new.txt")); !os.IsNotExist(err) {
		t.Fatal("aborted commit published a file")
	}
	if _, err := os.Stat(filepath.Join(dir, StageDirName)); !os.IsNotExist(err) {
		t.Fatal("abort left staging behind")
	}

	// Publish: rename + nested rename + delete + append, atomically.
	c, err = NewCommit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("new.txt", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("sub/inner.gob", []byte("nested")); err != nil {
		t.Fatal(err)
	}
	c.Delete("old.txt")
	c.Append("journal", []byte("line1\n"))
	c.Append("journal", []byte("line2\n"))
	if err := c.Publish(); err != nil {
		t.Fatal(err)
	}
	c.Abort() // must be a no-op after Publish

	if got := readOrDie(t, filepath.Join(dir, "new.txt")); got != "fresh" {
		t.Fatalf("new.txt = %q", got)
	}
	if got := readOrDie(t, filepath.Join(dir, "sub", "inner.gob")); got != "nested" {
		t.Fatalf("sub/inner.gob = %q", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "old.txt")); !os.IsNotExist(err) {
		t.Fatal("delete not applied")
	}
	if got := readOrDie(t, filepath.Join(dir, "journal")); got != "line1\nline2\n" {
		t.Fatalf("journal = %q", got)
	}
	for _, leftover := range []string{StageDirName, IntentFile} {
		if _, err := os.Stat(filepath.Join(dir, leftover)); !os.IsNotExist(err) {
			t.Fatalf("publish left %s behind", leftover)
		}
	}
}

func TestRecoverDiscardsUncommittedStaging(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "keep.txt"), []byte("pre"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := NewCommit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("keep.txt", []byte("post")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash before the commit point: staging exists, no intent.
	res, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionDiscarded {
		t.Fatalf("action = %s, want %s", res.Action, ActionDiscarded)
	}
	if got := readOrDie(t, filepath.Join(dir, "keep.txt")); got != "pre" {
		t.Fatalf("keep.txt = %q, want pre-update bytes", got)
	}
	// Idempotent: a second recovery is a no-op.
	res, err = Recover(dir)
	if err != nil || res.Action != ActionNone {
		t.Fatalf("second recover: %v %v", res, err)
	}
}

func TestCrashAtEveryPointRecoversToPreOrPost(t *testing.T) {
	// Enumerate the checkpoints of a representative commit with a trace
	// run, then kill at each one and assert recovery lands on exactly
	// the pre- or post-commit state.
	run := func(dir string) error {
		c, err := NewCommit(dir)
		if err != nil {
			return err
		}
		defer c.Abort()
		if err := c.WriteFile("data.db", []byte("v2-data")); err != nil {
			return err
		}
		if err := c.WriteFile("sub/cache.gob", []byte("v2-cache")); err != nil {
			return err
		}
		c.Delete("stale.gob")
		c.Append("journal", []byte(`{"epoch":2}`+"\n"))
		return c.Publish()
	}
	seed := func(t *testing.T) string {
		dir := t.TempDir()
		for name, content := range map[string]string{
			"data.db":   "v1-data",
			"stale.gob": "stale",
			"journal":   `{"epoch":1}` + "\n",
		} {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}
	state := func(t *testing.T, dir string) map[string]string {
		t.Helper()
		out := map[string]string{}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, _ := filepath.Rel(dir, p)
			out[filepath.ToSlash(rel)] = readOrDie(t, p)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	equal := func(a, b map[string]string) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}

	preDir := seed(t)
	pre := state(t, preDir)
	trace := &CrashPlan{}
	SetCrashPlan(trace)
	err := run(preDir)
	ClearCrashPlan()
	if err != nil {
		t.Fatalf("trace run failed: %v", err)
	}
	post := state(t, preDir)
	n := trace.Count()
	if n < 8 {
		t.Fatalf("suspiciously few crash points: %d (%v)", n, trace.Points())
	}

	for kill := 1; kill <= n; kill++ {
		dir := seed(t)
		plan := &CrashPlan{KillAt: kill}
		SetCrashPlan(plan)
		err := run(dir)
		ClearCrashPlan()
		var ce *CrashError
		if !errors.As(err, &ce) {
			t.Fatalf("kill %d: expected injected crash, got %v", kill, err)
		}
		if _, err := Recover(dir); err != nil {
			t.Fatalf("kill %d (%s): recover: %v", kill, ce.Point, err)
		}
		got := state(t, dir)
		if !equal(got, pre) && !equal(got, post) {
			t.Fatalf("kill %d (%s): recovered state is neither pre nor post:\n got: %v\n pre: %v\npost: %v",
				kill, ce.Point, got, pre, post)
		}
	}
}

func TestRecoverReplaysTornAppend(t *testing.T) {
	// Trace one publish to find the ordinal of the commit point, then
	// replay the same commit, kill right after the intent lands, tear
	// the journal tail by hand (as a crashed partial append would), and
	// check recovery repairs it.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal"), []byte("a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := NewCommit(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Append("journal", []byte("bbbb\n"))
	trace := &CrashPlan{}
	SetCrashPlan(trace)
	if err := c.Publish(); err != nil {
		ClearCrashPlan()
		t.Fatalf("trace publish: %v", err)
	}
	ClearCrashPlan()
	committedAt := 0
	for i, p := range trace.Points() {
		if p == "intent:committed" {
			committedAt = i + 1
		}
	}
	if committedAt == 0 {
		t.Fatalf("no intent:committed point in %v", trace.Points())
	}

	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "journal"), []byte("a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCommit(dir2)
	if err != nil {
		t.Fatal(err)
	}
	c2.Append("journal", []byte("bbbb\n"))
	SetCrashPlan(&CrashPlan{KillAt: committedAt})
	err = c2.Publish()
	ClearCrashPlan()
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Point != "intent:committed" {
		t.Fatalf("expected crash at intent:committed, got %v", err)
	}
	// Tear: half the append landed.
	if err := os.WriteFile(filepath.Join(dir2, "journal"), []byte("a\nbb"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Recover(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionRolledForward || res.Appends != 1 {
		t.Fatalf("recover = %+v", res)
	}
	if got := readOrDie(t, filepath.Join(dir2, "journal")); got != "a\nbbbb\n" {
		t.Fatalf("journal = %q, want torn tail repaired", got)
	}
}
