package atomicfile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Names the commit protocol owns inside a managed directory.
const (
	// StageDirName holds staged file contents between NewCommit and
	// Publish. Hidden so directory fingerprints and store scans skip it.
	StageDirName = ".commit-stage"
	// IntentFile is the commit record. Its atomic appearance is the
	// commit point: present means the update is committed and recovery
	// rolls it forward; absent means recovery discards any staging.
	IntentFile = "commit.intent"
)

// intentVersion guards the intent record layout.
const intentVersion = 1

// intentRecord is the durable redo log of one commit: everything
// Publish still has to do after the commit point, in replayable form.
type intentRecord struct {
	Version int            `json:"version"`
	Renames []string       `json:"renames"`
	Deletes []string       `json:"deletes,omitempty"`
	Appends []intentAppend `json:"appends,omitempty"`
}

// intentAppend is one journal-style append: write Data at Offset
// (the file's pre-commit size). Replaying truncates to Offset first, so
// a torn or repeated append converges to the same bytes.
type intentAppend struct {
	Name   string `json:"name"`
	Offset int64  `json:"offset"`
	Data   []byte `json:"data"`
}

// Commit batches any number of file replacements, removals and appends
// under one directory into a single atomic unit. Stage contents via
// Path/WriteFile + Add, register removals with Delete and appends with
// Append, then Publish. Until Publish writes the intent record, the
// directory's visible contents are untouched; after it, recovery
// guarantees completion. A Commit is single-goroutine, like the update
// paths that use it.
type Commit struct {
	dir       string
	stage     string
	renames   []string
	renameSet map[string]bool
	deletes   []string
	appends   []intentAppend
	committed bool // intent record is on disk; recovery owns completion
	published bool
}

// NewCommit opens a commit against dir, first recovering any commit a
// previous process left unfinished there (so a crashed update can never
// wedge the next one).
func NewCommit(dir string) (*Commit, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := Recover(dir); err != nil {
		return nil, fmt.Errorf("atomicfile: recovering %s before commit: %w", dir, err)
	}
	stage := filepath.Join(dir, StageDirName)
	if err := os.MkdirAll(stage, 0o755); err != nil {
		return nil, err
	}
	return &Commit{dir: dir, stage: stage, renameSet: map[string]bool{}}, nil
}

// Dir returns the directory the commit publishes into.
func (c *Commit) Dir() string { return c.dir }

// Path returns the staging path for name (slash-relative to the commit
// directory), creating parent directories so external writers can
// os.Create it directly. The file only becomes part of the commit once
// Add(name) is called.
func (c *Commit) Path(name string) string {
	p := filepath.Join(c.stage, filepath.FromSlash(name))
	_ = os.MkdirAll(filepath.Dir(p), 0o755)
	return p
}

// Add registers a staged file (previously written at Path(name)) to be
// renamed into place at publish. Adding the same name twice is a no-op.
func (c *Commit) Add(name string) {
	if c.renameSet[name] {
		return
	}
	c.renameSet[name] = true
	c.renames = append(c.renames, name)
}

// WriteFile stages data as the new contents of name and Adds it.
func (c *Commit) WriteFile(name string, data []byte) error {
	if err := os.WriteFile(c.Path(name), data, 0o644); err != nil {
		return err
	}
	c.Add(name)
	return nil
}

// Delete registers name for removal at publish (idempotent; a missing
// file at replay time is fine).
func (c *Commit) Delete(name string) { c.deletes = append(c.deletes, name) }

// Append registers data to be appended to name at publish. The append
// offset is captured at publish time and recorded in the intent, so
// recovery can replay it idempotently even over a torn tail.
func (c *Commit) Append(name string, data []byte) {
	c.appends = append(c.appends, intentAppend{Name: name, Data: data})
}

// Abort discards the staging area of a commit that has not reached its
// commit point. Once the intent record is on disk the commit has
// logically happened and recovery owns its completion, so Abort does
// nothing — in particular, a caller's `defer c.Abort()` after a failed
// Publish must not destroy staged files that roll-forward still needs.
func (c *Commit) Abort() {
	if c.published || c.committed {
		return
	}
	os.RemoveAll(c.stage)
}

// Publish makes the commit durable and visible:
//
//	fsync every staged file → fsync staging dir     (staged bytes durable)
//	write intent record atomically                  (THE commit point)
//	rename staged files into place → fsync dirs
//	remove deleted files
//	apply appends with fsync
//	fsync dirs → remove intent → drop staging
//
// A crash before the intent appears leaves the directory byte-identical
// to its pre-commit state (recovery discards staging); a crash after it
// is completed by Recover. Every step after the commit point is
// idempotent.
func (c *Commit) Publish() error {
	if c.published {
		return fmt.Errorf("atomicfile: commit already published")
	}
	if err := checkpoint("publish:start"); err != nil {
		return err
	}
	// Make every staged byte durable before the commit point; the intent
	// must never commit to renaming files whose contents could still be
	// lost.
	for _, name := range c.renames {
		if err := fsyncPath(filepath.Join(c.stage, filepath.FromSlash(name))); err != nil {
			return err
		}
		if err := checkpoint("sync:" + name); err != nil {
			return err
		}
	}
	if err := syncTree(c.stage); err != nil {
		return err
	}
	if err := checkpoint("sync:stage-dir"); err != nil {
		return err
	}

	// Capture append offsets so replay can truncate away a torn tail and
	// re-append. Multiple appends to one file chain their offsets.
	rec := intentRecord{Version: intentVersion, Renames: c.renames, Deletes: c.deletes}
	nextOff := map[string]int64{}
	for _, a := range c.appends {
		off, seen := nextOff[a.Name]
		if !seen {
			if st, err := os.Stat(filepath.Join(c.dir, filepath.FromSlash(a.Name))); err == nil {
				off = st.Size()
			}
		}
		rec.Appends = append(rec.Appends, intentAppend{Name: a.Name, Offset: off, Data: a.Data})
		nextOff[a.Name] = off + int64(len(a.Data))
	}
	b, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	// Intent staged (temp + fsync), then committed (rename + dir fsync).
	intent := filepath.Join(c.dir, IntentFile)
	tmp := intent + ".tmp"
	if err := writeFileSync(tmp, b); err != nil {
		return err
	}
	if err := checkpoint("intent:staged"); err != nil {
		return err
	}
	if err := os.Rename(tmp, intent); err != nil {
		return err
	}
	c.committed = true
	if err := syncDir(c.dir); err != nil {
		return err
	}
	if err := checkpoint("intent:committed"); err != nil {
		return err
	}

	if err := applyIntent(c.dir, c.stage, &rec, checkpoint); err != nil {
		return err
	}
	c.published = true
	return nil
}

// applyIntent performs (or replays) the post-commit-point operations of
// an intent record. Shared by Publish and Recover; every operation is
// idempotent. cp is the crash-checkpoint hook (Recover passes a no-op:
// recovery simulates the post-restart world where injection is off).
func applyIntent(dir, stage string, rec *intentRecord, cp func(string) error) error {
	// Renames: a staged file still present moves into place; one already
	// renamed by a previous attempt is skipped.
	touched := map[string]bool{dir: true}
	for _, name := range rec.Renames {
		sp := filepath.Join(stage, filepath.FromSlash(name))
		tp := filepath.Join(dir, filepath.FromSlash(name))
		if _, err := os.Stat(sp); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		if err := os.MkdirAll(filepath.Dir(tp), 0o755); err != nil {
			return err
		}
		if err := os.Rename(sp, tp); err != nil {
			return err
		}
		touched[filepath.Dir(tp)] = true
		if err := cp("rename:" + name); err != nil {
			return err
		}
	}
	if err := syncDirs(touched); err != nil {
		return err
	}
	if err := cp("renames-synced"); err != nil {
		return err
	}

	for _, name := range rec.Deletes {
		tp := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.Remove(tp); err != nil && !os.IsNotExist(err) {
			return err
		}
		touched[filepath.Dir(tp)] = true
		if err := cp("delete:" + name); err != nil {
			return err
		}
	}

	for _, a := range rec.Appends {
		tp := filepath.Join(dir, filepath.FromSlash(a.Name))
		if err := replayAppend(tp, a.Offset, a.Data); err != nil {
			return err
		}
		touched[filepath.Dir(tp)] = true
		if err := cp("append:" + a.Name); err != nil {
			return err
		}
	}
	if err := syncDirs(touched); err != nil {
		return err
	}
	if err := cp("dirs-synced"); err != nil {
		return err
	}

	if err := os.Remove(filepath.Join(dir, IntentFile)); err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	if err := cp("intent:removed"); err != nil {
		return err
	}
	return os.RemoveAll(stage)
}

// replayAppend writes data at off in path, truncating anything beyond
// off first (a torn tail from a crashed append), then fsyncs.
func replayAppend(path string, off int64, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() > off {
		if err := f.Truncate(off); err != nil {
			return err
		}
	}
	if _, err := f.WriteAt(data, off); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// writeFileSync writes data to path and fsyncs the file (no rename; the
// caller owns atomicity).
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fsyncPath fsyncs one existing file.
func fsyncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// syncDirs fsyncs a set of directories in sorted order (determinism for
// the crash-point sequence).
func syncDirs(dirs map[string]bool) error {
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	for _, d := range sorted {
		if err := syncDir(d); err != nil {
			return err
		}
	}
	return nil
}

// syncTree fsyncs root and every subdirectory under it.
func syncTree(root string) error {
	return filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return syncDir(p)
		}
		return nil
	})
}
