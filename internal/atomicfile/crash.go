package atomicfile

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// CrashPlan deterministically kills the commit protocol at one of its
// registered points, in the spirit of store.FaultReader for reads. Each
// durable side effect in WriteFile and Commit.Publish is followed by a
// named checkpoint; a plan counts checkpoints as they are hit and, at
// the KillAt'th one, fails it and every later atomicfile operation in
// the process — simulating the process dying at that instant, with all
// earlier side effects on disk and all later ones never happening.
//
// A plan with KillAt = 0 never kills; it just records the checkpoint
// sequence, which a torture test uses to enumerate the kill points of a
// given workload before replaying it N times.
type CrashPlan struct {
	// KillAt is the 1-based checkpoint ordinal to fail at (0 = trace
	// only).
	KillAt int

	mu     sync.Mutex
	count  int
	dead   bool
	points []string
}

// Points returns the checkpoint names hit so far, in order.
func (p *CrashPlan) Points() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.points...)
}

// Count returns how many checkpoints have been hit.
func (p *CrashPlan) Count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// Crashed reports whether the plan has fired.
func (p *CrashPlan) Crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// CrashError is the failure injected at a crash point. It satisfies
// errors.As so tests can distinguish an injected crash from a real I/O
// error.
type CrashError struct {
	Point string // checkpoint name the plan fired at (or was dead at)
	Seq   int    // 1-based ordinal of that checkpoint
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("atomicfile: injected crash at point %d (%s)", e.Seq, e.Point)
}

// activePlan is the process-wide crash plan; nil (the default) costs
// one atomic load per checkpoint.
var activePlan atomic.Pointer[CrashPlan]

// SetCrashPlan installs a crash plan for subsequent atomicfile
// operations. Test-only by design: production code never calls it.
func SetCrashPlan(p *CrashPlan) { activePlan.Store(p) }

// ClearCrashPlan removes the active crash plan (the "process restart"
// between a torture-test kill and its recovery phase).
func ClearCrashPlan() { activePlan.Store(nil) }

// checkpoint marks one durable side effect as complete. With no active
// plan it is free; with one, it counts, optionally fires, and once
// fired keeps failing until the plan is cleared.
func checkpoint(name string) error {
	p := activePlan.Load()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return &CrashError{Point: name, Seq: p.count}
	}
	p.count++
	p.points = append(p.points, name)
	if p.KillAt > 0 && p.count == p.KillAt {
		p.dead = true
		return &CrashError{Point: name, Seq: p.count}
	}
	return nil
}
