package atomicfile

import "frappe/internal/obs"

// Recovery metrics. Recovery runs at open time only, so these count
// rare events; a non-zero rolled-forward or discarded count after a
// restart is the operator's signal that a crash interrupted an update
// and was repaired (see DESIGN.md "Failure model v2").
var (
	mRecoveryRolledForward = obs.Default.Counter("frappe_recovery_total",
		"Startup recoveries by action.", obs.Labels{"action": "rolled_forward"})
	mRecoveryDiscarded = obs.Default.Counter("frappe_recovery_total",
		"Startup recoveries by action.", obs.Labels{"action": "discarded"})
	mRecoveryRenames = obs.Default.Counter("frappe_recovery_repaired_files_total",
		"Files renamed into place by roll-forward recovery.", nil)
	mRecoveryAppends = obs.Default.Counter("frappe_recovery_replayed_appends_total",
		"Journal appends replayed by roll-forward recovery.", nil)
)
