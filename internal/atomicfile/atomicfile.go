// Package atomicfile is Frappé's crash-consistency layer: every persist
// path in the system — store files, delta manifest, tucache artifacts,
// the update journal — funnels its durable writes through here so a
// crash (power loss, kill -9, torn write) at any instant leaves the
// store directory in exactly one of two states: the bytes before the
// update or the bytes after it, never a mix.
//
// Two levels of protection are provided:
//
//   - WriteFile replaces one file atomically: write to a temp file in
//     the same directory, fsync the file, rename over the target, fsync
//     the directory. The rename is the commit point; readers never see
//     a partial file.
//
//   - Commit groups many files into one atomic unit using a redo
//     (roll-forward) protocol. Writers stage new file contents into a
//     hidden staging directory, then Publish: every staged file is
//     fsynced, an intent record listing every pending rename, delete
//     and append is written atomically (THE commit point), and only
//     then are the staged files renamed into place, stale files
//     removed, and journal lines appended. Recover, run at open time,
//     completes or discards a commit interrupted anywhere: no intent
//     record means nothing was published (staging is discarded, the
//     pre-update bytes are untouched); an intent record means the
//     commit happened (the recorded operations are re-applied — every
//     one of them is idempotent — and the intent is retired).
//
// Deterministic crash-point injection (CrashPlan) turns every ordering
// decision in Publish into a testable boundary: a torture test kills
// the protocol at each registered point and asserts the recovered
// directory is byte-identical to the pre- or post-update state. The
// injection validates protocol ordering and recovery logic; it cannot
// prove the kernel honors fsync (no user-space test can).
package atomicfile

import (
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: temp file in the same
// directory → fsync(file) → rename → fsync(directory). On any error the
// target is untouched and the temp file is removed.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(name) }
	if err := checkpoint("writefile:" + filepath.Base(path)); err != nil {
		cleanup()
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return syncDir(dir)
}

// SyncDir fsyncs a directory so a completed rename/create/remove inside
// it is durable — for callers (like the trace exporter's rotation) that
// manage their own files but want this package's durability discipline.
func SyncDir(dir string) error { return syncDir(dir) }

// syncDir fsyncs a directory so a completed rename/create/remove inside
// it is durable. Filesystems that reject directory fsync (rare, but
// some CI overlays do) degrade to best-effort rather than failing the
// commit.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return err
	}
	return nil
}

// isSyncUnsupported reports fsync errors that mean "this file type does
// not support fsync here" rather than "your data is gone".
func isSyncUnsupported(err error) bool {
	pe, ok := err.(*os.PathError)
	if !ok {
		return false
	}
	return pe.Err.Error() == "invalid argument" || pe.Err.Error() == "operation not supported"
}
