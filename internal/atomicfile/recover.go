package atomicfile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Recovery actions, as reported by Recover and counted by the
// frappe_recovery_total metric.
const (
	// ActionNone: the directory was clean; nothing to do.
	ActionNone = "none"
	// ActionDiscarded: an update died before its commit point; its
	// staging leftovers were removed and the pre-update bytes stand.
	ActionDiscarded = "discarded"
	// ActionRolledForward: an update died after its commit point; the
	// intent record was replayed to completion, so the post-update bytes
	// stand.
	ActionRolledForward = "rolled-forward"
)

// RecoverResult reports what startup recovery found and repaired.
type RecoverResult struct {
	Action  string // ActionNone | ActionDiscarded | ActionRolledForward
	Renames int    // files renamed into place during roll-forward
	Deletes int    // recorded deletions replayed
	Appends int    // recorded appends replayed
	// RenamedFiles lists the intent's rename set when rolling forward,
	// so the caller can re-verify exactly the files the interrupted
	// commit touched.
	RenamedFiles []string
}

// Repaired reports whether recovery changed anything on disk.
func (r *RecoverResult) Repaired() bool { return r.Action != ActionNone }

func (r *RecoverResult) String() string {
	switch r.Action {
	case ActionRolledForward:
		return fmt.Sprintf("rolled forward interrupted commit (%d renames, %d deletes, %d appends)",
			r.Renames, r.Deletes, r.Appends)
	case ActionDiscarded:
		return "discarded staging of uncommitted update"
	}
	return "clean"
}

// Recover completes or discards a commit that a previous process left
// unfinished in dir. It is idempotent and cheap when the directory is
// clean (two stats), so every open path runs it unconditionally:
//
//	no intent record  → the commit never happened; staging (and a torn
//	                    intent temp file) are discarded, pre-update
//	                    bytes untouched;
//	intent record     → the commit happened; its renames, deletes and
//	                    appends are replayed (all idempotent), then the
//	                    intent is retired.
//
// An unreadable intent record is a hard error: it can only mean the
// record itself was corrupted after its atomic rename, which recovery
// must surface, not guess around.
func Recover(dir string) (*RecoverResult, error) {
	res := &RecoverResult{Action: ActionNone}
	intent := filepath.Join(dir, IntentFile)
	stage := filepath.Join(dir, StageDirName)
	// A torn intent temp file means the crash hit before the commit
	// point; it is never replayable state.
	os.Remove(intent + ".tmp")

	b, err := os.ReadFile(intent)
	if os.IsNotExist(err) {
		if _, serr := os.Stat(stage); serr == nil {
			if err := os.RemoveAll(stage); err != nil {
				return nil, err
			}
			if err := syncDir(dir); err != nil {
				return nil, err
			}
			res.Action = ActionDiscarded
			mRecoveryDiscarded.Inc()
		}
		return res, nil
	}
	if err != nil {
		return nil, err
	}
	var rec intentRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("atomicfile: %s in %s is unreadable: %w", IntentFile, dir, err)
	}
	if rec.Version != intentVersion {
		return nil, fmt.Errorf("atomicfile: %s in %s has unsupported version %d", IntentFile, dir, rec.Version)
	}

	// Count what replay will (re-)apply before applying it. Renames count
	// only files still staged; deletes and appends are replayed
	// unconditionally (idempotent).
	for _, name := range rec.Renames {
		if _, err := os.Stat(filepath.Join(stage, filepath.FromSlash(name))); err == nil {
			res.Renames++
		}
	}
	res.Deletes = len(rec.Deletes)
	res.Appends = len(rec.Appends)
	res.RenamedFiles = append([]string(nil), rec.Renames...)

	noCrash := func(string) error { return nil }
	if err := applyIntent(dir, stage, &rec, noCrash); err != nil {
		return nil, fmt.Errorf("atomicfile: rolling forward %s: %w", dir, err)
	}
	res.Action = ActionRolledForward
	mRecoveryRolledForward.Inc()
	mRecoveryRenames.Add(int64(res.Renames))
	mRecoveryAppends.Add(int64(res.Appends))
	return res, nil
}
