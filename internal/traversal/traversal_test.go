package traversal

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/model"
)

// chainGraph builds a -> b -> c -> d with calls edges plus a reads edge
// a -> d and a back edge d -> a.
func chainGraph() (*graph.Graph, []graph.NodeID) {
	g := graph.New()
	ids := make([]graph.NodeID, 4)
	for i := range ids {
		ids[i] = g.AddNode(model.NodeFunction, graph.P(model.PropShortName, string(rune('a'+i))))
	}
	g.AddEdge(ids[0], ids[1], model.EdgeCalls, nil)
	g.AddEdge(ids[1], ids[2], model.EdgeCalls, nil)
	g.AddEdge(ids[2], ids[3], model.EdgeCalls, nil)
	g.AddEdge(ids[0], ids[3], model.EdgeReads, nil)
	g.AddEdge(ids[3], ids[0], model.EdgeCalls, nil)
	return g, ids
}

func sorted(ids []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestTransitiveClosureTypeFilter(t *testing.T) {
	g, ids := chainGraph()
	got := TransitiveClosure(g, ids[0], Options{Direction: Out, Types: Types(model.EdgeCalls)})
	// Reaches b, c, d and back to a (cycle includes start).
	want := []graph.NodeID{ids[0], ids[1], ids[2], ids[3]}
	if !reflect.DeepEqual(sorted(got), want) {
		t.Fatalf("closure = %v, want %v", got, want)
	}
}

func TestTransitiveClosureAllTypes(t *testing.T) {
	g, ids := chainGraph()
	got := TransitiveClosure(g, ids[0], Options{Direction: Out})
	if len(got) != 4 {
		t.Fatalf("closure = %v", got)
	}
}

func TestTransitiveClosureMaxDepth(t *testing.T) {
	g, ids := chainGraph()
	got := TransitiveClosure(g, ids[0], Options{Direction: Out, Types: Types(model.EdgeCalls), MaxDepth: 2})
	want := []graph.NodeID{ids[1], ids[2]}
	if !reflect.DeepEqual(sorted(got), want) {
		t.Fatalf("closure depth 2 = %v, want %v", got, want)
	}
}

func TestTransitiveClosureIncoming(t *testing.T) {
	g, ids := chainGraph()
	// Forward slice of d: everything that can reach it via calls.
	got := TransitiveClosure(g, ids[3], Options{Direction: In, Types: Types(model.EdgeCalls)})
	if !reflect.DeepEqual(sorted(got), []graph.NodeID{ids[0], ids[1], ids[2], ids[3]}) {
		t.Fatalf("incoming closure = %v", got)
	}
}

func TestTransitiveClosureNodeFilter(t *testing.T) {
	g, ids := chainGraph()
	got := TransitiveClosure(g, ids[0], Options{
		Direction:  Out,
		Types:      Types(model.EdgeCalls),
		NodeFilter: func(n graph.NodeID) bool { return n != ids[1] },
	})
	// b is filtered, so nothing beyond it is reachable through calls
	// except via the d->a cycle which is also blocked (a only reaches b).
	if len(got) != 0 {
		t.Fatalf("filtered closure = %v, want empty", got)
	}
}

func TestReachable(t *testing.T) {
	g, ids := chainGraph()
	calls := Options{Direction: Out, Types: Types(model.EdgeCalls)}
	if !Reachable(g, ids[0], ids[3], calls) {
		t.Fatal("a should reach d")
	}
	if Reachable(g, ids[1], ids[0], Options{Direction: Out, Types: Types(model.EdgeReads)}) {
		t.Fatal("b must not reach a via reads")
	}
	if !Reachable(g, ids[2], ids[2], calls) {
		t.Fatal("self reachability")
	}
	if Reachable(g, ids[0], ids[3], Options{Direction: Out, Types: Types(model.EdgeCalls), MaxDepth: 2}) {
		t.Fatal("depth-2 should not reach d via calls")
	}
}

func TestShortestPath(t *testing.T) {
	g, ids := chainGraph()
	p, ok := ShortestPath(g, ids[0], ids[3], Options{Direction: Out})
	if !ok {
		t.Fatal("no path found")
	}
	// The reads edge a->d is a 1-hop path; calls chain is 3 hops.
	if p.Len() != 1 || p.End() != ids[3] || p.Start != ids[0] {
		t.Fatalf("path = %+v", p)
	}
	p, ok = ShortestPath(g, ids[0], ids[3], Options{Direction: Out, Types: Types(model.EdgeCalls)})
	if !ok || p.Len() != 3 {
		t.Fatalf("calls-only path = %+v ok=%v", p, ok)
	}
	if got := p.Nodes(); !reflect.DeepEqual(got, []graph.NodeID{ids[0], ids[1], ids[2], ids[3]}) {
		t.Fatalf("path nodes = %v", got)
	}
	if _, ok := ShortestPath(g, ids[1], ids[0], Options{Direction: Out, Types: Types(model.EdgeReads)}); ok {
		t.Fatal("should be unreachable")
	}
	p, ok = ShortestPath(g, ids[2], ids[2], Options{Direction: Out})
	if !ok || p.Len() != 0 {
		t.Fatalf("self path = %+v", p)
	}
}

func TestAllPathsRelationshipUniqueness(t *testing.T) {
	g, ids := chainGraph()
	var paths []Path
	AllPaths(g, ids[0], ids[3], 0, Options{Direction: Out}, func(p Path) bool {
		paths = append(paths, p)
		return true
	})
	// Paths a->d: [reads], [calls,calls,calls], and the 5-hop one that
	// loops a->d->a->b->c->d? The d->a edge then a->b needs edges unused:
	// a-reads->d, d-calls->a, a-calls->b, b-calls->c, c-calls->d: valid.
	// And a->b->c->d->a->d via reads? a->b,b->c,c->d ends at d (reported),
	// continuing d->a, a-reads->d gives another.
	if len(paths) != 4 {
		for _, p := range paths {
			t.Logf("path: %v", p.Nodes())
		}
		t.Fatalf("got %d paths, want 4", len(paths))
	}
	// Every reported path must end at d and not reuse an edge.
	for _, p := range paths {
		if p.End() != ids[3] {
			t.Fatalf("path ends at %d", p.End())
		}
		seen := map[graph.EdgeID]bool{}
		for _, s := range p.Steps {
			if seen[s.Edge] {
				t.Fatalf("edge reused in %v", p.Nodes())
			}
			seen[s.Edge] = true
		}
	}
}

func TestAllPathsMaxDepthAndEarlyStop(t *testing.T) {
	g, ids := chainGraph()
	count := 0
	AllPaths(g, ids[0], ids[3], 1, Options{Direction: Out}, func(Path) bool {
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("depth-1 paths = %d, want 1 (the reads edge)", count)
	}
	count = 0
	AllPaths(g, ids[0], ids[3], 0, Options{Direction: Out}, func(Path) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d paths", count)
	}
}

func TestClosureSizes(t *testing.T) {
	g, ids := chainGraph()
	sizes := ClosureSizes(g, ids, Options{Direction: Out, Types: Types(model.EdgeCalls)})
	if sizes[ids[0]] != 4 || sizes[ids[3]] != 4 {
		t.Fatalf("sizes = %v", sizes)
	}
}

// Property test: closure via BFS equals closure via iterated adjacency
// matrix on random graphs.
func TestClosureMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		g := graph.New()
		n := 2 + rng.Intn(20)
		ids := make([]graph.NodeID, n)
		for i := range ids {
			ids[i] = g.AddNode(model.NodeFunction, nil)
		}
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i < n*2; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			g.AddEdge(ids[a], ids[b], model.EdgeCalls, nil)
			adj[a][b] = true
		}
		// Floyd-Warshall style reachability oracle.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = append([]bool(nil), adj[i]...)
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if reach[i][k] {
					for j := 0; j < n; j++ {
						if reach[k][j] {
							reach[i][j] = true
						}
					}
				}
			}
		}
		start := rng.Intn(n)
		got := TransitiveClosure(g, ids[start], Options{Direction: Out})
		gotSet := map[graph.NodeID]bool{}
		for _, id := range got {
			gotSet[id] = true
		}
		for j := 0; j < n; j++ {
			if reach[start][j] != gotSet[ids[j]] {
				t.Fatalf("trial %d: node %d reach=%v closure=%v", trial, j, reach[start][j], gotSet[ids[j]])
			}
		}
	}
}

// Property: AllPaths agrees with a brute-force recursive oracle on small
// random graphs (relationship-unique paths, exact count).
func TestAllPathsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		g := graph.New()
		n := 3 + rng.Intn(5)
		ids := make([]graph.NodeID, n)
		for i := range ids {
			ids[i] = g.AddNode(model.NodeFunction, nil)
		}
		type edge struct{ from, to int }
		var edges []edge
		for i := 0; i < n+rng.Intn(n); i++ {
			e := edge{rng.Intn(n), rng.Intn(n)}
			edges = append(edges, e)
			g.AddEdge(ids[e.from], ids[e.to], model.EdgeCalls, nil)
		}
		src, dst := rng.Intn(n), rng.Intn(n)

		// Oracle: DFS over edge indices with a used set.
		used := make([]bool, len(edges))
		oracleCount := 0
		var rec func(cur int, depth int)
		rec = func(cur int, depth int) {
			if cur == dst && depth > 0 {
				oracleCount++
			}
			for i, e := range edges {
				if used[i] || e.from != cur {
					continue
				}
				used[i] = true
				rec(e.to, depth+1)
				used[i] = false
			}
		}
		rec(src, 0)

		got := 0
		AllPaths(g, ids[src], ids[dst], 0, Options{Direction: Out}, func(Path) bool {
			got++
			return true
		})
		if got != oracleCount {
			t.Fatalf("trial %d: AllPaths = %d, oracle = %d (n=%d, edges=%d, %d->%d)",
				trial, got, oracleCount, n, len(edges), src, dst)
		}
	}
}
