// Package traversal is Frappé's embedded traversal API: direct graph
// walks over any graph.Source with visited-set semantics.
//
// It is the counterpart of Neo4j's Java embedded mode in the paper's §6.1:
// the transitive closure that Cypher cannot finish (it enumerates paths)
// completes in milliseconds here because each node is expanded once. The
// code comprehension use case (Figure 6), the paper's program slices and
// the shortest-path exploration all build on this package.
package traversal

import (
	"context"

	"frappe/internal/graph"
	"frappe/internal/model"
)

// Direction selects which edges to follow from a node.
type Direction int

// Traversal directions.
const (
	Out  Direction = iota // follow outgoing edges
	In                    // follow incoming edges
	Both                  // follow both
)

// TypeSet is a set of edge types; a nil TypeSet admits every type.
type TypeSet map[model.EdgeType]bool

// Types builds a TypeSet.
func Types(ts ...model.EdgeType) TypeSet {
	s := make(TypeSet, len(ts))
	for _, t := range ts {
		s[t] = true
	}
	return s
}

// Options configure a traversal.
type Options struct {
	Direction Direction
	// Types restricts followed edges; nil means all types.
	Types TypeSet
	// MaxDepth bounds the walk; 0 means unbounded.
	MaxDepth int
	// EdgeFilter, if set, must return true for an edge to be followed.
	EdgeFilter func(graph.EdgeID) bool
	// NodeFilter, if set, must return true for a node to be expanded and
	// reported.
	NodeFilter func(graph.NodeID) bool
}

// step yields the (edge, neighbour) pairs from id under opts.
func step(s graph.Source, id graph.NodeID, opts Options, fn func(e graph.EdgeID, n graph.NodeID) bool) bool {
	emit := func(edges []graph.EdgeID, outgoing bool) bool {
		for _, e := range edges {
			from, to, t := s.EdgeEnds(e)
			if opts.Types != nil && !opts.Types[t] {
				continue
			}
			if opts.EdgeFilter != nil && !opts.EdgeFilter(e) {
				continue
			}
			n := to
			if !outgoing {
				n = from
			}
			if !fn(e, n) {
				return false
			}
		}
		return true
	}
	if opts.Direction == Out || opts.Direction == Both {
		if !emit(s.Out(id), true) {
			return false
		}
	}
	if opts.Direction == In || opts.Direction == Both {
		if !emit(s.In(id), false) {
			return false
		}
	}
	return true
}

// TransitiveClosure returns every node reachable from start (excluding
// start itself unless it lies on a cycle), in breadth-first discovery
// order. With Direction Out over calls edges this is the paper's backward
// slice (Figure 6); with Direction In it is the forward slice.
func TransitiveClosure(s graph.Source, start graph.NodeID, opts Options) []graph.NodeID {
	ids, _ := TransitiveClosureCtx(context.Background(), s, start, opts)
	return ids
}

// TransitiveClosureCtx is TransitiveClosure with cooperative
// cancellation: the context is checked once per BFS level (levels are
// the natural yield points of the walk — cheap, yet bounding overrun to
// one frontier expansion), and an expired deadline aborts the walk with
// the context's error instead of silently returning a truncated closure.
func TransitiveClosureCtx(ctx context.Context, s graph.Source, start graph.NodeID, opts Options) ([]graph.NodeID, error) {
	var result []graph.NodeID
	visited := map[graph.NodeID]bool{start: true}
	reportedStart := false
	frontier := []graph.NodeID{start}
	depth := 0
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			break
		}
		depth++
		var next []graph.NodeID
		for _, id := range frontier {
			step(s, id, opts, func(_ graph.EdgeID, n graph.NodeID) bool {
				if n == start && !reportedStart {
					// start lies on a cycle: it is reachable via >= 1 hop
					// and belongs to the closure, but is not re-expanded.
					if opts.NodeFilter == nil || opts.NodeFilter(n) {
						reportedStart = true
						result = append(result, n)
					}
					return true
				}
				if visited[n] {
					return true
				}
				if opts.NodeFilter != nil && !opts.NodeFilter(n) {
					return true
				}
				visited[n] = true
				result = append(result, n)
				next = append(next, n)
				return true
			})
		}
		frontier = next
	}
	return result, nil
}

// Reachable reports whether to is reachable from from under opts.
func Reachable(s graph.Source, from, to graph.NodeID, opts Options) bool {
	if from == to {
		return true
	}
	found := false
	visited := map[graph.NodeID]bool{from: true}
	frontier := []graph.NodeID{from}
	depth := 0
	for len(frontier) > 0 && !found {
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			break
		}
		depth++
		var next []graph.NodeID
		for _, id := range frontier {
			if !step(s, id, opts, func(_ graph.EdgeID, n graph.NodeID) bool {
				if n == to {
					found = true
					return false
				}
				if !visited[n] {
					visited[n] = true
					next = append(next, n)
				}
				return true
			}) {
				break
			}
		}
		frontier = next
	}
	return found
}

// FindReachableCtx walks breadth-first from start and returns the first
// node reachable in >= 1 hop for which pred is true, stopping the
// search as soon as one is found. start itself is only a candidate when
// it is re-reached through a cycle. It is the existence-query analogue
// of TransitiveClosureCtx: the query planner lowers reachability-shaped
// pattern predicates onto it so a WHERE existence check never
// enumerates paths (or even the full closure).
func FindReachableCtx(ctx context.Context, s graph.Source, start graph.NodeID, opts Options, pred func(graph.NodeID) bool) (graph.NodeID, bool, error) {
	var (
		found   graph.NodeID
		ok      bool
		testedS bool
	)
	visited := map[graph.NodeID]bool{start: true}
	frontier := []graph.NodeID{start}
	depth := 0
	for len(frontier) > 0 && !ok {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			break
		}
		depth++
		var next []graph.NodeID
		for _, id := range frontier {
			if !step(s, id, opts, func(_ graph.EdgeID, n graph.NodeID) bool {
				if n == start {
					if !testedS {
						testedS = true
						if pred(n) {
							found, ok = n, true
							return false
						}
					}
					return true
				}
				if visited[n] {
					return true
				}
				visited[n] = true
				if pred(n) {
					found, ok = n, true
					return false
				}
				next = append(next, n)
				return true
			}) {
				break
			}
		}
		frontier = next
	}
	return found, ok, nil
}

// Step is one hop of a path: the edge taken and the node arrived at.
type Step struct {
	Edge graph.EdgeID
	Node graph.NodeID
}

// Path is a start node plus a sequence of steps.
type Path struct {
	Start graph.NodeID
	Steps []Step
}

// End returns the final node of the path.
func (p Path) End() graph.NodeID {
	if len(p.Steps) == 0 {
		return p.Start
	}
	return p.Steps[len(p.Steps)-1].Node
}

// Nodes returns all nodes on the path in order.
func (p Path) Nodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(p.Steps)+1)
	out = append(out, p.Start)
	for _, st := range p.Steps {
		out = append(out, st.Node)
	}
	return out
}

// Len returns the number of hops.
func (p Path) Len() int { return len(p.Steps) }

// ShortestPath returns a minimum-hop path from from to to under opts, and
// whether one exists. BFS with parent pointers; ties break on discovery
// order, which is deterministic given the store's edge ordering.
func ShortestPath(s graph.Source, from, to graph.NodeID, opts Options) (Path, bool) {
	if from == to {
		return Path{Start: from}, true
	}
	type parent struct {
		node graph.NodeID
		edge graph.EdgeID
	}
	parents := map[graph.NodeID]parent{from: {node: graph.InvalidID}}
	frontier := []graph.NodeID{from}
	depth := 0
	for len(frontier) > 0 {
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			return Path{}, false
		}
		depth++
		var next []graph.NodeID
		for _, id := range frontier {
			done := !step(s, id, opts, func(e graph.EdgeID, n graph.NodeID) bool {
				if _, seen := parents[n]; seen {
					return true
				}
				if opts.NodeFilter != nil && n != to && !opts.NodeFilter(n) {
					return true
				}
				parents[n] = parent{node: id, edge: e}
				if n == to {
					return false
				}
				next = append(next, n)
				return true
			})
			if done {
				// Reconstruct.
				var rev []Step
				cur := to
				for cur != from {
					p := parents[cur]
					rev = append(rev, Step{Edge: p.edge, Node: cur})
					cur = p.node
				}
				steps := make([]Step, len(rev))
				for i := range rev {
					steps[i] = rev[len(rev)-1-i]
				}
				return Path{Start: from, Steps: steps}, true
			}
		}
		frontier = next
	}
	return Path{}, false
}

// AllPaths enumerates every simple path (relationship-unique, as Cypher
// defines variable-length matches) from from to to with at most maxDepth
// hops, calling fn for each. fn returning false stops the enumeration.
// The cost is exponential in dense graphs — this is exactly the behaviour
// that made the paper's Figure 6 Cypher query run beyond 15 minutes.
func AllPaths(s graph.Source, from, to graph.NodeID, maxDepth int, opts Options, fn func(Path) bool) {
	usedEdges := make(map[graph.EdgeID]bool)
	var steps []Step
	var rec func(cur graph.NodeID) bool
	rec = func(cur graph.NodeID) bool {
		if cur == to && len(steps) > 0 {
			cp := make([]Step, len(steps))
			copy(cp, steps)
			if !fn(Path{Start: from, Steps: cp}) {
				return false
			}
		}
		if maxDepth > 0 && len(steps) >= maxDepth {
			return true
		}
		return step(s, cur, opts, func(e graph.EdgeID, n graph.NodeID) bool {
			if usedEdges[e] {
				return true
			}
			usedEdges[e] = true
			steps = append(steps, Step{Edge: e, Node: n})
			ok := rec(n)
			steps = steps[:len(steps)-1]
			delete(usedEdges, e)
			return ok
		})
	}
	rec(from)
}

// Degrees computes, for every node, the number of distinct nodes in its
// closure under opts — a building block for impact-analysis reports.
func ClosureSizes(s graph.Source, starts []graph.NodeID, opts Options) map[graph.NodeID]int {
	out := make(map[graph.NodeID]int, len(starts))
	for _, id := range starts {
		out[id] = len(TransitiveClosure(s, id, opts))
	}
	return out
}
