package model

import "testing"

func TestVocabularyComplete(t *testing.T) {
	// Table 1 of the paper lists 21 node types; the build model adds
	// object_file and library.
	if len(AllNodeTypes) != 23 {
		t.Fatalf("node types = %d, want 23", len(AllNodeTypes))
	}
	// Table 1 lists 30 edge types.
	if len(AllEdgeTypes) != 30 {
		t.Fatalf("edge types = %d, want 30", len(AllEdgeTypes))
	}
	seen := map[NodeType]bool{}
	for _, n := range AllNodeTypes {
		if seen[n] {
			t.Fatalf("duplicate node type %s", n)
		}
		seen[n] = true
	}
	seenE := map[EdgeType]bool{}
	for _, e := range AllEdgeTypes {
		if seenE[e] {
			t.Fatalf("duplicate edge type %s", e)
		}
		seenE[e] = true
	}
}

func TestGroupOf(t *testing.T) {
	cases := map[EdgeType]EdgeGroup{
		EdgeCompiledFrom:   GroupLink,
		EdgeLinkedFrom:     GroupLink,
		EdgeLinkMatches:    GroupLink,
		EdgeExpandsMacro:   GroupPreprocessor,
		EdgeIncludes:       GroupPreprocessor,
		EdgeContains:       GroupContainment,
		EdgeFileContains:   GroupContainment,
		EdgeHasParam:       GroupContainment,
		EdgeIsaType:        GroupTypeUse,
		EdgeCastsTo:        GroupTypeUse,
		EdgeGetsSizeOf:     GroupTypeUse,
		EdgeCalls:          GroupReference,
		EdgeWritesMember:   GroupReference,
		EdgeUsesEnumerator: GroupReference,
	}
	for et, want := range cases {
		if got := GroupOf(et); got != want {
			t.Errorf("GroupOf(%s) = %s, want %s", et, got, want)
		}
	}
}

func TestLabelsForCoverEveryType(t *testing.T) {
	// Every node type maps to a deterministic (possibly empty) label set,
	// and the grouped labels partition sensibly.
	for _, nt := range AllNodeTypes {
		ls := LabelsFor(nt)
		seen := map[string]bool{}
		for _, l := range ls {
			if seen[l] {
				t.Errorf("%s: duplicate label %s", nt, l)
			}
			seen[l] = true
		}
	}
	// Spot checks from the paper's §6.2 examples.
	has := func(nt NodeType, label string) bool {
		for _, l := range LabelsFor(nt) {
			if l == label {
				return true
			}
		}
		return false
	}
	if !has(NodeStruct, LabelContainer) || !has(NodeStruct, LabelType) {
		t.Error("struct must be container and type")
	}
	if !has(NodeFunction, LabelSymbol) {
		t.Error("function must be a symbol")
	}
	if has(NodePrimitive, LabelSymbol) {
		t.Error("primitive must not be a symbol")
	}
}

func TestDeclMappings(t *testing.T) {
	pairs := map[NodeType]NodeType{
		NodeFunctionDecl: NodeFunction,
		NodeGlobalDecl:   NodeGlobal,
		NodeStructDecl:   NodeStruct,
		NodeUnionDecl:    NodeUnion,
	}
	for decl, def := range pairs {
		if !IsDecl(decl) {
			t.Errorf("IsDecl(%s) = false", decl)
		}
		got, ok := DefinitionFor(decl)
		if !ok || got != def {
			t.Errorf("DefinitionFor(%s) = %s, %v", decl, got, ok)
		}
	}
	if IsDecl(NodeFunction) {
		t.Error("IsDecl(function) = true")
	}
	if _, ok := DefinitionFor(NodeFunction); ok {
		t.Error("DefinitionFor(function) should fail")
	}
}

func TestReferenceEdgesSubset(t *testing.T) {
	all := map[EdgeType]bool{}
	for _, e := range AllEdgeTypes {
		all[e] = true
	}
	for e := range ReferenceEdges {
		if !all[e] {
			t.Errorf("ReferenceEdges contains unknown type %s", e)
		}
	}
	// Structural edges must not be reference edges.
	for _, e := range []EdgeType{EdgeDirContains, EdgeFileContains, EdgeLinkedFrom, EdgeHasParam} {
		if ReferenceEdges[e] {
			t.Errorf("%s misclassified as a reference edge", e)
		}
	}
}
