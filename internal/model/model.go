// Package model defines the Frappé graph-model vocabulary: the node and
// edge types of Table 1 of the paper, the node and edge property keys of
// Table 2, and the grouped labels discussed in §6.2 (Table 6).
//
// The model package is deliberately free of behaviour beyond small pure
// helpers; every other package (graph store, query engine, extractor,
// workload generator) shares this vocabulary so that the paper's queries
// can be written verbatim against any of them.
package model

// NodeType is the concrete type of a graph node (Table 1, "Nodes").
type NodeType string

// Node types from Table 1 of the paper.
const (
	NodeDirectory    NodeType = "directory"
	NodeEnumDef      NodeType = "enum_def"
	NodeEnumerator   NodeType = "enumerator"
	NodeField        NodeType = "field"
	NodeFile         NodeType = "file"
	NodeFunction     NodeType = "function"
	NodeFunctionDecl NodeType = "function_decl"
	NodeFunctionType NodeType = "function_type"
	NodeGlobal       NodeType = "global"
	NodeGlobalDecl   NodeType = "global_decl"
	NodeLocal        NodeType = "local"
	NodeMacro        NodeType = "macro"
	NodeModule       NodeType = "module"
	NodeParameter    NodeType = "parameter"
	NodePrimitive    NodeType = "primitive"
	NodeStaticLocal  NodeType = "static_local"
	NodeStruct       NodeType = "struct"
	NodeStructDecl   NodeType = "struct_decl"
	NodeTypedef      NodeType = "typedef"
	NodeUnion        NodeType = "union"
	NodeUnionDecl    NodeType = "union_decl"

	// NodeObjectFile and NodeLibrary are not named in Table 1 (the paper
	// folds them into the prose around Figure 2, where foo.o is a node);
	// they are required to express compiled_from / linked_from chains.
	NodeObjectFile NodeType = "object_file"
	NodeLibrary    NodeType = "library"
)

// AllNodeTypes lists every node type in a stable order.
var AllNodeTypes = []NodeType{
	NodeDirectory, NodeEnumDef, NodeEnumerator, NodeField, NodeFile,
	NodeFunction, NodeFunctionDecl, NodeFunctionType, NodeGlobal,
	NodeGlobalDecl, NodeLocal, NodeMacro, NodeModule, NodeParameter,
	NodePrimitive, NodeStaticLocal, NodeStruct, NodeStructDecl,
	NodeTypedef, NodeUnion, NodeUnionDecl, NodeObjectFile, NodeLibrary,
}

// EdgeType is the type of a directed edge (Table 1, "Edges").
type EdgeType string

// Edge types from Table 1 of the paper.
const (
	EdgeCalls                EdgeType = "calls"
	EdgeCastsTo              EdgeType = "casts_to"
	EdgeCompiledFrom         EdgeType = "compiled_from"
	EdgeContains             EdgeType = "contains"
	EdgeDeclares             EdgeType = "declares"
	EdgeDereferences         EdgeType = "dereferences"
	EdgeDereferencesMember   EdgeType = "dereferences_member"
	EdgeDirContains          EdgeType = "dir_contains"
	EdgeExpandsMacro         EdgeType = "expands_macro"
	EdgeFileContains         EdgeType = "file_contains"
	EdgeGetsAlignOf          EdgeType = "gets_align_of"
	EdgeGetsSizeOf           EdgeType = "gets_size_of"
	EdgeHasLocal             EdgeType = "has_local"
	EdgeHasParam             EdgeType = "has_param"
	EdgeHasParamType         EdgeType = "has_param_type"
	EdgeHasRetType           EdgeType = "has_ret_type"
	EdgeIncludes             EdgeType = "includes"
	EdgeInterrogatesMacro    EdgeType = "interrogates_macro"
	EdgeIsaType              EdgeType = "isa_type"
	EdgeLinkDeclares         EdgeType = "link_declares"
	EdgeLinkMatches          EdgeType = "link_matches"
	EdgeLinkedFrom           EdgeType = "linked_from"
	EdgeLinkedFromLib        EdgeType = "linked_from_lib"
	EdgeReads                EdgeType = "reads"
	EdgeReadsMember          EdgeType = "reads_member"
	EdgeTakesAddressOf       EdgeType = "takes_address_of"
	EdgeTakesAddressOfMember EdgeType = "takes_address_of_member"
	EdgeUsesEnumerator       EdgeType = "uses_enumerator"
	EdgeWrites               EdgeType = "writes"
	EdgeWritesMember         EdgeType = "writes_member"
)

// AllEdgeTypes lists every edge type in a stable order.
var AllEdgeTypes = []EdgeType{
	EdgeCalls, EdgeCastsTo, EdgeCompiledFrom, EdgeContains, EdgeDeclares,
	EdgeDereferences, EdgeDereferencesMember, EdgeDirContains,
	EdgeExpandsMacro, EdgeFileContains, EdgeGetsAlignOf, EdgeGetsSizeOf,
	EdgeHasLocal, EdgeHasParam, EdgeHasParamType, EdgeHasRetType,
	EdgeIncludes, EdgeInterrogatesMacro, EdgeIsaType, EdgeLinkDeclares,
	EdgeLinkMatches, EdgeLinkedFrom, EdgeLinkedFromLib, EdgeReads,
	EdgeReadsMember, EdgeTakesAddressOf, EdgeTakesAddressOfMember,
	EdgeUsesEnumerator, EdgeWrites, EdgeWritesMember,
}

// Node property keys (Table 2, "Node property").
const (
	PropType      = "TYPE"
	PropShortName = "SHORT_NAME"
	PropName      = "NAME"
	PropLongName  = "LONG_NAME"
	PropValue     = "VALUE"    // enumerator integer value
	PropVariadic  = "VARIADIC" // present if the function is variadic
	PropVirtual   = "VIRTUAL"  // present if the function is virtual
	PropInMacro   = "IN_MACRO" // present if produced by a macro expansion
)

// Edge property keys (Table 2, "Edge property").
const (
	PropUseFileID     = "USE_FILE_ID"
	PropUseStartLine  = "USE_START_LINE"
	PropUseStartCol   = "USE_START_COL"
	PropUseEndLine    = "USE_END_LINE"
	PropUseEndCol     = "USE_END_COL"
	PropNameFileID    = "NAME_FILE_ID"
	PropNameStartLine = "NAME_START_LINE"
	PropNameStartCol  = "NAME_START_COL"
	PropNameEndLine   = "NAME_END_LINE"
	PropNameEndCol    = "NAME_END_COL"
	PropArrayLengths  = "ARRAY_LENGTHS"
	PropBitWidth      = "BIT_WIDTH"
	PropQualifiers    = "QUALIFIERS"
	PropIndex         = "INDEX"
	PropLinkOrder     = "LINK_ORDER"
)

// Grouped node labels (§6.2 / Table 6 of the paper). Nodes carry their
// concrete TYPE label plus any group labels that apply, so Cypher 2.x
// queries like MATCH (n:container:symbol{name:"foo"}) work.
const (
	LabelSymbol    = "symbol"
	LabelType      = "type"
	LabelContainer = "container"
	LabelValue     = "value"
	LabelDecl      = "decl"
)

// Grouped edge categories (§6.2; Neo4j lacks edge labels, so these exist
// only as a Go-level classification used by traversals and the code map).
type EdgeGroup string

const (
	GroupLink         EdgeGroup = "link"
	GroupPreprocessor EdgeGroup = "preprocessor"
	GroupContainment  EdgeGroup = "containment"
	GroupReference    EdgeGroup = "reference"
	GroupTypeUse      EdgeGroup = "type_use"
)

// GroupOf reports the grouped category of an edge type.
func GroupOf(t EdgeType) EdgeGroup {
	switch t {
	case EdgeCompiledFrom, EdgeLinkedFrom, EdgeLinkedFromLib, EdgeLinkDeclares, EdgeLinkMatches:
		return GroupLink
	case EdgeExpandsMacro, EdgeInterrogatesMacro, EdgeIncludes:
		return GroupPreprocessor
	case EdgeContains, EdgeDirContains, EdgeFileContains, EdgeHasLocal, EdgeHasParam:
		return GroupContainment
	case EdgeIsaType, EdgeHasRetType, EdgeHasParamType, EdgeCastsTo, EdgeGetsSizeOf, EdgeGetsAlignOf:
		return GroupTypeUse
	default:
		return GroupReference
	}
}

// LabelsFor returns the grouped labels for a node type, excluding the
// concrete type label itself (which is always present).
func LabelsFor(t NodeType) []string {
	var ls []string
	switch t {
	case NodeFunction, NodeFunctionDecl, NodeGlobal, NodeGlobalDecl,
		NodeLocal, NodeStaticLocal, NodeParameter, NodeField,
		NodeEnumerator, NodeMacro:
		ls = append(ls, LabelSymbol)
	}
	switch t {
	case NodeStruct, NodeStructDecl, NodeUnion, NodeUnionDecl,
		NodeEnumDef, NodeTypedef, NodePrimitive, NodeFunctionType:
		ls = append(ls, LabelType)
	}
	switch t {
	case NodeStruct, NodeUnion, NodeEnumDef, NodeFile, NodeDirectory,
		NodeModule, NodeFunction:
		ls = append(ls, LabelContainer)
	}
	switch t {
	case NodeGlobal, NodeLocal, NodeStaticLocal, NodeParameter, NodeField:
		ls = append(ls, LabelValue)
	}
	switch t {
	case NodeFunctionDecl, NodeGlobalDecl, NodeStructDecl, NodeUnionDecl:
		ls = append(ls, LabelDecl)
	}
	return ls
}

// IsDecl reports whether the node type is a declaration (as opposed to a
// definition) flavour of a symbol.
func IsDecl(t NodeType) bool {
	switch t {
	case NodeFunctionDecl, NodeGlobalDecl, NodeStructDecl, NodeUnionDecl:
		return true
	}
	return false
}

// DefinitionFor maps a declaration node type to the node type of the
// definition it declares; ok is false for non-declaration types.
func DefinitionFor(t NodeType) (NodeType, bool) {
	switch t {
	case NodeFunctionDecl:
		return NodeFunction, true
	case NodeGlobalDecl:
		return NodeGlobal, true
	case NodeStructDecl:
		return NodeStruct, true
	case NodeUnionDecl:
		return NodeUnion, true
	}
	return "", false
}

// ReferenceEdges are the edge types that represent a use of one symbol in
// the body of another and therefore carry USE_*/NAME_* source ranges.
var ReferenceEdges = map[EdgeType]bool{
	EdgeCalls: true, EdgeReads: true, EdgeWrites: true,
	EdgeReadsMember: true, EdgeWritesMember: true,
	EdgeDereferences: true, EdgeDereferencesMember: true,
	EdgeTakesAddressOf: true, EdgeTakesAddressOfMember: true,
	EdgeUsesEnumerator: true, EdgeExpandsMacro: true,
	EdgeInterrogatesMacro: true, EdgeGetsSizeOf: true,
	EdgeGetsAlignOf: true, EdgeCastsTo: true, EdgeIsaType: true,
}
