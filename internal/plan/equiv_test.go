package plan_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/gstats"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
	"frappe/internal/plan"
	"frappe/internal/query"
)

// The paper's figure queries (same text the bench harness uses).
const (
	figure3Query = `
START m=node:node_auto_index('short_name: wakeup.elf')
MATCH m -[:compiled_from|linked_from*]-> f
WITH distinct f
MATCH f -[:file_contains]-> (n:field{short_name: 'id'})
RETURN distinct n`

	figure5Query = `
START from=node:node_auto_index('short_name: sr_media_change'),
      to=node:node_auto_index('short_name: get_sectorsize'),
      b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line`

	figure6Query = `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*]-> m
RETURN distinct m`
)

var (
	tinyOnce sync.Once
	tinySrc  graph.Source
	tinySt   *gstats.Stats
)

// tinyGraph extracts the paper-shaped synthetic kernel once per test
// binary; the figure queries all resolve against it.
func tinyGraph(t *testing.T) (graph.Source, *gstats.Stats) {
	t.Helper()
	tinyOnce.Do(func() {
		w := kernelgen.Generate(kernelgen.Tiny())
		res, err := w.Extract()
		if err != nil {
			panic(err)
		}
		tinySrc = res.Graph
		tinySt = gstats.Collect(res.Graph)
	})
	return tinySrc, tinySt
}

// canon renders a result order-insensitively: Cypher leaves row order
// unspecified without ORDER BY, and the closure rewrite legitimately
// discovers endpoints in BFS rather than DFS order.
func canon(src graph.Source, res *query.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, "\t"))
	sb.WriteByte('\n')
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.Format(src)
		}
		lines = append(lines, strings.Join(cells, "\t"))
	}
	sort.Strings(lines)
	sb.WriteString(strings.Join(lines, "\n"))
	return sb.String()
}

// runBoth executes text on the naive interpreter and through the
// planner and requires byte-identical canonical results (or errors on
// both sides). A naive budget abort where planned execution succeeds is
// the rewrite working as intended (less work under the same budget) and
// is logged, not failed; the reverse — planned aborting where naive
// succeeds — is always a planner regression.
func runBoth(t *testing.T, src graph.Source, st *gstats.Stats, text string, lim query.Limits) {
	t.Helper()
	ctx := context.Background()
	q, err := query.Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	naive, nerr := query.ExecuteLimits(ctx, src, q, lim)
	p := plan.Compile(q, st)
	planned, perr := p.Execute(ctx, src, lim)
	if errors.Is(nerr, query.ErrBudgetExceeded) && perr == nil {
		t.Logf("naive budget-aborted where planned succeeded (rewrite win): %q", text)
		return
	}
	if (nerr != nil) != (perr != nil) {
		t.Fatalf("error divergence for %q:\n naive:   %v\n planned: %v\n(plan: %s)", text, nerr, perr, p.Explain())
	}
	if nerr != nil {
		return
	}
	if got, want := canon(src, planned), canon(src, naive); got != want {
		t.Fatalf("result divergence for %q:\nplan:\n%s\nnaive (%d rows):\n%s\nplanned (%d rows):\n%s",
			text, p.Explain(), len(naive.Rows), want, len(planned.Rows), got)
	}
}

func TestFigureQueriesEquivalent(t *testing.T) {
	src, st := tinyGraph(t)
	for name, text := range map[string]string{
		"figure3": figure3Query,
		"figure5": figure5Query,
		// Figure 6 unbudgeted naive enumeration runs for minutes even on
		// the tiny graph (that is the paper's point); the bounded form
		// checks the same rewrite path with a finishable baseline, and
		// TestFigure6PlannedBeatsNaive covers the unbounded behaviour.
		"figure6bounded": strings.Replace(figure6Query, "-[:calls*]->", "-[:calls*..4]->", 1),
	} {
		t.Run(name, func(t *testing.T) {
			runBoth(t, src, st, text, query.Limits{})
		})
	}
}

// TestFigure6PlannedBeatsNaive is the acceptance proof as a unit test:
// under one step budget the naive interpreter aborts on the unbounded
// closure while the planned execution completes.
func TestFigure6PlannedBeatsNaive(t *testing.T) {
	src, st := tinyGraph(t)
	q, err := query.Parse(figure6Query)
	if err != nil {
		t.Fatal(err)
	}
	p := plan.Compile(q, st)
	if p.Rewrites != 1 {
		t.Fatalf("figure 6 not rewritten: %s", p.Explain())
	}
	lim := query.Limits{MaxSteps: 2_000_000}
	if _, err := query.ExecuteLimits(context.Background(), src, q, lim); !errors.Is(err, query.ErrBudgetExceeded) {
		t.Fatalf("naive figure 6 finished within %d steps (err=%v); graph too easy for the regression to bite", lim.MaxSteps, err)
	}
	planned, err := p.Execute(context.Background(), src, lim)
	if err != nil {
		t.Fatalf("planned figure 6 under the same budget: %v", err)
	}
	if len(planned.Rows) == 0 {
		t.Fatal("planned figure 6 returned no rows")
	}
	if planned.Steps >= lim.MaxSteps {
		t.Fatalf("planned figure 6 used %d steps, want far under %d", planned.Steps, lim.MaxSteps)
	}
}

// TestDiamondClosureEquivalence pits the rewrite against a graph with
// exponentially many paths but a tiny node set: a chain of diamonds
// (2^12 distinct paths, 49 nodes). Naive enumeration still finishes, so
// unbounded-closure equivalence is checked exactly.
func TestDiamondClosureEquivalence(t *testing.T) {
	g := graph.New()
	cur := g.AddNode(model.NodeFunction, graph.P(model.PropShortName, "root"))
	for i := 0; i < 12; i++ {
		a := g.AddNode(model.NodeFunction, nil)
		b := g.AddNode(model.NodeFunction, nil)
		join := g.AddNode(model.NodeFunction, nil)
		g.AddEdge(cur, a, model.EdgeCalls, nil)
		g.AddEdge(cur, b, model.EdgeCalls, nil)
		g.AddEdge(a, join, model.EdgeCalls, nil)
		g.AddEdge(b, join, model.EdgeCalls, nil)
		cur = join
	}
	// A back edge to the root puts the start node on a cycle.
	g.AddEdge(cur, graph.NodeID(0), model.EdgeCalls, nil)
	st := gstats.Collect(g)
	for _, text := range []string{
		`START n=node:node_auto_index('short_name: root') MATCH n -[:calls*]-> m RETURN distinct m`,
		`START n=node:node_auto_index('short_name: root') MATCH n -[:calls*0..]-> m RETURN distinct m`,
		`START n=node:node_auto_index('short_name: root') MATCH n -[:calls*..3]-> m RETURN count(distinct m)`,
		`START n=node:node_auto_index('short_name: root') MATCH n <-[:calls*]- m RETURN distinct m`,
	} {
		runBoth(t, g, st, text, query.Limits{})
	}
}

// TestHandWrittenEquivalence covers the rewrite's edge cases: bounds,
// zero-length, direction, undirectedness, aggregates, predicates,
// OPTIONAL, and shapes that must NOT be rewritten.
func TestHandWrittenEquivalence(t *testing.T) {
	src, st := tinyGraph(t)
	queries := []string{
		// Unbounded closure, label-filtered endpoint.
		`START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls*]-> (m:function) RETURN distinct m.short_name`,
		// Bounded depth.
		`START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls*..2]-> m RETURN distinct m`,
		// Zero-length minimum.
		`START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls*0..]-> m RETURN distinct m`,
		// Reverse direction (callers).
		`START n=node:node_auto_index('short_name: pci_read_bases') MATCH n <-[:calls*]- m RETURN distinct m`,
		// Undirected closure.
		`START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls*..3]- m RETURN distinct m`,
		// Multiple relationship types.
		`START n=node:node_auto_index('short_name: wakeup.elf') MATCH n -[:compiled_from|linked_from*]-> f RETURN distinct f`,
		// Duplication-invariant aggregates.
		`START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls*..3]-> m RETURN count(distinct m)`,
		`START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls*..3]-> m RETURN min(m.short_name), max(m.short_name)`,
		// Grouped duplication-invariant aggregate.
		`START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls*..3]-> (m:function) RETURN m.short_name, count(distinct m) ORDER BY m.short_name`,
		// NOT rewritten: plain count(*) observes multiplicity.
		`START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls*..3]-> m RETURN count(*)`,
		// NOT rewritten: relationship variable binds the path's edges.
		`START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[r:calls*..2]-> m RETURN distinct m`,
		// NOT rewritten: non-distinct projection.
		`START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls*..2]-> m RETURN m.short_name ORDER BY m.short_name`,
		// NOT rewritten: minimum depth 2.
		`START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls*2..3]-> m RETURN distinct m`,
		// OPTIONAL MATCH with closure (no match must yield a null row).
		`START n=node:node_auto_index('short_name: pci_read_bases') OPTIONAL MATCH n -[:sets*]-> m RETURN distinct m`,
		// WHERE reachability predicate, both endpoints bound.
		`START a=node:node_auto_index('short_name: sr_media_change'), b=node:node_auto_index('short_name: get_sectorsize') MATCH a -[:calls]-> x WHERE a -[:calls*]-> b RETURN distinct x.short_name`,
		// WHERE reachability predicate, one endpoint bound.
		`START a=node:node_auto_index('short_name: pci_read_bases') MATCH a -[:calls]-> x WHERE x -[:calls*]-> (:function{short_name: 'pci_conf1_read'}) RETURN distinct x.short_name`,
		// Negated reachability.
		`START a=node:node_auto_index('short_name: pci_read_bases') MATCH a -[:calls]-> x WHERE NOT x -[:calls*]-> (:function{short_name: 'pci_conf1_read'}) RETURN distinct x.short_name`,
		// Unbound anchored pattern: planner picks the anchor side.
		`MATCH (f:function) -[:calls]-> (g:function{short_name: 'pci_conf1_read'}) RETURN distinct f.short_name`,
		// Chain with WITH pipeline.
		`MATCH (f:function{short_name: 'pci_read_bases'}) -[:calls*..2]-> g WITH distinct g MATCH g -[:calls]-> h RETURN distinct h.short_name`,
		// Shortest path untouched by the planner.
		`START a=node:node_auto_index('short_name: sr_media_change'), b=node:node_auto_index('short_name: get_sectorsize') MATCH p = shortestPath(a -[:calls*..6]-> b) RETURN length(p)`,
	}
	for i, text := range queries {
		t.Run(fmt.Sprintf("q%02d", i), func(t *testing.T) {
			runBoth(t, src, st, text, query.Limits{MaxSteps: 3_000_000})
		})
	}
}

// TestRandomizedEquivalence fuzzes pattern shapes over a small synthetic
// graph with cycles and skewed degrees (seeded, deterministic).
func TestRandomizedEquivalence(t *testing.T) {
	g := graph.New()
	const n = 36
	rng := rand.New(rand.NewSource(7))
	types := []model.NodeType{model.NodeFunction, model.NodeStruct, model.NodeField}
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		typ := types[rng.Intn(len(types))]
		ids[i] = g.AddNode(typ, graph.P(model.PropShortName, fmt.Sprintf("n%02d", i)))
	}
	etypes := []model.EdgeType{model.EdgeCalls, model.EdgeContains}
	for i := 0; i < 48; i++ {
		g.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], etypes[rng.Intn(len(etypes))], nil)
	}
	st := gstats.Collect(g)

	labels := []string{"", ":function", ":struct", ":field"}
	rels := []string{"-[:calls*]->", "<-[:calls*]-", "-[:calls*..2]->", "-[:calls*0..3]->",
		"-[:calls*]-", "-[:contains*]->", "-[:calls|contains*..3]->", "-[:calls]->", "<-[:contains]-"}
	for i := 0; i < 120; i++ {
		l1, l2 := labels[rng.Intn(len(labels))], labels[rng.Intn(len(labels))]
		rel := rels[rng.Intn(len(rels))]
		var sb strings.Builder
		anchored := rng.Intn(2) == 0
		if anchored {
			fmt.Fprintf(&sb, "START a=node:node_auto_index('short_name: n%02d') MATCH a %s (b%s)", rng.Intn(n), rel, l2)
		} else {
			fmt.Fprintf(&sb, "MATCH (a%s) %s (b%s)", l1, rel, l2)
		}
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, " WHERE a -[:calls*]-> (:struct)")
		}
		switch rng.Intn(3) {
		case 0:
			sb.WriteString(" RETURN distinct b")
		case 1:
			sb.WriteString(" RETURN count(distinct b)")
		case 2:
			sb.WriteString(" RETURN distinct a.short_name, b.short_name")
		}
		text := sb.String()
		t.Run(fmt.Sprintf("r%03d", i), func(t *testing.T) {
			runBoth(t, g, st, text, query.Limits{MaxSteps: 2_000_000})
		})
	}
}

// TestBudgetParity: budgets and cancellation abort planned execution
// exactly like the interpreter.
func TestBudgetParity(t *testing.T) {
	src, st := tinyGraph(t)
	q, err := query.Parse(figure6Query)
	if err != nil {
		t.Fatal(err)
	}
	p := plan.Compile(q, st)

	for _, lim := range []query.Limits{{MaxSteps: 1}, {MaxRows: 1}} {
		_, nerr := query.ExecuteLimits(context.Background(), src, q, lim)
		_, perr := p.Execute(context.Background(), src, lim)
		if !errors.Is(nerr, query.ErrBudgetExceeded) || !errors.Is(perr, query.ErrBudgetExceeded) {
			t.Fatalf("limits %+v: naive err %v, planned err %v; want budget aborts on both", lim, nerr, perr)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Execute(ctx, src, query.Limits{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("planned execution on cancelled ctx: %v, want context.Canceled", err)
	}
	if _, err := query.ExecuteLimits(ctx, src, q, query.Limits{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("naive execution on cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestConcurrentPlanExecution: one compiled plan shared across
// goroutines must be race-free (plans are immutable; state lives in the
// per-run Env).
func TestConcurrentPlanExecution(t *testing.T) {
	src, st := tinyGraph(t)
	q, err := query.Parse(figure6Query)
	if err != nil {
		t.Fatal(err)
	}
	p := plan.Compile(q, st)
	want, err := p.Execute(context.Background(), src, query.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				res, err := p.Execute(context.Background(), src, query.Limits{})
				if err != nil || len(res.Rows) != len(want.Rows) {
					t.Errorf("concurrent execute: err=%v rows=%d want %d", err, len(res.Rows), len(want.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
}
