package plan

import (
	"context"
	"time"

	"frappe/internal/graph"
	"frappe/internal/obs/trace"
	"frappe/internal/query"
)

// Execute runs the compiled plan over src under resource budgets. Plans
// are immutable and safe for concurrent Execute calls; each call gets
// its own execution environment.
func (p *Plan) Execute(ctx context.Context, src graph.Source, lim query.Limits) (*query.Result, error) {
	res, _, err := p.execute(ctx, src, lim, false)
	return res, err
}

// ExecuteProfile runs the plan with per-operator tracing; the returned
// profile carries the EXPLAIN rendering in Profile.Plan and is non-nil
// even when execution errors (partial traces survive budget aborts,
// matching the interpreter).
func (p *Plan) ExecuteProfile(ctx context.Context, src graph.Source, lim query.Limits) (*query.Result, *query.Profile, error) {
	return p.execute(ctx, src, lim, true)
}

func (p *Plan) execute(ctx context.Context, src graph.Source, lim query.Limits, profile bool) (res *query.Result, prof *query.Profile, err error) {
	if p.Fallback {
		// Non-straight-line clause shapes run on the interpreter so
		// error diagnostics stay identical; the plan only contributes
		// its EXPLAIN text.
		if profile {
			res, prof, err = query.ExecuteProfileLimits(ctx, src, p.Query, lim)
			if prof != nil {
				prof.Plan = p.Explain()
			}
			return res, prof, err
		}
		res, err = query.ExecuteLimits(ctx, src, p.Query, lim)
		return res, nil, err
	}

	start := time.Now()
	env := query.NewEnv(ctx, src, lim, profile)
	env.SetFastPredicates(true)
	sp := trace.FromContext(ctx).Child("query.execute", trace.Bool("interpreter", false))
	defer func() {
		if r := recover(); r != nil {
			err = query.AbortError(r)
			res = nil
		}
		millis := float64(time.Since(start)) / float64(time.Millisecond)
		query.RecordQueryMetrics(res, err, millis, env.Steps())
		if pr := env.Profile(); pr != nil {
			pr.Steps = env.Steps()
			pr.Millis = millis
			if res != nil {
				pr.Rows = int64(len(res.Rows))
			}
			pr.Plan = p.Explain()
			prof = pr
		}
		if sp != nil {
			sp.SetAttr(trace.Int("steps", env.Steps()))
			if res != nil {
				sp.SetAttr(trace.Int("rows", int64(len(res.Rows))))
			}
			if err != nil {
				sp.SetError(err)
			}
			sp.End()
		}
	}()

	rows := env.InitialRows()
	// instrument gates the per-clause clock: PROFILE and tracing share it.
	instrument := profile || sp != nil
	record := func(c query.Clause, stepsBefore int64, t0 time.Time, out int64) {
		pr := env.Profile()
		if pr == nil && sp == nil {
			return
		}
		op, detail := query.OperatorInfo(c)
		if sp != nil {
			cs := sp.ChildSince("clause."+op, t0,
				trace.Str("detail", detail),
				trace.Int("rows", out),
				trace.Int("dbHits", env.Steps()-stepsBefore))
			cs.End()
		}
		if pr == nil {
			return
		}
		pr.Ops = append(pr.Ops, query.OpProfile{
			Operator: op,
			Detail:   detail,
			Rows:     out,
			DBHits:   env.Steps() - stepsBefore,
			Millis:   float64(time.Since(t0)) / float64(time.Millisecond),
		})
	}
	for _, s := range p.steps {
		stepsBefore := env.Steps()
		var t0 time.Time
		if instrument {
			t0 = time.Now()
		}
		switch t := s.clause.(type) {
		case *query.StartClause:
			rows, err = env.Start(rows, t)
		case *query.MatchClause:
			rows, err = env.Match(rows, t, s.hints)
		case *query.WhereClause:
			rows, err = env.Where(rows, t)
		case *query.WithClause:
			rows, _, err = env.Project(rows, t.Items, t.Distinct, t.OrderBy, t.Skip, t.Limit)
		}
		record(s.clause, stepsBefore, t0, int64(len(rows)))
		if err != nil {
			return nil, nil, err
		}
	}

	stepsBefore := env.Steps()
	var t0 time.Time
	if instrument {
		t0 = time.Now()
	}
	projected, cols, err := env.Project(rows, p.ret.Items, p.ret.Distinct, p.ret.OrderBy, p.ret.Skip, p.ret.Limit)
	if err != nil {
		record(p.ret, stepsBefore, t0, 0)
		return nil, nil, err
	}
	res = env.BuildResult(projected, cols)
	record(p.ret, stepsBefore, t0, int64(len(res.Rows)))
	return res, nil, nil
}
