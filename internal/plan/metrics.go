package plan

import "frappe/internal/obs"

var (
	mRewrites = obs.Default.Counter(
		"frappe_plan_rewrites_total",
		"Closure rewrites applied by the query planner (variable-length expansion lowered to visited-set traversal).",
		nil,
	)
	mFallbacks = obs.Default.Counter(
		"frappe_plan_fallbacks_total",
		"Compiled queries delegated wholesale to the tree-walk interpreter (non-straight-line clause shape).",
		nil,
	)
	// Buckets sized for plan construction: an AST walk plus map lookups,
	// microseconds in the common case.
	mPlanBuild = obs.Default.Histogram(
		"frappe_plan_build_duration_ms",
		"Wall time to compile one query plan, in milliseconds.",
		nil,
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50},
	)
)

// Counters is the planner section of /api/stats.
type Counters struct {
	Rewrites      int64 `json:"rewrites"`
	Fallbacks     int64 `json:"fallbacks"`
	StatsRebuilds int64 `json:"statsRebuilds"`
}

// CountersSnapshot samples the planner counters (stats rebuilds are
// filled in by the caller from internal/gstats).
func CountersSnapshot() Counters {
	return Counters{
		Rewrites:  mRewrites.Value(),
		Fallbacks: mFallbacks.Value(),
	}
}
