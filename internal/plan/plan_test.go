package plan_test

import (
	"strings"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/gstats"
	"frappe/internal/model"
	"frappe/internal/plan"
	"frappe/internal/query"
)

func mustParse(t *testing.T, text string) *query.Query {
	t.Helper()
	q, err := query.Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return q
}

// TestClosureLegality is the legality table for the closure rewrite:
// each case states whether the downstream-invariance proof must accept
// or reject the variable-length expansion.
func TestClosureLegality(t *testing.T) {
	cases := []struct {
		name    string
		text    string
		rewrite bool
	}{
		{"distinct node", `START n=node(0) MATCH n -[:calls*]-> m RETURN distinct m`, true},
		{"distinct property", `START n=node(0) MATCH n -[:calls*]-> m RETURN distinct m.short_name`, true},
		{"bounded depth", `START n=node(0) MATCH n -[:calls*..4]-> m RETURN distinct m`, true},
		{"zero minimum", `START n=node(0) MATCH n -[:calls*0..]-> m RETURN distinct m`, true},
		{"reverse direction", `START n=node(0) MATCH n <-[:calls*]- m RETURN distinct m`, true},
		{"undirected zero minimum", `START n=node(0) MATCH n -[:calls*0..]- m RETURN distinct m`, true},
		{"undirected start membership", `START n=node(0) MATCH n -[:calls*]- m RETURN distinct m`, false},
		{"count distinct", `START n=node(0) MATCH n -[:calls*]-> m RETURN count(distinct m)`, true},
		{"min max", `START n=node(0) MATCH n -[:calls*]-> m RETURN min(m.short_name), max(m.short_name)`, true},
		{"collect distinct", `START n=node(0) MATCH n -[:calls*]-> m RETURN collect(distinct m.short_name)`, true},
		{"where is transparent", `START n=node(0) MATCH n -[:calls*]-> m WHERE m.short_name = 'x' RETURN distinct m`, true},
		{"with distinct then more", `START n=node(0) MATCH n -[:calls*]-> m WITH distinct m RETURN m.short_name ORDER BY m.short_name`, true},

		{"non-distinct return", `START n=node(0) MATCH n -[:calls*]-> m RETURN m`, false},
		{"count star", `START n=node(0) MATCH n -[:calls*]-> m RETURN count(*)`, false},
		{"count without distinct", `START n=node(0) MATCH n -[:calls*]-> m RETURN count(m)`, false},
		{"sum without distinct", `START n=node(0) MATCH n -[:calls*]-> m RETURN sum(m.use_start_line)`, false},
		{"min hops two", `START n=node(0) MATCH n -[:calls*2..]-> m RETURN distinct m`, false},
		{"rel variable observes paths", `START n=node(0) MATCH n -[r:calls*]-> m RETURN distinct m`, false},
		{"path variable observes paths", `START n=node(0) MATCH p = n -[:calls*]-> m RETURN distinct m`, false},
		{"limit selects by order", `START n=node(0) MATCH n -[:calls*]-> m RETURN distinct m LIMIT 5`, false},
		{"skip selects by order", `START n=node(0) MATCH n -[:calls*]-> m RETURN distinct m SKIP 2`, false},
		{"second match intervenes", `START n=node(0) MATCH n -[:calls*]-> m MATCH m -[:contains]-> k RETURN distinct k`, false},
		{"multi-pattern match shares edge set", `START n=node(0) MATCH n -[:calls*]-> m, n -[:calls]-> k RETURN distinct m, k`, false},
		{"single hop is not varlen", `START n=node(0) MATCH n -[:calls]-> m RETURN distinct m`, false},
		{"shortest path has its own executor", `START n=node(0), m=node(1) MATCH p = shortestPath(n -[:calls*]-> m) RETURN distinct m`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := plan.Compile(mustParse(t, tc.text), nil)
			if got := p.Rewrites > 0; got != tc.rewrite {
				t.Fatalf("rewrite=%v, want %v\n%s", got, tc.rewrite, p.Explain())
			}
		})
	}
}

// skewedGraph builds a graph where anchoring a (f:function)-[:contains]->(v:global)
// pattern at the variable side is clearly cheaper: many functions, few
// variables, and contains fan-out concentrated on the function side.
func skewedGraph(t *testing.T) (*graph.Graph, *gstats.Stats) {
	t.Helper()
	g := graph.New()
	vars := make([]graph.NodeID, 3)
	for i := range vars {
		vars[i] = g.AddNode(model.NodeGlobal, nil)
	}
	for i := 0; i < 200; i++ {
		f := g.AddNode(model.NodeFunction, nil)
		for _, v := range vars {
			g.AddEdge(f, v, model.EdgeContains, nil)
		}
	}
	return g, gstats.Collect(g)
}

func TestAnchorChoicePrefersSmallLabel(t *testing.T) {
	_, st := skewedGraph(t)
	q := mustParse(t, `MATCH (f:function) -[:contains]-> (v:global) RETURN distinct f`)
	p := plan.Compile(q, st)
	if len(p.Hints) != 1 || len(p.Hints[0]) != 1 {
		t.Fatalf("expected one hint, got %+v", p.Hints)
	}
	if p.Hints[0][0].Anchor != 1 {
		t.Fatalf("anchor = %d, want 1 (variable side)\n%s", p.Hints[0][0].Anchor, p.Explain())
	}
}

func TestBoundVariableBeatsCostModel(t *testing.T) {
	_, st := skewedGraph(t)
	// f is bound by the START clause; the planner must not override a
	// bound seed with a scan, however cheap.
	q := mustParse(t, `START f=node(3) MATCH f -[:contains]-> (v:global) RETURN distinct v`)
	p := plan.Compile(q, st)
	if p.Hints[0][0].Anchor != 0 {
		t.Fatalf("anchor = %d, want 0 (bound var wins)\n%s", p.Hints[0][0].Anchor, p.Explain())
	}
}

func TestAnchorPrefersIndexLookup(t *testing.T) {
	// 1:1 function→global shape: both label scans cost ~200, but the
	// indexed property seed is near-constant with fan-out 1 behind it.
	// (In skewedGraph the globals are high-in-degree hubs and a label
	// scan legitimately beats expanding backwards from the index seed.)
	g := graph.New()
	for i := 0; i < 200; i++ {
		f := g.AddNode(model.NodeFunction, nil)
		v := g.AddNode(model.NodeGlobal, graph.P(model.PropShortName, "g"))
		g.AddEdge(f, v, model.EdgeContains, nil)
	}
	st := gstats.Collect(g)
	q := mustParse(t, `MATCH (f:function) -[:contains]-> (v:global{short_name: 'x'}) RETURN distinct f`)
	p := plan.Compile(q, st)
	if p.Hints[0][0].Anchor != 1 {
		t.Fatalf("anchor = %d, want 1 (index lookup)\n%s", p.Hints[0][0].Anchor, p.Explain())
	}
	if !strings.Contains(p.Explain(), "index lookup") {
		t.Fatalf("explain missing index-lookup note:\n%s", p.Explain())
	}
}

func TestExplainContent(t *testing.T) {
	_, st := skewedGraph(t)
	p := plan.Compile(mustParse(t, `START n=node(0) MATCH n -[:calls*]-> m RETURN distinct m`), st)
	out := p.Explain()
	for _, want := range []string{
		"Plan (stats generation",
		"1 closure rewrite(s)",
		"closure rewrite",
		"visited-set BFS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "interpreter fallback") {
		t.Fatalf("unexpected fallback:\n%s", out)
	}
}

func TestFallbackShapes(t *testing.T) {
	for name, text := range map[string]string{
		"missing return": `START n=node(0) MATCH n -[:calls]-> m`,
		"return mid-pipeline": `START n=node(0)
RETURN n
UNION
START m=node(1)
RETURN m`,
	} {
		t.Run(name, func(t *testing.T) {
			q, err := query.Parse(text)
			if err != nil {
				t.Skipf("parser rejects %q outright: %v", name, err)
			}
			p := plan.Compile(q, nil)
			if !p.Fallback {
				t.Fatalf("expected fallback for %q\n%s", text, p.Explain())
			}
			if !strings.Contains(p.Explain(), "interpreter fallback") {
				t.Fatalf("EXPLAIN missing fallback marker:\n%s", p.Explain())
			}
		})
	}
}

// TestGenerationStamped pins the plan-cache contract: the plan records
// the generation of the statistics it was compiled against.
func TestGenerationStamped(t *testing.T) {
	_, st := skewedGraph(t)
	p := plan.Compile(mustParse(t, `MATCH (f:function) RETURN distinct f`), st)
	if p.Generation != st.Generation {
		t.Fatalf("plan generation %d != stats generation %d", p.Generation, st.Generation)
	}
	if p0 := plan.Compile(mustParse(t, `MATCH (f:function) RETURN distinct f`), nil); p0.Generation != 0 {
		t.Fatalf("nil-stats plan generation = %d, want 0", p0.Generation)
	}
}
