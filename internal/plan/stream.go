package plan

import (
	"context"

	"frappe/internal/graph"
	"frappe/internal/query"
)

// Stream runs the compiled plan as a streaming execution: rows arrive
// through the returned Stream's bounded channel instead of a
// materialized Result. Fully-pipelineable shapes (no ORDER BY, no
// aggregation — see query.Streamable) run with memory bounded by the
// channel depth and keep every planner decision, including the closure
// rewrite (its legality proof is about downstream multiplicity
// invariance, which a streaming DISTINCT preserves). Everything else —
// interpreter fallbacks included — materializes through Execute and
// replays its rows, so streamed and materialized rows are always
// identical.
func (p *Plan) Stream(ctx context.Context, src graph.Source, lim query.Limits, depth int) *query.Stream {
	if !p.Fallback && query.Streamable(p.Query) {
		return query.PipelinedStream(ctx, src, p.Query, lim, p.Hints, true, depth)
	}
	return query.MaterializedStream(ctx, depth, func() (*query.Result, error) {
		return p.Execute(ctx, src, lim)
	})
}
