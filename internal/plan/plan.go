// Package plan is the cost-based query planner. It consumes per-snapshot
// graph statistics (internal/gstats) to make two kinds of decisions over
// a parsed Cypher query:
//
//   - Cost decisions: pick the cheapest anchor position for unbound
//     MATCH patterns (index lookup < concrete-label scan < full scan,
//     weighted by estimated expansion fan-out) and order expansion so
//     the lower-fan-out side of the anchor runs first.
//
//   - The closure rewrite: a variable-length expansion whose bindings
//     cannot escape (no relationship or path variable) and whose
//     downstream clauses are multiplicity-invariant (DISTINCT
//     projection, or only duplication-invariant aggregates such as
//     min/max/count(DISTINCT)) is lowered from Cypher's path
//     enumeration to a visited-set transitive closure
//     (traversal.TransitiveClosureCtx). A simple path exists to exactly
//     the nodes BFS reaches, so the endpoint set is identical; only
//     per-path multiplicity differs, which the invariance analysis
//     proves unobservable. This is the paper's Figure 6 result — ">15
//     minutes of Cypher vs ~20 ms of embedded traversal" — applied
//     inside the query engine itself.
//
// Compile produces an immutable Plan; executing it walks the same
// clause primitives as the interpreter (query.Env), so planned and
// naive execution share one semantics modulo the proven rewrites. Plans
// are safe for concurrent execution and are cached by internal/qcache
// keyed on (query text, statistics generation).
package plan

import (
	"fmt"
	"math"
	"strings"
	"time"

	"frappe/internal/graph"
	"frappe/internal/gstats"
	"frappe/internal/model"
	"frappe/internal/query"
)

// Plan is one compiled query: the parsed clauses plus the planner's
// per-clause decisions. A Plan is immutable after Compile; every
// execution gets its own query.Env.
type Plan struct {
	Query *query.Query
	// Generation is the statistics generation the cost decisions were
	// made against (0 when compiled without statistics). The plan cache
	// discards plans whose generation is stale.
	Generation int64
	// Rewrites counts closure rewrites applied; Fallback is true when
	// the clause shape forced delegation to the tree-walk interpreter.
	Rewrites int
	Fallback bool
	// Hints holds the per-pattern execution hints of each MATCH clause,
	// in clause order (exported for tests and EXPLAIN).
	Hints [][]query.PatternHint

	steps []planStep
	ret   *query.ReturnClause
}

type planStep struct {
	clause query.Clause
	hints  []query.PatternHint
	notes  []string // planner annotations, rendered under the EXPLAIN line
}

// Compile plans a parsed query against a statistics snapshot. st may be
// nil (e.g. EXPLAIN on a store without statistics): cost decisions then
// fall back to the executor's defaults but the closure rewrite — a
// purely semantic transformation — still applies.
func Compile(q *query.Query, st *gstats.Stats) *Plan {
	start := time.Now()
	p := &Plan{Query: q}
	if st != nil {
		p.Generation = st.Generation
	}
	defer func() {
		mPlanBuild.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}()

	if !compilable(q) {
		p.Fallback = true
		mFallbacks.Inc()
		return p
	}

	bound := map[string]bool{}
	for i, c := range q.Clauses {
		switch t := c.(type) {
		case *query.StartClause:
			p.steps = append(p.steps, planStep{clause: t})
			for _, it := range t.Items {
				bound[it.Var] = true
			}
		case *query.MatchClause:
			hints, notes := p.planMatch(q.Clauses[i+1:], t, bound, st)
			p.steps = append(p.steps, planStep{clause: t, hints: hints, notes: notes})
			p.Hints = append(p.Hints, hints)
			for _, pat := range t.Patterns {
				for _, np := range pat.Nodes {
					if np.Var != "" {
						bound[np.Var] = true
					}
				}
				for _, rp := range pat.Rels {
					if rp.Var != "" {
						bound[rp.Var] = true
					}
				}
				if pat.PathVar != "" {
					bound[pat.PathVar] = true
				}
			}
		case *query.WhereClause:
			p.steps = append(p.steps, planStep{clause: t})
		case *query.WithClause:
			p.steps = append(p.steps, planStep{clause: t})
			bound = projectionVars(t.Items)
		case *query.ReturnClause:
			p.ret = t
		}
	}
	mRewrites.Add(int64(p.Rewrites))
	return p
}

// compilable reports whether the clause sequence is the straight-line
// form the compiled runner handles: one RETURN, in final position.
// Anything else (including the error cases the interpreter diagnoses,
// like a missing RETURN) falls back so error messages stay identical.
func compilable(q *query.Query) bool {
	if len(q.Clauses) == 0 {
		return false
	}
	for i, c := range q.Clauses {
		if _, ok := c.(*query.ReturnClause); ok != (i == len(q.Clauses)-1) {
			return false
		}
	}
	return true
}

// projectionVars is the variable set visible after a WITH: its output
// column names (alias, or the expression's own text — which for a bare
// variable is the variable name).
func projectionVars(items []query.ReturnItem) map[string]bool {
	out := map[string]bool{}
	for _, it := range items {
		name := it.Alias
		if name == "" {
			name = it.Expr.Text()
		}
		out[name] = true
	}
	return out
}

// planMatch decides hints for one MATCH clause: closure rewrites
// (legality proven against the remaining clauses) and anchor/order
// choices (cost model over st).
func (p *Plan) planMatch(rest []query.Clause, mc *query.MatchClause, bound map[string]bool, st *gstats.Stats) ([]query.PatternHint, []string) {
	hints := make([]query.PatternHint, len(mc.Patterns))
	var notes []string
	for pi, pat := range mc.Patterns {
		h := &hints[pi]

		// Closure rewrite: restricted to single-pattern, single-rel
		// MATCH so the shared relationship-uniqueness set is provably
		// empty when the expansion runs.
		if len(mc.Patterns) == 1 && closureShape(pat) && dedupFollows(rest) {
			h.Closure = []bool{true}
			p.Rewrites++
			notes = append(notes, "closure rewrite: "+query.PatternText(pat)+
				" runs as visited-set BFS (downstream is multiplicity-invariant)")
		}

		if pat.Shortest || pat.AllShortest {
			continue // shortest-path matching has its own executor
		}

		// Anchor: position of the first bound variable wins outright;
		// otherwise pick the cheapest seed by estimated cost.
		a := boundAnchor(pat, bound)
		if a < 0 && st != nil && len(pat.Nodes) > 1 {
			best, bestCost, why := 0, math.Inf(1), ""
			for i := range pat.Nodes {
				cost, desc := patternCost(pat, i, h.Closure, st)
				if cost < bestCost {
					best, bestCost, why = i, cost, desc
				}
			}
			if best > 0 {
				h.Anchor = best
				notes = append(notes, fmt.Sprintf("anchor %s at position %d (%s, est cost %.0f)",
					query.NodePatternText(pat.Nodes[best]), best, why, bestCost))
			}
			a = best
		}
		if a < 0 {
			a = 0
		}

		// Expansion order: run the cheaper side of the anchor first so
		// intermediate row counts stay small.
		if a > 0 && a < len(pat.Rels)+1 && len(pat.Rels) > 1 && st != nil {
			lf := firstHopFanout(pat, a, false, st)
			rf := firstHopFanout(pat, a, true, st)
			if lf < rf {
				h.LeftFirst = true
				notes = append(notes, fmt.Sprintf("expand left of anchor first (fan-out %.1f vs %.1f)", lf, rf))
			}
		}
	}
	return hints, notes
}

// boundAnchor returns the first node position whose variable is bound
// at this point of the pipeline, or -1.
func boundAnchor(pat *query.Pattern, bound map[string]bool) int {
	for i, np := range pat.Nodes {
		if np.Var != "" && bound[np.Var] {
			return i
		}
	}
	return -1
}

// closureShape reports whether a pattern is a candidate for the closure
// rewrite: one variable-length relationship, minimum depth <= 1 (a
// larger minimum constrains path length, which BFS shortest distance
// cannot decide), and no relationship or path binding that would
// observe individual paths. Undirected expansions are excluded unless
// the minimum is zero: a BFS walk can re-reach the start node only by
// reusing the edge it left on (s—x—s), which Cypher's relationship
// uniqueness forbids, so the endpoint sets differ at exactly the start
// node. Directed closed walks always contain a simple cycle through the
// start, and a zero-hop minimum admits the start unconditionally, so
// both of those remain exact.
func closureShape(pat *query.Pattern) bool {
	if pat.Shortest || pat.AllShortest || pat.PathVar != "" || len(pat.Rels) != 1 {
		return false
	}
	rel := pat.Rels[0]
	if !rel.VarLen || rel.MinHops > 1 || rel.Var != "" {
		return false
	}
	return rel.ToRight || rel.ToLeft || rel.MinHops == 0
}

// dedupFollows proves the clauses after a MATCH are
// multiplicity-invariant: WHERE filters are per-row and transparent;
// the first projection reached must either be DISTINCT (no aggregates)
// or aggregate only through duplication-invariant functions. SKIP/LIMIT
// are rejected because they select by row order, which the rewrite does
// not preserve. Another MATCH first, or no projection at all, is
// conservatively illegal.
func dedupFollows(rest []query.Clause) bool {
	for _, c := range rest {
		switch t := c.(type) {
		case *query.WhereClause:
			continue
		case *query.WithClause:
			return projectionDedups(t.Items, t.Distinct) && t.Skip == nil && t.Limit == nil
		case *query.ReturnClause:
			return projectionDedups(t.Items, t.Distinct) && t.Skip == nil && t.Limit == nil
		default:
			return false
		}
	}
	return false
}

func projectionDedups(items []query.ReturnItem, distinct bool) bool {
	if len(items) == 0 {
		return false
	}
	hasAgg := false
	for _, it := range items {
		if query.IsAggregate(it.Expr) {
			hasAgg = true
		}
	}
	if !hasAgg {
		return distinct
	}
	// Aggregation groups by the non-aggregate items (duplication cannot
	// change the group set), so the aggregates themselves must be
	// duplication-invariant.
	for _, it := range items {
		if query.IsAggregate(it.Expr) && !dupInvariantAgg(it.Expr) {
			return false
		}
	}
	return true
}

// dupInvariantAgg accepts exactly the aggregate calls whose value is a
// function of the input set, not the input multiset: min, max, and the
// DISTINCT forms of count/collect/sum/avg.
func dupInvariantAgg(e query.Expr) bool {
	call, ok := e.(*query.CallExpr)
	if !ok {
		return false
	}
	switch strings.ToLower(call.Name) {
	case "min", "max":
		return true
	case "count", "collect", "sum", "avg":
		return call.Distinct
	}
	return false
}

// --- cost model ---

// Heuristic constants: an auto-index lookup is a near-constant seed; an
// unbounded enumeration is charged as a deep power of the fan-out so it
// is never preferred when any alternative exists.
const (
	indexSeedCost  = 4.0
	enumDepthProxy = 6
)

// patternCost estimates seeding the pattern at position a and expanding
// outward: seed cardinality plus the running intermediate row count
// after each hop (independence-assumption selectivities).
func patternCost(pat *query.Pattern, a int, closure []bool, st *gstats.Stats) (float64, string) {
	cost, rows, desc := seedCost(pat.Nodes[a], st)
	walk := func(relIdx, knownPos, targPos int) {
		rel := pat.Rels[relIdx]
		f := hopFanout(rel, pat.Nodes[knownPos], knownPos < targPos, st)
		if rel.VarLen {
			if relIdx < len(closure) && closure[relIdx] {
				// Visited-set closure: work bounded by the edge count of
				// the traversed types, output by the node count.
				cost += edgeCount(rel, st)
				rows = math.Min(rows*math.Pow(math.Max(f, 1), 3), float64(st.Nodes))
				return
			}
			depth := enumDepthProxy
			if rel.MaxHops > 0 && rel.MaxHops < depth {
				depth = rel.MaxHops
			}
			f = math.Min(math.Pow(math.Max(f, 1), float64(depth)), 1e15)
		}
		// Expansion work is paid on every produced candidate; only the
		// survivors of the target's label/property filters feed the next
		// hop.
		rows *= math.Max(f, 0.01)
		cost += rows
		rows *= nodeSelectivity(pat.Nodes[targPos], st)
	}
	for i := a; i < len(pat.Rels); i++ {
		walk(i, i, i+1)
	}
	for i := a - 1; i >= 0; i-- {
		walk(i, i+1, i)
	}
	return cost, desc
}

// seedCost estimates scanCandidates for an unbound node pattern,
// mirroring the executor's actual strategy: indexed string property,
// then concrete type label, then full scan.
func seedCost(np *query.NodePattern, st *gstats.Stats) (cost, card float64, desc string) {
	if key := indexedProp(np); key != "" {
		return indexSeedCost, indexSeedCost, "index lookup " + key
	}
	if l := concreteLabel(np); l != "" {
		n := float64(st.NodesByType[l])
		return n, n, "label scan :" + l
	}
	n := float64(st.Nodes)
	return n, n, "full scan"
}

// indexedProp returns the first string-valued property key the
// auto-index serves (matching the executor's scanCandidates), or "".
func indexedProp(np *query.NodePattern) string {
	for _, pm := range np.Props {
		if pm.Val.Kind() != graph.KindString {
			continue
		}
		switch strings.ToUpper(pm.Key) {
		case model.PropShortName, model.PropName, model.PropLongName, model.PropType:
			return pm.Key
		}
	}
	return ""
}

// concreteLabel returns the first label that is a concrete node type
// (servable by a TYPE lookup), or "".
func concreteLabel(np *query.NodePattern) string {
	for _, l := range np.Labels {
		for _, t := range model.AllNodeTypes {
			if string(t) == l {
				return l
			}
		}
	}
	return ""
}

// nodeSelectivity estimates the fraction of expansion targets that
// survive the target pattern's label/property filters.
func nodeSelectivity(np *query.NodePattern, st *gstats.Stats) float64 {
	s := 1.0
	if st.Nodes > 0 {
		if l := concreteLabel(np); l != "" {
			s *= math.Max(float64(st.NodesByType[l])/float64(st.Nodes), 1.0/float64(st.Nodes))
		}
	}
	for range np.Props {
		s *= 0.1
	}
	return s
}

// hopFanout estimates the expected number of edges followed from one
// node of the known pattern's type (its concrete label when present,
// the global average otherwise). forward means the hop runs with the
// pattern's left-to-right orientation.
func hopFanout(rel *query.RelPattern, known *query.NodePattern, forward bool, st *gstats.Stats) float64 {
	var outgoing, incoming bool
	switch {
	case rel.ToRight:
		outgoing = forward
		incoming = !forward
	case rel.ToLeft:
		outgoing = !forward
		incoming = forward
	default:
		outgoing, incoming = true, true
	}
	fromType := concreteLabel(known)
	dir := func(out bool) float64 {
		if len(rel.Types) == 0 {
			if st.Nodes == 0 {
				return 1
			}
			return float64(st.Edges) / float64(st.Nodes)
		}
		var f float64
		for _, t := range rel.Types {
			f += st.AvgDegree(fromType, model.EdgeType(strings.ToLower(t)), out)
		}
		return f
	}
	var f float64
	if outgoing {
		f += dir(true)
	}
	if incoming {
		f += dir(false)
	}
	return f
}

// firstHopFanout estimates the fan-out of the first hop on one side of
// the anchor (right = true for the rel at the anchor's right).
func firstHopFanout(pat *query.Pattern, a int, right bool, st *gstats.Stats) float64 {
	if right {
		if a >= len(pat.Rels) {
			return math.Inf(1)
		}
		return hopFanout(pat.Rels[a], pat.Nodes[a], true, st)
	}
	if a == 0 {
		return math.Inf(1)
	}
	return hopFanout(pat.Rels[a-1], pat.Nodes[a], false, st)
}

// edgeCount sums the stored edge counts of a relationship pattern's
// types (all edges when untyped) — the work bound of a visited-set
// closure.
func edgeCount(rel *query.RelPattern, st *gstats.Stats) float64 {
	if len(rel.Types) == 0 {
		return float64(st.Edges)
	}
	var n float64
	for _, t := range rel.Types {
		n += float64(st.EdgesByType[strings.ToLower(t)])
	}
	return n
}

// Explain renders the plan for humans: one line per operator with the
// planner's decisions indented beneath.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Plan (stats generation %d", p.Generation)
	if p.Rewrites > 0 {
		fmt.Fprintf(&sb, ", %d closure rewrite(s)", p.Rewrites)
	}
	if p.Fallback {
		sb.WriteString(", interpreter fallback")
	}
	sb.WriteString(")\n")
	if p.Fallback {
		for _, c := range p.Query.Clauses {
			op, detail := query.OperatorInfo(c)
			fmt.Fprintf(&sb, "  %-14s %s\n", op, detail)
		}
		return sb.String()
	}
	for _, s := range p.steps {
		op, detail := query.OperatorInfo(s.clause)
		fmt.Fprintf(&sb, "  %-14s %s\n", op, detail)
		for _, n := range s.notes {
			fmt.Fprintf(&sb, "  %-14s ^ %s\n", "", n)
		}
	}
	if p.ret != nil {
		op, detail := query.OperatorInfo(p.ret)
		fmt.Fprintf(&sb, "  %-14s %s\n", op, detail)
	}
	return sb.String()
}
