package cparse

import (
	"frappe/internal/cpp"
)

// parseExpr parses a full expression including the comma operator.
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().IsPunct(",") {
		p.pos++
		r, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		l = &CommaExpr{L: l, R: r}
	}
	return l, nil
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"<<=": true, ">>=": true, "&=": true, "^=": true, "|=": true,
}

func (p *parser) parseAssignExpr() (Expr, error) {
	l, err := p.parseConditionalExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == cpp.TokPunct && assignOps[t.Text] {
		p.pos++
		r, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Op: t.Text, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseConditionalExpr() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.acceptPunct("?") {
		return c, nil
	}
	// GNU ?: elision (a ?: b) appears in kernel code.
	var thenE Expr
	if p.cur().IsPunct(":") {
		thenE = c
	} else {
		thenE, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	elseE, err := p.parseConditionalExpr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{C: c, T: thenE, F: elseE}, nil
}

// Binary precedence levels, loosest first.
var binLevels = [][]string{
	{"||"}, {"&&"}, {"|"}, {"^"}, {"&"},
	{"==", "!="}, {"<", "<=", ">", ">="},
	{"<<", ">>"}, {"+", "-"}, {"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseCastExpr()
	}
	l, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		matched := ""
		if t.Kind == cpp.TokPunct {
			for _, op := range binLevels[level] {
				if t.Text == op {
					matched = op
					break
				}
			}
		}
		if matched == "" {
			return l, nil
		}
		p.pos++
		r, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: matched, L: l, R: r}
	}
}

// parseCastExpr handles (type) casts and compound literals.
func (p *parser) parseCastExpr() (Expr, error) {
	t := p.cur()
	if t.IsPunct("(") && p.startsDeclSpec(p.peek(1)) {
		p.pos++
		typ, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if p.cur().IsPunct("{") {
			// Compound literal.
			init, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			return &CastExpr{Type: typ, X: init, Start: t.Pos}, nil
		}
		x, err := p.parseCastExpr()
		if err != nil {
			return nil, err
		}
		return &CastExpr{Type: typ, X: x, Start: t.Pos}, nil
	}
	return p.parseUnaryExpr()
}

// parseTypeName parses a type-name (specifiers plus abstract declarator).
func (p *parser) parseTypeName() (*Type, error) {
	info, err := p.parseDeclSpecifiers()
	if err != nil {
		return nil, err
	}
	_, typ, _, err := p.parseDeclarator(info.base, true)
	return typ, err
}

func (p *parser) parseUnaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.IsPunct("&"), t.IsPunct("*"), t.IsPunct("-"), t.IsPunct("+"),
		t.IsPunct("!"), t.IsPunct("~"):
		p.pos++
		x, err := p.parseCastExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Text, X: x, Start: t.Pos, End: x.Span().End}, nil
	case t.IsPunct("++"), t.IsPunct("--"):
		p.pos++
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Text, X: x, Start: t.Pos, End: x.Span().End}, nil
	case t.IsIdent("sizeof"), t.IsIdent("_Alignof"), t.IsIdent("__alignof__"), t.IsIdent("__alignof"):
		p.pos++
		alignof := t.Text != "sizeof"
		if p.cur().IsPunct("(") && p.startsDeclSpec(p.peek(1)) {
			p.pos++
			typ, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			close, err := p.expectPunct(")")
			if err != nil {
				return nil, err
			}
			return &SizeofExpr{AlignOf: alignof, Type: typ, Start: t.Pos, End: close.End()}, nil
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &SizeofExpr{AlignOf: alignof, X: x, Start: t.Pos, End: x.Span().End}, nil
	}
	return p.parsePostfixExpr()
}

func (p *parser) parsePostfixExpr() (Expr, error) {
	e, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case t.IsPunct("("):
			p.pos++
			call := &CallExpr{Fun: e, Start: e.Span().Start}
			for !p.cur().IsPunct(")") && p.cur().Kind != cpp.TokEOF {
				a, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.acceptPunct(",") {
					break
				}
			}
			close, err := p.expectPunct(")")
			if err != nil {
				return nil, err
			}
			call.End = close.End()
			e = call
		case t.IsPunct("["):
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			close, err := p.expectPunct("]")
			if err != nil {
				return nil, err
			}
			e = &IndexExpr{Base: e, Idx: idx, End: close.End()}
		case t.IsPunct("."), t.IsPunct("->"):
			p.pos++
			name := p.next()
			if name.Kind != cpp.TokIdent {
				return nil, p.errf(name, "expected member name after %q", t.Text)
			}
			e = &MemberExpr{Base: e, Name: name, Arrow: t.Text == "->", End: name.End()}
		case t.IsPunct("++"), t.IsPunct("--"):
			p.pos++
			e = &UnaryExpr{Op: t.Text, X: e, Postfix: true, Start: e.Span().Start, End: t.End()}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case cpp.TokIdent:
		p.pos++
		return &Ident{Tok: t}, nil
	case cpp.TokNumber:
		p.pos++
		v, err := cpp.ParseIntLiteral(t.Text)
		if err != nil {
			// Float literal: value 0 is fine for the dependency graph.
			v = 0
		}
		return &IntLit{Tok: t, Value: v}, nil
	case cpp.TokString:
		toks := []cpp.Token{t}
		p.pos++
		for p.cur().Kind == cpp.TokString {
			toks = append(toks, p.next())
		}
		return &StrLit{Toks: toks}, nil
	case cpp.TokChar:
		p.pos++
		return &CharLit{Tok: t, Value: charLitValue(t.Text)}, nil
	case cpp.TokPunct:
		if t.Text == "(" {
			// GNU statement expression: ({ ... }).
			if p.peek(1).IsPunct("{") {
				p.pos++
				block, err := p.parseBlock()
				if err != nil {
					return nil, err
				}
				close, err := p.expectPunct(")")
				if err != nil {
					return nil, err
				}
				return &StmtExpr{Block: block, Start: t.Pos, End: close.End()}, nil
			}
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf(t, "expected an expression, found %q", t.Text)
}

func charLitValue(lit string) int64 {
	s := lit
	if len(s) >= 2 && s[0] == '\'' {
		s = s[1:]
		if len(s) > 0 && s[len(s)-1] == '\'' {
			s = s[:len(s)-1]
		}
	}
	if s == "" {
		return 0
	}
	if s[0] != '\\' {
		return int64(s[0])
	}
	if len(s) < 2 {
		return '\\'
	}
	switch s[1] {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	}
	return int64(s[1])
}
