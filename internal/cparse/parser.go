package cparse

import (
	"fmt"
	"strings"

	"frappe/internal/cpp"
)

// Parse parses a preprocessed token stream into a translation unit.
// extraTypedefs seeds the typedef-name table (for names defined by
// headers outside the parsed set, e.g. compiler built-ins like
// __builtin_va_list or size_t when <stddef.h> is not modelled).
// Parse never fails outright: syntax errors are recorded in the returned
// unit's Errors and parsing recovers at the next top-level boundary.
func Parse(toks []cpp.Token, extraTypedefs []string) *TranslationUnit {
	p := &parser{toks: toks, typedefs: map[string]bool{
		"__builtin_va_list": true,
	}}
	for _, t := range extraTypedefs {
		p.typedefs[t] = true
	}
	p.tu = &TranslationUnit{}
	p.enumVals = map[string]int64{}
	p.parseTU()
	p.tu.Errors = p.errs
	return p.tu
}

type parser struct {
	toks     []cpp.Token
	pos      int
	typedefs map[string]bool
	enumVals map[string]int64
	tu       *TranslationUnit
	errs     []error
	anonSeq  int
}

var eofToken = cpp.Token{Kind: cpp.TokEOF}

func (p *parser) cur() cpp.Token {
	if p.pos >= len(p.toks) {
		return eofToken
	}
	return p.toks[p.pos]
}

func (p *parser) peek(i int) cpp.Token {
	if p.pos+i >= len(p.toks) {
		return eofToken
	}
	return p.toks[p.pos+i]
}

func (p *parser) next() cpp.Token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) acceptPunct(s string) bool {
	if p.cur().IsPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptIdent(s string) bool {
	if p.cur().IsIdent(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) (cpp.Token, error) {
	t := p.cur()
	if !t.IsPunct(s) {
		return t, p.errf(t, "expected %q, found %q", s, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) errf(at cpp.Token, format string, args ...any) error {
	return fmt.Errorf("cparse: %s at %d:%d:%d", fmt.Sprintf(format, args...), at.Pos.File, at.Pos.Line, at.Pos.Col)
}

// recoverTo skips to the next ';' (at any depth — an unclosed brace in
// the bad region must not swallow the rest of the file) or to a '}' that
// closes the current nesting, so parsing can continue.
func (p *parser) recoverTo() {
	depth := 0
	for {
		t := p.next()
		switch {
		case t.Kind == cpp.TokEOF:
			return
		case t.IsPunct(";"):
			return
		case t.IsPunct("{"):
			depth++
		case t.IsPunct("}"):
			depth--
			if depth <= 0 {
				return
			}
		}
	}
}

// --- declaration specifiers ---

// specInfo is the result of parsing declaration specifiers.
type specInfo struct {
	base    *Type
	typedef bool
	static  bool
	extern  bool
	inline  bool
}

var typeKeywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "signed": true, "unsigned": true,
	"_Bool": true, "struct": true, "union": true, "enum": true,
}

var storageKeywords = map[string]bool{
	"typedef": true, "extern": true, "static": true, "register": true,
	"auto": true, "inline": true, "__inline": true, "__inline__": true,
}

var qualKeywords = map[string]string{
	"const": "c", "volatile": "v", "restrict": "r",
	"__const": "c", "__restrict": "r", "__restrict__": "r", "_Atomic": "",
}

// startsDeclSpec reports whether the token can begin declaration
// specifiers (used for the declaration/statement split and cast
// detection).
func (p *parser) startsDeclSpec(t cpp.Token) bool {
	if t.Kind != cpp.TokIdent {
		return false
	}
	if typeKeywords[t.Text] || storageKeywords[t.Text] {
		return true
	}
	if t.Text == "typeof" || t.Text == "__typeof__" || t.Text == "__typeof" {
		return true
	}
	if _, ok := qualKeywords[t.Text]; ok {
		return true
	}
	return p.typedefs[t.Text]
}

// parseDeclSpecifiers consumes storage classes, qualifiers and type
// specifiers, returning the resolved base type and flags.
func (p *parser) parseDeclSpecifiers() (*specInfo, error) {
	info := &specInfo{}
	var quals string
	var prim []string // primitive specifier words
	sawType := false

	for {
		t := p.cur()
		if t.Kind != cpp.TokIdent {
			break
		}
		switch {
		case t.Text == "typedef":
			info.typedef = true
			p.pos++
		case t.Text == "extern":
			info.extern = true
			p.pos++
		case t.Text == "static":
			info.static = true
			p.pos++
		case t.Text == "register" || t.Text == "auto":
			p.pos++
		case t.Text == "inline" || t.Text == "__inline" || t.Text == "__inline__":
			info.inline = true
			p.pos++
		case t.Text == "__attribute__" || t.Text == "__attribute":
			p.pos++
			p.skipBalancedParens()
		case t.Text == "__extension__":
			p.pos++
		case (t.Text == "typeof" || t.Text == "__typeof__" || t.Text == "__typeof") && !sawType:
			// GNU typeof(expr): the operand's type is opaque to the
			// dependency graph; model it as an unresolved typedef so the
			// declaration still parses and later member accesses degrade
			// gracefully rather than failing.
			p.pos++
			p.skipBalancedParens()
			info.base = &Type{Kind: TTypedef, Name: "__typeof__"}
			sawType = true
		case qualKeywords[t.Text] != "" || t.Text == "_Atomic":
			quals = addQual(quals, qualKeywords[t.Text])
			p.pos++
		case t.Text == "struct" || t.Text == "union":
			if sawType {
				goto done
			}
			typ, err := p.parseRecordSpec(t.Text == "union")
			if err != nil {
				return nil, err
			}
			info.base = typ
			sawType = true
		case t.Text == "enum":
			if sawType {
				goto done
			}
			typ, err := p.parseEnumSpec()
			if err != nil {
				return nil, err
			}
			info.base = typ
			sawType = true
		case typeKeywords[t.Text]:
			prim = append(prim, t.Text)
			sawType = true
			p.pos++
		case p.typedefs[t.Text] && !sawType:
			info.base = &Type{Kind: TTypedef, Name: t.Text}
			sawType = true
			p.pos++
		default:
			goto done
		}
	}
done:
	if len(prim) > 0 {
		info.base = &Type{Kind: TPrimitive, Name: canonicalPrimitive(prim)}
	}
	if info.base == nil {
		if !sawType {
			// Implicit int (K&R style declarations).
			info.base = &Type{Kind: TPrimitive, Name: "int"}
		}
	}
	if quals != "" {
		// Copy before mutating: base types of records are shared.
		b := *info.base
		b.Quals = addQuals(b.Quals, quals)
		info.base = &b
	}
	return info, nil
}

func addQual(quals string, q string) string {
	if q == "" || strings.Contains(quals, q) {
		return quals
	}
	return quals + q
}

func addQuals(quals, more string) string {
	for _, c := range more {
		quals = addQual(quals, string(c))
	}
	return quals
}

// canonicalPrimitive normalises primitive specifier multisets to a
// canonical spelling ("unsigned long", "long long", ...).
func canonicalPrimitive(words []string) string {
	var signed, unsigned bool
	longs, shorts := 0, 0
	base := ""
	for _, w := range words {
		switch w {
		case "signed":
			signed = true
		case "unsigned":
			unsigned = true
		case "long":
			longs++
		case "short":
			shorts++
		default:
			base = w
		}
	}
	var parts []string
	if unsigned {
		parts = append(parts, "unsigned")
	} else if signed && base == "char" {
		parts = append(parts, "signed")
	}
	if shorts > 0 {
		parts = append(parts, "short")
	}
	for i := 0; i < longs; i++ {
		parts = append(parts, "long")
	}
	if base != "" && !(base == "int" && (longs > 0 || shorts > 0)) {
		parts = append(parts, base)
	}
	if len(parts) == 0 {
		parts = []string{"int"}
	}
	if len(parts) == 1 && (parts[0] == "unsigned" || parts[0] == "signed") {
		parts = append(parts, "int")
	}
	return strings.Join(parts, " ")
}

func (p *parser) skipBalancedParens() {
	if !p.cur().IsPunct("(") {
		return
	}
	depth := 0
	for {
		t := p.next()
		switch {
		case t.Kind == cpp.TokEOF:
			return
		case t.IsPunct("("):
			depth++
		case t.IsPunct(")"):
			depth--
			if depth == 0 {
				return
			}
		}
	}
}

func (p *parser) anonTag(kw string, at cpp.Pos) string {
	p.anonSeq++
	return fmt.Sprintf("<anon-%s-%d@%d:%d>", kw, p.anonSeq, at.File, at.Line)
}

// parseRecordSpec parses struct/union specifiers, recording definitions
// on the translation unit.
func (p *parser) parseRecordSpec(isUnion bool) (*Type, error) {
	kw := p.next() // struct|union
	kind := TStruct
	kwName := "struct"
	if isUnion {
		kind = TUnion
		kwName = "union"
	}
	var tagTok cpp.Token
	tag := ""
	if p.cur().Kind == cpp.TokIdent && !p.cur().IsPunct("{") && !typeKeywords[p.cur().Text] {
		tagTok = p.next()
		tag = tagTok.Text
	}
	if !p.cur().IsPunct("{") {
		if tag == "" {
			return nil, p.errf(kw, "%s without tag or body", kwName)
		}
		return &Type{Kind: kind, Name: tag}, nil
	}
	if tag == "" {
		tag = p.anonTag(kwName, kw.Pos)
	}
	open := p.next() // '{'
	rec := &RecordDecl{Union: isUnion, Tag: tag, TagTok: tagTok, Complete: true, Start: kw.Pos}
	_ = open
	for !p.cur().IsPunct("}") && p.cur().Kind != cpp.TokEOF {
		if err := p.parseFieldDecl(rec); err != nil {
			p.errs = append(p.errs, err)
			p.recoverTo()
		}
	}
	close, err := p.expectPunct("}")
	if err != nil {
		return nil, err
	}
	rec.End = close.End()
	p.tu.Records = append(p.tu.Records, rec)
	return &Type{Kind: kind, Name: tag}, nil
}

func (p *parser) parseFieldDecl(rec *RecordDecl) error {
	start := p.cur().Pos
	info, err := p.parseDeclSpecifiers()
	if err != nil {
		return err
	}
	// Anonymous struct/union member: specifiers followed directly by ';'.
	if p.acceptPunct(";") {
		rec.Fields = append(rec.Fields, &FieldDecl{Type: info.base, BitWidth: -1, Start: start, End: p.cur().Pos})
		return nil
	}
	for {
		var fd FieldDecl
		fd.BitWidth = -1
		fd.Start = start
		if !p.cur().IsPunct(":") {
			name, typ, _, err := p.parseDeclarator(info.base, false)
			if err != nil {
				return err
			}
			fd.Name = name
			fd.Type = typ
		} else {
			fd.Type = info.base
		}
		if p.acceptPunct(":") {
			w, err := p.parseConditionalExpr()
			if err != nil {
				return err
			}
			if v, ok := p.evalConst(w); ok {
				fd.BitWidth = v
			} else {
				fd.BitWidth = 0
			}
		}
		p.skipAttributes()
		fd.End = p.cur().Pos
		rec.Fields = append(rec.Fields, &fd)
		if p.acceptPunct(",") {
			continue
		}
		_, err := p.expectPunct(";")
		return err
	}
}

func (p *parser) skipAttributes() {
	for p.cur().IsIdent("__attribute__") || p.cur().IsIdent("__attribute") {
		p.pos++
		p.skipBalancedParens()
	}
}

// parseEnumSpec parses enum specifiers.
func (p *parser) parseEnumSpec() (*Type, error) {
	kw := p.next() // enum
	var tagTok cpp.Token
	tag := ""
	if p.cur().Kind == cpp.TokIdent {
		tagTok = p.next()
		tag = tagTok.Text
	}
	if !p.cur().IsPunct("{") {
		if tag == "" {
			return nil, p.errf(kw, "enum without tag or body")
		}
		return &Type{Kind: TEnum, Name: tag}, nil
	}
	if tag == "" {
		tag = p.anonTag("enum", kw.Pos)
	}
	p.next() // '{'
	ed := &EnumDecl{Tag: tag, TagTok: tagTok, Complete: true, Start: kw.Pos}
	nextVal := int64(0)
	for !p.cur().IsPunct("}") && p.cur().Kind != cpp.TokEOF {
		name := p.cur()
		if name.Kind != cpp.TokIdent {
			return nil, p.errf(name, "expected enumerator name")
		}
		p.pos++
		en := &Enumerator{Name: name}
		if p.acceptPunct("=") {
			e, err := p.parseConditionalExpr()
			if err != nil {
				return nil, err
			}
			en.Expr = e
			if v, ok := p.evalConst(e); ok {
				nextVal = v
			}
		}
		en.Value = nextVal
		p.enumVals[name.Text] = nextVal
		nextVal++
		ed.Enumerators = append(ed.Enumerators, en)
		if !p.acceptPunct(",") {
			break
		}
	}
	close, err := p.expectPunct("}")
	if err != nil {
		return nil, err
	}
	ed.End = close.End()
	p.tu.Enums = append(p.tu.Enums, ed)
	return &Type{Kind: TEnum, Name: tag}, nil
}

// --- declarators ---

// typeSuffix is one array or function derivation read left-to-right.
type typeSuffix struct {
	isFunc   bool
	arrayLen int64
	params   []*ParamDecl
	variadic bool
}

// parseDeclarator parses a (possibly abstract) declarator over base and
// returns the declared name (zero token when abstract), the full type,
// and the parameter declarations when the named direct declarator is a
// function.
func (p *parser) parseDeclarator(base *Type, abstract bool) (cpp.Token, *Type, []*ParamDecl, error) {
	t := base
	// Pointers apply innermost: consume them, wrapping the base.
	for p.cur().IsPunct("*") {
		p.pos++
		quals := ""
		for {
			if q, ok := qualKeywords[p.cur().Text]; ok && p.cur().Kind == cpp.TokIdent {
				quals = addQual(quals, q)
				p.pos++
				continue
			}
			break
		}
		t = &Type{Kind: TPointer, Elem: t, Quals: quals}
	}
	p.skipAttributes()

	var name cpp.Token
	var innerBuild func(*Type) (*Type, error)
	grouped := false

	switch {
	case p.cur().Kind == cpp.TokIdent && !p.startsDeclSpec(p.cur()):
		name = p.next()
	case p.cur().IsPunct("("):
		// '(' begins a grouped declarator only if its content looks like a
		// declarator (pointer, grouped, or identifier); otherwise it is a
		// function-parameter suffix of an abstract declarator.
		nxt := p.peek(1)
		isGroup := nxt.IsPunct("*") || nxt.IsPunct("(") ||
			(nxt.Kind == cpp.TokIdent && !p.startsDeclSpec(nxt))
		if isGroup {
			grouped = true
			p.pos++
			// Parse the inner declarator against a placeholder; we re-apply
			// it after reading the suffixes.
			innerName, innerType, innerParams, err := p.parseDeclarator(&Type{Kind: TPrimitive, Name: "\x00hole"}, abstract)
			if err != nil {
				return name, nil, nil, err
			}
			name = innerName
			_ = innerParams
			if _, err := p.expectPunct(")"); err != nil {
				return name, nil, nil, err
			}
			innerBuild = func(outer *Type) (*Type, error) {
				return substituteHole(innerType, outer)
			}
		}
	}

	suffixes, params, err := p.parseTypeSuffixes()
	if err != nil {
		return name, nil, nil, err
	}
	// Apply suffixes right-to-left around the pointer-wrapped base.
	for i := len(suffixes) - 1; i >= 0; i-- {
		s := suffixes[i]
		if s.isFunc {
			ptypes := make([]*Type, len(s.params))
			for j, pd := range s.params {
				ptypes[j] = pd.Type
			}
			t = &Type{Kind: TFunc, Ret: t, Params: ptypes, Variadic: s.variadic}
		} else {
			t = &Type{Kind: TArray, Elem: t, ArrayLen: s.arrayLen}
		}
	}
	if grouped && innerBuild != nil {
		t2, err := innerBuild(t)
		if err != nil {
			return name, nil, nil, err
		}
		t = t2
		params = nil // parameters belong to the inner declarator shape
	}
	p.skipAttributes()
	return name, t, params, nil
}

// substituteHole replaces the placeholder base inside a grouped
// declarator's type with the outer type.
func substituteHole(t *Type, outer *Type) (*Type, error) {
	if t == nil {
		return nil, fmt.Errorf("cparse: empty grouped declarator")
	}
	if t.Kind == TPrimitive && t.Name == "\x00hole" {
		return outer, nil
	}
	cp := *t
	switch t.Kind {
	case TPointer, TArray:
		e, err := substituteHole(t.Elem, outer)
		if err != nil {
			return nil, err
		}
		cp.Elem = e
	case TFunc:
		r, err := substituteHole(t.Ret, outer)
		if err != nil {
			return nil, err
		}
		cp.Ret = r
	default:
		return nil, fmt.Errorf("cparse: grouped declarator without hole")
	}
	return &cp, nil
}

// parseTypeSuffixes reads [n] and (params) derivations; it returns the
// parameter declarations of the first function suffix (the declared
// function's own parameters).
func (p *parser) parseTypeSuffixes() ([]typeSuffix, []*ParamDecl, error) {
	var out []typeSuffix
	var firstParams []*ParamDecl
	for {
		switch {
		case p.cur().IsPunct("["):
			p.pos++
			s := typeSuffix{arrayLen: -1}
			if !p.cur().IsPunct("]") {
				e, err := p.parseAssignExpr()
				if err != nil {
					return nil, nil, err
				}
				if v, ok := p.evalConst(e); ok {
					s.arrayLen = v
				}
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, nil, err
			}
			out = append(out, s)
		case p.cur().IsPunct("("):
			p.pos++
			s := typeSuffix{isFunc: true}
			var err error
			s.params, s.variadic, err = p.parseParamList()
			if err != nil {
				return nil, nil, err
			}
			if firstParams == nil {
				firstParams = s.params
				if firstParams == nil {
					firstParams = []*ParamDecl{}
				}
			}
			out = append(out, s)
		default:
			return out, firstParams, nil
		}
	}
}

// parseParamList parses up to the closing ')'.
func (p *parser) parseParamList() ([]*ParamDecl, bool, error) {
	if p.acceptPunct(")") {
		return nil, false, nil // unspecified parameters: f()
	}
	// f(void)
	if p.cur().IsIdent("void") && p.peek(1).IsPunct(")") {
		p.pos += 2
		return []*ParamDecl{}, false, nil
	}
	var params []*ParamDecl
	variadic := false
	for {
		if p.acceptPunct("...") {
			variadic = true
			break
		}
		info, err := p.parseDeclSpecifiers()
		if err != nil {
			return nil, false, err
		}
		name, typ, _, err := p.parseDeclarator(info.base, true)
		if err != nil {
			return nil, false, err
		}
		// Array parameters adjust to pointers (C11 6.7.6.3p7).
		if typ.Kind == TArray {
			typ = &Type{Kind: TPointer, Elem: typ.Elem}
		}
		params = append(params, &ParamDecl{Name: name, Type: typ, Index: len(params)})
		if !p.acceptPunct(",") {
			break
		}
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, false, err
	}
	if params == nil {
		params = []*ParamDecl{}
	}
	return params, variadic, nil
}

// --- top level ---

func (p *parser) parseTU() {
	for p.cur().Kind != cpp.TokEOF {
		if p.acceptPunct(";") {
			continue
		}
		if err := p.parseExternalDecl(); err != nil {
			p.errs = append(p.errs, err)
			p.recoverTo()
		}
	}
}

func (p *parser) parseExternalDecl() error {
	start := p.cur().Pos
	info, err := p.parseDeclSpecifiers()
	if err != nil {
		return err
	}
	// Bare record/enum declaration: `struct foo { ... };`
	if p.cur().IsPunct(";") {
		p.pos++
		return nil
	}
	first := true
	for {
		name, typ, params, err := p.parseDeclarator(info.base, false)
		if err != nil {
			return err
		}
		if name.Kind != cpp.TokIdent {
			return p.errf(p.cur(), "expected a declared name")
		}
		switch {
		case info.typedef:
			p.typedefs[name.Text] = true
			end := p.cur().End()
			p.tu.Decls = append(p.tu.Decls, &TypedefDecl{Name: name, Type: typ, Start: start, End: end})
		case typ.Kind == TFunc:
			fd := &FuncDecl{
				Name: name, Type: typ, Params: params,
				Static: info.static, Inline: info.inline,
				Variadic: typ.Variadic, Start: start, End: p.cur().End(),
			}
			if first && p.cur().IsPunct("{") {
				body, err := p.parseBlock()
				if err != nil {
					return err
				}
				fd.Body = body
				fd.End = body.End
				p.tu.Decls = append(p.tu.Decls, fd)
				return nil
			}
			p.tu.Decls = append(p.tu.Decls, fd)
		default:
			vd := &VarDecl{
				Name: name, Type: typ,
				Static: info.static, Extern: info.extern,
				Start: start,
			}
			if p.acceptPunct("=") {
				init, err := p.parseInitializer()
				if err != nil {
					return err
				}
				vd.Init = init
			}
			vd.End = p.cur().End()
			p.tu.Decls = append(p.tu.Decls, vd)
		}
		first = false
		if p.acceptPunct(",") {
			continue
		}
		_, err = p.expectPunct(";")
		return err
	}
}

// parseBlockDecl parses a block-level declaration into Decl nodes.
func (p *parser) parseBlockDecl() ([]Decl, error) {
	start := p.cur().Pos
	info, err := p.parseDeclSpecifiers()
	if err != nil {
		return nil, err
	}
	if p.acceptPunct(";") {
		return nil, nil // local struct/enum definition only
	}
	var out []Decl
	for {
		name, typ, _, err := p.parseDeclarator(info.base, false)
		if err != nil {
			return nil, err
		}
		if name.Kind != cpp.TokIdent {
			return nil, p.errf(p.cur(), "expected a declared local name")
		}
		if info.typedef {
			p.typedefs[name.Text] = true
			out = append(out, &TypedefDecl{Name: name, Type: typ, Start: start, End: p.cur().End()})
		} else if typ.Kind == TFunc {
			out = append(out, &FuncDecl{Name: name, Type: typ, Start: start, End: p.cur().End()})
		} else {
			vd := &VarDecl{Name: name, Type: typ, Static: info.static, Extern: info.extern, Start: start}
			if p.acceptPunct("=") {
				init, err := p.parseInitializer()
				if err != nil {
					return nil, err
				}
				vd.Init = init
			}
			vd.End = p.cur().End()
			out = append(out, vd)
		}
		if p.acceptPunct(",") {
			continue
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func (p *parser) parseInitializer() (Expr, error) {
	if !p.cur().IsPunct("{") {
		return p.parseAssignExpr()
	}
	open := p.next()
	il := &InitList{Start: open.Pos}
	for !p.cur().IsPunct("}") && p.cur().Kind != cpp.TokEOF {
		var item InitItem
		if p.cur().IsPunct(".") && p.peek(1).Kind == cpp.TokIdent {
			p.pos++
			item.Designator = p.next()
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
		} else if p.cur().IsPunct("[") {
			// Array designator: [idx] = value; the index is parsed and
			// dropped (no field reference).
			p.pos++
			if _, err := p.parseConditionalExpr(); err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
		}
		v, err := p.parseInitializer()
		if err != nil {
			return nil, err
		}
		item.Value = v
		il.Items = append(il.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	close, err := p.expectPunct("}")
	if err != nil {
		return nil, err
	}
	il.End = close.End()
	return il, nil
}

// --- constant evaluation (enum values, array sizes, bit widths) ---

func (p *parser) evalConst(e Expr) (int64, bool) {
	switch t := e.(type) {
	case *IntLit:
		return t.Value, true
	case *CharLit:
		return t.Value, true
	case *Ident:
		v, ok := p.enumVals[t.Tok.Text]
		return v, ok
	case *UnaryExpr:
		v, ok := p.evalConst(t.X)
		if !ok {
			return 0, false
		}
		switch t.Op {
		case "-":
			return -v, true
		case "+":
			return v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *BinaryExpr:
		l, ok := p.evalConst(t.L)
		if !ok {
			return 0, false
		}
		r, ok := p.evalConst(t.R)
		if !ok {
			return 0, false
		}
		switch t.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case "%":
			if r == 0 {
				return 0, false
			}
			return l % r, true
		case "<<":
			if r < 0 || r > 63 {
				return 0, false
			}
			return l << uint(r), true
		case ">>":
			if r < 0 || r > 63 {
				return 0, false
			}
			return l >> uint(r), true
		case "&":
			return l & r, true
		case "|":
			return l | r, true
		case "^":
			return l ^ r, true
		}
		return 0, false
	case *CondExpr:
		c, ok := p.evalConst(t.C)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return p.evalConst(t.T)
		}
		return p.evalConst(t.F)
	case *CastExpr:
		return p.evalConst(t.X)
	case *SizeofExpr:
		// A plausible constant keeps array sizes sane; exact layout is out
		// of scope for the dependency graph.
		return 8, true
	}
	return 0, false
}
