package cparse

import "frappe/internal/cpp"

func (p *parser) parseBlock() (*BlockStmt, error) {
	open, err := p.expectPunct("{")
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Start: open.Pos}
	for !p.cur().IsPunct("}") && p.cur().Kind != cpp.TokEOF {
		item, err := p.parseBlockItem()
		if err != nil {
			p.errs = append(p.errs, err)
			p.recoverTo()
			continue
		}
		if item != nil {
			b.Items = append(b.Items, item)
		}
	}
	close, err := p.expectPunct("}")
	if err != nil {
		return nil, err
	}
	b.End = close.End()
	return b, nil
}

func (p *parser) parseBlockItem() (Stmt, error) {
	t := p.cur()
	if p.startsDeclSpec(t) {
		// `x * y;` with typedef x is a declaration (lexer hack); labels
		// like `foo:` are not declarations even if foo were a typedef.
		if !(t.Kind == cpp.TokIdent && p.peek(1).IsPunct(":")) {
			start := t.Pos
			decls, err := p.parseBlockDecl()
			if err != nil {
				return nil, err
			}
			if decls == nil {
				return nil, nil
			}
			return &DeclStmt{Decls: decls, Start: start, End: p.cur().Pos}, nil
		}
	}
	return p.parseStmt()
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.IsPunct("{"):
		return p.parseBlock()
	case t.IsPunct(";"):
		p.pos++
		return &ExprStmt{Start: t.Pos, End: t.End()}, nil
	case t.IsIdent("if"):
		p.pos++
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Start: t.Pos, End: then.Span().End}
		if p.acceptIdent("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
			st.End = els.Span().End
		}
		return st, nil
	case t.IsIdent("while"):
		p.pos++
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Start: t.Pos, End: body.Span().End}, nil
	case t.IsIdent("do"):
		p.pos++
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if !p.acceptIdent("while") {
			return nil, p.errf(p.cur(), "expected while after do body")
		}
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		end, err := p.expectPunct(";")
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, DoWhile: true, Start: t.Pos, End: end.End()}, nil
	case t.IsIdent("for"):
		p.pos++
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		st := &ForStmt{Start: t.Pos}
		if !p.cur().IsPunct(";") {
			if p.startsDeclSpec(p.cur()) {
				declStart := p.cur().Pos
				decls, err := p.parseBlockDecl() // consumes ';'
				if err != nil {
					return nil, err
				}
				st.Init = &DeclStmt{Decls: decls, Start: declStart, End: p.cur().Pos}
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				st.Init = &ExprStmt{X: e, Start: e.Span().Start, End: e.Span().End}
				if _, err := p.expectPunct(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.pos++
		}
		if !p.cur().IsPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Cond = e
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.cur().IsPunct(")") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Post = e
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		st.End = body.Span().End
		return st, nil
	case t.IsIdent("switch"):
		p.pos++
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		tag, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &SwitchStmt{Tag: tag, Body: body, Start: t.Pos, End: body.Span().End}, nil
	case t.IsIdent("case"):
		p.pos++
		v, err := p.parseConditionalExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		return &CaseStmt{Value: v, Start: t.Pos, End: p.cur().Pos}, nil
	case t.IsIdent("default"):
		p.pos++
		if _, err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		return &CaseStmt{Start: t.Pos, End: p.cur().Pos}, nil
	case t.IsIdent("return"):
		p.pos++
		st := &ReturnStmt{Start: t.Pos}
		if !p.cur().IsPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = e
		}
		end, err := p.expectPunct(";")
		if err != nil {
			return nil, err
		}
		st.End = end.End()
		return st, nil
	case t.IsIdent("break"), t.IsIdent("continue"):
		p.pos++
		end, err := p.expectPunct(";")
		if err != nil {
			return nil, err
		}
		return &BranchStmt{Kind: t.Text, Start: t.Pos, End: end.End()}, nil
	case t.IsIdent("goto"):
		p.pos++
		label := p.next()
		end, err := p.expectPunct(";")
		if err != nil {
			return nil, err
		}
		return &BranchStmt{Kind: "goto", Label: label, Start: t.Pos, End: end.End()}, nil
	case t.Kind == cpp.TokIdent && p.peek(1).IsPunct(":") && !t.IsIdent("default"):
		p.pos += 2
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &LabelStmt{Name: t, Stmt: inner, Start: t.Pos, End: inner.Span().End}, nil
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		end, err := p.expectPunct(";")
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: e, Start: e.Span().Start, End: end.End()}, nil
	}
}
