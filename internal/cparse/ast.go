// Package cparse parses preprocessed C token streams (from internal/cpp)
// into an abstract syntax tree, with enough semantic typing to let the
// extractor resolve member accesses, call targets and type uses — the
// role a modified Clang plays in the paper's extractor.
//
// The supported language is the C dialect large kernel codebases are
// written in: functions, globals, statics, struct/union/enum and typedef
// declarations with full declarator syntax (pointers, arrays, function
// pointers, qualifiers, bit-fields), designated initialisers, and the
// complete statement and expression grammar. The "lexer hack" (typedef
// name feedback) resolves the declaration/expression ambiguity.
package cparse

import (
	"fmt"
	"strings"

	"frappe/internal/cpp"
)

// TypeKind classifies semantic types.
type TypeKind uint8

// Semantic type kinds.
const (
	TPrimitive TypeKind = iota // int, unsigned long, void, double, ...
	TStruct
	TUnion
	TEnum
	TTypedef // reference to a typedef name
	TPointer
	TArray
	TFunc
)

// Type is a semantic C type. Struct/union/enum types reference their tag;
// the extractor resolves tags against the translation unit's record
// definitions. Types are trees, not interned, and safe to share.
type Type struct {
	Kind     TypeKind
	Name     string // primitive spelling, tag, or typedef name
	Elem     *Type  // pointer/array element
	ArrayLen int64  // TArray: -1 if unspecified
	Ret      *Type  // TFunc
	Params   []*Type
	Variadic bool
	// Quals are the type qualifiers applying at this level, coded per the
	// paper's QUALIFIERS property: c=const, v=volatile, r=restrict.
	Quals string
}

// Void, used where a type is absent.
var Void = &Type{Kind: TPrimitive, Name: "void"}

// IsVoid reports whether t is the void primitive.
func (t *Type) IsVoid() bool { return t != nil && t.Kind == TPrimitive && t.Name == "void" }

// String renders a readable form of the type (not valid C for function
// pointers; diagnostic use only).
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TPrimitive:
		return t.Name
	case TStruct:
		return "struct " + t.Name
	case TUnion:
		return "union " + t.Name
	case TEnum:
		return "enum " + t.Name
	case TTypedef:
		return t.Name
	case TPointer:
		return t.Elem.String() + "*"
	case TArray:
		if t.ArrayLen >= 0 {
			return fmt.Sprintf("%s[%d]", t.Elem.String(), t.ArrayLen)
		}
		return t.Elem.String() + "[]"
	case TFunc:
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			parts[i] = p.String()
		}
		if t.Variadic {
			parts = append(parts, "...")
		}
		return t.Ret.String() + "(" + strings.Join(parts, ", ") + ")"
	}
	return "?"
}

// QualCode computes the paper's coded qualifier string for a declared
// type, in "spoken order": ']' for array, '*' for pointer, then c/v/r.
// Example: `const char **argv` → "**c" read as "pointer to pointer to
// const char".
func (t *Type) QualCode() string {
	var sb strings.Builder
	cur := t
	for cur != nil {
		switch cur.Kind {
		case TArray:
			sb.WriteByte(']')
			cur = cur.Elem
		case TPointer:
			sb.WriteByte('*')
			for _, q := range cur.Quals {
				sb.WriteRune(q)
			}
			cur = cur.Elem
		default:
			sb.WriteString(cur.Quals)
			return sb.String()
		}
	}
	return sb.String()
}

// Base returns the innermost non-derived type (stripping pointers and
// arrays), which is what an isa_type edge targets.
func (t *Type) Base() *Type {
	cur := t
	for cur != nil && (cur.Kind == TPointer || cur.Kind == TArray) {
		cur = cur.Elem
	}
	return cur
}

// ArrayLens returns the constant dimensions of nested arrays outermost
// first (the paper's ARRAY_LENGTHS property).
func (t *Type) ArrayLens() []int64 {
	var out []int64
	for cur := t; cur != nil && cur.Kind == TArray; cur = cur.Elem {
		out = append(out, cur.ArrayLen)
	}
	return out
}

// --- declarations ---

// Node is any AST node with a source range.
type Node interface {
	Span() cpp.Range
}

// TranslationUnit is one parsed .c file after preprocessing.
type TranslationUnit struct {
	Decls   []Decl
	Records []*RecordDecl // all struct/union definitions, including nested
	Enums   []*EnumDecl
	Errors  []error
}

// Decl is a top-level or block-level declaration.
type Decl interface {
	Node
	declNode()
}

// FuncDecl is a function definition (Body != nil) or declaration.
type FuncDecl struct {
	Name     cpp.Token
	Type     *Type // TFunc
	Params   []*ParamDecl
	Body     *BlockStmt // nil for a pure declaration
	Static   bool
	Inline   bool
	Variadic bool
	Start    cpp.Pos
	End      cpp.Pos
}

// ParamDecl is one formal parameter.
type ParamDecl struct {
	Name  cpp.Token // may be empty (abstract)
	Type  *Type
	Index int
}

// VarDecl is a global, file-static, local or static-local variable.
type VarDecl struct {
	Name   cpp.Token
	Type   *Type
	Static bool
	Extern bool
	Init   Expr // nil if none
	Start  cpp.Pos
	End    cpp.Pos
}

// TypedefDecl introduces a typedef name.
type TypedefDecl struct {
	Name  cpp.Token
	Type  *Type
	Start cpp.Pos
	End   cpp.Pos
}

// RecordDecl is a struct or union definition (with body) or forward
// declaration (Fields == nil, Complete == false).
type RecordDecl struct {
	Union    bool
	Tag      string // source tag or generated anonymous tag
	TagTok   cpp.Token
	Fields   []*FieldDecl
	Complete bool
	Start    cpp.Pos
	End      cpp.Pos
}

// FieldDecl is one struct/union member.
type FieldDecl struct {
	Name     cpp.Token
	Type     *Type
	BitWidth int64 // -1 when not a bit-field
	Start    cpp.Pos
	End      cpp.Pos
}

// EnumDecl is an enum definition or forward declaration.
type EnumDecl struct {
	Tag         string
	TagTok      cpp.Token
	Enumerators []*Enumerator
	Complete    bool
	Start       cpp.Pos
	End         cpp.Pos
}

// Enumerator is one enum constant with its resolved value.
type Enumerator struct {
	Name  cpp.Token
	Expr  Expr // nil for implicit values
	Value int64
}

func (*FuncDecl) declNode()    {}
func (*VarDecl) declNode()     {}
func (*TypedefDecl) declNode() {}
func (*RecordDecl) declNode()  {}
func (*EnumDecl) declNode()    {}

// Span implementations.
func (d *FuncDecl) Span() cpp.Range    { return cpp.Range{Start: d.Start, End: d.End} }
func (d *VarDecl) Span() cpp.Range     { return cpp.Range{Start: d.Start, End: d.End} }
func (d *TypedefDecl) Span() cpp.Range { return cpp.Range{Start: d.Start, End: d.End} }
func (d *RecordDecl) Span() cpp.Range  { return cpp.Range{Start: d.Start, End: d.End} }
func (d *EnumDecl) Span() cpp.Range    { return cpp.Range{Start: d.Start, End: d.End} }

// --- statements ---

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is { ... }.
type BlockStmt struct {
	Items []Stmt
	Start cpp.Pos
	End   cpp.Pos
}

// DeclStmt wraps block-level declarations.
type DeclStmt struct {
	Decls []Decl
	Start cpp.Pos
	End   cpp.Pos
}

// ExprStmt is an expression statement (Expr may be nil for ';').
type ExprStmt struct {
	X     Expr
	Start cpp.Pos
	End   cpp.Pos
}

// IfStmt is if/else.
type IfStmt struct {
	Cond       Expr
	Then, Else Stmt
	Start      cpp.Pos
	End        cpp.Pos
}

// WhileStmt is while or do-while (DoWhile set).
type WhileStmt struct {
	Cond    Expr
	Body    Stmt
	DoWhile bool
	Start   cpp.Pos
	End     cpp.Pos
}

// ForStmt is a for loop; Init may be a DeclStmt or ExprStmt.
type ForStmt struct {
	Init       Stmt
	Cond, Post Expr
	Body       Stmt
	Start      cpp.Pos
	End        cpp.Pos
}

// SwitchStmt is switch.
type SwitchStmt struct {
	Tag   Expr
	Body  Stmt
	Start cpp.Pos
	End   cpp.Pos
}

// CaseStmt is `case X:` or `default:` (X nil).
type CaseStmt struct {
	Value Expr
	Body  []Stmt
	Start cpp.Pos
	End   cpp.Pos
}

// ReturnStmt is return.
type ReturnStmt struct {
	X     Expr // may be nil
	Start cpp.Pos
	End   cpp.Pos
}

// BranchStmt is break/continue/goto.
type BranchStmt struct {
	Kind  string // "break", "continue", "goto"
	Label cpp.Token
	Start cpp.Pos
	End   cpp.Pos
}

// LabelStmt is `name: stmt`.
type LabelStmt struct {
	Name  cpp.Token
	Stmt  Stmt
	Start cpp.Pos
	End   cpp.Pos
}

func (*BlockStmt) stmtNode()  {}
func (*DeclStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()    {}
func (*SwitchStmt) stmtNode() {}
func (*CaseStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode() {}
func (*BranchStmt) stmtNode() {}
func (*LabelStmt) stmtNode()  {}

func (s *BlockStmt) Span() cpp.Range  { return cpp.Range{Start: s.Start, End: s.End} }
func (s *DeclStmt) Span() cpp.Range   { return cpp.Range{Start: s.Start, End: s.End} }
func (s *ExprStmt) Span() cpp.Range   { return cpp.Range{Start: s.Start, End: s.End} }
func (s *IfStmt) Span() cpp.Range     { return cpp.Range{Start: s.Start, End: s.End} }
func (s *WhileStmt) Span() cpp.Range  { return cpp.Range{Start: s.Start, End: s.End} }
func (s *ForStmt) Span() cpp.Range    { return cpp.Range{Start: s.Start, End: s.End} }
func (s *SwitchStmt) Span() cpp.Range { return cpp.Range{Start: s.Start, End: s.End} }
func (s *CaseStmt) Span() cpp.Range   { return cpp.Range{Start: s.Start, End: s.End} }
func (s *ReturnStmt) Span() cpp.Range { return cpp.Range{Start: s.Start, End: s.End} }
func (s *BranchStmt) Span() cpp.Range { return cpp.Range{Start: s.Start, End: s.End} }
func (s *LabelStmt) Span() cpp.Range  { return cpp.Range{Start: s.Start, End: s.End} }

// --- expressions ---

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

// Ident is a name use.
type Ident struct {
	Tok cpp.Token
}

// IntLit is an integer literal with its parsed value.
type IntLit struct {
	Tok   cpp.Token
	Value int64
}

// StrLit is a string literal (adjacent literals merged).
type StrLit struct {
	Toks []cpp.Token
}

// CharLit is a character literal.
type CharLit struct {
	Tok   cpp.Token
	Value int64
}

// CallExpr is a function call.
type CallExpr struct {
	Fun   Expr
	Args  []Expr
	Start cpp.Pos
	End   cpp.Pos
}

// MemberExpr is base.name or base->name (Arrow).
type MemberExpr struct {
	Base  Expr
	Name  cpp.Token
	Arrow bool
	End   cpp.Pos
}

// IndexExpr is base[idx].
type IndexExpr struct {
	Base, Idx Expr
	End       cpp.Pos
}

// UnaryExpr covers prefix (&x, *x, -x, !x, ~x, ++x, --x) and postfix
// (x++, x--) unary operators.
type UnaryExpr struct {
	Op      string
	X       Expr
	Postfix bool
	Start   cpp.Pos
	End     cpp.Pos
}

// BinaryExpr is a binary operator application.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// AssignExpr is =, +=, etc.
type AssignExpr struct {
	Op   string // "=", "+=", ...
	L, R Expr
}

// CondExpr is c ? t : f.
type CondExpr struct {
	C, T, F Expr
}

// CastExpr is (type) x.
type CastExpr struct {
	Type  *Type
	X     Expr
	Start cpp.Pos
}

// SizeofExpr is sizeof x / sizeof(type) / _Alignof(type).
type SizeofExpr struct {
	AlignOf bool
	X       Expr  // nil when of a type
	Type    *Type // nil when of an expression
	Start   cpp.Pos
	End     cpp.Pos
}

// CommaExpr is a, b.
type CommaExpr struct {
	L, R Expr
}

// StmtExpr is the GNU statement expression ({ stmts; value }) that
// kernel macros like min()/max() use pervasively.
type StmtExpr struct {
	Block *BlockStmt
	Start cpp.Pos
	End   cpp.Pos
}

// InitList is { ... } with optional designators.
type InitList struct {
	Items []InitItem
	Start cpp.Pos
	End   cpp.Pos
}

// InitItem is one initialiser, possibly designated (.field = x).
type InitItem struct {
	Designator cpp.Token // field name; zero token when positional
	Value      Expr
}

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*StrLit) exprNode()     {}
func (*CharLit) exprNode()    {}
func (*CallExpr) exprNode()   {}
func (*MemberExpr) exprNode() {}
func (*IndexExpr) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*AssignExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
func (*CastExpr) exprNode()   {}
func (*SizeofExpr) exprNode() {}
func (*CommaExpr) exprNode()  {}
func (*StmtExpr) exprNode()   {}
func (*InitList) exprNode()   {}

// Span implementations for expressions.
func (e *Ident) Span() cpp.Range {
	return cpp.Range{Start: e.Tok.Pos, End: e.Tok.End()}
}
func (e *IntLit) Span() cpp.Range { return cpp.Range{Start: e.Tok.Pos, End: e.Tok.End()} }
func (e *StrLit) Span() cpp.Range {
	return cpp.Range{Start: e.Toks[0].Pos, End: e.Toks[len(e.Toks)-1].End()}
}
func (e *CharLit) Span() cpp.Range { return cpp.Range{Start: e.Tok.Pos, End: e.Tok.End()} }
func (e *CallExpr) Span() cpp.Range {
	return cpp.Range{Start: e.Start, End: e.End}
}
func (e *MemberExpr) Span() cpp.Range {
	return cpp.Range{Start: e.Base.Span().Start, End: e.End}
}
func (e *IndexExpr) Span() cpp.Range {
	return cpp.Range{Start: e.Base.Span().Start, End: e.End}
}
func (e *UnaryExpr) Span() cpp.Range { return cpp.Range{Start: e.Start, End: e.End} }
func (e *BinaryExpr) Span() cpp.Range {
	return cpp.Range{Start: e.L.Span().Start, End: e.R.Span().End}
}
func (e *AssignExpr) Span() cpp.Range {
	return cpp.Range{Start: e.L.Span().Start, End: e.R.Span().End}
}
func (e *CondExpr) Span() cpp.Range {
	return cpp.Range{Start: e.C.Span().Start, End: e.F.Span().End}
}
func (e *CastExpr) Span() cpp.Range {
	return cpp.Range{Start: e.Start, End: e.X.Span().End}
}
func (e *SizeofExpr) Span() cpp.Range { return cpp.Range{Start: e.Start, End: e.End} }
func (e *CommaExpr) Span() cpp.Range {
	return cpp.Range{Start: e.L.Span().Start, End: e.R.Span().End}
}
func (e *StmtExpr) Span() cpp.Range { return cpp.Range{Start: e.Start, End: e.End} }
func (e *InitList) Span() cpp.Range { return cpp.Range{Start: e.Start, End: e.End} }
