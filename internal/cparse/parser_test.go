package cparse

import (
	"testing"

	"frappe/internal/cpp"
)

// parseSrc preprocesses and parses a single in-memory file.
func parseSrc(t *testing.T, src string) *TranslationUnit {
	t.Helper()
	pp := cpp.New(cpp.MapFS{"t.c": src}, nil, nil)
	res, err := pp.Preprocess("t.c")
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	for _, e := range res.Errors {
		t.Fatalf("preprocess error: %v", e)
	}
	tu := Parse(res.Tokens, nil)
	for _, e := range tu.Errors {
		t.Fatalf("parse error: %v", e)
	}
	return tu
}

func TestSimpleFunction(t *testing.T) {
	tu := parseSrc(t, `
int bar(int input) { return input; }
int main(int argc, char **argv) { return bar(argc); }
`)
	if len(tu.Decls) != 2 {
		t.Fatalf("decls = %d", len(tu.Decls))
	}
	bar := tu.Decls[0].(*FuncDecl)
	if bar.Name.Text != "bar" || bar.Body == nil || len(bar.Params) != 1 {
		t.Fatalf("bar = %+v", bar)
	}
	if bar.Params[0].Name.Text != "input" || bar.Params[0].Type.String() != "int" {
		t.Fatalf("param = %+v", bar.Params[0])
	}
	main := tu.Decls[1].(*FuncDecl)
	if main.Params[1].Type.String() != "char**" {
		t.Fatalf("argv type = %s", main.Params[1].Type)
	}
	if main.Params[1].Type.QualCode() != "**" {
		t.Fatalf("argv qualcode = %q", main.Params[1].Type.QualCode())
	}
	if main.Params[1].Type.Base().Name != "char" {
		t.Fatalf("argv base = %s", main.Params[1].Type.Base())
	}
}

func TestDeclaratorZoo(t *testing.T) {
	tu := parseSrc(t, `
int *a[10];
int (*fp)(int, char **);
const char *msg;
volatile unsigned long jiffies;
int matrix[2][3];
char buf[];
int (*handlers[4])(void);
`)
	get := func(i int) *VarDecl { return tu.Decls[i].(*VarDecl) }

	if got := get(0).Type.String(); got != "int*[10]" {
		t.Fatalf("a: %s", got)
	}
	if got := get(0).Type.QualCode(); got != "]*" {
		t.Fatalf("a qualcode: %q", got)
	}
	fp := get(1).Type
	if fp.Kind != TPointer || fp.Elem.Kind != TFunc {
		t.Fatalf("fp: %s", fp)
	}
	if len(fp.Elem.Params) != 2 || fp.Elem.Params[1].String() != "char**" {
		t.Fatalf("fp params: %v", fp.Elem.Params)
	}
	msg := get(2).Type
	if msg.Kind != TPointer || msg.Elem.Quals != "c" || msg.Elem.Name != "char" {
		t.Fatalf("msg: %s quals=%q", msg, msg.Elem.Quals)
	}
	jf := get(3).Type
	if jf.Name != "unsigned long" || jf.Quals != "v" {
		t.Fatalf("jiffies: %s quals=%q", jf, jf.Quals)
	}
	m := get(4).Type
	if lens := m.ArrayLens(); len(lens) != 2 || lens[0] != 2 || lens[1] != 3 {
		t.Fatalf("matrix lens: %v", m.ArrayLens())
	}
	if got := get(5).Type; got.Kind != TArray || got.ArrayLen != -1 {
		t.Fatalf("buf: %s", got)
	}
	h := get(6).Type
	if h.Kind != TArray || h.Elem.Kind != TPointer || h.Elem.Elem.Kind != TFunc {
		t.Fatalf("handlers: %s", h)
	}
}

func TestStructUnionEnum(t *testing.T) {
	tu := parseSrc(t, `
struct packet_command {
	unsigned char cmd[12];
	int quiet : 1;
	int timeout;
	union { int a; char b; } u;
};
enum sr_state { SR_IDLE, SR_BUSY = 5, SR_DONE };
union event { int i; char c; };
`)
	if len(tu.Records) != 3 {
		t.Fatalf("records = %d", len(tu.Records))
	}
	var pkt *RecordDecl
	for _, r := range tu.Records {
		if r.Tag == "packet_command" {
			pkt = r
		}
	}
	if pkt == nil || len(pkt.Fields) != 4 {
		t.Fatalf("pkt = %+v", pkt)
	}
	if pkt.Fields[0].Name.Text != "cmd" || pkt.Fields[0].Type.Kind != TArray {
		t.Fatalf("cmd field = %+v", pkt.Fields[0])
	}
	if pkt.Fields[1].BitWidth != 1 {
		t.Fatalf("quiet bitwidth = %d", pkt.Fields[1].BitWidth)
	}
	if pkt.Fields[2].BitWidth != -1 {
		t.Fatalf("timeout bitwidth = %d", pkt.Fields[2].BitWidth)
	}
	if pkt.Fields[3].Type.Kind != TUnion {
		t.Fatalf("u field = %s", pkt.Fields[3].Type)
	}
	if len(tu.Enums) != 1 {
		t.Fatalf("enums = %d", len(tu.Enums))
	}
	en := tu.Enums[0]
	if en.Enumerators[0].Value != 0 || en.Enumerators[1].Value != 5 || en.Enumerators[2].Value != 6 {
		t.Fatalf("enum values = %d %d %d", en.Enumerators[0].Value, en.Enumerators[1].Value, en.Enumerators[2].Value)
	}
}

func TestTypedefLexerHack(t *testing.T) {
	tu := parseSrc(t, `
typedef unsigned long size_t;
typedef struct request req_t;
size_t total;
req_t *queue;
int f(void) { req_t *local; return 0; }
`)
	td := tu.Decls[0].(*TypedefDecl)
	if td.Name.Text != "size_t" || td.Type.Name != "unsigned long" {
		t.Fatalf("typedef = %+v", td)
	}
	v := tu.Decls[2].(*VarDecl)
	if v.Type.Kind != TTypedef || v.Type.Name != "size_t" {
		t.Fatalf("total type = %s", v.Type)
	}
	q := tu.Decls[3].(*VarDecl)
	if q.Type.Kind != TPointer || q.Type.Elem.Name != "req_t" {
		t.Fatalf("queue type = %s", q.Type)
	}
	f := tu.Decls[4].(*FuncDecl)
	ds := f.Body.Items[0].(*DeclStmt)
	if ds.Decls[0].(*VarDecl).Type.Elem.Name != "req_t" {
		t.Fatalf("local type = %s", ds.Decls[0].(*VarDecl).Type)
	}
}

func TestStatements(t *testing.T) {
	tu := parseSrc(t, `
int f(int n) {
	int i, sum = 0;
	static int cache;
	for (i = 0; i < n; i++) {
		if (i % 2 == 0) { sum += i; } else sum -= i;
	}
	while (sum > 100) sum /= 2;
	do { sum++; } while (sum < 10);
	switch (n) {
	case 0: return 0;
	case 1: break;
	default: sum = -1;
	}
	goto out;
out:
	return sum;
}
`)
	f := tu.Decls[0].(*FuncDecl)
	if f.Body == nil {
		t.Fatal("no body")
	}
	kinds := make([]string, 0)
	for _, it := range f.Body.Items {
		switch it.(type) {
		case *DeclStmt:
			kinds = append(kinds, "decl")
		case *ForStmt:
			kinds = append(kinds, "for")
		case *WhileStmt:
			kinds = append(kinds, "while")
		case *SwitchStmt:
			kinds = append(kinds, "switch")
		case *BranchStmt:
			kinds = append(kinds, "branch")
		case *LabelStmt:
			kinds = append(kinds, "label")
		default:
			kinds = append(kinds, "other")
		}
	}
	want := []string{"decl", "decl", "for", "while", "while", "switch", "branch", "label"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	// The first DeclStmt declared two variables.
	if ds := f.Body.Items[0].(*DeclStmt); len(ds.Decls) != 2 {
		t.Fatalf("multi decl = %d", len(ds.Decls))
	}
}

func TestExpressions(t *testing.T) {
	tu := parseSrc(t, `
struct dev { int id; struct dev *next; };
int g(struct dev *d, int arr[]) {
	int x = d->id + arr[3] * 2;
	d->next->id = (int)x;
	x = sizeof(struct dev) + sizeof x;
	x = d ? d->id : -1;
	x = (x & 0xff) << 2 | (x >> 8);
	(&*d)->id++, x--;
	return !x;
}
`)
	g := tu.Decls[0].(*FuncDecl) // the bare struct produces no Decl node
	if g.Body == nil || len(g.Body.Items) != 7 {
		t.Fatalf("items = %d", len(g.Body.Items))
	}
	// x = d->id + arr[3] * 2
	ds := g.Body.Items[0].(*DeclStmt)
	init := ds.Decls[0].(*VarDecl).Init.(*BinaryExpr)
	if init.Op != "+" {
		t.Fatalf("init op = %s", init.Op)
	}
	mem := init.L.(*MemberExpr)
	if mem.Name.Text != "id" || !mem.Arrow {
		t.Fatalf("member = %+v", mem)
	}
	mul := init.R.(*BinaryExpr)
	if mul.Op != "*" {
		t.Fatalf("mul = %+v", mul)
	}
	if _, ok := mul.L.(*IndexExpr); !ok {
		t.Fatalf("index = %T", mul.L)
	}
	// d->next->id = (int)x
	asg := g.Body.Items[1].(*ExprStmt).X.(*AssignExpr)
	chain := asg.L.(*MemberExpr)
	if chain.Name.Text != "id" {
		t.Fatalf("chain = %+v", chain)
	}
	if _, ok := chain.Base.(*MemberExpr); !ok {
		t.Fatalf("chain base = %T", chain.Base)
	}
	if _, ok := asg.R.(*CastExpr); !ok {
		t.Fatalf("cast = %T", asg.R)
	}
	// sizeof both forms
	sz := g.Body.Items[2].(*ExprStmt).X.(*AssignExpr).R.(*BinaryExpr)
	if sz.L.(*SizeofExpr).Type == nil || sz.R.(*SizeofExpr).X == nil {
		t.Fatal("sizeof forms wrong")
	}
	// ternary
	if _, ok := g.Body.Items[3].(*ExprStmt).X.(*AssignExpr).R.(*CondExpr); !ok {
		t.Fatal("ternary missing")
	}
	// comma expr
	if _, ok := g.Body.Items[5].(*ExprStmt).X.(*CommaExpr); !ok {
		t.Fatalf("comma = %T", g.Body.Items[5].(*ExprStmt).X)
	}
}

func TestDesignatedInitializers(t *testing.T) {
	tu := parseSrc(t, `
struct ops { int (*open)(void); int (*close)(void); };
int my_open(void);
int my_close(void);
struct ops fops = { .open = my_open, .close = my_close };
int table[4] = { [0] = 1, [2] = 3 };
`)
	fops := tu.Decls[2].(*VarDecl)
	il := fops.Init.(*InitList)
	if len(il.Items) != 2 || il.Items[0].Designator.Text != "open" || il.Items[1].Designator.Text != "close" {
		t.Fatalf("designators = %+v", il.Items)
	}
	tbl := tu.Decls[3].(*VarDecl)
	if len(tbl.Init.(*InitList).Items) != 2 {
		t.Fatalf("table init = %+v", tbl.Init)
	}
}

func TestStaticAndExtern(t *testing.T) {
	tu := parseSrc(t, `
static int counter;
extern int external_thing;
static int helper(void) { return counter; }
int public_fn(void);
`)
	if !tu.Decls[0].(*VarDecl).Static {
		t.Fatal("counter not static")
	}
	if !tu.Decls[1].(*VarDecl).Extern {
		t.Fatal("external_thing not extern")
	}
	h := tu.Decls[2].(*FuncDecl)
	if !h.Static || h.Body == nil {
		t.Fatalf("helper = %+v", h)
	}
	pf := tu.Decls[3].(*FuncDecl)
	if pf.Static || pf.Body != nil {
		t.Fatalf("public_fn = %+v", pf)
	}
}

func TestVariadicFunction(t *testing.T) {
	tu := parseSrc(t, `int printk(const char *fmt, ...);`)
	f := tu.Decls[0].(*FuncDecl)
	if !f.Variadic {
		t.Fatal("printk not variadic")
	}
	if len(f.Params) != 1 {
		t.Fatalf("params = %d", len(f.Params))
	}
}

func TestAttributesSkipped(t *testing.T) {
	tu := parseSrc(t, `
static int __attribute__((unused)) quiet_var;
int noisy(void) __attribute__((section(".init.text")));
`)
	if len(tu.Decls) != 2 {
		t.Fatalf("decls = %d", len(tu.Decls))
	}
	if tu.Decls[0].(*VarDecl).Name.Text != "quiet_var" {
		t.Fatalf("decl 0 = %+v", tu.Decls[0])
	}
}

func TestAnonymousRecordMembers(t *testing.T) {
	tu := parseSrc(t, `
struct outer {
	int tag;
	union {
		int as_int;
		char as_bytes[4];
	};
};
`)
	rec := tu.Records[1] // outer comes after the nested union in emission order? check both
	var outer *RecordDecl
	for _, r := range tu.Records {
		if r.Tag == "outer" {
			outer = r
		}
	}
	if outer == nil || len(outer.Fields) != 2 {
		t.Fatalf("outer = %+v", outer)
	}
	if outer.Fields[1].Name.Text != "" || outer.Fields[1].Type.Kind != TUnion {
		t.Fatalf("anon member = %+v", outer.Fields[1])
	}
	_ = rec
}

func TestParseErrorRecovery(t *testing.T) {
	pp := cpp.New(cpp.MapFS{"t.c": `
int good1(void) { return 1; }
int bad( { nonsense ;;;
int good2(void) { return 2; }
`}, nil, nil)
	res, err := pp.Preprocess("t.c")
	if err != nil {
		t.Fatal(err)
	}
	tu := Parse(res.Tokens, nil)
	if len(tu.Errors) == 0 {
		t.Fatal("expected parse errors")
	}
	names := map[string]bool{}
	for _, d := range tu.Decls {
		if f, ok := d.(*FuncDecl); ok {
			names[f.Name.Text] = true
		}
	}
	if !names["good1"] || !names["good2"] {
		t.Fatalf("recovery lost functions: %v", names)
	}
}

func TestFunctionBodySpanAndPositions(t *testing.T) {
	tu := parseSrc(t, "int f(void)\n{\n  return 0;\n}\n")
	f := tu.Decls[0].(*FuncDecl)
	if f.Name.Pos.Line != 1 || f.Name.Pos.Col != 5 {
		t.Fatalf("name pos = %+v", f.Name.Pos)
	}
	sp := f.Span()
	if sp.Start.Line != 1 || sp.End.Line != 4 {
		t.Fatalf("span = %+v", sp)
	}
}

func TestExtraTypedefsSeed(t *testing.T) {
	pp := cpp.New(cpp.MapFS{"t.c": "u32 reg;\n"}, nil, nil)
	res, _ := pp.Preprocess("t.c")
	tu := Parse(res.Tokens, []string{"u32"})
	if len(tu.Errors) != 0 {
		t.Fatalf("errors = %v", tu.Errors)
	}
	if tu.Decls[0].(*VarDecl).Type.Name != "u32" {
		t.Fatalf("reg type = %s", tu.Decls[0].(*VarDecl).Type)
	}
}

func TestCanonicalPrimitives(t *testing.T) {
	cases := map[string]string{
		"unsigned x;":           "unsigned int",
		"unsigned long long y;": "unsigned long long",
		"long int z;":           "long",
		"short w;":              "short",
		"signed char c;":        "signed char",
		"long double d;":        "long double",
	}
	for src, want := range cases {
		tu := parseSrc(t, src)
		got := tu.Decls[0].(*VarDecl).Type.Name
		if got != want {
			t.Errorf("%q: type = %q, want %q", src, got, want)
		}
	}
}

func TestFunctionPointerTypedefAndUse(t *testing.T) {
	tu := parseSrc(t, `
typedef int (*handler_t)(int);
handler_t table[8];
int dispatch(handler_t h, int v) { return h(v); }
`)
	td := tu.Decls[0].(*TypedefDecl)
	if td.Type.Kind != TPointer || td.Type.Elem.Kind != TFunc {
		t.Fatalf("handler_t = %s", td.Type)
	}
	d := tu.Decls[2].(*FuncDecl)
	call := d.Body.Items[0].(*ReturnStmt).X.(*CallExpr)
	if call.Fun.(*Ident).Tok.Text != "h" {
		t.Fatalf("call fun = %+v", call.Fun)
	}
}

func TestGnuTernaryElision(t *testing.T) {
	tu := parseSrc(t, "int f(int a, int b) { return a ?: b; }")
	ret := tu.Decls[0].(*FuncDecl).Body.Items[0].(*ReturnStmt)
	if _, ok := ret.X.(*CondExpr); !ok {
		t.Fatalf("elision = %T", ret.X)
	}
}

func TestGnuStatementExpression(t *testing.T) {
	tu := parseSrc(t, `
#define min_t(x, y) ({ int _a = (x); int _b = (y); _a < _b ? _a : _b; })
int f(int a, int b) { return min_t(a, b); }
`)
	f := tu.Decls[0].(*FuncDecl)
	se, ok := f.Body.Items[0].(*ReturnStmt).X.(*StmtExpr)
	if !ok {
		t.Fatalf("return expr = %T", f.Body.Items[0].(*ReturnStmt).X)
	}
	if len(se.Block.Items) != 3 {
		t.Fatalf("stmt expr items = %d", len(se.Block.Items))
	}
}

func TestTypeof(t *testing.T) {
	tu := parseSrc(t, `
int counter;
int f(void) {
	typeof(counter) copy = counter;
	__typeof__(counter) *ptr = &counter;
	return copy + *ptr;
}
`)
	f := tu.Decls[1].(*FuncDecl)
	ds := f.Body.Items[0].(*DeclStmt)
	vd := ds.Decls[0].(*VarDecl)
	if vd.Name.Text != "copy" || vd.Type.Kind != TTypedef || vd.Type.Name != "__typeof__" {
		t.Fatalf("copy = %+v type %s", vd.Name.Text, vd.Type)
	}
	ds2 := f.Body.Items[1].(*DeclStmt)
	if ds2.Decls[0].(*VarDecl).Type.Kind != TPointer {
		t.Fatalf("ptr type = %s", ds2.Decls[0].(*VarDecl).Type)
	}
}
