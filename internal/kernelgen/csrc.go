package kernelgen

import (
	"fmt"
	"strings"
)

// coreHeaders writes the shared kernel headers every TU pulls in.
func (g *generator) coreHeaders() {
	g.addFile("include/linux/types.h", `#ifndef _LINUX_TYPES_H
#define _LINUX_TYPES_H
typedef unsigned char u8;
typedef unsigned short u16;
typedef unsigned int u32;
typedef unsigned long long u64;
typedef signed char s8;
typedef short s16;
typedef int s32;
typedef long long s64;
typedef unsigned long size_t;
typedef _Bool bool;
#define NULL ((void *)0)
#define BITS_PER_LONG 64
#define true 1
#define false 0
#endif
`)

	// autoconf.h: CONFIG_* switches; roughly half the subsystems get a
	// DEBUG config so #ifdef blocks split both ways.
	var sb strings.Builder
	sb.WriteString("#ifndef _LINUX_AUTOCONF_H\n#define _LINUX_AUTOCONF_H\n")
	for i, s := range g.subs {
		sb.WriteString(fmt.Sprintf("#define CONFIG_%s 1\n", strings.ToUpper(s.name)))
		if i%2 == 0 {
			sb.WriteString(fmt.Sprintf("#define CONFIG_%s_DEBUG 1\n", strings.ToUpper(s.name)))
		}
	}
	sb.WriteString("#define CONFIG_PCI 1\n#define CONFIG_SCSI 1\n#define CONFIG_ACPI 1\n")
	sb.WriteString("#endif\n")
	g.addFile("include/linux/autoconf.h", sb.String())

	g.addFile("include/linux/kernel.h", `#ifndef _LINUX_KERNEL_H
#define _LINUX_KERNEL_H
#include <linux/types.h>
#include <linux/autoconf.h>
#define KERN_INFO "<6>"
#define KERN_ERR "<3>"
#define min(a, b) ((a) < (b) ? (a) : (b))
#define max(a, b) ((a) > (b) ? (a) : (b))
#define min_t(a, b) ({ int __a = (a); int __b = (b); __a < __b ? __a : __b; })
#define ARRAY_SIZE(a) ((int)(sizeof(a) / sizeof((a)[0])))
#define BUG_ON(cond) do { if (cond) panic("BUG"); } while (0)
#define WARN_ON(cond) ((cond) ? printk(KERN_ERR "warn\n") : 0)
int printk(const char *fmt, ...);
void panic(const char *msg);
int snprintf(char *buf, size_t n, const char *fmt, ...);
#endif
`)

	g.addFile("include/linux/slab.h", `#ifndef _LINUX_SLAB_H
#define _LINUX_SLAB_H
#include <linux/types.h>
void *kmalloc(size_t size);
void *kzalloc(size_t size);
void kfree(void *ptr);
#endif
`)

	g.addFile("include/linux/string.h", `#ifndef _LINUX_STRING_H
#define _LINUX_STRING_H
#include <linux/types.h>
void *memcpy(void *dst, const void *src, size_t n);
void *memset(void *s, int c, size_t n);
size_t strlen(const char *s);
int strcmp(const char *a, const char *b);
#endif
`)
}

// libSources defines the hot utility functions; every subsystem calls
// into these, making printk/kmalloc the call-graph hubs of Figure 7.
func (g *generator) libSources() {
	g.addFile("kernel/printk.c", `#include <linux/kernel.h>
static char log_buf[4096];
static int log_end;
int printk(const char *fmt, ...)
{
	size_t n = strlen_local(fmt);
	if (fmt == NULL)
		return -1;
	log_end = (log_end + (int)n) % (int)sizeof(log_buf);
	log_buf[log_end] = fmt[0];
	return (int)n;
}
void panic(const char *msg)
{
	printk(msg);
	for (;;)
		;
}
int snprintf(char *buf, size_t n, const char *fmt, ...)
{
	if (buf == NULL || n == 0)
		return 0;
	buf[0] = fmt[0];
	return 1;
}
size_t strlen_local(const char *s)
{
	size_t n = 0;
	while (s[n])
		n++;
	return n;
}
`)
	// strlen_local is used before its definition; declare it first.
	g.fs["kernel/printk.c"] = "#include <linux/kernel.h>\nsize_t strlen_local(const char *s);\n" + strings.TrimPrefix(g.fs["kernel/printk.c"], "#include <linux/kernel.h>\n")
	g.addUnit("kernel/printk.c", "vmlinux")

	g.addFile("lib/string.c", `#include <linux/string.h>
void *memcpy(void *dst, const void *src, size_t n)
{
	char *d = (char *)dst;
	const char *s = (const char *)src;
	size_t i;
	for (i = 0; i < n; i++)
		d[i] = s[i];
	return dst;
}
void *memset(void *s, int c, size_t n)
{
	char *p = (char *)s;
	size_t i;
	for (i = 0; i < n; i++)
		p[i] = (char)c;
	return s;
}
size_t strlen(const char *s)
{
	size_t n = 0;
	while (s[n])
		n++;
	return n;
}
int strcmp(const char *a, const char *b)
{
	size_t i = 0;
	while (a[i] && a[i] == b[i])
		i++;
	return a[i] - b[i];
}
`)
	g.addUnit("lib/string.c", "vmlinux")

	g.addFile("mm/slab.c", `#include <linux/slab.h>
#include <linux/kernel.h>
#include <linux/string.h>
static char slab_pool[1 << 16];
static size_t slab_top;
void *kmalloc(size_t size)
{
	void *p;
	if (slab_top + size > sizeof(slab_pool)) {
		printk(KERN_ERR "kmalloc: out of memory\n");
		return NULL;
	}
	p = &slab_pool[slab_top];
	slab_top += size;
	return p;
}
void *kzalloc(size_t size)
{
	void *p = kmalloc(size);
	if (p != NULL)
		memset(p, 0, size);
	return p;
}
void kfree(void *ptr)
{
	if (ptr == NULL)
		printk(KERN_ERR "kfree(NULL)\n");
}
`)
	g.addUnit("mm/slab.c", "vmlinux")
}

// utility call targets with zipf-ish hotness (printk hottest); all are
// int-valued expressions usable in `ret += ...;`.
var utilCalls = []string{
	"printk(KERN_INFO \"op %d\\n\", ret)",
	"printk(KERN_INFO \"dev %d\\n\", arg)",
	"(int)strlen(dev->name)",
	"strcmp(dev->name, \"probe\")",
	"snprintf(dev->name, sizeof(dev->name), \"d%d\", ret)",
}

func upper(s string) string { return strings.ToUpper(s) }

// pubName is the deterministic public function name for (subsystem,
// file, op).
func pubName(sub string, file, op int) string {
	return fmt.Sprintf("%s_f%d_op%d", sub, file, op)
}

func (g *generator) pubsPerFile() int {
	n := g.cfg.FuncsPerFile / 3
	if n < 1 {
		n = 1
	}
	return n
}

// subsystemHeader writes include/linux/<name>.h.
func (g *generator) subsystemHeader(i int) {
	s := &g.subs[i]
	n, N := s.name, upper(s.name)
	var sb strings.Builder
	fmt.Fprintf(&sb, "#ifndef _LINUX_%s_H\n#define _LINUX_%s_H\n", N, N)
	sb.WriteString("#include <linux/types.h>\n#include <linux/autoconf.h>\n")
	fmt.Fprintf(&sb, "#define %s_MAX_DEVS 16\n", N)
	fmt.Fprintf(&sb, "#define %s_FLAG_READY 0x1\n", N)
	fmt.Fprintf(&sb, "#define %s_FLAG_BUSY 0x2\n", N)
	fmt.Fprintf(&sb, "#define %s_EINVAL 22\n", N)
	fmt.Fprintf(&sb, "#define %s_PENDING(dev) (((dev)->flags & %s_FLAG_BUSY) != 0)\n", N, N)
	fmt.Fprintf(&sb, "enum %s_state { %s_IDLE, %s_ACTIVE, %s_FAILED = 16 };\n", n, N, N, N)
	fmt.Fprintf(&sb, "struct %s_dev {\n", n)
	sb.WriteString("\tu32 id;\n\tu32 flags;\n")
	fmt.Fprintf(&sb, "\tenum %s_state state;\n", n)
	fmt.Fprintf(&sb, "\tstruct %s_dev *next;\n", n)
	sb.WriteString("\tchar name[32];\n\tvoid *priv;\n\tint refcnt : 8;\n};\n")
	fmt.Fprintf(&sb, "typedef struct %s_dev %s_dev_t;\n", n, n)
	fmt.Fprintf(&sb, "extern int %s_debug;\n", n)
	fmt.Fprintf(&sb, "#ifdef CONFIG_%s_DEBUG\n#define %s_TRACE(dev) printk(\"%s: %%d\\n\", (dev)->id)\n#else\n#define %s_TRACE(dev) do { } while (0)\n#endif\n", N, N, n, N)
	// Public prototypes.
	for k := 0; k < g.cfg.FilesPerSubsystem; k++ {
		for j := 0; j < g.pubsPerFile(); j++ {
			fn := pubName(n, k, j)
			fmt.Fprintf(&sb, "int %s(int arg);\n", fn)
			s.pubFns = append(s.pubFns, fn)
		}
	}
	// <name>_init is declared but kept out of pubFns: generated call
	// sites pass an int argument, which init's (void) signature forbids.
	fmt.Fprintf(&sb, "int %s_init(void);\n", n)
	sb.WriteString("#endif\n")
	g.addFile(s.header, sb.String())
}

// subsystemSources writes the .c files of one subsystem.
func (g *generator) subsystemSources(i int) {
	s := g.subs[i]
	for k := 0; k < g.cfg.FilesPerSubsystem; k++ {
		path := fmt.Sprintf("%s/%s_f%d.c", s.dir, s.name, k)
		g.addFile(path, g.sourceFile(i, k))
		g.addUnit(path, s.module)
	}
}

// friendSubsystems picks the other subsystems this file may call into,
// zipf-weighted so low-index (core) subsystems become hubs.
func (g *generator) friendSubsystems(self int) []int {
	var friends []int
	for len(friends) < 2 && len(g.subs) > 1 {
		f := g.r.zipf(len(g.subs))
		if f == self {
			continue
		}
		dup := false
		for _, x := range friends {
			if x == f {
				dup = true
			}
		}
		if !dup {
			friends = append(friends, f)
		}
	}
	return friends
}

func (g *generator) sourceFile(si, k int) string {
	s := g.subs[si]
	n, N := s.name, upper(s.name)
	friends := g.friendSubsystems(si)

	var sb strings.Builder
	sb.WriteString("#include <linux/kernel.h>\n#include <linux/slab.h>\n#include <linux/string.h>\n")
	fmt.Fprintf(&sb, "#include <linux/%s.h>\n", n)
	for _, f := range friends {
		fmt.Fprintf(&sb, "#include <linux/%s.h>\n", g.subs[f].name)
	}
	sb.WriteString("\n")
	if k == 0 {
		fmt.Fprintf(&sb, "int %s_debug;\n", n)
	}
	fmt.Fprintf(&sb, "static struct %s_dev %s_f%d_devs[%s_MAX_DEVS];\n", n, n, k, N)
	fmt.Fprintf(&sb, "static int %s_f%d_count;\n\n", n, k)

	pubs := g.pubsPerFile()
	helpers := g.cfg.FuncsPerFile - pubs
	if helpers < 1 {
		helpers = 1
	}

	// Static helpers first (callable by later functions in this file).
	var prevFns []string // callable earlier functions in this file (helpers)
	for j := 0; j < helpers; j++ {
		fn := fmt.Sprintf("%s_f%d_helper%d", n, k, j)
		fmt.Fprintf(&sb, "static int %s(struct %s_dev *dev, int arg)\n", fn, n)
		sb.WriteString(g.functionBody(si, k, prevFns, friends, true))
		sb.WriteString("\n")
		prevFns = append(prevFns, fn)
	}
	for j := 0; j < pubs; j++ {
		fn := pubName(n, k, j)
		fmt.Fprintf(&sb, "int %s(int arg)\n", fn)
		sb.WriteString(g.functionBodyPublic(si, k, prevFns, friends))
		sb.WriteString("\n")
	}
	if k == 0 {
		fmt.Fprintf(&sb, "int %s_init(void)\n{\n", n)
		fmt.Fprintf(&sb, "\tmemset(%s_f0_devs, 0, sizeof(%s_f0_devs));\n", n, n)
		fmt.Fprintf(&sb, "\t%s_f0_count = 0;\n", n)
		fmt.Fprintf(&sb, "\t%s_debug = 0;\n", n)
		fmt.Fprintf(&sb, "\treturn %s_f0_op0(0);\n}\n", n)
	}
	return sb.String()
}

// functionBody emits a helper body: takes (dev, arg).
func (g *generator) functionBody(si, k int, prevFns []string, friends []int, hasDevParam bool) string {
	s := g.subs[si]
	n, N := s.name, upper(s.name)
	var sb strings.Builder
	sb.WriteString("{\n\tint ret = 0;\n")
	if !hasDevParam {
		fmt.Fprintf(&sb, "\tstruct %s_dev *dev = &%s_f%d_devs[arg & (%s_MAX_DEVS - 1)];\n", n, n, k, N)
	}
	sb.WriteString("\tif (dev == NULL)\n")
	fmt.Fprintf(&sb, "\t\treturn -%s_EINVAL;\n", N)
	if g.r.chance(70) {
		fmt.Fprintf(&sb, "\tif (dev->flags & %s_FLAG_READY) {\n", N)
		fmt.Fprintf(&sb, "\t\tdev->state = %s_ACTIVE;\n", N)
		fmt.Fprintf(&sb, "\t\tret = arg + (int)dev->id;\n")
		sb.WriteString("\t}\n")
	}
	if g.r.chance(40) {
		fmt.Fprintf(&sb, "\tif (%s_PENDING(dev))\n\t\tdev->state = %s_FAILED;\n", N, N)
	}
	if g.r.chance(30) {
		fmt.Fprintf(&sb, "\t%s_f%d_count++;\n", n, k)
	}
	g.emitCalls(&sb, si, k, prevFns, friends, true)
	if g.r.chance(35) {
		fmt.Fprintf(&sb, "\tif (%s_debug)\n\t\tprintk(KERN_INFO \"%s: ret=%%d\\n\", ret);\n", n, n)
	}
	if g.r.chance(25) {
		fmt.Fprintf(&sb, "\tret += (int)sizeof(struct %s_dev);\n", n)
	}
	if g.r.chance(20) {
		fmt.Fprintf(&sb, "\t%s_TRACE(dev);\n", N)
	}
	sb.WriteString("\treturn ret;\n}\n")
	return sb.String()
}

// functionBodyPublic emits a public op body: takes (arg) and declares its
// own dev.
func (g *generator) functionBodyPublic(si, k int, prevFns []string, friends []int) string {
	s := g.subs[si]
	n, N := s.name, upper(s.name)
	var sb strings.Builder
	sb.WriteString("{\n\tint ret = 0;\n")
	fmt.Fprintf(&sb, "\tstruct %s_dev *dev = &%s_f%d_devs[arg & (%s_MAX_DEVS - 1)];\n", n, n, k, N)
	if g.r.chance(50) {
		fmt.Fprintf(&sb, "\tif (dev->next == NULL) {\n")
		fmt.Fprintf(&sb, "\t\tdev->next = (struct %s_dev *)kmalloc(sizeof(struct %s_dev));\n", n, n)
		fmt.Fprintf(&sb, "\t\tBUG_ON(dev->next == NULL);\n")
		sb.WriteString("\t}\n")
	}
	if g.r.chance(40) {
		fmt.Fprintf(&sb, "\tdev->id = (u32)arg;\n")
	}
	g.emitCalls(&sb, si, k, prevFns, friends, false)
	if g.r.chance(30) {
		fmt.Fprintf(&sb, "\tret = min(ret, 4096);\n")
	}
	if g.r.chance(20) {
		// GNU statement expression, kernel style.
		fmt.Fprintf(&sb, "\tret = min_t(ret, 8192);\n")
	}
	sb.WriteString("\treturn ret;\n}\n")
	return sb.String()
}

// emitCalls appends 1-4 call statements: intra-file helpers, own-module
// public ops, friend-subsystem public ops, and hot utilities.
func (g *generator) emitCalls(sb *strings.Builder, si, k int, prevFns []string, friends []int, fromHelper bool) {
	calls := 1 + g.r.intn(4)
	s := g.subs[si]
	for c := 0; c < calls; c++ {
		switch pick := g.r.intn(100); {
		case pick < 30 && len(prevFns) > 0:
			fn := prevFns[g.r.zipf(len(prevFns))]
			fmt.Fprintf(sb, "\tret += %s(dev, ret);\n", fn)
		case pick < 50 && len(s.pubFns) > 0:
			fn := s.pubFns[g.r.zipf(len(s.pubFns))]
			fmt.Fprintf(sb, "\tret += %s(ret + %d);\n", fn, c)
		case pick < 75 && len(friends) > 0:
			fr := g.subs[friends[g.r.intn(len(friends))]]
			if len(fr.pubFns) > 0 {
				fn := fr.pubFns[g.r.zipf(len(fr.pubFns))]
				fmt.Fprintf(sb, "\tret += %s(ret);\n", fn)
			}
		default:
			fmt.Fprintf(sb, "\tret += %s;\n", utilCalls[g.r.zipf(len(utilCalls))])
		}
	}
}
