// Package kernelgen generates a synthetic Linux-kernel-shaped C codebase
// — the stand-in for the Oracle Unbreakable Enterprise Kernel the paper
// evaluates on, which we cannot ship. The generated tree is genuine C
// source: it flows through the full extractor pipeline (preprocessor,
// parser, linker model), and is shaped to reproduce the paper's graph
// characteristics:
//
//   - kernel-like directory layout (kernel/, mm/, fs/, drivers/<bus>/,
//     net/<proto>/, lib/, include/linux/);
//   - a heavy-tailed call/use structure: hot utility functions (printk,
//     kmalloc), hot primitives (int) and the NULL macro acquire node
//     degrees orders of magnitude above the median (Figure 7's hubs);
//   - CONFIG_* conditional compilation, macros with expansion inside
//     functions, struct/enum/typedef-rich headers;
//   - per-directory modules linked from the directory's objects, plus the
//     paper's named seed entities so its queries run verbatim: module
//     wakeup.elf with fields named id (Figure 3), functions
//     sr_media_change / get_sectorsize and struct packet_command with
//     field cmd at the exact source line Figure 5 hardcodes, and
//     pci_read_bases with a deep, diamond-rich callee tree (Figure 6).
//
// Generation is fully deterministic for a given Config.
package kernelgen

import (
	"fmt"
	"sort"
	"strings"

	"frappe/internal/cpp"
	"frappe/internal/extract"
)

// Config sizes the synthetic kernel.
type Config struct {
	Seed              int64
	Subsystems        int // synthetic subsystems in addition to the fixed seed ones
	FilesPerSubsystem int
	FuncsPerFile      int // functions per .c file (≥2)
}

// Tiny returns a test-sized configuration (a few hundred nodes).
func Tiny() Config {
	return Config{Seed: 1, Subsystems: 3, FilesPerSubsystem: 2, FuncsPerFile: 3}
}

// Default returns the benchmark-scale configuration. The resulting graph
// preserves the paper's ~1:8 node:edge ratio and degree shape at a size
// the full pipeline processes in seconds; frappe-bench -scale raises it
// toward the paper's absolute counts.
func Default() Config {
	return Config{Seed: 2015, Subsystems: 24, FilesPerSubsystem: 10, FuncsPerFile: 12}
}

// Scaled multiplies the default size by factor (≥1).
func Scaled(factor int) Config {
	c := Default()
	if factor > 1 {
		c.Subsystems *= factor
		c.FilesPerSubsystem += factor
	}
	return c
}

// Workload is a generated codebase plus its build description.
type Workload struct {
	FS    cpp.MapFS
	Build extract.Build
}

// ExtractOptions returns the extractor options for this workload.
func (w *Workload) ExtractOptions() extract.Options {
	return extract.Options{
		FS:           w.FS,
		IncludePaths: []string{"include"},
	}
}

// Extract runs the full extraction pipeline over the workload.
func (w *Workload) Extract() (*extract.Result, error) {
	return extract.Run(w.Build, w.ExtractOptions())
}

// LineCount reports the total number of source lines in the workload,
// the "MLoC" figure the paper sizes its corpus by.
func (w *Workload) LineCount() int {
	n := 0
	for _, src := range w.FS {
		n += strings.Count(src, "\n")
	}
	return n
}

// rng is a deterministic splitmix64 generator (stable across Go
// versions, unlike math/rand's stream).
type rng struct{ state uint64 }

func newRng(seed int64) *rng { return &rng{state: uint64(seed)*2654435769 + 0x9E3779B97F4A7C15} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// zipf returns an index in [0, n) with probability ∝ 1/(i+1): the
// preferential skew that produces Figure 7's heavy tail.
func (r *rng) zipf(n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF over harmonic weights, approximated by retrying a
	// geometric-ish draw; cheap and deterministic.
	for {
		i := r.intn(n)
		// accept i with probability 1/(i+1)
		if r.intn(i+1) == 0 {
			return i
		}
	}
}

// chance returns true with probability pct/100.
func (r *rng) chance(pct int) bool { return r.intn(100) < pct }

// subsystem names, cycled (with numeric suffixes) when Config asks for
// more than the base list.
var subsysNames = []string{
	"sched", "irq", "timer", "workqueue", "signal", "futex",
	"vfs", "ext4", "proc", "sysfs", "dcache", "inode",
	"tcp", "udp", "route", "netdev", "sock", "arp",
	"usb", "tty", "input", "rtc", "dma", "gpio",
	"crypto", "audit", "keys", "selinux", "mmzone", "swap",
}

// subsysDirs maps a subsystem index to its top-level directory, shaped
// like the kernel tree.
var subsysDirs = []string{
	"kernel", "kernel", "kernel", "kernel", "kernel", "kernel",
	"fs", "fs/ext4", "fs/proc", "fs", "fs", "fs",
	"net/ipv4", "net/ipv4", "net/core", "net/core", "net/core", "net/ipv4",
	"drivers/usb", "drivers/tty", "drivers/input", "drivers/rtc", "drivers/dma", "drivers/gpio",
	"crypto", "security", "security/keys", "security/selinux", "mm", "mm",
}

type subsystem struct {
	name   string
	dir    string
	header string   // include/linux/<name>.h
	pubFns []string // public function names, in declaration order
	module string   // module this subsystem's objects link into
}

// Generate builds the synthetic kernel.
func Generate(cfg Config) *Workload {
	if cfg.FuncsPerFile < 2 {
		cfg.FuncsPerFile = 2
	}
	if cfg.FilesPerSubsystem < 1 {
		cfg.FilesPerSubsystem = 1
	}
	g := &generator{
		cfg: cfg,
		r:   newRng(cfg.Seed),
		fs:  cpp.MapFS{},
	}
	g.coreHeaders()
	g.makeSubsystems()
	for i := range g.subs {
		g.subsystemHeader(i)
	}
	for i := range g.subs {
		g.subsystemSources(i)
	}
	g.libSources()
	g.seedFiles()
	g.assembleBuild()
	return &Workload{FS: g.fs, Build: g.build}
}

type generator struct {
	cfg   Config
	r     *rng
	fs    cpp.MapFS
	subs  []subsystem
	build extract.Build
	// units per module, in insertion order
	moduleObjs map[string][]string
	moduleSeq  []string
}

func (g *generator) addFile(path, content string) {
	g.fs[path] = content
}

// addUnit registers a compile unit and assigns its object to a module.
func (g *generator) addUnit(src, module string) {
	obj := strings.TrimSuffix(src, ".c") + ".o"
	g.build.Units = append(g.build.Units, extract.CompileUnit{Source: src, Object: obj})
	if g.moduleObjs == nil {
		g.moduleObjs = map[string][]string{}
	}
	if _, ok := g.moduleObjs[module]; !ok {
		g.moduleSeq = append(g.moduleSeq, module)
	}
	g.moduleObjs[module] = append(g.moduleObjs[module], obj)
}

func (g *generator) assembleBuild() {
	for _, m := range g.moduleSeq {
		mod := extract.Module{Name: m, Objects: g.moduleObjs[m]}
		if m == "vmlinux" {
			mod.Libs = []string{"lib/lib.a"}
		}
		g.build.Modules = append(g.build.Modules, mod)
	}
	sort.SliceStable(g.build.Units, func(i, j int) bool {
		return g.build.Units[i].Source < g.build.Units[j].Source
	})
}

func (g *generator) makeSubsystems() {
	for i := 0; i < g.cfg.Subsystems; i++ {
		base := subsysNames[i%len(subsysNames)]
		dir := subsysDirs[i%len(subsysDirs)]
		name := base
		if i >= len(subsysNames) {
			name = fmt.Sprintf("%s%d", base, i/len(subsysNames)+1)
			dir = fmt.Sprintf("%s/%s", dir, name)
		}
		module := "vmlinux"
		if strings.HasPrefix(dir, "drivers/") {
			module = fmt.Sprintf("%s/%s.elf", dir, name)
		}
		g.subs = append(g.subs, subsystem{
			name:   name,
			dir:    dir,
			header: "include/linux/" + name + ".h",
			module: module,
		})
	}
}
