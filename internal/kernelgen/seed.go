package kernelgen

import (
	"fmt"
	"strings"
)

// seedFiles writes the handcrafted sources carrying the paper's named
// entities, so Figures 3-6 run verbatim against the generated kernel:
//
//   - drivers/acpi/wakeup.c, linked into module wakeup.elf, whose structs
//     carry fields named "id" (Figure 3's code search);
//   - drivers/scsi/sr.c with sr_media_change calling sr_do_ioctl (before
//     line 236) and get_sectorsize at exactly line 236 (the literal the
//     paper's Figure 5 query hardcodes), struct packet_command with field
//     cmd, and a write path reaching write_cmd;
//   - drivers/pci/probe.c with pci_read_bases atop a deep, diamond-rich
//     callee tree (Figure 6's transitive closure).
func (g *generator) seedFiles() {
	g.wakeupModule()
	g.scsiSr()
	g.pciProbe()
}

func (g *generator) wakeupModule() {
	g.addFile("include/linux/wakeup.h", `#ifndef _LINUX_WAKEUP_H
#define _LINUX_WAKEUP_H
#include <linux/types.h>
struct wakeup_source {
	u32 id;
	u32 event_count;
	char name[32];
};
struct wakeup_event {
	u32 id;
	u64 timestamp;
};
int wakeup_source_register(struct wakeup_source *ws);
int wakeup_report(struct wakeup_event *ev);
#endif
`)
	g.addFile("drivers/acpi/wakeup.c", `#include <linux/kernel.h>
#include <linux/wakeup.h>
static struct wakeup_source wakeup_sources[8];
static int wakeup_count;
int wakeup_source_register(struct wakeup_source *ws)
{
	if (ws == NULL)
		return -1;
	ws->id = (u32)wakeup_count;
	wakeup_sources[wakeup_count & 7] = *ws;
	wakeup_count++;
	return (int)ws->id;
}
int wakeup_report(struct wakeup_event *ev)
{
	if (ev == NULL)
		return -1;
	printk(KERN_INFO "wakeup event %d\n", (int)ev->id);
	return (int)ev->id;
}
`)
	g.addUnit("drivers/acpi/wakeup.c", "drivers/acpi/wakeup.elf")
}

// scsiSr writes drivers/scsi/sr.c, padding so that the get_sectorsize
// call lands exactly on line 236 — the literal in Figure 5.
func (g *generator) scsiSr() {
	g.addFile("drivers/scsi/sr.h", `#ifndef _SCSI_SR_H
#define _SCSI_SR_H
#include <linux/types.h>
struct packet_command {
	unsigned char cmd[12];
	int quiet : 1;
	int timeout;
	void *buffer;
};
int sr_media_change(int dev);
#endif
`)

	header := `#include <linux/kernel.h>
#include <linux/slab.h>
#include <linux/string.h>
#include "sr.h"

static int sr_status;

static void write_cmd(struct packet_command *cgc)
{
	cgc->cmd[0] = 0x25;
	cgc->timeout = 30;
}

static void late_write_cmd(struct packet_command *cgc)
{
	cgc->cmd[0] = 0x1b;
}

static int sr_do_ioctl(struct packet_command *cgc)
{
	if (cgc == NULL)
		return -1;
	write_cmd(cgc);
	sr_status = (int)cgc->cmd[0];
	return sr_status;
}

static int get_sectorsize(int dev)
{
	struct packet_command cgc;
	memset(&cgc, 0, sizeof(cgc));
	cgc.timeout = dev;
	return sr_do_ioctl(&cgc) + 2048;
}

static int sr_late_check(int dev)
{
	struct packet_command cgc;
	late_write_cmd(&cgc);
	return dev + (int)cgc.cmd[0];
}

int sr_media_change(int dev)
{
	struct packet_command cgc;
	int ret;
	memset(&cgc, 0, sizeof(cgc));
	ret = sr_do_ioctl(&cgc);
`
	lines := strings.Split(header, "\n")
	// lines currently holds everything up to (and including) the
	// sr_do_ioctl call; pad with comments so the next statement falls on
	// line 236.
	const targetLine = 236
	cur := len(lines) // next written line number is len(lines) (1-based: last element is "")
	var sb strings.Builder
	sb.WriteString(header)
	for i := cur; i < targetLine; i++ {
		sb.WriteString("\t/* rev history padding */\n")
	}
	sb.WriteString("\tret += get_sectorsize(dev);\n") // line 236
	sb.WriteString("\tret += sr_late_check(dev);\n")  // line 237: after 236, filtered out by Figure 5
	sb.WriteString("\treturn ret;\n}\n")
	g.addFile("drivers/scsi/sr.c", sb.String())
	g.addUnit("drivers/scsi/sr.c", "drivers/scsi/sr.elf")
}

// pciProbe builds pci_read_bases with a layered callee DAG. Parallel
// paths through the layers make Cypher's path-enumerating closure
// explode combinatorially while the embedded traversal stays linear —
// the paper's §6.1 contrast.
func (g *generator) pciProbe() {
	// 3^17 ≈ 129M distinct paths: Cypher's path-enumerating closure
	// cannot finish within any reasonable deadline (the paper aborted at
	// 15 minutes), while the embedded traversal visits just
	// layers*width+2 nodes.
	const layers = 17
	const width = 3
	var sb strings.Builder
	sb.WriteString("#include <linux/kernel.h>\n\n")
	// Bottom layer.
	for w := 0; w < width; w++ {
		fmt.Fprintf(&sb, "static int pci_l%d_n%d(int v)\n{\n\treturn v + %d;\n}\n\n", layers-1, w, w)
	}
	// Middle layers: each function calls every function one layer below.
	for l := layers - 2; l >= 0; l-- {
		for w := 0; w < width; w++ {
			fmt.Fprintf(&sb, "static int pci_l%d_n%d(int v)\n{\n\tint r = 0;\n", l, w)
			for t := 0; t < width; t++ {
				fmt.Fprintf(&sb, "\tr += pci_l%d_n%d(v + r);\n", l+1, t)
			}
			sb.WriteString("\treturn r;\n}\n\n")
		}
	}
	sb.WriteString("int pci_read_bases(int dev)\n{\n\tint r = 0;\n")
	for w := 0; w < width; w++ {
		fmt.Fprintf(&sb, "\tr += pci_l0_n%d(dev);\n", w)
	}
	sb.WriteString("\tif (r < 0)\n\t\tprintk(KERN_ERR \"pci: bad bases\\n\");\n")
	sb.WriteString("\treturn r;\n}\n")
	g.addFile("drivers/pci/probe.c", sb.String())
	g.addUnit("drivers/pci/probe.c", "vmlinux")
}
