package kernelgen

import (
	"context"
	"strings"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/model"
	"frappe/internal/query"
	"frappe/internal/traversal"
)

func TestDeterminism(t *testing.T) {
	a := Generate(Tiny())
	b := Generate(Tiny())
	if len(a.FS) != len(b.FS) {
		t.Fatalf("file counts differ: %d vs %d", len(a.FS), len(b.FS))
	}
	for p, src := range a.FS {
		if b.FS[p] != src {
			t.Fatalf("file %s differs between runs", p)
		}
	}
	if len(a.Build.Units) != len(b.Build.Units) || len(a.Build.Modules) != len(b.Build.Modules) {
		t.Fatal("build descriptions differ")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	c1 := Tiny()
	c2 := Tiny()
	c2.Seed = 99
	a, b := Generate(c1), Generate(c2)
	same := true
	for p, src := range a.FS {
		if b.FS[p] != src {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical output")
	}
}

func TestSrLine236(t *testing.T) {
	w := Generate(Tiny())
	src := w.FS["drivers/scsi/sr.c"]
	lines := strings.Split(src, "\n")
	if len(lines) < 237 {
		t.Fatalf("sr.c has %d lines", len(lines))
	}
	if got := strings.TrimSpace(lines[235]); got != "ret += get_sectorsize(dev);" {
		t.Fatalf("line 236 = %q", got)
	}
}

func TestExtractTinyCleanly(t *testing.T) {
	w := Generate(Tiny())
	res, err := w.Extract()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Errors {
		t.Errorf("extract error: %v", e)
	}
	m := graph.ComputeMetrics(res.Graph)
	if m.Nodes < 100 || m.Edges < 400 {
		t.Fatalf("tiny graph too small: %+v", m)
	}
	t.Logf("tiny kernel: %d lines, %d nodes, %d edges, density %.2f",
		w.LineCount(), m.Nodes, m.Edges, m.Density)
}

// TestPaperQueriesRunOnGeneratedKernel is the end-to-end check that the
// paper's Figures 3, 5 and 6 find their seed entities in the generated
// codebase.
func TestPaperQueriesRunOnGeneratedKernel(t *testing.T) {
	w := Generate(Tiny())
	res, err := w.Extract()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Errors {
		t.Fatalf("extract error: %v", e)
	}
	g := res.Graph
	ctx := context.Background()

	// Figure 3: fields named id inside module wakeup.elf.
	fig3, err := query.Run(ctx, g, `
START m=node:node_auto_index('short_name: wakeup.elf')
MATCH m -[:compiled_from|linked_from*]-> f
WITH distinct f
MATCH f -[:file_contains]-> (n:field{short_name: 'id'})
RETURN distinct n`)
	if err != nil {
		t.Fatalf("figure 3: %v", err)
	}
	// wakeup_source.id and wakeup_event.id live in include/linux/wakeup.h,
	// which is folded into wakeup.elf's only TU.
	if fig3.Count() != 2 {
		t.Fatalf("figure 3 results = %d, want 2", fig3.Count())
	}
	// Fields named id in other subsystems must exist but not match.
	all, err := query.Run(ctx, g, `MATCH (n:field{short_name: 'id'}) RETURN n`)
	if err != nil {
		t.Fatal(err)
	}
	if all.Count() <= fig3.Count() {
		t.Fatalf("id fields: %d total vs %d in module — search constraint has no effect", all.Count(), fig3.Count())
	}

	// Figure 5: the debugging query returns exactly write_cmd.
	fig5, err := query.Run(ctx, g, `
START from=node:node_auto_index('short_name: sr_media_change'),
      to=node:node_auto_index('short_name: get_sectorsize'),
      b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line`)
	if err != nil {
		t.Fatalf("figure 5: %v", err)
	}
	if fig5.Count() != 1 {
		t.Fatalf("figure 5 results = %d, want 1 (write_cmd only)", fig5.Count())
	}
	writer := fig5.Rows[0][0]
	if v, _ := g.NodeProp(writer.Node, model.PropShortName); v.AsString() != "write_cmd" {
		t.Fatalf("figure 5 writer = %s", v.AsString())
	}

	// Figure 6 (embedded form): closure of pci_read_bases covers the
	// whole generated DAG: 12 layers × 3 + printk's subtree.
	pci := graph.FindNode(g, model.PropShortName, "pci_read_bases")
	if pci == graph.InvalidID {
		t.Fatal("pci_read_bases missing")
	}
	closure := traversal.TransitiveClosure(g, pci, traversal.Options{
		Direction: traversal.Out,
		Types:     traversal.Types(model.EdgeCalls),
	})
	if len(closure) < 36 {
		t.Fatalf("pci closure = %d, want >= 36", len(closure))
	}
}

func TestDegreeShape(t *testing.T) {
	w := Generate(Tiny())
	res, err := w.Extract()
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	top := graph.TopDegreeNodes(g, 8)
	// The hubs must include the primitives/utilities the paper names
	// under Figure 7 (int with ~79K, NULL with ~19K degree in UEK).
	names := map[string]bool{}
	for _, h := range top {
		names[h.Name] = true
	}
	if !names["int"] {
		t.Errorf("int not a hub; top = %+v", top)
	}
	// Heavy tail: max degree far above the median.
	dist := graph.DegreeDistribution(g)
	maxDeg := dist[len(dist)-1].Degree
	if maxDeg < 50 {
		t.Errorf("max degree = %d, no heavy tail", maxDeg)
	}
}

func TestModulesAndVmlinux(t *testing.T) {
	w := Generate(Tiny())
	seen := map[string]bool{}
	for _, m := range w.Build.Modules {
		seen[m.Name] = true
	}
	if !seen["vmlinux"] || !seen["drivers/acpi/wakeup.elf"] || !seen["drivers/scsi/sr.elf"] {
		t.Fatalf("modules = %v", seen)
	}
	// Every unit's object appears in exactly one module.
	count := map[string]int{}
	for _, m := range w.Build.Modules {
		for _, o := range m.Objects {
			count[o]++
		}
	}
	for _, u := range w.Build.Units {
		if count[u.Object] != 1 {
			t.Fatalf("object %s in %d modules", u.Object, count[u.Object])
		}
	}
}

func TestScaledGrows(t *testing.T) {
	small := Generate(Tiny())
	cfg := Tiny()
	cfg.Subsystems *= 3
	big := Generate(cfg)
	if big.LineCount() <= small.LineCount() {
		t.Fatalf("scaling did not grow the tree: %d vs %d", big.LineCount(), small.LineCount())
	}
}
