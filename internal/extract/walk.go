package extract

import (
	"frappe/internal/cparse"
	"frappe/internal/cpp"
	"frappe/internal/graph"
	"frappe/internal/model"
)

// category classifies what a name resolved to.
type category int

const (
	catNone category = iota
	catVar           // global, local, static_local or parameter
	catFunc
	catEnumerator
	catDecl // function_decl or global_decl (no definition in scope)
)

// refCtx describes how an expression position uses its operand.
type refCtx uint8

const (
	ctxRead refCtx = iota
	ctxWrite
	ctxReadWrite
	ctxAddr
	ctxDeref
)

// walker walks one function body (or one global initialiser), emitting
// reference edges from src.
type walker struct {
	ex     *extractor
	tu     *tuData
	src    graph.NodeID
	fnName string
	scopes []map[string]*symInfo
}

// walkUnit is extraction phase two for one TU.
func (ex *extractor) walkUnit(tu *tuData) {
	for _, og := range tu.ownedGlobals {
		w := &walker{ex: ex, tu: tu, src: og.info.node}
		if og.decl.Init != nil {
			w.walkInit(og.decl.Type, og.decl.Init)
		}
	}
	for _, of := range tu.ownedFuncs {
		w := &walker{ex: ex, tu: tu, src: of.info.node, fnName: of.decl.Name.Text}
		w.push()
		for name, sym := range of.params {
			w.scopes[len(w.scopes)-1][name] = sym
		}
		w.walkStmt(of.decl.Body)
		w.pop()
	}
	ex.walkMacroRecords(tu)
}

// walkMacroRecords emits expands_macro and interrogates_macro edges,
// attributed to the enclosing function when the use site falls inside a
// function body, else to the containing file. Records are deduplicated
// globally by position (the same header expansion is seen by every TU
// including it).
func (ex *extractor) walkMacroRecords(tu *tuData) {
	if ex.seenMacroUse == nil {
		ex.seenMacroUse = map[macroUseKey]bool{}
	}
	emit := func(name string, use cpp.Range, et model.EdgeType) {
		target, ok := ex.macros[name]
		if !ok {
			return // undefined macro interrogation: no node to point at
		}
		key := macroUseKey{name: name, file: use.Start.File, line: use.Start.Line, col: use.Start.Col, et: et}
		if ex.seenMacroUse[key] {
			return
		}
		ex.seenMacroUse[key] = true
		src, found := ex.enclosingFunc(use.Start)
		if !found {
			src = ex.ensureFileNode(use.Start.File)
		}
		ex.g.AddEdge(src, target, et, refProps(use, use))
	}
	for _, e := range tu.pp.Expansions {
		emit(e.Macro, e.Use, model.EdgeExpandsMacro)
	}
	for _, r := range tu.pp.Interrogations {
		emit(r.Macro, r.Use, model.EdgeInterrogatesMacro)
	}
}

type macroUseKey struct {
	name string
	file cpp.FileID
	line int32
	col  int32
	et   model.EdgeType
}

func (w *walker) push() { w.scopes = append(w.scopes, map[string]*symInfo{}) }
func (w *walker) pop()  { w.scopes = w.scopes[:len(w.scopes)-1] }

// resolve looks a name up through block scopes, file statics, program
// globals, enumerators and finally external declarations visible in this
// TU.
func (w *walker) resolve(name string) (*symInfo, category) {
	for i := len(w.scopes) - 1; i >= 0; i-- {
		if s, ok := w.scopes[i][name]; ok {
			return s, catVar
		}
	}
	if s, ok := w.tu.statics[name]; ok {
		if s.typ != nil && s.typ.Kind == cparse.TFunc {
			return s, catFunc
		}
		return s, catVar
	}
	if s, ok := w.ex.funcs[name]; ok {
		w.noteExtern(name)
		return s, catFunc
	}
	if s, ok := w.ex.globals[name]; ok {
		w.noteExtern(name)
		return s, catVar
	}
	if s, ok := w.ex.enumerators[name]; ok {
		return s, catEnumerator
	}
	if n, ok := w.tu.declByName[name]; ok {
		w.tu.referencedExterns[name] = n
		return &symInfo{node: n, typ: w.tu.declTypes[name]}, catDecl
	}
	return nil, catNone
}

// noteExtern records that this TU references an external symbol it does
// not itself define — the object file's undefined-symbol table, which
// link_declares/link_matches edges are built from. Even though the
// extractor cross-links the reference straight to the definition, the
// linker-level view still lists the symbol as undefined for this object.
func (w *walker) noteExtern(name string) {
	if w.tu.definedNames[name] {
		return
	}
	if decl, ok := w.tu.declByName[name]; ok {
		w.tu.referencedExterns[name] = decl
	}
}

// ref emits a reference edge from the walker's source.
func (w *walker) ref(et model.EdgeType, to graph.NodeID, use cpp.Range, name cpp.Range) {
	w.ex.g.AddEdge(w.src, to, et, refProps(use, name))
}

// --- statements ---

func (w *walker) walkStmt(s cparse.Stmt) {
	switch t := s.(type) {
	case nil:
	case *cparse.BlockStmt:
		w.push()
		for _, it := range t.Items {
			w.walkStmt(it)
		}
		w.pop()
	case *cparse.DeclStmt:
		for _, d := range t.Decls {
			w.walkLocalDecl(d)
		}
	case *cparse.ExprStmt:
		if t.X != nil {
			w.walkExpr(t.X, ctxRead)
		}
	case *cparse.IfStmt:
		w.walkExpr(t.Cond, ctxRead)
		w.walkStmt(t.Then)
		w.walkStmt(t.Else)
	case *cparse.WhileStmt:
		w.walkExpr(t.Cond, ctxRead)
		w.walkStmt(t.Body)
	case *cparse.ForStmt:
		w.push()
		w.walkStmt(t.Init)
		if t.Cond != nil {
			w.walkExpr(t.Cond, ctxRead)
		}
		if t.Post != nil {
			w.walkExpr(t.Post, ctxRead)
		}
		w.walkStmt(t.Body)
		w.pop()
	case *cparse.SwitchStmt:
		w.walkExpr(t.Tag, ctxRead)
		w.walkStmt(t.Body)
	case *cparse.CaseStmt:
		if t.Value != nil {
			w.walkExpr(t.Value, ctxRead)
		}
	case *cparse.ReturnStmt:
		if t.X != nil {
			w.walkExpr(t.X, ctxRead)
		}
	case *cparse.LabelStmt:
		w.walkStmt(t.Stmt)
	case *cparse.BranchStmt:
		// no references
	}
}

// walkLocalDecl creates local/static_local nodes and walks initialisers.
func (w *walker) walkLocalDecl(d cparse.Decl) {
	vd, ok := d.(*cparse.VarDecl)
	if !ok {
		return // block-level typedefs/prototypes: already registered types
	}
	name := vd.Name.Text
	typ := model.NodeLocal
	if vd.Static {
		typ = model.NodeStaticLocal
	}
	qual := name
	if w.fnName != "" {
		qual = w.fnName + "::" + name
	}
	n := w.ex.g.AddNode(typ, graph.P(
		model.PropShortName, name,
		model.PropName, qual,
	))
	w.ex.g.AddEdge(w.src, n, model.EdgeHasLocal, nil)
	w.ex.isaTypeEdge(n, vd.Type, -1)
	w.scopes[len(w.scopes)-1][name] = &symInfo{node: n, typ: vd.Type}
	if vd.Init != nil {
		w.walkInit(vd.Type, vd.Init)
	}
}

// walkInit walks an initialiser of declared type t, resolving designated
// (and positional) initialisers of records to writes_member edges.
func (w *walker) walkInit(t *cparse.Type, init cparse.Expr) {
	il, ok := init.(*cparse.InitList)
	if !ok {
		w.walkExpr(init, ctxRead)
		return
	}
	rt := w.ex.resolveType(t)
	if rt != nil && rt.Kind == cparse.TArray {
		for _, item := range il.Items {
			w.walkInit(rt.Elem, item.Value)
		}
		return
	}
	ri := w.ex.recordOf(t, false)
	if ri == nil {
		for _, item := range il.Items {
			w.walkInit(nil, item.Value)
		}
		return
	}
	pos := 0
	for _, item := range il.Items {
		var fi *fieldInfo
		if item.Designator.Kind == cpp.TokIdent {
			fi = w.ex.lookupField(ri, item.Designator.Text)
			// Re-anchor positional progress at the designated field.
			for i, fname := range ri.order {
				if fname == item.Designator.Text {
					pos = i + 1
					break
				}
			}
			if fi != nil {
				use := cpp.Range{Start: item.Designator.Pos, End: item.Value.Span().End}
				nameR := cpp.Range{Start: item.Designator.Pos, End: item.Designator.End()}
				w.ref(model.EdgeWritesMember, fi.node, use, nameR)
			}
		} else {
			// Positional: advance through named fields.
			for pos < len(ri.order) && ri.order[pos] == "" {
				pos++
			}
			if pos < len(ri.order) {
				fi = ri.fields[ri.order[pos]]
				pos++
			}
		}
		var ft *cparse.Type
		if fi != nil {
			ft = fi.typ
		}
		w.walkInit(ft, item.Value)
	}
}

// --- expressions ---

func (w *walker) walkExpr(e cparse.Expr, ctx refCtx) {
	switch t := e.(type) {
	case nil:
	case *cparse.Ident:
		w.walkIdent(t, ctx, t.Span())
	case *cparse.IntLit, *cparse.StrLit, *cparse.CharLit:
	case *cparse.CallExpr:
		w.walkCall(t)
	case *cparse.MemberExpr:
		w.walkMember(t, ctx)
	case *cparse.IndexExpr:
		w.walkExpr(t.Base, ctx)
		w.walkExpr(t.Idx, ctxRead)
	case *cparse.UnaryExpr:
		switch t.Op {
		case "&":
			w.walkExpr(t.X, ctxAddr)
		case "*":
			w.walkExpr(t.X, ctxDeref)
		case "++", "--":
			w.walkExpr(t.X, ctxReadWrite)
		default:
			w.walkExpr(t.X, ctxRead)
		}
	case *cparse.BinaryExpr:
		w.walkExpr(t.L, ctxRead)
		w.walkExpr(t.R, ctxRead)
	case *cparse.AssignExpr:
		if t.Op == "=" {
			w.walkExpr(t.L, ctxWrite)
		} else {
			w.walkExpr(t.L, ctxReadWrite)
		}
		w.walkExpr(t.R, ctxRead)
	case *cparse.CondExpr:
		w.walkExpr(t.C, ctxRead)
		w.walkExpr(t.T, ctxRead)
		w.walkExpr(t.F, ctxRead)
	case *cparse.CastExpr:
		w.ex.g.AddEdge(w.src, w.ex.typeNodeOf(t.Type), model.EdgeCastsTo, refProps(t.Span(), t.Span()))
		if il, ok := t.X.(*cparse.InitList); ok {
			w.walkInit(t.Type, il)
		} else {
			w.walkExpr(t.X, ctxRead)
		}
	case *cparse.SizeofExpr:
		et := model.EdgeGetsSizeOf
		if t.AlignOf {
			et = model.EdgeGetsAlignOf
		}
		typ := t.Type
		if typ == nil && t.X != nil {
			typ = w.inferType(t.X)
			// The operand of sizeof is not evaluated: no reference edges
			// for its subexpressions.
		}
		if typ != nil {
			w.ex.g.AddEdge(w.src, w.ex.typeNodeOf(typ), et, refProps(t.Span(), t.Span()))
		}
	case *cparse.CommaExpr:
		w.walkExpr(t.L, ctxRead)
		w.walkExpr(t.R, ctxRead)
	case *cparse.StmtExpr:
		w.walkStmt(t.Block)
	case *cparse.InitList:
		w.walkInit(nil, t)
	}
}

// walkIdent emits the edge for a resolved name use.
func (w *walker) walkIdent(id *cparse.Ident, ctx refCtx, use cpp.Range) {
	sym, cat := w.resolve(id.Tok.Text)
	if sym == nil {
		return
	}
	nameR := id.Span()
	switch cat {
	case catEnumerator:
		w.ref(model.EdgeUsesEnumerator, sym.node, use, nameR)
	case catFunc:
		// A function name outside a call decays to a pointer.
		w.ref(model.EdgeTakesAddressOf, sym.node, use, nameR)
	case catDecl:
		nt := w.ex.g.NodeType(sym.node)
		if nt == model.NodeFunctionDecl {
			w.ref(model.EdgeTakesAddressOf, sym.node, use, nameR)
			return
		}
		w.emitVarRef(sym.node, ctx, use, nameR)
	default:
		w.emitVarRef(sym.node, ctx, use, nameR)
	}
}

func (w *walker) emitVarRef(to graph.NodeID, ctx refCtx, use cpp.Range, name cpp.Range) {
	switch ctx {
	case ctxRead:
		w.ref(model.EdgeReads, to, use, name)
	case ctxWrite:
		w.ref(model.EdgeWrites, to, use, name)
	case ctxReadWrite:
		w.ref(model.EdgeReads, to, use, name)
		w.ref(model.EdgeWrites, to, use, name)
	case ctxAddr:
		w.ref(model.EdgeTakesAddressOf, to, use, name)
	case ctxDeref:
		w.ref(model.EdgeDereferences, to, use, name)
	}
}

func (w *walker) walkCall(c *cparse.CallExpr) {
	if id, ok := c.Fun.(*cparse.Ident); ok {
		sym, cat := w.resolve(id.Tok.Text)
		switch {
		case sym == nil:
			// Unresolved callee (e.g. a compiler builtin): no edge.
		case cat == catFunc:
			w.ref(model.EdgeCalls, sym.node, c.Span(), id.Span())
		case cat == catDecl && w.ex.g.NodeType(sym.node) == model.NodeFunctionDecl:
			w.ref(model.EdgeCalls, sym.node, c.Span(), id.Span())
		default:
			// Calling through a variable (function pointer): the pointer
			// value is read.
			w.emitVarRef(sym.node, ctxRead, c.Span(), id.Span())
		}
	} else {
		w.walkExpr(c.Fun, ctxRead)
	}
	for _, a := range c.Args {
		w.walkExpr(a, ctxRead)
	}
}

// walkMember resolves base.field / base->field to the field node.
func (w *walker) walkMember(m *cparse.MemberExpr, ctx refCtx) {
	baseT := w.inferType(m.Base)
	ri := w.ex.recordOf(baseT, m.Arrow)
	if ri != nil {
		if fi := w.ex.lookupField(ri, m.Name.Text); fi != nil {
			use := m.Span()
			nameR := cpp.Range{Start: m.Name.Pos, End: m.Name.End()}
			switch ctx {
			case ctxRead:
				w.ref(model.EdgeReadsMember, fi.node, use, nameR)
			case ctxWrite:
				w.ref(model.EdgeWritesMember, fi.node, use, nameR)
			case ctxReadWrite:
				w.ref(model.EdgeReadsMember, fi.node, use, nameR)
				w.ref(model.EdgeWritesMember, fi.node, use, nameR)
			case ctxAddr:
				w.ref(model.EdgeTakesAddressOfMember, fi.node, use, nameR)
			case ctxDeref:
				w.ref(model.EdgeDereferencesMember, fi.node, use, nameR)
			}
		}
	}
	// The base expression: an arrow access reads the pointer; a dot
	// access propagates writes into the containing object.
	if m.Arrow {
		w.walkExpr(m.Base, ctxRead)
		return
	}
	switch ctx {
	case ctxWrite, ctxReadWrite:
		w.walkExpr(m.Base, ctx)
	default:
		w.walkExpr(m.Base, ctxRead)
	}
}

// --- type inference ---

// resolveType follows typedef chains to a concrete type.
func (ex *extractor) resolveType(t *cparse.Type) *cparse.Type {
	for depth := 0; t != nil && t.Kind == cparse.TTypedef && depth < 32; depth++ {
		ti, ok := ex.typedefs[t.Name]
		if !ok {
			return t
		}
		t = ti.typ
	}
	return t
}

// recordOf resolves a (possibly typedef'd, possibly pointer) type to its
// record info; deref strips one pointer/array level first (-> access).
func (ex *extractor) recordOf(t *cparse.Type, deref bool) *recordInfo {
	rt := ex.resolveType(t)
	if rt == nil {
		return nil
	}
	if deref {
		if rt.Kind != cparse.TPointer && rt.Kind != cparse.TArray {
			return nil
		}
		rt = ex.resolveType(rt.Elem)
		if rt == nil {
			return nil
		}
	}
	switch rt.Kind {
	case cparse.TStruct, cparse.TUnion:
		return ex.records[rt.Name]
	}
	return nil
}

// lookupField finds a named field, descending into anonymous members.
func (ex *extractor) lookupField(ri *recordInfo, name string) *fieldInfo {
	if fi, ok := ri.fields[name]; ok {
		return fi
	}
	for _, at := range ri.anon {
		if sub := ex.recordOf(at, false); sub != nil {
			if fi := ex.lookupField(sub, name); fi != nil {
				return fi
			}
		}
	}
	return nil
}

var intType = &cparse.Type{Kind: cparse.TPrimitive, Name: "int"}
var charType = &cparse.Type{Kind: cparse.TPrimitive, Name: "char"}
var ulongType = &cparse.Type{Kind: cparse.TPrimitive, Name: "unsigned long"}

// inferType computes the semantic type of an expression, sufficient for
// member resolution (not a full C type checker: integer promotions and
// usual arithmetic conversions are approximated).
func (w *walker) inferType(e cparse.Expr) *cparse.Type {
	switch t := e.(type) {
	case *cparse.Ident:
		if sym, _ := w.resolve(t.Tok.Text); sym != nil {
			return sym.typ
		}
		return nil
	case *cparse.IntLit:
		return intType
	case *cparse.CharLit:
		return charType
	case *cparse.StrLit:
		return &cparse.Type{Kind: cparse.TPointer, Elem: charType}
	case *cparse.MemberExpr:
		ri := w.ex.recordOf(w.inferType(t.Base), t.Arrow)
		if ri == nil {
			return nil
		}
		if fi := w.ex.lookupField(ri, t.Name.Text); fi != nil {
			return fi.typ
		}
		return nil
	case *cparse.IndexExpr:
		bt := w.ex.resolveType(w.inferType(t.Base))
		if bt != nil && (bt.Kind == cparse.TPointer || bt.Kind == cparse.TArray) {
			return bt.Elem
		}
		return nil
	case *cparse.UnaryExpr:
		switch t.Op {
		case "*":
			xt := w.ex.resolveType(w.inferType(t.X))
			if xt != nil && (xt.Kind == cparse.TPointer || xt.Kind == cparse.TArray) {
				return xt.Elem
			}
			return nil
		case "&":
			xt := w.inferType(t.X)
			if xt == nil {
				return nil
			}
			return &cparse.Type{Kind: cparse.TPointer, Elem: xt}
		case "!":
			return intType
		default:
			return w.inferType(t.X)
		}
	case *cparse.CallExpr:
		ft := w.ex.resolveType(w.inferType(t.Fun))
		if ft == nil {
			return nil
		}
		if ft.Kind == cparse.TPointer {
			ft = w.ex.resolveType(ft.Elem)
		}
		if ft != nil && ft.Kind == cparse.TFunc {
			return ft.Ret
		}
		return nil
	case *cparse.BinaryExpr:
		switch t.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return intType
		}
		// Pointer arithmetic keeps the pointer type.
		lt := w.ex.resolveType(w.inferType(t.L))
		if lt != nil && (lt.Kind == cparse.TPointer || lt.Kind == cparse.TArray) {
			return lt
		}
		rt := w.ex.resolveType(w.inferType(t.R))
		if rt != nil && (rt.Kind == cparse.TPointer || rt.Kind == cparse.TArray) {
			return rt
		}
		if lt != nil {
			return lt
		}
		return rt
	case *cparse.AssignExpr:
		return w.inferType(t.L)
	case *cparse.CondExpr:
		if tt := w.inferType(t.T); tt != nil {
			return tt
		}
		return w.inferType(t.F)
	case *cparse.CastExpr:
		return t.Type
	case *cparse.SizeofExpr:
		return ulongType
	case *cparse.CommaExpr:
		return w.inferType(t.R)
	case *cparse.StmtExpr:
		// The value of a statement expression is its last expression
		// statement.
		if t.Block != nil && len(t.Block.Items) > 0 {
			if es, ok := t.Block.Items[len(t.Block.Items)-1].(*cparse.ExprStmt); ok && es.X != nil {
				return w.inferType(es.X)
			}
		}
		return nil
	}
	return nil
}
