package extract

import (
	"path"

	"frappe/internal/graph"
	"frappe/internal/model"
)

// link is extraction phase three: model the build's compile and link
// steps as graph structure, exactly as Figure 2 of the paper shows for
// the foo.c/main.c example:
//
//	object -compiled_from-> source file (and every header folded into the
//	                        translation unit, so Figure 3's
//	                        module-[:compiled_from|linked_from*]->file
//	                        closure reaches header-defined entities too)
//	module -linked_from-> object          (property LINK_ORDER)
//	module -linked_from_lib-> library
//	object -link_declares-> declaration   (the object's undefined symbols)
//	declaration -link_matches-> definition (resolved at link time)
func (ex *extractor) link(modules []Module) {
	for _, tu := range ex.tus {
		obj := ex.ensureObjNode(tu.unit.Object)
		tu.objNode = obj
		// compiled_from: the root source plus every distinct included file.
		ex.g.AddEdge(obj, ex.ensureFileNode(tu.rootFile), model.EdgeCompiledFrom, nil)
		seen := map[graph.NodeID]bool{}
		for _, inc := range tu.pp.Includes {
			fn := ex.ensureFileNode(inc.To)
			if seen[fn] {
				continue
			}
			seen[fn] = true
			ex.g.AddEdge(obj, fn, model.EdgeCompiledFrom, nil)
		}
		// Sorted-name order keeps the edge stream — and so the persisted
		// store — identical from run to run.
		for _, name := range sortedNames(tu.referencedExterns) {
			ex.g.AddEdge(obj, tu.referencedExterns[name], model.EdgeLinkDeclares, nil)
		}
	}

	objTU := map[string]*tuData{}
	for _, tu := range ex.tus {
		objTU[tu.unit.Object] = tu
	}

	matched := map[[2]graph.NodeID]bool{}
	for _, m := range modules {
		mn := ex.g.AddNode(model.NodeModule, graph.P(
			model.PropShortName, path.Base(m.Name),
			model.PropName, m.Name,
		))
		for i, o := range m.Objects {
			ex.g.AddEdge(mn, ex.ensureObjNode(o), model.EdgeLinkedFrom, graph.P(model.PropLinkOrder, i))
		}
		for _, lib := range m.Libs {
			ex.g.AddEdge(mn, ex.ensureLibNode(lib), model.EdgeLinkedFromLib, nil)
		}
		// Resolve each member object's undefined symbols against the
		// program's definitions (as the real linker does for this link).
		for _, o := range m.Objects {
			tu := objTU[o]
			if tu == nil {
				continue
			}
			for _, name := range sortedNames(tu.referencedExterns) {
				decl := tu.referencedExterns[name]
				var def *symInfo
				if d, ok := ex.funcs[name]; ok {
					def = d
				} else if d, ok := ex.globals[name]; ok {
					def = d
				}
				if def == nil {
					continue
				}
				key := [2]graph.NodeID{decl, def.node}
				if matched[key] {
					continue
				}
				matched[key] = true
				ex.g.AddEdge(decl, def.node, model.EdgeLinkMatches, nil)
			}
		}
	}
}

func (ex *extractor) ensureObjNode(p string) graph.NodeID {
	if n, ok := ex.objNodes[p]; ok {
		return n
	}
	n := ex.g.AddNode(model.NodeObjectFile, graph.P(
		model.PropShortName, path.Base(p),
		model.PropName, p,
	))
	ex.objNodes[p] = n
	return n
}

func (ex *extractor) ensureLibNode(p string) graph.NodeID {
	if n, ok := ex.libNodes[p]; ok {
		return n
	}
	n := ex.g.AddNode(model.NodeLibrary, graph.P(
		model.PropShortName, path.Base(p),
		model.PropName, p,
	))
	ex.libNodes[p] = n
	return n
}
