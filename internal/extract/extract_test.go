package extract

import (
	"strings"
	"testing"

	"frappe/internal/cpp"
	"frappe/internal/graph"
	"frappe/internal/model"
)

// runExtract runs the full pipeline over an in-memory tree.
func runExtract(t *testing.T, fs cpp.MapFS, build Build, opts ...func(*Options)) *Result {
	t.Helper()
	o := Options{FS: fs}
	for _, f := range opts {
		f(&o)
	}
	res, err := Run(build, o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, e := range res.Errors {
		t.Errorf("extract error: %v", e)
	}
	return res
}

// findNode locates a node by type and SHORT_NAME; fails if absent.
func findNode(t *testing.T, g *graph.Graph, typ model.NodeType, short string) graph.NodeID {
	t.Helper()
	n := g.NodeCount()
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		if g.NodeType(id) != typ {
			continue
		}
		if v, _ := g.NodeProp(id, model.PropShortName); v.AsString() == short {
			return id
		}
	}
	t.Fatalf("no %s node named %q", typ, short)
	return graph.InvalidID
}

// hasEdge reports whether from -type-> to exists.
func hasEdge(g *graph.Graph, from, to graph.NodeID, typ model.EdgeType) bool {
	for _, e := range g.Out(from) {
		f, tt, et := g.EdgeEnds(e)
		_ = f
		if tt == to && et == typ {
			return true
		}
	}
	return false
}

func edgeBetween(g *graph.Graph, from, to graph.NodeID, typ model.EdgeType) (graph.EdgeID, bool) {
	for _, e := range g.Out(from) {
		_, tt, et := g.EdgeEnds(e)
		if tt == to && et == typ {
			return e, true
		}
	}
	return 0, false
}

// figure2FS reproduces the paper's Figure 2 example program.
func figure2FS() cpp.MapFS {
	return cpp.MapFS{
		"foo.h":  "int bar(int);\n",
		"foo.c":  "#include \"foo.h\"\nint bar(int input) {\n\treturn input;\n}\n",
		"main.c": "#include \"foo.h\"\nint main(int argc, char **argv) {\n\treturn bar(argc);\n}\n",
	}
}

func figure2Build() Build {
	return Build{
		Units: []CompileUnit{
			{Source: "foo.c", Object: "foo.o"},
			{Source: "main.c", Object: "main.o"},
		},
		Modules: []Module{
			{Name: "prog", Objects: []string{"main.o", "foo.o"}},
		},
	}
}

// TestFigure2ExampleGraph checks the worked example of the paper: the
// node set and the key edges of the foo.c/main.c/prog dependency graph.
func TestFigure2ExampleGraph(t *testing.T) {
	res := runExtract(t, figure2FS(), figure2Build())
	g := res.Graph

	prog := findNode(t, g, model.NodeModule, "prog")
	fooO := findNode(t, g, model.NodeObjectFile, "foo.o")
	mainO := findNode(t, g, model.NodeObjectFile, "main.o")
	fooC := findNode(t, g, model.NodeFile, "foo.c")
	fooH := findNode(t, g, model.NodeFile, "foo.h")
	mainC := findNode(t, g, model.NodeFile, "main.c")
	mainFn := findNode(t, g, model.NodeFunction, "main")
	barFn := findNode(t, g, model.NodeFunction, "bar")
	barDecl := findNode(t, g, model.NodeFunctionDecl, "bar")
	argv := findNode(t, g, model.NodeParameter, "argv")
	argc := findNode(t, g, model.NodeParameter, "argc")
	input := findNode(t, g, model.NodeParameter, "input")
	charT := findNode(t, g, model.NodePrimitive, "char")
	intT := findNode(t, g, model.NodePrimitive, "int")

	// Build structure.
	if !hasEdge(g, prog, fooO, model.EdgeLinkedFrom) || !hasEdge(g, prog, mainO, model.EdgeLinkedFrom) {
		t.Error("prog missing linked_from edges")
	}
	if e, ok := edgeBetween(g, prog, mainO, model.EdgeLinkedFrom); ok {
		if v, _ := g.EdgeProp(e, model.PropLinkOrder); v.AsInt() != 0 {
			t.Errorf("main.o link order = %v", v)
		}
	}
	if !hasEdge(g, fooO, fooC, model.EdgeCompiledFrom) || !hasEdge(g, mainO, mainC, model.EdgeCompiledFrom) {
		t.Error("compiled_from missing")
	}
	if !hasEdge(g, fooO, fooH, model.EdgeCompiledFrom) {
		t.Error("compiled_from should reach headers folded into the TU")
	}
	if !hasEdge(g, fooC, fooH, model.EdgeIncludes) || !hasEdge(g, mainC, fooH, model.EdgeIncludes) {
		t.Error("includes missing")
	}

	// Containment.
	if !hasEdge(g, mainC, mainFn, model.EdgeFileContains) {
		t.Error("main.c file_contains main missing")
	}
	if !hasEdge(g, fooC, barFn, model.EdgeFileContains) {
		t.Error("foo.c file_contains bar missing")
	}
	if !hasEdge(g, fooH, barDecl, model.EdgeFileContains) {
		t.Error("foo.h file_contains bar decl missing")
	}

	// Cross-linked call: main calls the *definition* of bar.
	if !hasEdge(g, mainFn, barFn, model.EdgeCalls) {
		t.Error("main -calls-> bar (definition) missing")
	}
	// Declaration wiring.
	if !hasEdge(g, barDecl, barFn, model.EdgeDeclares) {
		t.Error("bar decl -declares-> bar missing")
	}

	// Parameters and types: argv isa_type char with QUALIFIER **.
	if !hasEdge(g, mainFn, argv, model.EdgeHasParam) || !hasEdge(g, mainFn, argc, model.EdgeHasParam) {
		t.Error("has_param missing")
	}
	if !hasEdge(g, barFn, input, model.EdgeHasParam) {
		t.Error("bar has_param input missing")
	}
	e, ok := edgeBetween(g, argv, charT, model.EdgeIsaType)
	if !ok {
		t.Fatal("argv isa_type char missing")
	}
	if v, _ := g.EdgeProp(e, model.PropQualifiers); v.AsString() != "**" {
		t.Errorf("argv QUALIFIERS = %q, want \"**\"", v.AsString())
	}
	if !hasEdge(g, argc, intT, model.EdgeIsaType) {
		t.Error("argc isa_type int missing")
	}
	// main reads its argc parameter when calling bar(argc).
	if !hasEdge(g, mainFn, argc, model.EdgeReads) {
		t.Error("main reads argc missing")
	}
	// Return types.
	if !hasEdge(g, mainFn, intT, model.EdgeHasRetType) || !hasEdge(g, barFn, intT, model.EdgeHasRetType) {
		t.Error("has_ret_type missing")
	}
	// bar reads its parameter.
	if !hasEdge(g, barFn, input, model.EdgeReads) {
		t.Error("bar reads input missing")
	}
}

func TestCallEdgeSourceRanges(t *testing.T) {
	res := runExtract(t, figure2FS(), figure2Build())
	g := res.Graph
	mainFn := findNode(t, g, model.NodeFunction, "main")
	barFn := findNode(t, g, model.NodeFunction, "bar")
	e, ok := edgeBetween(g, mainFn, barFn, model.EdgeCalls)
	if !ok {
		t.Fatal("no call edge")
	}
	use, _ := g.EdgeProp(e, model.PropUseStartLine)
	if use.AsInt() != 3 {
		t.Errorf("USE_START_LINE = %d, want 3", use.AsInt())
	}
	nameCol, _ := g.EdgeProp(e, model.PropNameStartCol)
	if nameCol.AsInt() != 9 { // "\treturn bar(argc);" — bar at col 9
		t.Errorf("NAME_START_COL = %d, want 9", nameCol.AsInt())
	}
	fid, _ := g.EdgeProp(e, model.PropUseFileID)
	if res.Files.Path(cpp.FileID(fid.AsInt())) != "main.c" {
		t.Errorf("USE_FILE_ID resolves to %q", res.Files.Path(cpp.FileID(fid.AsInt())))
	}
}

func TestMembersAndWrites(t *testing.T) {
	fs := cpp.MapFS{
		"dev.h": `
struct packet_command {
	unsigned char cmd[12];
	int timeout;
};
typedef struct packet_command pc_t;
`,
		"sr.c": `
#include "dev.h"
static struct packet_command global_pc;
void fill(struct packet_command *pc, int t) {
	pc->timeout = t;
	pc->timeout += 1;
	global_pc.timeout = pc->timeout;
}
int peek(pc_t *p) { return p->timeout; }
`,
	}
	build := Build{Units: []CompileUnit{{Source: "sr.c", Object: "sr.o"}},
		Modules: []Module{{Name: "sr.ko", Objects: []string{"sr.o"}}}}
	res := runExtract(t, fs, build)
	g := res.Graph

	pkt := findNode(t, g, model.NodeStruct, "packet_command")
	timeout := findNode(t, g, model.NodeField, "timeout")
	cmd := findNode(t, g, model.NodeField, "cmd")
	fill := findNode(t, g, model.NodeFunction, "fill")
	peek := findNode(t, g, model.NodeFunction, "peek")
	gpc := findNode(t, g, model.NodeGlobal, "global_pc")

	if !hasEdge(g, pkt, timeout, model.EdgeContains) || !hasEdge(g, pkt, cmd, model.EdgeContains) {
		t.Error("struct contains fields missing")
	}
	if !hasEdge(g, fill, timeout, model.EdgeWritesMember) {
		t.Error("fill writes_member timeout missing")
	}
	if !hasEdge(g, fill, timeout, model.EdgeReadsMember) {
		t.Error("fill reads_member timeout (compound assign / rhs) missing")
	}
	// Through a typedef'd pointer.
	if !hasEdge(g, peek, timeout, model.EdgeReadsMember) {
		t.Error("peek reads_member through typedef missing")
	}
	// Writing a member of a global struct writes into the global (dot
	// access) and the member.
	if !hasEdge(g, fill, gpc, model.EdgeWrites) {
		t.Error("fill writes global_pc missing")
	}
	// cmd field type: array of unsigned char with ARRAY_LENGTHS 12.
	uchar := findNode(t, g, model.NodePrimitive, "unsigned char")
	e, ok := edgeBetween(g, cmd, uchar, model.EdgeIsaType)
	if !ok {
		t.Fatal("cmd isa_type missing")
	}
	if v, _ := g.EdgeProp(e, model.PropArrayLengths); v.AsString() != "12" {
		t.Errorf("ARRAY_LENGTHS = %q", v.AsString())
	}
}

func TestMacroEdges(t *testing.T) {
	fs := cpp.MapFS{
		"cfg.h": "#define MAX_SECTORS 255\n#define CHECK(x) ((x) > MAX_SECTORS)\n",
		"a.c": `
#include "cfg.h"
#ifdef MAX_SECTORS
int limit = MAX_SECTORS;
#endif
int clamp(int v) {
	if (CHECK(v)) return MAX_SECTORS;
	return v;
}
`,
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{{Source: "a.c", Object: "a.o"}}})
	g := res.Graph
	maxS := findNode(t, g, model.NodeMacro, "MAX_SECTORS")
	check := findNode(t, g, model.NodeMacro, "CHECK")
	clamp := findNode(t, g, model.NodeFunction, "clamp")
	aC := findNode(t, g, model.NodeFile, "a.c")

	if !hasEdge(g, clamp, maxS, model.EdgeExpandsMacro) {
		t.Error("clamp expands_macro MAX_SECTORS missing")
	}
	if !hasEdge(g, clamp, check, model.EdgeExpandsMacro) {
		t.Error("clamp expands_macro CHECK missing")
	}
	// File-scope expansion attributes to the file.
	if !hasEdge(g, aC, maxS, model.EdgeExpandsMacro) {
		t.Error("file-scope expansion missing")
	}
	// #ifdef interrogation attributes to the file.
	if !hasEdge(g, aC, maxS, model.EdgeInterrogatesMacro) {
		t.Error("interrogates_macro missing")
	}
}

func TestEnumeratorsAndSizeof(t *testing.T) {
	fs := cpp.MapFS{
		"a.c": `
enum sr_state { SR_IDLE, SR_BUSY = 5 };
struct buf { char data[64]; };
int f(void) {
	int x = SR_BUSY;
	unsigned long n = sizeof(struct buf);
	unsigned long a = _Alignof(struct buf);
	char c = (char)x;
	return x + (int)n + (int)a + c;
}
`,
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{{Source: "a.c", Object: "a.o"}}})
	g := res.Graph
	f := findNode(t, g, model.NodeFunction, "f")
	busy := findNode(t, g, model.NodeEnumerator, "SR_BUSY")
	bufT := findNode(t, g, model.NodeStruct, "buf")
	charT := findNode(t, g, model.NodePrimitive, "char")
	enumT := findNode(t, g, model.NodeEnumDef, "sr_state")

	if v, _ := g.NodeProp(busy, model.PropValue); v.AsInt() != 5 {
		t.Errorf("SR_BUSY VALUE = %v", v)
	}
	if !hasEdge(g, enumT, busy, model.EdgeContains) {
		t.Error("enum contains enumerator missing")
	}
	if !hasEdge(g, f, busy, model.EdgeUsesEnumerator) {
		t.Error("uses_enumerator missing")
	}
	if !hasEdge(g, f, bufT, model.EdgeGetsSizeOf) {
		t.Error("gets_size_of missing")
	}
	if !hasEdge(g, f, bufT, model.EdgeGetsAlignOf) {
		t.Error("gets_align_of missing")
	}
	if !hasEdge(g, f, charT, model.EdgeCastsTo) {
		t.Error("casts_to missing")
	}
}

func TestStaticsAndLocals(t *testing.T) {
	fs := cpp.MapFS{
		"a.c": `
static int counter;
static int bump(void) {
	static int calls;
	int delta = 1;
	calls++;
	counter += delta;
	return counter;
}
int use(void) { return bump(); }
`,
		"b.c": `
static int counter;
int other(void) { return counter; }
`,
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{
		{Source: "a.c", Object: "a.o"}, {Source: "b.c", Object: "b.o"},
	}})
	g := res.Graph

	// Two distinct static 'counter' globals.
	count := 0
	for id := graph.NodeID(0); id < graph.NodeID(g.NodeCount()); id++ {
		if g.NodeType(id) == model.NodeGlobal {
			if v, _ := g.NodeProp(id, model.PropShortName); v.AsString() == "counter" {
				count++
			}
		}
	}
	if count != 2 {
		t.Errorf("static counter nodes = %d, want 2", count)
	}

	bump := findNode(t, g, model.NodeFunction, "bump")
	calls := findNode(t, g, model.NodeStaticLocal, "calls")
	delta := findNode(t, g, model.NodeLocal, "delta")
	use := findNode(t, g, model.NodeFunction, "use")

	if !hasEdge(g, bump, calls, model.EdgeHasLocal) || !hasEdge(g, bump, delta, model.EdgeHasLocal) {
		t.Error("has_local missing")
	}
	if !hasEdge(g, bump, calls, model.EdgeWrites) || !hasEdge(g, bump, calls, model.EdgeReads) {
		t.Error("static local read/write (calls++) missing")
	}
	if !hasEdge(g, use, bump, model.EdgeCalls) {
		t.Error("use calls bump missing")
	}
	// NAME property of the local is qualified.
	if v, _ := g.NodeProp(delta, model.PropName); v.AsString() != "bump::delta" {
		t.Errorf("delta NAME = %q", v.AsString())
	}
}

func TestLinkDeclaresAndMatches(t *testing.T) {
	fs := cpp.MapFS{
		"api.h": "int shared_fn(int);\nextern int shared_var;\n",
		"user.c": `
#include "api.h"
int use(void) { return shared_fn(shared_var); }
`,
		"impl.c": `
#include "api.h"
int shared_var;
int shared_fn(int x) { return x; }
`,
	}
	build := Build{
		Units: []CompileUnit{
			{Source: "user.c", Object: "user.o"},
			{Source: "impl.c", Object: "impl.o"},
		},
		Modules: []Module{{Name: "mod.elf", Objects: []string{"user.o", "impl.o"}, Libs: []string{"libc.a"}}},
	}
	res := runExtract(t, fs, build)
	g := res.Graph

	userO := findNode(t, g, model.NodeObjectFile, "user.o")
	declFn := findNode(t, g, model.NodeFunctionDecl, "shared_fn")
	declVar := findNode(t, g, model.NodeGlobalDecl, "shared_var")
	defFn := findNode(t, g, model.NodeFunction, "shared_fn")
	defVar := findNode(t, g, model.NodeGlobal, "shared_var")
	lib := findNode(t, g, model.NodeLibrary, "libc.a")
	mod := findNode(t, g, model.NodeModule, "mod.elf")

	if !hasEdge(g, userO, declFn, model.EdgeLinkDeclares) {
		t.Error("user.o link_declares shared_fn missing")
	}
	if !hasEdge(g, userO, declVar, model.EdgeLinkDeclares) {
		t.Error("user.o link_declares shared_var missing")
	}
	if !hasEdge(g, declFn, defFn, model.EdgeLinkMatches) {
		t.Error("shared_fn decl link_matches def missing")
	}
	if !hasEdge(g, declVar, defVar, model.EdgeLinkMatches) {
		t.Error("shared_var decl link_matches def missing")
	}
	if !hasEdge(g, mod, lib, model.EdgeLinkedFromLib) {
		t.Error("linked_from_lib missing")
	}
	// Cross-TU calls resolve to the definition.
	use := findNode(t, g, model.NodeFunction, "use")
	if !hasEdge(g, use, defFn, model.EdgeCalls) {
		t.Error("use calls shared_fn definition missing")
	}
	if !hasEdge(g, use, defVar, model.EdgeReads) {
		t.Error("use reads shared_var definition missing")
	}
}

func TestFunctionPointerTable(t *testing.T) {
	fs := cpp.MapFS{
		"a.c": `
struct ops { int (*open)(void); int (*close)(void); };
static int my_open(void) { return 0; }
static int my_close(void) { return 1; }
static struct ops fops = { .open = my_open, .close = my_close };
int dispatch(void) { return fops.open(); }
`,
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{{Source: "a.c", Object: "a.o"}}})
	g := res.Graph
	fops := findNode(t, g, model.NodeGlobal, "fops")
	myOpen := findNode(t, g, model.NodeFunction, "my_open")
	openF := findNode(t, g, model.NodeField, "open")
	dispatch := findNode(t, g, model.NodeFunction, "dispatch")

	// Designated initialisers write the fields and take function addresses.
	if !hasEdge(g, fops, openF, model.EdgeWritesMember) {
		t.Error("fops init writes_member open missing")
	}
	if !hasEdge(g, fops, myOpen, model.EdgeTakesAddressOf) {
		t.Error("fops takes_address_of my_open missing")
	}
	// Calling through the table reads the member and the global.
	if !hasEdge(g, dispatch, openF, model.EdgeReadsMember) {
		t.Error("dispatch reads_member open missing")
	}
	// The field's type is a function_type node.
	ftFound := false
	for _, e := range g.Out(openF) {
		_, to, et := g.EdgeEnds(e)
		if et == model.EdgeIsaType && g.NodeType(to) == model.NodeFunctionType {
			ftFound = true
		}
	}
	if !ftFound {
		t.Error("open field isa_type function_type missing")
	}
}

func TestAddressAndDereference(t *testing.T) {
	fs := cpp.MapFS{
		"a.c": `
int target;
int *take(void) { return &target; }
int load(int *p) { return *p; }
int indirect(void) { int *p = &target; return *p + load(p); }
`,
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{{Source: "a.c", Object: "a.o"}}})
	g := res.Graph
	target := findNode(t, g, model.NodeGlobal, "target")
	take := findNode(t, g, model.NodeFunction, "take")
	load := findNode(t, g, model.NodeFunction, "load")
	indirect := findNode(t, g, model.NodeFunction, "indirect")

	if !hasEdge(g, take, target, model.EdgeTakesAddressOf) {
		t.Error("takes_address_of missing")
	}
	pParam := findNode(t, g, model.NodeParameter, "p")
	if !hasEdge(g, load, pParam, model.EdgeDereferences) {
		t.Error("dereferences missing")
	}
	if !hasEdge(g, indirect, target, model.EdgeTakesAddressOf) {
		t.Error("indirect takes_address_of missing")
	}
}

func TestDirectoryTree(t *testing.T) {
	fs := cpp.MapFS{
		"drivers/scsi/sr.c": "#include \"../../include/sr.h\"\nint sr_fn(void) { return SR; }\n",
		"include/sr.h":      "#define SR 1\n",
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{{Source: "drivers/scsi/sr.c", Object: "drivers/scsi/sr.o"}}})
	g := res.Graph
	drivers := findNode(t, g, model.NodeDirectory, "drivers")
	scsi := findNode(t, g, model.NodeDirectory, "scsi")
	include := findNode(t, g, model.NodeDirectory, "include")
	srC := findNode(t, g, model.NodeFile, "sr.c")
	srH := findNode(t, g, model.NodeFile, "sr.h")

	if !hasEdge(g, drivers, scsi, model.EdgeDirContains) {
		t.Error("drivers dir_contains scsi missing")
	}
	if !hasEdge(g, scsi, srC, model.EdgeDirContains) {
		t.Error("scsi dir_contains sr.c missing")
	}
	if !hasEdge(g, include, srH, model.EdgeDirContains) {
		t.Error("include dir_contains sr.h missing")
	}
}

func TestHeaderDefinedInlineSharedAcrossTUs(t *testing.T) {
	fs := cpp.MapFS{
		"util.h": `
#ifndef UTIL_H
#define UTIL_H
static inline int util_min(int a, int b) { return a < b ? a : b; }
#endif
`,
		"a.c": "#include \"util.h\"\nint fa(void) { return util_min(1, 2); }\n",
		"b.c": "#include \"util.h\"\nint fb(void) { return util_min(3, 4); }\n",
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{
		{Source: "a.c", Object: "a.o"}, {Source: "b.c", Object: "b.o"},
	}})
	g := res.Graph
	// Exactly one util_min function node despite two TUs parsing it.
	count := 0
	var um graph.NodeID
	for id := graph.NodeID(0); id < graph.NodeID(g.NodeCount()); id++ {
		if g.NodeType(id) == model.NodeFunction {
			if v, _ := g.NodeProp(id, model.PropShortName); v.AsString() == "util_min" {
				count++
				um = id
			}
		}
	}
	if count != 1 {
		t.Fatalf("util_min nodes = %d, want 1", count)
	}
	fa := findNode(t, g, model.NodeFunction, "fa")
	fb := findNode(t, g, model.NodeFunction, "fb")
	if !hasEdge(g, fa, um, model.EdgeCalls) || !hasEdge(g, fb, um, model.EdgeCalls) {
		t.Error("both TUs should call the shared inline")
	}
}

func TestVariadicAndLongName(t *testing.T) {
	fs := cpp.MapFS{"a.c": "int printk(const char *fmt, ...);\nint f(void) { return printk(\"x\"); }\n"}
	res := runExtract(t, fs, Build{Units: []CompileUnit{{Source: "a.c", Object: "a.o"}}})
	g := res.Graph
	pk := findNode(t, g, model.NodeFunctionDecl, "printk")
	if v, _ := g.NodeProp(pk, model.PropLongName); !strings.Contains(v.AsString(), "...") {
		t.Errorf("printk LONG_NAME = %q", v.AsString())
	}
	f := findNode(t, g, model.NodeFunction, "f")
	if !hasEdge(g, f, pk, model.EdgeCalls) {
		t.Error("call to undefined extern should target the decl")
	}
}

func TestMacroGeneratedCallHasInMacroRange(t *testing.T) {
	fs := cpp.MapFS{
		"a.c": `
int helper(void);
#define DO_IT() helper()
int f(void) { return DO_IT(); }
`,
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{{Source: "a.c", Object: "a.o"}}})
	g := res.Graph
	f := findNode(t, g, model.NodeFunction, "f")
	helper := findNode(t, g, model.NodeFunctionDecl, "helper")
	e, ok := edgeBetween(g, f, helper, model.EdgeCalls)
	if !ok {
		t.Fatal("macro-generated call missing")
	}
	// The call edge's range points at the DO_IT() use site (line 4).
	if v, _ := g.EdgeProp(e, model.PropUseStartLine); v.AsInt() != 4 {
		t.Errorf("macro call USE_START_LINE = %d, want 4", v.AsInt())
	}
}

func TestMetricsShapeOnFigure2(t *testing.T) {
	res := runExtract(t, figure2FS(), figure2Build())
	m := graph.ComputeMetrics(res.Graph)
	if m.Nodes < 10 || m.Edges < 15 {
		t.Errorf("unexpectedly small graph: %+v", m)
	}
	if m.Density < 1 {
		t.Errorf("density %v < 1", m.Density)
	}
}

func TestStatementExpressionReferences(t *testing.T) {
	fs := cpp.MapFS{
		"a.c": `
#define min(x, y) ({ int _x = (x); int _y = (y); _x < _y ? _x : _y; })
int helper(int v) { return v; }
int f(int a) { return min(helper(a), 10); }
`,
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{{Source: "a.c", Object: "a.o"}}})
	g := res.Graph
	f := findNode(t, g, model.NodeFunction, "f")
	helper := findNode(t, g, model.NodeFunction, "helper")
	minM := findNode(t, g, model.NodeMacro, "min")
	if !hasEdge(g, f, helper, model.EdgeCalls) {
		t.Error("call inside statement expression missing")
	}
	if !hasEdge(g, f, minM, model.EdgeExpandsMacro) {
		t.Error("expands_macro for min missing")
	}
}

func TestSwitchCaseEnumeratorUse(t *testing.T) {
	fs := cpp.MapFS{
		"a.c": `
enum state { ST_IDLE, ST_RUN, ST_DONE };
int dispatch(int s) {
	switch (s) {
	case ST_IDLE: return 0;
	case ST_RUN: return 1;
	default: return 2;
	}
}
`,
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{{Source: "a.c", Object: "a.o"}}})
	g := res.Graph
	d := findNode(t, g, model.NodeFunction, "dispatch")
	idle := findNode(t, g, model.NodeEnumerator, "ST_IDLE")
	run := findNode(t, g, model.NodeEnumerator, "ST_RUN")
	if !hasEdge(g, d, idle, model.EdgeUsesEnumerator) || !hasEdge(g, d, run, model.EdgeUsesEnumerator) {
		t.Error("case-label enumerator uses missing")
	}
}

func TestNestedAnonymousMemberChain(t *testing.T) {
	fs := cpp.MapFS{
		"a.c": `
struct msg {
	int tag;
	union {
		struct { int code; int detail; } err;
		int raw;
	};
};
int read_code(struct msg *m) { return m->err.code + m->raw; }
`,
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{{Source: "a.c", Object: "a.o"}}})
	g := res.Graph
	rc := findNode(t, g, model.NodeFunction, "read_code")
	code := findNode(t, g, model.NodeField, "code")
	raw := findNode(t, g, model.NodeField, "raw")
	if !hasEdge(g, rc, code, model.EdgeReadsMember) {
		t.Error("read through nested anonymous member missing")
	}
	if !hasEdge(g, rc, raw, model.EdgeReadsMember) {
		t.Error("read of anonymous union member missing")
	}
}

func TestFunctionPointerCallWithArgs(t *testing.T) {
	fs := cpp.MapFS{
		"a.c": `
struct ops { int (*ioctl)(int, int); };
static int do_ioctl(int a, int b) { return a + b; }
static struct ops dev_ops = { .ioctl = do_ioctl };
int g1;
int run(void) { return dev_ops.ioctl(g1, 2); }
`,
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{{Source: "a.c", Object: "a.o"}}})
	g := res.Graph
	runFn := findNode(t, g, model.NodeFunction, "run")
	ioctlF := findNode(t, g, model.NodeField, "ioctl")
	g1 := findNode(t, g, model.NodeGlobal, "g1")
	if !hasEdge(g, runFn, ioctlF, model.EdgeReadsMember) {
		t.Error("indirect call should read the pointer field")
	}
	// The argument is still a read.
	if !hasEdge(g, runFn, g1, model.EdgeReads) {
		t.Error("argument read missing")
	}
}

func TestCommaDeclaredPointers(t *testing.T) {
	fs := cpp.MapFS{
		"a.c": "int a, *b, c[4], (*d)(void);\n",
	}
	res := runExtract(t, fs, Build{Units: []CompileUnit{{Source: "a.c", Object: "a.o"}}})
	g := res.Graph
	findNode(t, g, model.NodeGlobal, "a")
	bN := findNode(t, g, model.NodeGlobal, "b")
	cN := findNode(t, g, model.NodeGlobal, "c")
	dN := findNode(t, g, model.NodeGlobal, "d")
	intT := findNode(t, g, model.NodePrimitive, "int")
	if e, ok := edgeBetween(g, bN, intT, model.EdgeIsaType); !ok {
		t.Error("b isa_type int missing")
	} else if v, _ := g.EdgeProp(e, model.PropQualifiers); v.AsString() != "*" {
		t.Errorf("b QUALIFIERS = %q", v.AsString())
	}
	if e, ok := edgeBetween(g, cN, intT, model.EdgeIsaType); !ok {
		t.Error("c isa_type int missing")
	} else if v, _ := g.EdgeProp(e, model.PropArrayLengths); v.AsString() != "4" {
		t.Errorf("c ARRAY_LENGTHS = %q", v.AsString())
	}
	// d is pointer-to-function: its isa_type target is a function_type.
	found := false
	for _, e := range g.Out(dN) {
		if _, to, et := g.EdgeEnds(e); et == model.EdgeIsaType && g.NodeType(to) == model.NodeFunctionType {
			found = true
		}
	}
	if !found {
		t.Error("d isa_type function_type missing")
	}
}
