package extract

import (
	"time"

	"frappe/internal/obs"
)

// Frontend metrics: one observation per translation unit, recorded by
// both the serial path (Frontend) and the parallel pool (Frontends), so
// dirty-unit re-extraction cost shows up the same way whatever -j is.
var (
	mFrontendTotal = obs.Default.Counter("frappe_extract_frontend_total",
		"Translation units run through the frontend (preprocess + parse).", nil)
	mFrontendErrors = obs.Default.Counter("frappe_extract_frontend_errors_total",
		"Translation units whose frontend hard-failed.", nil)
	mFrontendDuration = obs.Default.Histogram("frappe_extract_frontend_duration_ms",
		"Per-unit frontend wall time (preprocess + parse) in milliseconds.", nil, nil)
)

func recordFrontend(dur time.Duration, err error) {
	mFrontendTotal.Inc()
	mFrontendDuration.Observe(float64(dur) / float64(time.Millisecond))
	if err != nil {
		mFrontendErrors.Inc()
	}
}
