// Package extract is Frappé's extractor: it drives the preprocessor and
// parser over every translation unit of a build, models the compile and
// link steps, and emits the paper's dependency graph — every node and
// edge type of Table 1 with the properties of Table 2.
//
// Extraction is two-phase, which is what gives Frappé its cross-linking
// precision: phase one registers every definition across all translation
// units (so a call site in one TU can point at the definition in
// another), phase two walks function bodies emitting reference edges, and
// a final phase models the linker (objects, modules, link_declares,
// link_matches, linked_from with LINK_ORDER).
package extract

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"time"

	"frappe/internal/cparse"
	"frappe/internal/cpp"
	"frappe/internal/graph"
	"frappe/internal/model"
)

// CompileUnit is one compiler invocation captured by the wrapper scripts:
// a source file compiled into an object file.
type CompileUnit struct {
	Source string // path of the .c file
	Object string // path of the produced .o file
}

// Module is one linker invocation: objects (in link order) plus library
// inputs producing an executable or loadable module.
type Module struct {
	Name    string // output name, e.g. wakeup.elf or vmlinux
	Objects []string
	Libs    []string
}

// Build describes a whole captured build.
type Build struct {
	Units   []CompileUnit
	Modules []Module
}

// Options configure an extraction run.
type Options struct {
	FS           cpp.FileProvider
	IncludePaths []string
	Defines      map[string]string // predefined macros (-D)
	Typedefs     []string          // typedef names assumed from unmodelled headers

	// OnFrontend, when non-nil, is invoked with the source path each time
	// a translation unit goes through the frontend (preprocess + parse).
	// The incremental-update tests count these calls to prove that only
	// dirty units are re-extracted. Parallel runs fire it from a single
	// goroutine, in build order, before the workers start.
	OnFrontend func(source string)

	// Jobs bounds frontend parallelism: 0 or 1 runs the frontend
	// serially, n > 1 fans preprocessing and parsing across n workers,
	// and any negative value uses one worker per CPU. Whatever the
	// setting, the merge order is deterministic and the extracted graph
	// is identical to a serial run's.
	Jobs int
}

// Result is the extraction output.
type Result struct {
	Graph  *graph.Graph
	Files  *cpp.FileTable
	Errors []error
	// FileNodes maps file IDs to their graph nodes (needed by the
	// reference-as-node model converter and the code map).
	FileNodes map[cpp.FileID]graph.NodeID
}

// UnitArtifact is the frontend output for one translation unit: the
// preprocessed token stream with its bookkeeping records, and the parsed
// AST. Artifacts are immutable once built — the emission phases only read
// them — so an incremental update can cache the artifact of every clean
// unit and re-run Frontend for just the dirty ones, as long as all
// artifacts fed into one Assemble call share a single cpp.FileTable.
type UnitArtifact struct {
	Unit     CompileUnit
	RootFile cpp.FileID
	PP       *cpp.Result
	AST      *cparse.TranslationUnit
	// Diags holds the unit's preprocessor and parser diagnostics.
	Diags []error
}

// Frontend preprocesses and parses one translation unit — the expensive,
// per-file half of extraction (file IO, include resolution, macro
// expansion, parsing). files interns paths to stable FileIDs and must be
// shared across every unit of a build (nil allocates a throwaway table).
func Frontend(u CompileUnit, opts Options, files *cpp.FileTable) (art *UnitArtifact, err error) {
	if files == nil {
		files = cpp.NewFileTable()
	}
	if opts.OnFrontend != nil {
		opts.OnFrontend(u.Source)
	}
	start := time.Now()
	defer func() { recordFrontend(time.Since(start), err) }()
	pp := newPreprocessor(opts, files)
	res, err := pp.Preprocess(u.Source)
	if err != nil {
		return nil, err
	}
	ast := cparse.Parse(res.Tokens, opts.Typedefs)
	var diags []error
	diags = append(diags, res.Errors...)
	diags = append(diags, ast.Errors...)
	return &UnitArtifact{Unit: u, RootFile: files.Intern(u.Source), PP: res, AST: ast, Diags: diags}, nil
}

// newPreprocessor builds a preprocessor with the options' predefined
// macros applied in sorted (deterministic) order.
func newPreprocessor(opts Options, files *cpp.FileTable) *cpp.Preprocessor {
	pp := cpp.New(opts.FS, opts.IncludePaths, files)
	keys := make([]string, 0, len(opts.Defines))
	for k := range opts.Defines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pp.Define(k, opts.Defines[k])
	}
	return pp
}

// Assemble runs the emission phases — entity registration, body walking,
// the linker model, the directory tree — over pre-built artifacts. It is
// the cheap, whole-program half of extraction: no file is read and no
// token is produced here, so re-running it with mostly cached artifacts
// is how an incremental update rebuilds the graph. files must be the
// table the artifacts were built against.
func Assemble(arts []*UnitArtifact, modules []Module, opts Options, files *cpp.FileTable) *Result {
	if files == nil {
		files = cpp.NewFileTable()
	}
	ex := newExtractor(opts)
	ex.files = files
	for _, a := range arts {
		ex.errs = append(ex.errs, a.Diags...)
		ex.tus = append(ex.tus, &tuData{
			unit:              a.Unit,
			rootFile:          a.RootFile,
			ast:               a.AST,
			pp:                a.PP,
			statics:           map[string]*symInfo{},
			declByName:        map[string]graph.NodeID{},
			declTypes:         map[string]*cparse.Type{},
			referencedExterns: map[string]graph.NodeID{},
			definedNames:      map[string]bool{},
		})
	}
	ex.registerEntities()
	for _, tu := range ex.tus {
		ex.walkUnit(tu)
	}
	ex.link(modules)
	ex.buildDirectoryTree()
	return &Result{Graph: ex.g, Files: ex.files, Errors: ex.errs, FileNodes: ex.fileNode}
}

// Run extracts the dependency graph of a build: Frontend over every unit
// (fanned out per opts.Jobs), then one Assemble.
func Run(build Build, opts Options) (*Result, error) {
	files := cpp.NewFileTable()
	unitArts, errs := Frontends(build.Units, opts, files)
	var arts []*UnitArtifact
	var hard []error
	for i, u := range build.Units {
		if a := unitArts[i]; a != nil {
			arts = append(arts, a)
		} else if err := errs[u.Source]; err != nil {
			hard = append(hard, err)
		}
	}
	res := Assemble(arts, build.Modules, opts, files)
	res.Errors = append(hard, res.Errors...)
	return res, nil
}

type symInfo struct {
	node graph.NodeID
	typ  *cparse.Type
}

type fieldInfo struct {
	node graph.NodeID
	typ  *cparse.Type
}

type recordInfo struct {
	node     graph.NodeID
	union    bool
	complete bool
	def      *cparse.RecordDecl
	fields   map[string]*fieldInfo
	order    []string
	anon     []*cparse.Type // anonymous struct/union members, for lookup
}

// ownedFunc pairs a function definition with its node for body walking.
type ownedFunc struct {
	decl   *cparse.FuncDecl
	info   *symInfo
	params map[string]*symInfo
}

// ownedGlobal pairs a global definition with its node.
type ownedGlobal struct {
	decl *cparse.VarDecl
	info *symInfo
}

type enumInfo struct {
	node     graph.NodeID
	complete bool
}

type typedefInfo struct {
	node graph.NodeID
	typ  *cparse.Type
}

type declKey struct {
	name string
	file cpp.FileID
	line int32
}

type tuData struct {
	unit     CompileUnit
	rootFile cpp.FileID
	ast      *cparse.TranslationUnit
	pp       *cpp.Result
	statics  map[string]*symInfo // file-static functions and globals
	// declByName and declTypes index this TU's visible external
	// declarations (for reference resolution and linking).
	declByName map[string]graph.NodeID
	declTypes  map[string]*cparse.Type
	// referencedExterns collects names used in this TU that resolve to
	// declarations (the linker's undefined symbol table).
	referencedExterns map[string]graph.NodeID
	definedNames      map[string]bool // external names this TU defines
	ownedFuncs        []ownedFunc
	ownedGlobals      []ownedGlobal
	objNode           graph.NodeID
}

type extractor struct {
	opts  Options
	g     *graph.Graph
	files *cpp.FileTable
	errs  []error

	fileNode     map[cpp.FileID]graph.NodeID
	dirNode      map[string]graph.NodeID
	prim         map[string]graph.NodeID
	records      map[string]*recordInfo
	enums        map[string]*enumInfo
	typedefs     map[string]*typedefInfo
	funcTypes    map[string]graph.NodeID
	macros       map[string]graph.NodeID
	enumerators  map[string]*symInfo
	globals      map[string]*symInfo // external-linkage variable definitions
	funcs        map[string]*symInfo // external-linkage function definitions
	declNodes    map[declKey]graph.NodeID
	declByName   map[string]graph.NodeID // any decl node per name (for linking)
	objNodes     map[string]graph.NodeID
	libNodes     map[string]graph.NodeID
	includeSeen  map[[2]cpp.FileID]bool
	funcRanges   map[cpp.FileID][]funcRange
	seenDef      map[declKey]bool
	defByKey     map[declKey]*symInfo // definition info by position (for header-defined statics)
	seenMacroUse map[macroUseKey]bool

	tus []*tuData
}

func newExtractor(opts Options) *extractor {
	return &extractor{
		opts:        opts,
		g:           graph.New(),
		fileNode:    map[cpp.FileID]graph.NodeID{},
		dirNode:     map[string]graph.NodeID{},
		prim:        map[string]graph.NodeID{},
		records:     map[string]*recordInfo{},
		enums:       map[string]*enumInfo{},
		typedefs:    map[string]*typedefInfo{},
		funcTypes:   map[string]graph.NodeID{},
		macros:      map[string]graph.NodeID{},
		enumerators: map[string]*symInfo{},
		globals:     map[string]*symInfo{},
		funcs:       map[string]*symInfo{},
		declNodes:   map[declKey]graph.NodeID{},
		declByName:  map[string]graph.NodeID{},
		objNodes:    map[string]graph.NodeID{},
		libNodes:    map[string]graph.NodeID{},
		includeSeen: map[[2]cpp.FileID]bool{},
	}
}

// --- node helpers ---

func (ex *extractor) ensureFileNode(id cpp.FileID) graph.NodeID {
	if n, ok := ex.fileNode[id]; ok {
		return n
	}
	p := ex.files.Path(id)
	// FILE_ID is an extension beyond Table 2: it lets a persisted store
	// resolve USE_FILE_ID/NAME_FILE_ID edge properties back to file nodes
	// without the extractor's in-memory file table.
	n := ex.g.AddNode(model.NodeFile, graph.P(
		model.PropShortName, path.Base(p),
		model.PropName, p,
		"FILE_ID", int64(id),
	))
	ex.fileNode[id] = n
	return n
}

func (ex *extractor) ensurePrim(name string) graph.NodeID {
	if n, ok := ex.prim[name]; ok {
		return n
	}
	n := ex.g.AddNode(model.NodePrimitive, graph.P(
		model.PropShortName, name,
		model.PropName, name,
	))
	ex.prim[name] = n
	return n
}

func (ex *extractor) ensureRecord(tag string, union bool) *recordInfo {
	if ri, ok := ex.records[tag]; ok {
		return ri
	}
	// Referenced but never defined: a forward declaration node.
	typ := model.NodeStructDecl
	if union {
		typ = model.NodeUnionDecl
	}
	kw := "struct"
	if union {
		kw = "union"
	}
	n := ex.g.AddNode(typ, graph.P(
		model.PropShortName, tag,
		model.PropName, kw+" "+tag,
	))
	ri := &recordInfo{node: n, union: union, fields: map[string]*fieldInfo{}}
	ex.records[tag] = ri
	return ri
}

func (ex *extractor) ensureEnum(tag string) *enumInfo {
	if ei, ok := ex.enums[tag]; ok {
		return ei
	}
	n := ex.g.AddNode(model.NodeEnumDef, graph.P(
		model.PropShortName, tag,
		model.PropName, "enum "+tag,
	))
	ei := &enumInfo{node: n}
	ex.enums[tag] = ei
	return ei
}

// ensureFuncType interns a function type node keyed by its signature.
func (ex *extractor) ensureFuncType(t *cparse.Type) graph.NodeID {
	sig := t.String()
	if n, ok := ex.funcTypes[sig]; ok {
		return n
	}
	n := ex.g.AddNode(model.NodeFunctionType, graph.P(
		model.PropShortName, sig,
		model.PropName, sig,
	))
	ex.funcTypes[sig] = n
	ex.g.AddEdge(n, ex.typeNodeOf(t.Ret), model.EdgeHasRetType, nil)
	for i, pt := range t.Params {
		ex.g.AddEdge(n, ex.typeNodeOf(pt), model.EdgeHasParamType, graph.P(model.PropIndex, i))
	}
	return n
}

// typeNodeOf returns the graph node representing the base of a type
// (stripping pointers and arrays, as the paper's isa_type edges do,
// carrying the derivation in QUALIFIERS instead).
func (ex *extractor) typeNodeOf(t *cparse.Type) graph.NodeID {
	base := t.Base()
	if base == nil {
		return ex.ensurePrim("void")
	}
	switch base.Kind {
	case cparse.TPrimitive:
		return ex.ensurePrim(base.Name)
	case cparse.TStruct:
		return ex.ensureRecord(base.Name, false).node
	case cparse.TUnion:
		return ex.ensureRecord(base.Name, true).node
	case cparse.TEnum:
		return ex.ensureEnum(base.Name).node
	case cparse.TTypedef:
		if ti, ok := ex.typedefs[base.Name]; ok {
			return ti.node
		}
		// Unmodelled typedef (seeded via Options.Typedefs): treat as an
		// opaque primitive.
		return ex.ensurePrim(base.Name)
	case cparse.TFunc:
		return ex.ensureFuncType(base)
	}
	return ex.ensurePrim("void")
}

// isaTypeEdge emits value -isa_type-> base with QUALIFIERS/ARRAY_LENGTHS
// (and BIT_WIDTH for bit-fields).
func (ex *extractor) isaTypeEdge(from graph.NodeID, t *cparse.Type, bitWidth int64) {
	props := graph.Props{}
	if q := t.QualCode(); q != "" {
		props = append(props, graph.Prop{Key: model.PropQualifiers, Val: graph.Str(q)})
	}
	if lens := t.ArrayLens(); len(lens) > 0 {
		parts := make([]string, len(lens))
		for i, l := range lens {
			parts[i] = fmt.Sprint(l)
		}
		props = append(props, graph.Prop{Key: model.PropArrayLengths, Val: graph.Str(strings.Join(parts, ","))})
	}
	if bitWidth >= 0 {
		props = append(props, graph.Prop{Key: model.PropBitWidth, Val: graph.Int(bitWidth)})
	}
	ex.g.AddEdge(from, ex.typeNodeOf(t), model.EdgeIsaType, props)
}

// fileContains links a file to a symbol defined at pos. The defining name
// position rides on the edge as NAME_* properties (node properties carry
// no locations in the paper's Table 2; this is how a definition's source
// location stays recoverable).
func (ex *extractor) fileContains(pos cpp.Pos, sym graph.NodeID) {
	if !pos.IsValid() {
		return
	}
	ex.g.AddEdge(ex.ensureFileNode(pos.File), sym, model.EdgeFileContains, graph.P(
		model.PropNameFileID, int64(pos.File),
		model.PropNameStartLine, int64(pos.Line),
		model.PropNameStartCol, int64(pos.Col),
	))
}

// refProps builds the USE_*/NAME_* property set of a reference edge
// (Table 2 of the paper): the whole expression range and the
// representative token range.
func refProps(use cpp.Range, name cpp.Range) graph.Props {
	return graph.P(
		model.PropUseFileID, int64(use.Start.File),
		model.PropUseStartLine, int64(use.Start.Line),
		model.PropUseStartCol, int64(use.Start.Col),
		model.PropUseEndLine, int64(use.End.Line),
		model.PropUseEndCol, int64(use.End.Col),
		model.PropNameFileID, int64(name.Start.File),
		model.PropNameStartLine, int64(name.Start.Line),
		model.PropNameStartCol, int64(name.Start.Col),
		model.PropNameEndLine, int64(name.End.Line),
		model.PropNameEndCol, int64(name.End.Col),
	)
}

// buildDirectoryTree creates directory nodes and dir_contains edges for
// every interned file path.
func (ex *extractor) buildDirectoryTree() {
	ensureDir := func(p string) graph.NodeID {
		if n, ok := ex.dirNode[p]; ok {
			return n
		}
		short := path.Base(p)
		if p == "." || p == "" {
			short = "/"
		}
		n := ex.g.AddNode(model.NodeDirectory, graph.P(
			model.PropShortName, short,
			model.PropName, p,
		))
		ex.dirNode[p] = n
		return n
	}
	var linkDir func(p string) graph.NodeID
	linkDir = func(p string) graph.NodeID {
		if n, ok := ex.dirNode[p]; ok {
			return n
		}
		n := ensureDir(p)
		if p != "." && p != "" && p != "/" {
			parent := path.Dir(p)
			pn := linkDir(parent)
			ex.g.AddEdge(pn, n, model.EdgeDirContains, nil)
		}
		return n
	}
	// Deterministic order: iterate files by ID.
	for id := cpp.FileID(0); int(id) < ex.files.Len(); id++ {
		fnode, ok := ex.fileNode[id]
		if !ok {
			continue
		}
		dir := path.Dir(ex.files.Path(id))
		dn := linkDir(dir)
		ex.g.AddEdge(dn, fnode, model.EdgeDirContains, nil)
	}
}
