package extract

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"frappe/internal/cpp"
	"frappe/internal/graph"
	"frappe/internal/store"
)

// parallelFixture builds n translation units sharing one common header
// plus one private header each, so the order FileIDs are interned in
// depends on which unit reaches the file table first — exactly the
// nondeterminism the ordered merge in Frontends must mask.
func parallelFixture(n int) (cpp.MapFS, Build) {
	fs := cpp.MapFS{
		"common.h": "#define BASE 7\nint shared_fn(int);\n",
	}
	var b Build
	var objects []string
	for i := 0; i < n; i++ {
		h := fmt.Sprintf("priv%d.h", i)
		c := fmt.Sprintf("unit%d.c", i)
		o := fmt.Sprintf("unit%d.o", i)
		fs[h] = fmt.Sprintf("#define SCALE_%d %d\nint helper_%d(int);\n", i, i+2, i)
		fs[c] = fmt.Sprintf("#include \"common.h\"\n#include \"%s\"\n"+
			"int helper_%d(int x) {\n\treturn x * SCALE_%d;\n}\n"+
			"int unit_fn_%d(int x) {\n\treturn shared_fn(helper_%d(x + BASE));\n}\n",
			h, i, i, i, i)
		b.Units = append(b.Units, CompileUnit{Source: c, Object: o})
		objects = append(objects, o)
	}
	fs["shared.c"] = "#include \"common.h\"\nint shared_fn(int x) {\n\treturn x;\n}\n"
	b.Units = append(b.Units, CompileUnit{Source: "shared.c", Object: "shared.o"})
	b.Modules = []Module{{Name: "prog", Objects: append(objects, "shared.o")}}
	return fs, b
}

// storeBytes writes g to a fresh directory and returns every store file
// keyed by name, for byte-level comparison of two extraction runs.
func storeBytes(t *testing.T, dir string, g *graph.Graph) map[string][]byte {
	t.Helper()
	if err := store.Write(dir, g); err != nil {
		t.Fatalf("store.Write: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestParallelMatchesSerial is the tentpole acceptance criterion: a
// parallel frontend run must produce a byte-identical store to a serial
// run over the same build — same FileID assignment, same node and edge
// order, same property bytes.
func TestParallelMatchesSerial(t *testing.T) {
	fs, build := parallelFixture(16)
	serial := runExtract(t, fs, build)
	want := storeBytes(t, filepath.Join(t.TempDir(), "serial"), serial.Graph)

	for _, jobs := range []int{2, 8, -1} {
		jobs := jobs
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			par := runExtract(t, fs, build, func(o *Options) { o.Jobs = jobs })
			if !reflect.DeepEqual(serial.Files.Paths(), par.Files.Paths()) {
				t.Fatalf("file tables diverge:\nserial   %v\nparallel %v",
					serial.Files.Paths(), par.Files.Paths())
			}
			got := storeBytes(t, filepath.Join(t.TempDir(), "par"), par.Graph)
			if len(got) != len(want) {
				t.Fatalf("store file sets differ: %d vs %d files", len(got), len(want))
			}
			for name, wb := range want {
				gb, ok := got[name]
				if !ok {
					t.Fatalf("parallel store missing %s", name)
				}
				if !bytes.Equal(wb, gb) {
					t.Fatalf("store file %s differs between serial and parallel runs", name)
				}
			}
		})
	}
}

// TestParallelErrorsMatchSerial: a unit that hard-fails the frontend
// must surface the same error, against the same source, whether the
// run was serial or fanned out.
func TestParallelErrorsMatchSerial(t *testing.T) {
	fs, build := parallelFixture(6)
	fs["unit3.c"] = "#include \"missing_header.h\"\nint unit_fn_3(int x) { return x; }\n"

	collect := func(jobs int) []string {
		res, err := Run(build, Options{FS: fs, Jobs: jobs})
		if err != nil {
			t.Fatalf("Run(jobs=%d): %v", jobs, err)
		}
		var msgs []string
		for _, e := range res.Errors {
			msgs = append(msgs, e.Error())
		}
		return msgs
	}
	serial := collect(0)
	parallel := collect(8)
	if len(serial) == 0 {
		t.Fatal("missing include produced no extraction errors")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("error counts diverge: serial %d, parallel %d\nserial: %v\nparallel: %v",
			len(serial), len(parallel), serial, parallel)
	}
	for i := range serial {
		if !strings.Contains(parallel[i], "unit3.c") && strings.Contains(serial[i], "unit3.c") {
			t.Fatalf("parallel error %d lost its unit attribution: %q vs %q",
				i, parallel[i], serial[i])
		}
	}
}

// TestParallelOnFrontendOrder: the OnFrontend hook fires once per unit,
// in build order, from a single goroutine — parallel runs must not
// change what incremental-update tests observe through it.
func TestParallelOnFrontendOrder(t *testing.T) {
	fs, build := parallelFixture(8)
	var seen []string
	opts := Options{FS: fs, Jobs: 4, OnFrontend: func(src string) { seen = append(seen, src) }}
	if _, err := Run(build, opts); err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, u := range build.Units {
		want = append(want, u.Source)
	}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("OnFrontend order %v, want build order %v", seen, want)
	}
}
