package extract

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"frappe/internal/cparse"
	"frappe/internal/cpp"
)

// Frontends drives the frontend over units, serially for opts.Jobs <= 1
// and across a bounded worker pool otherwise. The returned slice is
// parallel to units (nil where a unit hard-failed); errs maps a failed
// unit's source to its wrapped error.
//
// The parallel path is deterministic: every worker preprocesses against
// a private file table, and a merge step then interns each unit's
// discovered files into the shared table strictly in build order. A
// unit's intern sequence depends only on its own source and the file
// provider — never on table state — so the shared table ends up with
// exactly the FileID assignment of a serial run, and the extracted
// graph (and persisted store) is byte-identical no matter how workers
// interleave. The only serial-run divergence is cosmetic: diagnostic
// strings formatted during preprocessing may render private file IDs.
//
// opts.FS must be safe for concurrent reads (MapFS and DirFS are).
func Frontends(units []CompileUnit, opts Options, files *cpp.FileTable) ([]*UnitArtifact, map[string]error) {
	arts := make([]*UnitArtifact, len(units))
	errs := map[string]error{}
	jobs := opts.Jobs
	if jobs < 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs <= 1 || len(units) < 2 {
		for i, u := range units {
			a, err := Frontend(u, opts, files)
			if err != nil {
				errs[u.Source] = fmt.Errorf("extract: %s: %w", u.Source, err)
				continue
			}
			arts[i] = a
		}
		return arts, errs
	}

	// The OnFrontend hook fires here, in build order, before any worker
	// starts — one call per unit, exactly as many as a serial run makes —
	// so callers counting invocations (the incremental-update tests) need
	// neither locking nor order tolerance.
	if opts.OnFrontend != nil {
		for _, u := range units {
			opts.OnFrontend(u.Source)
		}
	}
	wopts := opts
	wopts.OnFrontend = nil

	// Stage 1 — parallel: preprocess every unit against a private file
	// table. ready[i] closes when unit i's preprocessing lands.
	pres := make([]preprocessed, len(units))
	ready := make([]chan struct{}, len(units))
	sem := make(chan struct{}, jobs)
	for i := range units {
		ready[i] = make(chan struct{})
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			pres[i] = preprocessUnit(units[i], wopts)
			close(ready[i])
		}(i)
	}

	// Stage 2 — ordered merge, parallel parse: consume units strictly in
	// build order. Interning into the shared table is the only serialised
	// work (it is just map lookups); rewriting the token stream to shared
	// IDs and parsing fan back out to the pool.
	var wg sync.WaitGroup
	psem := make(chan struct{}, jobs)
	for i := range units {
		<-ready[i]
		u := units[i]
		pre := pres[i]
		if pre.err != nil {
			errs[u.Source] = fmt.Errorf("extract: %s: %w", u.Source, pre.err)
			recordFrontend(pre.dur, pre.err)
			continue
		}
		remap := make([]cpp.FileID, pre.loc.Len())
		for id, p := range pre.loc.Paths() {
			remap[cpp.FileID(id)] = files.Intern(p)
		}
		root := files.Intern(u.Source)
		wg.Add(1)
		go func(i int, u CompileUnit, pre preprocessed, remap []cpp.FileID, root cpp.FileID) {
			defer wg.Done()
			psem <- struct{}{}
			defer func() { <-psem }()
			parseStart := time.Now()
			remapFileIDs(pre.pp, remap)
			ast := cparse.Parse(pre.pp.Tokens, wopts.Typedefs)
			var diags []error
			diags = append(diags, pre.pp.Errors...)
			diags = append(diags, ast.Errors...)
			arts[i] = &UnitArtifact{Unit: u, RootFile: root, PP: pre.pp, AST: ast, Diags: diags}
			recordFrontend(pre.dur+time.Since(parseStart), nil)
		}(i, u, pre, remap, root)
	}
	wg.Wait()
	return arts, errs
}

// preprocessed is the stage-one output of a parallel frontend: one
// unit's preprocessing result against its private file table.
type preprocessed struct {
	pp  *cpp.Result
	loc *cpp.FileTable
	err error
	dur time.Duration // preprocess wall time, folded into the unit's frontend metric
}

// preprocessUnit preprocesses one unit against a fresh private file
// table; the caller later rewrites the result to shared FileIDs.
func preprocessUnit(u CompileUnit, opts Options) preprocessed {
	start := time.Now()
	loc := cpp.NewFileTable()
	pp := newPreprocessor(opts, loc)
	res, err := pp.Preprocess(u.Source)
	if err != nil {
		return preprocessed{err: err, dur: time.Since(start)}
	}
	return preprocessed{pp: res, loc: loc, dur: time.Since(start)}
}

// remapFileIDs rewrites every FileID in a preprocessing result through
// remap (private table ID → shared table ID), in place. It must run
// before the token stream is parsed so AST positions carry shared IDs.
func remapFileIDs(res *cpp.Result, remap []cpp.FileID) {
	mp := func(id cpp.FileID) cpp.FileID {
		if id < 0 || int(id) >= len(remap) {
			return id // NoFile and other sentinel values pass through
		}
		return remap[id]
	}
	mpPos := func(p *cpp.Pos) { p.File = mp(p.File) }
	mpRange := func(r *cpp.Range) { mpPos(&r.Start); mpPos(&r.End) }
	for i := range res.Tokens {
		mpPos(&res.Tokens[i].Pos)
	}
	for i := range res.Includes {
		res.Includes[i].From = mp(res.Includes[i].From)
		res.Includes[i].To = mp(res.Includes[i].To)
		mpRange(&res.Includes[i].Use)
	}
	for i := range res.Expansions {
		mpRange(&res.Expansions[i].Use)
	}
	for i := range res.Interrogations {
		mpRange(&res.Interrogations[i].Use)
	}
	for i := range res.MacroDefs {
		mpPos(&res.MacroDefs[i].Pos)
		mpPos(&res.MacroDefs[i].End)
		res.MacroDefs[i].File = mp(res.MacroDefs[i].File)
	}
}
