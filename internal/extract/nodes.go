package extract

import (
	"fmt"
	"sort"
	"strings"

	"frappe/internal/cparse"
	"frappe/internal/cpp"
	"frappe/internal/graph"
	"frappe/internal/model"
)

// funcRange locates a function body for expansion attribution.
type funcRange struct {
	start, end cpp.Pos
	node       graph.NodeID
}

// registerEntities is extraction phase one-and-a-half: with every TU
// parsed, create graph nodes for all definitions (records, enums,
// typedefs, functions, globals, macros, declarations) so that phase two
// can resolve references across translation units.
func (ex *extractor) registerEntities() {
	ex.funcRanges = map[cpp.FileID][]funcRange{}
	ex.seenDef = map[declKey]bool{}
	ex.defByKey = map[declKey]*symInfo{}

	// Pass A: record/enum/typedef shells (so cross-references resolve).
	for _, tu := range ex.tus {
		ex.registerTypes(tu)
	}
	// Pass B: type detail edges (field types may reference other records).
	for _, tu := range ex.tus {
		ex.registerTypeDetails(tu)
	}
	// Pass C: symbols (functions, globals, declarations) and macros.
	for _, tu := range ex.tus {
		ex.registerSymbols(tu, tu.declByName)
		ex.registerMacrosAndIncludes(tu)
	}
	// Pass D: declares edges from every declaration to its definition.
	// Iterate in sorted-name order: ranging over the map directly would
	// emit these edges in a different order every run, breaking the
	// byte-reproducibility of the persisted store.
	for _, name := range sortedNames(ex.declByName) {
		decl := ex.declByName[name]
		if def, ok := ex.funcs[name]; ok {
			ex.g.AddEdge(decl, def.node, model.EdgeDeclares, nil)
			continue
		}
		if def, ok := ex.globals[name]; ok {
			ex.g.AddEdge(decl, def.node, model.EdgeDeclares, nil)
		}
	}
}

// sortedNames returns m's keys in sorted order, for deterministic
// edge-emission over name-keyed maps.
func sortedNames(m map[string]graph.NodeID) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (ex *extractor) registerTypes(tu *tuData) {
	for _, rec := range tu.ast.Records {
		if !rec.Complete {
			continue
		}
		ri, exists := ex.records[rec.Tag]
		if exists && ri.complete {
			continue // same header seen from another TU
		}
		if !exists {
			typ := model.NodeStruct
			kw := "struct"
			if rec.Union {
				typ = model.NodeUnion
				kw = "union"
			}
			n := ex.g.AddNode(typ, graph.P(
				model.PropShortName, rec.Tag,
				model.PropName, kw+" "+rec.Tag,
			))
			ri = &recordInfo{node: n, union: rec.Union, fields: map[string]*fieldInfo{}}
			ex.records[rec.Tag] = ri
			pos := rec.Start
			if rec.TagTok.Kind == cpp.TokIdent {
				pos = rec.TagTok.Pos
			}
			ex.fileContains(pos, n)
		}
		if !ri.complete {
			ri.complete = true
			ri.def = rec
			for _, f := range rec.Fields {
				fname := f.Name.Text
				if fname == "" {
					// Anonymous member: kept in order list for lookup
					// recursion, no node of its own.
					ri.order = append(ri.order, "")
					ri.anon = append(ri.anon, f.Type)
					continue
				}
				fn := ex.g.AddNode(model.NodeField, graph.P(
					model.PropShortName, fname,
					model.PropName, rec.Tag+"::"+fname,
				))
				ri.fields[fname] = &fieldInfo{node: fn, typ: f.Type}
				ri.order = append(ri.order, fname)
				ex.g.AddEdge(ri.node, fn, model.EdgeContains, nil)
				ex.fileContains(f.Name.Pos, fn)
			}
		}
	}
	for _, en := range tu.ast.Enums {
		if !en.Complete {
			continue
		}
		ei, exists := ex.enums[en.Tag]
		if exists && ei.complete {
			continue
		}
		if !exists {
			n := ex.g.AddNode(model.NodeEnumDef, graph.P(
				model.PropShortName, en.Tag,
				model.PropName, "enum "+en.Tag,
			))
			ei = &enumInfo{node: n}
			ex.enums[en.Tag] = ei
			pos := en.Start
			if en.TagTok.Kind == cpp.TokIdent {
				pos = en.TagTok.Pos
			}
			ex.fileContains(pos, n)
		}
		if !ei.complete {
			ei.complete = true
			for _, e := range en.Enumerators {
				if _, dup := ex.enumerators[e.Name.Text]; dup {
					continue
				}
				n := ex.g.AddNode(model.NodeEnumerator, graph.P(
					model.PropShortName, e.Name.Text,
					model.PropName, en.Tag+"::"+e.Name.Text,
					model.PropValue, e.Value,
				))
				ex.enumerators[e.Name.Text] = &symInfo{node: n, typ: &cparse.Type{Kind: cparse.TEnum, Name: en.Tag}}
				ex.g.AddEdge(ei.node, n, model.EdgeContains, nil)
				ex.fileContains(e.Name.Pos, n)
			}
		}
	}
	for _, d := range tu.ast.Decls {
		td, ok := d.(*cparse.TypedefDecl)
		if !ok {
			continue
		}
		if _, dup := ex.typedefs[td.Name.Text]; dup {
			continue
		}
		n := ex.g.AddNode(model.NodeTypedef, graph.P(
			model.PropShortName, td.Name.Text,
			model.PropName, td.Name.Text,
		))
		ex.typedefs[td.Name.Text] = &typedefInfo{node: n, typ: td.Type}
		ex.fileContains(td.Name.Pos, n)
	}
}

// registerTypeDetails emits field and typedef isa_type edges once all
// type shells exist.
func (ex *extractor) registerTypeDetails(tu *tuData) {
	for _, rec := range tu.ast.Records {
		ri := ex.records[rec.Tag]
		if ri == nil || ri.def != rec {
			continue // details already emitted by the defining TU
		}
		for _, f := range rec.Fields {
			if f.Name.Text == "" {
				continue
			}
			fi := ri.fields[f.Name.Text]
			ex.isaTypeEdge(fi.node, f.Type, f.BitWidth)
		}
	}
	for _, d := range tu.ast.Decls {
		td, ok := d.(*cparse.TypedefDecl)
		if !ok {
			continue
		}
		ti := ex.typedefs[td.Name.Text]
		if ti == nil || ti.typ != td.Type {
			continue
		}
		ex.isaTypeEdge(ti.node, td.Type, -1)
	}
}

// signature renders the paper's LONG_NAME for a function.
func signature(name string, t *cparse.Type) string {
	var parts []string
	for _, p := range t.Params {
		parts = append(parts, p.String())
	}
	if t.Variadic {
		parts = append(parts, "...")
	}
	return fmt.Sprintf("%s(%s)", name, strings.Join(parts, ", "))
}

func (ex *extractor) registerSymbols(tu *tuData, declByName map[string]graph.NodeID) {
	for _, d := range tu.ast.Decls {
		switch t := d.(type) {
		case *cparse.FuncDecl:
			ex.registerFunc(tu, t, declByName)
		case *cparse.VarDecl:
			ex.registerVar(tu, t, declByName)
		}
	}
}

func (ex *extractor) registerFunc(tu *tuData, fd *cparse.FuncDecl, declByName map[string]graph.NodeID) {
	name := fd.Name.Text
	if fd.Body == nil {
		// A declaration (prototype). Deduplicate by position so a header
		// prototype is one node across all TUs that include it.
		key := declKey{name: name, file: fd.Name.Pos.File, line: fd.Name.Pos.Line}
		n, ok := ex.declNodes[key]
		if !ok {
			props := graph.P(
				model.PropShortName, name,
				model.PropName, name,
				model.PropLongName, signature(name, fd.Type),
			)
			if fd.Name.FromMacro != "" {
				props = append(props, graph.Prop{Key: model.PropInMacro, Val: graph.Bool(true)})
			}
			n = ex.g.AddNode(model.NodeFunctionDecl, props)
			ex.declNodes[key] = n
			ex.declByName[name] = n
			ex.fileContains(fd.Name.Pos, n)
			ex.g.AddEdge(n, ex.typeNodeOf(fd.Type.Ret), model.EdgeHasRetType, nil)
		}
		declByName[name] = n
		tu.declTypes[name] = fd.Type
		return
	}

	key := declKey{name: name, file: fd.Name.Pos.File, line: fd.Name.Pos.Line}
	if ex.seenDef[key] {
		// Header-defined (static inline) function already owned by an
		// earlier TU: make it resolvable in this TU too.
		if info := ex.defByKey[key]; info != nil && fd.Static {
			tu.statics[name] = info
		}
		if !fd.Static {
			tu.definedNames[name] = true
		}
		return
	}
	ex.seenDef[key] = true
	if !fd.Static {
		if _, dup := ex.funcs[name]; dup {
			// Duplicate external definition; keep the first (as a linker
			// would report a multiple-definition error).
			ex.errs = append(ex.errs, fmt.Errorf("extract: multiple definition of %q", name))
			return
		}
	}
	props := graph.P(
		model.PropShortName, name,
		model.PropName, name,
		model.PropLongName, signature(name, fd.Type),
	)
	if fd.Variadic {
		props = append(props, graph.Prop{Key: model.PropVariadic, Val: graph.Bool(true)})
	}
	if fd.Name.FromMacro != "" {
		props = append(props, graph.Prop{Key: model.PropInMacro, Val: graph.Bool(true)})
	}
	n := ex.g.AddNode(model.NodeFunction, props)
	info := &symInfo{node: n, typ: fd.Type}
	ex.defByKey[key] = info
	if fd.Static {
		tu.statics[name] = info
	} else {
		ex.funcs[name] = info
		tu.definedNames[name] = true
	}
	ex.fileContains(fd.Name.Pos, n)
	ex.g.AddEdge(n, ex.typeNodeOf(fd.Type.Ret), model.EdgeHasRetType, nil)
	params := map[string]*symInfo{}
	for _, p := range fd.Params {
		pname := p.Name.Text
		if pname == "" {
			continue
		}
		pn := ex.g.AddNode(model.NodeParameter, graph.P(
			model.PropShortName, pname,
			model.PropName, name+"::"+pname,
		))
		ex.g.AddEdge(n, pn, model.EdgeHasParam, graph.P(model.PropIndex, p.Index))
		ex.isaTypeEdge(pn, p.Type, -1)
		params[pname] = &symInfo{node: pn, typ: p.Type}
	}
	// Record the body range for macro-expansion attribution.
	sp := fd.Span()
	ex.funcRanges[sp.Start.File] = append(ex.funcRanges[sp.Start.File], funcRange{
		start: sp.Start, end: sp.End, node: n,
	})
	tu.ownedFuncs = append(tu.ownedFuncs, ownedFunc{decl: fd, info: info, params: params})
}

func (ex *extractor) registerVar(tu *tuData, vd *cparse.VarDecl, declByName map[string]graph.NodeID) {
	name := vd.Name.Text
	if vd.Extern && vd.Init == nil {
		key := declKey{name: name, file: vd.Name.Pos.File, line: vd.Name.Pos.Line}
		n, ok := ex.declNodes[key]
		if !ok {
			n = ex.g.AddNode(model.NodeGlobalDecl, graph.P(
				model.PropShortName, name,
				model.PropName, name,
			))
			ex.declNodes[key] = n
			ex.declByName[name] = n
			ex.fileContains(vd.Name.Pos, n)
			ex.isaTypeEdge(n, vd.Type, -1)
		}
		declByName[name] = n
		tu.declTypes[name] = vd.Type
		return
	}
	key := declKey{name: name, file: vd.Name.Pos.File, line: vd.Name.Pos.Line}
	if ex.seenDef[key] {
		if info := ex.defByKey[key]; info != nil && vd.Static {
			tu.statics[name] = info
		}
		if !vd.Static {
			tu.definedNames[name] = true
		}
		return
	}
	ex.seenDef[key] = true
	if !vd.Static {
		if _, dup := ex.globals[name]; dup {
			return // tentative re-definition in another TU
		}
	}
	n := ex.g.AddNode(model.NodeGlobal, graph.P(
		model.PropShortName, name,
		model.PropName, name,
	))
	info := &symInfo{node: n, typ: vd.Type}
	ex.defByKey[key] = info
	if vd.Static {
		tu.statics[name] = info
	} else {
		ex.globals[name] = info
		tu.definedNames[name] = true
	}
	ex.fileContains(vd.Name.Pos, n)
	ex.isaTypeEdge(n, vd.Type, -1)
	tu.ownedGlobals = append(tu.ownedGlobals, ownedGlobal{decl: vd, info: info})
}

func (ex *extractor) registerMacrosAndIncludes(tu *tuData) {
	for _, md := range tu.pp.MacroDefs {
		key := declKey{name: md.Name, file: md.File, line: md.Pos.Line}
		if ex.seenDef[key] {
			continue
		}
		ex.seenDef[key] = true
		if _, dup := ex.macros[md.Name]; dup {
			continue // redefinition elsewhere: first node wins
		}
		n := ex.g.AddNode(model.NodeMacro, graph.P(
			model.PropShortName, md.Name,
			model.PropName, md.Name,
		))
		ex.macros[md.Name] = n
		ex.fileContains(md.Pos, n)
	}
	for _, inc := range tu.pp.Includes {
		key := [2]cpp.FileID{inc.From, inc.To}
		if ex.includeSeen[key] {
			continue
		}
		ex.includeSeen[key] = true
		ex.g.AddEdge(ex.ensureFileNode(inc.From), ex.ensureFileNode(inc.To), model.EdgeIncludes, refProps(inc.Use, inc.Use))
	}
}

// enclosingFunc finds the function whose body range covers pos.
func (ex *extractor) enclosingFunc(pos cpp.Pos) (graph.NodeID, bool) {
	for _, fr := range ex.funcRanges[pos.File] {
		if posLE(fr.start, pos) && posLE(pos, fr.end) {
			return fr.node, true
		}
	}
	return graph.InvalidID, false
}

func posLE(a, b cpp.Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col <= b.Col
}
