package delta

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Record is one journal entry: the audit trail of an applied update.
// Time is supplied by the caller (the subsystem takes no clock of its
// own) in RFC 3339 form.
type Record struct {
	Epoch            int64   `json:"epoch"`
	Time             string  `json:"time,omitempty"`
	FilesAdded       int     `json:"filesAdded"`
	FilesModified    int     `json:"filesModified"`
	FilesRemoved     int     `json:"filesRemoved"`
	UnitsReextracted int     `json:"unitsReextracted"`
	NodesAdded       int     `json:"nodesAdded"`
	NodesRemoved     int     `json:"nodesRemoved"`
	EdgesAdded       int     `json:"edgesAdded"`
	EdgesRemoved     int     `json:"edgesRemoved"`
	WallMillis       float64 `json:"wallMillis"`
	NodeCount        int64   `json:"nodeCount"`
	EdgeCount        int64   `json:"edgeCount"`
}

// AppendJournal appends one record to dir's journal as a JSON line,
// fsyncing before close so the audit trail survives a crash that follows
// the append. Update paths that also persist the store should prefer
// PersistUpdate, which bundles the append into the same atomic commit.
func AppendJournal(dir string, r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, JournalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(b, '\n')); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// LoadJournal reads dir's journal. A missing journal is an empty
// history, not an error.
func LoadJournal(dir string) ([]Record, error) {
	f, err := os.Open(filepath.Join(dir, JournalFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return out, fmt.Errorf("delta: %s line %d: %w", JournalFile, line, err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// AuditJournal checks dir's update history for internal consistency:
// parseable records, strictly increasing epochs, and agreement between
// the last journalled epoch and the manifest. A store with neither
// journal nor manifest (indexed before the incremental subsystem, or
// never updated) audits clean.
func AuditJournal(dir string) []error {
	var problems []error
	recs, err := LoadJournal(dir)
	if err != nil {
		problems = append(problems, err)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Epoch <= recs[i-1].Epoch {
			problems = append(problems, fmt.Errorf(
				"delta: %s record %d: epoch %d not after %d",
				JournalFile, i+1, recs[i].Epoch, recs[i-1].Epoch))
		}
	}
	m, err := LoadManifest(dir)
	switch {
	case err == nil:
		if len(recs) > 0 && recs[len(recs)-1].Epoch != m.Epoch {
			problems = append(problems, fmt.Errorf(
				"delta: journal ends at epoch %d but manifest is at epoch %d",
				recs[len(recs)-1].Epoch, m.Epoch))
		}
	case os.IsNotExist(err):
		if len(recs) > 0 {
			problems = append(problems, fmt.Errorf(
				"delta: journal has %d records but no manifest exists", len(recs)))
		}
	default:
		problems = append(problems, err)
	}
	return problems
}
