package delta

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"frappe/internal/cpp"
	"frappe/internal/extract"
	"frappe/internal/graph"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
)

// countingOptions wraps a workload's options with a frontend counter —
// the proof that an update re-extracts only dirty units.
func countingOptions(opts extract.Options, n *int) extract.Options {
	opts.OnFrontend = func(string) { *n++ }
	return opts
}

// sigsEqual asserts two graphs are identical by signature multiset and
// reports a few differing signatures when not.
func sigsEqual(t *testing.T, want, got graph.Source) {
	t.Helper()
	check := func(kind string, ws, gs []string) {
		wm := countMultiset(ws)
		gm := countMultiset(gs)
		var missing, extra []string
		for s, n := range wm {
			if gm[s] < n {
				missing = append(missing, s)
			}
		}
		for s, n := range gm {
			if wm[s] < n {
				extra = append(extra, s)
			}
		}
		sort.Strings(missing)
		sort.Strings(extra)
		trim := func(xs []string) []string {
			if len(xs) > 5 {
				return xs[:5]
			}
			return xs
		}
		if len(missing) > 0 || len(extra) > 0 {
			t.Fatalf("%s mismatch: %d missing (e.g. %q), %d extra (e.g. %q)",
				kind, len(missing), trim(missing), len(extra), trim(extra))
		}
	}
	check("node", NodeSignatures(want), NodeSignatures(got))
	check("edge", EdgeSignatures(want), EdgeSignatures(got))
}

// TestEmptyPlanIsNoOp: satellite criterion — planning against an
// untouched tree yields an empty plan, and applying it re-extracts
// nothing and does not bump the epoch.
func TestEmptyPlanIsNoOp(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	frontends := 0
	sess, res, err := NewSession(w.Build, countingOptions(w.ExtractOptions(), &frontends))
	if err != nil {
		t.Fatal(err)
	}
	if frontends != len(w.Build.Units) {
		t.Fatalf("initial extraction ran %d frontends, want %d", frontends, len(w.Build.Units))
	}
	plan, err := sess.Plan(w.Build)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Empty() {
		t.Fatalf("plan over untouched tree not empty: %+v", plan)
	}
	epochBefore := sess.Manifest().Epoch
	frontends = 0
	up, err := sess.Update(w.Build, res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if !up.NoOp {
		t.Fatal("update over untouched tree was not a no-op")
	}
	if frontends != 0 {
		t.Fatalf("no-op update ran %d frontends", frontends)
	}
	if up.Epoch != epochBefore || sess.Manifest().Epoch != epochBefore {
		t.Fatalf("no-op update bumped epoch %d -> %d", epochBefore, up.Epoch)
	}
	if !up.Diff.Zero() {
		t.Fatalf("no-op update reported diff %+v", up.Diff)
	}
}

// TestIncrementalMatchesRebuild: the tentpole acceptance criterion.
// Index a generated kernel tree, mutate under 5% of its files, update,
// and require (a) the incremental graph equals a from-scratch rebuild
// of the mutated tree by signature multiset, and (b) only dirty units
// went through the frontend, proven by counting extractor invocations.
func TestIncrementalMatchesRebuild(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Default())
	frontends := 0
	sess, res, err := NewSession(w.Build, countingOptions(w.ExtractOptions(), &frontends))
	if err != nil {
		t.Fatal(err)
	}
	totalUnits := len(w.Build.Units)
	if frontends != totalUnits {
		t.Fatalf("initial extraction ran %d frontends, want %d", frontends, totalUnits)
	}

	// Mutate ≤5% of the tree: pick a handful of .c files and append a new
	// function to each.
	var sources []string
	for _, u := range w.Build.Units {
		sources = append(sources, u.Source)
	}
	sort.Strings(sources)
	budget := len(w.FS) / 20 // 5%
	if budget > 5 {
		budget = 5
	}
	if budget < 1 {
		budget = 1
	}
	mutated := sources[:budget]
	for i, src := range mutated {
		w.FS[src] += fmt.Sprintf("\nint delta_added_%d(int x) { return x + %d; }\n", i, i)
	}

	frontends = 0
	up, err := sess.Update(w.Build, res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if up.NoOp {
		t.Fatal("mutating files produced a no-op update")
	}
	if got, want := len(up.Plan.Modified), len(mutated); got != want {
		t.Fatalf("plan found %d modified files, want %d: %v", got, want, up.Plan.Modified)
	}
	if frontends != len(mutated) {
		t.Fatalf("update ran %d frontends, want exactly the %d dirty units (of %d total)",
			frontends, len(mutated), totalUnits)
	}
	if up.Reextracted != frontends {
		t.Fatalf("Reextracted = %d, frontend count = %d", up.Reextracted, frontends)
	}
	if up.Diff.NodesAdded == 0 || up.Diff.EdgesAdded == 0 {
		t.Fatalf("adding functions reported diff %+v", up.Diff)
	}

	// From-scratch rebuild over the mutated tree must match exactly.
	scratch, err := extract.Run(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	sigsEqual(t, scratch.Graph, up.Result.Graph)

	// And the incremental graph vs itself must show a zero diff.
	if d := Compute(up.Result.Graph, scratch.Graph); !d.Zero() {
		t.Fatalf("incremental vs rebuild diff not zero: %+v", d)
	}
}

// relinkFixture is a two-unit program where b.c calls f through a
// header prototype and a.c provides the definition.
func relinkFixture() (cpp.MapFS, extract.Build) {
	fs := cpp.MapFS{
		"include/api.h": "int f(int x);\n",
		"a.c":           "#include \"include/api.h\"\nint f(int x) { return x + 1; }\n",
		"b.c":           "#include \"include/api.h\"\nint g(void) { return f(1); }\n",
	}
	build := extract.Build{
		Units: []extract.CompileUnit{
			{Source: "a.c", Object: "a.o"},
			{Source: "b.c", Object: "b.o"},
		},
		Modules: []extract.Module{{Name: "m.elf", Objects: []string{"a.o", "b.o"}}},
	}
	return fs, build
}

// callTarget finds caller's single outgoing calls edge and returns the
// callee node.
func callTarget(t *testing.T, src graph.Source, caller string) (graph.NodeID, model.NodeType) {
	t.Helper()
	ids, err := src.Lookup("short_name: \"" + caller + "\"")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if src.NodeType(id) != model.NodeFunction {
			continue
		}
		for _, eid := range src.Out(id) {
			_, to, et := src.EdgeEnds(eid)
			if et == model.EdgeCalls {
				return to, src.NodeType(to)
			}
		}
	}
	t.Fatalf("no calls edge out of %q", caller)
	return 0, ""
}

// TestRemovedDefinitionDegradesToDecl: satellite criterion — deleting
// the .c file that defines a function called elsewhere degrades the
// call edge to an unresolved reference (the function_decl node, with no
// declares/link_matches resolution), and re-adding the file restores
// the direct call edge.
func TestRemovedDefinitionDegradesToDecl(t *testing.T) {
	fs, build := relinkFixture()
	opts := extract.Options{FS: fs}
	sess, res, err := NewSession(build, opts)
	if err != nil {
		t.Fatal(err)
	}
	if to, typ := callTarget(t, res.Graph, "g"); typ != model.NodeFunction {
		t.Fatalf("baseline: g calls %v (node %d), want function", typ, to)
	}

	// Delete a.c: the file disappears and its unit drops out of the build.
	delete(fs, "a.c")
	removedBuild := extract.Build{
		Units:   []extract.CompileUnit{{Source: "b.c", Object: "b.o"}},
		Modules: []extract.Module{{Name: "m.elf", Objects: []string{"b.o"}}},
	}
	up, err := sess.Update(removedBuild, res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if up.NoOp {
		t.Fatal("removing a definition produced a no-op")
	}
	to, typ := callTarget(t, up.Result.Graph, "g")
	if typ != model.NodeFunctionDecl {
		t.Fatalf("after removal: g calls %v, want function_decl", typ)
	}
	// The decl must be unresolved: no declares/link_matches out-edge.
	for _, eid := range up.Result.Graph.Out(to) {
		_, _, et := up.Result.Graph.EdgeEnds(eid)
		if et == model.EdgeDeclares || et == model.EdgeLinkMatches {
			t.Fatalf("decl still resolves via %v after its definition was removed", et)
		}
	}
	// Matches a from-scratch extraction of the shrunken tree.
	scratch, err := extract.Run(removedBuild, extract.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	sigsEqual(t, scratch.Graph, up.Result.Graph)

	// Restore the file: the call edge goes back to the definition.
	fs["a.c"] = "#include \"include/api.h\"\nint f(int x) { return x + 1; }\n"
	up2, err := sess.Update(build, up.Result.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if _, typ := callTarget(t, up2.Result.Graph, "g"); typ != model.NodeFunction {
		t.Fatalf("after restore: g calls %v, want function", typ)
	}
	if len(up2.Plan.Added) == 0 {
		t.Fatalf("restoring a.c not classified as added: %+v", up2.Plan)
	}
}

// TestAddedHeaderSatisfiesProbe: a unit with a missing include becomes
// dirty when a file appears at a probed path.
func TestAddedHeaderSatisfiesProbe(t *testing.T) {
	fs := cpp.MapFS{
		"c.c": "#include \"opt.h\"\nint h(void) { return 0; }\n",
	}
	build := extract.Build{
		Units:   []extract.CompileUnit{{Source: "c.c", Object: "c.o"}},
		Modules: []extract.Module{{Name: "m.elf", Objects: []string{"c.o"}}},
	}
	frontends := 0
	sess, res, err := NewSession(build, countingOptions(extract.Options{FS: fs}, &frontends))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) == 0 {
		t.Fatal("missing include produced no diagnostic")
	}
	fs["opt.h"] = "#define OPT 1\n"
	frontends = 0
	up, err := sess.Update(build, res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if up.NoOp || frontends != 1 {
		t.Fatalf("adding probed header: noop=%v frontends=%d, want applied update re-extracting 1 unit", up.NoOp, frontends)
	}
	if len(up.Result.Errors) != 0 {
		t.Fatalf("diagnostics after header added: %v", up.Result.Errors)
	}
}

// TestSaveResume: session state round-trips through disk — a resumed
// session plans empty against an untouched tree and re-extracts nothing,
// and an update after resume still matches a from-scratch rebuild.
func TestSaveResume(t *testing.T) {
	dir := t.TempDir()
	w := kernelgen.Generate(kernelgen.Tiny())
	sess, res, err := NewSession(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SaveState(dir); err != nil {
		t.Fatal(err)
	}

	frontends := 0
	resumed, err := Resume(dir, countingOptions(w.ExtractOptions(), &frontends))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.NeedsRepair() {
		t.Fatal("clean resume marked units force-dirty")
	}
	plan, err := resumed.Plan(w.Build)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Empty() {
		t.Fatalf("resumed plan over untouched tree not empty: %+v", plan)
	}
	// The resumed session materialises the same graph without any
	// frontend work.
	re := resumed.Assemble(w.Build)
	if frontends != 0 {
		t.Fatalf("resume+assemble ran %d frontends", frontends)
	}
	sigsEqual(t, res.Graph, re.Graph)

	// Mutate one file; the resumed session updates to the rebuild state.
	src := w.Build.Units[0].Source
	w.FS[src] += "\nint resumed_added(void) { return 7; }\n"
	up, err := resumed.Update(w.Build, re.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if up.NoOp || frontends != 1 {
		t.Fatalf("resumed update: noop=%v frontends=%d, want 1 re-extraction", up.NoOp, frontends)
	}
	scratch, err := extract.Run(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	sigsEqual(t, scratch.Graph, up.Result.Graph)
}

// TestResumeLostCacheForcesReextract: a deleted cache entry degrades to
// a forced re-extraction of just that unit, not a failure.
func TestResumeLostCacheForcesReextract(t *testing.T) {
	dir := t.TempDir()
	w := kernelgen.Generate(kernelgen.Tiny())
	sess, res, err := NewSession(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	victim := w.Build.Units[0].Source
	if err := os.Remove(filepath.Join(dir, CacheDir, cacheName(victim))); err != nil {
		t.Fatal(err)
	}

	frontends := 0
	resumed, err := Resume(dir, countingOptions(w.ExtractOptions(), &frontends))
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.NeedsRepair() {
		t.Fatal("lost cache entry not flagged for repair")
	}
	up, err := resumed.Update(w.Build, nil)
	if err != nil {
		t.Fatal(err)
	}
	if up.NoOp || frontends != 1 {
		t.Fatalf("repair update: noop=%v frontends=%d, want 1", up.NoOp, frontends)
	}
	sigsEqual(t, res.Graph, up.Result.Graph)
	// Epoch advanced (state changed on disk even though the graph is the
	// same), and a second update is a clean no-op.
	up2, err := resumed.Update(w.Build, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !up2.NoOp {
		t.Fatal("second update after repair not a no-op")
	}
}

// TestJournal: append/load round-trip plus the audit rules — strictly
// increasing epochs and journal/manifest agreement.
func TestJournal(t *testing.T) {
	dir := t.TempDir()
	if problems := AuditJournal(dir); len(problems) != 0 {
		t.Fatalf("empty dir audit: %v", problems)
	}
	if err := AppendJournal(dir, Record{Epoch: 0, Time: "2026-08-05T00:00:00Z"}); err != nil {
		t.Fatal(err)
	}
	if err := AppendJournal(dir, Record{Epoch: 1, NodesAdded: 3}); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].NodesAdded != 3 {
		t.Fatalf("journal round-trip: %+v", recs)
	}
	// Journal without manifest is a problem.
	if problems := AuditJournal(dir); len(problems) != 1 {
		t.Fatalf("journal-without-manifest audit: %v", problems)
	}
	// Manifest at the journal's last epoch audits clean.
	if err := SaveManifest(dir, &Manifest{Version: 1, Epoch: 1, Files: map[string]string{}}); err != nil {
		t.Fatal(err)
	}
	if problems := AuditJournal(dir); len(problems) != 0 {
		t.Fatalf("consistent audit: %v", problems)
	}
	// Epoch regression is caught.
	if err := AppendJournal(dir, Record{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	problems := AuditJournal(dir)
	found := false
	for _, p := range problems {
		if strings.Contains(p.Error(), "not after") {
			found = true
		}
	}
	if !found {
		t.Fatalf("epoch regression not flagged: %v", problems)
	}
}

// TestManifestVersionGate: an unsupported manifest version refuses to
// load instead of misinterpreting state.
func TestManifestVersionGate(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("version gate: %v", err)
	}
}

// TestModuleChangeRelinks: changing only the link description dirties
// no unit but still rebuilds (the linker model is graph-visible).
func TestModuleChangeRelinks(t *testing.T) {
	fs, build := relinkFixture()
	frontends := 0
	sess, res, err := NewSession(build, countingOptions(extract.Options{FS: fs}, &frontends))
	if err != nil {
		t.Fatal(err)
	}
	relinked := build
	relinked.Modules = []extract.Module{{Name: "renamed.elf", Objects: []string{"a.o", "b.o"}}}
	frontends = 0
	up, err := sess.Update(relinked, res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if up.NoOp {
		t.Fatal("module rename produced a no-op")
	}
	if frontends != 0 {
		t.Fatalf("module rename re-extracted %d units, want 0", frontends)
	}
	scratch, err := extract.Run(relinked, extract.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	sigsEqual(t, scratch.Graph, up.Result.Graph)
}

// BenchmarkUpdate measures one incremental update that re-extracts a
// single dirty unit of the default generated kernel.
func BenchmarkUpdate(b *testing.B) {
	w := kernelgen.Generate(kernelgen.Default())
	sess, res, err := NewSession(w.Build, w.ExtractOptions())
	if err != nil {
		b.Fatal(err)
	}
	src := w.Build.Units[0].Source
	old := res.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.FS[src] += fmt.Sprintf("\nint bench_added_%d(void) { return %d; }\n", i, i)
		up, err := sess.Update(w.Build, old)
		if err != nil {
			b.Fatal(err)
		}
		if up.NoOp {
			b.Fatal("benchmark update was a no-op")
		}
		old = up.Result.Graph
	}
}
