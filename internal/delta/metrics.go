package delta

import "frappe/internal/obs"

// Incremental-update metrics. "Dirty" counts the units a plan sent back
// through the frontend, "clean" the units whose cached artifacts were
// reused — the ratio is the whole value proposition of the subsystem,
// so it is the first thing worth graphing for a live server.
var (
	mUpdates = obs.Default.Counter("frappe_delta_updates_total",
		"Incremental updates that produced a new graph.", nil)
	mNoops = obs.Default.Counter("frappe_delta_update_noops_total",
		"Incremental updates whose plan was empty (nothing changed).", nil)
	mDirty = obs.Default.Counter("frappe_delta_units_dirty_total",
		"Translation units re-extracted by incremental updates.", nil)
	mClean = obs.Default.Counter("frappe_delta_units_clean_total",
		"Translation units reused from cache by incremental updates.", nil)
)
