package delta

import (
	"encoding/json"

	"frappe/internal/atomicfile"
	"frappe/internal/graph"
	"frappe/internal/gstats"
	"frappe/internal/store"
)

// PersistUpdate writes everything one applied update produces — the new
// store files, the session's manifest/file-table/tucache state, and the
// journal record — into dir as ONE crash-consistent commit. A crash at
// any instant leaves the directory wholly at the previous epoch or
// wholly at the new one; in particular the journal can never claim an
// epoch whose store or manifest is missing, and vice versa.
func PersistUpdate(dir string, s *Session, g *graph.Graph, rec Record) error {
	return PersistUpdateWith(dir, s, g, rec, func(c *atomicfile.Commit) error {
		return store.StageTo(c, g)
	})
}

// PersistUpdateWith is PersistUpdate with the store layout under the
// caller's control: stage receives the open commit and stages the graph
// files however it likes (single store, sharded store), while the
// session state, graph statistics, and journal append ride in the same
// commit with the same crash-consistency guarantee.
func PersistUpdateWith(dir string, s *Session, g *graph.Graph, rec Record, stage func(*atomicfile.Commit) error) error {
	c, err := atomicfile.NewCommit(dir)
	if err != nil {
		return err
	}
	defer c.Abort()
	if err := stage(c); err != nil {
		return err
	}
	if err := s.StageState(c); err != nil {
		return err
	}
	// Graph statistics ride in the same commit so the planner's cost
	// inputs always describe the store files next to them. Collect is
	// deterministic over the graph, so an incrementally built epoch and
	// a from-scratch rebuild of it stage byte-identical statistics.
	if err := gstats.Stage(c, gstats.Collect(g)); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	c.Append(JournalFile, append(line, '\n'))
	return c.Publish()
}

// PersistIndex is PersistUpdate for a from-scratch index: the same
// atomic bundle, but the journal is replaced with just this record
// (epoch history restarts with a fresh extraction).
func PersistIndex(dir string, s *Session, g *graph.Graph, rec Record) error {
	return PersistIndexWith(dir, s, g, rec, func(c *atomicfile.Commit) error {
		return store.StageTo(c, g)
	})
}

// PersistIndexWith is PersistIndex with a caller-controlled store
// layout; see PersistUpdateWith.
func PersistIndexWith(dir string, s *Session, g *graph.Graph, rec Record, stage func(*atomicfile.Commit) error) error {
	c, err := atomicfile.NewCommit(dir)
	if err != nil {
		return err
	}
	defer c.Abort()
	if err := stage(c); err != nil {
		return err
	}
	if err := s.StageState(c); err != nil {
		return err
	}
	if err := gstats.Stage(c, gstats.Collect(g)); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := c.WriteFile(JournalFile, append(line, '\n')); err != nil {
		return err
	}
	return c.Publish()
}
