package delta

import (
	"sort"

	"frappe/internal/cpp"
	"frappe/internal/extract"
)

// Plan is the classification of the current source state against a
// manifest: which files changed and which translation units those
// changes dirty. An empty plan means the graph is already current.
type Plan struct {
	// Added lists files that did not exist at the last extraction and
	// now matter: new unit roots, and files satisfying (or shadowing) an
	// include probe some unit previously missed.
	Added []string
	// Modified lists manifest files whose content hash changed.
	Modified []string
	// Removed lists manifest files that no longer exist.
	Removed []string

	// NewUnits, DirtyUnits and RemovedUnits partition the build's
	// translation units (by source path): units to extract for the first
	// time, units to re-extract, and units to drop.
	NewUnits     []string
	DirtyUnits   []string
	RemovedUnits []string

	// ModulesChanged reports a link-description change, which re-runs the
	// linker model even with no dirty unit.
	ModulesChanged bool
}

// Empty reports whether applying the plan would change nothing.
func (p *Plan) Empty() bool {
	return len(p.Added) == 0 && len(p.Modified) == 0 && len(p.Removed) == 0 &&
		len(p.NewUnits) == 0 && len(p.DirtyUnits) == 0 && len(p.RemovedUnits) == 0 &&
		!p.ModulesChanged
}

// Reextract returns the unit sources the plan sends through the
// frontend, in the order build.Units lists them.
func (p *Plan) Reextract() []string {
	out := make([]string, 0, len(p.NewUnits)+len(p.DirtyUnits))
	out = append(out, p.NewUnits...)
	out = append(out, p.DirtyUnits...)
	return out
}

// lister is the optional enumeration side of a cpp.FileProvider; without
// it added-file detection degrades to probe misses never firing (a
// modified or removed file is still always detected).
type lister interface {
	ListFiles() ([]string, error)
}

// planUpdate classifies build against manifest m over the tree fs.
// forceDirty names units that must re-extract regardless of hashes (for
// example because their cached artifact was lost).
func planUpdate(m *Manifest, build extract.Build, fs cpp.FileProvider, forceDirty map[string]bool) (*Plan, error) {
	p := &Plan{}

	// File-level classification: hash every path the last extraction read.
	modified := map[string]bool{}
	removed := map[string]bool{}
	for path, oldHash := range m.Files {
		h, ok := hashFile(fs, path)
		switch {
		case !ok && oldHash == "":
			// Was missing then, still missing: unchanged.
		case !ok:
			removed[path] = true
		case h != oldHash:
			modified[path] = true
		}
	}

	// Added-file detection: anything on disk the manifest has never seen.
	added := map[string]bool{}
	if l, ok := fs.(lister); ok {
		paths, err := l.ListFiles()
		if err != nil {
			return nil, err
		}
		for _, path := range paths {
			if _, known := m.Files[path]; !known {
				added[path] = true
			}
		}
	}

	// Unit-level classification.
	inBuild := map[string]bool{}
	for _, u := range build.Units {
		inBuild[u.Source] = true
	}
	oldTU := map[string]*TUState{}
	for i := range m.TUs {
		oldTU[m.TUs[i].Source] = &m.TUs[i]
		if !inBuild[m.TUs[i].Source] {
			p.RemovedUnits = append(p.RemovedUnits, m.TUs[i].Source)
		}
	}
	// addedMatters collects only the added files that influence some unit.
	addedMatters := map[string]bool{}
	for _, u := range build.Units {
		st, known := oldTU[u.Source]
		if !known {
			p.NewUnits = append(p.NewUnits, u.Source)
			if _, tracked := m.Files[u.Source]; !tracked {
				addedMatters[u.Source] = true
			}
			continue
		}
		dirty := forceDirty[u.Source] || st.Object != u.Object
		for _, d := range st.Deps {
			if modified[d] || removed[d] {
				dirty = true
				break
			}
		}
		if !dirty {
			for _, probe := range st.Probes {
				if added[probe] {
					dirty = true
					addedMatters[probe] = true
					break
				}
			}
		}
		if dirty {
			p.DirtyUnits = append(p.DirtyUnits, u.Source)
		}
	}

	p.Added = sortedKeys(addedMatters)
	p.Modified = sortedKeys(modified)
	p.Removed = sortedKeys(removed)
	sort.Strings(p.RemovedUnits)
	p.ModulesChanged = !modulesEqual(m.Modules, build.Modules)
	return p, nil
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
