// Package delta is Frappé's incremental update subsystem. The paper
// integrates extraction into the build so the dependency graph tracks a
// codebase that changes daily without full rebuilds; this package is that
// integration point for a long-running service:
//
//	manifest — per-file content hashes and per-TU include closures,
//	           persisted alongside the store (delta.manifest.json);
//	plan     — classify the current tree against the manifest into
//	           added/modified/removed files and the dirty translation
//	           units they imply;
//	apply    — re-run the extraction frontend (preprocess + parse) for
//	           only the dirty units, re-assemble the graph from cached
//	           artifacts, and diff it against the live graph;
//	journal  — an append-only record of every applied update
//	           (delta.journal), audited by `frappe verify`;
//	swap     — core.Engine publishes the new graph behind an atomic
//	           pointer so in-flight queries finish on the old snapshot.
package delta

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"frappe/internal/atomicfile"
	"frappe/internal/cpp"
	"frappe/internal/extract"
)

// Store-directory entries owned by the delta subsystem.
const (
	// ManifestFile records file hashes and TU dependency closures.
	ManifestFile = "delta.manifest.json"
	// JournalFile is the append-only update history (JSON lines).
	JournalFile = "delta.journal"
	// CacheDir holds the per-TU frontend cache (gob) plus the file table.
	CacheDir = "tucache"
	// fileTableFile persists the run-wide FileID interning order.
	fileTableFile = "filetable.json"
)

// manifestVersion guards the manifest JSON layout.
const manifestVersion = 1

// TUState is the manifest's record of one translation unit.
type TUState struct {
	Source string `json:"source"`
	Object string `json:"object"`
	// Deps is the unit's include closure — the root source plus every
	// file the preprocessor folded in — sorted.
	Deps []string `json:"deps"`
	// Probes lists include candidates the unit tested and did not find;
	// a file appearing at one of these paths changes the unit's include
	// resolution, so it dirties the unit.
	Probes []string `json:"probes,omitempty"`
}

// Manifest captures the source state a graph was extracted from. Plan
// compares a manifest against the current tree to decide what must be
// re-extracted.
type Manifest struct {
	Version int   `json:"version"`
	Epoch   int64 `json:"epoch"`
	// Files maps every path read during extraction to the hex SHA-256 of
	// its content at extraction time.
	Files map[string]string `json:"files"`
	// TUs lists the build's translation units in build order.
	TUs []TUState `json:"tus"`
	// Modules is the build's link description; a change re-runs the
	// linker model even when no file changed.
	Modules []extract.Module `json:"modules"`
}

// HashBytes returns the manifest's content hash encoding (hex SHA-256).
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// hashFile reads and hashes one path through the extraction file system;
// ok is false when the file does not exist.
func hashFile(fs cpp.FileProvider, path string) (string, bool) {
	src, err := fs.ReadFile(path)
	if err != nil {
		return "", false
	}
	return HashBytes([]byte(src)), true
}

// SaveManifest writes m atomically (temp file + rename) into dir.
func SaveManifest(dir string, m *Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, ManifestFile), append(b, '\n'))
}

// LoadManifest reads dir's manifest. It returns os.ErrNotExist (wrapped)
// when the store has no manifest — a legacy store indexed before the
// incremental subsystem, or one whose state was removed.
func LoadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("delta: %s: %w", ManifestFile, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("delta: %s: unsupported version %d", ManifestFile, m.Version)
	}
	return &m, nil
}

// atomicWrite writes b to path atomically AND durably (temp file, fsync,
// rename, directory fsync — see internal/atomicfile). The previous
// implementation renamed without syncing, so a power cut shortly after a
// manifest save could surface an empty or missing manifest.
func atomicWrite(path string, b []byte) error {
	return atomicfile.WriteFile(path, b, 0o644)
}

// modulesEqual compares two link descriptions (order-sensitive, as link
// order is graph-visible via LINK_ORDER).
func modulesEqual(a, b []extract.Module) bool {
	if len(a) != len(b) {
		return false
	}
	return reflect.DeepEqual(a, b)
}

// artifactDeps derives a sorted include-closure path list for one
// artifact: the root source plus every include target.
func artifactDeps(a *extract.UnitArtifact, files *cpp.FileTable) []string {
	seen := map[string]bool{files.Path(a.RootFile): true}
	for _, inc := range a.PP.Includes {
		seen[files.Path(inc.To)] = true
	}
	deps := make([]string, 0, len(seen))
	for p := range seen {
		deps = append(deps, p)
	}
	sort.Strings(deps)
	return deps
}

// buildManifest records the state of a completed (full or incremental)
// extraction: build units in order, their dep closures and probes, and
// the content hash of every file read.
func buildManifest(build extract.Build, arts map[string]*extract.UnitArtifact, files *cpp.FileTable, fs cpp.FileProvider, epoch int64) *Manifest {
	m := &Manifest{
		Version: manifestVersion,
		Epoch:   epoch,
		Files:   map[string]string{},
		Modules: build.Modules,
	}
	hashed := map[string]bool{}
	record := func(p string) {
		if hashed[p] {
			return
		}
		hashed[p] = true
		h, _ := hashFile(fs, p) // missing file hashes to ""; any later content differs
		m.Files[p] = h
	}
	for _, u := range build.Units {
		st := TUState{Source: u.Source, Object: u.Object}
		if a := arts[u.Source]; a != nil {
			st.Deps = artifactDeps(a, files)
			st.Probes = append([]string(nil), a.PP.Probes...)
			sort.Strings(st.Probes)
		} else {
			// Frontend failed for this unit: track just the root source so
			// a content change retries it.
			st.Deps = []string{u.Source}
		}
		for _, d := range st.Deps {
			record(d)
		}
		m.TUs = append(m.TUs, st)
	}
	return m
}
