package delta

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"frappe/internal/atomicfile"
	"frappe/internal/kernelgen"
	"frappe/internal/store"
)

// fingerprint maps every file under dir (relative slash path) to its
// contents. Commit-protocol internals must be gone by the time it runs.
func fingerprint(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, p)
		out[filepath.ToSlash(rel)] = string(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func statesEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// copyDir clones src into a fresh temp dir (regular files only — the
// store dir holds nothing else).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, p)
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(p)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestUpdateCrashTorture is the tentpole acceptance test: kill a full
// update persist (store files + manifest + file table + tucache + journal
// append, all one commit) at EVERY registered crash point and require the
// recovered directory to be byte-identical to either the pre-update or
// the post-update state — never a mix — with the survivor passing both
// the store fsck and the journal audit.
func TestUpdateCrashTorture(t *testing.T) {
	// Epoch 0: index a tiny workload and persist it as the pre-state.
	w := kernelgen.Generate(kernelgen.Tiny())
	sess, res, err := NewSession(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "db")
	rec0 := Record{Epoch: 0, Time: "2026-08-08T00:00:00Z",
		NodeCount: res.Graph.NodeCount(), EdgeCount: res.Graph.EdgeCount()}
	if err := PersistIndex(base, sess, res.Graph, rec0); err != nil {
		t.Fatal(err)
	}
	if rep, err := store.Verify(base); err != nil || !rep.OK() {
		t.Fatalf("pre-state store does not verify: %v %v", err, rep.Problems)
	}
	pre := fingerprint(t, base)

	// The update every run will replay: one mutated source file. Staging
	// is deterministic (sorted sources, gob without maps, sorted JSON
	// keys, fixed Record.Time), so every run stages identical bytes.
	src := w.Build.Units[0].Source
	w.FS[src] += "\nint crash_torture_added(void) { return 42; }\n"

	// persistOnce resumes a copy of the pre-state, applies the update and
	// persists it; the caller controls the crash plan.
	persistOnce := func(dir string) error {
		sess, err := Resume(dir, w.ExtractOptions())
		if err != nil {
			t.Fatalf("resume %s: %v", dir, err)
		}
		up, err := sess.Update(w.Build, nil)
		if err != nil {
			t.Fatalf("update: %v", err)
		}
		if up.NoOp {
			t.Fatal("mutation produced a no-op update")
		}
		rec := Record{Epoch: up.Epoch, Time: "2026-08-08T00:01:00Z",
			UnitsReextracted: up.Reextracted,
			NodeCount:        up.Result.Graph.NodeCount(),
			EdgeCount:        up.Result.Graph.EdgeCount()}
		return PersistUpdate(dir, sess, up.Result.Graph, rec)
	}

	// Trace run: enumerate the kill schedule and capture the post-state.
	traceDir := copyDir(t, base)
	trace := &atomicfile.CrashPlan{}
	atomicfile.SetCrashPlan(trace)
	err = persistOnce(traceDir)
	atomicfile.ClearCrashPlan()
	if err != nil {
		t.Fatalf("trace persist: %v", err)
	}
	post := fingerprint(t, traceDir)
	if statesEqual(pre, post) {
		t.Fatal("update did not change the directory; torture would prove nothing")
	}
	n := trace.Count()
	if n < 20 {
		t.Fatalf("suspiciously few crash points for a full update: %d (%v)", n, trace.Points())
	}

	for kill := 1; kill <= n; kill++ {
		dir := copyDir(t, base)
		plan := &atomicfile.CrashPlan{KillAt: kill}
		atomicfile.SetCrashPlan(plan)
		err := persistOnce(dir)
		atomicfile.ClearCrashPlan()
		var ce *atomicfile.CrashError
		if !errors.As(err, &ce) {
			t.Fatalf("kill %d: expected injected crash, got %v", kill, err)
		}

		// "Restart": recovery must land on exactly pre or post.
		if _, err := atomicfile.Recover(dir); err != nil {
			t.Fatalf("kill %d (%s): recover: %v", kill, ce.Point, err)
		}
		got := fingerprint(t, dir)
		atPre := statesEqual(got, pre)
		atPost := statesEqual(got, post)
		if !atPre && !atPost {
			t.Fatalf("kill %d (%s): recovered state is neither pre nor post (%d files)",
				kill, ce.Point, len(got))
		}

		// The survivor must be fully servable: store fsck + journal audit.
		rep, err := store.Verify(dir)
		if err != nil {
			t.Fatalf("kill %d (%s): verify: %v", kill, ce.Point, err)
		}
		if !rep.OK() {
			t.Fatalf("kill %d (%s, at %s): store verify: %v", kill, ce.Point,
				map[bool]string{true: "pre"}[atPre], rep.Problems)
		}
		if problems := AuditJournal(dir); len(problems) != 0 {
			t.Fatalf("kill %d (%s): journal audit: %v", kill, ce.Point, problems)
		}
	}
}
