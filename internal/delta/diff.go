package delta

import (
	"sort"
	"strings"

	"frappe/internal/graph"
	"frappe/internal/model"
)

// Diff summarises the node and edge additions and retractions between
// two graph states. It is computed over canonical signatures, not IDs:
// node and edge IDs are dense and renumber on every materialisation, and
// FILE_ID properties are per-run interning order, so raw comparison
// would report spurious churn. Signatures replace file IDs with paths
// and anchor every entity to its defining location, which makes the diff
// (and the incremental-vs-rebuild equivalence tests) exact.
type Diff struct {
	NodesAdded   int `json:"nodesAdded"`
	NodesRemoved int `json:"nodesRemoved"`
	EdgesAdded   int `json:"edgesAdded"`
	EdgesRemoved int `json:"edgesRemoved"`
}

// Zero reports whether the diff records no change.
func (d Diff) Zero() bool {
	return d.NodesAdded == 0 && d.NodesRemoved == 0 && d.EdgesAdded == 0 && d.EdgesRemoved == 0
}

// Compute diffs new against old by signature multiset.
func Compute(old, new graph.Source) Diff {
	var d Diff
	oldNodes := countMultiset(NodeSignatures(old))
	newNodes := countMultiset(NodeSignatures(new))
	d.NodesAdded, d.NodesRemoved = multisetDelta(oldNodes, newNodes)
	oldEdges := countMultiset(EdgeSignatures(old))
	newEdges := countMultiset(EdgeSignatures(new))
	d.EdgesAdded, d.EdgesRemoved = multisetDelta(oldEdges, newEdges)
	return d
}

func countMultiset(sigs []string) map[string]int {
	m := make(map[string]int, len(sigs))
	for _, s := range sigs {
		m[s]++
	}
	return m
}

// multisetDelta returns how many signatures new gained and lost.
func multisetDelta(old, new map[string]int) (added, removed int) {
	for sig, n := range new {
		if extra := n - old[sig]; extra > 0 {
			added += extra
		}
	}
	for sig, n := range old {
		if lost := n - new[sig]; lost > 0 {
			removed += lost
		}
	}
	return added, removed
}

// sigTable caches per-graph canonicalisation state.
type sigTable struct {
	src      graph.Source
	pathByID map[int64]string // FILE_ID -> file path
	nodeSigs []string
}

func newSigTable(src graph.Source) *sigTable {
	t := &sigTable{src: src, pathByID: map[int64]string{}}
	n := src.NodeCount()
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		if src.NodeType(id) != model.NodeFile {
			continue
		}
		fid, ok := src.NodeProp(id, "FILE_ID")
		if !ok {
			continue
		}
		if p, ok := src.NodeProp(id, model.PropName); ok {
			t.pathByID[fid.AsInt()] = p.AsString()
		}
	}
	return t
}

// fileIDKeys are the properties whose values are run-local file IDs.
var fileIDKeys = map[string]bool{
	"FILE_ID":            true,
	model.PropUseFileID:  true,
	model.PropNameFileID: true,
}

// propsSig renders a property list canonically: keys sorted, file IDs
// replaced by paths.
func (t *sigTable) propsSig(ps graph.Props) string {
	if len(ps) == 0 {
		return ""
	}
	parts := make([]string, 0, len(ps))
	for _, p := range ps {
		v := p.Val.String()
		if fileIDKeys[strings.ToUpper(p.Key)] && p.Val.Kind() == graph.KindInt {
			v = "path:" + t.pathByID[p.Val.AsInt()]
		}
		parts = append(parts, strings.ToUpper(p.Key)+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// nodeSig canonically identifies one node: concrete type, properties
// (with file paths for file IDs), and the defining location from its
// incoming file_contains edge — which disambiguates same-named entities
// such as file-static functions defined in different files.
func (t *sigTable) nodeSig(id graph.NodeID) string {
	if t.nodeSigs == nil {
		t.nodeSigs = make([]string, t.src.NodeCount())
	}
	if s := t.nodeSigs[id]; s != "" {
		return s
	}
	var b strings.Builder
	b.WriteString(string(t.src.NodeType(id)))
	b.WriteByte('|')
	b.WriteString(t.propsSig(t.src.NodeProps(id)))
	for _, eid := range t.src.In(id) {
		from, _, et := t.src.EdgeEnds(eid)
		if et != model.EdgeFileContains {
			continue
		}
		b.WriteString("|@")
		if p, ok := t.src.NodeProp(from, model.PropName); ok {
			b.WriteString(p.AsString())
		}
		if l, ok := t.src.EdgeProp(eid, model.PropNameStartLine); ok {
			b.WriteByte(':')
			b.WriteString(l.String())
		}
		if c, ok := t.src.EdgeProp(eid, model.PropNameStartCol); ok {
			b.WriteByte(':')
			b.WriteString(c.String())
		}
		break
	}
	s := b.String()
	t.nodeSigs[id] = s
	return s
}

// NodeSignatures returns the canonical signature of every node. Two
// graph states describe the same code exactly when their node and edge
// signature multisets are equal.
func NodeSignatures(src graph.Source) []string {
	t := newSigTable(src)
	n := src.NodeCount()
	out := make([]string, n)
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		out[id] = t.nodeSig(id)
	}
	return out
}

// EdgeSignatures returns the canonical signature of every edge:
// endpoint node signatures, edge type, and canonicalised properties.
func EdgeSignatures(src graph.Source) []string {
	t := newSigTable(src)
	n := src.EdgeCount()
	out := make([]string, n)
	for id := graph.EdgeID(0); id < graph.EdgeID(n); id++ {
		from, to, et := src.EdgeEnds(id)
		out[id] = t.nodeSig(from) + " -[" + string(et) + "|" + t.propsSig(src.EdgeProps(id)) + "]-> " + t.nodeSig(to)
	}
	return out
}
