package delta

import (
	"reflect"
	"testing"

	"frappe/internal/extract"
	"frappe/internal/kernelgen"
)

// TestParallelSessionMatchesSerial: a session running its frontends
// across a worker pool must be indistinguishable from a serial one —
// same file table, same graph, and the same behaviour through an
// incremental update. Both sessions share one workload FS so the
// comparison never depends on generator determinism.
func TestParallelSessionMatchesSerial(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())

	serialSess, serialRes, err := NewSession(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	popts := w.ExtractOptions()
	popts.Jobs = 8
	parSess, parRes, err := NewSession(w.Build, popts)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serialSess.Files().Paths(), parSess.Files().Paths()) {
		t.Fatalf("file tables diverge after initial extraction:\nserial   %d paths\nparallel %d paths",
			len(serialSess.Files().Paths()), len(parSess.Files().Paths()))
	}
	sigsEqual(t, serialRes.Graph, parRes.Graph)
	if d := Compute(serialRes.Graph, parRes.Graph); !d.Zero() {
		t.Fatalf("serial vs parallel initial graph diff not zero: %+v", d)
	}

	// Mutate one unit in the shared FS; both sessions must plan the same
	// update, re-extract only that unit, and converge on the same graph.
	src := w.Build.Units[0].Source
	w.FS[src] += "\nint parallel_added(int x) { return x + 41; }\n"

	upS, err := serialSess.Update(w.Build, serialRes.Graph)
	if err != nil {
		t.Fatal(err)
	}
	upP, err := parSess.Update(w.Build, parRes.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if upS.NoOp || upP.NoOp {
		t.Fatalf("mutation was a no-op: serial=%v parallel=%v", upS.NoOp, upP.NoOp)
	}
	if upS.Reextracted != 1 || upP.Reextracted != 1 {
		t.Fatalf("reextracted serial=%d parallel=%d, want 1 each", upS.Reextracted, upP.Reextracted)
	}
	sigsEqual(t, upS.Result.Graph, upP.Result.Graph)
	if d := Compute(upS.Result.Graph, upP.Result.Graph); !d.Zero() {
		t.Fatalf("serial vs parallel updated graph diff not zero: %+v", d)
	}
	if upS.Diff != upP.Diff {
		t.Fatalf("update diffs diverge: serial %+v, parallel %+v", upS.Diff, upP.Diff)
	}
}

// TestParallelSessionFailedUnit: a unit that hard-fails under a
// parallel session must be retried and recovered by a later update,
// exactly as the serial path does.
func TestParallelSessionFailedUnit(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	src := w.Build.Units[0].Source
	good := w.FS[src]
	w.FS[src] = "#include \"no_such_header_anywhere.h\"\n" + good

	opts := w.ExtractOptions()
	opts.Jobs = 4
	sess, res, err := NewSession(w.Build, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) == 0 {
		t.Fatal("broken unit produced no extraction errors under a parallel session")
	}

	w.FS[src] = good
	up, err := sess.Update(w.Build, res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if up.NoOp {
		t.Fatal("repairing the unit was a no-op")
	}
	if len(up.Result.Errors) != 0 {
		t.Fatalf("errors survived the repair: %v", up.Result.Errors)
	}

	// The repaired session must match a from-scratch extraction.
	scratch, err := extract.Run(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	sigsEqual(t, scratch.Graph, up.Result.Graph)
}
