package delta

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"sort"

	"frappe/internal/atomicfile"
	"frappe/internal/cparse"
	"frappe/internal/cpp"
	"frappe/internal/extract"
	"frappe/internal/graph"
)

// Session owns the state an incremental extractor carries between
// updates: the shared file table (so FileIDs stay stable across
// updates), the frontend artifact of every live translation unit, and
// the manifest describing the source state those artifacts were built
// from. A Session is not safe for concurrent use; callers serialise
// updates (core.Engine holds one update lock).
type Session struct {
	opts     extract.Options
	files    *cpp.FileTable
	arts     map[string]*extract.UnitArtifact
	manifest *Manifest
	// failed records units whose last frontend attempt hard-failed, so
	// subsequent assembles keep reporting the error exactly as a
	// from-scratch run would.
	failed map[string]error
	// forceDirty marks units whose cached artifact could not be restored
	// and must re-extract on the next update regardless of hashes.
	forceDirty map[string]bool
}

// NewSession runs a full extraction over build and returns the session
// plus its result. Equivalent to extract.Run (including its opts.Jobs
// frontend fan-out), but retaining the state later Update calls need.
func NewSession(build extract.Build, opts extract.Options) (*Session, *extract.Result, error) {
	s := &Session{
		opts:       opts,
		files:      cpp.NewFileTable(),
		arts:       map[string]*extract.UnitArtifact{},
		failed:     map[string]error{},
		forceDirty: map[string]bool{},
	}
	s.runFrontends(build.Units)
	res := s.assemble(build)
	s.manifest = buildManifest(build, s.arts, s.files, opts.FS, 0)
	return s, res, nil
}

// Manifest returns the session's current manifest.
func (s *Session) Manifest() *Manifest { return s.manifest }

// Files returns the session's file table.
func (s *Session) Files() *cpp.FileTable { return s.files }

// Plan classifies the current tree against the session's manifest.
func (s *Session) Plan(build extract.Build) (*Plan, error) {
	return planUpdate(s.manifest, build, s.opts.FS, s.forceDirty)
}

// Update is the outcome of one incremental update.
type Update struct {
	Plan *Plan
	// Result is the freshly assembled extraction (nil when NoOp).
	Result *extract.Result
	// Diff is the change against the old graph passed to Session.Update
	// (zero when NoOp or when no old graph was supplied).
	Diff Diff
	// Epoch is the manifest epoch after the update.
	Epoch int64
	// Reextracted counts the translation units sent through the frontend.
	Reextracted int
	// NoOp reports that the plan was empty: nothing was re-extracted, no
	// new graph was built, and the epoch did not advance.
	NoOp bool
}

// Update plans against build, re-runs the frontend for only the dirty
// units, re-assembles the graph from cached artifacts, and diffs it
// against old (the live graph; nil skips the diff). An empty plan is a
// no-op: the epoch does not advance and no graph is built.
func (s *Session) Update(build extract.Build, old graph.Source) (*Update, error) {
	plan, err := s.Plan(build)
	if err != nil {
		return nil, err
	}
	if plan.Empty() {
		mNoops.Inc()
		return &Update{Plan: plan, Epoch: s.manifest.Epoch, NoOp: true}, nil
	}
	for _, src := range plan.RemovedUnits {
		delete(s.arts, src)
		delete(s.failed, src)
		delete(s.forceDirty, src)
	}
	unitBySource := make(map[string]extract.CompileUnit, len(build.Units))
	for _, u := range build.Units {
		unitBySource[u.Source] = u
	}
	reext := plan.Reextract()
	units := make([]extract.CompileUnit, 0, len(reext))
	for _, src := range reext {
		u, ok := unitBySource[src]
		if !ok {
			return nil, fmt.Errorf("delta: plan names unit %q not in build", src)
		}
		delete(s.forceDirty, src)
		units = append(units, u)
	}
	s.runFrontends(units)
	res := s.assemble(build)
	up := &Update{
		Plan:        plan,
		Result:      res,
		Epoch:       s.manifest.Epoch + 1,
		Reextracted: len(reext),
	}
	if old != nil {
		up.Diff = Compute(old, res.Graph)
	}
	s.manifest = buildManifest(build, s.arts, s.files, s.opts.FS, up.Epoch)
	mUpdates.Inc()
	mDirty.Add(int64(len(reext)))
	mClean.Add(int64(len(build.Units) - len(reext)))
	return up, nil
}

// runFrontends sends units through the extraction frontend — fanned out
// per the session's opts.Jobs, with the deterministic in-order merge of
// extract.Frontends so FileIDs stay identical to a serial run — and
// folds the outcomes into the session's artifact/failure maps. A failed
// unit's stale artifact must not survive the attempt.
func (s *Session) runFrontends(units []extract.CompileUnit) {
	arts, errs := extract.Frontends(units, s.opts, s.files)
	for i, u := range units {
		if a := arts[i]; a != nil {
			delete(s.failed, u.Source)
			s.arts[u.Source] = a
			continue
		}
		delete(s.arts, u.Source)
		s.failed[u.Source] = errs[u.Source]
	}
}

// Assemble materialises the graph from the session's current artifacts
// without planning or re-extraction — how a resumed server session
// rebuilds the in-memory graph it will serve. Units whose artifact
// could not be restored are absent until the next Update re-extracts
// them (Resume marks them force-dirty).
func (s *Session) Assemble(build extract.Build) *extract.Result {
	return s.assemble(build)
}

// NeedsRepair reports whether any unit lost its cached artifact and
// must be re-extracted before the assembled graph is complete.
func (s *Session) NeedsRepair() bool { return len(s.forceDirty) > 0 }

// assemble re-runs the emission phases over the session's artifacts in
// build-unit order, prepending persistent frontend errors the way
// extract.Run does.
func (s *Session) assemble(build extract.Build) *extract.Result {
	arts := make([]*extract.UnitArtifact, 0, len(s.arts))
	var hard []error
	for _, u := range build.Units {
		if a := s.arts[u.Source]; a != nil {
			arts = append(arts, a)
		} else if err := s.failed[u.Source]; err != nil {
			hard = append(hard, err)
		}
	}
	res := extract.Assemble(arts, build.Modules, s.opts, s.files)
	res.Errors = append(hard, res.Errors...)
	return res
}

// cachedTU is the gob layout of one persisted frontend artifact. The
// token stream is enough to rebuild the AST (cparse.Parse is cheap and
// deterministic); hide sets on tokens are post-expansion bookkeeping and
// need not survive.
type cachedTU struct {
	Source   string
	Object   string
	RootFile cpp.FileID

	Tokens         []cpp.Token
	Includes       []cpp.IncludeRecord
	Expansions     []cpp.ExpansionRecord
	Interrogations []cpp.InterrogationRecord
	MacroDefs      []cpp.MacroDefRecord
	Probes         []string
	// PPDiags holds preprocessor diagnostics as strings (errors do not
	// gob-encode); parser diagnostics are regenerated by the reparse.
	PPDiags []string
}

// fileTableState is the JSON layout of the persisted file table: paths
// in FileID order, so re-interning them in order restores every ID.
type fileTableState struct {
	Paths []string `json:"paths"`
}

// cacheName returns the tucache entry name for a unit source path.
func cacheName(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])[:20] + ".gob"
}

// SaveState persists the session next to the store in dir: the manifest,
// the file table, and one gob per translation-unit artifact under
// tucache/. Stale cache entries are removed. The whole save is one
// crash-consistent commit: a crash leaves either the previous state or
// the new one, never a mix.
func (s *Session) SaveState(dir string) error {
	c, err := atomicfile.NewCommit(dir)
	if err != nil {
		return err
	}
	defer c.Abort()
	if err := s.StageState(c); err != nil {
		return err
	}
	return c.Publish()
}

// StageState stages the session's persistent state — manifest, file
// table, per-unit artifact gobs, and removals of stale cache entries —
// into an open commit without publishing it, so callers can bundle the
// session with the store files and a journal record into one atomic unit
// (see PersistUpdate).
func (s *Session) StageState(c *atomicfile.Commit) error {
	ft, err := json.Marshal(fileTableState{Paths: s.files.Paths()})
	if err != nil {
		return err
	}
	if err := c.WriteFile(path.Join(CacheDir, fileTableFile), append(ft, '\n')); err != nil {
		return err
	}
	keep := map[string]bool{fileTableFile: true}
	sources := make([]string, 0, len(s.arts))
	for src := range s.arts {
		sources = append(sources, src)
	}
	sort.Strings(sources) // deterministic staging (and crash-point) order
	for _, src := range sources {
		a := s.arts[src]
		ct := cachedTU{
			Source:         a.Unit.Source,
			Object:         a.Unit.Object,
			RootFile:       a.RootFile,
			Tokens:         a.PP.Tokens,
			Includes:       a.PP.Includes,
			Expansions:     a.PP.Expansions,
			Interrogations: a.PP.Interrogations,
			MacroDefs:      a.PP.MacroDefs,
			Probes:         a.PP.Probes,
		}
		for _, e := range a.PP.Errors {
			ct.PPDiags = append(ct.PPDiags, e.Error())
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&ct); err != nil {
			return fmt.Errorf("delta: encode %s: %w", src, err)
		}
		name := cacheName(src)
		keep[name] = true
		if err := c.WriteFile(path.Join(CacheDir, name), buf.Bytes()); err != nil {
			return err
		}
	}
	// Stale entries present in the live cache dir are deleted as part of
	// the commit (a missing file at replay time is fine).
	entries, err := os.ReadDir(filepath.Join(c.Dir(), CacheDir))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	for _, e := range entries {
		if !keep[e.Name()] && filepath.Ext(e.Name()) == ".gob" {
			c.Delete(path.Join(CacheDir, e.Name()))
		}
	}

	mb, err := json.MarshalIndent(s.manifest, "", "  ")
	if err != nil {
		return err
	}
	return c.WriteFile(ManifestFile, append(mb, '\n'))
}

// Resume restores a session saved by SaveState. Artifacts whose cache
// entry is missing or unreadable are marked force-dirty: the next Update
// re-extracts them instead of failing. Returns os.ErrNotExist (wrapped)
// when dir has no manifest.
func Resume(dir string, opts extract.Options) (*Session, error) {
	// A previous process may have died mid-commit; finish or discard its
	// work before reading any state, so manifest, tucache and journal are
	// seen at a single consistent epoch. Idempotent and cheap when clean.
	if _, err := atomicfile.Recover(dir); err != nil {
		return nil, fmt.Errorf("delta: recovering %s: %w", dir, err)
	}
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	s := &Session{
		opts:       opts,
		files:      cpp.NewFileTable(),
		arts:       map[string]*extract.UnitArtifact{},
		failed:     map[string]error{},
		forceDirty: map[string]bool{},
		manifest:   m,
	}
	cache := filepath.Join(dir, CacheDir)
	ftb, err := os.ReadFile(filepath.Join(cache, fileTableFile))
	if err != nil {
		return nil, fmt.Errorf("delta: %s: %w", fileTableFile, err)
	}
	var ft fileTableState
	if err := json.Unmarshal(ftb, &ft); err != nil {
		return nil, fmt.Errorf("delta: %s: %w", fileTableFile, err)
	}
	for _, p := range ft.Paths {
		s.files.Intern(p)
	}
	for _, tu := range m.TUs {
		a, err := loadArtifact(filepath.Join(cache, cacheName(tu.Source)), tu.Source, opts)
		if err != nil {
			// No cached frontend for this unit — either it hard-failed last
			// time (never cached) or the entry is lost/corrupt. Force a
			// re-extraction attempt on the next update.
			s.forceDirty[tu.Source] = true
			continue
		}
		s.arts[tu.Source] = a
	}
	return s, nil
}

// loadArtifact reads one tucache entry and rebuilds the artifact,
// reparsing the AST from the cached token stream.
func loadArtifact(path, source string, opts extract.Options) (*extract.UnitArtifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c cachedTU
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&c); err != nil {
		return nil, fmt.Errorf("delta: decode %s: %w", path, err)
	}
	if c.Source != source {
		return nil, fmt.Errorf("delta: cache entry %s is for %q, want %q", path, c.Source, source)
	}
	pp := &cpp.Result{
		Tokens:         c.Tokens,
		Includes:       c.Includes,
		Expansions:     c.Expansions,
		Interrogations: c.Interrogations,
		MacroDefs:      c.MacroDefs,
		Probes:         c.Probes,
	}
	for _, d := range c.PPDiags {
		pp.Errors = append(pp.Errors, errors.New(d))
	}
	ast := cparse.Parse(pp.Tokens, opts.Typedefs)
	var diags []error
	diags = append(diags, pp.Errors...)
	diags = append(diags, ast.Errors...)
	return &extract.UnitArtifact{
		Unit:     extract.CompileUnit{Source: c.Source, Object: c.Object},
		RootFile: c.RootFile,
		PP:       pp,
		AST:      ast,
		Diags:    diags,
	}, nil
}
