// Package cpp implements the C preprocessor half of Frappé's extractor:
// tokenisation, #include resolution, object- and function-like macros
// with # and ## operators, conditional compilation with full constant
// expression evaluation, and — crucially for the graph model — the
// bookkeeping the paper's Table 1/2 requires: include edges, macro
// definitions, macro expansion records with source ranges (expands_macro)
// and conditional interrogations (interrogates_macro), plus an IN_MACRO
// marker on every token produced by an expansion.
package cpp

import (
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// FileProvider supplies source text. Implementations: MapFS for in-memory
// trees (tests, the workload generator) and DirFS over a real directory.
type FileProvider interface {
	// ReadFile returns the contents of the file at a slash-separated path.
	ReadFile(path string) (string, error)
	// Exists reports whether a file exists at the path.
	Exists(path string) bool
}

// MapFS is an in-memory FileProvider.
type MapFS map[string]string

// ReadFile implements FileProvider.
func (m MapFS) ReadFile(p string) (string, error) {
	if s, ok := m[path.Clean(p)]; ok {
		return s, nil
	}
	return "", fmt.Errorf("cpp: no such file %q", p)
}

// Exists implements FileProvider.
func (m MapFS) Exists(p string) bool {
	_, ok := m[path.Clean(p)]
	return ok
}

// Paths returns all file paths in sorted order.
func (m MapFS) Paths() []string {
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ListFiles implements the optional enumeration interface incremental
// planning uses to detect added files.
func (m MapFS) ListFiles() ([]string, error) { return m.Paths(), nil }

// DirFS reads from a directory on disk.
type DirFS struct{ Root string }

// ReadFile implements FileProvider.
func (d DirFS) ReadFile(p string) (string, error) {
	b, err := os.ReadFile(path.Join(d.Root, p))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Exists implements FileProvider.
func (d DirFS) Exists(p string) bool {
	st, err := os.Stat(path.Join(d.Root, p))
	return err == nil && !st.IsDir()
}

// ListFiles enumerates every regular file under the root as a sorted,
// slash-separated, root-relative path list (the enumeration interface
// incremental planning uses to detect added files).
func (d DirFS) ListFiles() ([]string, error) {
	var out []string
	err := filepath.WalkDir(d.Root, func(p string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		rel, err := filepath.Rel(d.Root, p)
		if err != nil {
			return err
		}
		out = append(out, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// FileID identifies a source file within one extraction run; it is the
// value stored in USE_FILE_ID / NAME_FILE_ID edge properties.
type FileID int32

// NoFile marks an absent file reference.
const NoFile FileID = -1

// FileTable interns file paths to stable IDs.
type FileTable struct {
	byPath map[string]FileID
	paths  []string
}

// NewFileTable returns an empty table.
func NewFileTable() *FileTable {
	return &FileTable{byPath: make(map[string]FileID)}
}

// Intern returns the ID for a path, assigning one if new.
func (t *FileTable) Intern(p string) FileID {
	p = path.Clean(p)
	if id, ok := t.byPath[p]; ok {
		return id
	}
	id := FileID(len(t.paths))
	t.byPath[p] = id
	t.paths = append(t.paths, p)
	return id
}

// Path returns the path for an ID.
func (t *FileTable) Path(id FileID) string {
	if id < 0 || int(id) >= len(t.paths) {
		return ""
	}
	return t.paths[id]
}

// Len returns the number of interned files.
func (t *FileTable) Len() int { return len(t.paths) }

// Paths returns all interned paths indexed by FileID.
func (t *FileTable) Paths() []string { return t.paths }

// Pos is a source position (1-based line and column).
type Pos struct {
	File FileID
	Line int32
	Col  int32
}

// IsValid reports whether the position refers to a real location.
func (p Pos) IsValid() bool { return p.File >= 0 && p.Line > 0 }

// String renders file-relative positions for diagnostics.
func (p Pos) String() string { return fmt.Sprintf("%d:%d:%d", p.File, p.Line, p.Col) }

// Range is a half-open source range [Start, End).
type Range struct {
	Start Pos
	End   Pos
}

// Dir returns the directory component of a slash path ("" for none).
func Dir(p string) string {
	d := path.Dir(p)
	if d == "." {
		return ""
	}
	return d
}

// Join joins slash path segments, cleaning the result.
func Join(parts ...string) string {
	var nonEmpty []string
	for _, p := range parts {
		if p != "" {
			nonEmpty = append(nonEmpty, p)
		}
	}
	return path.Clean(strings.Join(nonEmpty, "/"))
}
