package cpp

import (
	"fmt"
	"strconv"
	"strings"
)

// evalConstExpr evaluates a preprocessor constant expression (C11
// 6.10.1): integer arithmetic, comparisons, bitwise and logical
// operators, and the conditional operator. Identifiers that survive macro
// expansion evaluate to 0.
func evalConstExpr(toks []Token) (int64, error) {
	p := &condParser{toks: toks}
	v, err := p.ternary()
	if err != nil {
		return 0, err
	}
	if p.pos != len(p.toks) {
		return 0, fmt.Errorf("trailing tokens in constant expression: %v", p.toks[p.pos:])
	}
	return v, nil
}

type condParser struct {
	toks []Token
	pos  int
}

func (p *condParser) peek() (Token, bool) {
	if p.pos >= len(p.toks) {
		return Token{}, false
	}
	return p.toks[p.pos], true
}

func (p *condParser) accept(punct string) bool {
	if t, ok := p.peek(); ok && t.IsPunct(punct) {
		p.pos++
		return true
	}
	return false
}

func (p *condParser) ternary() (int64, error) {
	c, err := p.logicalOr()
	if err != nil {
		return 0, err
	}
	if !p.accept("?") {
		return c, nil
	}
	a, err := p.ternary()
	if err != nil {
		return 0, err
	}
	if !p.accept(":") {
		return 0, fmt.Errorf("expected ':' in conditional expression")
	}
	b, err := p.ternary()
	if err != nil {
		return 0, err
	}
	if c != 0 {
		return a, nil
	}
	return b, nil
}

// binary level table, loosest first.
var condLevels = [][]string{
	{"||"}, {"&&"}, {"|"}, {"^"}, {"&"},
	{"==", "!="}, {"<", "<=", ">", ">="},
	{"<<", ">>"}, {"+", "-"}, {"*", "/", "%"},
}

func (p *condParser) logicalOr() (int64, error) { return p.binary(0) }

func (p *condParser) binary(level int) (int64, error) {
	if level >= len(condLevels) {
		return p.unary()
	}
	l, err := p.binary(level + 1)
	if err != nil {
		return 0, err
	}
	for {
		matched := ""
		for _, op := range condLevels[level] {
			if t, ok := p.peek(); ok && t.IsPunct(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return l, nil
		}
		p.pos++
		// Short-circuit for logical operators.
		if matched == "||" && l != 0 {
			if _, err := p.binary(level + 1); err != nil {
				return 0, err
			}
			l = 1
			continue
		}
		if matched == "&&" && l == 0 {
			if _, err := p.binary(level + 1); err != nil {
				return 0, err
			}
			l = 0
			continue
		}
		r, err := p.binary(level + 1)
		if err != nil {
			return 0, err
		}
		l, err = applyCondOp(matched, l, r)
		if err != nil {
			return 0, err
		}
	}
}

func applyCondOp(op string, l, r int64) (int64, error) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case "||":
		return b2i(l != 0 || r != 0), nil
	case "&&":
		return b2i(l != 0 && r != 0), nil
	case "|":
		return l | r, nil
	case "^":
		return l ^ r, nil
	case "&":
		return l & r, nil
	case "==":
		return b2i(l == r), nil
	case "!=":
		return b2i(l != r), nil
	case "<":
		return b2i(l < r), nil
	case "<=":
		return b2i(l <= r), nil
	case ">":
		return b2i(l > r), nil
	case ">=":
		return b2i(l >= r), nil
	case "<<":
		if r < 0 || r > 63 {
			return 0, nil
		}
		return l << uint(r), nil
	case ">>":
		if r < 0 || r > 63 {
			return 0, nil
		}
		return l >> uint(r), nil
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			// Division by zero in a (possibly short-circuited) branch
			// evaluates to 0 rather than failing the directive.
			return 0, nil
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, nil
		}
		return l % r, nil
	}
	return 0, fmt.Errorf("unknown operator %q", op)
}

func (p *condParser) unary() (int64, error) {
	t, ok := p.peek()
	if !ok {
		return 0, fmt.Errorf("unexpected end of constant expression")
	}
	switch {
	case t.IsPunct("!"):
		p.pos++
		v, err := p.unary()
		if err != nil {
			return 0, err
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case t.IsPunct("~"):
		p.pos++
		v, err := p.unary()
		return ^v, err
	case t.IsPunct("-"):
		p.pos++
		v, err := p.unary()
		return -v, err
	case t.IsPunct("+"):
		p.pos++
		return p.unary()
	case t.IsPunct("("):
		p.pos++
		v, err := p.ternary()
		if err != nil {
			return 0, err
		}
		if !p.accept(")") {
			return 0, fmt.Errorf("missing ')' in constant expression")
		}
		return v, nil
	case t.Kind == TokNumber:
		p.pos++
		return ParseIntLiteral(t.Text)
	case t.Kind == TokChar:
		p.pos++
		return charValue(t.Text), nil
	case t.Kind == TokIdent:
		// Undefined identifier (including 'true'/'false' in C90 mode).
		p.pos++
		if t.Text == "true" {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("unexpected token %q in constant expression", t.Text)
}

// ParseIntLiteral parses a C integer literal (decimal, hex, octal,
// binary) ignoring U/L suffixes.
func ParseIntLiteral(s string) (int64, error) {
	s = strings.TrimRight(s, "uUlL")
	if s == "" {
		return 0, fmt.Errorf("empty integer literal")
	}
	base := 10
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		base = 16
		s = s[2:]
	case strings.HasPrefix(s, "0b") || strings.HasPrefix(s, "0B"):
		base = 2
		s = s[2:]
	case len(s) > 1 && s[0] == '0':
		base = 8
		s = s[1:]
	}
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, base, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer literal %q", s)
	}
	return int64(v), nil
}

// charValue evaluates a character literal like 'a' or '\n'.
func charValue(lit string) int64 {
	s := strings.Trim(lit, "'")
	if s == "" {
		return 0
	}
	if s[0] != '\\' {
		return int64(s[0])
	}
	if len(s) < 2 {
		return '\\'
	}
	switch s[1] {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	}
	return int64(s[1])
}
