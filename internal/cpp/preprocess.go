package cpp

import (
	"fmt"
	"strings"
)

// IncludeRecord is one #include occurrence (the includes edge).
type IncludeRecord struct {
	From FileID
	To   FileID
	Use  Range
}

// ExpansionRecord is one top-level macro expansion in source text (the
// expands_macro edge); Use covers the macro name token at the use site.
type ExpansionRecord struct {
	Macro string
	Use   Range
}

// InterrogationRecord is one #ifdef/#ifndef/defined() test (the
// interrogates_macro edge).
type InterrogationRecord struct {
	Macro string
	Use   Range
}

// MacroDefRecord is one #define (a macro node).
type MacroDefRecord struct {
	Name     string
	FuncLike bool
	Pos      Pos
	End      Pos
	File     FileID
}

// Result is the output of preprocessing one translation unit.
type Result struct {
	Tokens         []Token
	Includes       []IncludeRecord
	Expansions     []ExpansionRecord
	Interrogations []InterrogationRecord
	MacroDefs      []MacroDefRecord
	Errors         []error
	// Probes lists candidate include paths that were tested and did not
	// exist — both outright include misses and the search-path slots
	// probed before a hit. Incremental updates use them to tell when a
	// newly added file would change this TU's include resolution (by
	// satisfying a missing include or shadowing the one that was used).
	Probes []string
}

// Preprocessor preprocesses translation units. Create one per extraction
// run; Preprocess may be called once per TU and macro state resets
// between calls, while the FileTable accumulates across calls so FileIDs
// are stable run-wide.
type Preprocessor struct {
	FS           FileProvider
	IncludePaths []string
	Files        *FileTable

	predef map[string]*Macro

	// per-run state
	macros     map[string]*Macro
	pragmaOnce map[FileID]bool
	probeSeen  map[string]bool
	res        *Result
	maxDepth   int
}

// New creates a preprocessor over fs with the given include search paths.
// The FileTable may be shared across preprocessor instances.
func New(fs FileProvider, includePaths []string, files *FileTable) *Preprocessor {
	if files == nil {
		files = NewFileTable()
	}
	return &Preprocessor{
		FS:           fs,
		IncludePaths: includePaths,
		Files:        files,
		predef:       make(map[string]*Macro),
		maxDepth:     200,
	}
}

// Define adds a predefined object-like macro (as -D on a compiler command
// line). value may be empty.
func (pp *Preprocessor) Define(name, value string) {
	pp.predef[name] = &Macro{Name: name, Body: LexAll(value, NoFile)}
}

// Preprocess runs the preprocessor over one translation unit.
func (pp *Preprocessor) Preprocess(path string) (*Result, error) {
	pp.macros = make(map[string]*Macro, len(pp.predef)+16)
	for k, v := range pp.predef {
		pp.macros[k] = v
	}
	pp.pragmaOnce = make(map[FileID]bool)
	pp.probeSeen = make(map[string]bool)
	pp.res = &Result{}
	if err := pp.processFile(path, 0); err != nil {
		return nil, err
	}
	res := pp.res
	pp.res = nil
	return res, nil
}

// condState tracks one level of conditional nesting.
type condState struct {
	parentActive bool // the enclosing group was active
	active       bool // this branch is being emitted
	taken        bool // some branch at this level already evaluated true
	seenElse     bool
}

// fileState is the per-file processing state.
type fileState struct {
	lex     *lexer
	pending []Token // macro-expansion output awaiting rescanning
	file    FileID
	conds   []condState
}

func (fs *fileState) active() bool {
	for _, c := range fs.conds {
		if !c.active {
			return false
		}
	}
	return true
}

func (pp *Preprocessor) processFile(path string, depth int) error {
	if depth > pp.maxDepth {
		return fmt.Errorf("cpp: include depth exceeds %d at %q", pp.maxDepth, path)
	}
	src, err := pp.FS.ReadFile(path)
	if err != nil {
		return err
	}
	id := pp.Files.Intern(path)
	if pp.pragmaOnce[id] {
		return nil
	}
	st := &fileState{lex: newLexer(src, id), file: id}
	for {
		t := pp.nextToken(st)
		if t.Kind == TokEOF {
			break
		}
		if t.Kind == TokDirective {
			if err := pp.directive(st, t, path, depth); err != nil {
				pp.res.Errors = append(pp.res.Errors, err)
			}
			continue
		}
		if !st.active() {
			continue
		}
		if t.Kind == TokIdent {
			if pp.maybeExpand(st, t) {
				continue
			}
		}
		pp.res.Tokens = append(pp.res.Tokens, t)
	}
	if len(st.conds) > 0 {
		pp.res.Errors = append(pp.res.Errors, fmt.Errorf("cpp: %s: unterminated conditional", path))
	}
	return nil
}

// nextToken pulls from the rescan queue first, then the lexer.
func (pp *Preprocessor) nextToken(st *fileState) Token {
	if len(st.pending) > 0 {
		t := st.pending[0]
		st.pending = st.pending[1:]
		return t
	}
	return st.lex.next(false)
}

// peekToken looks ahead one token without consuming.
func (pp *Preprocessor) peekToken(st *fileState) Token {
	t := pp.nextToken(st)
	if t.Kind != TokEOF {
		st.pending = append([]Token{t}, st.pending...)
	}
	return t
}

// maybeExpand expands the identifier if it names a macro; returns true if
// an expansion happened (replacement tokens queued for rescanning).
func (pp *Preprocessor) maybeExpand(st *fileState, t Token) bool {
	switch t.Text {
	case "__LINE__":
		st.pending = append([]Token{{Kind: TokNumber, Text: fmt.Sprint(t.Pos.Line), Pos: t.Pos, EndCol: t.EndCol, FromMacro: "__LINE__"}}, st.pending...)
		return true
	case "__FILE__":
		st.pending = append([]Token{{Kind: TokString, Text: `"` + escapeString(pp.Files.Path(t.Pos.File)) + `"`, Pos: t.Pos, EndCol: t.EndCol, FromMacro: "__FILE__"}}, st.pending...)
		return true
	}
	m, ok := pp.macros[t.Text]
	if !ok || t.hidden(t.Text) {
		return false
	}
	var rawArgs, expArgs [][]Token
	if m.FuncLike {
		nxt := pp.peekToken(st)
		if !nxt.IsPunct("(") {
			return false // function-like macro without arguments: plain ident
		}
		pp.nextToken(st) // consume '('
		rawArgs = pp.collectArgs(st, m)
		expArgs = make([][]Token, len(rawArgs))
		for i, a := range rawArgs {
			expArgs[i] = pp.expandList(a)
		}
	}
	if t.FromMacro == "" {
		pp.res.Expansions = append(pp.res.Expansions, ExpansionRecord{
			Macro: m.Name,
			Use:   Range{Start: t.Pos, End: t.End()},
		})
	}
	sub := pp.substitute(m, t, rawArgs, expArgs)
	st.pending = append(append([]Token(nil), sub...), st.pending...)
	return true
}

// collectArgs reads macro arguments up to the matching ')', splitting on
// top-level commas (the '(' has been consumed).
func (pp *Preprocessor) collectArgs(st *fileState, m *Macro) [][]Token {
	var args [][]Token
	var cur []Token
	depth := 1
	for {
		t := pp.nextToken(st)
		if t.Kind == TokEOF {
			break
		}
		switch {
		case t.IsPunct("("):
			depth++
		case t.IsPunct(")"):
			depth--
			if depth == 0 {
				args = append(args, cur)
				// Adjust: zero args for a zero-param macro invoked as M().
				if len(args) == 1 && len(args[0]) == 0 && len(m.Params) == 0 && !m.Variadic {
					return nil
				}
				// Variadic: fold extra args into __VA_ARGS__.
				if m.Variadic && len(args) > len(m.Params)+1 {
					va := args[len(m.Params)]
					for _, extra := range args[len(m.Params)+1:] {
						va = append(va, Token{Kind: TokPunct, Text: ",", Pos: t.Pos, EndCol: t.EndCol})
						va = append(va, extra...)
					}
					args = append(args[:len(m.Params)], va)
				}
				return args
			}
		case t.IsPunct(",") && depth == 1:
			args = append(args, cur)
			cur = nil
			continue
		}
		cur = append(cur, t)
	}
	return append(args, cur)
}

// expandList fully macro-expands a token list (for argument
// pre-expansion and #if conditions).
func (pp *Preprocessor) expandList(toks []Token) []Token {
	st := &fileState{lex: newLexer("", NoFile), pending: append([]Token(nil), toks...)}
	var out []Token
	for {
		t := pp.nextToken(st)
		if t.Kind == TokEOF {
			return out
		}
		if t.Kind == TokIdent && pp.maybeExpand(st, t) {
			continue
		}
		out = append(out, t)
	}
}

// readDirectiveLine reads the remaining tokens of a directive line.
func (pp *Preprocessor) readDirectiveLine(st *fileState) []Token {
	var out []Token
	for {
		t := st.lex.next(true)
		if t.Kind == TokNewline || t.Kind == TokEOF {
			return out
		}
		out = append(out, t)
	}
}

func (pp *Preprocessor) directive(st *fileState, d Token, path string, depth int) error {
	name := d.Text
	switch name {
	case "if", "ifdef", "ifndef":
		line := pp.readDirectiveLine(st)
		active := st.active()
		val := false
		if active {
			var err error
			val, err = pp.evalCondition(name, line, d)
			if err != nil {
				return err
			}
		}
		st.conds = append(st.conds, condState{parentActive: active, active: active && val, taken: val})
		return nil
	case "elif":
		line := pp.readDirectiveLine(st)
		if len(st.conds) == 0 {
			return fmt.Errorf("cpp: %s: #elif without #if", path)
		}
		c := &st.conds[len(st.conds)-1]
		if c.seenElse {
			return fmt.Errorf("cpp: %s: #elif after #else", path)
		}
		if !c.parentActive || c.taken {
			c.active = false
			return nil
		}
		val, err := pp.evalCondition("if", line, d)
		if err != nil {
			return err
		}
		c.active = val
		c.taken = val
		return nil
	case "else":
		pp.readDirectiveLine(st)
		if len(st.conds) == 0 {
			return fmt.Errorf("cpp: %s: #else without #if", path)
		}
		c := &st.conds[len(st.conds)-1]
		if c.seenElse {
			return fmt.Errorf("cpp: %s: duplicate #else", path)
		}
		c.seenElse = true
		c.active = c.parentActive && !c.taken
		c.taken = true
		return nil
	case "endif":
		pp.readDirectiveLine(st)
		if len(st.conds) == 0 {
			return fmt.Errorf("cpp: %s: #endif without #if", path)
		}
		st.conds = st.conds[:len(st.conds)-1]
		return nil
	}

	if !st.active() {
		pp.readDirectiveLine(st)
		return nil
	}

	switch name {
	case "define":
		return pp.handleDefine(st, d)
	case "undef":
		line := pp.readDirectiveLine(st)
		if len(line) > 0 && line[0].Kind == TokIdent {
			delete(pp.macros, line[0].Text)
		}
		return nil
	case "include", "include_next":
		return pp.handleInclude(st, d, path, depth)
	case "pragma":
		line := pp.readDirectiveLine(st)
		if len(line) > 0 && line[0].IsIdent("once") {
			pp.pragmaOnce[st.file] = true
		}
		return nil
	case "error":
		line := pp.readDirectiveLine(st)
		return fmt.Errorf("cpp: %s:%d: #error %s", path, d.Pos.Line, spellTokens(line))
	case "warning", "line", "ident":
		pp.readDirectiveLine(st)
		return nil
	case "":
		// Null directive (# alone).
		pp.readDirectiveLine(st)
		return nil
	}
	pp.readDirectiveLine(st)
	return fmt.Errorf("cpp: %s:%d: unknown directive #%s", path, d.Pos.Line, name)
}

func (pp *Preprocessor) handleDefine(st *fileState, d Token) error {
	// Read the name; function-likeness depends on '(' immediately after.
	nameTok := st.lex.next(true)
	if nameTok.Kind != TokIdent {
		pp.readDirectiveLine(st)
		return fmt.Errorf("cpp: #define without a name at %s", d.Pos)
	}
	m := &Macro{Name: nameTok.Text, DefPos: nameTok.Pos, DefEnd: nameTok.End()}
	rest := pp.readDirectiveLine(st)
	i := 0
	if len(rest) > 0 && rest[0].IsPunct("(") &&
		rest[0].Pos.Line == nameTok.Pos.Line && rest[0].Pos.Col == nameTok.EndCol {
		m.FuncLike = true
		i = 1
		for i < len(rest) && !rest[i].IsPunct(")") {
			switch {
			case rest[i].Kind == TokIdent:
				m.Params = append(m.Params, rest[i].Text)
			case rest[i].IsPunct("..."):
				m.Variadic = true
			case rest[i].IsPunct(","):
			}
			i++
		}
		if i < len(rest) {
			i++ // ')'
		}
	}
	m.Body = rest[i:]
	if len(m.Body) > 0 {
		last := m.Body[len(m.Body)-1]
		m.DefEnd = last.End()
	}
	pp.macros[m.Name] = m
	pp.res.MacroDefs = append(pp.res.MacroDefs, MacroDefRecord{
		Name: m.Name, FuncLike: m.FuncLike, Pos: m.DefPos, End: m.DefEnd, File: st.file,
	})
	return nil
}

func (pp *Preprocessor) handleInclude(st *fileState, d Token, path string, depth int) error {
	line := pp.readDirectiveLine(st)
	if len(line) == 0 {
		return fmt.Errorf("cpp: %s:%d: empty #include", path, d.Pos.Line)
	}
	var target string
	var system bool
	switch {
	case line[0].Kind == TokString:
		target = strings.Trim(line[0].Text, `"`)
	case line[0].IsPunct("<"):
		var sb strings.Builder
		for _, t := range line[1:] {
			if t.IsPunct(">") {
				break
			}
			sb.WriteString(t.Text)
		}
		target = sb.String()
		system = true
	default:
		// Macro-expanded include target.
		exp := pp.expandList(line)
		if len(exp) > 0 && exp[0].Kind == TokString {
			target = strings.Trim(exp[0].Text, `"`)
		} else {
			return fmt.Errorf("cpp: %s:%d: malformed #include", path, d.Pos.Line)
		}
	}
	resolved, ok := pp.resolveInclude(target, path, system)
	if !ok {
		return fmt.Errorf("cpp: %s:%d: include %q not found", path, d.Pos.Line, target)
	}
	end := d.End()
	if len(line) > 0 {
		end = line[len(line)-1].End()
	}
	pp.res.Includes = append(pp.res.Includes, IncludeRecord{
		From: st.file,
		To:   pp.Files.Intern(resolved),
		Use:  Range{Start: d.Pos, End: end},
	})
	return pp.processFile(resolved, depth+1)
}

func (pp *Preprocessor) resolveInclude(target, from string, system bool) (string, bool) {
	if !system {
		cand := Join(Dir(from), target)
		if pp.probe(cand) {
			return cand, true
		}
	}
	for _, dir := range pp.IncludePaths {
		cand := Join(dir, target)
		if pp.probe(cand) {
			return cand, true
		}
	}
	if pp.probe(target) {
		return target, true
	}
	return "", false
}

// probe tests one include candidate, recording misses in Result.Probes
// (deduplicated per TU).
func (pp *Preprocessor) probe(cand string) bool {
	if pp.FS.Exists(cand) {
		return true
	}
	if !pp.probeSeen[cand] {
		pp.probeSeen[cand] = true
		pp.res.Probes = append(pp.res.Probes, cand)
	}
	return false
}

func (pp *Preprocessor) evalCondition(kind string, line []Token, d Token) (bool, error) {
	switch kind {
	case "ifdef", "ifndef":
		if len(line) == 0 || line[0].Kind != TokIdent {
			return false, fmt.Errorf("cpp: #%s without a name at %s", kind, d.Pos)
		}
		name := line[0].Text
		pp.res.Interrogations = append(pp.res.Interrogations, InterrogationRecord{
			Macro: name,
			Use:   Range{Start: line[0].Pos, End: line[0].End()},
		})
		_, defined := pp.macros[name]
		if kind == "ifndef" {
			return !defined, nil
		}
		return defined, nil
	}
	// #if: record defined() interrogations, replace them with 0/1, expand
	// the rest, then evaluate the constant expression.
	var prepared []Token
	for i := 0; i < len(line); i++ {
		t := line[i]
		if t.IsIdent("defined") {
			var nameTok Token
			j := i + 1
			if j < len(line) && line[j].IsPunct("(") {
				j++
				if j < len(line) && line[j].Kind == TokIdent {
					nameTok = line[j]
					j++
				}
				if j < len(line) && line[j].IsPunct(")") {
					j++
				}
			} else if j < len(line) && line[j].Kind == TokIdent {
				nameTok = line[j]
				j++
			}
			if nameTok.Kind != TokIdent {
				return false, fmt.Errorf("cpp: malformed defined() at %s", t.Pos)
			}
			pp.res.Interrogations = append(pp.res.Interrogations, InterrogationRecord{
				Macro: nameTok.Text,
				Use:   Range{Start: nameTok.Pos, End: nameTok.End()},
			})
			val := "0"
			if _, ok := pp.macros[nameTok.Text]; ok {
				val = "1"
			}
			prepared = append(prepared, Token{Kind: TokNumber, Text: val, Pos: t.Pos, EndCol: t.EndCol})
			i = j - 1
			continue
		}
		prepared = append(prepared, t)
	}
	expanded := pp.expandList(prepared)
	v, err := evalConstExpr(expanded)
	if err != nil {
		return false, fmt.Errorf("cpp: #if at %s: %w", d.Pos, err)
	}
	return v != 0, nil
}
