package cpp

import (
	"strings"
	"testing"
)

func preprocess(t *testing.T, fs MapFS, main string, includes ...string) *Result {
	t.Helper()
	pp := New(fs, includes, nil)
	res, err := pp.Preprocess(main)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	for _, e := range res.Errors {
		t.Fatalf("preprocess error: %v", e)
	}
	return res
}

func spell(toks []Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

func TestObjectMacro(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "#define N 42\nint x = N;\n"}, "a.c")
	if got := spell(res.Tokens); got != "int x = 42 ;" {
		t.Fatalf("tokens = %q", got)
	}
	if len(res.MacroDefs) != 1 || res.MacroDefs[0].Name != "N" || res.MacroDefs[0].FuncLike {
		t.Fatalf("defs = %+v", res.MacroDefs)
	}
	if len(res.Expansions) != 1 || res.Expansions[0].Macro != "N" {
		t.Fatalf("expansions = %+v", res.Expansions)
	}
	if res.Expansions[0].Use.Start.Line != 2 {
		t.Fatalf("expansion line = %d", res.Expansions[0].Use.Start.Line)
	}
}

func TestFunctionMacro(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "#define ADD(a, b) ((a) + (b))\nint x = ADD(1, 2);\n"}, "a.c")
	if got := spell(res.Tokens); got != "int x = ( ( 1 ) + ( 2 ) ) ;" {
		t.Fatalf("tokens = %q", got)
	}
}

func TestFunctionMacroWithoutParensIsIdent(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "#define F(x) x\nint F;\n"}, "a.c")
	if got := spell(res.Tokens); got != "int F ;" {
		t.Fatalf("tokens = %q", got)
	}
	if len(res.Expansions) != 0 {
		t.Fatalf("expansions = %+v", res.Expansions)
	}
}

func TestObjectVsFunctionLikeBySpace(t *testing.T) {
	// '#define A (x)' is object-like with body '(x)'.
	res := preprocess(t, MapFS{"a.c": "#define A (5)\nint x = A;\n"}, "a.c")
	if got := spell(res.Tokens); got != "int x = ( 5 ) ;" {
		t.Fatalf("tokens = %q", got)
	}
}

func TestNestedExpansionAndRecursionGuard(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "#define A B\n#define B A\nint x = A;\n"}, "a.c")
	// A -> B -> A (blocked) leaves the ident A.
	if got := spell(res.Tokens); got != "int x = A ;" {
		t.Fatalf("tokens = %q", got)
	}
}

func TestStringize(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "#define S(x) #x\nchar *p = S(hello world);\n"}, "a.c")
	if got := spell(res.Tokens); got != `char * p = "hello world" ;` {
		t.Fatalf("tokens = %q", got)
	}
}

func TestTokenPasting(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "#define GLUE(a, b) a##b\nint GLUE(foo, bar) = 1;\n"}, "a.c")
	if got := spell(res.Tokens); got != "int foobar = 1 ;" {
		t.Fatalf("tokens = %q", got)
	}
	res = preprocess(t, MapFS{"a.c": "#define T(n) type_##n##_t\nT(dev) x;\n"}, "a.c")
	if got := spell(res.Tokens); got != "type_dev_t x ;" {
		t.Fatalf("chain paste = %q", got)
	}
}

func TestVariadicMacro(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "#define LOG(fmt, ...) printf(fmt, __VA_ARGS__)\nLOG(\"%d %d\", 1, 2);\n"}, "a.c")
	if got := spell(res.Tokens); got != `printf ( "%d %d" , 1 , 2 ) ;` {
		t.Fatalf("tokens = %q", got)
	}
}

func TestConditionals(t *testing.T) {
	src := `
#define CONFIG_X 1
#if CONFIG_X
int a;
#else
int b;
#endif
#ifdef CONFIG_Y
int c;
#elif defined(CONFIG_X) && CONFIG_X > 0
int d;
#else
int e;
#endif
#ifndef CONFIG_Z
int f;
#endif
`
	res := preprocess(t, MapFS{"a.c": src}, "a.c")
	if got := spell(res.Tokens); got != "int a ; int d ; int f ;" {
		t.Fatalf("tokens = %q", got)
	}
	// Interrogations: CONFIG_Y (#ifdef), CONFIG_X (defined), CONFIG_Z (#ifndef).
	var names []string
	for _, r := range res.Interrogations {
		names = append(names, r.Macro)
	}
	want := "CONFIG_Y,CONFIG_X,CONFIG_Z"
	if strings.Join(names, ",") != want {
		t.Fatalf("interrogations = %v, want %s", names, want)
	}
}

func TestNestedInactiveConditionals(t *testing.T) {
	src := `
#if 0
#if 1
int dead;
#endif
#else
int live;
#endif
`
	res := preprocess(t, MapFS{"a.c": src}, "a.c")
	if got := spell(res.Tokens); got != "int live ;" {
		t.Fatalf("tokens = %q", got)
	}
}

func TestIfExpressionOperators(t *testing.T) {
	cases := []struct {
		cond string
		live bool
	}{
		{"1 + 1 == 2", true},
		{"(1 << 4) == 16", true},
		{"0x10 == 16", true},
		{"010 == 8", true},
		{"'A' == 65", true},
		{"5 / 2 == 2 && 5 % 2 == 1", true},
		{"!defined(NOPE)", true},
		{"UNDEFINED_IDENT", false},
		{"1 ? 0 : 1", false},
		{"~0 == -1", true},
		{"1 || UNDEF/0", true}, // short-circuit must not divide by zero
	}
	for _, c := range cases {
		src := "#if " + c.cond + "\nint live;\n#endif\n"
		res := preprocess(t, MapFS{"a.c": src}, "a.c")
		got := spell(res.Tokens) == "int live ;"
		if got != c.live {
			t.Errorf("#if %s: live=%v, want %v", c.cond, got, c.live)
		}
	}
}

func TestInclude(t *testing.T) {
	fs := MapFS{
		"src/a.c":        "#include \"a.h\"\n#include <lib/util.h>\nint x = FOO + BAR;\n",
		"src/a.h":        "#define FOO 1\n",
		"inc/lib/util.h": "#define BAR 2\n",
	}
	res := preprocess(t, fs, "src/a.c", "inc")
	if got := spell(res.Tokens); got != "int x = 1 + 2 ;" {
		t.Fatalf("tokens = %q", got)
	}
	if len(res.Includes) != 2 {
		t.Fatalf("includes = %+v", res.Includes)
	}
	pp := New(fs, []string{"inc"}, nil)
	r2, err := pp.Preprocess("src/a.c")
	if err != nil {
		t.Fatal(err)
	}
	ft := pp.Files
	if ft.Path(r2.Includes[0].To) != "src/a.h" {
		t.Fatalf("include 0 to %q", ft.Path(r2.Includes[0].To))
	}
	if ft.Path(r2.Includes[1].To) != "inc/lib/util.h" {
		t.Fatalf("include 1 to %q", ft.Path(r2.Includes[1].To))
	}
}

func TestIncludeGuardAndPragmaOnce(t *testing.T) {
	fs := MapFS{
		"a.c": "#include \"g.h\"\n#include \"g.h\"\n#include \"p.h\"\n#include \"p.h\"\n",
		"g.h": "#ifndef G_H\n#define G_H\nint g;\n#endif\n",
		"p.h": "#pragma once\nint p;\n",
	}
	res := preprocess(t, fs, "a.c")
	if got := spell(res.Tokens); got != "int g ; int p ;" {
		t.Fatalf("tokens = %q", got)
	}
	// All four include records exist (one edge occurrence per #include),
	// even though guarded/once'd bodies were emitted only once.
	if len(res.Includes) != 4 {
		t.Fatalf("includes = %d, want 4", len(res.Includes))
	}
}

func TestMissingIncludeIsError(t *testing.T) {
	pp := New(MapFS{"a.c": "#include \"nope.h\"\n"}, nil, nil)
	res, err := pp.Preprocess("a.c")
	if err != nil {
		t.Fatalf("hard error: %v", err)
	}
	if len(res.Errors) == 0 {
		t.Fatal("missing include not reported")
	}
}

func TestErrorDirective(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "#if 0\n#error never\n#endif\nint x;\n"}, "a.c")
	if got := spell(res.Tokens); got != "int x ;" {
		t.Fatalf("tokens = %q", got)
	}
	pp := New(MapFS{"a.c": "#error boom\n"}, nil, nil)
	r, _ := pp.Preprocess("a.c")
	if len(r.Errors) != 1 || !strings.Contains(r.Errors[0].Error(), "boom") {
		t.Fatalf("errors = %v", r.Errors)
	}
}

func TestLineContinuation(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "#define LONG(a) \\\n  ((a) * 2)\nint x = LONG(3);\n"}, "a.c")
	if got := spell(res.Tokens); got != "int x = ( ( 3 ) * 2 ) ;" {
		t.Fatalf("tokens = %q", got)
	}
}

func TestPredefine(t *testing.T) {
	pp := New(MapFS{"a.c": "#ifdef __KERNEL__\nint k;\n#endif\n"}, nil, nil)
	pp.Define("__KERNEL__", "1")
	res, err := pp.Preprocess("a.c")
	if err != nil {
		t.Fatal(err)
	}
	if got := spell(res.Tokens); got != "int k ;" {
		t.Fatalf("tokens = %q", got)
	}
}

func TestUndef(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "#define X 1\n#undef X\n#ifdef X\nint a;\n#else\nint b;\n#endif\n"}, "a.c")
	if got := spell(res.Tokens); got != "int b ;" {
		t.Fatalf("tokens = %q", got)
	}
}

func TestLineAndFileMacros(t *testing.T) {
	res := preprocess(t, MapFS{"dir/a.c": "int l = __LINE__;\nchar *f = __FILE__;\n"}, "dir/a.c")
	got := spell(res.Tokens)
	if got != `int l = 1 ; char * f = "dir/a.c" ;` {
		t.Fatalf("tokens = %q", got)
	}
}

func TestMacroTokenPositionsPointAtUseSite(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "#define CALLIT helper()\nvoid f(void) { CALLIT; }\n"}, "a.c")
	for _, tok := range res.Tokens {
		if tok.FromMacro == "CALLIT" {
			if tok.Pos.Line != 2 {
				t.Fatalf("macro token %q at line %d, want 2", tok.Text, tok.Pos.Line)
			}
		}
	}
	var helper *Token
	for i := range res.Tokens {
		if res.Tokens[i].Text == "helper" {
			helper = &res.Tokens[i]
		}
	}
	if helper == nil || helper.FromMacro != "CALLIT" {
		t.Fatalf("helper token = %+v", helper)
	}
}

func TestDirectiveOnlyAtLineStart(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "int x = 1 # 2;\n"}, "a.c")
	// '#' mid-line is a plain punct, not a directive (and would be a
	// syntax error for the parser, but the preprocessor passes it on).
	if got := spell(res.Tokens); got != "int x = 1 # 2 ;" {
		t.Fatalf("tokens = %q", got)
	}
}

func TestCommentStripping(t *testing.T) {
	res := preprocess(t, MapFS{"a.c": "int /* comment */ x; // trailing\nint y;\n"}, "a.c")
	if got := spell(res.Tokens); got != "int x ; int y ;" {
		t.Fatalf("tokens = %q", got)
	}
}

func TestFileTableStableAcrossTUs(t *testing.T) {
	fs := MapFS{
		"a.c":      "#include \"shared.h\"\n",
		"b.c":      "#include \"shared.h\"\n",
		"shared.h": "int s;\n",
	}
	ft := NewFileTable()
	ppA := New(fs, nil, ft)
	ppB := New(fs, nil, ft)
	ra, err := ppA.Preprocess("a.c")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ppB.Preprocess("b.c")
	if err != nil {
		t.Fatal(err)
	}
	if ra.Includes[0].To != rb.Includes[0].To {
		t.Fatalf("shared.h has two IDs: %d vs %d", ra.Includes[0].To, rb.Includes[0].To)
	}
}

func TestParseIntLiteral(t *testing.T) {
	cases := map[string]int64{
		"42": 42, "0x2A": 42, "052": 42, "0b101010": 42,
		"42UL": 42, "0": 0, "0xffffffffffffffff": -1,
	}
	for s, want := range cases {
		got, err := ParseIntLiteral(s)
		if err != nil || got != want {
			t.Errorf("ParseIntLiteral(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	if _, err := ParseIntLiteral("0xZZ"); err == nil {
		t.Error("bad literal accepted")
	}
}
