package cpp

import "strings"

// Macro is a preprocessor macro definition.
type Macro struct {
	Name     string
	FuncLike bool
	Params   []string
	Variadic bool
	Body     []Token
	DefPos   Pos
	DefEnd   Pos
}

// paramIndex returns the parameter position of an identifier, or -1.
func (m *Macro) paramIndex(name string) int {
	for i, p := range m.Params {
		if p == name {
			return i
		}
	}
	if m.Variadic && name == "__VA_ARGS__" {
		return len(m.Params)
	}
	return -1
}

// substitute produces the replacement token list for an invocation:
// parameters are replaced by (pre-expanded) argument tokens, '#' makes
// string literals from raw arguments, and '##' pastes adjacent tokens.
// All produced tokens take the position of the invocation site and carry
// the macro's name, so downstream source ranges point at the use site —
// the behaviour Table 2 of the paper specifies for macro-produced edges.
func (pp *Preprocessor) substitute(m *Macro, site Token, rawArgs [][]Token, expArgs [][]Token) []Token {
	var out []Token
	body := m.Body
	hide := unionHide(site.hide, []string{m.Name})
	for i := 0; i < len(body); i++ {
		t := body[i]
		// '#' param → stringize the raw argument.
		if t.IsPunct("#") && i+1 < len(body) && body[i+1].Kind == TokIdent {
			if pi := m.paramIndex(body[i+1].Text); pi >= 0 && pi < len(rawArgs) {
				out = append(out, pp.siteToken(site, m, hide, Token{
					Kind: TokString,
					Text: `"` + escapeString(spellTokens(rawArgs[pi])) + `"`,
				}))
				i++
				continue
			}
		}
		// token ## token → paste.
		if i+2 < len(body) && body[i+1].IsPunct("##") {
			left := pp.substOne(m, site, t, rawArgs)
			// Collect a full pasting chain a ## b ## c.
			j := i
			for j+2 < len(body) && body[j+1].IsPunct("##") {
				right := pp.substOne(m, site, body[j+2], rawArgs)
				left = pasteTokens(left, right)
				j += 2
			}
			for _, lt := range left {
				out = append(out, pp.siteToken(site, m, hide, lt))
			}
			i = j
			continue
		}
		if t.Kind == TokIdent {
			if pi := m.paramIndex(t.Text); pi >= 0 && pi < len(expArgs) {
				for _, at := range expArgs[pi] {
					out = append(out, pp.siteToken(site, m, hide, at))
				}
				continue
			}
		}
		out = append(out, pp.siteToken(site, m, hide, t))
	}
	return out
}

// substOne substitutes a single body token for pasting purposes (raw
// arguments, per C11 6.10.3.3).
func (pp *Preprocessor) substOne(m *Macro, site Token, t Token, rawArgs [][]Token) []Token {
	if t.Kind == TokIdent {
		if pi := m.paramIndex(t.Text); pi >= 0 && pi < len(rawArgs) {
			return append([]Token(nil), rawArgs[pi]...)
		}
	}
	return []Token{t}
}

// siteToken stamps a produced token with the invocation site position,
// the macro name, and the hide set that prevents recursive re-expansion.
func (pp *Preprocessor) siteToken(site Token, m *Macro, hide []string, t Token) Token {
	t.Pos = site.Pos
	t.EndCol = site.EndCol
	if t.FromMacro == "" {
		t.FromMacro = m.Name
	}
	t.hide = unionHide(t.hide, hide)
	return t
}

// pasteTokens concatenates the last token of left with the first token of
// right and re-lexes the result.
func pasteTokens(left, right []Token) []Token {
	if len(left) == 0 {
		return right
	}
	if len(right) == 0 {
		return left
	}
	l := left[len(left)-1]
	r := right[0]
	glued := LexAll(l.Text+r.Text, l.Pos.File)
	var out []Token
	out = append(out, left[:len(left)-1]...)
	for _, g := range glued {
		g.Pos = l.Pos
		g.EndCol = l.EndCol
		g.FromMacro = l.FromMacro
		out = append(out, g)
	}
	out = append(out, right[1:]...)
	return out
}

// spellTokens renders tokens as source text with single spaces.
func spellTokens(toks []Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

func escapeString(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"', '\\':
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}
