package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	start := time.Now().Add(-3 * time.Second)
	r.RegisterCollector(RuntimeCollector("v-test", start))
	runtime.GC() // ensure at least one pause sample exists

	fams := r.Gather()

	build := Find(fams, "frappe_build_info")
	if build == nil || len(build.Series) != 1 {
		t.Fatalf("frappe_build_info missing: %+v", build)
	}
	s := build.Series[0]
	if s.Value != 1 || s.Labels["version"] != "v-test" || s.Labels["go"] != runtime.Version() {
		t.Fatalf("build info series = %+v", s)
	}

	up := Find(fams, "frappe_process_uptime_seconds")
	if up == nil || up.Series[0].Value < 3 {
		t.Fatalf("uptime = %+v, want >= 3s", up)
	}

	gor := Find(fams, "frappe_go_goroutines")
	if gor == nil || gor.Series[0].Value < 1 {
		t.Fatalf("goroutines = %+v", gor)
	}
	heap := Find(fams, "frappe_go_heap_inuse_bytes")
	if heap == nil || heap.Series[0].Value <= 0 {
		t.Fatalf("heap in use = %+v", heap)
	}

	pauses := Find(fams, "frappe_go_gc_pause_seconds")
	if pauses == nil || len(pauses.Series) != 3 {
		t.Fatalf("gc pause quantiles = %+v", pauses)
	}
	want := map[string]bool{"0.5": true, "0.9": true, "0.99": true}
	var p50, p99 float64
	for _, s := range pauses.Series {
		q := s.Labels["quantile"]
		if !want[q] {
			t.Fatalf("unexpected quantile %q", q)
		}
		if s.Value < 0 {
			t.Fatalf("negative pause quantile %q: %v", q, s.Value)
		}
		switch q {
		case "0.5":
			p50 = s.Value
		case "0.99":
			p99 = s.Value
		}
	}
	if p99 < p50 {
		t.Fatalf("p99 (%v) < p50 (%v)", p99, p50)
	}
}

func TestGCPauseQuantilesEmpty(t *testing.T) {
	var ms runtime.MemStats // NumGC == 0
	for _, q := range gcPauseQuantiles(&ms) {
		if q.seconds != 0 {
			t.Fatalf("quantile %s = %v with zero GCs", q.name, q.seconds)
		}
	}
}

func TestRegisterRuntimeIdempotent(t *testing.T) {
	RegisterRuntime("a")
	RegisterRuntime("b") // must not add a second collector or series
	fams := Default.Gather()
	build := Find(fams, "frappe_build_info")
	if build == nil {
		t.Fatal("frappe_build_info absent from Default after RegisterRuntime")
	}
	if len(build.Series) != 1 {
		t.Fatalf("RegisterRuntime registered twice: %d series", len(build.Series))
	}
	if build.Series[0].Labels["version"] != "a" {
		t.Fatalf("first registration did not win: %+v", build.Series[0].Labels)
	}
}
