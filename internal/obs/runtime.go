package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// RuntimeCollector samples Go runtime and process state at scrape time:
// build identity, uptime, goroutines, heap in use, and GC pause
// quantiles from the runtime's own circular pause buffer. It is a
// Collector (constraint 2 in the package doc): the runtime already
// maintains these counters, so scrapes read them instead of the process
// double-accounting on every allocation.
func RuntimeCollector(version string, start time.Time) Collector {
	goVersion := runtime.Version()
	return func(emit func(Sample)) {
		emit(Sample{
			Name: "frappe_build_info",
			Help: "Build identity; the value is always 1, the labels carry the versions.",
			Kind: KindGauge,
			Labels: Labels{
				"version": version,
				"go":      goVersion,
			},
			Value: 1,
		})
		emit(Sample{
			Name:  "frappe_process_uptime_seconds",
			Help:  "Seconds since the process started.",
			Kind:  KindGauge,
			Value: time.Since(start).Seconds(),
		})
		emit(Sample{
			Name:  "frappe_go_goroutines",
			Help:  "Live goroutines.",
			Kind:  KindGauge,
			Value: float64(runtime.NumGoroutine()),
		})

		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		emit(Sample{
			Name:  "frappe_go_heap_inuse_bytes",
			Help:  "Bytes in in-use heap spans.",
			Kind:  KindGauge,
			Value: float64(ms.HeapInuse),
		})
		emit(Sample{
			Name:  "frappe_go_gc_cycles_total",
			Help:  "Completed GC cycles.",
			Kind:  KindCounter,
			Value: float64(ms.NumGC),
		})
		for _, q := range gcPauseQuantiles(&ms) {
			emit(Sample{
				Name:   "frappe_go_gc_pause_seconds",
				Help:   "GC stop-the-world pause quantiles over the runtime's recent-pause window.",
				Kind:   KindGauge,
				Labels: Labels{"quantile": q.name},
				Value:  q.seconds,
			})
		}
	}
}

type gcQuantile struct {
	name    string
	seconds float64
}

// gcPauseQuantiles computes pause quantiles over MemStats.PauseNs, the
// runtime's circular buffer of the most recent 256 GC pauses. With no
// completed GC the quantiles are all zero.
func gcPauseQuantiles(ms *runtime.MemStats) []gcQuantile {
	n := int(ms.NumGC)
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	out := []gcQuantile{{"0.5", 0}, {"0.9", 0}, {"0.99", 0}}
	if n == 0 {
		return out
	}
	pauses := make([]float64, n)
	for i := 0; i < n; i++ {
		pauses[i] = float64(ms.PauseNs[i]) / 1e9
	}
	sort.Float64s(pauses)
	for i, q := range []float64{0.5, 0.9, 0.99} {
		idx := int(q * float64(n))
		if idx >= n {
			idx = n - 1
		}
		out[i].seconds = pauses[idx]
	}
	return out
}

var registerRuntimeOnce sync.Once

// RegisterRuntime installs the runtime collector on the Default
// registry once per process (serve startup calls it; tests that gather
// Default may too).
func RegisterRuntime(version string) {
	registerRuntimeOnce.Do(func() {
		Default.RegisterCollector(RuntimeCollector(version, time.Now()))
	})
}
