// Package obs is Frappé's observability layer: a stdlib-only metrics
// registry with Prometheus text exposition. The paper's whole evaluation
// (Tables 5–6) is measurement — cold vs. warm cache, per-query latency,
// index vs. expansion cost — and this package makes the same quantities
// observable in a running server instead of only in offline benchmarks.
//
// Design constraints, in order:
//
//  1. Hot paths pay one atomic op per event, never a lock. Counter and
//     Gauge are a single atomic.Int64; Histogram does one atomic add per
//     bucket observation plus a CAS loop for the float sum. Registration
//     (the only mutex) happens at package init or server startup.
//  2. Components that already keep their own atomic counters (the store
//     pager's CacheStats, the server's shed count) are not
//     double-instrumented: a Collector samples them at scrape time.
//  3. Exposition is the Prometheus text format, so any scraper, promtool
//     or curl|grep works against GET /metrics.
//
// The package-level Default registry is what every Frappé subsystem
// instruments against; tests needing isolation construct their own.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type, as exposed in the "# TYPE" comment.
type Kind string

// Metric family kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Labels name one series within a family. Empty and nil are equivalent.
type Labels map[string]string

// Default is the process-wide registry every subsystem instruments
// against. GET /metrics renders it.
var Default = NewRegistry()

// Registry holds metric families. Instrument lookups (Counter, Gauge,
// Histogram) are idempotent: the same name+labels returns the same
// instrument, so packages can declare instruments in var blocks without
// coordinating.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []Collector
}

// Collector samples externally maintained counters at scrape time. It
// must call emit once per sample; histogram samples cannot be emitted
// this way (use a Histogram instrument).
type Collector func(emit func(Sample))

// Sample is one collector-produced value.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind // KindCounter or KindGauge
	Labels Labels
	Value  float64
}

type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64 // histograms only
	series  map[string]instrument
	order   []string // insertion-ordered series keys, for stable exposition
}

type instrument interface {
	labels() Labels
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey serialises labels into a canonical map key.
func labelKey(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(ls[k])
		sb.WriteByte(',')
	}
	return sb.String()
}

// copyLabels defends against callers mutating the map after registration.
func copyLabels(ls Labels) Labels {
	if len(ls) == 0 {
		return nil
	}
	out := make(Labels, len(ls))
	for k, v := range ls {
		out[k] = v
	}
	return out
}

// get returns the family, creating it with the given shape or validating
// an existing one against it.
func (r *Registry) get(name, help string, kind Kind, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]instrument{}}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	return f
}

func (f *family) lookup(ls Labels, mk func(Labels) instrument) instrument {
	k := labelKey(ls)
	if inst, ok := f.series[k]; ok {
		return inst
	}
	inst := mk(copyLabels(ls))
	f.series[k] = inst
	f.order = append(f.order, k)
	return inst
}

// --- Counter ---

// Counter is a monotonically increasing value.
type Counter struct {
	ls Labels
	v  atomic.Int64
}

func (c *Counter) labels() Labels { return c.ls }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters never go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter returns the counter instrument for name+labels, registering
// the family on first use.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.get(name, help, KindCounter, nil)
	return f.lookup(ls, func(ls Labels) instrument { return &Counter{ls: ls} }).(*Counter)
}

// --- Gauge ---

// Gauge is a value that can go up and down (in-flight requests, epoch).
type Gauge struct {
	ls Labels
	v  atomic.Int64
}

func (g *Gauge) labels() Labels { return g.ls }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge returns the gauge instrument for name+labels.
func (r *Registry) Gauge(name, help string, ls Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.get(name, help, KindGauge, nil)
	return f.lookup(ls, func(ls Labels) instrument { return &Gauge{ls: ls} }).(*Gauge)
}

// --- Histogram ---

// LatencyBucketsMS is the default latency bucket layout, in
// milliseconds: sub-100µs index hits through multi-second cold scans,
// roughly ×2.5 per step — wide enough to separate the paper's warm
// (sub-millisecond) and cold (tens of ms) regimes.
var LatencyBucketsMS = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram counts observations into fixed cumulative-exposed buckets.
// Observe is lock-free: one atomic add on the bucket, one on the count,
// and a CAS loop folding the observation into the float64 sum.
type Histogram struct {
	ls      Labels
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits
}

func (h *Histogram) labels() Labels { return h.ls }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Bucket search: the layouts here are small (≤ ~20 bounds), so a
	// linear scan beats binary search in practice and stays branch-cheap.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a consistent-enough read of a histogram: counters are
// loaded individually (a concurrent Observe may straddle the loads, as
// with CacheStats), cumulative per Prometheus bucket semantics.
type HistSnapshot struct {
	Bounds     []float64 // upper bounds, ascending (no +Inf entry)
	Cumulative []int64   // Cumulative[i] = observations <= Bounds[i]
	Count      int64
	Sum        float64
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]int64, len(h.bounds)),
		Count:      h.count.Load(),
		Sum:        math.Float64frombits(h.sumBits.Load()),
	}
	var run int64
	for i := range h.bounds {
		// The last bucket slot holds > bounds[len-1] (the +Inf bucket) and
		// is exposed via Count.
		run += h.buckets[i].Load()
		s.Cumulative[i] = run
	}
	return s
}

// Histogram returns the histogram instrument for name+labels. buckets
// are ascending upper bounds; nil uses LatencyBucketsMS. The bucket
// layout is fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, ls Labels, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = LatencyBucketsMS
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.get(name, help, KindHistogram, buckets)
	return f.lookup(ls, func(ls Labels) instrument {
		return &Histogram{ls: ls, bounds: f.buckets, buckets: make([]atomic.Int64, len(f.buckets)+1)}
	}).(*Histogram)
}

// --- Collectors ---

// RegisterCollector adds a scrape-time sampler. Collectors run on every
// Gather under the registry lock; keep them cheap (atomic loads).
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// --- Gather ---

// Series is one exposed series of a family.
type Series struct {
	Labels Labels
	Value  float64       // counters and gauges
	Hist   *HistSnapshot // histograms
}

// Family is one gathered metric family, ready for exposition or
// programmatic reads (frappe-bench records these into its JSON).
type Family struct {
	Name   string
	Help   string
	Kind   Kind
	Series []Series
}

// Gather snapshots every registered instrument plus the output of the
// registry's collectors and any extra ones, sorted by family name.
func (r *Registry) Gather(extra ...Collector) []Family {
	r.mu.Lock()
	defer r.mu.Unlock()

	byName := map[string]*Family{}
	ordered := make([]string, 0, len(r.families))
	fam := func(name, help string, kind Kind) *Family {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &Family{Name: name, Help: help, Kind: kind}
		byName[name] = f
		ordered = append(ordered, name)
		return f
	}

	for _, f := range r.families {
		out := fam(f.name, f.help, f.kind)
		for _, k := range f.order {
			switch inst := f.series[k].(type) {
			case *Counter:
				out.Series = append(out.Series, Series{Labels: inst.ls, Value: float64(inst.Value())})
			case *Gauge:
				out.Series = append(out.Series, Series{Labels: inst.ls, Value: float64(inst.Value())})
			case *Histogram:
				snap := inst.Snapshot()
				out.Series = append(out.Series, Series{Labels: inst.ls, Hist: &snap})
			}
		}
	}
	emit := func(s Sample) {
		out := fam(s.Name, s.Help, s.Kind)
		out.Series = append(out.Series, Series{Labels: copyLabels(s.Labels), Value: s.Value})
	}
	for _, c := range r.collectors {
		c(emit)
	}
	for _, c := range extra {
		c(emit)
	}

	sort.Strings(ordered)
	fams := make([]Family, 0, len(ordered))
	for _, name := range ordered {
		fams = append(fams, *byName[name])
	}
	return fams
}

// Find returns the gathered family with the given name, nil when absent.
func Find(fams []Family, name string) *Family {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}
