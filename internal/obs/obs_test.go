package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frappe_test_total", "help", nil)
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("frappe_test_total", "help", nil); again != c {
		t.Fatal("re-registration returned a different instrument")
	}

	g := r.Gauge("frappe_test_gauge", "help", nil)
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestLabelSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("frappe_reqs_total", "h", Labels{"route": "/api/query"})
	b := r.Counter("frappe_reqs_total", "h", Labels{"route": "/api/search"})
	if a == b {
		t.Fatal("distinct labels mapped to one instrument")
	}
	a.Inc()
	a.Inc()
	b.Inc()
	fams := r.Gather()
	f := Find(fams, "frappe_reqs_total")
	if f == nil || len(f.Series) != 2 {
		t.Fatalf("want 2 series, got %+v", f)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("frappe_x", "h", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("frappe_x", "h", nil)
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("frappe_lat_ms", "h", nil, []float64{1, 5, 10})
	// Prometheus buckets are inclusive of the upper bound: le="1" counts 1.0.
	for _, v := range []float64{0.5, 1.0, 1.0001, 5.0, 9.99, 10.0, 10.01, 1e9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if want := []int64{2, 4, 6}; s.Cumulative[0] != want[0] || s.Cumulative[1] != want[1] || s.Cumulative[2] != want[2] {
		t.Fatalf("cumulative = %v, want %v", s.Cumulative, want)
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	wantSum := 0.5 + 1.0 + 1.0001 + 5.0 + 9.99 + 10.0 + 10.01 + 1e9
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestConcurrentInstrumentsAndGather(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frappe_conc_total", "h", nil)
	g := r.Gauge("frappe_conc_gauge", "h", nil)
	h := r.Histogram("frappe_conc_ms", "h", nil, []float64{1, 10, 100})

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 150))
				if i%100 == 0 {
					// Scrapes race with writers; must stay sane under -race.
					r.Gather()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("hist count = %d, want %d", s.Count, workers*per)
	}
	// Sum of small integers: exact in float64, so strict equality holds.
	var want float64
	for i := 0; i < per; i++ {
		want += float64(i % 150)
	}
	if s.Sum != want*workers {
		t.Fatalf("hist sum = %v, want %v", s.Sum, want*workers)
	}
}

func TestCollectorSampling(t *testing.T) {
	r := NewRegistry()
	hits := int64(41)
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "frappe_ext_hits_total", Help: "h", Kind: KindCounter, Labels: Labels{"file": "nodes"}, Value: float64(hits)})
	})
	hits++
	f := Find(r.Gather(), "frappe_ext_hits_total")
	if f == nil || len(f.Series) != 1 || f.Series[0].Value != 42 {
		t.Fatalf("collector sample wrong: %+v", f)
	}
	// Extra collectors are per-Gather, not retained.
	f = Find(r.Gather(func(emit func(Sample)) {
		emit(Sample{Name: "frappe_extra", Kind: KindGauge, Value: 1})
	}), "frappe_extra")
	if f == nil {
		t.Fatal("extra collector not gathered")
	}
	if Find(r.Gather(), "frappe_extra") != nil {
		t.Fatal("extra collector leaked into registry")
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("frappe_b_total", "counts b", Labels{"route": "/api/query", "code": "200"}).Add(3)
	r.Counter("frappe_b_total", "counts b", Labels{"route": "/api/search", "code": "200"}).Inc()
	r.Gauge("frappe_a_gauge", `tricky "help"`+"\nline`", nil).Set(2)
	h := r.Histogram("frappe_c_ms", "lat", nil, []float64{1, 10})
	h.Observe(0.5)
	h.Observe(7)
	h.Observe(99)

	var buf bytes.Buffer
	if err := WriteText(&buf, r.Gather()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := strings.Join([]string{
		`# HELP frappe_a_gauge tricky "help"\nline` + "`",
		`# TYPE frappe_a_gauge gauge`,
		`frappe_a_gauge 2`,
		`# HELP frappe_b_total counts b`,
		`# TYPE frappe_b_total counter`,
		`frappe_b_total{code="200",route="/api/query"} 3`,
		`frappe_b_total{code="200",route="/api/search"} 1`,
		`# HELP frappe_c_ms lat`,
		`# TYPE frappe_c_ms histogram`,
		`frappe_c_ms_bucket{le="1"} 1`,
		`frappe_c_ms_bucket{le="10"} 2`,
		`frappe_c_ms_bucket{le="+Inf"} 3`,
		`frappe_c_ms_sum 106.5`,
		`frappe_c_ms_count 3`,
		``,
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("frappe_esc_total", "", Labels{"path": `a\b"c` + "\nd"}).Inc()
	var buf bytes.Buffer
	if err := WriteText(&buf, r.Gather()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `{path="a\\b\"c\nd"}`) {
		t.Fatalf("escaping wrong: %q", buf.String())
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		3:      "3",
		-7:     "-7",
		0.25:   "0.25",
		1e15:   "1e+15",
		1234.5: "1234.5",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}
