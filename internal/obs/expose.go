package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders gathered families in the Prometheus text exposition
// format (version 0.0.4): "# HELP"/"# TYPE" comments, one line per
// series, histograms as cumulative _bucket{le=...} plus _sum and _count.
func WriteText(w io.Writer, fams []Family) error {
	for _, f := range fams {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		series := append([]Series(nil), f.Series...)
		sort.Slice(series, func(i, j int) bool {
			return labelKey(series[i].Labels) < labelKey(series[j].Labels)
		})
		for _, s := range series {
			if f.Kind == KindHistogram && s.Hist != nil {
				if err := writeHist(w, f.Name, s.Labels, s.Hist); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, renderLabels(s.Labels, "", ""), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHist(w io.Writer, name string, ls Labels, h *HistSnapshot) error {
	for i, b := range h.Bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(ls, "le", formatValue(b)), h.Cumulative[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(ls, "le", "+Inf"), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(ls, "", ""), formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(ls, "", ""), h.Count)
	return err
}

// renderLabels renders {k="v",...} with an optional extra pair appended
// (the histogram "le" bound). Returns "" when there is nothing to render.
func renderLabels(ls Labels, extraKey, extraVal string) string {
	if len(ls) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(ls[k]))
		sb.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraVal))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatValue renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest-round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
