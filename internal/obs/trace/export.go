package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"

	"frappe/internal/atomicfile"
)

// DefaultExportMaxBytes is the rotation threshold for the JSON-lines
// exporter: when the live file reaches it, it is rotated to "<path>.1"
// (replacing any previous rotation) and a fresh file is started.
const DefaultExportMaxBytes = 8 << 20

// Exporter appends retained traces to a JSON-lines file, one span per
// line, fsynced per trace. Rotation follows the atomicfile discipline:
// the rename and the fresh file are made durable with a directory
// fsync, so a crash leaves either the old log, the rotated pair, or
// both — never a torn line at a rotation boundary.
type Exporter struct {
	path     string
	maxBytes int64

	mu   sync.Mutex
	f    *os.File
	size int64
}

// NewExporter opens (or creates, appending) the export file. maxBytes
// <= 0 uses DefaultExportMaxBytes.
func NewExporter(path string, maxBytes int64) (*Exporter, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultExportMaxBytes
	}
	e := &Exporter{path: path, maxBytes: maxBytes}
	if err := e.open(); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Exporter) open() error {
	f, err := os.OpenFile(e.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	e.f, e.size = f, fi.Size()
	return atomicfile.SyncDir(filepath.Dir(e.path))
}

// export writes every span of one retained trace. Failures increment
// frappe_trace_export_errors_total and drop the trace's spans — the
// exporter never fails a request over its log file.
func (e *Exporter) export(rec *Record) {
	var buf []byte
	for i := range rec.Spans {
		line, err := json.Marshal(&rec.Spans[i])
		if err != nil {
			mExportErrors.Inc()
			return
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		mExportErrors.Inc()
		return
	}
	if e.size+int64(len(buf)) > e.maxBytes && e.size > 0 {
		if err := e.rotateLocked(); err != nil {
			mExportErrors.Inc()
			return
		}
	}
	if _, err := e.f.Write(buf); err != nil {
		mExportErrors.Inc()
		return
	}
	if err := e.f.Sync(); err != nil {
		mExportErrors.Inc()
		return
	}
	e.size += int64(len(buf))
	mExportedSpans.Add(int64(len(rec.Spans)))
}

// rotateLocked moves the live file to "<path>.1" and starts a fresh
// one. Caller holds e.mu.
func (e *Exporter) rotateLocked() error {
	if err := e.f.Sync(); err != nil {
		return err
	}
	if err := e.f.Close(); err != nil {
		e.f = nil
		return err
	}
	e.f = nil
	if err := os.Rename(e.path, e.path+".1"); err != nil {
		return err
	}
	return e.open()
}

// Close flushes and closes the export file.
func (e *Exporter) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return nil
	}
	err := e.f.Sync()
	if cerr := e.f.Close(); err == nil {
		err = cerr
	}
	e.f = nil
	return err
}
