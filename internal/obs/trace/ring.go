package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSampleRate is the probability an unremarkable trace (not slow,
// errored, or force-retained) survives tail sampling.
const DefaultSampleRate = 0.10

// Config sizes a Tracer. The zero value is usable: 256 retained traces
// across 8 stripes, no probabilistic sampling (only slow/error/forced
// traces are kept), no slow threshold, no exporter.
type Config struct {
	// Capacity is the total number of retained traces across all
	// stripes (default 256). Oldest-in-stripe is evicted on overflow.
	Capacity int
	// Stripes is the number of independently locked rings (default 8,
	// rounded up to a power of two). Traces map to stripes by trace-ID
	// hash, so concurrent retention rarely contends. Use 1 in tests
	// that need global eviction order.
	Stripes int
	// SampleRate is the retention probability for unremarkable traces,
	// in [0, 1]. Zero keeps none of them — slow, errored, and forced
	// traces are always kept regardless.
	SampleRate float64
	// SlowThreshold marks a root span slow when its wall time reaches
	// it; slow traces are always retained. Zero disables the check.
	SlowThreshold time.Duration
	// Export, when non-nil, receives every retained trace.
	Export *Exporter
}

// Summary is the list view of a retained trace (GET /api/debug/traces).
type Summary struct {
	TraceID string    `json:"traceId"`
	Root    string    `json:"root"`
	Start   time.Time `json:"start"`
	Millis  float64   `json:"millis"`
	Spans   int       `json:"spans"`
	Reason  string    `json:"reason"`
	Error   string    `json:"error,omitempty"`

	seq uint64 // retention order, newest-first sort key
}

// Record is one retained trace: summary plus the full span tree.
type Record struct {
	Summary
	// DroppedSpans counts spans beyond the per-trace cap; non-zero means
	// the tree is truncated, not that work was lost.
	DroppedSpans int          `json:"droppedSpans,omitempty"`
	Spans        []SpanRecord `json:"spanTree"`
}

type stripe struct {
	mu    sync.Mutex
	slots []*Record // ring, oldest overwritten at next
	next  int
}

// Tracer owns the retained-trace ring and makes the tail-sampling
// decision when a root span ends. A nil *Tracer is valid and disables
// tracing entirely (StartRoot returns the nil no-op span).
type Tracer struct {
	sampleRate float64
	slow       time.Duration
	exp        *Exporter
	stripes    []*stripe
	mask       uint64
	seq        atomic.Uint64
}

// New builds a Tracer from cfg (see Config for defaults).
func New(cfg Config) *Tracer {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 256
	}
	n := cfg.Stripes
	if n <= 0 {
		n = 8
	}
	// Power-of-two stripe count so stripeFor is a mask, not a modulo.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	n = pow
	per := capacity / n
	if per < 1 {
		per = 1
	}
	t := &Tracer{
		sampleRate: cfg.SampleRate,
		slow:       cfg.SlowThreshold,
		exp:        cfg.Export,
		stripes:    make([]*stripe, n),
		mask:       uint64(n - 1),
	}
	for i := range t.stripes {
		t.stripes[i] = &stripe{slots: make([]*Record, per)}
	}
	return t
}

// Parent is an upstream trace context (a parsed traceparent header).
type Parent struct {
	Trace TraceID
	Span  SpanID
	Valid bool
}

// StartRoot begins a new trace (or continues parent's) with a root
// span. Returns nil — the no-op span — when t is nil.
func (t *Tracer) StartRoot(name string, parent Parent, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	st := &state{}
	sp := &Span{tr: t, st: st, id: newSpanID(), root: true, name: name, start: time.Now(), attrs: attrs}
	if parent.Valid {
		st.id = parent.Trace
		sp.parent = parent.Span
	} else {
		st.id = newTraceID()
	}
	return sp
}

// finish runs the tail-sampling decision for a completed trace. root is
// the root span's record, dur its wall time.
func (t *Tracer) finish(st *state, root SpanRecord, dur time.Duration) {
	st.mu.Lock()
	st.done = true
	errs, forced := st.errs, st.forced
	spans, dropped := st.spans, st.dropped
	st.mu.Unlock()

	var reason string
	switch {
	case forced != "":
		reason = forced
	case errs > 0:
		reason = "error"
	case t.slow > 0 && dur >= t.slow:
		reason = "slow"
	case t.sampleRate > 0 && randFloat() < t.sampleRate:
		reason = "sampled"
	default:
		mTraceDropped.Inc()
		return
	}
	retainedCounter(reason).Inc()

	rec := &Record{
		Summary: Summary{
			TraceID: root.TraceID,
			Root:    root.Name,
			Start:   root.Start,
			Millis:  root.Millis,
			Spans:   len(spans),
			Reason:  reason,
			Error:   root.Error,
			seq:     t.seq.Add(1),
		},
		DroppedSpans: dropped,
		Spans:        spans,
	}
	s := t.stripeFor(st.id)
	s.mu.Lock()
	s.slots[s.next] = rec
	s.next = (s.next + 1) % len(s.slots)
	s.mu.Unlock()

	if t.exp != nil {
		t.exp.export(rec)
	}
}

func (t *Tracer) stripeFor(id TraceID) *stripe {
	// The trace ID is already uniformly random (or an upstream's random
	// ID); the low byte is as good a hash as any.
	return t.stripes[uint64(id[15])&t.mask]
}

// Traces lists retained traces, newest retention first.
func (t *Tracer) Traces() []Summary {
	if t == nil {
		return nil
	}
	var out []Summary
	for _, s := range t.stripes {
		s.mu.Lock()
		for _, r := range s.slots {
			if r != nil {
				out = append(out, r.Summary)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out
}

// Get fetches a retained trace by its 32-hex-char ID. When the same
// upstream trace ID was retained more than once, the newest wins.
func (t *Tracer) Get(id string) (*Record, bool) {
	if t == nil {
		return nil, false
	}
	tid, ok := ParseTraceID(id)
	if !ok {
		return nil, false
	}
	want := tid.String()
	s := t.stripeFor(tid)
	var best *Record
	s.mu.Lock()
	for _, r := range s.slots {
		if r != nil && r.TraceID == want && (best == nil || r.seq > best.seq) {
			best = r
		}
	}
	s.mu.Unlock()
	return best, best != nil
}
