// Package trace is Frappé's request-tracing layer: a stdlib-only span
// model carried through context.Context, W3C traceparent ingestion at
// the HTTP edge, and a lock-striped ring of recent traces retained by
// tail-based sampling. It follows the obs registry's philosophy — no
// dependencies, hot paths pay atomics, and everything it records is
// inspectable from the running process (GET /api/debug/traces).
//
// A trace doubles as a per-request resource-attribution record: the
// server, engine, planner, executor and store pager attach spans and
// typed attributes (qcache hit/shared, plan rewrites, per-clause rows
// and db-hits, page faults and bytes read), so "why was this request
// slow" is answerable after the fact from the trace alone.
//
// Sampling is tail-based: the decision is made when the root span ends,
// when the outcome is known. Error, budget-abort, degraded and
// slow-over-threshold traces are always retained; unremarkable traces
// are retained with Config.SampleRate probability. Disabled tracing
// (nil *Tracer, or a context without a span) costs one pointer check
// per instrumentation site: every Span method is nil-safe.
package trace

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// --- IDs ---

// TraceID is a 16-byte W3C trace ID (32 hex chars in headers).
type TraceID [16]byte

// SpanID is an 8-byte W3C span ID (16 hex chars in headers).
type SpanID [8]byte

// IsZero reports the invalid all-zero trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports the invalid all-zero span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID decodes a 32-hex-char trace ID; the all-zero ID is
// invalid per the W3C spec.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 2*len(t) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// rngState drives ID generation and sampling decisions: splitmix64 over
// an atomic counter seeded once from crypto/rand. Lock-free, unique per
// call, and far cheaper than a crypto/rand read per span.
var rngState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := cryptorand.Read(seed[:]); err == nil {
		rngState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		rngState.Store(uint64(time.Now().UnixNano()))
	}
}

func nextRand() uint64 {
	x := rngState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// randFloat returns a uniform value in [0, 1).
func randFloat() float64 { return float64(nextRand()>>11) / (1 << 53) }

func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		binary.LittleEndian.PutUint64(t[0:8], nextRand())
		binary.LittleEndian.PutUint64(t[8:16], nextRand())
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.LittleEndian.PutUint64(s[:], nextRand())
	}
	return s
}

// --- typed attributes ---

type attrKind uint8

const (
	kindStr attrKind = iota
	kindInt
	kindFloat
	kindBool
)

// Attr is one typed span attribute. Construct with Str/Int/Float/Bool;
// the typed representation avoids boxing on the hot path (values are
// only turned into interfaces at serialisation time).
type Attr struct {
	Key  string
	kind attrKind
	s    string
	n    int64
	f    float64
	b    bool
}

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: kindStr, s: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, n: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, f: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, kind: kindBool, b: v} }

// Value returns the attribute's value as an interface (serialisation).
func (a Attr) Value() any {
	switch a.kind {
	case kindInt:
		return a.n
	case kindFloat:
		return a.f
	case kindBool:
		return a.b
	default:
		return a.s
	}
}

// --- span model ---

// maxSpansPerTrace bounds one trace's span list so a pathological query
// (or an instrumentation bug) cannot grow a trace without limit; spans
// beyond the cap are counted in the record, not stored.
const maxSpansPerTrace = 512

// SpanRecord is one finished span, ready for JSON (the debug endpoint
// and the JSON-lines exporter share this shape).
type SpanRecord struct {
	TraceID string         `json:"traceId"`
	SpanID  string         `json:"spanId"`
	Parent  string         `json:"parentId,omitempty"`
	Name    string         `json:"name"`
	Start   time.Time      `json:"start"`
	Millis  float64        `json:"millis"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// state is the per-trace accumulator shared by every span of one trace.
type state struct {
	id TraceID

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int    // spans beyond maxSpansPerTrace
	errs    int    // spans that ended with SetError
	forced  string // first Retain reason, "" when none
	done    bool   // root has ended; late spans are discarded
}

// Span is one timed operation within a trace. The zero of *Span (nil)
// is a valid no-op span: every method checks the receiver, so
// instrumentation sites never branch on "is tracing on".
type Span struct {
	tr     *Tracer
	st     *state
	id     SpanID
	parent SpanID
	root   bool
	name   string
	start  time.Time

	mu     sync.Mutex
	attrs  []Attr
	errMsg string
	ended  bool
}

// TraceID returns the span's trace ID as 32 hex chars ("" for nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.st.id.String()
}

// SpanID returns the span's ID as 16 hex chars ("" for nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.id.String()
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// SetError marks the span failed. Any errored span makes the whole
// trace retained by tail sampling (budget aborts and timeouts surface
// as errors, so they are always kept).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	first := s.errMsg == ""
	s.errMsg = err.Error()
	s.mu.Unlock()
	if first {
		s.st.mu.Lock()
		s.st.errs++
		s.st.mu.Unlock()
	}
}

// Retain forces the trace to be kept regardless of sampling, recording
// why ("degraded", "budget", ...). The first reason wins.
func (s *Span) Retain(reason string) {
	if s == nil {
		return
	}
	s.st.mu.Lock()
	if s.st.forced == "" {
		s.st.forced = reason
	}
	s.st.mu.Unlock()
}

// Child starts a sub-span under s, sharing its trace.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	return s.ChildSince(name, time.Time{}, attrs...)
}

// ChildSince starts a sub-span whose clock began at start (zero means
// now) — used by instrumentation that measures first and records after.
func (s *Span) ChildSince(name string, start time.Time, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	if start.IsZero() {
		start = time.Now()
	}
	return &Span{tr: s.tr, st: s.st, id: newSpanID(), parent: s.id, name: name, start: start, attrs: attrs}
}

// End finishes the span, appending its record to the trace. Ending the
// root span triggers the tail-sampling decision. End is idempotent.
func (s *Span) End() { s.end(time.Now()) }

func (s *Span) end(now time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		TraceID: s.st.id.String(),
		SpanID:  s.id.String(),
		Name:    s.name,
		Start:   s.start,
		Millis:  float64(now.Sub(s.start).Microseconds()) / 1000,
		Error:   s.errMsg,
	}
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value()
		}
	}
	s.mu.Unlock()

	mSpans.Inc()
	st := s.st
	st.mu.Lock()
	if st.done {
		st.mu.Unlock()
		return // late span after the root's decision: nowhere to go
	}
	if len(st.spans) < maxSpansPerTrace {
		st.spans = append(st.spans, rec)
	} else {
		st.dropped++
	}
	st.mu.Unlock()

	if s.root {
		s.tr.finish(st, rec, now.Sub(s.start))
	}
}

// --- context carriage ---

type ctxKey struct{}

// ContextWith returns ctx carrying s. A nil span returns ctx unchanged,
// so callers can chain without branching.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span, nil when the request is
// untraced. The nil result is itself a usable no-op span.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
