package trace

import "frappe/internal/obs"

// Tracer health metrics. Registered at package init so the
// frappe_trace_* families appear on /metrics from the first scrape,
// even before any request is traced.
var (
	mSpans = obs.Default.Counter("frappe_trace_spans_total",
		"Spans recorded by the tracer.", nil)
	mTraceDropped = obs.Default.Counter("frappe_trace_dropped_total",
		"Completed traces discarded by tail sampling.", nil)
	mExportedSpans = obs.Default.Counter("frappe_trace_exported_spans_total",
		"Spans written by the JSON-lines exporter.", nil)
	mExportErrors = obs.Default.Counter("frappe_trace_export_errors_total",
		"Exporter write or rotation failures.", nil)

	// Retention reasons are a closed vocabulary so the label space stays
	// bounded; Retain() callers outside it land in "forced".
	mRetained = map[string]*obs.Counter{
		"slow":     retainedFor("slow"),
		"error":    retainedFor("error"),
		"sampled":  retainedFor("sampled"),
		"budget":   retainedFor("budget"),
		"degraded": retainedFor("degraded"),
		"forced":   retainedFor("forced"),
	}
)

func retainedFor(reason string) *obs.Counter {
	return obs.Default.Counter("frappe_trace_retained_total",
		"Traces retained by tail sampling, by reason.",
		obs.Labels{"reason": reason})
}

func retainedCounter(reason string) *obs.Counter {
	if c, ok := mRetained[reason]; ok {
		return c
	}
	return mRetained["forced"]
}
