package trace

import "strings"

// W3C trace-context (https://www.w3.org/TR/trace-context/) header name
// and the version this implementation emits.
const (
	TraceparentHeader = "traceparent"
	version           = "00"
	flagSampled       = "01"
)

// ParseTraceparent decodes a W3C traceparent header value:
// version "00", 32-hex trace ID, 16-hex span ID, 2-hex flags, all
// lowercase and dash-separated. Malformed or all-zero values return an
// invalid Parent — the caller starts a fresh trace, never fails the
// request over a bad header.
func ParseTraceparent(h string) Parent {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != version || len(parts[3]) != 2 {
		return Parent{}
	}
	// The spec mandates lowercase hex; hex.Decode would accept uppercase.
	if !isLowerHex(parts[1]) {
		return Parent{}
	}
	tid, ok := ParseTraceID(parts[1])
	if !ok {
		return Parent{}
	}
	if len(parts[2]) != 16 || !isLowerHex(parts[2]) || !isLowerHex(parts[3]) {
		return Parent{}
	}
	var sid SpanID
	for i := 0; i < 8; i++ {
		sid[i] = unhex(parts[2][2*i])<<4 | unhex(parts[2][2*i+1])
	}
	if sid.IsZero() {
		return Parent{}
	}
	return Parent{Trace: tid, Span: sid, Valid: true}
}

// Traceparent formats the span's context as an outgoing traceparent
// value ("" for the nil span). Retention isn't knowable until the trace
// ends, so the sampled flag is always set — tail sampling decides later.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return version + "-" + s.st.id.String() + "-" + s.id.String() + "-" + flagSampled
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func unhex(c byte) byte {
	if c <= '9' {
		return c - '0'
	}
	return c - 'a' + 10
}
