package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// endAfter finishes a span with a synthetic duration so tests can
// classify slow vs. fast deterministically.
func endAfter(s *Span, d time.Duration) { s.end(s.start.Add(d)) }

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	sp := tr.StartRoot("root", Parent{})
	hdr := sp.Traceparent()
	p := ParseTraceparent(hdr)
	if !p.Valid {
		t.Fatalf("own traceparent %q did not parse", hdr)
	}
	if p.Trace.String() != sp.TraceID() || p.Span.String() != sp.SpanID() {
		t.Fatalf("round trip mismatch: %q vs trace=%s span=%s", hdr, sp.TraceID(), sp.SpanID())
	}
	sp.End()

	// A valid upstream header continues the trace and records the parent.
	const up = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	p = ParseTraceparent(up)
	if !p.Valid {
		t.Fatalf("spec example %q did not parse", up)
	}
	child := tr.StartRoot("root", p)
	if child.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("upstream trace ID not adopted: %s", child.TraceID())
	}
	child.End()
	rec, ok := tr.Get("4bf92f3577b34da6a3ce929d0e0e4736")
	if !ok {
		t.Fatal("continued trace not retained")
	}
	if rec.Spans[0].Parent != "00f067aa0ba902b7" {
		t.Fatalf("root span parent = %q, want upstream span ID", rec.Spans[0].Parent)
	}
}

func TestTraceparentMalformed(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // 3 parts
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // unknown version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",     // short trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7zz-01", // long span
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",    // short flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-xy",   // non-hex flags
	}
	for _, h := range bad {
		if ParseTraceparent(h).Valid {
			t.Errorf("ParseTraceparent(%q) = valid, want invalid", h)
		}
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	s.SetAttr(Int("x", 1))
	s.SetError(errors.New("boom"))
	s.Retain("forced")
	s.End()
	if s.TraceID() != "" || s.Traceparent() != "" {
		t.Fatal("nil span leaked identifiers")
	}
	if c := s.Child("sub"); c != nil {
		t.Fatal("nil span produced a live child")
	}
	var tr *Tracer
	if tr.StartRoot("x", Parent{}) != nil {
		t.Fatal("nil tracer produced a live span")
	}
	if got := tr.Traces(); got != nil {
		t.Fatalf("nil tracer listed traces: %v", got)
	}
	ctx := ContextWith(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil span stored in context")
	}
}

func TestTailSamplingRetention(t *testing.T) {
	tr := New(Config{Capacity: 64, Stripes: 1, SlowThreshold: 100 * time.Millisecond})

	fast := tr.StartRoot("fast", Parent{})
	endAfter(fast, time.Millisecond)
	if _, ok := tr.Get(fast.TraceID()); ok {
		t.Fatal("unremarkable trace retained at SampleRate 0")
	}

	slow := tr.StartRoot("slow", Parent{})
	endAfter(slow, 150*time.Millisecond)
	rec, ok := tr.Get(slow.TraceID())
	if !ok || rec.Reason != "slow" {
		t.Fatalf("slow trace: retained=%v reason=%v", ok, rec)
	}

	failed := tr.StartRoot("failed", Parent{})
	failed.SetError(errors.New("boom"))
	endAfter(failed, time.Millisecond)
	rec, ok = tr.Get(failed.TraceID())
	if !ok || rec.Reason != "error" || rec.Error != "boom" {
		t.Fatalf("errored trace: retained=%v rec=%+v", ok, rec)
	}

	// An error on a child span retains the whole trace.
	childErr := tr.StartRoot("child-err", Parent{})
	c := childErr.Child("sub")
	c.SetError(errors.New("inner"))
	c.End()
	endAfter(childErr, time.Millisecond)
	if rec, ok = tr.Get(childErr.TraceID()); !ok || rec.Reason != "error" {
		t.Fatalf("child error did not retain trace: %v %+v", ok, rec)
	}

	forced := tr.StartRoot("forced", Parent{})
	forced.Retain("degraded")
	endAfter(forced, time.Millisecond)
	if rec, ok = tr.Get(forced.TraceID()); !ok || rec.Reason != "degraded" {
		t.Fatalf("forced trace: retained=%v rec=%+v", ok, rec)
	}

	always := New(Config{Capacity: 8, Stripes: 1, SampleRate: 1})
	s := always.StartRoot("sampled", Parent{})
	endAfter(s, time.Microsecond)
	if rec, ok = always.Get(s.TraceID()); !ok || rec.Reason != "sampled" {
		t.Fatalf("SampleRate=1 trace: retained=%v rec=%+v", ok, rec)
	}
}

func TestRingEvictionOrder(t *testing.T) {
	// One stripe of 4 slots → global FIFO eviction, newest-first listing.
	tr := New(Config{Capacity: 4, Stripes: 1, SampleRate: 1})
	var ids []string
	for i := 0; i < 7; i++ {
		s := tr.StartRoot(fmt.Sprintf("q%d", i), Parent{})
		s.End()
		ids = append(ids, s.TraceID())
	}
	got := tr.Traces()
	if len(got) != 4 {
		t.Fatalf("retained %d traces, want ring capacity 4", len(got))
	}
	for i, want := range []string{"q6", "q5", "q4", "q3"} {
		if got[i].Root != want {
			t.Fatalf("listing[%d] = %s, want %s (newest first)", i, got[i].Root, want)
		}
	}
	for _, id := range ids[:3] {
		if _, ok := tr.Get(id); ok {
			t.Fatalf("evicted trace %s still retrievable", id)
		}
	}
	for _, id := range ids[3:] {
		if _, ok := tr.Get(id); !ok {
			t.Fatalf("recent trace %s missing", id)
		}
	}
}

// TestConcurrentTailSampling drives 32 goroutines through the tracer
// under -race and asserts the tail-sampling invariant the issue pins:
// 100% of error and slow traces are retained (capacity permitting),
// and every retained unremarkable trace is one that actually completed.
func TestConcurrentTailSampling(t *testing.T) {
	const (
		goroutines = 32
		perG       = 40
	)
	// Capacity exceeds total traces so retention is decided purely by
	// sampling, never by ring overflow.
	tr := New(Config{Capacity: goroutines * perG * 2, Stripes: 8,
		SlowThreshold: 50 * time.Millisecond})

	var mu sync.Mutex
	mustKeep := map[string]string{} // trace ID → expected reason
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s := tr.StartRoot(fmt.Sprintf("g%d-%d", g, i), Parent{})
				c := s.Child("sub", Int("i", int64(i)))
				switch i % 4 {
				case 0: // slow
					c.End()
					mu.Lock()
					mustKeep[s.TraceID()] = "slow"
					mu.Unlock()
					endAfter(s, 60*time.Millisecond)
				case 1: // error
					c.SetError(errors.New("boom"))
					c.End()
					mu.Lock()
					mustKeep[s.TraceID()] = "error"
					mu.Unlock()
					endAfter(s, time.Millisecond)
				case 2: // forced
					c.End()
					s.Retain("budget")
					mu.Lock()
					mustKeep[s.TraceID()] = "budget"
					mu.Unlock()
					endAfter(s, time.Millisecond)
				default: // unremarkable: dropped at SampleRate 0
					c.End()
					endAfter(s, time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()

	for id, reason := range mustKeep {
		rec, ok := tr.Get(id)
		if !ok {
			t.Fatalf("remarkable trace %s (%s) was not retained", id, reason)
		}
		if rec.Reason != reason {
			t.Fatalf("trace %s retained for %q, want %q", id, rec.Reason, reason)
		}
		if rec.Spans[len(rec.Spans)-1].Name == "" {
			t.Fatalf("trace %s has an empty span", id)
		}
	}
	for _, sum := range tr.Traces() {
		if _, ok := mustKeep[sum.TraceID]; !ok {
			t.Fatalf("unremarkable trace %s retained at SampleRate 0", sum.TraceID)
		}
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := New(Config{Capacity: 8, Stripes: 1, SampleRate: 1})
	root := tr.StartRoot("http POST /api/query", Parent{}, Str("route", "/api/query"))
	eng := root.Child("engine.query", Int("epoch", 3))
	pl := eng.Child("plan.compile")
	pl.SetAttr(Bool("fallback", false))
	pl.End()
	ex := eng.Child("query.execute")
	ex.SetAttr(Int("rows", 42))
	ex.End()
	eng.End()
	root.End()

	rec, ok := tr.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	byName := map[string]SpanRecord{}
	for _, s := range rec.Spans {
		byName[s.Name] = s
	}
	if len(byName) != 4 {
		t.Fatalf("got %d spans, want 4: %v", len(byName), rec.Spans)
	}
	if byName["plan.compile"].Parent != byName["engine.query"].SpanID ||
		byName["query.execute"].Parent != byName["engine.query"].SpanID {
		t.Fatal("executor spans not parented under engine.query")
	}
	if byName["engine.query"].Parent != byName["http POST /api/query"].SpanID {
		t.Fatal("engine span not parented under root")
	}
	if byName["http POST /api/query"].Parent != "" {
		t.Fatal("root span has a parent")
	}
	if v, _ := byName["query.execute"].Attrs["rows"].(int64); v != 42 {
		t.Fatalf("rows attr = %v, want 42", byName["query.execute"].Attrs["rows"])
	}
}

func TestSpanCapAndLateSpans(t *testing.T) {
	tr := New(Config{Capacity: 8, Stripes: 1, SampleRate: 1})
	root := tr.StartRoot("big", Parent{})
	for i := 0; i < maxSpansPerTrace+10; i++ {
		root.Child("c").End()
	}
	root.End()
	rec, ok := tr.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(rec.Spans) != maxSpansPerTrace {
		t.Fatalf("stored %d spans, want cap %d", len(rec.Spans), maxSpansPerTrace)
	}
	// +1: the root span itself also arrived after the cap.
	if rec.DroppedSpans != 11 {
		t.Fatalf("dropped = %d, want 11", rec.DroppedSpans)
	}
	// A span ended after the root's decision must not mutate the record.
	late := root.Child("late")
	late.End()
	again, _ := tr.Get(root.TraceID())
	if len(again.Spans) != maxSpansPerTrace || again.DroppedSpans != 11 {
		t.Fatal("late span mutated a finished trace")
	}
}

func TestExporterWritesAndRotates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	exp, err := NewExporter(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	tr := New(Config{Capacity: 64, Stripes: 1, SampleRate: 1, Export: exp})

	var last string
	for i := 0; i < 40; i++ {
		s := tr.StartRoot("q", Parent{}, Str("pad", strings.Repeat("x", 64)))
		last = s.TraceID()
		s.Child("sub").End()
		s.End()
	}
	live, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("no rotated file after writes past maxBytes: %v", err)
	}
	// Rotation keeps the live file plus one predecessor; every surviving
	// line must be standalone JSON, the newest trace must be in the live
	// file, and no file may exceed the rotation threshold by more than
	// one trace's worth of spans.
	all := append(rotated, live...)
	var sawLast bool
	for _, line := range strings.Split(strings.TrimSpace(string(all)), "\n") {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if rec.TraceID == last {
			sawLast = true
		}
	}
	if !sawLast {
		t.Fatal("newest trace's spans missing from export files")
	}
	if int64(len(rotated)) > 3*2048 {
		t.Fatalf("rotated file grew to %d bytes, threshold 2048 not honored", len(rotated))
	}
}
