package server

import (
	"strings"
	"testing"
)

// TestQueryExplainField: "explain":true returns the planner's EXPLAIN
// rendering alongside the rows, without disturbing execution.
func TestQueryExplainField(t *testing.T) {
	ts := testServer(t)
	out := postQuery(t, ts, `{"query": "START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls*]-> m RETURN distinct m", "explain": true}`)
	plan, _ := out["plan"].(string)
	if !strings.Contains(plan, "Plan (stats generation") {
		t.Fatalf("plan field missing or malformed: %q", plan)
	}
	if !strings.Contains(plan, "closure rewrite") {
		t.Fatalf("figure-6-shaped query not rewritten:\n%s", plan)
	}
	if out["count"].(float64) == 0 {
		t.Fatal("explain must not suppress rows")
	}

	// Without the flag the field is absent.
	out = postQuery(t, ts, `{"query": "MATCH (n:module) RETURN distinct n"}`)
	if _, ok := out["plan"]; ok {
		t.Fatalf("plan field present without explain: %v", out["plan"])
	}
}

// TestProfileCarriesPlan: PROFILE responses embed the EXPLAIN rendering
// inside the profile rather than the top-level field.
func TestProfileCarriesPlan(t *testing.T) {
	ts := testServer(t)
	out := postQuery(t, ts, `{"query": "MATCH (n:module) RETURN n.short_name", "profile": true}`)
	prof, _ := out["profile"].(map[string]any)
	if prof == nil {
		t.Fatalf("no profile in %v", out)
	}
	if plan, _ := prof["plan"].(string); !strings.Contains(plan, "Plan (stats generation") {
		t.Fatalf("profile.plan missing: %v", prof["plan"])
	}
}

// TestStatsPlannerSections: /api/stats exposes the planner counters and
// the per-snapshot graph statistics the cost model runs on.
func TestStatsPlannerSections(t *testing.T) {
	ts := testServer(t)
	// Run one rewriteable query so the counters are provably non-zero.
	postQuery(t, ts, `{"query": "START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls*]-> m RETURN distinct m"}`)

	stats := getJSON(t, ts.URL+"/api/stats", 200)
	planner, _ := stats["planner"].(map[string]any)
	if planner == nil {
		t.Fatalf("no planner section in %v", stats)
	}
	if planner["rewrites"].(float64) < 1 {
		t.Fatalf("planner.rewrites = %v, want >= 1", planner["rewrites"])
	}
	gs, _ := stats["graphStats"].(map[string]any)
	if gs == nil {
		t.Fatal("no graphStats section")
	}
	if gs["nodes"].(float64) != stats["nodes"].(float64) {
		t.Fatalf("graphStats.nodes = %v, stats.nodes = %v", gs["nodes"], stats["nodes"])
	}
	if _, ok := gs["edgesByType"].(map[string]any)["calls"]; !ok {
		t.Fatalf("graphStats.edgesByType missing calls: %v", gs["edgesByType"])
	}
}
