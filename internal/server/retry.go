package server

import (
	"context"
	"errors"
	"time"
)

// WithRetry wraps an UpdateFunc with bounded retry-on-transient-failure:
// a failed attempt is retried up to attempts-1 times with exponential
// backoff (backoff, 2*backoff, 4*backoff, ...). Updates are idempotent —
// a failed persist leaves the old snapshot serving and the next attempt
// replans from the same inputs — so retrying is always safe. Context
// cancellation (the admin client gave up or the server is draining) stops
// the retry loop immediately and is never retried itself.
func WithRetry(fn UpdateFunc, attempts int, backoff time.Duration, logf func(format string, args ...any)) UpdateFunc {
	if attempts < 1 {
		attempts = 1
	}
	return func(ctx context.Context) (UpdateResult, error) {
		var res UpdateResult
		var err error
		delay := backoff
		for i := 1; ; i++ {
			res, err = fn(ctx)
			if err == nil || i >= attempts {
				return res, err
			}
			if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return res, err
			}
			mUpdateRetries.Inc()
			if logf != nil {
				logf("update attempt %d/%d failed (retrying in %s): %v", i, attempts, delay, err)
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return res, ctx.Err()
			}
			delay *= 2
		}
	}
}
