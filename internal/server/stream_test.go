package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"frappe/internal/core"
	"frappe/internal/kernelgen"
	"frappe/internal/query"
)

// engineServer is testServer but also hands back the engine, for tests
// that tweak limits or bump the epoch mid-flight.
func engineServer(t *testing.T) (*core.Engine, *httptest.Server) {
	t.Helper()
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, errs, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) > 0 {
		t.Fatalf("extract: %v", errs[0])
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return eng, ts
}

// streamLines POSTs to /api/query/stream and returns every NDJSON line
// decoded, asserting the response is well-formed line-delimited JSON.
func streamLines(t *testing.T, ts *httptest.Server, body string) []map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/query/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q", ct)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %q: %v", len(lines), sc.Text(), err)
		}
		lines = append(lines, obj)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestStreamEndpointShape: header object with columns, one object per
// row, terminal object with the count — and the rows byte-identical to
// the materialized /api/query response.
func TestStreamEndpointShape(t *testing.T) {
	ts := testServer(t)
	body := `{"query": "MATCH (n:function) RETURN n.short_name"}`

	lines := streamLines(t, ts, body)
	if len(lines) < 2 {
		t.Fatalf("only %d NDJSON lines", len(lines))
	}
	header, terminal := lines[0], lines[len(lines)-1]
	cols, ok := header["columns"].([]any)
	if !ok || len(cols) != 1 || cols[0] != "n.short_name" {
		t.Fatalf("header = %v", header)
	}
	rowLines := lines[1 : len(lines)-1]
	var streamed []string
	for i, l := range rowLines {
		cells, ok := l["row"].([]any)
		if !ok {
			t.Fatalf("line %d is not a row object: %v", i+1, l)
		}
		streamed = append(streamed, fmt.Sprint(cells))
	}
	if got := terminal["count"].(float64); int(got) != len(rowLines) {
		t.Fatalf("terminal count %v, rows %d", got, len(rowLines))
	}
	if terminal["steps"].(float64) <= 0 {
		t.Fatalf("terminal steps missing: %v", terminal)
	}
	if terminal["streamed"] != true {
		t.Fatalf("expected pipelined streaming, terminal = %v", terminal)
	}
	if _, hasErr := terminal["error"]; hasErr {
		t.Fatalf("unexpected terminal error: %v", terminal)
	}

	// The materialized endpoint must agree row for row, in order.
	mat := postQuery(t, ts, body)
	matRows := mat["rows"].([]any)
	if len(matRows) != len(streamed) {
		t.Fatalf("rows: streamed %d vs materialized %d", len(streamed), len(matRows))
	}
	for i, r := range matRows {
		if fmt.Sprint(r.([]any)) != streamed[i] {
			t.Fatalf("row %d: streamed %v vs materialized %v", i, streamed[i], r)
		}
	}
}

// TestStreamEndpointErrors: bad input fails with plain JSON status
// codes before the response commits to NDJSON.
func TestStreamEndpointErrors(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{"query": ""}`,
		`{"query": "MATCH (n RETURN"}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/api/query/stream", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestStreamBudgetErrorInTerminal: a mid-stream budget abort is
// reported in the terminal NDJSON object — the rows already sent stay
// sent, and the stream-abort counter increments.
func TestStreamBudgetErrorInTerminal(t *testing.T) {
	eng, ts := engineServer(t)
	eng.QueryLimits = query.Limits{MaxRows: 2}
	abortsBefore := mStreamAborts.Value()

	lines := streamLines(t, ts, `{"query": "MATCH (n:function) RETURN n.short_name"}`)
	terminal := lines[len(lines)-1]
	msg, ok := terminal["error"].(string)
	if !ok || !strings.Contains(msg, "budget") {
		t.Fatalf("terminal error = %v, want budget error", terminal)
	}
	if mStreamAborts.Value() <= abortsBefore {
		t.Fatal("stream abort counter did not increment")
	}
}

// TestStreamClientDisconnect: a client that walks away mid-stream must
// stop the executor promptly (the in-flight gauge drains) and increment
// the write-error counter — not panic, not leak the producer goroutine
// (the race detector covers the leak half when this runs under -race).
func TestStreamClientDisconnect(t *testing.T) {
	_, ts := engineServer(t)
	writeErrsBefore := mWriteErrors.Value()

	// Unbounded path enumeration produces far more rows than any socket
	// buffer holds, so the handler is guaranteed to still be writing
	// when the connection drops.
	body := `{"query": "MATCH (f:function) -[:calls*]-> g RETURN f, g"}`
	resp, err := http.Post(ts.URL+"/api/query/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	// Read a little to be sure rows are flowing, then hang up.
	if _, err := io.ReadAtLeast(resp.Body, make([]byte, 256), 256); err != nil {
		t.Fatalf("no stream output before disconnect: %v", err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for mStreamsInFlight.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream still in flight %ds after client disconnect", 10)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if mWriteErrors.Value() <= writeErrsBefore {
		t.Fatal("write-error counter did not increment on client disconnect")
	}
}

// TestStreamCacheInteraction: a streamed query never inserts into the
// query-result cache (its rows leave the process as they are produced),
// but a result already cached by the materialized path replays through
// the stream with cached=true in the header.
func TestStreamCacheInteraction(t *testing.T) {
	ts := cachedServer(t)
	body := `{"query": "MATCH (n:function) RETURN n.short_name"}`

	// Stream first: the cache is cold and must stay empty afterwards.
	lines := streamLines(t, ts, body)
	if lines[0]["cached"] == true {
		t.Fatal("cold stream claims cached")
	}
	stats := getJSON(t, ts.URL+"/api/stats", http.StatusOK)
	qc := stats["qcache"].(map[string]any)
	if n := qc["entries"].(float64); n != 0 {
		t.Fatalf("streamed miss inserted into qcache: %v entries", n)
	}

	// Materialize once (populates the cache), then stream again: the
	// header flags the replay and the rows still match.
	mat := postQuery(t, ts, body)
	lines = streamLines(t, ts, body)
	if lines[0]["cached"] != true {
		t.Fatalf("replayed stream header = %v, want cached", lines[0])
	}
	terminal := lines[len(lines)-1]
	if terminal["streamed"] == true {
		t.Fatal("cache replay must not claim pipelined streaming")
	}
	if int(terminal["count"].(float64)) != int(mat["count"].(float64)) {
		t.Fatalf("replayed count %v vs materialized %v", terminal["count"], mat["count"])
	}
}

// TestCursorPagination: pages walked via the opaque cursor reassemble
// exactly the unpaginated result, and a snapshot swap mid-walk turns
// the stale cursor into 410 Gone.
func TestCursorPagination(t *testing.T) {
	eng, ts := engineServer(t)
	queryText := "MATCH (n:function) RETURN n.short_name"
	full := postQuery(t, ts, fmt.Sprintf(`{"query": %q}`, queryText))
	want := full["rows"].([]any)
	if len(want) < 3 {
		t.Fatalf("fixture too small for pagination: %d rows", len(want))
	}

	var pages []any
	cursor := ""
	body := fmt.Sprintf(`{"query": %q, "pageSize": 2}`, queryText)
	for {
		out := postQuery(t, ts, body)
		rows := out["rows"].([]any)
		if len(rows) > 2 {
			t.Fatalf("page has %d rows, pageSize 2", len(rows))
		}
		// Count stays the full-result count on every page.
		if int(out["count"].(float64)) != len(want) {
			t.Fatalf("page count = %v, want %d", out["count"], len(want))
		}
		pages = append(pages, rows...)
		next, _ := out["nextCursor"].(string)
		if next == "" {
			break
		}
		cursor = next
		// The token carries (epoch, query, offset); page size is a
		// per-request choice and is resent with each page.
		body = fmt.Sprintf(`{"cursor": %q, "pageSize": 2}`, next)
		if len(pages) > len(want) {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(pages) != len(want) {
		t.Fatalf("reassembled %d rows, want %d", len(pages), len(want))
	}
	for i := range want {
		if fmt.Sprint(pages[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("row %d: paged %v vs full %v", i, pages[i], want[i])
		}
	}

	// Bump the epoch: the last cursor is now stale and must 410.
	eng.SetEpoch(999, nil)
	resp, err := http.Post(ts.URL+"/api/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"cursor": %q}`, cursor)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale cursor: status = %d, want 410", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out["error"].(string), "superseded") {
		t.Fatalf("410 body = %v", out)
	}
}

// TestCursorErrors: malformed cursors and query/cursor disagreement are
// 400s, not silent resets.
func TestCursorErrors(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{"cursor": "@@not-base64@@"}`,
		`{"cursor": "bm90LWpzb24"}`, // valid base64, not a token
		`{"query": "MATCH (n) RETURN n", "pageSize": -1}`,
	} {
		resp, err := http.Post(ts.URL+"/api/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestBatchEndpoint: one round trip, one snapshot pin, and a failing
// query poisons only its own entry.
func TestBatchEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/api/query/batch", "application/json", strings.NewReader(`{
		"queries": [
			{"query": "MATCH (n:function) RETURN n.short_name"},
			{"query": "MATCH (n RETURN syntax error"},
			{"query": "MATCH (n:struct) RETURN n.short_name"}
		]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Epoch   int64        `json:"epoch"`
		Results []batchEntry `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %d", len(out.Results))
	}
	if out.Results[0].Error != "" || out.Results[0].Count == 0 {
		t.Fatalf("entry 0 = %+v", out.Results[0])
	}
	if out.Results[1].Error == "" {
		t.Fatal("entry 1 should carry the parse error")
	}
	if out.Results[2].Error != "" || out.Results[2].Count == 0 {
		t.Fatalf("entry 2 = %+v", out.Results[2])
	}
}

// TestBatchEndpointLimits: empty and oversized batches are rejected.
func TestBatchEndpointLimits(t *testing.T) {
	ts := testServer(t)
	var sb strings.Builder
	sb.WriteString(`{"queries": [`)
	for i := 0; i <= MaxBatchQueries; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"query": "MATCH (n) RETURN n LIMIT 1"}`)
	}
	sb.WriteString(`]}`)
	for _, body := range []string{`{"queries": []}`, sb.String()} {
		resp, err := http.Post(ts.URL+"/api/query/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	}
}

// TestOversizedBody413: a request body over the limit is rejected with
// a 413 JSON envelope instead of being read to the end (the PR-8
// ingress regression test).
func TestOversizedBody413(t *testing.T) {
	ts := testServer(t)
	huge := fmt.Sprintf(`{"query": %q}`, strings.Repeat("x", DefaultMaxBodyBytes+1024))
	for _, path := range []string{"/api/query", "/api/query/stream", "/api/query/batch"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if derr := json.NewDecoder(resp.Body).Decode(&out); derr != nil {
			t.Fatalf("%s: 413 body is not JSON: %v", path, derr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status = %d, want 413", path, resp.StatusCode)
		}
		if !strings.Contains(out["error"].(string), "exceeds") {
			t.Fatalf("%s: error envelope = %v", path, out)
		}
	}
}
