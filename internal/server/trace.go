package server

import (
	"fmt"
	"net/http"
	"strings"

	"frappe/internal/obs/trace"
)

// TraceIDHeader echoes the request's trace ID on every traced response,
// so any client error report carries the key into /api/debug/traces.
const TraceIDHeader = "X-Trace-Id"

// withTracing roots a trace for every API request: it adopts the W3C
// traceparent header when a valid one arrives (malformed ones silently
// start a fresh trace, never a 4xx), carries the root span in the
// request context for the engine and executor to hang children off,
// and echoes the trace ID + outgoing traceparent on the response.
// The tail-sampling decision happens at End, when the status and
// duration are known. Ops and debug endpoints are not traced: probes
// and scrapes would drown the ring in unremarkable traces.
func (s *Server) withTracing(next http.Handler) http.Handler {
	if s.Tracer == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Path
		if isOpsPath(p) || strings.HasPrefix(p, "/debug/") || strings.HasPrefix(p, "/api/debug/") {
			next.ServeHTTP(w, r)
			return
		}
		route := routeLabel(p)
		parent := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
		sp := s.Tracer.StartRoot("http "+r.Method+" "+route, parent,
			trace.Str("method", r.Method),
			trace.Str("route", route),
			trace.Str("requestId", w.Header().Get(requestIDHeader)),
			trace.Int("epoch", s.eng.Snapshot().Epoch()))
		w.Header().Set(TraceIDHeader, sp.TraceID())
		w.Header().Set("Traceparent", sp.Traceparent())
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r.WithContext(trace.ContextWith(r.Context(), sp)))
		code := rec.code
		if code == 0 {
			code = http.StatusOK
		}
		sp.SetAttr(trace.Int("status", int64(code)))
		if code >= 500 {
			sp.SetError(fmt.Errorf("HTTP %d", code))
		}
		sp.End()
	})
}

// handleTraceList serves GET /api/debug/traces: the retained-trace
// summaries, newest retention first.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	sums := s.Tracer.Traces()
	if sums == nil {
		sums = []trace.Summary{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"enabled": s.Tracer != nil,
		"count":   len(sums),
		"traces":  sums,
	})
}

// handleTraceGet serves GET /api/debug/traces/{id}: one retained
// trace's full span tree. 404 covers both "never retained" and
// "already evicted" — the ring holds recent traces, not history.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.Tracer.Get(id)
	if !ok {
		s.writeErr(w, http.StatusNotFound,
			fmt.Errorf("trace %q not retained (dropped by sampling, evicted, or never seen)", id))
		return
	}
	s.writeJSON(w, http.StatusOK, rec)
}
