package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"frappe/internal/core"
	"frappe/internal/kernelgen"
	"frappe/internal/qcache"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, errs, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) > 0 {
		t.Fatalf("extract: %v", errs[0])
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestQueryEndpoint(t *testing.T) {
	ts := testServer(t)
	body := strings.NewReader(`{"query": "MATCH (n:module) RETURN n.short_name ORDER BY n.short_name"}`)
	resp, err := http.Post(ts.URL+"/api/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count < 3 || len(out.Rows) != out.Count {
		t.Fatalf("response = %+v", out)
	}
	found := false
	for _, row := range out.Rows {
		if strings.Contains(row[0], "wakeup.elf") {
			found = true
		}
	}
	if !found {
		t.Fatalf("wakeup.elf missing from %v", out.Rows)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts := testServer(t)
	resp, _ := http.Post(ts.URL+"/api/query", "application/json", strings.NewReader(`{"query": "MATCH ((("}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/api/query", "application/json", strings.NewReader(`not json`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	out := getJSON(t, ts.URL+"/api/stats", http.StatusOK)
	if out["nodes"].(float64) < 100 || out["edges"].(float64) < 400 {
		t.Fatalf("stats = %v", out)
	}
	hubs := out["hubs"].([]any)
	if hubs[0].(map[string]any)["name"] != "int" {
		t.Fatalf("top hub = %v", hubs[0])
	}
}

func TestSearchEndpoint(t *testing.T) {
	ts := testServer(t)
	out := getJSON(t, ts.URL+"/api/search?pattern=id&type=field&module=wakeup.elf", http.StatusOK)
	if out["count"].(float64) != 2 {
		t.Fatalf("search = %v", out)
	}
	// Bad limit rejected.
	getJSON(t, ts.URL+"/api/search?pattern=x&limit=nope", http.StatusBadRequest)
}

func TestDefEndpoint(t *testing.T) {
	ts := testServer(t)
	out := getJSON(t, ts.URL+"/api/def?name=get_sectorsize&file=drivers/scsi/sr.c&line=236&col=9", http.StatusOK)
	if out["shortName"] != "get_sectorsize" || out["type"] != "function" {
		t.Fatalf("def = %v", out)
	}
	getJSON(t, ts.URL+"/api/def?name=get_sectorsize&file=drivers/scsi/sr.c&line=1&col=1", http.StatusNotFound)
	getJSON(t, ts.URL+"/api/def?name=x", http.StatusBadRequest)
}

func TestRefsEndpoint(t *testing.T) {
	ts := testServer(t)
	out := getJSON(t, ts.URL+"/api/refs?name=get_sectorsize&type=function", http.StatusOK)
	if out["count"].(float64) != 1 {
		t.Fatalf("refs = %v", out)
	}
	getJSON(t, ts.URL+"/api/refs?name=definitely_missing", http.StatusNotFound)
}

func TestSliceEndpoint(t *testing.T) {
	ts := testServer(t)
	out := getJSON(t, ts.URL+"/api/slice?fn=pci_read_bases", http.StatusOK)
	if out["count"].(float64) < 36 {
		t.Fatalf("slice = %v", out["count"])
	}
	fwd := getJSON(t, ts.URL+"/api/slice?fn=printk&forward=true", http.StatusOK)
	if fwd["count"].(float64) < 10 {
		t.Fatalf("forward slice = %v", fwd["count"])
	}
	getJSON(t, ts.URL+"/api/slice?fn=pci_read_bases&depth=zzz", http.StatusBadRequest)
}

func TestMapEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/map.svg?highlight=pci_read_bases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "image/svg+xml" {
		t.Fatalf("status %d, type %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	buf := make([]byte, 64)
	n, _ := resp.Body.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "<svg") {
		t.Fatalf("body = %q", buf[:n])
	}
}

func TestConsolePage(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "Frappé query console") {
		t.Fatal("console HTML missing")
	}
}

// cachedServer is testServer with the query cache installed, the way
// `frappe serve` configures it by default.
func cachedServer(t *testing.T) *httptest.Server {
	t.Helper()
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, errs, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) > 0 {
		t.Fatalf("extract: %v", errs[0])
	}
	eng.SetQueryCache(qcache.New(qcache.Config{}))
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts
}

func postQuery(t *testing.T, ts *httptest.Server, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestQueryCaching: a repeated identical query is served from the
// cache and says so; rows are identical either way.
func TestQueryCaching(t *testing.T) {
	ts := cachedServer(t)
	const body = `{"query": "MATCH (n:module) RETURN n.short_name ORDER BY n.short_name"}`
	first := postQuery(t, ts, body)
	if first["cached"] != false {
		t.Fatalf("cold query reported cached=%v", first["cached"])
	}
	second := postQuery(t, ts, body)
	if second["cached"] != true {
		t.Fatalf("warm query reported cached=%v", second["cached"])
	}
	a, _ := json.Marshal(first["rows"])
	b, _ := json.Marshal(second["rows"])
	if string(a) != string(b) {
		t.Fatalf("cached rows differ:\n%s\nvs\n%s", a, b)
	}
	// /api/stats surfaces the cache counters.
	stats := getJSON(t, ts.URL+"/api/stats", http.StatusOK)
	qc, ok := stats["qcache"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing qcache section: %v", stats)
	}
	if qc["hits"].(float64) < 1 || qc["misses"].(float64) < 1 {
		t.Fatalf("qcache stats = %v", qc)
	}
}

// TestQueryNoCacheFlag: "noCache" bypasses the result cache even when
// a warm entry exists.
func TestQueryNoCacheFlag(t *testing.T) {
	ts := cachedServer(t)
	const q = `"query": "MATCH (n:module) RETURN n.short_name"`
	postQuery(t, ts, `{`+q+`}`) // warm the entry
	out := postQuery(t, ts, `{`+q+`, "noCache": true}`)
	if out["cached"] == true {
		t.Fatal("noCache query was served from the cache")
	}
}

// TestProfileBypassesCacheAndReportsHits: PROFILE always executes (a
// cached row-replay would profile nothing) but reports how often the
// query is normally served warm.
func TestProfileBypassesCacheAndReportsHits(t *testing.T) {
	ts := cachedServer(t)
	const q = `"query": "MATCH (n:module) RETURN n.short_name"`
	postQuery(t, ts, `{`+q+`}`) // miss: inserts the entry
	postQuery(t, ts, `{`+q+`}`) // hit
	out := postQuery(t, ts, `{`+q+`, "profile": true}`)
	if out["profile"] == nil {
		t.Fatal("profile requested but absent")
	}
	hits, ok := out["cacheHits"].(float64)
	if !ok || hits < 1 {
		t.Fatalf("profile cacheHits = %v, want >= 1", out["cacheHits"])
	}
	// The profile run itself must not have been a cache hit.
	if out["cached"] == true {
		t.Fatal("PROFILE was served from the result cache")
	}
}

// TestStatsOmitsQCacheWhenDisabled: an engine without a cache keeps the
// stats payload unchanged from earlier releases.
func TestStatsOmitsQCacheWhenDisabled(t *testing.T) {
	ts := testServer(t)
	stats := getJSON(t, ts.URL+"/api/stats", http.StatusOK)
	if _, ok := stats["qcache"]; ok {
		t.Fatalf("no-cache server reports qcache stats: %v", stats["qcache"])
	}
}

// TestSliceDepthLimit: depth beyond the documented maximum is a client
// error, not an unbounded traversal; the boundary value still works.
func TestSliceDepthLimit(t *testing.T) {
	ts := testServer(t)
	getJSON(t, fmt.Sprintf("%s/api/slice?fn=pci_read_bases&depth=%d", ts.URL, MaxSliceDepth), http.StatusOK)
	getJSON(t, fmt.Sprintf("%s/api/slice?fn=pci_read_bases&depth=%d", ts.URL, MaxSliceDepth+1), http.StatusBadRequest)
	getJSON(t, ts.URL+"/api/slice?fn=pci_read_bases&depth=-1", http.StatusBadRequest)
}
