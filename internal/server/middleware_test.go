package server

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"frappe/internal/core"
	"frappe/internal/kernelgen"
	"frappe/internal/query"
)

// newTestServer builds an engine over the tiny synthetic kernel and lets
// the caller tune the *Server before its middleware chain freezes at the
// first request.
func newTestServer(t *testing.T, mutate func(*Server)) (*Server, *httptest.Server) {
	t.Helper()
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, errs, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) > 0 {
		t.Fatalf("extract: %v", errs[0])
	}
	srv := New(eng)
	srv.Logf = t.Logf
	if mutate != nil {
		mutate(srv)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestPanicRecovery: acceptance criterion — a panicking handler returns
// a 500 JSON error and the server keeps serving afterwards.
func TestPanicRecovery(t *testing.T) {
	srv, ts := newTestServer(t, func(s *Server) {
		s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
			panic("kaboom")
		})
	})
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("panic response is not JSON: %v", err)
	}
	if !strings.Contains(out["error"], "kaboom") || out["requestId"] == "" {
		t.Fatalf("panic response = %v", out)
	}
	// The process must keep serving.
	getJSON(t, ts.URL+"/api/stats", http.StatusOK)
	if !srv.Ready() {
		t.Fatal("server flipped to not-ready after a panic")
	}
}

func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, nil)
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get(requestIDHeader)
		if id == "" || seen[id] {
			t.Fatalf("request %d: id %q (seen: %v)", i, id, seen)
		}
		seen[id] = true
	}
}

// TestConcurrencyLimitSheds: with a single admission slot held by a
// stalled request, further API requests are shed with 503 + Retry-After
// while health probes keep answering.
func TestConcurrencyLimitSheds(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	srv, ts := newTestServer(t, func(s *Server) {
		s.MaxConcurrent = 1
		s.RetryAfterSeconds = 7
		s.mux.HandleFunc("GET /stall", func(w http.ResponseWriter, r *http.Request) {
			close(entered)
			<-release
			w.WriteHeader(http.StatusOK)
		})
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/stall")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q", ra)
	}
	if srv.ShedCount() < 1 {
		t.Fatalf("ShedCount = %d", srv.ShedCount())
	}
	// Probes bypass the limiter.
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
	getJSON(t, ts.URL+"/readyz", http.StatusOK)

	close(release)
	wg.Wait()
	// Slot released: normal traffic resumes.
	getJSON(t, ts.URL+"/api/stats", http.StatusOK)
}

func TestHealthAndReadiness(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
	out := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if out["nodes"].(float64) < 100 {
		t.Fatalf("readyz = %v", out)
	}
	srv.SetReady(false)
	getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable)
	// Liveness is unaffected by draining.
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
	srv.SetReady(true)
	getJSON(t, ts.URL+"/readyz", http.StatusOK)
}

// TestGracefulServeDrains: acceptance criterion — cancelling the serve
// context (the SIGTERM path) lets the in-flight request finish before
// Serve returns.
func TestGracefulServeDrains(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "drained ok")
	})
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- Serve(ctx, ln, h, 5*time.Second) }()

	got := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		got <- string(b)
	}()
	<-entered

	cancel() // SIGTERM arrives while the request is in flight
	select {
	case err := <-served:
		t.Fatalf("Serve returned before drain: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if body := <-got; body != "drained ok" {
		t.Fatalf("in-flight request got %q", body)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve = %v", err)
	}
}

// TestGracefulServeFlipsReadiness: when the handler is a *Server, drain
// start makes /readyz fail so load balancers stop routing.
func TestGracefulServeFlipsReadiness(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- Serve(ctx, ln, srv, time.Second) }()
	getJSON(t, "http://"+ln.Addr().String()+"/readyz", http.StatusOK)
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("Serve = %v", err)
	}
	if srv.Ready() {
		t.Fatal("drain did not flip readiness")
	}
}

func TestSearchLimitCapped(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	_ = srv
	// Oversized limits are clamped, not errors.
	getJSON(t, ts.URL+"/api/search?pattern=*&limit=999999", http.StatusOK)
	// Non-positive limits are client errors.
	getJSON(t, ts.URL+"/api/search?pattern=x&limit=0", http.StatusBadRequest)
	getJSON(t, ts.URL+"/api/search?pattern=x&limit=-5", http.StatusBadRequest)
}

func TestSliceNegativeDepthRejected(t *testing.T) {
	_, ts := newTestServer(t, nil)
	getJSON(t, ts.URL+"/api/slice?fn=pci_read_bases&depth=-1", http.StatusBadRequest)
}

func TestQueryBudgetSurfacesAsClientError(t *testing.T) {
	_, ts := newTestServer(t, func(s *Server) {
		s.eng.QueryLimits = query.Limits{MaxRows: 1}
	})
	resp, err := http.Post(ts.URL+"/api/query", "application/json",
		strings.NewReader(`{"query": "MATCH (n) RETURN n.short_name"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("budget-exceeded status = %d, want 400", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out["error"], "budget") {
		t.Fatalf("error = %q", out["error"])
	}
}

func TestConsoleEscapesCells(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	html := string(b)
	// Both header and data cells must run through the escaper.
	if !strings.Contains(html, "'<th>'+esc(c)+'</th>'") {
		t.Fatal("column headers are not HTML-escaped")
	}
	if !strings.Contains(html, "'<td>'+esc(c)+'</td>'") {
		t.Fatal("data cells are not HTML-escaped")
	}
}

func TestCodeMapCached(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	snap := srv.eng.Snapshot()
	if a, b := srv.codeMap(snap), srv.codeMap(snap); a != b {
		t.Fatal("codemap.Build ran more than once")
	}
	// And the endpoint still renders from the cache.
	resp, err := http.Get(ts.URL + "/map.svg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map status = %d", resp.StatusCode)
	}
}

// TestCorruptStoreYieldsServerError: disk corruption discovered mid-query
// maps to a 500 (server fault), and the process keeps serving health
// probes — degraded, not dead.
func TestCorruptStoreYieldsServerError(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, errs, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) > 0 {
		t.Fatalf("extract: %v", errs[0])
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := eng.Save(dir); err != nil {
		t.Fatal(err)
	}
	deng, err := core.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { deng.Close() })

	// Corrupt the node store on disk, then drop the page caches so the
	// next query re-reads the bad bytes.
	path := filepath.Join(dir, "neostore.nodestore.db")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	deng.DropCaches()

	srv := New(deng)
	srv.Logf = t.Logf
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/api/query", "application/json",
		strings.NewReader(`{"query": "MATCH (n) RETURN n.short_name"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt-store query status = %d, want 500", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "checksum") && !strings.Contains(msg, "corrupt") {
		t.Fatalf("error = %q", msg)
	}
	if out["degraded"] != true {
		t.Fatalf("corrupt-store error should be flagged degraded, got %v", out)
	}
	// Still alive, and readiness reports the degraded state without
	// pulling the server from rotation.
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
	ready := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if ready["status"] != "degraded" {
		t.Fatalf("readyz status = %v, want degraded", ready["status"])
	}
}
