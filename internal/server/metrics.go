package server

import (
	"net/http"
	"strings"
	"time"

	"frappe/internal/obs"
)

// HTTP serving metrics. Per-route instruments are pre-created when the
// middleware chain is built, so the per-request cost is two map reads
// and a few atomic adds — the registry lock is never taken while
// serving. Routes are a fixed vocabulary (everything else is "other"),
// and status codes collapse to classes, so cardinality stays bounded
// no matter what clients request.
var (
	mInFlight = obs.Default.Gauge("frappe_http_in_flight",
		"Requests currently being served.", nil)
	mPanics = obs.Default.Counter("frappe_http_panics_total",
		"Handler panics converted to 500 responses.", nil)
	mSlow = obs.Default.Counter("frappe_http_slow_requests_total",
		"Requests slower than the server's slow threshold.", nil)
	mQueryTimeouts = obs.Default.Counter("frappe_query_timeouts_total",
		"Queries aborted by the per-request deadline (504).", nil)
	mUpdateConflicts = obs.Default.Counter("frappe_update_conflicts_total",
		"Admin updates rejected with 409 because one was already in flight.", nil)
	mUpdateRetries = obs.Default.Counter("frappe_update_retries_total",
		"Transient update failures retried by the WithRetry wrapper.", nil)
	mWriteErrors = obs.Default.Counter("frappe_http_write_errors_total",
		"Response write/encode failures (typically the client disconnecting mid-response).", nil)
	mStreamRows = obs.Default.Counter("frappe_stream_rows_total",
		"Result rows streamed to clients over NDJSON.", nil)
	mStreamBytes = obs.Default.Counter("frappe_stream_bytes_total",
		"Bytes of NDJSON stream responses written to clients.", nil)
	mStreamAborts = obs.Default.Counter("frappe_stream_aborts_total",
		"NDJSON streams that ended early: execution error, budget, timeout, or client disconnect.", nil)
	mStreamsInFlight = obs.Default.Gauge("frappe_stream_in_flight",
		"NDJSON streams currently being served.", nil)
)

// metricRoutes is the route vocabulary for per-route series.
var metricRoutes = []string{
	"/", "/api/query", "/api/query/stream", "/api/query/batch",
	"/api/stats", "/api/search", "/api/def",
	"/api/refs", "/api/slice", "/map.svg", "/api/admin/update",
	"/api/admin/verify", "/healthz", "/readyz", "/metrics",
	"/api/debug/traces", "other",
}

// routeLabel collapses a request path into the bounded route vocabulary.
func routeLabel(path string) string {
	for _, r := range metricRoutes {
		if path == r {
			return r
		}
	}
	// Trace fetches carry the trace ID in the path; collapse them onto
	// one route so client-chosen IDs cannot mint series.
	if strings.HasPrefix(path, "/api/debug/traces/") {
		return "/api/debug/traces"
	}
	return "other"
}

// codeClass collapses a status code to its class ("2xx", "4xx", ...).
func codeClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

var codeClasses = []string{"2xx", "3xx", "4xx", "5xx"}

// routeInstruments holds the pre-created per-route series.
type routeInstruments struct {
	byCode   map[string]map[string]*obs.Counter // route → class → counter
	duration map[string]*obs.Histogram          // route → latency histogram
}

func newRouteInstruments() *routeInstruments {
	ri := &routeInstruments{
		byCode:   map[string]map[string]*obs.Counter{},
		duration: map[string]*obs.Histogram{},
	}
	for _, route := range metricRoutes {
		ri.duration[route] = obs.Default.Histogram("frappe_http_request_duration_ms",
			"Request wall time by route, in milliseconds.", obs.Labels{"route": route}, nil)
		byClass := map[string]*obs.Counter{}
		for _, class := range codeClasses {
			byClass[class] = obs.Default.Counter("frappe_http_requests_total",
				"Requests served by route and status class.", obs.Labels{"route": route, "code": class})
		}
		ri.byCode[route] = byClass
	}
	return ri
}

// statusRecorder captures the response status for metrics and slow logs.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.code == 0 {
		sr.code = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// Flush forwards http.Flusher through the middleware chain so NDJSON
// streaming handlers can push each chunk to the client as it is
// written; without this the recorder would hide the underlying
// flusher and streamed rows would sit in the response buffer.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		if sr.code == 0 {
			sr.code = http.StatusOK
		}
		f.Flush()
	}
}

// DefaultSlowThreshold flags requests slower than this when the server
// does not configure its own (see Server.SlowThreshold, -slow-ms).
const DefaultSlowThreshold = time.Second

// withMetrics observes every request: per-route count + latency, the
// in-flight gauge, and the slow-request log line. It sits outside the
// recover and concurrency middlewares, so panics (500) and shed
// responses (503) are counted against their route too.
func (s *Server) withMetrics(next http.Handler) http.Handler {
	ri := newRouteInstruments()
	slow := s.SlowThreshold
	if slow == 0 {
		slow = DefaultSlowThreshold
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r.URL.Path)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		mInFlight.Add(1)
		next.ServeHTTP(rec, r)
		mInFlight.Add(-1)
		elapsed := time.Since(start)
		code := rec.code
		if code == 0 {
			code = http.StatusOK
		}
		ri.byCode[route][codeClass(code)].Inc()
		ri.duration[route].Observe(float64(elapsed) / float64(time.Millisecond))
		if slow > 0 && elapsed >= slow {
			mSlow.Inc()
			// The trace ID (from the tracing middleware's span on the
			// request context, via reqLog) is the pivot: fetch
			// /api/debug/traces/<id> to see where the time went.
			s.reqLog(r, rec.Header()).Warn("slow request",
				"path", r.URL.Path, "took", elapsed.String(),
				"threshold", slow.String(), "status", code)
		}
	})
}

// handleMetrics renders the Prometheus text exposition: the process
// registry plus this server's scrape-time samples (the engine's
// page-cache counters and the shed count). Engine-backed samples ride
// in as Gather extras so tests with several servers never cross wires.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	fams := obs.Default.Gather(s.eng.MetricsCollector(), s.shedCollector())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteText(w, fams)
}

// shedCollector samples the concurrency limiter's existing atomic
// counter at scrape time (no double-instrumentation on the shed path).
func (s *Server) shedCollector() obs.Collector {
	return func(emit func(obs.Sample)) {
		emit(obs.Sample{
			Name:  "frappe_http_shed_total",
			Help:  "Requests shed by the concurrency limiter (503).",
			Kind:  obs.KindCounter,
			Value: float64(s.ShedCount()),
		})
	}
}
