// Package server exposes a Frappé engine over HTTP — the integration
// surface the paper's interface component implies (IDE plugins and the
// map UI talk to a queryable service). JSON endpoints cover every §4 use
// case, plus the rendered code map and a minimal query console.
//
//	GET  /                    query console (HTML)
//	POST /api/query           {"query": "..."} → result table
//	GET  /api/stats           Table 3 metrics + top-degree hubs + epoch
//	GET  /api/search          ?pattern=&type=&label=&module=&dir=&limit=
//	GET  /api/def             ?name=&file=&line=&col=
//	GET  /api/refs            ?name=&type=
//	GET  /api/slice           ?fn=&forward=&depth=
//	GET  /map.svg             ?highlight=<function>
//	POST /api/admin/update    apply an incremental update (when wired)
//	GET  /metrics             Prometheus text exposition
//	GET  /debug/pprof/*       profiling (opt-in via EnablePprof / -pprof)
//
// Each handler pins one engine snapshot for its whole request, so a
// live update swapping the graph mid-request can never make a handler
// mix two graph states.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"frappe/internal/codemap"
	"frappe/internal/coord"
	"frappe/internal/core"
	"frappe/internal/graph"
	"frappe/internal/gstats"
	"frappe/internal/model"
	"frappe/internal/obs/trace"
	"frappe/internal/plan"
	"frappe/internal/qcache"
	"frappe/internal/query"
	"frappe/internal/store"
	"frappe/internal/traversal"
)

// DefaultMaxConcurrent is the default concurrency-limiter admission cap.
const DefaultMaxConcurrent = 64

// DefaultMaxBodyBytes caps POST request bodies (1 MiB). Query texts are
// a few KB at the outside; anything near the cap is a mistake or abuse,
// and an unbounded decode would buffer it all. Tunable via
// Server.MaxBodyBytes (`frappe serve -max-body-bytes`).
const DefaultMaxBodyBytes = 1 << 20

// DefaultPageSize is the page length a cursor-paginated /api/query uses
// when the request does not choose one.
const DefaultPageSize = 1000

// MaxBatchQueries caps how many queries one /api/query/batch request
// may carry.
const MaxBatchQueries = 64

// MaxSearchLimit caps the ?limit= parameter of /api/search; larger
// requests are clamped rather than allowed to materialise unbounded
// result sets.
const MaxSearchLimit = 10000

// MaxSliceDepth caps the ?depth= parameter of /api/slice. Slices are
// visited-set traversals, so depths beyond the graph's diameter add
// nothing but let a single request walk the whole call graph from a
// dense hub; anything larger than this documented bound is a client
// error (400), mirroring how query budgets fail fast instead of
// serving unbounded work. Depth 0 remains "unbounded up to the budget"
// for compatibility.
const MaxSliceDepth = 64

// Server wraps an engine with HTTP handlers behind a hardened serving
// path: request IDs, panic recovery, concurrency limiting with load
// shedding, and liveness/readiness probes.
type Server struct {
	eng *core.Engine
	mux *http.ServeMux
	// Update, when non-nil, backs POST /api/admin/update: it applies one
	// incremental update against the engine (planning, re-extraction,
	// persistence and the snapshot swap happen behind it) and returns the
	// outcome. Wired by cmd/frappe serve when serving a live tree.
	Update UpdateFunc
	// Coord, when non-nil, routes the query surfaces (/api/query, stream,
	// batch) through the sharded scatter-gather coordinator instead of the
	// engine, and sources degraded-mode state from it. The engine passed
	// to New must be Coord.Engine() — the coordinator's view over the
	// composite — so every non-query endpoint keeps working unchanged.
	// Set before the first request.
	Coord *coord.Coordinator
	// QueryTimeout bounds each Cypher query (default 30s).
	QueryTimeout time.Duration
	// MaxConcurrent caps in-flight requests (default
	// DefaultMaxConcurrent; set <0 before the first request to disable
	// the limiter).
	MaxConcurrent int
	// RetryAfterSeconds is advertised on shed responses (default 1).
	RetryAfterSeconds int
	// Logf is the legacy printf-style log seam. When set (and Logger is
	// not), every structured log line is rendered "msg key=value ..."
	// through it. Prefer Logger for new code.
	Logf func(format string, args ...any)
	// Logger, when set, receives every server log line (panics, slow
	// requests, write failures) as structured records carrying request
	// and trace correlation attributes. Takes precedence over Logf;
	// defaults to a text handler on stderr.
	Logger *slog.Logger
	// Tracer, when set, roots a trace for every API request and serves
	// the retained ones on GET /api/debug/traces. Nil disables tracing
	// (the middleware is skipped entirely).
	Tracer *trace.Tracer
	// SlowThreshold flags requests slower than this with a log line and
	// the frappe_http_slow_requests_total counter (default
	// DefaultSlowThreshold; set <0 before the first request to disable).
	SlowThreshold time.Duration
	// MaxBodyBytes caps POST request bodies (default DefaultMaxBodyBytes;
	// set <0 to disable the cap). Oversized bodies get 413.
	MaxBodyBytes int64

	chainOnce sync.Once
	handler   http.Handler
	sem       chan struct{}
	logOnce   sync.Once
	slogger   *slog.Logger

	// updateGate serialises admin updates at the HTTP layer: a second
	// POST /api/admin/update while one runs gets 409 + Retry-After
	// immediately (or blocks for its turn with ?wait=true) instead of
	// queueing invisibly on the engine's update lock.
	updateGate sync.Mutex

	reqCounter uint64
	shedCount  int64
	notReady   atomic.Bool

	// The code map cache is keyed by snapshot: a swap invalidates it.
	mapMu     sync.Mutex
	mapSnap   *core.Snapshot
	cachedMap *codemap.Map
}

// UpdateResult is the admin endpoint's report of one update attempt.
type UpdateResult struct {
	// Applied is false for a no-op (nothing changed on disk).
	Applied bool `json:"applied"`
	// Epoch is the live graph's epoch after the attempt.
	Epoch int64 `json:"epoch"`
	// Summary describes the applied update (nil when not applied).
	Summary *core.UpdateSummary `json:"summary,omitempty"`
}

// UpdateFunc applies one incremental update; see Server.Update.
type UpdateFunc func(ctx context.Context) (UpdateResult, error)

// New creates a server over an opened engine.
func New(eng *core.Engine) *Server {
	s := &Server{
		eng:               eng,
		mux:               http.NewServeMux(),
		QueryTimeout:      30 * time.Second,
		MaxConcurrent:     DefaultMaxConcurrent,
		RetryAfterSeconds: 1,
	}
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux.HandleFunc("POST /api/query", s.handleQuery)
	s.mux.HandleFunc("POST /api/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("POST /api/query/batch", s.handleQueryBatch)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/search", s.handleSearch)
	s.mux.HandleFunc("GET /api/def", s.handleDef)
	s.mux.HandleFunc("GET /api/refs", s.handleRefs)
	s.mux.HandleFunc("GET /api/slice", s.handleSlice)
	s.mux.HandleFunc("GET /map.svg", s.handleMap)
	s.mux.HandleFunc("POST /api/admin/update", s.handleUpdate)
	s.mux.HandleFunc("POST /api/admin/verify", s.handleVerify)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/debug/traces", s.handleTraceList)
	s.mux.HandleFunc("GET /api/debug/traces/{id}", s.handleTraceGet)
	return s
}

// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/.
// Off by default — profiling endpoints expose internals and cost CPU —
// and switched on by `frappe serve -pprof`. Call before the first
// request.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// ServeHTTP implements http.Handler through the middleware chain, built
// once from the Server's settings at the first request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.chainOnce.Do(func() {
		if s.MaxConcurrent == 0 {
			s.MaxConcurrent = DefaultMaxConcurrent
		}
		if s.MaxConcurrent > 0 {
			s.sem = make(chan struct{}, s.MaxConcurrent)
		}
		// Tracing sits outside metrics so the slow-request log line can
		// read the trace ID off the request context.
		s.handler = s.withRequestID(s.withTracing(s.withMetrics(s.withRecover(s.withConcurrencyLimit(s.mux)))))
	})
	s.handler.ServeHTTP(w, r)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Almost always the client disconnecting mid-response. Count it
		// and log at the same level as slow requests — silent drops made
		// partial responses indistinguishable from delivered ones.
		mWriteErrors.Inc()
		s.logger().Warn("response write failed",
			"requestId", w.Header().Get(requestIDHeader),
			"traceId", w.Header().Get(TraceIDHeader),
			"status", status, "err", err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeBody decodes a JSON request body under the server's body-size
// cap, answering 413 (oversize) or 400 (malformed) itself. Returns
// false when the request has already been answered.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	limit := s.MaxBodyBytes
	if limit == 0 {
		limit = DefaultMaxBodyBytes
	}
	if limit > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, limit)
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// requestCtx derives the per-request context every query-shaped handler
// runs under: the client's context (so disconnects cancel work) bounded
// by the server's QueryTimeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.QueryTimeout)
}

// writeQueryErr maps a read-path failure to its HTTP response: an
// expired deadline is the server's fault (504 + timeout counter), store
// corruption is a degraded-mode partial failure (500 + degraded flag),
// anything else keeps the handler's fallback status.
func (s *Server) writeQueryErr(w http.ResponseWriter, ctx context.Context, fallback int, err error) {
	switch {
	case ctx.Err() != nil:
		mQueryTimeouts.Inc()
		s.writeErr(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, store.ErrCorrupt) || errors.Is(err, store.ErrTruncated):
		s.writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error":    err.Error(),
			"degraded": true,
		})
	default:
		s.writeErr(w, fallback, err)
	}
}

// degraded, quarantinedPages and heal abstract over the two serving
// shapes: a sharded coordinator tracks quarantine per shard per
// replica; a plain engine tracks its single store.
func (s *Server) degraded() bool {
	if s.Coord != nil {
		return s.Coord.Degraded()
	}
	return s.eng.Degraded()
}

func (s *Server) quarantinedPages() map[string][]int64 {
	if s.Coord != nil {
		return s.Coord.QuarantinedPages()
	}
	return s.eng.QuarantinedPages()
}

func (s *Server) heal() (healed, remaining int) {
	if s.Coord != nil {
		return s.Coord.Heal()
	}
	return s.eng.Heal()
}

// --- endpoints ---

type queryRequest struct {
	Query string `json:"query"`
	// Profile requests per-operator PROFILE tracing alongside the result.
	// PROFILE always bypasses the query cache (a trace of a cache hit
	// would be empty) and instead reports how often this query has been
	// served warm.
	Profile bool `json:"profile,omitempty"`
	// NoCache forces execution even when the result is cached.
	NoCache bool `json:"noCache,omitempty"`
	// Explain includes the planner's EXPLAIN rendering in the response.
	// Unlike Profile it costs nothing at execution time (the plan is
	// compiled either way) and does not bypass the cache.
	Explain bool `json:"explain,omitempty"`
	// Cursor resumes a paginated query from where the previous page left
	// off. The token is opaque to clients; it pins (epoch, query text,
	// offset), and a request whose cursor epoch no longer matches the
	// live snapshot gets 410 Gone (the result it was paging through is
	// retired). With a cursor set, Query may be empty — the token carries
	// the text.
	Cursor string `json:"cursor,omitempty"`
	// PageSize limits the rows returned per response and turns on
	// pagination (default DefaultPageSize when only a cursor is set).
	PageSize int `json:"pageSize,omitempty"`
}

type queryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Count   int        `json:"count"`
	Millis  float64    `json:"millis"`
	// Cached: served from the query result cache without executing.
	Cached bool `json:"cached"`
	// Shared: coalesced onto a concurrent identical execution.
	Shared bool `json:"shared,omitempty"`
	// CacheHits (PROFILE only): times this query has been served warm.
	CacheHits *int64         `json:"cacheHits,omitempty"`
	Profile   *query.Profile `json:"profile,omitempty"`
	// Plan is the EXPLAIN rendering (present when the request set
	// explain; PROFILE responses carry it inside the profile instead).
	Plan string `json:"plan,omitempty"`
	// NextCursor resumes the next page of a paginated query (absent on
	// the last page and on unpaginated requests). Count stays the full
	// result's row count; Rows carries only the requested page.
	NextCursor string `json:"nextCursor,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Pagination: a cursor resumes (epoch, text, offset) against the
	// pinned snapshot; any page size turns slicing on.
	paginate := req.PageSize > 0 || req.Cursor != ""
	offset := 0
	var cur cursorToken
	if req.Cursor != "" {
		var err error
		cur, err = decodeCursor(req.Cursor)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad cursor: %w", err))
			return
		}
		if req.Query != "" && req.Query != cur.Query {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("cursor was issued for a different query"))
			return
		}
		req.Query, offset = cur.Query, cur.Offset
	}
	if req.PageSize < 0 {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("pageSize must be non-negative"))
		return
	}
	pageSize := req.PageSize
	if paginate && pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if req.Query == "" {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("empty query"))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	start := time.Now()
	snap := s.eng.Snapshot()
	epoch, src := snap.Epoch(), snap.Source()
	var pin *coord.Pinned
	if s.Coord != nil {
		p := s.Coord.Pin()
		pin, epoch, src = &p, p.Epoch(), p.Source()
	}
	if req.Cursor != "" && cur.Epoch != epoch {
		// The graph the cursor was paging through has been swapped out;
		// resuming at a row offset against different data would silently
		// mix epochs. 410, not 409: the token can never become valid again.
		s.writeJSON(w, http.StatusGone, map[string]any{
			"error": fmt.Sprintf("cursor epoch %d superseded by %d; restart pagination", cur.Epoch, epoch),
			"epoch": epoch,
		})
		return
	}
	var res *query.Result
	var prof *query.Profile
	var outcome qcache.Outcome
	var cacheHits *int64
	var err error
	switch {
	case req.Profile:
		// PROFILE always runs single-engine — under a coordinator that is
		// the view engine over the whole composite, so the trace stays a
		// faithful per-operator account of one unsharded execution.
		res, prof, err = snap.QueryProfile(ctx, req.Query, s.eng.QueryLimits)
		hits := s.eng.QueryCacheHits(snap, req.Query)
		cacheHits = &hits
	case pin != nil:
		res, outcome, err = pin.CachedQuery(ctx, req.Query, req.NoCache)
	default:
		res, outcome, err = s.eng.CachedQuery(ctx, snap, req.Query, req.NoCache)
	}
	if err != nil {
		// Store corruption is a server-side fault, never a client error:
		// the query failed only because it touched a quarantined region,
		// and writeQueryErr marks it as a degraded-mode partial failure.
		s.writeQueryErr(w, ctx, http.StatusBadRequest, err)
		return
	}
	resp := queryResponse{
		Columns:   res.Columns,
		Count:     res.Count(),
		Millis:    float64(time.Since(start).Microseconds()) / 1000,
		Cached:    outcome.Hit,
		Shared:    outcome.Shared,
		CacheHits: cacheHits,
		Profile:   prof,
	}
	if req.Explain && !req.Profile {
		if plan, perr := s.eng.ExplainQuery(req.Query); perr == nil {
			resp.Plan = plan
		}
	}
	rows := res.Rows
	if paginate {
		if offset > len(rows) {
			offset = len(rows)
		}
		end := offset + pageSize
		if end > len(rows) {
			end = len(rows)
		}
		if end < len(rows) {
			resp.NextCursor = encodeCursor(cursorToken{Epoch: epoch, Query: req.Query, Offset: end})
		}
		rows = rows[offset:end]
	}
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.Format(src)
		}
		resp.Rows = append(resp.Rows, cells)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

type statsResponse struct {
	Nodes      int64               `json:"nodes"`
	Edges      int64               `json:"edges"`
	Density    float64             `json:"density"`
	Epoch      int64               `json:"epoch"`
	LastUpdate *core.UpdateSummary `json:"lastUpdate,omitempty"`
	Hubs       []hub               `json:"hubs"`
	// Cache holds the page-cache counters by store file (absent for
	// in-memory engines), so the console can show hit ratios without
	// scraping /metrics.
	Cache map[string]store.CacheStats `json:"cache,omitempty"`
	// Query is the executor's counter snapshot (budget pressure, rows).
	Query query.Counters `json:"query"`
	// QCache is the query-cache counter snapshot (absent when the engine
	// serves without a cache).
	QCache *qcache.Stats `json:"qcache,omitempty"`
	// Planner is the query planner's counter snapshot (closure rewrites,
	// interpreter fallbacks, statistics rebuilds).
	Planner plan.Counters `json:"planner"`
	// GraphStats is the planner's per-snapshot statistics summary
	// (absent when computing it would touch quarantined pages).
	GraphStats *gstats.Stats `json:"graphStats,omitempty"`
	// Shed counts requests dropped by the concurrency limiter.
	Shed int64 `json:"shed"`
	// Degraded reports quarantined store pages: the server answers
	// queries that avoid them and fails the rest (see /api/admin/verify).
	Degraded bool `json:"degraded,omitempty"`
	// QuarantinedPages lists quarantined page numbers by store file
	// (present only when degraded).
	QuarantinedPages map[string][]int64 `json:"quarantinedPages,omitempty"`
	// Shards describes the sharded store topology (absent when serving a
	// single-store engine).
	Shards *shardStats `json:"shards,omitempty"`
}

// shardStats is the /api/stats section for a sharded store.
type shardStats struct {
	Count    int `json:"count"`
	Replicas int `json:"replicas"`
	// EpochVector is the per-shard epoch vector pinned for this request;
	// shards commit through one atomic bundle, so a healthy vector is
	// uniform.
	EpochVector []int64 `json:"epochVector"`
	// DownShards lists shard indices that failed to open (-1 = cut-edge
	// store); present only when degraded.
	DownShards []int `json:"downShards,omitempty"`
}

type hub struct {
	Type   string `json:"type"`
	Name   string `json:"name"`
	Degree int    `json:"degree"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.Snapshot()
	m := snap.Stats()
	resp := statsResponse{
		Nodes: m.Nodes, Edges: m.Edges, Density: m.Density,
		Epoch: snap.Epoch(), LastUpdate: snap.LastUpdate(),
		Cache:  s.eng.CacheStats(),
		Query:  query.CountersSnapshot(),
		QCache: s.eng.QueryCacheStats(),
		Shed:   s.ShedCount(),
	}
	if s.Coord != nil {
		p := s.Coord.Pin()
		resp.Epoch, resp.LastUpdate = p.Epoch(), p.LastUpdate()
		resp.QCache = s.Coord.QueryCacheStats()
		resp.Shards = &shardStats{
			Count:       s.Coord.Shards(),
			Replicas:    s.Coord.Replicas(),
			EpochVector: p.EpochVector(),
			DownShards:  s.Coord.DownShards(),
		}
	}
	if s.degraded() {
		resp.Degraded = true
		resp.QuarantinedPages = s.quarantinedPages()
	}
	pc := plan.CountersSnapshot()
	pc.StatsRebuilds = gstats.Rebuilds()
	resp.Planner = pc
	// GraphStats degrades to nil itself when collection would touch
	// quarantined pages, so no recover guard is needed here.
	resp.GraphStats = snap.GraphStats()
	resp.Hubs = safeHubs(snap.Source())
	s.writeJSON(w, http.StatusOK, resp)
}

// safeHubs computes the top-degree hubs best-effort: the full edge scan
// behind it can hit a quarantined page, and stats must stay servable in
// degraded mode, so corruption-class panics degrade to an empty hub list
// while everything else still propagates.
func safeHubs(src graph.Source) (hubs []hub) {
	defer func() {
		if r := recover(); r != nil {
			err, ok := r.(error)
			if !ok || (!errors.Is(err, store.ErrCorrupt) && !errors.Is(err, store.ErrTruncated)) {
				panic(r)
			}
			hubs = nil
		}
	}()
	for _, h := range graph.TopDegreeNodes(src, 10) {
		hubs = append(hubs, hub{Type: string(h.Type), Name: h.Name, Degree: h.Degree})
	}
	return hubs
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.Update == nil {
		s.writeErr(w, http.StatusNotImplemented, fmt.Errorf("server has no update source (started from a static store)"))
		return
	}
	wait := r.URL.Query().Get("wait") == "true" || r.URL.Query().Get("wait") == "1"
	if wait {
		s.updateGate.Lock()
	} else if !s.updateGate.TryLock() {
		mUpdateConflicts.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds))
		s.writeJSON(w, http.StatusConflict, map[string]string{
			"error": "an update is already in flight; retry later or pass ?wait=true",
		})
		return
	}
	defer s.updateGate.Unlock()
	res, err := s.Update(r.Context())
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// handleVerify is the admin re-verify/heal endpoint for degraded mode:
// it retries every quarantined page (pages recover only if the on-disk
// bytes were repaired underneath the server) and reports the before and
// after state.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	before := 0
	for _, pages := range s.quarantinedPages() {
		before += len(pages)
	}
	healed, remaining := s.heal()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"quarantinedBefore": before,
		"healed":            healed,
		"quarantinedAfter":  remaining,
		"degraded":          s.degraded(),
	})
}

type symbolJSON struct {
	ID        int64  `json:"id"`
	Type      string `json:"type"`
	ShortName string `json:"shortName"`
	Name      string `json:"name,omitempty"`
	LongName  string `json:"longName,omitempty"`
	File      string `json:"file,omitempty"`
	Line      int    `json:"line,omitempty"`
	Col       int    `json:"col,omitempty"`
}

func toSymbolJSON(s core.Symbol) symbolJSON {
	return symbolJSON{
		ID: int64(s.ID), Type: string(s.Type), ShortName: s.ShortName,
		Name: s.Name, LongName: s.LongName, File: s.File, Line: s.Line, Col: s.Col,
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opts := core.SearchOptions{
		Pattern: q.Get("pattern"),
		Label:   q.Get("label"),
		Module:  q.Get("module"),
		Dir:     q.Get("dir"),
		Limit:   100,
	}
	if t := q.Get("type"); t != "" {
		opts.Types = []model.NodeType{model.NodeType(t)}
	}
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 1 {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", l))
			return
		}
		if n > MaxSearchLimit {
			n = MaxSearchLimit
		}
		opts.Limit = n
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	syms, err := s.eng.Snapshot().Search(ctx, opts)
	if err != nil {
		s.writeQueryErr(w, ctx, http.StatusBadRequest, err)
		return
	}
	out := make([]symbolJSON, len(syms))
	for i, sym := range syms {
		out[i] = toSymbolJSON(sym)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"results": out, "count": len(out)})
}

func (s *Server) handleDef(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	line, err1 := strconv.Atoi(q.Get("line"))
	col, err2 := strconv.Atoi(q.Get("col"))
	if q.Get("name") == "" || q.Get("file") == "" || err1 != nil || err2 != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("need name, file, line, col"))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	sym, ok, err := s.eng.Snapshot().GoToDefinition(ctx, q.Get("name"), q.Get("file"), line, col)
	if err != nil {
		s.writeQueryErr(w, ctx, http.StatusBadRequest, err)
		return
	}
	if !ok {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("no definition at %s:%d:%d", q.Get("file"), line, col))
		return
	}
	s.writeJSON(w, http.StatusOK, toSymbolJSON(sym))
}

func (s *Server) handleRefs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	snap := s.eng.Snapshot()
	id, err := snap.MustLookupOne(q.Get("name"), model.NodeType(q.Get("type")))
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	refs, err := snap.FindReferences(ctx, id)
	if err != nil {
		s.writeQueryErr(w, ctx, http.StatusInternalServerError, err)
		return
	}
	type refJSON struct {
		Kind string `json:"kind"`
		File string `json:"file"`
		Line int    `json:"line"`
		Col  int    `json:"col"`
		From string `json:"from"`
	}
	out := make([]refJSON, len(refs))
	for i, ref := range refs {
		out[i] = refJSON{Kind: string(ref.Kind), File: ref.File, Line: ref.Line, Col: ref.Col, From: ref.From.ShortName}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"references": out, "count": len(out)})
}

func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	snap := s.eng.Snapshot()
	id, err := snap.MustLookupOne(q.Get("fn"), model.NodeFunction)
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err)
		return
	}
	depth := 0
	if d := q.Get("depth"); d != "" {
		if depth, err = strconv.Atoi(d); err != nil || depth < 0 {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad depth %q", d))
			return
		}
		if depth > MaxSliceDepth {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("depth %d exceeds maximum %d", depth, MaxSliceDepth))
			return
		}
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	var syms []core.Symbol
	if q.Get("forward") == "true" || q.Get("forward") == "1" {
		syms, err = snap.ForwardSliceCtx(ctx, id, depth)
	} else {
		syms, err = snap.BackwardSliceCtx(ctx, id, depth)
	}
	if err != nil {
		s.writeQueryErr(w, ctx, http.StatusInternalServerError, err)
		return
	}
	out := make([]symbolJSON, len(syms))
	for i, sym := range syms {
		out[i] = toSymbolJSON(sym)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"functions": out, "count": len(out)})
}

// codeMap builds the code map for the given snapshot, caching it per
// snapshot: each graph state is immutable, so the map only needs
// rebuilding after an incremental update swaps the snapshot.
func (s *Server) codeMap(snap *core.Snapshot) *codemap.Map {
	s.mapMu.Lock()
	defer s.mapMu.Unlock()
	if s.mapSnap != snap {
		s.cachedMap = codemap.Build(snap.Source())
		s.mapSnap = snap
	}
	return s.cachedMap
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.Snapshot()
	m := s.codeMap(snap)
	opts := codemap.RenderOptions{Width: 1280, Height: 900, Title: "Frappé code map"}
	if h := r.URL.Query().Get("highlight"); h != "" {
		id, err := snap.MustLookupOne(h, model.NodeFunction)
		if err != nil {
			s.writeErr(w, http.StatusNotFound, err)
			return
		}
		opts.Highlight = append(traversal.TransitiveClosure(snap.Source(), id, traversal.Options{
			Direction: traversal.Out,
			Types:     traversal.Types(model.EdgeCalls),
		}), id)
		opts.Title = "Backward slice of " + h
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, m.SVG(opts))
}

const consoleHTML = `<!DOCTYPE html>
<html><head><title>Frappé</title><style>
body { font-family: sans-serif; margin: 2em; max-width: 72em; }
textarea { width: 100%%; height: 8em; font-family: monospace; }
table { border-collapse: collapse; margin-top: 1em; }
td, th { border: 1px solid #999; padding: 4px 8px; font-family: monospace; }
.meta { color: #666; margin-top: .5em; }
</style></head><body>
<h1>Frappé query console</h1>
<p>%d nodes, %d edges. Try:
<code>START n=node:node_auto_index('short_name: pci_read_bases') MATCH n -[:calls]-> m RETURN m.short_name</code></p>
<textarea id="q">MATCH (n:module) RETURN n.short_name</textarea><br>
<button onclick="run()">Run</button>
<div class="meta" id="meta"></div>
<div id="out"></div>
<script>
async function run() {
  const r = await fetch('/api/query', {method: 'POST',
    body: JSON.stringify({query: document.getElementById('q').value})});
  const j = await r.json();
  const out = document.getElementById('out');
  if (j.error) { out.textContent = j.error; return; }
  document.getElementById('meta').textContent = j.count + ' rows in ' + j.millis + ' ms';
  const esc = c => String(c).replace(/&/g,'&amp;').replace(/</g,'&lt;').replace(/>/g,'&gt;');
  let html = '<table><tr>' + j.columns.map(c => '<th>'+esc(c)+'</th>').join('') + '</tr>';
  for (const row of j.rows || [])
    html += '<tr>' + row.map(c => '<td>'+esc(c)+'</td>').join('') + '</tr>';
  out.innerHTML = html + '</table>';
}
</script></body></html>`

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Stats()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, consoleHTML, m.Nodes, m.Edges)
}
