package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"

	"frappe/internal/obs/trace"
)

// Structured logging: every server log line goes through one
// *slog.Logger, annotated with the request's correlation attributes
// (request ID, trace ID, route, epoch) so a log line is a pivot into
// /api/debug/traces rather than a dead end. There is deliberately no
// bare log.Printf fallback anywhere in this package — a line that
// bypassed the configured sink would be uncorrelated and invisible to
// whoever set the sink up.

// logger resolves the server's logger once: the Logger field when set,
// the legacy Logf seam bridged through a slog handler, or a text
// handler on stderr.
func (s *Server) logger() *slog.Logger {
	s.logOnce.Do(func() {
		switch {
		case s.Logger != nil:
			s.slogger = s.Logger
		case s.Logf != nil:
			s.slogger = slog.New(&logfHandler{logf: s.Logf})
		default:
			s.slogger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		}
	})
	return s.slogger
}

// reqLog annotates the server's logger with one request's correlation
// attributes. h is the response header map (it carries the minted
// request ID and, when tracing is on, the trace ID header).
func (s *Server) reqLog(r *http.Request, h http.Header) *slog.Logger {
	lg := s.logger().With(
		"requestId", h.Get(requestIDHeader),
		"method", r.Method,
		"route", routeLabel(r.URL.Path),
		"epoch", s.eng.Snapshot().Epoch(),
	)
	if sp := trace.FromContext(r.Context()); sp != nil {
		lg = lg.With("traceId", sp.TraceID())
	}
	return lg
}

// logfHandler bridges slog records onto the legacy Logf seam
// (tests inject t.Logf or a line-capturing func there). Rendering is
// "msg key=value ..." so substring assertions against messages and
// attribute values keep working.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h *logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var sb strings.Builder
	sb.WriteString(r.Message)
	emit := func(a slog.Attr) bool {
		fmt.Fprintf(&sb, " %s=%v", a.Key, a.Value)
		return true
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(emit)
	h.logf("%s", sb.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := append(h.attrs[:len(h.attrs):len(h.attrs)], attrs...)
	return &logfHandler{logf: h.logf, attrs: merged}
}

func (h *logfHandler) WithGroup(string) slog.Handler { return h }
