package server

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
)

// Middleware hardening the serving path: every request gets an ID, every
// handler panic becomes a 500 JSON error (the process keeps serving),
// and a concurrency limiter sheds load with 503 + Retry-After instead of
// letting saturation grow unbounded queues. Health endpoints bypass the
// limiter so probes keep working while the server sheds.

const requestIDHeader = "X-Request-Id"

// requestID mints a process-unique request ID and exposes it on the
// response, so a client-reported failure can be matched to a server log
// line.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%d", atomic.AddUint64(&s.reqCounter, 1))
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r)
	})
}

// withRecover converts a handler panic into a 500 JSON error while the
// server keeps serving other requests. If the response has already been
// partially written the connection is left to die; otherwise the client
// gets a structured error naming the request ID.
func (s *Server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				mPanics.Inc()
				id := w.Header().Get(requestIDHeader)
				s.reqLog(r, w.Header()).Error("panic serving request",
					"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				s.writeJSON(w, http.StatusInternalServerError, map[string]string{
					"error":     fmt.Sprintf("internal error: %v", rec),
					"requestId": id,
				})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withConcurrencyLimit admits at most MaxConcurrent requests at a time;
// the rest are shed immediately with 503 + Retry-After. Shedding beats
// queueing for an interactive query service: a saturated process answers
// "try again" in microseconds instead of stacking goroutines.
func (s *Server) withConcurrencyLimit(next http.Handler) http.Handler {
	if s.sem == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isOpsPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next.ServeHTTP(w, r)
		default:
			atomic.AddInt64(&s.shedCount, 1)
			w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds))
			s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"error": "server saturated; retry later",
			})
		}
	})
}

// isOpsPath lists the operational endpoints that bypass the concurrency
// limiter: probes must answer while the server sheds, and a scrape is
// most valuable exactly when the server is saturated.
func isOpsPath(p string) bool { return p == "/healthz" || p == "/readyz" || p == "/metrics" }

// handleHealthz reports liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz reports readiness: the store is open and the server is
// not draining for shutdown. Load balancers use this to stop routing
// before the process exits.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	snap := s.eng.Snapshot()
	resp := map[string]any{
		"status": "ok",
		"nodes":  snap.Source().NodeCount(),
		"edges":  snap.Source().EdgeCount(),
		"epoch":  snap.Epoch(),
	}
	if last := snap.LastUpdate(); last != nil {
		resp["lastUpdate"] = last
	}
	// Degraded is still ready (200): the server answers every query that
	// avoids the quarantined pages, so pulling it from rotation would turn
	// a partial failure into a total one. Probes and dashboards see the
	// state; /api/admin/verify heals it.
	if s.degraded() {
		resp["status"] = "degraded"
		resp["quarantinedPages"] = s.quarantinedPages()
	}
	if s.Coord != nil {
		resp["shards"] = s.Coord.Shards()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// SetReady flips the readiness gate; main flips it false on SIGTERM so
// probes fail while in-flight queries drain.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports whether the server accepts new work.
func (s *Server) Ready() bool { return !s.notReady.Load() }

// ShedCount reports how many requests the concurrency limiter has shed.
func (s *Server) ShedCount() int64 { return atomic.LoadInt64(&s.shedCount) }
