package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"frappe/internal/core"
	"frappe/internal/kernelgen"
	"frappe/internal/query"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// expositionLine matches one valid sample line of the text format.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+0-9.eE infNa]+$`)

// TestMetricsAfterTraffic drives query/search/slice traffic through a
// server and asserts /metrics renders every expected family in valid
// exposition format.
func TestMetricsAfterTraffic(t *testing.T) {
	ts := testServer(t)

	// Generate traffic across routes, including one error (bad query).
	for _, q := range []string{
		`{"query": "MATCH (n:module) RETURN n.short_name"}`,
		`{"query": "MATCH ((("}`,
	} {
		resp, err := http.Post(ts.URL+"/api/query", "application/json", strings.NewReader(q))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	getJSON(t, ts.URL+"/api/search?pattern=a&limit=5", http.StatusOK)
	getJSON(t, ts.URL+"/api/stats", http.StatusOK)

	text := scrape(t, ts.URL)

	for _, family := range []string{
		// server
		"frappe_http_requests_total", "frappe_http_request_duration_ms",
		"frappe_http_in_flight", "frappe_http_panics_total",
		"frappe_http_slow_requests_total", "frappe_http_shed_total",
		// query
		"frappe_query_total", "frappe_query_duration_ms",
		"frappe_query_errors_total", "frappe_query_budget_aborts_total",
		"frappe_query_rows_returned_total", "frappe_query_steps_total",
		// core + extract (the test server extracted a corpus in-process)
		"frappe_core_epoch", "frappe_core_snapshot_swaps_total",
		"frappe_extract_frontend_total", "frappe_extract_frontend_duration_ms",
	} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("family %s missing from exposition", family)
		}
	}

	// Per-route series advanced for the routes we hit.
	if !regexp.MustCompile(`frappe_http_requests_total\{code="2xx",route="/api/query"\} [1-9]`).MatchString(text) {
		t.Error("no 2xx count for /api/query")
	}
	if !regexp.MustCompile(`frappe_http_requests_total\{code="4xx",route="/api/query"\} [1-9]`).MatchString(text) {
		t.Error("no 4xx count for /api/query (bad query)")
	}

	// Every non-comment line must be well-formed exposition.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// TestMetricsStoreFamilies opens a disk-backed engine and checks the
// page-cache families appear with per-file labels after read traffic.
func TestMetricsStoreFamilies(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, _, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/db"
	if err := eng.Save(dir); err != nil {
		t.Fatal(err)
	}
	disk, err := core.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	ts := httptest.NewServer(New(disk))
	defer ts.Close()

	getJSON(t, ts.URL+"/api/search?pattern=a&limit=5", http.StatusOK)
	text := scrape(t, ts.URL)
	for _, want := range []string{
		`frappe_store_page_cache_hits_total{file="nodes"}`,
		`frappe_store_page_cache_misses_total{file="relationships"}`,
		`frappe_store_page_cache_evictions_total{file="strings"}`,
		`frappe_store_page_cache_checksum_failures_total{file="index"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("store series %s missing", want)
		}
	}
}

// TestQueryProfileEndpoint checks "profile": true returns per-operator
// traces whose dbHits sum matches the executor's step accounting.
func TestQueryProfileEndpoint(t *testing.T) {
	ts := testServer(t)
	body := `{"query": "MATCH (n:module) RETURN n.short_name", "profile": true}`
	resp, err := http.Post(ts.URL+"/api/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Profile == nil || len(out.Profile.Ops) == 0 {
		t.Fatalf("no profile in response: %+v", out)
	}
	var hits int64
	for _, op := range out.Profile.Ops {
		hits += op.DBHits
	}
	if hits != out.Profile.Steps {
		t.Fatalf("dbHits sum %d != steps %d", hits, out.Profile.Steps)
	}
	if int(out.Profile.Rows) != out.Count {
		t.Fatalf("profile rows %d != count %d", out.Profile.Rows, out.Count)
	}
	last := out.Profile.Ops[len(out.Profile.Ops)-1]
	if last.Operator != "Return" {
		t.Fatalf("final operator = %q", last.Operator)
	}

	// Unprofiled responses must not carry the field.
	resp2, err := http.Post(ts.URL+"/api/query", "application/json",
		strings.NewReader(`{"query": "MATCH (n:module) RETURN n.short_name"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(raw), `"profile"`) {
		t.Fatalf("unprofiled response leaked profile: %s", raw)
	}
}

// TestStatsExposesCacheAndQueryCounters checks the /api/stats satellite:
// page-cache stats (disk engines) and query-budget counters.
func TestStatsExposesCacheAndQueryCounters(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, _, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/db"
	if err := eng.Save(dir); err != nil {
		t.Fatal(err)
	}
	disk, err := core.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	ts := httptest.NewServer(New(disk))
	defer ts.Close()

	before := query.CountersSnapshot()
	resp, err := http.Post(ts.URL+"/api/query", "application/json",
		strings.NewReader(`{"query": "MATCH (n:module) RETURN n.short_name"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stats := getJSON(t, ts.URL+"/api/stats", http.StatusOK)
	cache, ok := stats["cache"].(map[string]any)
	if !ok {
		t.Fatalf("no cache block in stats: %v", stats)
	}
	for _, file := range []string{"nodes", "relationships", "properties", "strings", "index"} {
		if _, ok := cache[file]; !ok {
			t.Errorf("cache stats missing file %s", file)
		}
	}
	qc, ok := stats["query"].(map[string]any)
	if !ok {
		t.Fatalf("no query block in stats: %v", stats)
	}
	if got := int64(qc["queries"].(float64)); got < before.Queries+1 {
		t.Errorf("stats queries = %d, want > %d", got, before.Queries)
	}
	if _, ok := stats["shed"]; !ok {
		t.Error("no shed count in stats")
	}
}

// TestSlowRequestLogging checks the -slow-ms satellite: a request over
// the threshold logs through the configured Logf, and the panic path
// uses it too (the middleware.go bugfix).
func TestSlowRequestLogging(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, _, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	srv := New(eng)
	srv.Logf = func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	srv.SlowThreshold = time.Nanosecond // everything is slow
	ts := httptest.NewServer(srv)
	defer ts.Close()

	slowBefore := mSlow.Value()
	getJSON(t, ts.URL+"/api/stats", http.StatusOK)

	mu.Lock()
	joined := strings.Join(lines, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "slow request") || !strings.Contains(joined, "/api/stats") {
		t.Fatalf("no slow-request line via Logf; got:\n%s", joined)
	}
	if !strings.Contains(joined, "req-") {
		t.Fatalf("slow line lacks request ID:\n%s", joined)
	}
	if mSlow.Value() <= slowBefore {
		t.Fatal("slow counter did not advance")
	}
}

// TestSlowLoggingDisabled checks SlowThreshold < 0 silences slow lines.
func TestSlowLoggingDisabled(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, _, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	srv := New(eng)
	srv.Logf = func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	srv.SlowThreshold = -1
	ts := httptest.NewServer(srv)
	defer ts.Close()
	getJSON(t, ts.URL+"/api/stats", http.StatusOK)
	mu.Lock()
	defer mu.Unlock()
	for _, l := range lines {
		if strings.Contains(l, "slow request") {
			t.Fatalf("slow line despite disabled threshold: %s", l)
		}
	}
}

// TestPprofOptIn checks /debug/pprof is 404 by default and served after
// EnablePprof.
func TestPprofOptIn(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served without opt-in: %d", resp.StatusCode)
	}

	w := kernelgen.Generate(kernelgen.Tiny())
	eng, _, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	srv.EnablePprof()
	ts2 := httptest.NewServer(srv)
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index after EnablePprof: %d", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "goroutine") {
		t.Fatal("pprof index missing profile listing")
	}
}

// TestMetricsBypassesLimiter checks a saturated server still answers
// scrapes (shed returns 503 for API calls, /metrics stays 200).
func TestMetricsBypassesLimiter(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, _, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	srv.MaxConcurrent = 1
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Saturate the single slot with a request parked in a handler.
	release := make(chan struct{})
	blocked := make(chan struct{})
	srv.mux.HandleFunc("GET /test/block", func(rw http.ResponseWriter, r *http.Request) {
		close(blocked)
		<-release
	})
	go func() {
		resp, err := http.Get(ts.URL + "/test/block")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-blocked
	defer close(release)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape under saturation: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("API under saturation: %d, want 503", resp.StatusCode)
	}
}
