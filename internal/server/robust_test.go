package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"frappe/internal/core"
	"frappe/internal/kernelgen"
	"frappe/internal/qcache"
)

// postStatus POSTs and returns (status, decoded body, Retry-After header).
func postStatus(t *testing.T, url, body string) (int, map[string]any, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out, resp.Header.Get("Retry-After")
}

// TestUpdateConflict409: while one admin update runs, a second POST is
// rejected immediately with 409 + Retry-After, and ?wait=true queues for
// its turn instead.
func TestUpdateConflict409(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, _, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	var calls int
	var mu sync.Mutex
	srv := New(eng)
	srv.Update = func(ctx context.Context) (UpdateResult, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			close(started)
			<-release
		}
		return UpdateResult{Applied: false, Epoch: 0}, nil
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	done := make(chan int)
	go func() {
		code, _, _ := postStatus(t, ts.URL+"/api/admin/update", "")
		done <- code
	}()
	<-started

	// Second update while the first holds the gate: immediate 409.
	code, body, retryAfter := postStatus(t, ts.URL+"/api/admin/update", "")
	if code != http.StatusConflict {
		t.Fatalf("concurrent update status = %d, want 409", code)
	}
	if retryAfter == "" {
		t.Fatal("409 response missing Retry-After header")
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "in flight") {
		t.Fatalf("409 error = %q", msg)
	}

	// ?wait=true queues behind the running update instead of failing.
	waited := make(chan int)
	go func() {
		code, _, _ := postStatus(t, ts.URL+"/api/admin/update?wait=true", "")
		waited <- code
	}()
	select {
	case code := <-waited:
		t.Fatalf("wait=true returned %d before the running update finished", code)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("first update status = %d", code)
	}
	if code := <-waited; code != http.StatusOK {
		t.Fatalf("queued update status = %d", code)
	}
}

// TestFailedUpdateLeavesOldSnapshotServing: an update that fails must be
// invisible to readers — the old snapshot keeps serving, warm query-cache
// entries stay valid at the old epoch, and readiness stays green.
func TestFailedUpdateLeavesOldSnapshotServing(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, _, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetQueryCache(qcache.New(qcache.Config{}))
	srv := New(eng)
	srv.Update = func(ctx context.Context) (UpdateResult, error) {
		return UpdateResult{}, fmt.Errorf("simulated persist failure: disk full")
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	const q = `{"query": "MATCH (n:module) RETURN n.short_name ORDER BY n.short_name"}`
	cold := postQuery(t, ts, q)
	warm := postQuery(t, ts, q)
	if warm["cached"] != true {
		t.Fatalf("warm-up query not cached: %v", warm["cached"])
	}
	epochBefore := getJSON(t, ts.URL+"/api/stats", http.StatusOK)["epoch"]

	code, body, _ := postStatus(t, ts.URL+"/api/admin/update", "")
	if code != http.StatusInternalServerError {
		t.Fatalf("failed update status = %d, want 500", code)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "disk full") {
		t.Fatalf("failed update error = %q", msg)
	}

	// Old snapshot still serves, from the cache, at the old epoch.
	after := postQuery(t, ts, q)
	if after["cached"] != true {
		t.Fatal("query cache was invalidated by a failed update")
	}
	a, _ := json.Marshal(cold["rows"])
	b, _ := json.Marshal(after["rows"])
	if string(a) != string(b) {
		t.Fatalf("rows changed across a failed update:\n%s\nvs\n%s", a, b)
	}
	stats := getJSON(t, ts.URL+"/api/stats", http.StatusOK)
	if stats["epoch"] != epochBefore {
		t.Fatalf("epoch moved across a failed update: %v -> %v", epochBefore, stats["epoch"])
	}
	ready := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if ready["status"] != "ok" {
		t.Fatalf("readyz after failed update = %v, want ok", ready["status"])
	}
}

// TestWithRetry: transient failures are retried with backoff; success
// stops the loop; a cancelled context is never retried.
func TestWithRetry(t *testing.T) {
	calls := 0
	fn := WithRetry(func(ctx context.Context) (UpdateResult, error) {
		calls++
		if calls < 3 {
			return UpdateResult{}, fmt.Errorf("transient %d", calls)
		}
		return UpdateResult{Applied: true, Epoch: 7}, nil
	}, 5, time.Millisecond, t.Logf)
	res, err := fn(context.Background())
	if err != nil || !res.Applied || calls != 3 {
		t.Fatalf("retry: res=%+v err=%v calls=%d", res, err, calls)
	}

	// Attempts exhausted: the last error surfaces.
	calls = 0
	fn = WithRetry(func(ctx context.Context) (UpdateResult, error) {
		calls++
		return UpdateResult{}, fmt.Errorf("always broken")
	}, 3, time.Millisecond, nil)
	if _, err := fn(context.Background()); err == nil || calls != 3 {
		t.Fatalf("exhausted retry: err=%v calls=%d", err, calls)
	}

	// Cancellation is terminal, not transient.
	calls = 0
	ctx, cancel := context.WithCancel(context.Background())
	fn = WithRetry(func(ctx context.Context) (UpdateResult, error) {
		calls++
		cancel()
		return UpdateResult{}, ctx.Err()
	}, 5, time.Millisecond, nil)
	if _, err := fn(ctx); !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("cancelled retry: err=%v calls=%d", err, calls)
	}
}

// TestDegradedServingAndHeal is the end-to-end degraded-mode story: a
// corrupt page in the relationship store fails only the queries that
// touch it, surfaces as degraded in /api/stats and /readyz, resists a
// heal while the bytes are still bad, and recovers through
// /api/admin/verify once the file is repaired underneath the server.
func TestDegradedServingAndHeal(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, _, err := core.Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := eng.Save(dir); err != nil {
		t.Fatal(err)
	}
	deng, err := core.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { deng.Close() })
	srv := New(deng)
	srv.Logf = t.Logf
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Corrupt one byte in the LAST page of the relationship store: node
	// and property pages stay intact, so queries that never expand edges
	// keep working.
	relPath := filepath.Join(dir, "neostore.relationshipstore.db")
	raw, err := os.ReadFile(relPath)
	if err != nil {
		t.Fatal(err)
	}
	badOff := len(raw) - 10
	orig := raw[badOff]
	raw[badOff] ^= 0xFF
	if err := os.WriteFile(relPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	deng.DropCaches()

	const nodeQuery = `{"query": "MATCH (n:module) RETURN n.short_name"}`
	const edgeQuery = `{"query": "MATCH n -[:calls]-> m RETURN m.short_name"}`

	// The edge scan hits the bad page: 500 flagged degraded.
	code, body, _ := postStatus(t, ts.URL+"/api/query", edgeQuery)
	if code != http.StatusInternalServerError || body["degraded"] != true {
		t.Fatalf("edge query on corrupt store: code=%d body=%v", code, body)
	}

	// Queries that avoid the quarantined page still succeed.
	if out := postQuery(t, ts, nodeQuery); out["count"].(float64) < 3 {
		t.Fatalf("node query while degraded = %v", out)
	}

	// Degraded state is visible everywhere it should be.
	stats := getJSON(t, ts.URL+"/api/stats", http.StatusOK)
	if stats["degraded"] != true {
		t.Fatalf("stats.degraded = %v", stats["degraded"])
	}
	qp, _ := stats["quarantinedPages"].(map[string]any)
	if len(qp["relationships"].([]any)) != 1 {
		t.Fatalf("stats.quarantinedPages = %v", qp)
	}
	if ready := getJSON(t, ts.URL+"/readyz", http.StatusOK); ready["status"] != "degraded" {
		t.Fatalf("readyz.status = %v", ready["status"])
	}

	// Heal with the bytes still bad: the page is re-quarantined.
	code, body, _ = postStatus(t, ts.URL+"/api/admin/verify", "")
	if code != http.StatusOK || body["healed"].(float64) != 0 || body["degraded"] != true {
		t.Fatalf("verify on still-corrupt store: code=%d body=%v", code, body)
	}

	// Repair the file underneath the server, then heal for real.
	raw[badOff] = orig
	if err := os.WriteFile(relPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	code, body, _ = postStatus(t, ts.URL+"/api/admin/verify", "")
	if code != http.StatusOK || body["healed"].(float64) != 1 || body["degraded"] != false {
		t.Fatalf("verify after repair: code=%d body=%v", code, body)
	}

	// Fully healthy again: the edge scan works and readiness is ok.
	if out := postQuery(t, ts, edgeQuery); out["count"].(float64) < 1 {
		t.Fatalf("edge query after heal = %v", out)
	}
	if ready := getJSON(t, ts.URL+"/readyz", http.StatusOK); ready["status"] != "ok" {
		t.Fatalf("readyz after heal = %v", ready["status"])
	}
}
