package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"frappe/internal/core"
	"frappe/internal/delta"
	"frappe/internal/graph"
	"frappe/internal/kernelgen"
)

func postJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAdminUpdateNotWired: a server started from a static store has no
// update source and must answer 501, not 500.
func TestAdminUpdateNotWired(t *testing.T) {
	_, ts := newTestServer(t, nil)
	out := postJSON(t, ts.URL+"/api/admin/update", http.StatusNotImplemented)
	if out["error"] == nil {
		t.Fatalf("501 body lacks error: %v", out)
	}
}

// TestAdminUpdateFlow drives the full live-update loop over HTTP: a
// no-op returns applied=false at the current epoch; after mutating the
// tree the endpoint applies the update, and the new epoch plus summary
// become visible in /api/stats and /readyz.
func TestAdminUpdateFlow(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	sess, res, err := delta.NewSession(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.FromGraph(res.Graph)
	srv := New(eng)
	srv.Logf = t.Logf
	// Mirrors cmd/frappe's serve wiring, minus disk persistence.
	srv.Update = func(ctx context.Context) (UpdateResult, error) {
		var out UpdateResult
		_, err := eng.UpdateWith(func(old graph.Source) (*graph.Graph, int64, *core.UpdateSummary, error) {
			up, err := sess.Update(w.Build, old)
			if err != nil {
				return nil, 0, nil, err
			}
			out.Epoch = up.Epoch
			if up.NoOp {
				return nil, 0, nil, nil
			}
			sum := &core.UpdateSummary{
				Epoch:            up.Epoch,
				FilesModified:    len(up.Plan.Modified),
				UnitsReextracted: up.Reextracted,
				NodesAdded:       up.Diff.NodesAdded,
				EdgesAdded:       up.Diff.EdgesAdded,
			}
			out.Applied = true
			out.Summary = sum
			return up.Result.Graph, up.Epoch, sum, nil
		})
		return out, err
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Untouched tree: no-op, epoch stays 0.
	out := postJSON(t, ts.URL+"/api/admin/update", http.StatusOK)
	if out["applied"] != false || out["epoch"] != float64(0) {
		t.Fatalf("no-op update response: %v", out)
	}

	// Mutate one file, update again: applied at epoch 1 with a summary.
	src := w.Build.Units[0].Source
	w.FS[src] += "\nint admin_added(void) { return 42; }\n"
	out = postJSON(t, ts.URL+"/api/admin/update", http.StatusOK)
	if out["applied"] != true || out["epoch"] != float64(1) {
		t.Fatalf("applied update response: %v", out)
	}
	sum, ok := out["summary"].(map[string]any)
	if !ok || sum["unitsReextracted"] != float64(1) {
		t.Fatalf("update summary: %v", out["summary"])
	}

	// The new epoch and last-update summary surface in stats and readyz.
	stats := getJSON(t, ts.URL+"/api/stats", http.StatusOK)
	if stats["epoch"] != float64(1) {
		t.Fatalf("stats epoch: %v", stats["epoch"])
	}
	if _, ok := stats["lastUpdate"].(map[string]any); !ok {
		t.Fatalf("stats lastUpdate: %v", stats["lastUpdate"])
	}
	ready := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if ready["epoch"] != float64(1) {
		t.Fatalf("readyz epoch: %v", ready["epoch"])
	}
	if _, ok := ready["lastUpdate"].(map[string]any); !ok {
		t.Fatalf("readyz lastUpdate: %v", ready["lastUpdate"])
	}

	// The update is query-visible: the added function resolves.
	ids, err := eng.LookupNamed("admin_added", "function")
	if err != nil || len(ids) != 1 {
		t.Fatalf("added function not queryable: ids=%v err=%v", ids, err)
	}
}

// TestAdminUpdateMethodGate: GET on the admin endpoint is rejected by
// the method-scoped route.
func TestAdminUpdateMethodGate(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/api/admin/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /api/admin/update: status %d, want 405", resp.StatusCode)
	}
}
