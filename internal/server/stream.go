// Streaming and bulk query surfaces: POST /api/query/stream emits one
// result as NDJSON — a header object with the columns, one object per
// row, and a terminal object with the outcome — flushing each chunk so
// a client sees rows while the executor is still running and the server
// never holds the whole result. POST /api/query/batch runs N queries in
// one round trip against one pinned snapshot with per-query error
// isolation. Both exist for result sets and workloads the materialized
// /api/query response shape handles badly: Fig-6-scale closures and
// agent-style query bursts.
package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"frappe/internal/coord"
	"frappe/internal/obs/trace"
	"frappe/internal/qcache"
	"frappe/internal/query"
	"frappe/internal/store"
)

// cursorToken is the decoded form of /api/query's opaque cursor: the
// snapshot epoch the pagination started against, the query text, and
// the row offset of the next page. Clients must treat the encoded form
// as opaque — the format is not API.
type cursorToken struct {
	Epoch  int64  `json:"e"`
	Query  string `json:"q"`
	Offset int    `json:"o"`
}

func encodeCursor(t cursorToken) string {
	b, _ := json.Marshal(t)
	return base64.RawURLEncoding.EncodeToString(b)
}

func decodeCursor(s string) (cursorToken, error) {
	var t cursorToken
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return t, err
	}
	if err := json.Unmarshal(b, &t); err != nil {
		return t, err
	}
	if t.Query == "" || t.Offset < 0 {
		return t, fmt.Errorf("malformed token")
	}
	return t, nil
}

// streamHeader is the first NDJSON line: the result shape.
type streamHeader struct {
	Columns []string `json:"columns"`
	// Cached: rows are replayed from the query result cache.
	Cached bool  `json:"cached,omitempty"`
	Epoch  int64 `json:"epoch"`
}

// streamRowObj is one NDJSON row line.
type streamRowObj struct {
	Row []string `json:"row"`
}

// streamTerminal is the last NDJSON line: how the stream ended. A
// stream that aborts (budget, timeout, disconnect upstream) still gets
// a terminal object when the connection allows it, so clients can
// distinguish "complete" from "truncated".
type streamTerminal struct {
	Count  int64   `json:"count"`
	Steps  int64   `json:"steps"`
	Millis float64 `json:"millis"`
	Cached bool    `json:"cached,omitempty"`
	// Streamed is false when the shape forced materialize-then-replay
	// (ORDER BY, aggregation, cache hits).
	Streamed bool   `json:"streamed"`
	Error    string `json:"error,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	// TraceID keys the stream's retained trace in /api/debug/traces; an
	// NDJSON consumer that saw a truncated stream can fetch the span tree
	// without having captured the response headers.
	TraceID string `json:"traceId,omitempty"`
}

// countingWriter feeds frappe_stream_bytes_total.
type countingWriter struct {
	w http.ResponseWriter
	n int64
}

func (cw *countingWriter) Write(b []byte) (int, error) {
	n, err := cw.w.Write(b)
	cw.n += int64(n)
	return n, err
}

func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Query == "" {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("empty query"))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	start := time.Now()
	snap := s.eng.Snapshot()
	epoch, src := snap.Epoch(), snap.Source()
	// Pager attribution brackets the whole stream: the executor reads
	// pages lazily, so the delta is only meaningful after st.Wait().
	pager := snap.PagerSpan(ctx)
	defer pager()
	var st *query.Stream
	var outcome qcache.Outcome
	var err error
	if s.Coord != nil {
		p := s.Coord.Pin()
		epoch, src = p.Epoch(), p.Source()
		st, outcome, err = p.StreamQuery(ctx, req.Query, 0)
	} else {
		st, outcome, err = s.eng.StreamQuery(ctx, snap, req.Query, 0)
	}
	if err != nil {
		// Parse/compile failures surface synchronously, before the
		// response commits to NDJSON, so clients still get a plain 400.
		s.writeQueryErr(w, ctx, http.StatusBadRequest, err)
		return
	}
	cols, err := st.Columns(ctx)
	if err != nil {
		s.writeQueryErr(w, ctx, http.StatusBadRequest, err)
		return
	}

	mStreamsInFlight.Add(1)
	defer mStreamsInFlight.Add(-1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	cw := &countingWriter{w: w}
	defer func() { mStreamBytes.Add(cw.n) }()
	enc := json.NewEncoder(cw) // Encode appends \n: one value per line
	aborted := false
	writeChunk := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			// The client went away mid-stream. Count the write failure,
			// cancel the executor, and stop — there is nobody to tell.
			mWriteErrors.Inc()
			aborted = true
			s.reqLog(r, w.Header()).Warn("stream write failed",
				"path", r.URL.Path, "err", err)
			cancel()
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	var sent int64
	if writeChunk(streamHeader{Columns: cols, Cached: outcome.Hit, Epoch: epoch}) {
		for row := range st.Rows() {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.Format(src)
			}
			if !writeChunk(streamRowObj{Row: cells}) {
				break
			}
			sent++
			mStreamRows.Inc()
		}
	}
	// Drain so the producer (which selects on ctx.Done) finishes promptly
	// even when the write loop bailed out early.
	for range st.Rows() {
	}
	_, steps, execErr := st.Wait()

	term := streamTerminal{
		Count:    sent,
		Steps:    steps,
		Millis:   float64(time.Since(start).Microseconds()) / 1000,
		Cached:   outcome.Hit,
		Streamed: st.Pipelined(),
		TraceID:  trace.FromContext(ctx).TraceID(),
	}
	if execErr != nil {
		aborted = true
		term.Error = execErr.Error()
		// The HTTP status is already 200 (the stream committed), so the
		// root span never sees a 5xx; mark the failure on it here or the
		// tail sampler would treat a truncated stream as unremarkable.
		sp := trace.FromContext(ctx)
		sp.SetError(execErr)
		if errors.Is(execErr, store.ErrCorrupt) || errors.Is(execErr, store.ErrTruncated) {
			term.Degraded = true
			sp.Retain("degraded")
		} else if errors.Is(execErr, query.ErrBudgetExceeded) {
			sp.Retain("budget")
		}
		if ctx.Err() != nil && r.Context().Err() == nil {
			// The server's own deadline expired (not a client disconnect):
			// same counter the materialized path's 504 increments.
			mQueryTimeouts.Inc()
		}
	}
	writeChunk(term)
	if aborted {
		mStreamAborts.Inc()
	}
}

// batchRequest runs several queries in one round trip. Every query in
// the batch executes against the same pinned snapshot, so a live update
// mid-batch can never make entry 3 disagree with entry 1.
type batchRequest struct {
	Queries []queryRequest `json:"queries"`
}

// batchEntry is one query's outcome. Error is set instead of the result
// fields when that query failed; other entries are unaffected.
type batchEntry struct {
	Columns  []string   `json:"columns,omitempty"`
	Rows     [][]string `json:"rows,omitempty"`
	Count    int        `json:"count"`
	Millis   float64    `json:"millis"`
	Cached   bool       `json:"cached,omitempty"`
	Shared   bool       `json:"shared,omitempty"`
	Error    string     `json:"error,omitempty"`
	Degraded bool       `json:"degraded,omitempty"`
	// TraceID keys the batch's retained trace (shared by every entry;
	// each entry is a batch.entry child span indexed within it).
	TraceID string `json:"traceId,omitempty"`
}

type batchResponse struct {
	Epoch   int64        `json:"epoch"`
	Millis  float64      `json:"millis"`
	Results []batchEntry `json:"results"`
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		s.writeErr(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds maximum %d", len(req.Queries), MaxBatchQueries))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	batchStart := time.Now()
	snap := s.eng.Snapshot() // one pin shared by every execution
	src := snap.Source()
	epoch := snap.Epoch()
	var pin *coord.Pinned
	if s.Coord != nil {
		p := s.Coord.Pin()
		pin, epoch, src = &p, p.Epoch(), p.Source()
	}
	out := batchResponse{Epoch: epoch, Results: make([]batchEntry, len(req.Queries))}
	sp := trace.FromContext(ctx)
	for i, q := range req.Queries {
		ent := &out.Results[i]
		ent.TraceID = sp.TraceID()
		if q.Query == "" {
			ent.Error = "empty query"
			continue
		}
		// Each entry gets its own child span so a slow batch attributes
		// its time to the query that spent it, not the batch as a whole.
		esp := sp.Child("batch.entry", trace.Int("index", int64(i)))
		entCtx := trace.ContextWith(ctx, esp)
		start := time.Now()
		var res *query.Result
		var outcome qcache.Outcome
		var err error
		if pin != nil {
			res, outcome, err = pin.CachedQuery(entCtx, q.Query, q.NoCache)
		} else {
			res, outcome, err = s.eng.CachedQuery(entCtx, snap, q.Query, q.NoCache)
		}
		ent.Millis = float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			esp.SetError(err)
		}
		esp.End()
		if err != nil {
			// Per-query isolation: this entry reports its failure, the
			// rest of the batch still runs (a timeout will fail the
			// remaining entries fast with the same context error).
			ent.Error = err.Error()
			ent.Degraded = errors.Is(err, store.ErrCorrupt) || errors.Is(err, store.ErrTruncated)
			continue
		}
		ent.Columns = res.Columns
		ent.Count = res.Count()
		ent.Cached = outcome.Hit
		ent.Shared = outcome.Shared
		ent.Rows = make([][]string, len(res.Rows))
		for j, row := range res.Rows {
			cells := make([]string, len(row))
			for k, v := range row {
				cells[k] = v.Format(src)
			}
			ent.Rows[j] = cells
		}
	}
	out.Millis = float64(time.Since(batchStart).Microseconds()) / 1000
	s.writeJSON(w, http.StatusOK, out)
}
