package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"frappe/internal/obs/trace"
	"frappe/internal/qcache"
)

// tracedServer builds a test server whose tracer retains everything
// (SampleRate 1) so assertions never race a sampling decision.
func tracedServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServer(t, func(s *Server) {
		s.eng.SetQueryCache(qcache.New(qcache.Config{}))
		s.Tracer = trace.New(trace.Config{
			Capacity:      64,
			SampleRate:    1,
			SlowThreshold: time.Hour,
		})
	})
}

func tracedPost(t *testing.T, ts *httptest.Server, path, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// fetchTrace pulls one retained trace's span tree from the debug API.
func fetchTrace(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/api/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace %s: status %d", id, resp.StatusCode)
	}
	var rec map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

// spanNames extracts the span tree as name → span object, asserting
// exactly one root and that every other span's parent is in the tree.
func spanNames(t *testing.T, rec map[string]any) map[string]map[string]any {
	t.Helper()
	raw, ok := rec["spanTree"].([]any)
	if !ok || len(raw) == 0 {
		t.Fatalf("trace has no span tree: %v", rec)
	}
	ids := map[string]bool{}
	byName := map[string]map[string]any{}
	for _, s := range raw {
		sp := s.(map[string]any)
		ids[sp["spanId"].(string)] = true
		byName[sp["name"].(string)] = sp
	}
	roots := 0
	for _, s := range raw {
		sp := s.(map[string]any)
		parent, has := sp["parentId"].(string)
		if !has || parent == "" || !ids[parent] {
			// The root either has no parent or references an upstream
			// span that was never in this process.
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("span tree has %d roots, want 1", roots)
	}
	return byName
}

func traceSpanKeys(m map[string]map[string]any) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceparentIngestionAndEcho: acceptance criterion — a request
// carrying a W3C traceparent joins that trace, and the trace ID is
// echoed on the response so the caller can correlate.
func TestTraceparentIngestionAndEcho(t *testing.T) {
	_, ts := tracedServer(t)
	const upstream = "4bf92f3577b34da6a3ce929d0e0e4736"
	resp := tracedPost(t, ts, "/api/query",
		`{"query": "MATCH (n:module) RETURN n.short_name", "noCache": true}`,
		map[string]string{"traceparent": "00-" + upstream + "-00f067aa0ba902b7-01"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceIDHeader); got != upstream {
		t.Fatalf("X-Trace-Id = %q, want upstream trace %q", got, upstream)
	}
	tp := resp.Header.Get("Traceparent")
	if !strings.HasPrefix(tp, "00-"+upstream+"-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("outgoing traceparent %q does not continue the trace", tp)
	}

	rec := fetchTrace(t, ts, upstream)
	spans := spanNames(t, rec)
	root, ok := spans["http POST /api/query"]
	if !ok {
		t.Fatalf("no http root span; have %v", traceSpanKeys(spans))
	}
	// The root's parent is the upstream caller's span, which never ran
	// in this process.
	if root["parentId"] != "00f067aa0ba902b7" {
		t.Fatalf("root parent = %v, want upstream span ID", root["parentId"])
	}
}

// TestTraceparentMalformedStartsFresh: a garbage traceparent must not
// fail the request or be adopted — the server starts a fresh trace.
func TestTraceparentMalformedStartsFresh(t *testing.T) {
	_, ts := tracedServer(t)
	resp := tracedPost(t, ts, "/api/query",
		`{"query": "MATCH (n:module) RETURN n.short_name"}`,
		map[string]string{"traceparent": "00-ZZZZ-bogus-01"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	id := resp.Header.Get(TraceIDHeader)
	if len(id) != 32 {
		t.Fatalf("fresh trace ID %q is not 32 hex chars", id)
	}
}

// TestSpanTreeCachedVsUncachedVsStreamed: acceptance criterion — the
// span tree explains where the time went in all three serving shapes.
func TestSpanTreeCachedVsUncachedVsStreamed(t *testing.T) {
	_, ts := tracedServer(t)
	const q = `{"query": "MATCH (n:module) RETURN n.short_name"}`

	// Uncached execution: the tree must show planner and executor work.
	resp := tracedPost(t, ts, "/api/query", q, nil)
	resp.Body.Close()
	cold := fetchTrace(t, ts, resp.Header.Get(TraceIDHeader))
	spans := spanNames(t, cold)
	for _, want := range []string{"engine.query", "plan.compile", "query.execute"} {
		if _, ok := spans[want]; !ok {
			t.Fatalf("uncached trace lacks %q span; have %v", want, traceSpanKeys(spans))
		}
	}
	hasClause := false
	for name := range spans {
		if strings.HasPrefix(name, "clause.") {
			hasClause = true
		}
	}
	if !hasClause {
		t.Fatalf("uncached trace has no per-clause spans; have %v", traceSpanKeys(spans))
	}
	if spans["query.execute"]["attrs"].(map[string]any)["interpreter"] != false {
		t.Fatal("compiled execution should record interpreter=false")
	}

	// Cache hit: engine.query records cacheHit=true and no executor ran.
	resp = tracedPost(t, ts, "/api/query", q, nil)
	resp.Body.Close()
	warm := fetchTrace(t, ts, resp.Header.Get(TraceIDHeader))
	spans = spanNames(t, warm)
	eng, ok := spans["engine.query"]
	if !ok {
		t.Fatalf("cached trace lacks engine.query; have %v", traceSpanKeys(spans))
	}
	if eng["attrs"].(map[string]any)["cacheHit"] != true {
		t.Fatalf("cached trace should record cacheHit=true: %v", eng["attrs"])
	}
	if _, ok := spans["query.execute"]; ok {
		t.Fatal("cache hit must not carry an executor span")
	}

	// Streamed execution (fresh query text so the cache cannot replay
	// it): the pipelined executor's stream span appears and the NDJSON
	// terminal carries the trace ID.
	sr := tracedPost(t, ts, "/api/query/stream",
		`{"query": "MATCH (n:function) RETURN n.short_name"}`, nil)
	streamID := sr.Header.Get(TraceIDHeader)
	dec := json.NewDecoder(sr.Body)
	var last map[string]any
	n := 0
	for dec.More() {
		var obj map[string]any
		if err := dec.Decode(&obj); err != nil {
			t.Fatal(err)
		}
		last = obj
		n++
	}
	sr.Body.Close()
	if n < 2 {
		t.Fatal("stream produced no terminal")
	}
	if last["traceId"] != streamID {
		t.Fatalf("stream terminal traceId %v != header %s", last["traceId"], streamID)
	}
	streamed := fetchTrace(t, ts, streamID)
	spans = spanNames(t, streamed)
	if _, ok := spans["query.stream"]; !ok {
		t.Fatalf("streamed trace lacks query.stream span; have %v", traceSpanKeys(spans))
	}
}

// TestBatchEntrySpans: each batch entry is attributed its own child
// span and reports the shared trace ID.
func TestBatchEntrySpans(t *testing.T) {
	_, ts := tracedServer(t)
	resp := tracedPost(t, ts, "/api/query/batch",
		`{"queries": [{"query": "MATCH (n:struct) RETURN n.short_name", "noCache": true},
		              {"query": "this does not parse"}]}`, nil)
	defer resp.Body.Close()
	id := resp.Header.Get(TraceIDHeader)
	var out struct {
		Results []struct {
			TraceID string `json:"traceId"`
			Error   string `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(out.Results))
	}
	for i, r := range out.Results {
		if r.TraceID != id {
			t.Fatalf("entry %d traceId %q != response trace %q", i, r.TraceID, id)
		}
	}
	if out.Results[1].Error == "" {
		t.Fatal("bad query should report an error")
	}
	rec := fetchTrace(t, ts, id)
	entries := 0
	for _, s := range rec["spanTree"].([]any) {
		if s.(map[string]any)["name"] == "batch.entry" {
			entries++
		}
	}
	if entries != 2 {
		t.Fatalf("want 2 batch.entry spans, got %d", entries)
	}
}

// TestDebugTracesList: the listing includes recent traces with a
// retention reason, and unknown IDs 404.
func TestDebugTracesList(t *testing.T) {
	_, ts := tracedServer(t)
	resp := tracedPost(t, ts, "/api/query",
		`{"query": "MATCH (n:module) RETURN n.short_name"}`, nil)
	resp.Body.Close()
	id := resp.Header.Get(TraceIDHeader)

	list, err := ts.Client().Get(ts.URL + "/api/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var out struct {
		Enabled bool `json:"enabled"`
		Traces  []struct {
			TraceID string `json:"traceId"`
			Reason  string `json:"reason"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(list.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled {
		t.Fatal("tracing should report enabled")
	}
	found := false
	for _, tr := range out.Traces {
		if tr.TraceID == id {
			found = true
			if tr.Reason == "" {
				t.Fatal("retained trace lacks a reason")
			}
		}
	}
	if !found {
		t.Fatalf("trace %s missing from listing", id)
	}

	missing, err := ts.Client().Get(ts.URL + "/api/debug/traces/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, want 404", missing.StatusCode)
	}
}

// TestTracingDisabled: with no Tracer the debug API degrades cleanly
// and responses carry no trace headers.
func TestTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := tracedPost(t, ts, "/api/query",
		`{"query": "MATCH (n:module) RETURN n.short_name"}`, nil)
	resp.Body.Close()
	if resp.Header.Get(TraceIDHeader) != "" {
		t.Fatal("untraced response should not carry X-Trace-Id")
	}
	list, err := ts.Client().Get(ts.URL + "/api/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(list.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["enabled"] != false {
		t.Fatalf("disabled tracing should report enabled=false: %v", out)
	}
}

// TestSlowLogCarriesTraceID: the slow-request log line includes the
// trace ID, completing the logs → traces pivot.
func TestSlowLogCarriesTraceID(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	_, ts := newTestServer(t, func(s *Server) {
		s.Tracer = trace.New(trace.Config{Capacity: 16, SampleRate: 1, SlowThreshold: time.Hour})
		s.SlowThreshold = time.Nanosecond
		s.Logf = func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			lines = append(lines, fmt.Sprintf(format, args...))
		}
	})
	resp := tracedPost(t, ts, "/api/query",
		`{"query": "MATCH (n:module) RETURN n.short_name"}`, nil)
	resp.Body.Close()
	id := resp.Header.Get(TraceIDHeader)
	// The slow line is written after the handler returns; give the
	// middleware a moment to finish behind the response.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		joined := strings.Join(lines, "\n")
		mu.Unlock()
		if strings.Contains(joined, "slow request") && strings.Contains(joined, "traceId="+id) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow line lacks traceId=%s:\n%s", id, joined)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
