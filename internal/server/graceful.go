package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// DefaultDrainTimeout bounds how long a draining server waits for
// in-flight requests before forcing connections closed.
const DefaultDrainTimeout = 30 * time.Second

// Serve runs h on ln until ctx is cancelled (typically by SIGINT or
// SIGTERM via signal.NotifyContext), then drains: if h is a *Server its
// readiness probe starts failing immediately, no new connections are
// accepted, and in-flight requests get up to drainTimeout to finish.
// Returns nil on a clean drain, the shutdown error when the drain
// deadline was hit, or the listener error if serving failed outright.
func Serve(ctx context.Context, ln net.Listener, h http.Handler, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	hs := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if s, ok := h.(*Server); ok {
		s.SetReady(false)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
