package gstats

import "frappe/internal/obs"

// mStatsRebuilds counts full statistics collections (lazy rebuilds after
// a snapshot swap, plus index/update-time collection). Named under the
// planner's frappe_plan_* family because the planner is the consumer.
var mStatsRebuilds = obs.Default.Counter(
	"frappe_plan_stats_rebuilds_total",
	"Full graph-statistics collections (snapshot swaps without persisted stats, plus index/update persists).",
	nil,
)
