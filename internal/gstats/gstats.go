// Package gstats collects per-snapshot graph statistics for the
// cost-based query planner: node counts per concrete type, edge counts
// per type, and per (node type × edge type × direction) degree
// summaries (count, total, max, approximate p50/p90 from a log2
// histogram).
//
// Statistics are collected once per published snapshot (the graph is
// immutable after publication), persisted alongside the store files
// through the same crash-consistent atomicfile commit as the store
// itself, and reloaded at open time so a server restart does not pay
// the full-scan collection cost before its first planned query. A
// snapshot swap that has no persisted statistics (live in-memory
// updates) rebuilds them lazily on the first plan.
//
// Every Stats value carries a process-local Generation number; the
// query-plan cache keys compiled plans by it, so a snapshot swap that
// changes label cardinalities or degree skew can never serve a plan
// whose anchor choice was made against the retired graph.
package gstats

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"frappe/internal/atomicfile"
	"frappe/internal/graph"
	"frappe/internal/model"
)

// FileName is the persisted form of a snapshot's statistics inside a
// store directory, written as part of the index/update commit bundle.
const FileName = "gstats.json"

// generation is the process-local statistics generation counter. Each
// Collect or Load gets a fresh number; plans record the generation they
// were built against and are invalidated when it moves on.
var generation atomic.Int64

// DegreeSummary summarises the degree distribution of one
// (node type, edge type, direction) combination over the nodes that
// have at least one such edge.
type DegreeSummary struct {
	// Nodes is how many nodes of this type have >= 1 edge of this
	// type/direction; Edges is the total number of such edges.
	Nodes int64 `json:"nodes"`
	Edges int64 `json:"edges"`
	Max   int64 `json:"max"`
	// P50 and P90 are approximate percentiles: the upper bound of the
	// log2 histogram bucket containing the quantile.
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	// Buckets is a log2 degree histogram: Buckets[i] counts nodes whose
	// degree lies in [2^i, 2^(i+1)-1].
	Buckets []int64 `json:"buckets"`
}

// Stats is one snapshot's statistics bundle. All maps are keyed by
// plain strings so the JSON form is stable and diffable; Degrees keys
// are "nodeType|edgeType|out" / "...|in".
type Stats struct {
	// Generation is process-local and not persisted: it identifies this
	// in-memory statistics instance for plan-cache invalidation.
	Generation int64 `json:"-"`

	Nodes       int64                     `json:"nodes"`
	Edges       int64                     `json:"edges"`
	NodesByType map[string]int64          `json:"nodesByType"`
	EdgesByType map[string]int64          `json:"edgesByType"`
	Degrees     map[string]*DegreeSummary `json:"degrees"`
}

// DegreeKey builds the Degrees map key for one combination.
func DegreeKey(nt model.NodeType, et model.EdgeType, out bool) string {
	dir := "in"
	if out {
		dir = "out"
	}
	return string(nt) + "|" + string(et) + "|" + dir
}

// Collect computes statistics from a full scan of src: O(nodes + edges)
// with one map entry per (node, edge type, direction) that occurs. The
// scan is the same order of work as writing the store, so it is cheap
// relative to index/update time.
func Collect(src graph.Source) *Stats {
	mStatsRebuilds.Inc()
	st := &Stats{
		Generation:  generation.Add(1),
		Nodes:       src.NodeCount(),
		Edges:       src.EdgeCount(),
		NodesByType: map[string]int64{},
		EdgesByType: map[string]int64{},
		Degrees:     map[string]*DegreeSummary{},
	}
	n := src.NodeCount()
	types := make([]model.NodeType, n)
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		t := src.NodeType(id)
		types[id] = t
		st.NodesByType[string(t)]++
	}

	// Per-node, per-edge-type degree tallies, aggregated into per-type
	// summaries afterwards. The map is bounded by (touched nodes ×
	// occurring edge types), not nodes × all types.
	type degKey struct {
		node graph.NodeID
		et   model.EdgeType
		out  bool
	}
	deg := map[degKey]int64{}
	e := src.EdgeCount()
	for id := graph.EdgeID(0); id < graph.EdgeID(e); id++ {
		from, to, t := src.EdgeEnds(id)
		st.EdgesByType[string(t)]++
		deg[degKey{from, t, true}]++
		deg[degKey{to, t, false}]++
	}
	for k, d := range deg {
		key := DegreeKey(types[k.node], k.et, k.out)
		s := st.Degrees[key]
		if s == nil {
			s = &DegreeSummary{}
			st.Degrees[key] = s
		}
		s.Nodes++
		s.Edges += d
		if d > s.Max {
			s.Max = d
		}
		b := bucketOf(d)
		for len(s.Buckets) <= b {
			s.Buckets = append(s.Buckets, 0)
		}
		s.Buckets[b]++
	}
	for _, s := range st.Degrees {
		s.P50 = s.percentile(0.50)
		s.P90 = s.percentile(0.90)
	}
	return st
}

// bucketOf maps a degree (>= 1) to its log2 histogram bucket.
func bucketOf(d int64) int {
	b := 0
	for d > 1 {
		b++
		d /= 2
	}
	return b
}

// percentile returns the upper degree bound of the bucket containing
// the q-quantile of this summary's nodes.
func (s *DegreeSummary) percentile(q float64) int64 {
	if s.Nodes == 0 {
		return 0
	}
	target := int64(q * float64(s.Nodes))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			hi := int64(1)<<(i+1) - 1
			if hi > s.Max {
				hi = s.Max
			}
			return hi
		}
	}
	return s.Max
}

// LabelCount estimates how many nodes carry a label: the exact count
// for a concrete type, the sum over concrete types for a grouped label
// (symbol, container, ...), and the full node count for an unknown
// label (the executor would fall back to a full scan there anyway).
func (st *Stats) LabelCount(label string) int64 {
	if c, ok := st.NodesByType[label]; ok {
		return c
	}
	var sum int64
	grouped := false
	for _, t := range model.AllNodeTypes {
		for _, l := range model.LabelsFor(t) {
			if l == label {
				grouped = true
				sum += st.NodesByType[string(t)]
			}
		}
	}
	if grouped {
		return sum
	}
	return st.Nodes
}

// AvgDegree estimates the expected fan-out of following edges of type
// et in the given direction from a node of type nt (averaged over all
// nodes of that type, including zero-degree ones). With an empty nt it
// averages over every node.
func (st *Stats) AvgDegree(nt string, et model.EdgeType, out bool) float64 {
	if nt != "" {
		if s, ok := st.Degrees[DegreeKey(model.NodeType(nt), et, out)]; ok {
			if n := st.NodesByType[nt]; n > 0 {
				return float64(s.Edges) / float64(n)
			}
		}
		return 0
	}
	if st.Nodes == 0 {
		return 0
	}
	return float64(st.EdgesByType[string(et)]) / float64(st.Nodes)
}

// Stage serialises st into an in-progress atomicfile commit, so the
// statistics publish (or vanish) atomically with the store files they
// describe.
func Stage(c *atomicfile.Commit, st *Stats) error {
	buf, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return c.WriteFile(FileName, append(buf, '\n'))
}

// Load reads persisted statistics from a store directory, assigning a
// fresh generation. ok is false (with a nil error) when no statistics
// file exists — older stores, or stores written by Engine.Save — in
// which case callers collect lazily instead.
func Load(dir string) (*Stats, bool, error) {
	buf, err := os.ReadFile(filepath.Join(dir, FileName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var st Stats
	if err := json.Unmarshal(buf, &st); err != nil {
		return nil, false, fmt.Errorf("gstats: %s: %w", FileName, err)
	}
	st.Generation = generation.Add(1)
	if st.NodesByType == nil {
		st.NodesByType = map[string]int64{}
	}
	if st.EdgesByType == nil {
		st.EdgesByType = map[string]int64{}
	}
	if st.Degrees == nil {
		st.Degrees = map[string]*DegreeSummary{}
	}
	return &st, true, nil
}

// Rebuilds reports how many times statistics have been collected in
// this process (surfaced by /api/stats next to the planner counters).
func Rebuilds() int64 { return mStatsRebuilds.Value() }
