package gstats

import (
	"path/filepath"
	"reflect"
	"testing"

	"frappe/internal/atomicfile"
	"frappe/internal/graph"
	"frappe/internal/model"
)

// starGraph builds a hub function calling n leaf functions, plus one
// struct node with no edges.
func starGraph(n int) *graph.Graph {
	g := graph.New()
	hub := g.AddNode(model.NodeFunction, graph.P(model.PropShortName, "hub"))
	for i := 0; i < n; i++ {
		leaf := g.AddNode(model.NodeFunction, nil)
		g.AddEdge(hub, leaf, model.EdgeCalls, nil)
	}
	g.AddNode(model.NodeStruct, nil)
	return g
}

func TestCollectCounts(t *testing.T) {
	g := starGraph(8)
	st := Collect(g)
	if st.Nodes != 10 || st.Edges != 8 {
		t.Fatalf("nodes=%d edges=%d, want 10/8", st.Nodes, st.Edges)
	}
	if st.NodesByType[string(model.NodeFunction)] != 9 {
		t.Fatalf("function count = %d, want 9", st.NodesByType[string(model.NodeFunction)])
	}
	if st.NodesByType[string(model.NodeStruct)] != 1 {
		t.Fatalf("struct count = %d, want 1", st.NodesByType[string(model.NodeStruct)])
	}
	if st.EdgesByType[string(model.EdgeCalls)] != 8 {
		t.Fatalf("calls count = %d, want 8", st.EdgesByType[string(model.EdgeCalls)])
	}
	out := st.Degrees[DegreeKey(model.NodeFunction, model.EdgeCalls, true)]
	if out == nil || out.Nodes != 1 || out.Edges != 8 || out.Max != 8 {
		t.Fatalf("out summary = %+v, want 1 node / 8 edges / max 8", out)
	}
	in := st.Degrees[DegreeKey(model.NodeFunction, model.EdgeCalls, false)]
	if in == nil || in.Nodes != 8 || in.Edges != 8 || in.Max != 1 {
		t.Fatalf("in summary = %+v, want 8 nodes / 8 edges / max 1", in)
	}
	// 8 leaves at in-degree 1: p50 and p90 both land in bucket 0.
	if in.P50 != 1 || in.P90 != 1 {
		t.Fatalf("in p50=%d p90=%d, want 1/1", in.P50, in.P90)
	}
	if out.P50 != 8 || out.P90 != 8 {
		t.Fatalf("out p50=%d p90=%d, want 8/8 (single node, capped at max)", out.P50, out.P90)
	}
}

func TestGenerationsAdvance(t *testing.T) {
	g := starGraph(2)
	a, b := Collect(g), Collect(g)
	if a.Generation == b.Generation {
		t.Fatalf("two collections share generation %d", a.Generation)
	}
}

func TestLabelCount(t *testing.T) {
	st := Collect(starGraph(3))
	if got := st.LabelCount(string(model.NodeFunction)); got != 4 {
		t.Fatalf("LabelCount(function) = %d, want 4", got)
	}
	// Grouped label: functions are symbols, the struct node is not.
	sym := st.LabelCount("symbol")
	if sym != 4 {
		t.Fatalf("LabelCount(symbol) = %d, want 4", sym)
	}
	if got := st.LabelCount("no_such_label"); got != st.Nodes {
		t.Fatalf("LabelCount(unknown) = %d, want full scan %d", got, st.Nodes)
	}
}

func TestAvgDegree(t *testing.T) {
	st := Collect(starGraph(9)) // 10 functions, hub out-degree 9
	got := st.AvgDegree(string(model.NodeFunction), model.EdgeCalls, true)
	if got != 0.9 {
		t.Fatalf("AvgDegree(function,calls,out) = %v, want 0.9", got)
	}
	if g := st.AvgDegree("", model.EdgeCalls, true); g <= 0 {
		t.Fatalf("global AvgDegree = %v, want > 0", g)
	}
}

func TestStageLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := starGraph(5)
	st := Collect(g)

	c, err := atomicfile.NewCommit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := Stage(c, st); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(); err != nil {
		t.Fatal(err)
	}

	got, ok, err := Load(dir)
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if got.Generation == st.Generation {
		t.Fatalf("loaded stats reuse generation %d", st.Generation)
	}
	got.Generation = st.Generation
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
}

func TestLoadMissing(t *testing.T) {
	st, ok, err := Load(t.TempDir())
	if st != nil || ok || err != nil {
		t.Fatalf("Load(empty) = %v, %v, %v; want nil,false,nil", st, ok, err)
	}
}

func TestLoadCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := atomicfile.WriteFile(filepath.Join(dir, FileName), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); err == nil {
		t.Fatal("Load(corrupt) succeeded, want error")
	}
}
