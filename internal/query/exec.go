package query

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"frappe/internal/graph"
	"frappe/internal/model"
	"frappe/internal/obs/trace"
	"frappe/internal/traversal"
)

// Result is a query result table.
type Result struct {
	Columns []string
	Rows    [][]Val
	// Steps is how many pattern-expansion steps the query performed —
	// the same unit the MaxSteps budget is charged in.
	Steps int64
}

// Execute runs a parsed query over src. The context bounds execution: a
// deadline or cancellation aborts long-running pattern expansions (the
// paper aborted its Figure 6 comprehension query after 15 minutes).
func Execute(ctx context.Context, src graph.Source, q *Query) (*Result, error) {
	return ExecuteLimits(ctx, src, q, Limits{})
}

// ExecuteLimits runs a parsed query under resource budgets. A panic
// anywhere below (including typed corruption panics from a disk-backed
// source) is recovered into the returned error, so one bad query or one
// bad disk page cannot take down a serving process.
func ExecuteLimits(ctx context.Context, src graph.Source, q *Query, lim Limits) (*Result, error) {
	res, _, err := executeLimits(ctx, src, q, lim, false)
	return res, err
}

// executeLimits is the shared runner behind ExecuteLimits and
// ExecuteProfileLimits: panic recovery, metrics, optional tracing.
func executeLimits(ctx context.Context, src graph.Source, q *Query, lim Limits, profile bool) (res *Result, prof *Profile, err error) {
	start := time.Now()
	ex := &exec{src: src, ctx: ctx, limits: lim}
	ex.span = trace.FromContext(ctx).Child("query.execute", trace.Bool("interpreter", true))
	if profile {
		ex.prof = &Profile{}
	}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("cypher: query aborted: %w", e)
			} else {
				err = fmt.Errorf("cypher: query aborted: %v", r)
			}
			res = nil
		}
		millis := float64(time.Since(start)) / float64(time.Millisecond)
		recordQueryMetrics(res, err, millis, ex.steps)
		if ex.prof != nil {
			ex.prof.Steps = ex.steps
			ex.prof.Millis = millis
			if res != nil {
				ex.prof.Rows = int64(len(res.Rows))
			}
			prof = ex.prof
		}
		if ex.span != nil {
			ex.span.SetAttr(trace.Int("steps", ex.steps))
			if res != nil {
				ex.span.SetAttr(trace.Int("rows", int64(len(res.Rows))))
			}
			if err != nil {
				ex.span.SetError(err)
			}
			ex.span.End()
		}
	}()
	res, err = ex.run(q)
	if res != nil {
		res.Steps = ex.steps
	}
	return res, nil, err
}

// Run parses and executes a query text.
func Run(ctx context.Context, src graph.Source, text string) (*Result, error) {
	return RunLimits(ctx, src, text, Limits{})
}

// RunLimits parses and executes a query text under resource budgets.
func RunLimits(ctx context.Context, src graph.Source, text string, lim Limits) (*Result, error) {
	q, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return ExecuteLimits(ctx, src, q, lim)
}

type exec struct {
	src    graph.Source
	ctx    context.Context
	limits Limits
	steps  int64
	prof   *Profile // nil unless PROFILE requested; hot paths never touch it
	// span is the executor's trace span (nil when the request is
	// untraced); run() hangs per-clause child spans off it.
	span *trace.Span
	// fastPred enables the visited-set fast path for reachability-shaped
	// WHERE pattern predicates. Only planned execution (internal/plan via
	// Env) turns it on; the plain interpreter stays Cypher-naive so
	// planned-vs-naive equivalence tests compare genuinely different
	// execution strategies.
	fastPred bool
	// domain, when set, restricts the FIRST unbound seed scan to the
	// candidates it accepts — the scatter-gather hook: each coordinator
	// worker owns a disjoint candidate domain and their unions equal the
	// unsharded enumeration. Later seed scans (cartesian patterns, later
	// MATCH clauses) run unfiltered in every worker, because their input
	// rows are already partitioned by the first scan. domainUsed latches
	// after the first scan; curAnchor tracks the seed currently being
	// expanded so emitted rows can be merged back in global order.
	domain     func(graph.NodeID) bool
	domainUsed bool
	curAnchor  graph.NodeID
	// shared, when set, replaces the per-exec step/row budgets with
	// counters shared across every worker of one scattered query, so the
	// fleet collectively aborts at exactly the budget the single-engine
	// run would have.
	shared *ScatterShared
}

// tick periodically checks the context and enforces the step budget; it
// is called on every pattern expansion so runaway variable-length
// matches stay abortable.
func (ex *exec) tick() error {
	ex.steps++
	if ex.limits.MaxSteps > 0 {
		steps := ex.steps
		if ex.shared != nil {
			steps = ex.shared.steps.Add(1)
		}
		if steps > ex.limits.MaxSteps {
			return &BudgetError{What: "steps", Limit: ex.limits.MaxSteps}
		}
	} else if ex.shared != nil {
		ex.shared.steps.Add(1)
	}
	if ex.steps&1023 == 0 {
		if err := ex.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// checkRows enforces the row budget at every point where rows are
// materialised.
func (ex *exec) checkRows(n int) error {
	if ex.limits.MaxRows > 0 && n > ex.limits.MaxRows {
		return &BudgetError{What: "rows", Limit: int64(ex.limits.MaxRows)}
	}
	return nil
}

// Steps reports how many pattern expansions the last query performed.
func (ex *exec) Steps() int64 { return ex.steps }

func (ex *exec) run(q *Query) (*Result, error) {
	rows := []Row{{}}
	var result *Result
	for i, c := range q.Clauses {
		if result != nil {
			return nil, ex.errf("RETURN must be the final clause")
		}
		var err error
		stepsBefore := ex.steps
		var clauseStart time.Time
		if ex.prof != nil || ex.span != nil {
			clauseStart = time.Now()
		}
		switch t := c.(type) {
		case *StartClause:
			rows, err = ex.applyStart(rows, t)
		case *MatchClause:
			rows, err = ex.applyMatch(rows, t)
		case *WhereClause:
			rows, err = ex.applyWhere(rows, t)
		case *WithClause:
			rows, _, err = ex.applyProjection(rows, t.Items, t.Distinct, t.OrderBy, t.Skip, t.Limit)
		case *ReturnClause:
			var cols []string
			var projected []Row
			projected, cols, err = ex.applyProjection(rows, t.Items, t.Distinct, t.OrderBy, t.Skip, t.Limit)
			if err == nil {
				result = &Result{Columns: cols}
				for _, r := range projected {
					vals := make([]Val, len(cols))
					for j, c := range cols {
						vals[j] = r[c]
					}
					result.Rows = append(result.Rows, vals)
				}
			}
		}
		if ex.prof != nil || ex.span != nil {
			// Record the operator even when it errored: an aborted Match
			// still shows which clause burned the budget.
			op, detail := operatorInfo(c)
			out := int64(len(rows))
			if result != nil {
				out = int64(len(result.Rows))
			}
			if ex.span != nil {
				cs := ex.span.ChildSince("clause."+op, clauseStart,
					trace.Str("detail", detail),
					trace.Int("rows", out),
					trace.Int("dbHits", ex.steps-stepsBefore))
				if err != nil {
					cs.SetError(err)
				}
				cs.End()
			}
			if ex.prof != nil {
				ex.prof.Ops = append(ex.prof.Ops, OpProfile{
					Operator: op,
					Detail:   detail,
					Rows:     out,
					DBHits:   ex.steps - stepsBefore,
					Millis:   float64(time.Since(clauseStart)) / float64(time.Millisecond),
				})
			}
		}
		if err != nil {
			return nil, err
		}
		_ = i
	}
	if result == nil {
		return nil, ex.errf("query has no RETURN clause")
	}
	return result, nil
}

// startItemIDs resolves one START item to its seed node IDs.
func (ex *exec) startItemIDs(item StartItem) ([]graph.NodeID, error) {
	switch {
	case item.All:
		n := ex.src.NodeCount()
		ids := make([]graph.NodeID, n)
		for i := range ids {
			ids[i] = graph.NodeID(i)
		}
		return ids, nil
	case item.IndexName != "":
		if !strings.EqualFold(item.IndexName, "node_auto_index") {
			return nil, ex.errf("unknown index %q", item.IndexName)
		}
		return ex.src.Lookup(item.IndexQuery)
	default:
		var ids []graph.NodeID
		for _, id := range item.IDs {
			if id >= 0 && id < graph.NodeID(ex.src.NodeCount()) {
				ids = append(ids, id)
			}
		}
		return ids, nil
	}
}

func (ex *exec) applyStart(rows []Row, sc *StartClause) ([]Row, error) {
	for _, item := range sc.Items {
		ids, err := ex.startItemIDs(item)
		if err != nil {
			return nil, err
		}
		var next []Row
		for _, row := range rows {
			for _, id := range ids {
				if err := ex.checkRows(len(next) + 1); err != nil {
					return nil, err
				}
				r := row.clone()
				r[item.Var] = NodeVal(id)
				next = append(next, r)
			}
		}
		rows = next
	}
	return rows, nil
}

func (ex *exec) applyWhere(rows []Row, wc *WhereClause) ([]Row, error) {
	var out []Row
	for _, row := range rows {
		v, err := ex.evalExpr(wc.Cond, row)
		if err != nil {
			return nil, err
		}
		if !v.IsNull() && v.Truthy() {
			out = append(out, row)
		}
	}
	return out, nil
}

// --- MATCH ---

type edgeSet map[graph.EdgeID]bool

func (ex *exec) applyMatch(rows []Row, mc *MatchClause) ([]Row, error) {
	return ex.applyMatchHints(rows, mc, nil)
}

// applyMatchHints is applyMatch with optional planner hints, one per
// pattern (nil or short slices mean "no hint": naive behaviour).
func (ex *exec) applyMatchHints(rows []Row, mc *MatchClause, hints []PatternHint) ([]Row, error) {
	var out []Row
	for _, row := range rows {
		matched := false
		err := ex.matchPatterns(row, mc.Patterns, hints, edgeSet{}, func(r Row) error {
			if err := ex.checkRows(len(out) + 1); err != nil {
				return err
			}
			matched = true
			out = append(out, r)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if !matched && mc.Optional {
			r := row.clone()
			for _, pat := range mc.Patterns {
				for _, np := range pat.Nodes {
					if np.Var != "" {
						if _, ok := r[np.Var]; !ok {
							r[np.Var] = nullVal
						}
					}
				}
				for _, rp := range pat.Rels {
					if rp.Var != "" {
						if _, ok := r[rp.Var]; !ok {
							r[rp.Var] = nullVal
						}
					}
				}
				if pat.PathVar != "" {
					if _, ok := r[pat.PathVar]; !ok {
						r[pat.PathVar] = nullVal
					}
				}
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// matchPatterns matches the pattern list in order, sharing relationship
// uniqueness across patterns of the same MATCH (Cypher semantics).
func (ex *exec) matchPatterns(row Row, pats []*Pattern, hints []PatternHint, used edgeSet, emit func(Row) error) error {
	if len(pats) == 0 {
		return emit(row)
	}
	var hint *PatternHint
	var rest []PatternHint
	if len(hints) > 0 {
		hint, rest = &hints[0], hints[1:]
	}
	return ex.matchOne(row, pats[0], hint, used, func(r Row) error {
		return ex.matchPatterns(r, pats[1:], rest, used, emit)
	})
}

// patternHolds evaluates a pattern predicate (WHERE (n)<-[...]-()).
func (ex *exec) patternHolds(pat *Pattern, row Row) (bool, error) {
	if ex.fastPred {
		if ok, handled, err := ex.reachabilityHolds(pat, row); handled {
			return ok, err
		}
	}
	found := false
	err := ex.matchOne(row, pat, nil, edgeSet{}, func(Row) error {
		found = true
		return errStopMatch
	})
	if err != nil && err != errStopMatch {
		return false, err
	}
	return found, nil
}

// reachabilityHolds decides a reachability-shaped pattern predicate —
// one variable-length relationship whose bindings cannot escape (no rel
// or path variable) anchored at >= 1 bound endpoint — with an
// early-exit visited-set BFS instead of path enumeration. An existence
// check needs one witness, and a simple path exists iff a BFS walk
// reaches the endpoint, so this is exact. handled is false when the
// pattern is not of that shape and the enumerating fallback must
// decide.
func (ex *exec) reachabilityHolds(pat *Pattern, row Row) (ok, handled bool, err error) {
	if pat.Shortest || pat.AllShortest || pat.PathVar != "" || len(pat.Rels) != 1 {
		return false, false, nil
	}
	rel := pat.Rels[0]
	if !rel.VarLen || rel.MinHops > 1 || rel.Var != "" {
		return false, false, nil
	}
	// Undirected walks can re-reach the start node only by reusing an
	// edge (s—x—s), which Cypher's relationship uniqueness forbids, so
	// BFS would over-claim start-to-start reachability. Directed closed
	// walks always contain a simple cycle through the start, and a
	// zero-hop minimum admits the start unconditionally, so those stay.
	if !rel.ToRight && !rel.ToLeft && rel.MinHops != 0 {
		return false, false, nil
	}
	left, right := pat.Nodes[0], pat.Nodes[1]
	leftID, leftBound, leftBad := boundNode(row, left)
	rightID, rightBound, rightBad := boundNode(row, right)
	if leftBad || rightBad {
		// A pattern variable bound to a non-node can never match.
		return false, true, nil
	}
	if !leftBound && !rightBound {
		return false, false, nil
	}

	// Walk from a bound endpoint; when only the right end is bound the
	// arrow directions flip because we traverse against them.
	start, startNP, targNP := leftID, left, right
	targID, targBound := rightID, rightBound
	outgoing, incoming := true, true
	if leftBound {
		switch {
		case rel.ToRight:
			outgoing, incoming = true, false
		case rel.ToLeft:
			outgoing, incoming = false, true
		}
	} else {
		start, startNP, targNP = rightID, right, left
		targID, targBound = 0, false
		switch {
		case rel.ToRight:
			outgoing, incoming = false, true
		case rel.ToLeft:
			outgoing, incoming = true, false
		}
	}
	if !ex.nodeMatches(startNP, start) {
		return false, true, nil
	}
	if targBound && !ex.nodeMatches(targNP, targID) {
		return false, true, nil
	}
	if rel.MinHops == 0 {
		if targBound {
			if targID == start {
				return true, true, nil
			}
		} else if ex.nodeMatches(targNP, start) {
			return true, true, nil
		}
	}

	opts := traversal.Options{MaxDepth: rel.MaxHops, Types: relTypeSet(rel)}
	switch {
	case outgoing && incoming:
		opts.Direction = traversal.Both
	case outgoing:
		opts.Direction = traversal.Out
	default:
		opts.Direction = traversal.In
	}
	var budgetErr error
	opts.EdgeFilter = func(e graph.EdgeID) bool {
		if budgetErr != nil {
			return false
		}
		if err := ex.tick(); err != nil {
			budgetErr = err
			return false
		}
		return ex.relPropsMatch(rel, e)
	}
	pred := func(n graph.NodeID) bool { return ex.nodeMatches(targNP, n) }
	if targBound {
		pred = func(n graph.NodeID) bool { return n == targID }
	}
	_, found, err := traversal.FindReachableCtx(ex.ctx, ex.src, start, opts, pred)
	if budgetErr != nil {
		return false, true, budgetErr
	}
	if err != nil {
		return false, true, err
	}
	return found, true, nil
}

// boundNode resolves a node pattern's variable in row: (id, true, false)
// when bound to a node, bad=true when bound to anything else (null
// included), in which case the pattern cannot match at all.
func boundNode(row Row, np *NodePattern) (id graph.NodeID, bound, bad bool) {
	if np.Var == "" {
		return 0, false, false
	}
	v, ok := row[np.Var]
	if !ok {
		return 0, false, false
	}
	if v.Kind != ValNode {
		return 0, false, true
	}
	return v.Node, true, false
}

// relTypeSet lowers a relationship pattern's type alternatives to a
// traversal type set (nil = all types).
func relTypeSet(rel *RelPattern) traversal.TypeSet {
	if len(rel.Types) == 0 {
		return nil
	}
	ts := traversal.TypeSet{}
	for _, t := range rel.Types {
		ts[model.EdgeType(strings.ToLower(t))] = true
	}
	return ts
}

// errStopMatch aborts enumeration early (pattern predicates need only one
// witness).
var errStopMatch = &Error{Msg: "stop"}

// matchOne enumerates all assignments of one linear pattern consistent
// with row, calling emit for each. The used set enforces relationship
// uniqueness; entries added along one solution path are removed on
// backtrack.
func (ex *exec) matchOne(row Row, pat *Pattern, hint *PatternHint, used edgeSet, emit func(Row) error) error {
	if pat.Shortest {
		return ex.matchShortest(row, pat, emit)
	}
	// Choose the anchor: the first node position whose variable is bound.
	anchor := -1
	for i, np := range pat.Nodes {
		if np.Var == "" {
			continue
		}
		if v, ok := row[np.Var]; ok && v.Kind == ValNode {
			anchor = i
			break
		}
	}

	// Job order: expand rightward from the anchor, then leftward (or
	// leftward first when the planner estimated that side cheaper).
	type job struct {
		relIdx   int
		knownPos int
		targPos  int
	}
	var jobs []job
	a := anchor
	if a < 0 {
		a = 0
		// Planner anchor hint: only meaningful when nothing is bound —
		// a bound variable always wins (one seed beats any scan).
		if hint != nil && hint.Anchor > 0 && hint.Anchor < len(pat.Nodes) {
			a = hint.Anchor
		}
	}
	right := func() {
		for i := a; i < len(pat.Rels); i++ {
			jobs = append(jobs, job{relIdx: i, knownPos: i, targPos: i + 1})
		}
	}
	left := func() {
		for i := a - 1; i >= 0; i-- {
			jobs = append(jobs, job{relIdx: i, knownPos: i + 1, targPos: i})
		}
	}
	if hint != nil && hint.LeftFirst {
		left()
		right()
	} else {
		right()
		left()
	}

	// nodeAt tracks the concrete node at each pattern position for the
	// current solution path (named or anonymous); edgesAt tracks the
	// matched edges per relationship position for path bindings.
	nodeAt := make([]graph.NodeID, len(pat.Nodes))
	for i := range nodeAt {
		nodeAt[i] = graph.InvalidID
	}
	edgesAt := make([][]Val, len(pat.Rels))

	var solve func(row Row, j int) error
	solve = func(row Row, j int) error {
		if j == len(jobs) {
			if pat.PathVar != "" {
				r := row.clone()
				r[pat.PathVar] = ex.buildPathVal(pat, nodeAt, edgesAt)
				return emit(r)
			}
			return emit(row)
		}
		jb := jobs[j]
		rel := pat.Rels[jb.relIdx]
		known := nodeAt[jb.knownPos]
		targNP := pat.Nodes[jb.targPos]

		// leftToRight is true when we traverse the relationship in its
		// arrow direction starting from the known end.
		var outgoing, incoming bool
		switch {
		case rel.ToRight:
			outgoing = jb.knownPos < jb.targPos
			incoming = !outgoing
		case rel.ToLeft:
			outgoing = jb.knownPos > jb.targPos
			incoming = !outgoing
		default:
			outgoing, incoming = true, true
		}

		accept := func(edges []Val, target graph.NodeID, r Row) error {
			if !ex.nodeMatches(targNP, target) {
				return nil
			}
			if targNP.Var != "" {
				if bound, ok := r[targNP.Var]; ok {
					if bound.Kind != ValNode || bound.Node != target {
						return nil
					}
				} else {
					r = r.clone()
					r[targNP.Var] = NodeVal(target)
				}
			}
			if rel.Var != "" {
				r = r.clone()
				if rel.VarLen {
					r[rel.Var] = ListVal(edges)
				} else {
					r[rel.Var] = edges[0]
				}
			}
			prev := nodeAt[jb.targPos]
			prevE := edgesAt[jb.relIdx]
			nodeAt[jb.targPos] = target
			edgesAt[jb.relIdx] = edges
			err := solve(r, j+1)
			nodeAt[jb.targPos] = prev
			edgesAt[jb.relIdx] = prevE
			return err
		}

		if !rel.VarLen {
			return ex.expandOne(known, rel, outgoing, incoming, used, func(e graph.EdgeID, n graph.NodeID) error {
				used[e] = true
				err := accept([]Val{EdgeVal(e)}, n, row)
				delete(used, e)
				return err
			})
		}

		// Closure rewrite (planner hint): emit each reachable endpoint
		// once via a visited-set BFS instead of enumerating every
		// edge-unique path — the paper's embedded-traversal trick applied
		// to Cypher execution. The planner only issues the hint when it
		// proved downstream multiplicity-invariance (internal/plan), and
		// the guards here keep it inert if a future caller hands a hint
		// to a pattern whose bindings or shared edge set would observe
		// the difference.
		if hint != nil && jb.relIdx < len(hint.Closure) && hint.Closure[jb.relIdx] &&
			rel.Var == "" && pat.PathVar == "" && len(used) == 0 &&
			(rel.ToRight || rel.ToLeft || rel.MinHops == 0) {
			if rel.MinHops == 0 {
				if err := accept(nil, known, row); err != nil {
					return err
				}
			}
			opts := traversal.Options{MaxDepth: rel.MaxHops, Types: relTypeSet(rel)}
			switch {
			case outgoing && incoming:
				opts.Direction = traversal.Both
			case outgoing:
				opts.Direction = traversal.Out
			default:
				opts.Direction = traversal.In
			}
			var budgetErr error
			opts.EdgeFilter = func(e graph.EdgeID) bool {
				if budgetErr != nil {
					return false
				}
				if err := ex.tick(); err != nil {
					budgetErr = err
					return false
				}
				return ex.relPropsMatch(rel, e)
			}
			ids, err := traversal.TransitiveClosureCtx(ex.ctx, ex.src, known, opts)
			if budgetErr != nil {
				return budgetErr
			}
			if err != nil {
				return err
			}
			for _, id := range ids {
				if rel.MinHops == 0 && id == known {
					// Already emitted by the zero-length match above.
					continue
				}
				if err := accept(nil, id, row); err != nil {
					return err
				}
			}
			return nil
		}

		// Variable-length: depth-first path enumeration with relationship
		// uniqueness. This is deliberately Cypher-faithful: every distinct
		// path is a distinct match, which blows up on dense call graphs
		// exactly as the paper's Figure 6 query did.
		var path []Val
		var dfs func(cur graph.NodeID, depth int) error
		dfs = func(cur graph.NodeID, depth int) error {
			if depth >= rel.MinHops && depth > 0 {
				if err := accept(append([]Val(nil), path...), cur, row); err != nil {
					return err
				}
			}
			if rel.MaxHops > 0 && depth >= rel.MaxHops {
				return nil
			}
			return ex.expandOne(cur, rel, outgoing, incoming, used, func(e graph.EdgeID, n graph.NodeID) error {
				used[e] = true
				path = append(path, EdgeVal(e))
				err := dfs(n, depth+1)
				path = path[:len(path)-1]
				delete(used, e)
				return err
			})
		}
		if rel.MinHops == 0 {
			// Zero-length match: target is the known node itself.
			if err := accept(nil, known, row); err != nil {
				return err
			}
		}
		return dfs(known, 0)
	}

	// Seed the anchor position.
	seed := func(row Row, id graph.NodeID) error {
		np := pat.Nodes[a]
		if !ex.nodeMatches(np, id) {
			return nil
		}
		r := row
		if np.Var != "" {
			if bound, ok := r[np.Var]; ok {
				if bound.Kind != ValNode || bound.Node != id {
					return nil
				}
			} else {
				r = r.clone()
				r[np.Var] = NodeVal(id)
			}
		}
		nodeAt[a] = id
		err := solve(r, 0)
		nodeAt[a] = graph.InvalidID
		return err
	}

	if anchor >= 0 {
		v := row[pat.Nodes[anchor].Var]
		return seed(row, v.Node)
	}
	ids, err := ex.scanCandidates(pat.Nodes[a])
	if err != nil {
		return err
	}
	// The first unfiltered seed scan of a scattered execution is where
	// the candidate domain applies: skipped candidates belong to (and are
	// ticked by) another worker, so the filter runs before the tick and
	// the workers' step counts sum to the single-engine count exactly.
	var filter func(graph.NodeID) bool
	if ex.domain != nil && !ex.domainUsed {
		ex.domainUsed = true
		filter = ex.domain
	}
	for _, id := range ids {
		if filter != nil {
			if !filter(id) {
				continue
			}
			ex.curAnchor = id
		}
		if err := ex.tick(); err != nil {
			return err
		}
		if err := seed(row, id); err != nil {
			return err
		}
	}
	return nil
}

// buildPathVal assembles the matched path value left-to-right from the
// per-position node/edge assignments.
func (ex *exec) buildPathVal(pat *Pattern, nodeAt []graph.NodeID, edgesAt [][]Val) Val {
	p := traversal.Path{Start: nodeAt[0]}
	cur := nodeAt[0]
	for i := range pat.Rels {
		for _, ev := range edgesAt[i] {
			from, to, _ := ex.src.EdgeEnds(ev.Edge)
			next := to
			if from != cur {
				next = from
			}
			p.Steps = append(p.Steps, traversal.Step{Edge: ev.Edge, Node: next})
			cur = next
		}
	}
	return PathVal(p)
}

// matchShortest evaluates shortestPath()/allShortestPaths(): both
// endpoints must be bound nodes; the single relationship pattern drives
// a breadth-first search through the embedded traversal machinery.
func (ex *exec) matchShortest(row Row, pat *Pattern, emit func(Row) error) error {
	endpoint := func(np *NodePattern) (graph.NodeID, error) {
		if np.Var == "" {
			return 0, ex.errf("shortestPath endpoints must be named variables")
		}
		v, ok := row[np.Var]
		if !ok || v.Kind != ValNode {
			return 0, ex.errf("shortestPath endpoint %q is not a bound node", np.Var)
		}
		return v.Node, nil
	}
	from, err := endpoint(pat.Nodes[0])
	if err != nil {
		return err
	}
	to, err := endpoint(pat.Nodes[1])
	if err != nil {
		return err
	}
	rel := pat.Rels[0]
	opts := traversal.Options{}
	if len(rel.Types) > 0 {
		ts := traversal.TypeSet{}
		for _, t := range rel.Types {
			ts[model.EdgeType(strings.ToLower(t))] = true
		}
		opts.Types = ts
	}
	start, goal := from, to
	switch {
	case rel.ToRight:
		opts.Direction = traversal.Out
	case rel.ToLeft:
		opts.Direction = traversal.Out
		start, goal = to, from
	default:
		opts.Direction = traversal.Both
	}
	if rel.VarLen && rel.MaxHops > 0 {
		opts.MaxDepth = rel.MaxHops
	}
	if !rel.VarLen {
		opts.MaxDepth = 1
	}
	p, ok := traversal.ShortestPath(ex.src, start, goal, opts)
	if !ok || (rel.VarLen && p.Len() < rel.MinHops) {
		return nil
	}
	emitPath := func(p traversal.Path) error {
		r := row.clone()
		if pat.PathVar != "" {
			r[pat.PathVar] = PathVal(p)
		}
		if rel.Var != "" {
			edges := make([]Val, p.Len())
			for i, s := range p.Steps {
				edges[i] = EdgeVal(s.Edge)
			}
			r[rel.Var] = ListVal(edges)
		}
		return emit(r)
	}
	if !pat.AllShortest {
		return emitPath(p)
	}
	// allShortestPaths: enumerate every path of the minimum length.
	minLen := p.Len()
	var emitErr error
	traversal.AllPaths(ex.src, start, goal, minLen, opts, func(q traversal.Path) bool {
		if q.Len() != minLen {
			return true
		}
		if err := emitPath(q); err != nil {
			emitErr = err
			return false
		}
		return true
	})
	return emitErr
}

// expandOne visits each edge incident to `known` that satisfies the
// relationship pattern and is not yet used, yielding the edge and the
// neighbour node.
func (ex *exec) expandOne(known graph.NodeID, rel *RelPattern, outgoing, incoming bool, used edgeSet, fn func(graph.EdgeID, graph.NodeID) error) error {
	try := func(edges []graph.EdgeID, out bool) error {
		for _, e := range edges {
			if err := ex.tick(); err != nil {
				return err
			}
			if used[e] {
				continue
			}
			from, to, typ := ex.src.EdgeEnds(e)
			if !relTypeMatches(rel, typ) {
				continue
			}
			if !ex.relPropsMatch(rel, e) {
				continue
			}
			n := to
			if !out {
				n = from
			}
			if err := fn(e, n); err != nil {
				return err
			}
		}
		return nil
	}
	if outgoing {
		if err := try(ex.src.Out(known), true); err != nil {
			return err
		}
	}
	if incoming {
		if err := try(ex.src.In(known), false); err != nil {
			return err
		}
	}
	return nil
}

func relTypeMatches(rel *RelPattern, typ model.EdgeType) bool {
	if len(rel.Types) == 0 {
		return true
	}
	for _, t := range rel.Types {
		if strings.EqualFold(t, string(typ)) {
			return true
		}
	}
	return false
}

func (ex *exec) relPropsMatch(rel *RelPattern, e graph.EdgeID) bool {
	for _, pm := range rel.Props {
		v, ok := ex.src.EdgeProp(e, pm.Key)
		if !ok || !v.Equal(pm.Val) {
			return false
		}
	}
	return true
}

func (ex *exec) nodeMatches(np *NodePattern, id graph.NodeID) bool {
	for _, l := range np.Labels {
		if !ex.src.NodeHasLabel(id, l) {
			return false
		}
	}
	for _, pm := range np.Props {
		v, ok := ex.src.NodeProp(id, pm.Key)
		if !ok || !v.Equal(pm.Val) {
			return false
		}
	}
	return true
}

// scanCandidates picks anchor candidates for an unbound node pattern:
// auto-index lookup when an indexed property or a concrete type label is
// available, full node scan otherwise (the planner behaviour that Cypher
// 1.x exhibited, and the cost model behind ablation A4).
func (ex *exec) scanCandidates(np *NodePattern) ([]graph.NodeID, error) {
	if ids, ok, err := ex.indexCandidates(np); ok || err != nil {
		return ids, err
	}
	n := ex.src.NodeCount()
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	return ids, nil
}

// indexCandidates is the index-served half of scanCandidates: ok
// reports whether an auto-index probe applies (the coordinator's
// single-shard fast-path check mirrors the executor through this exact
// code, so the two can never disagree on the candidate set).
func (ex *exec) indexCandidates(np *NodePattern) ([]graph.NodeID, bool, error) {
	for _, pm := range np.Props {
		if pm.Val.Kind() != graph.KindString {
			continue
		}
		if isIndexedPropKey(pm.Key) {
			ids, err := ex.src.Lookup(pm.Key + ": \"" + pm.Val.AsString() + "\"")
			return ids, true, err
		}
	}
	for _, l := range np.Labels {
		if isConcreteNodeType(l) {
			ids, err := ex.src.Lookup("TYPE: \"" + l + "\"")
			return ids, true, err
		}
	}
	return nil, false, nil
}

func isIndexedPropKey(key string) bool {
	switch strings.ToUpper(key) {
	case model.PropShortName, model.PropName, model.PropLongName, model.PropType:
		return true
	}
	return false
}

func isConcreteNodeType(label string) bool {
	for _, t := range model.AllNodeTypes {
		if string(t) == label {
			return true
		}
	}
	return false
}

// --- projection ---

func (ex *exec) applyProjection(rows []Row, items []ReturnItem, distinct bool, order []OrderKey, skipE, limitE Expr) ([]Row, []string, error) {
	cols := make([]string, len(items))
	for i, it := range items {
		cols[i] = it.Alias
	}

	aggregated := false
	for _, it := range items {
		if isAggregate(it.Expr) {
			aggregated = true
			break
		}
	}

	var projected []Row
	if aggregated {
		// Group rows by the values of non-aggregate items.
		type group struct {
			keyVals map[string]Val
			rows    []Row
		}
		groups := make(map[string]*group)
		var orderKeys []string
		for _, row := range rows {
			var sb strings.Builder
			keyVals := make(map[string]Val)
			for i, it := range items {
				if isAggregate(it.Expr) {
					continue
				}
				v, err := ex.evalExpr(it.Expr, row)
				if err != nil {
					return nil, nil, err
				}
				keyVals[cols[i]] = v
				v.key(&sb)
				sb.WriteByte('|')
			}
			k := sb.String()
			grp, ok := groups[k]
			if !ok {
				grp = &group{keyVals: keyVals}
				groups[k] = grp
				orderKeys = append(orderKeys, k)
			}
			grp.rows = append(grp.rows, row)
		}
		if len(rows) == 0 && allAggregates(items) {
			// Aggregates over zero rows produce one row (count(*) = 0).
			groups[""] = &group{keyVals: map[string]Val{}}
			orderKeys = append(orderKeys, "")
		}
		for _, k := range orderKeys {
			grp := groups[k]
			out := make(Row, len(items))
			for i, it := range items {
				if isAggregate(it.Expr) {
					v, err := ex.evalAggregate(it.Expr, grp.rows)
					if err != nil {
						return nil, nil, err
					}
					out[cols[i]] = v
				} else {
					out[cols[i]] = grp.keyVals[cols[i]]
				}
			}
			projected = append(projected, out)
		}
	} else {
		for _, row := range rows {
			out := make(Row, len(items))
			for i, it := range items {
				v, err := ex.evalExpr(it.Expr, row)
				if err != nil {
					return nil, nil, err
				}
				out[cols[i]] = v
			}
			projected = append(projected, out)
		}
	}

	if distinct {
		seen := make(map[string]bool)
		var dedup []Row
		for _, r := range projected {
			var sb strings.Builder
			for _, c := range cols {
				r[c].key(&sb)
				sb.WriteByte('|')
			}
			k := sb.String()
			if seen[k] {
				continue
			}
			seen[k] = true
			dedup = append(dedup, r)
		}
		projected = dedup
	}

	if len(order) > 0 {
		var evalErr error
		sort.SliceStable(projected, func(i, j int) bool {
			for _, ok := range order {
				vi := ex.evalOrderKey(ok.Expr, projected[i], &evalErr)
				vj := ex.evalOrderKey(ok.Expr, projected[j], &evalErr)
				c := compareVals(vi, vj)
				if c == 0 {
					continue
				}
				if ok.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if evalErr != nil {
			return nil, nil, evalErr
		}
	}

	if skipE != nil {
		n, err := ex.evalIntConst(skipE)
		if err != nil {
			return nil, nil, err
		}
		if int(n) < len(projected) {
			projected = projected[n:]
		} else {
			projected = nil
		}
	}
	if limitE != nil {
		n, err := ex.evalIntConst(limitE)
		if err != nil {
			return nil, nil, err
		}
		if int64(len(projected)) > n {
			projected = projected[:n]
		}
	}
	return projected, cols, nil
}

func allAggregates(items []ReturnItem) bool {
	for _, it := range items {
		if !isAggregate(it.Expr) {
			return false
		}
	}
	return len(items) > 0
}

// evalOrderKey evaluates an ORDER BY key against a projected row. A key
// whose text matches a projected column uses that column; otherwise
// unknown variables order as null rather than failing, so ORDER BY works
// over aggregated output.
func (ex *exec) evalOrderKey(e Expr, row Row, errOut *error) Val {
	if v, ok := row[e.Text()]; ok {
		return v
	}
	v, err := ex.evalExpr(e, row)
	if err != nil {
		var unknown *unknownVarError
		if !errorsAs(err, &unknown) && *errOut == nil {
			*errOut = err
		}
		return nullVal
	}
	return v
}

func errorsAs(err error, target **unknownVarError) bool {
	u, ok := err.(*unknownVarError)
	if ok {
		*target = u
	}
	return ok
}

func (ex *exec) evalIntConst(e Expr) (int64, error) {
	v, err := ex.evalExpr(e, Row{})
	if err != nil {
		return 0, err
	}
	if v.Kind != ValScalar || v.Scalar.Kind() != graph.KindInt {
		return 0, ex.errf("SKIP/LIMIT must be an integer")
	}
	n := v.Scalar.AsInt()
	if n < 0 {
		return 0, ex.errf("SKIP/LIMIT must be non-negative")
	}
	return n, nil
}

// compareVals orders values for ORDER BY: nulls sort last, scalars by
// value, entities by ID, lists lexicographically, mixed kinds by kind.
func compareVals(a, b Val) int {
	if a.IsNull() && b.IsNull() {
		return 0
	}
	if a.IsNull() {
		return 1
	}
	if b.IsNull() {
		return -1
	}
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	switch a.Kind {
	case ValScalar:
		if c, ok := a.Scalar.Compare(b.Scalar); ok {
			return c
		}
		// Incomparable scalars (string vs numeric): numerics sort before
		// strings. Booleans share the numeric rank because Compare treats
		// them as numbers — ranking them separately would create ordering
		// cycles (int < bool numerically but string fallback in between).
		return scalarRank(a.Scalar.Kind()) - scalarRank(b.Scalar.Kind())
	case ValNode:
		// Explicit comparison, not int(a-b): the subtraction overflows
		// for IDs on opposite extremes (and truncates on 32-bit ints),
		// flipping the sign and corrupting ORDER BY / DISTINCT order.
		return compareIDs(int64(a.Node), int64(b.Node))
	case ValEdge:
		return compareIDs(int64(a.Edge), int64(b.Edge))
	case ValList:
		for i := 0; i < len(a.List) && i < len(b.List); i++ {
			if c := compareVals(a.List[i], b.List[i]); c != 0 {
				return c
			}
		}
		return len(a.List) - len(b.List)
	}
	return 0
}

// compareIDs three-way-compares entity IDs without overflow.
func compareIDs(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// scalarRank orders incomparable scalar kinds: numerics (int, bool)
// before strings.
func scalarRank(k graph.Kind) int {
	switch k {
	case graph.KindInt, graph.KindBool:
		return 1
	case graph.KindString:
		return 2
	}
	return 0
}
