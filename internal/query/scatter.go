package query

import (
	"context"
	"sync/atomic"
	"time"

	"frappe/internal/graph"
	"frappe/internal/obs/trace"
)

// Scatter-gather support: the hooks the shard coordinator uses to run
// ONE compiled plan as K workers over the same composite source, each
// owning a disjoint domain of the first seed scan's candidates. Every
// worker sees the whole graph (patterns cross shard boundaries through
// cut edges); only the seeding is partitioned, so the union of worker
// outputs is exactly the single-engine result set, and merging worker
// streams by ascending anchor reproduces its row order.

// ScatterShared is the budget state shared by every worker of one
// scattered execution: a global step counter and per-clause row
// counters. With these, the workers collectively hit MaxSteps/MaxRows
// at the same totals a single-engine run would.
type ScatterShared struct {
	steps atomic.Int64
	rows  []atomic.Int64
}

// NewScatterShared sizes the shared state for a query with n clauses.
func NewScatterShared(n int) *ScatterShared {
	return &ScatterShared{rows: make([]atomic.Int64, n)}
}

// Steps reports the fleet-wide step total.
func (s *ScatterShared) Steps() int64 { return s.steps.Load() }

// Scatterable reports whether q can be scattered: partitioning the
// first seed scan and unioning worker outputs provably yields the
// single-engine result. It requires a streamable shape whose first
// clause is a plain (non-OPTIONAL, non-shortest-path) MATCH — the
// clause whose seed scan the domain filter partitions — and rejects the
// constructs whose semantics are global across rows: DISTINCT and SKIP
// anywhere, WITH ... LIMIT, and START (explicit seeds bypass the seed
// scan entirely). RETURN ... LIMIT n is fine: each worker stops at n
// rows and the coordinator's merge truncates the union at n, which
// selects exactly the single-engine prefix because the merge preserves
// its order.
func Scatterable(q *Query) bool {
	if !Streamable(q) {
		return false
	}
	first, ok := q.Clauses[0].(*MatchClause)
	if !ok || first.Optional || len(first.Patterns) == 0 || first.Patterns[0].Shortest {
		return false
	}
	for _, c := range q.Clauses {
		switch t := c.(type) {
		case *StartClause:
			return false
		case *WithClause:
			if t.Distinct || t.Skip != nil || t.Limit != nil {
				return false
			}
		case *ReturnClause:
			if t.Distinct || t.Skip != nil {
				return false
			}
		}
	}
	return true
}

// ReturnLimit reports the final RETURN's LIMIT (0, false when absent or
// non-constant). The coordinator uses it both for merge truncation and
// to decline scattering LIMIT queries under a step budget (workers race
// past the truncation point, so shared step totals could exceed the
// single-engine count).
func ReturnLimit(q *Query) (int64, bool) {
	if len(q.Clauses) == 0 {
		return 0, false
	}
	ret, ok := q.Clauses[len(q.Clauses)-1].(*ReturnClause)
	if !ok || ret.Limit == nil {
		return 0, false
	}
	ex := &exec{}
	v, err := ex.evalIntConst(ret.Limit)
	if err != nil {
		return 0, false
	}
	return v, true
}

// ScatterProbe resolves the candidate set the first seed scan of q
// would enumerate, when the auto-index can serve it (the same probe the
// executor itself performs — same anchor choice, same index query). ok
// is false when the scan would be a full node scan or q's shape is not
// scatterable; the candidates come back in the executor's enumeration
// order (ascending).
func ScatterProbe(src graph.Source, q *Query, hints [][]PatternHint) (ids []graph.NodeID, ok bool, err error) {
	if !Scatterable(q) {
		return nil, false, nil
	}
	first := q.Clauses[0].(*MatchClause)
	pat := first.Patterns[0]
	// Anchor choice mirrors matchOne with an empty row: nothing is
	// bound, so position 0 unless a planner hint overrides it.
	a := 0
	if len(hints) > 0 && len(hints[0]) > 0 {
		if h := hints[0][0]; h.Anchor > 0 && h.Anchor < len(pat.Nodes) {
			a = h.Anchor
		}
	}
	defer func() {
		if r := recover(); r != nil {
			err = AbortError(r)
		}
	}()
	ex := &exec{src: src, ctx: context.Background()}
	return ex.indexCandidates(pat.Nodes[a])
}

// ExecuteScatterWorker runs one worker of a scattered execution: the
// full pipelined pipeline over src, with the first seed scan restricted
// to domain and budgets accounted through shared. sink receives each
// projected row tagged with the seed (anchor node) it descends from, so
// the coordinator can k-way-merge worker outputs back into the
// single-engine order. The caller must have checked Scatterable(q).
func ExecuteScatterWorker(ctx context.Context, src graph.Source, q *Query, lim Limits, hints [][]PatternHint, fastPred bool, domain func(graph.NodeID) bool, shared *ScatterShared, onCols func([]string) error, sink func(anchor graph.NodeID, row []Val) error) (steps int64, err error) {
	start := time.Now()
	ex := &exec{
		src: src, ctx: ctx, limits: lim, fastPred: fastPred,
		domain: domain, shared: shared, curAnchor: graph.InvalidID,
	}
	sp := trace.FromContext(ctx).Child("query.scatter", trace.Bool("pipelined", true))
	var rows int64
	defer func() {
		if r := recover(); r != nil {
			err = AbortError(r)
		}
		millis := float64(time.Since(start)) / float64(time.Millisecond)
		recordStreamMetrics(rows, err, millis, ex.steps)
		steps = ex.steps
		if sp != nil {
			sp.SetAttr(trace.Int("rows", rows), trace.Int("steps", ex.steps))
			if err != nil {
				sp.SetError(err)
			}
			sp.End()
		}
	}()
	err = ex.runStream(q, hints, onCols, func(row []Val) error {
		rows++
		return sink(ex.curAnchor, row)
	})
	return ex.steps, err
}

// FuncStream adapts an arbitrary producer to the Stream surface: fn
// announces columns once and pushes rows through the bounded channel.
// The coordinator's scatter-gather merge produces its output through
// this, keeping the server's streaming path bounded-memory end to end.
func FuncStream(ctx context.Context, depth int, pipelined bool, fn func(onCols func([]string) error, sink RowSink) (int64, error)) *Stream {
	s := newStream(depth, pipelined)
	s.run(ctx, fn)
	return s
}
