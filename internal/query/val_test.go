package query

import (
	"testing"
	"testing/quick"

	"frappe/internal/graph"
	"frappe/internal/traversal"
)

// Property: compareVals is a consistent (antisymmetric, transitive-ish)
// ordering over a mixed value population, suitable for sorting.
func TestCompareValsOrderingProperties(t *testing.T) {
	pool := []Val{
		nullVal,
		ScalarVal(graph.Int(-3)), ScalarVal(graph.Int(0)), ScalarVal(graph.Int(7)),
		ScalarVal(graph.Str("a")), ScalarVal(graph.Str("b")),
		ScalarVal(graph.Bool(true)),
		NodeVal(1), NodeVal(5), EdgeVal(2),
		ListVal([]Val{ScalarVal(graph.Int(1))}),
		ListVal([]Val{ScalarVal(graph.Int(1)), ScalarVal(graph.Int(2))}),
	}
	cfg := &quick.Config{MaxCount: 500}
	err := quick.Check(func(i, j, k uint8) bool {
		a := pool[int(i)%len(pool)]
		b := pool[int(j)%len(pool)]
		c := pool[int(k)%len(pool)]
		ab := compareVals(a, b)
		ba := compareVals(b, a)
		// Antisymmetry of sign.
		if ab > 0 && ba > 0 || ab < 0 && ba < 0 {
			return false
		}
		// Reflexivity.
		if compareVals(a, a) != 0 {
			return false
		}
		// No strict cycles a<b<c<a.
		bc := compareVals(b, c)
		ca := compareVals(c, a)
		if ab < 0 && bc < 0 && ca < 0 {
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Key() is injective across the distinct pool values (DISTINCT
// correctness depends on it).
func TestValKeyInjective(t *testing.T) {
	pool := []Val{
		nullVal,
		ScalarVal(graph.Int(1)), ScalarVal(graph.Str("1")), ScalarVal(graph.Bool(true)),
		NodeVal(1), EdgeVal(1),
		ListVal([]Val{NodeVal(1)}), ListVal([]Val{EdgeVal(1)}),
		PathVal(traversal.Path{Start: 1}), PathVal(traversal.Path{Start: 2}),
	}
	seen := map[string]int{}
	for i, v := range pool {
		k := v.Key()
		if j, dup := seen[k]; dup {
			t.Fatalf("values %d and %d share key %q", j, i, k)
		}
		seen[k] = i
	}
}
