package query

import (
	"errors"
	"fmt"
)

// ErrBudgetExceeded marks a query aborted because it hit a resource
// budget (rows materialised or pattern-expansion steps). Callers select
// on it with errors.Is; the concrete BudgetError carries which budget
// tripped.
var ErrBudgetExceeded = errors.New("cypher: budget exceeded")

// Limits bound a query's resource use. Zero values mean unlimited.
// Cancellation via context is cooperative but unbounded queries can eat
// arbitrary memory before a deadline fires; budgets fail them fast with
// a typed error instead.
type Limits struct {
	// MaxRows caps the number of intermediate or result rows
	// materialised at any point during execution.
	MaxRows int
	// MaxSteps caps pattern-expansion steps (edges considered during
	// matching) — the budget a runaway variable-length expansion burns.
	MaxSteps int64
}

// BudgetError reports which budget a query exceeded. It unwraps to
// ErrBudgetExceeded.
type BudgetError struct {
	What  string // "rows" or "steps"
	Limit int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("cypher: query exceeded %s budget (%d)", e.What, e.Limit)
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }
